package serve

import (
	"errors"
	"math"
	"testing"

	"fourbit/internal/packet"
)

// FuzzDecodeEvent drives arbitrary lines through the ingest wire decoder.
// Three properties, one per robustness promise: it never panics (malformed
// input must not kill a stream), every rejection maps onto exactly one
// typed error (callers branch on them), and a reused decoder behaves
// exactly like a fresh one (scratch reuse must never change outcomes —
// the property the chaostest harness caught a queue-slot aliasing bug
// against).
func FuzzDecodeEvent(f *testing.F) {
	f.Add([]byte(`{"ev":"beacon","at":1,"src":2,"seq":3,"lqi":99,"white":true,"snr":7.5,"links":[{"addr":0,"q":200}]}`))
	f.Add([]byte(`{"ev":"tx","at":5,"dest":3,"acked":true}`))
	f.Add([]byte(`{"ev":"rx","at":5,"src":3,"lqi":80}`))
	f.Add([]byte(`{"ev":"age","at":5,"silence":1000}`))
	f.Add([]byte(`{"ev":"poison","at":5}`))
	f.Add([]byte(`{"ev":"beacon","at":-1}`))
	f.Add([]byte(`{"ev":`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"ev":"tx"}]`))

	f.Fuzz(func(t *testing.T, line []byte) {
		var fresh Event
		freshDec := EventDecoder{AllowPoison: true}
		freshErr := freshDec.Decode(line, &fresh)

		// A decoder that has chewed through other lines first must agree.
		var reused Event
		reusedDec := EventDecoder{AllowPoison: true}
		_ = reusedDec.Decode([]byte(`{"ev":"beacon","at":9,"src":8,"seq":7,"lqi":6,"links":[{"addr":1,"q":2},{"addr":3,"q":4}]}`), &reused)
		reusedErr := reusedDec.Decode(line, &reused)

		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("fresh err %v vs reused err %v", freshErr, reusedErr)
		}
		if freshErr != nil {
			n := 0
			for _, sentinel := range []error{ErrEventSyntax, ErrEventKind, ErrEventField} {
				if errors.Is(freshErr, sentinel) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("error maps onto %d sentinels, want exactly 1: %v", n, freshErr)
			}
			if !errors.Is(reusedErr, ErrEventSyntax) && !errors.Is(reusedErr, ErrEventKind) && !errors.Is(reusedErr, ErrEventField) {
				t.Fatalf("reused decoder returned untyped error: %v", reusedErr)
			}
			return
		}

		// Accepted events carry only in-range, fully-reset fields.
		switch fresh.Ev {
		case EvBeacon, EvTx, EvRx, EvAge, EvPoison:
		default:
			t.Fatalf("accepted unknown kind %q", fresh.Ev)
		}
		if fresh.At < 0 {
			t.Fatalf("accepted negative at %d", fresh.At)
		}
		if len(fresh.Links) > packet.MaxLinkEntries {
			t.Fatalf("accepted %d footer entries", len(fresh.Links))
		}
		if fresh.Ev != EvBeacon && len(fresh.Links) != 0 {
			t.Fatalf("%s event leaked %d footer entries from scratch", fresh.Ev, len(fresh.Links))
		}
		if len(fresh.Links) != len(reused.Links) {
			t.Fatalf("reused decoder footer count diverged: %d vs %d", len(fresh.Links), len(reused.Links))
		}
		for i := range fresh.Links {
			if fresh.Links[i] != reused.Links[i] {
				t.Fatalf("footer %d diverged: %+v vs %+v", i, fresh.Links[i], reused.Links[i])
			}
		}
		if fresh.Ev != reused.Ev || fresh.At != reused.At || fresh.Src != reused.Src ||
			fresh.Seq != reused.Seq || fresh.LQI != reused.LQI || fresh.White != reused.White ||
			math.Float64bits(fresh.SNR) != math.Float64bits(reused.SNR) ||
			fresh.Acked != reused.Acked || fresh.Silence != reused.Silence {
			t.Fatalf("reused decoder diverged:\n fresh  %+v\n reused %+v", fresh, reused)
		}
	})
}
