// Package serve hosts link estimators as a service: an HTTP server holding
// thousands of concurrent estimator instances (one neighbor table plus any
// registered core.LinkEstimator kind per instance), ingesting
// tx/rx/beacon/age event streams in either wire format — line-oriented
// JSONL or the batched binary encoding negotiated via Content-Type — and
// answering link-cost and neighbor-table queries. The robustness surface is
// the point: strict decoding with typed per-line (or per-frame) errors
// (malformed input is counted, never kills a stream), bounded per-instance
// ingest queues with explicit backpressure, per-request deadlines,
// idle-instance eviction, per-instance panic quarantine, graceful drain,
// and versioned snapshot/restore certified bit-identical by the chaostest
// harness.
package serve

import "fourbit/internal/serve/wire"

// The event model and both codecs live in internal/serve/wire; the names
// below are aliases so existing callers (and the chaos harness) keep
// compiling and errors.Is keeps matching across package boundaries.

// Event kinds on the ingest wire — see wire.EvBeacon et al.
const (
	EvBeacon = wire.EvBeacon
	EvTx     = wire.EvTx
	EvRx     = wire.EvRx
	EvAge    = wire.EvAge
	EvPoison = wire.EvPoison
)

// Typed decode errors, re-exported: these are the same error values the
// wire package wraps, so errors.Is works against either name.
var (
	ErrEventSyntax = wire.ErrEventSyntax
	ErrEventKind   = wire.ErrEventKind
	ErrEventField  = wire.ErrEventField
)

// Event is one decoded ingest event.
type Event = wire.Event

// EventDecoder decodes JSONL ingest lines into Events.
type EventDecoder = wire.EventDecoder
