package serve

import (
	"errors"
	"fmt"
	"sync"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// Instance lifecycle errors.
var (
	// ErrQueueFull: the bounded ingest queue is full and the overflow
	// policy is backpressure — the caller retries after a delay.
	ErrQueueFull = errors.New("serve: instance ingest queue full")
	// ErrClosed: the instance is draining or evicted; no further ingest.
	ErrClosed = errors.New("serve: instance closed")
	// ErrQuarantined: the instance's worker panicked; its state is frozen
	// until a restore replaces it.
	ErrQuarantined = errors.New("serve: instance quarantined after panic")
)

// RobustStats counts everything the robustness surface absorbs instead of
// crashing on. All fields are monotone; the chaos harness asserts faults
// land here and nowhere else.
type RobustStats struct {
	Enqueued      uint64 `json:"enqueued"`       // events accepted into the queue
	Applied       uint64 `json:"applied"`        // events applied to the estimator
	Malformed     uint64 `json:"malformed"`      // ingest lines refused by the decoder
	OutOfOrder    uint64 `json:"out_of_order"`   // events clamped forward to the stream's high-water time
	DupBeacons    uint64 `json:"dup_beacons"`    // consecutive beacons re-sent with an unchanged seq
	DroppedOldest uint64 `json:"dropped_oldest"` // events evicted by the drop-oldest overflow policy
	Backpressured uint64 `json:"backpressured"`  // enqueue attempts refused with ErrQueueFull
	Quarantined   uint64 `json:"quarantined"`    // events discarded while quarantined
	Panics        uint64 `json:"panics"`         // worker panics absorbed
}

// OverflowPolicy selects what a full ingest queue does with the next event.
type OverflowPolicy int

const (
	// Backpressure refuses the event with ErrQueueFull; the HTTP layer
	// maps it to 429 + Retry-After. No accepted event is ever lost.
	Backpressure OverflowPolicy = iota
	// DropOldest evicts the oldest queued event to admit the newest —
	// the "estimates must track now" configuration; drops are counted.
	DropOldest
)

// ParseOverflowPolicy resolves a policy name ("backpressure" or
// "drop-oldest"); the empty string is Backpressure.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "", "backpressure":
		return Backpressure, nil
	case "drop-oldest":
		return DropOldest, nil
	}
	return 0, fmt.Errorf("serve: unknown overflow policy %q (want backpressure or drop-oldest)", s)
}

// String names the policy as ParseOverflowPolicy spells it.
func (p OverflowPolicy) String() string {
	if p == DropOldest {
		return "drop-oldest"
	}
	return "backpressure"
}

// instance is one hosted estimator: a bounded ingest queue drained by a
// single worker goroutine that applies events under mu, so queries see a
// consistent table. All cross-goroutine state is guarded by mu; cond
// broadcasts wake barrier waiters after every queue transition.
type instance struct {
	name string
	kind core.EstimatorKind
	seed uint64

	mu   sync.Mutex
	cond *sync.Cond // broadcast on apply/close/quarantine transitions

	est core.LinkEstimator
	le  packet.LEFrame // scratch envelope for beacon apply

	queue  []Event // ring buffer: [head, head+count) mod len
	head   int
	count  int
	policy OverflowPolicy

	stats       RobustStats
	lastAt      sim.Time    // monotone ingest clock (high-water mark)
	lastSrc     packet.Addr // previous beacon source, for the dup counter
	lastSeq     uint16
	sawBeacon   bool
	paused      bool
	closed      bool
	quarantined bool
	panicMsg    string

	lastTouch int64 // wall-clock seconds, server clock; idle-eviction input

	done chan struct{} // closed when the worker exits
}

// newInstance builds a hosted estimator of the given kind over a counted
// rng stream (so it is always snapshotable) and starts its worker.
func newInstance(name string, kind core.EstimatorKind, self packet.Addr, cfg core.Config,
	seed uint64, queueDepth int, policy OverflowPolicy) (*instance, error) {
	est, err := core.NewKind(kind, self, cfg, nil, sim.NewCountedRand(seed))
	if err != nil {
		return nil, err
	}
	if kind == "" {
		kind = core.KindFourBit
	}
	in := &instance{
		name: name, kind: kind, seed: seed,
		est:    est,
		queue:  make([]Event, queueDepth),
		policy: policy,
		done:   make(chan struct{}),
	}
	in.cond = sync.NewCond(&in.mu)
	go in.worker()
	return in, nil
}

// enqueue admits one event under the overflow policy. The Links slice is
// deep-copied into the queue slot: the decoder's scratch is reused per line,
// but queued events outlive the line.
func (in *instance) enqueue(ev *Event) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return ErrClosed
	}
	if in.quarantined {
		in.stats.Quarantined++
		return ErrQuarantined
	}
	if in.count == len(in.queue) {
		if in.policy == Backpressure {
			in.stats.Backpressured++
			return ErrQueueFull
		}
		// DropOldest: evict the head slot and admit into it.
		in.head = (in.head + 1) % len(in.queue)
		in.count--
		in.stats.DroppedOldest++
		// The dropped event still counts as consumed for the barrier:
		// Applied tracks "left the queue", whether applied or evicted.
		in.stats.Applied++
	}
	slot := &in.queue[(in.head+in.count)%len(in.queue)]
	links := slot.Links // the slot's own buffer, not the decoder's scratch
	*slot = *ev
	slot.Links = append(links[:0], ev.Links...)
	in.count++
	in.stats.Enqueued++
	in.cond.Broadcast()
	return nil
}

// enqueueBatch admits a run of events under one lock acquisition and one
// worker wakeup — the binary ingest path's admission, where the ring and
// barrier bookkeeping are paid once per batch instead of once per event.
// Each event is admitted with semantics identical to enqueue (same counter
// increments, same overflow policy, in order); on the first refusal the
// batch stops and the error reports why, with accepted saying how many
// events made it in — the suffix evs[accepted:] was not admitted and a
// backpressured client retries exactly that.
func (in *instance) enqueueBatch(evs []Event) (accepted int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range evs {
		if in.closed {
			err = ErrClosed
			break
		}
		if in.quarantined {
			in.stats.Quarantined++
			err = ErrQuarantined
			break
		}
		if in.count == len(in.queue) {
			if in.policy == Backpressure {
				in.stats.Backpressured++
				err = ErrQueueFull
				break
			}
			in.head = (in.head + 1) % len(in.queue)
			in.count--
			in.stats.DroppedOldest++
			in.stats.Applied++
		}
		slot := &in.queue[(in.head+in.count)%len(in.queue)]
		links := slot.Links
		*slot = evs[i]
		slot.Links = append(links[:0], evs[i].Links...)
		in.count++
		in.stats.Enqueued++
		accepted++
	}
	if accepted > 0 {
		in.cond.Broadcast()
	}
	return accepted, err
}

// worker drains the queue, applying each event to the estimator. It holds
// mu except while waiting, so every apply is atomic with respect to
// queries. A panic during apply quarantines the instance: the event is
// counted, the queue is flushed, state freezes for post-mortem snapshots,
// and the process lives on.
func (in *instance) worker() {
	defer close(in.done)
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		for in.count == 0 || in.paused {
			if in.closed && in.count == 0 {
				return
			}
			if in.closed && in.paused {
				return // close flushes; a paused worker never resumes
			}
			in.cond.Wait()
		}
		ev := &in.queue[in.head]
		if in.quarantined {
			in.stats.Quarantined++
		} else {
			in.applyLocked(ev)
		}
		in.head = (in.head + 1) % len(in.queue)
		in.count--
		in.stats.Applied++
		in.cond.Broadcast()
	}
}

// applyLocked applies one event, absorbing panics into quarantine.
func (in *instance) applyLocked(ev *Event) {
	defer func() {
		if r := recover(); r != nil {
			in.quarantined = true
			in.panicMsg = fmt.Sprintf("%v", r)
			in.stats.Panics++
		}
	}()
	// Monotone ingest clock: estimators assume time does not run backward,
	// so late events are clamped forward to the high-water mark and counted.
	at := ev.At
	if at < in.lastAt {
		in.stats.OutOfOrder++
		at = in.lastAt
	} else {
		in.lastAt = at
	}
	switch ev.Ev {
	case EvBeacon:
		if in.sawBeacon && ev.Src == in.lastSrc && ev.Seq == in.lastSeq {
			in.stats.DupBeacons++
		}
		in.sawBeacon, in.lastSrc, in.lastSeq = true, ev.Src, ev.Seq
		in.le.Seq, in.le.Entries, in.le.NetPayload = ev.Seq, ev.Links, nil
		in.est.OnBeacon(ev.Src, &in.le, core.RxMeta{White: ev.White, LQI: ev.LQI, SNRdB: ev.SNR}, at)
		in.le.Entries = nil
	case EvTx:
		in.est.TxResult(ev.Src, ev.Acked)
	case EvRx:
		in.est.OnOverhear(ev.Src, core.RxMeta{White: ev.White, LQI: ev.LQI, SNRdB: ev.SNR}, at)
	case EvAge:
		in.est.Age(ev.Silence, at)
	case EvPoison:
		panic("serve: poison event (fault injection)")
	}
}

// barrier blocks until every event enqueued before the call has left the
// queue (read-your-writes for queries), the instance quarantines, or abort
// is closed (request deadline). It reports whether the barrier was reached.
func (in *instance) barrier(abort <-chan struct{}) bool {
	in.mu.Lock()
	target := in.stats.Enqueued
	for in.stats.Applied < target && !in.quarantined && !in.closed {
		if aborted(abort) {
			in.mu.Unlock()
			return false
		}
		in.waitInterruptible(abort)
	}
	done := in.stats.Applied >= target || in.quarantined
	in.mu.Unlock()
	return done
}

// waitInterruptible waits on cond but also wakes when abort closes, by
// broadcasting from a watcher goroutine. mu must be held.
func (in *instance) waitInterruptible(abort <-chan struct{}) {
	if abort == nil {
		in.cond.Wait()
		return
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-abort:
			in.cond.Broadcast()
		case <-stop:
		}
	}()
	in.cond.Wait()
	close(stop)
}

func aborted(abort <-chan struct{}) bool {
	if abort == nil {
		return false
	}
	select {
	case <-abort:
		return true
	default:
		return false
	}
}

// pause stops the worker between events; the queue keeps admitting until
// full, which makes overflow behavior deterministic for tests and lets
// operators quiesce an instance before snapshotting a live stream.
func (in *instance) pause() {
	in.mu.Lock()
	in.paused = true
	in.mu.Unlock()
}

// resume restarts a paused worker.
func (in *instance) resume() {
	in.mu.Lock()
	in.paused = false
	in.cond.Broadcast()
	in.mu.Unlock()
}

// close stops ingest and lets the worker drain what is queued; the returned
// channel closes when the worker has exited. Idempotent.
func (in *instance) close() <-chan struct{} {
	in.mu.Lock()
	if !in.closed {
		in.closed = true
		in.cond.Broadcast()
	}
	in.mu.Unlock()
	return in.done
}

// InstanceSnapshot is the versioned serialized state of one hosted
// instance: the estimator snapshot plus the ingest-stream cursors and
// robustness counters, so a restored instance continues — and reports —
// exactly as the original would have.
type InstanceSnapshot struct {
	Version   int                     `json:"version"`
	Name      string                  `json:"name"`
	Kind      core.EstimatorKind      `json:"kind"`
	Seed      uint64                  `json:"seed"`
	LastAt    sim.Time                `json:"last_at"`
	SawBeacon bool                    `json:"saw_beacon,omitempty"`
	LastSrc   packet.Addr             `json:"last_src,omitempty"`
	LastSeq   uint16                  `json:"last_seq,omitempty"`
	Stats     RobustStats             `json:"stats"`
	Estimator *core.EstimatorSnapshot `json:"estimator"`
}

// snapshot serializes the instance. It waits for the queue to drain first
// (bounded by abort) so the snapshot reflects every accepted event; a
// quarantined instance snapshots its frozen state for post-mortem.
func (in *instance) snapshot(abort <-chan struct{}) (*InstanceSnapshot, error) {
	if !in.barrier(abort) {
		return nil, errors.New("serve: snapshot aborted waiting for queue drain")
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	est, err := in.est.Snapshot()
	if err != nil {
		return nil, err
	}
	return &InstanceSnapshot{
		Version: SnapshotVersion, Name: in.name, Kind: in.kind, Seed: in.seed,
		LastAt: in.lastAt, SawBeacon: in.sawBeacon, LastSrc: in.lastSrc, LastSeq: in.lastSeq,
		Stats: in.stats, Estimator: est,
	}, nil
}

// SnapshotVersion gates the serve-level snapshot schema, alongside the
// estimator's own core.SnapshotVersion inside it.
const SnapshotVersion = 1

// restoreInstance builds a fresh instance from a snapshot. The estimator is
// rebuilt via core.RestoreKind, so restoration carries the same bit-identical
// continuation guarantee; quarantine does not survive — restore is the
// recovery path.
func restoreInstance(snap *InstanceSnapshot, queueDepth int, policy OverflowPolicy) (*instance, error) {
	if snap == nil || snap.Estimator == nil {
		return nil, fmt.Errorf("%w: empty instance snapshot", core.ErrSnapshotState)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("%w: instance snapshot has version %d, this build speaks %d",
			core.ErrSnapshotVersion, snap.Version, SnapshotVersion)
	}
	if snap.Kind != snap.Estimator.Kind {
		return nil, fmt.Errorf("%w: instance says %q, estimator snapshot says %q",
			core.ErrSnapshotKind, snap.Kind, snap.Estimator.Kind)
	}
	est, err := core.RestoreKind(snap.Estimator)
	if err != nil {
		return nil, err
	}
	in := &instance{
		name: snap.Name, kind: snap.Kind, seed: snap.Seed,
		est:    est,
		queue:  make([]Event, queueDepth),
		policy: policy,
		stats:  snap.Stats,
		lastAt: snap.LastAt, sawBeacon: snap.SawBeacon, lastSrc: snap.LastSrc, lastSeq: snap.LastSeq,
		done: make(chan struct{}),
	}
	in.cond = sync.NewCond(&in.mu)
	go in.worker()
	return in, nil
}
