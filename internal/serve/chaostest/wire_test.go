package chaostest

import (
	"bytes"
	"encoding/binary"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/serve"
	"fourbit/internal/serve/wire"
	"fourbit/internal/sim"
)

// The binary-surface half of the harness: the same certifications as the
// JSONL tests, driven through Content-Type: application/x-fourbit-batch.
// The load-bearing property is cross-format bit-identity — an event stream
// ingested as binary batches must leave a server in exactly the state the
// JSONL encoding of that stream would, down to snapshot bytes — so every
// test here pivots on a JSONL twin fed the identical events.

// filterDecodable splits synth lines into the events both formats can carry
// and the lines that carry them. Torn/malformed lines are dropped (they have
// no binary representation); duplicates and time warps survive, so the
// interesting robustness counters still move. Returned events own their
// Links (the decoder's scratch is reused across lines).
func filterDecodable(t *testing.T, lines []string) ([]wire.Event, []string) {
	t.Helper()
	var dec wire.EventDecoder
	evs := make([]wire.Event, 0, len(lines))
	kept := make([]string, 0, len(lines))
	for _, line := range lines {
		var ev wire.Event
		if err := dec.Decode([]byte(line), &ev); err != nil {
			continue
		}
		ev.Links = append([]packet.LinkEntry(nil), ev.Links...)
		evs = append(evs, ev)
		kept = append(kept, line)
	}
	return evs, kept
}

// postBinary posts one binary frame carrying evs to the instance's events
// route and returns status, body, and headers.
func postBinary(t *testing.T, base, name string, evs []wire.Event) (int, []byte, http.Header) {
	t.Helper()
	frame, err := wire.AppendBatch(nil, evs)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, base, name, frame)
}

// postRaw posts arbitrary bytes under the binary content type.
func postRaw(t *testing.T, base, name string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/instances/"+name+"/events", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// ingestBinary streams events in barrier-separated chunks, mirroring
// ingest's pacing so the two formats see identical admission conditions.
func ingestBinary(t *testing.T, base, name string, evs []wire.Event) {
	t.Helper()
	const chunk = 512
	for len(evs) > 0 {
		n := chunk
		if n > len(evs) {
			n = len(evs)
		}
		status, data, _ := postBinary(t, base, name, evs[:n])
		if status != http.StatusOK {
			t.Fatalf("binary ingest: status %d: %s", status, data)
		}
		evs = evs[n:]
		if len(evs) > 0 {
			getTable(t, base, name) // barrier: drain before the next chunk
		}
	}
}

// TestBinaryMatchesJSONLBitIdentical is the cross-format differential: for
// every estimator kind, clean and dirty synth streams ingested as JSONL on
// one server and as binary batches on another yield bit-identical tables,
// robustness counters, estimator counters, and snapshot bytes.
func TestBinaryMatchesJSONLBitIdentical(t *testing.T) {
	for _, dirty := range []bool{false, true} {
		dirty := dirty
		mode := "clean"
		if dirty {
			mode = "dirty"
		}
		for _, kind := range core.EstimatorKinds() {
			kind := kind
			t.Run(mode+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				raw := newSynth(0xB17E+uint64(len(kind)), dirty).lines(2400)
				evs, kept := filterDecodable(t, raw)
				if dirty && len(kept) == len(raw) {
					t.Fatal("dirty stream synthesized no malformed lines; differential is vacuous")
				}

				jsonlBase, _ := boot(t, serve.Options{})
				createInstance(t, jsonlBase, "n", kind, 42)
				ingest(t, jsonlBase, "n", kept)

				binBase, _ := boot(t, serve.Options{})
				createInstance(t, binBase, "n", kind, 42)
				ingestBinary(t, binBase, "n", evs)

				sameView(t, "binary vs jsonl", getTable(t, jsonlBase, "n"), getTable(t, binBase, "n"))
				js, bs := getStats(t, jsonlBase, "n"), getStats(t, binBase, "n")
				if js.Robust != bs.Robust {
					t.Fatalf("robust counters differ:\n jsonl  %+v\n binary %+v", js.Robust, bs.Robust)
				}
				if !reflect.DeepEqual(js.Estimator, bs.Estimator) {
					t.Fatalf("estimator counters differ:\n jsonl  %v\n binary %v", js.Estimator, bs.Estimator)
				}
				if dirty && (js.Robust.DupBeacons == 0 || js.Robust.OutOfOrder == 0) {
					t.Fatalf("filtered dirty stream lost its dirt: %+v", js.Robust)
				}

				jsnap := mustDo(t, http.MethodGet, jsonlBase+"/v1/instances/n/snapshot", "", http.StatusOK)
				bsnap := mustDo(t, http.MethodGet, binBase+"/v1/instances/n/snapshot", "", http.StatusOK)
				if !bytes.Equal(jsnap, bsnap) {
					t.Fatalf("snapshot bytes differ:\n jsonl  %s\n binary %s", jsnap, bsnap)
				}
			})
		}
	}
}

// TestBinaryKillRestoreBitIdentical runs the kill/snapshot/restore cycle
// entirely over the binary surface, against a JSONL-fed uninterrupted
// reference — restore and cross-format certification in one pass.
func TestBinaryKillRestoreBitIdentical(t *testing.T) {
	for _, kind := range core.EstimatorKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			raw := newSynth(0xFACE+uint64(len(kind)), true).lines(2000)
			evs, kept := filterDecodable(t, raw)
			half := len(evs) / 2

			refBase, _ := boot(t, serve.Options{})
			createInstance(t, refBase, "n", kind, 7)
			ingest(t, refBase, "n", kept)
			refTab := getTable(t, refBase, "n")
			refStats := getStats(t, refBase, "n")

			vicBase, kill := boot(t, serve.Options{})
			createInstance(t, vicBase, "n", kind, 7)
			ingestBinary(t, vicBase, "n", evs[:half])
			snap := mustDo(t, http.MethodGet, vicBase+"/v1/instances/n/snapshot", "", http.StatusOK)
			kill()

			heirBase, _ := boot(t, serve.Options{})
			mustDo(t, http.MethodPost, heirBase+"/v1/instances/n/restore", string(snap), http.StatusOK)
			ingestBinary(t, heirBase, "n", evs[half:])

			sameView(t, "binary restored vs jsonl uninterrupted", refTab, getTable(t, heirBase, "n"))
			heirStats := getStats(t, heirBase, "n")
			if refStats.Robust != heirStats.Robust {
				t.Fatalf("robust counters differ:\n%+v\n%+v", refStats.Robust, heirStats.Robust)
			}
			if !reflect.DeepEqual(refStats.Estimator, heirStats.Estimator) {
				t.Fatalf("estimator counters differ:\n%v\n%v", refStats.Estimator, heirStats.Estimator)
			}
		})
	}
}

// TestBinaryHostileInputAbortsWithoutCollateral throws garbage at the binary
// route. Unlike JSONL's per-line skipping, binary framing cannot resync past
// a bad frame, so the stream tears with 400 — but frames admitted before the
// tear stay admitted, the error carries frame context, and the instance
// keeps serving.
func TestBinaryHostileInputAbortsWithoutCollateral(t *testing.T) {
	base, _ := boot(t, serve.Options{})
	createInstance(t, base, "n", core.KindFourBit, 1)

	good := []wire.Event{
		{Ev: wire.EvBeacon, At: 1000, Src: 2, Seq: 1, LQI: 90,
			Links: []packet.LinkEntry{{Addr: 0, InQuality: 200}}},
		{Ev: wire.EvTx, At: 2000, Src: 2, Acked: true},
	}
	frame, err := wire.AppendBatch(nil, good)
	if err != nil {
		t.Fatal(err)
	}

	// A valid frame followed by binary garbage: the frame lands, the
	// garbage 400s with frame context.
	body := append(append([]byte(nil), frame...), "\x00\x01garbage\xff"...)
	var rep struct {
		Accepted  uint64 `json:"accepted"`
		Malformed uint64 `json:"malformed"`
		Lines     uint64 `json:"lines"`
		LastError string `json:"last_error"`
	}
	status, data, _ := postRaw(t, base, "n", body)
	if status != http.StatusBadRequest {
		t.Fatalf("garbage after frame: status %d: %s", status, data)
	}
	decodeJSON(t, data, &rep)
	if rep.Accepted != 2 || rep.Malformed != 1 || rep.Lines != 1 {
		t.Fatalf("report wrong: %+v", rep)
	}
	if !strings.Contains(rep.LastError, "frame 2") {
		t.Fatalf("last_error lost frame context: %q", rep.LastError)
	}

	// A future-version frame is refused outright.
	future := binary.AppendUvarint(nil, 1)
	future = append(future, wire.BatchVersion+1)
	if status, data, _ := postRaw(t, base, "n", future); status != http.StatusBadRequest {
		t.Fatalf("future version: status %d: %s", status, data)
	}

	// Pure garbage never reaches admission.
	if status, data, _ := postRaw(t, base, "n", []byte("\xde\xad\xbe\xef")); status != http.StatusBadRequest {
		t.Fatalf("pure garbage: status %d: %s", status, data)
	}

	tab := getTable(t, base, "n")
	if tab.Applied != 2 || len(tab.Neighbors) != 1 || tab.Neighbors[0].Addr != 2 {
		t.Fatalf("instance did not survive hostile input: %+v", tab)
	}
	st := getStats(t, base, "n")
	if st.Robust.Malformed != 3 || st.Quarantined {
		t.Fatalf("fault accounting wrong: %+v", st)
	}
}

// TestBinaryOverlongFrameAborts: a frame over MaxBatchBytes tears the
// stream (400) before its body is read; prior frames stay applied.
func TestBinaryOverlongFrameAborts(t *testing.T) {
	base, _ := boot(t, serve.Options{MaxBatchBytes: 256})
	createInstance(t, base, "n", core.KindFourBit, 1)

	small := []wire.Event{{Ev: wire.EvRx, At: 1000, Src: 2, LQI: 70}}
	status, data, _ := postBinary(t, base, "n", small)
	if status != http.StatusOK {
		t.Fatalf("small frame: status %d: %s", status, data)
	}

	big := make([]wire.Event, 64)
	for i := range big {
		big[i] = wire.Event{Ev: wire.EvRx, At: sim.Time(2000 + i), Src: 2, LQI: 70}
	}
	status, data, _ = postBinary(t, base, "n", big)
	if status != http.StatusBadRequest {
		t.Fatalf("overlong frame: status %d: %s", status, data)
	}
	tab := getTable(t, base, "n")
	if tab.Applied != 1 || tab.Quarantined {
		t.Fatalf("collateral damage from overlong frame: %+v", tab)
	}
}

// TestBinaryBackpressureBothPolicies mirrors TestSlowConsumerBackpressure
// over the binary surface: batch-granular admission must preserve the
// per-event overflow semantics exactly — a 429 reports how many events of
// the batch were accepted, drop-oldest sheds and counts.
func TestBinaryBackpressureBothPolicies(t *testing.T) {
	evs, _ := filterDecodable(t, newSynth(7, false).lines(12))
	if len(evs) != 12 {
		t.Fatalf("clean synth stream lost events: %d", len(evs))
	}

	t.Run("backpressure", func(t *testing.T) {
		base, _ := boot(t, serve.Options{QueueDepth: 4, RetryAfter: 2 * time.Second})
		createInstance(t, base, "n", core.KindFourBit, 1)
		mustDo(t, http.MethodPost, base+"/v1/instances/n/pause", "", http.StatusOK)

		status, data, hdr := postBinary(t, base, "n", evs)
		if status != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429: %s", status, data)
		}
		if ra := hdr.Get("Retry-After"); ra != "2" {
			t.Fatalf("Retry-After %q, want 2", ra)
		}
		var rep struct {
			Accepted uint64 `json:"accepted"`
		}
		decodeJSON(t, data, &rep)
		if rep.Accepted != 4 {
			t.Fatalf("accepted %d with depth 4", rep.Accepted)
		}

		mustDo(t, http.MethodPost, base+"/v1/instances/n/resume", "", http.StatusOK)
		if tab := getTable(t, base, "n"); tab.Applied != 4 {
			t.Fatalf("applied %d after resume, want 4", tab.Applied)
		}
		// Retry the unaccepted suffix, paced at the queue depth.
		for i := 4; i < len(evs); i += 4 {
			status, data, _ := postBinary(t, base, "n", evs[i:i+4])
			if status != http.StatusOK {
				t.Fatalf("retry: status %d: %s", status, data)
			}
			getTable(t, base, "n")
		}
		if tab := getTable(t, base, "n"); tab.Applied != 12 {
			t.Fatalf("applied %d after retry, want 12", tab.Applied)
		}
		if st := getStats(t, base, "n"); st.Robust.Backpressured == 0 {
			t.Fatalf("backpressure left no trace: %+v", st.Robust)
		}
	})

	t.Run("drop-oldest", func(t *testing.T) {
		base, _ := boot(t, serve.Options{QueueDepth: 4, Policy: serve.DropOldest})
		createInstance(t, base, "n", core.KindFourBit, 1)
		mustDo(t, http.MethodPost, base+"/v1/instances/n/pause", "", http.StatusOK)
		status, data, _ := postBinary(t, base, "n", evs) // one frame, all 12
		if status != http.StatusOK {
			t.Fatalf("drop-oldest ingest: status %d: %s", status, data)
		}
		mustDo(t, http.MethodPost, base+"/v1/instances/n/resume", "", http.StatusOK)
		if tab := getTable(t, base, "n"); tab.Applied != 12 {
			t.Fatalf("applied %d, want 12 (dropped count as applied)", tab.Applied)
		}
		if st := getStats(t, base, "n"); st.Robust.DroppedOldest != 8 {
			t.Fatalf("dropped_oldest %d, want 8", st.Robust.DroppedOldest)
		}
	})
}
