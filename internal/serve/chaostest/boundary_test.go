package chaostest

import (
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/serve"
)

// TestRequestBoundariesAreInvisible: splitting one event stream across HTTP
// requests at any point must not change what the estimator computes — no
// per-request state (decoder scratch, scanner buffers) may leak into event
// semantics. Regression test for a queue-slot aliasing bug where queued
// beacon footers pointed into decoder scratch and were clobbered by later
// lines of the same request.
func TestRequestBoundariesAreInvisible(t *testing.T) {
	for _, kind := range core.EstimatorKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			lines := newSynth(0xB0DD+uint64(len(kind)), false).lines(2400)

			onePass, _ := boot(t, serve.Options{})
			createInstance(t, onePass, "n", kind, 42)
			ingest(t, onePass, "n", lines)

			split, _ := boot(t, serve.Options{})
			createInstance(t, split, "n", kind, 42)
			prev := 0
			for _, cut := range []int{17, 400, 1201, 2399, len(lines)} {
				ingest(t, split, "n", lines[prev:cut])
				prev = cut
			}

			sameView(t, "one pass vs split", getTable(t, onePass, "n"), getTable(t, split, "n"))
		})
	}
}
