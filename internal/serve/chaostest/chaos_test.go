// Package chaostest is the fault-injection harness for the serving layer
// (internal/serve): it certifies the crash-tolerance contract over the
// public HTTP surface only. The harness drives synthesized event streams —
// clean, dirty (duplicates, time warps, malformed lines), and hostile
// (truncation, binary garbage) — through live servers and asserts the two
// properties the service promises: faults are absorbed and surfaced in
// counters (never a crash, never a silently wrong answer), and a
// kill/snapshot/restore cycle yields answers bit-identical to an
// uninterrupted run, for every registered estimator kind.
package chaostest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"fourbit/internal/core"
	"fourbit/internal/serve"
	"fourbit/internal/sim"
)

// boot starts a serve.Server behind httptest and registers cleanup. The
// returned kill func simulates a crash-adjacent shutdown: stop ingest,
// drain, close the listener.
func boot(t *testing.T, opts serve.Options) (base string, kill func()) {
	t.Helper()
	srv := serve.NewServer(opts)
	ts := httptest.NewServer(srv)
	done := false
	kill = func() {
		if done {
			return
		}
		done = true
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	}
	t.Cleanup(kill)
	return ts.URL, kill
}

func httpDo(t *testing.T, method, url, body string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

func mustDo(t *testing.T, method, url, body string, want int) []byte {
	t.Helper()
	status, data, _ := httpDo(t, method, url, body)
	if status != want {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, status, want, data)
	}
	return data
}

func createInstance(t *testing.T, base, name string, kind core.EstimatorKind, seed uint64) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"kind":%q,"self":0,"seed":%d}`, name, kind, seed)
	mustDo(t, http.MethodPost, base+"/v1/instances", body, http.StatusCreated)
}

// ingest streams lines in chunks smaller than any queue depth used by the
// harness, with a barrier-synced query between chunks, so a live consumer
// never sees overflow and robustness counters stay deterministic. Callers
// that WANT overflow (paused consumers) post raw bodies instead.
func ingest(t *testing.T, base, name string, lines []string) {
	t.Helper()
	const chunk = 512
	for len(lines) > 0 {
		n := chunk
		if n > len(lines) {
			n = len(lines)
		}
		mustDo(t, http.MethodPost, base+"/v1/instances/"+name+"/events",
			strings.Join(lines[:n], "\n")+"\n", http.StatusOK)
		lines = lines[n:]
		if len(lines) > 0 {
			getTable(t, base, name) // barrier: drain before the next chunk
		}
	}
}

// tableView is the decoded barrier-synced table answer; ETXHex carries the
// exact float bits, so comparing views compares estimates bit for bit.
type tableView struct {
	Neighbors []struct {
		Addr      int    `json:"addr"`
		ETXHex    string `json:"etx_hex"`
		HasETX    bool   `json:"has_etx"`
		Pinned    bool   `json:"pinned"`
		LastHeard int64  `json:"last_heard"`
	} `json:"neighbors"`
	Applied     uint64 `json:"applied"`
	Quarantined bool   `json:"quarantined"`
}

func getTable(t *testing.T, base, name string) tableView {
	t.Helper()
	var v tableView
	decodeJSON(t, mustDo(t, http.MethodGet, base+"/v1/instances/"+name+"/table", "", http.StatusOK), &v)
	return v
}

type instStats struct {
	Robust      serve.RobustStats `json:"robust"`
	Estimator   map[string]any    `json:"estimator"`
	Quarantined bool              `json:"quarantined"`
	Queued      int               `json:"queued"`
}

func getStats(t *testing.T, base, name string) instStats {
	t.Helper()
	var v instStats
	decodeJSON(t, mustDo(t, http.MethodGet, base+"/v1/instances/"+name+"/stats", "", http.StatusOK), &v)
	return v
}

func decodeJSON(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
}

// synth generates deterministic wire streams. Dirty mode injects the fault
// classes the service must absorb: duplicate beacons, time warps
// (out-of-order timestamps), and malformed lines. The same seed always
// yields the same byte stream, so two servers fed the same synth output see
// identical input — the precondition for bit-identity assertions.
type synth struct {
	r     *sim.Rand
	now   int64
	seqs  [32]uint16
	last  string
	dirty bool
}

func newSynth(seed uint64, dirty bool) *synth {
	return &synth{r: sim.NewRand(seed), dirty: dirty}
}

func (s *synth) lines(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if s.dirty && s.last != "" && s.r.Bernoulli(0.04) {
			out = append(out, s.last) // duplicate delivery
			continue
		}
		if s.dirty && s.r.Bernoulli(0.02) {
			out = append(out, `{"ev":"beacon","at":`) // torn line
			continue
		}
		s.now += 1 + s.r.Int63n(int64(sim.Second))
		at := s.now
		if s.dirty && s.r.Bernoulli(0.03) {
			at = s.now / 2 // time warp: far in the past
		}
		src := 1 + s.r.Intn(18)
		var line string
		switch k := s.r.Intn(10); {
		case k < 6:
			s.seqs[src]++
			line = fmt.Sprintf(`{"ev":"beacon","at":%d,"src":%d,"seq":%d,"lqi":%d,"white":%v`,
				at, src, s.seqs[src], 40+s.r.Intn(80), s.r.Bernoulli(0.5))
			if s.r.Bernoulli(0.3) {
				line += `,"snr":` + strconv.FormatFloat(s.r.Normal(8, 3), 'g', -1, 64)
			}
			if s.r.Bernoulli(0.5) {
				line += fmt.Sprintf(`,"links":[{"addr":0,"q":%d}]`, s.r.Intn(256))
			}
			line += "}"
		case k < 8:
			line = fmt.Sprintf(`{"ev":"tx","at":%d,"dest":%d,"acked":%v}`, at, src, s.r.Bernoulli(0.7))
		case k < 9:
			line = fmt.Sprintf(`{"ev":"rx","at":%d,"src":%d,"lqi":%d}`, at, src, 40+s.r.Intn(60))
		default:
			line = fmt.Sprintf(`{"ev":"age","at":%d,"silence":%d}`, at, 2*int64(sim.Second))
		}
		s.last = line
		out = append(out, line)
	}
	return out
}

// sameView asserts two barrier-synced table answers are bit-identical.
func sameView(t *testing.T, label string, a, b tableView) {
	t.Helper()
	if a.Applied != b.Applied {
		t.Fatalf("%s: applied %d vs %d", label, a.Applied, b.Applied)
	}
	if len(a.Neighbors) != len(b.Neighbors) {
		t.Fatalf("%s: %d vs %d neighbors", label, len(a.Neighbors), len(b.Neighbors))
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatalf("%s: neighbor %d differs:\n%+v\n%+v", label, i, a.Neighbors[i], b.Neighbors[i])
		}
	}
}

// TestKillRestoreBitIdentical is the tentpole certification: for every
// estimator kind, a server killed mid-stream, snapshotted, and restored
// into a fresh process answers every subsequent query bit-identically to a
// server that ingested the whole stream uninterrupted — including when the
// stream itself is dirty (duplicates, time warps, malformed lines).
func TestKillRestoreBitIdentical(t *testing.T) {
	for _, dirty := range []bool{false, true} {
		dirty := dirty
		mode := "clean"
		if dirty {
			mode = "dirty"
		}
		for _, kind := range core.EstimatorKinds() {
			kind := kind
			t.Run(mode+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				lines := newSynth(0xC4A05+uint64(len(kind)), dirty).lines(2400)
				half := len(lines) / 2

				// Reference: one server, the whole stream, no interruption.
				refBase, _ := boot(t, serve.Options{})
				createInstance(t, refBase, "n", kind, 42)
				ingest(t, refBase, "n", lines)
				refTab := getTable(t, refBase, "n")
				refStats := getStats(t, refBase, "n")

				// Victim: half the stream, snapshot, kill.
				vicBase, kill := boot(t, serve.Options{})
				createInstance(t, vicBase, "n", kind, 42)
				ingest(t, vicBase, "n", lines[:half])
				snap := mustDo(t, http.MethodGet, vicBase+"/v1/instances/n/snapshot", "", http.StatusOK)
				kill()

				// Heir: fresh server, restore, the rest of the stream.
				heirBase, _ := boot(t, serve.Options{})
				mustDo(t, http.MethodPost, heirBase+"/v1/instances/n/restore", string(snap), http.StatusOK)
				ingest(t, heirBase, "n", lines[half:])
				heirTab := getTable(t, heirBase, "n")
				heirStats := getStats(t, heirBase, "n")

				sameView(t, "restored vs uninterrupted", refTab, heirTab)
				if refStats.Robust != heirStats.Robust {
					t.Fatalf("robust counters differ:\n%+v\n%+v", refStats.Robust, heirStats.Robust)
				}
				if !reflect.DeepEqual(refStats.Estimator, heirStats.Estimator) {
					t.Fatalf("estimator counters differ:\n%v\n%v", refStats.Estimator, heirStats.Estimator)
				}
				if dirty {
					// The dirt must be visible in counters, not hidden.
					if refStats.Robust.DupBeacons == 0 || refStats.Robust.OutOfOrder == 0 || refStats.Robust.Malformed == 0 {
						t.Fatalf("dirty stream left no trace in counters: %+v", refStats.Robust)
					}
				} else if refStats.Robust.Malformed != 0 {
					t.Fatalf("clean stream counted malformed: %+v", refStats.Robust)
				}
			})
		}
	}
}

// TestHostileInputNeverKillsStream throws truncation, binary garbage, and
// type confusion at a live instance inside one request: every bad line is
// counted with context, every good line still lands, and the instance
// keeps answering afterward.
func TestHostileInputNeverKillsStream(t *testing.T) {
	base, _ := boot(t, serve.Options{})
	createInstance(t, base, "n", core.KindFourBit, 1)

	body := strings.Join([]string{
		`{"ev":"beacon","at":1000,"src":2,"seq":1,"lqi":90,"links":[{"addr":0,"q":200}]}`,
		`{"ev":"beacon","at":2000,"src"`,   // truncated mid-key
		"\x00\x01\x02 not even text \xff",  // binary garbage
		`{"ev":"warp","at":3000}`,          // unknown kind
		`{"ev":"tx","at":"soon","dest":2}`, // type confusion
		`[1,2,3]`,                          // valid JSON, wrong shape
		`{"ev":"tx","at":4000,"dest":2,"acked":true}`,
		`{"ev":"rx","at":5000,"src":2,"lqi":77}`, // final line, no newline
	}, "\n")
	var rep struct {
		Accepted  uint64 `json:"accepted"`
		Malformed uint64 `json:"malformed"`
		Lines     uint64 `json:"lines"`
		LastError string `json:"last_error"`
	}
	decodeJSON(t, mustDo(t, http.MethodPost, base+"/v1/instances/n/events", body, http.StatusOK), &rep)
	if rep.Accepted != 3 || rep.Malformed != 5 {
		t.Fatalf("accepted %d malformed %d, want 3/5: %+v", rep.Accepted, rep.Malformed, rep)
	}
	if !strings.Contains(rep.LastError, "line 2") {
		t.Fatalf("last_error lost line context: %q", rep.LastError)
	}

	tab := getTable(t, base, "n")
	if tab.Applied != 3 || len(tab.Neighbors) != 1 || tab.Neighbors[0].Addr != 2 {
		t.Fatalf("instance did not survive hostile input: %+v", tab)
	}
	st := getStats(t, base, "n")
	if st.Robust.Malformed != 5 || st.Quarantined {
		t.Fatalf("fault accounting wrong: %+v", st)
	}
}

// TestOverlongLineAbortsWithoutCollateral: a line over MaxLineBytes tears
// the stream (400) but everything accepted before it stays applied and the
// instance remains healthy.
func TestOverlongLineAbortsWithoutCollateral(t *testing.T) {
	base, _ := boot(t, serve.Options{MaxLineBytes: 1 << 10})
	createInstance(t, base, "n", core.KindFourBit, 1)
	body := `{"ev":"beacon","at":1000,"src":2,"seq":1,"lqi":90}` + "\n" +
		`{"ev":"beacon","at":2000,"src":2,"seq":2,"lqi":90,"pad":"` + strings.Repeat("x", 4096) + `"}` + "\n"
	status, data, _ := httpDo(t, http.MethodPost, base+"/v1/instances/n/events", body)
	if status != http.StatusBadRequest {
		t.Fatalf("overlong line: status %d: %s", status, data)
	}
	tab := getTable(t, base, "n")
	if tab.Applied != 1 || tab.Quarantined {
		t.Fatalf("collateral damage from overlong line: %+v", tab)
	}
}

// TestSlowConsumerBackpressure certifies both full-queue policies against a
// wedged consumer: backpressure returns 429 with a Retry-After hint and
// loses nothing it accepted; drop-oldest accepts everything and counts what
// it shed. Either way the instance recovers when the consumer resumes.
func TestSlowConsumerBackpressure(t *testing.T) {
	lines := newSynth(7, false).lines(12)

	t.Run("backpressure", func(t *testing.T) {
		base, _ := boot(t, serve.Options{QueueDepth: 4, RetryAfter: 2 * time.Second})
		createInstance(t, base, "n", core.KindFourBit, 1)
		mustDo(t, http.MethodPost, base+"/v1/instances/n/pause", "", http.StatusOK)

		status, data, hdr := httpDo(t, http.MethodPost, base+"/v1/instances/n/events", strings.Join(lines, "\n"))
		if status != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429: %s", status, data)
		}
		if ra := hdr.Get("Retry-After"); ra != "2" {
			t.Fatalf("Retry-After %q, want 2", ra)
		}
		var rep struct {
			Accepted uint64 `json:"accepted"`
		}
		decodeJSON(t, data, &rep)
		if rep.Accepted != 4 {
			t.Fatalf("accepted %d with depth 4", rep.Accepted)
		}

		mustDo(t, http.MethodPost, base+"/v1/instances/n/resume", "", http.StatusOK)
		tab := getTable(t, base, "n")
		if tab.Applied != 4 {
			t.Fatalf("applied %d after resume, want 4", tab.Applied)
		}
		// The consumer is live again: the retry goes through in full,
		// paced at the queue depth as the Retry-After contract intends.
		for i := 4; i < len(lines); i += 4 {
			mustDo(t, http.MethodPost, base+"/v1/instances/n/events",
				strings.Join(lines[i:i+4], "\n")+"\n", http.StatusOK)
			getTable(t, base, "n")
		}
		if tab := getTable(t, base, "n"); tab.Applied != 12 {
			t.Fatalf("applied %d after retry, want 12", tab.Applied)
		}
		if st := getStats(t, base, "n"); st.Robust.Backpressured == 0 {
			t.Fatalf("backpressure left no trace: %+v", st.Robust)
		}
	})

	t.Run("drop-oldest", func(t *testing.T) {
		base, _ := boot(t, serve.Options{QueueDepth: 4, Policy: serve.DropOldest})
		createInstance(t, base, "n", core.KindFourBit, 1)
		mustDo(t, http.MethodPost, base+"/v1/instances/n/pause", "", http.StatusOK)
		ingest(t, base, "n", lines) // all 12 accepted; 8 oldest shed
		mustDo(t, http.MethodPost, base+"/v1/instances/n/resume", "", http.StatusOK)
		tab := getTable(t, base, "n")
		if tab.Applied != 12 {
			t.Fatalf("applied %d, want 12 (dropped count as applied)", tab.Applied)
		}
		if st := getStats(t, base, "n"); st.Robust.DroppedOldest != 8 {
			t.Fatalf("dropped_oldest %d, want 8", st.Robust.DroppedOldest)
		}
	})
}

// TestQuarantineSnapshotCarriesPostMortem: a poisoned instance freezes
// rather than falling over; its snapshot restores into a clean, serving
// instance on a fresh server — the documented operator recovery path.
func TestQuarantineRecoveryPath(t *testing.T) {
	base, _ := boot(t, serve.Options{AllowPoison: true})
	createInstance(t, base, "n", core.KindFourBit, 1)
	ingest(t, base, "n", newSynth(9, false).lines(40))
	getTable(t, base, "n") // barrier: all 40 applied before the poison

	mustDo(t, http.MethodPost, base+"/v1/instances/n/events", `{"ev":"poison","at":99999999}`+"\n", http.StatusOK)
	deadline := time.Now().Add(5 * time.Second)
	for !getStats(t, base, "n").Quarantined {
		if time.Now().After(deadline) {
			t.Fatal("instance never quarantined")
		}
		time.Sleep(time.Millisecond)
	}
	frozen := getTable(t, base, "n")

	snap := mustDo(t, http.MethodGet, base+"/v1/instances/n/snapshot", "", http.StatusOK)
	heirBase, _ := boot(t, serve.Options{})
	mustDo(t, http.MethodPost, heirBase+"/v1/instances/n/restore", string(snap), http.StatusOK)
	revived := getTable(t, heirBase, "n")
	if revived.Quarantined {
		t.Fatal("quarantine must not survive restore")
	}
	sameView(t, "revived vs frozen", frozen, revived)
	// And the revived instance ingests again.
	ingest(t, heirBase, "n", []string{`{"ev":"rx","at":100000000,"src":2,"lqi":70}`})
	if tab := getTable(t, heirBase, "n"); tab.Applied != revived.Applied+1 {
		t.Fatalf("revived instance not ingesting: %+v", tab)
	}
}
