package chaostest

import (
	"flag"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fourbit/internal/core"
	"fourbit/internal/serve"
)

var (
	soak         = flag.Bool("soak", false, "run the serve soak (make serve-soak): sustained ingest plus one kill/restore cycle")
	soakDuration = flag.Duration("soak-duration", 60*time.Second, "total soak wall time, split across the two phases around the kill")
)

// TestServeSoak is the nightly-style endurance run: two instances per
// estimator kind under sustained concurrent ingest and queries for
// -soak-duration, with one full kill/snapshot/restore cycle in the middle.
// It passes when the service ends healthy: no quarantine, no malformed
// counts from well-formed streams, every accepted event applied, and every
// instance still answering. Run with:
//
//	go test ./internal/serve/chaostest -soak -v
func TestServeSoak(t *testing.T) {
	if !*soak {
		t.Skip("soak disabled; run with -soak (make serve-soak)")
	}

	type inst struct {
		name string
		kind core.EstimatorKind
		gen  *synth // client-side stream state survives the kill
	}
	var insts []*inst
	for i, kind := range core.EstimatorKinds() {
		for j := 0; j < 2; j++ {
			insts = append(insts, &inst{
				name: string(kind) + "-" + string(rune('a'+j)),
				kind: kind,
				gen:  newSynth(uint64(1000+i*10+j), false),
			})
		}
	}
	opts := serve.Options{QueueDepth: 512, RetryAfter: time.Second}

	var accepted, queries atomic.Uint64
	// phase drives every instance with a producer and a querier until the
	// deadline, then joins them. Producers honor backpressure.
	phase := func(base string, d time.Duration) {
		deadline := time.Now().Add(d)
		var wg sync.WaitGroup
		for _, in := range insts {
			in := in
			wg.Add(1)
			go func() { // producer
				defer wg.Done()
				for time.Now().Before(deadline) {
					body := strings.Join(in.gen.lines(200), "\n") + "\n"
					status, _, hdr := httpDo(t, http.MethodPost, base+"/v1/instances/"+in.name+"/events", body)
					switch status {
					case http.StatusOK:
						accepted.Add(200)
					case http.StatusTooManyRequests:
						if ra, err := time.ParseDuration(hdr.Get("Retry-After") + "s"); err == nil {
							time.Sleep(ra)
						}
						// Partial batches were accepted; resynthesize rather
						// than resend — the soak cares about load, not replay.
					default:
						t.Errorf("%s: ingest status %d", in.name, status)
						return
					}
				}
			}()
			wg.Add(1)
			go func() { // querier
				defer wg.Done()
				for time.Now().Before(deadline) {
					status, _, _ := httpDo(t, http.MethodGet, base+"/v1/instances/"+in.name+"/stats", "")
					if status != http.StatusOK {
						t.Errorf("%s: stats status %d", in.name, status)
						return
					}
					queries.Add(1)
					time.Sleep(10 * time.Millisecond)
				}
			}()
		}
		wg.Wait()
	}

	base, kill := boot(t, opts)
	for _, in := range insts {
		createInstance(t, base, in.name, in.kind, 7)
	}
	phase(base, *soakDuration/2)

	// Kill/restore cycle: snapshot every instance, tear the server down,
	// boot a fresh one, restore, and keep going.
	snaps := make(map[string][]byte, len(insts))
	for _, in := range insts {
		snaps[in.name] = mustDo(t, http.MethodGet, base+"/v1/instances/"+in.name+"/snapshot", "", http.StatusOK)
	}
	kill()
	t.Logf("killed server halfway: %d events accepted so far", accepted.Load())
	base, _ = boot(t, opts)
	for _, in := range insts {
		mustDo(t, http.MethodPost, base+"/v1/instances/"+in.name+"/restore", string(snaps[in.name]), http.StatusOK)
	}
	phase(base, *soakDuration/2)

	for _, in := range insts {
		tab := getTable(t, base, in.name) // barrier: everything applied
		if tab.Quarantined {
			t.Errorf("%s: quarantined", in.name)
		}
		st := getStats(t, base, in.name)
		if st.Robust.Malformed != 0 || st.Robust.Panics != 0 {
			t.Errorf("%s: faults from well-formed stream: %+v", in.name, st.Robust)
		}
		if st.Robust.Applied != st.Robust.Enqueued {
			t.Errorf("%s: %d enqueued but %d applied after barrier", in.name, st.Robust.Enqueued, st.Robust.Applied)
		}
	}
	t.Logf("soak done: %d events accepted, %d queries, %d instances, one kill/restore cycle",
		accepted.Load(), queries.Load(), len(insts))
}
