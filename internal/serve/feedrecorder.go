package serve

import (
	"io"
	"strconv"
	"sync"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// FeedRecorder is a pass-through core.LinkEstimator decorator that writes
// every feedback-hook call as one serve-wire JSONL line before delegating.
// Wrapping a simulated node's estimator with it (node.EnvConfig.WrapEstimator)
// taps that node's exact estimator event stream out of a run; replaying the
// file into a served instance of the same kind, seed, and config reproduces
// the node's table — the bridge from scenario to service.
//
// The recorder changes nothing the inner estimator sees, so the run itself
// stays bit-identical. Write errors are sticky and surfaced by Err; the
// simulation is never interrupted by a full disk.
type FeedRecorder struct {
	core.LinkEstimator
	mu     sync.Mutex
	w      io.Writer
	buf    []byte
	lastAt sim.Time // latest hook time; stamps tx lines, whose hook has no clock
	err    error
}

// NewFeedRecorder wraps est, emitting its event stream to w. Callers own
// w's buffering and closing; a bufio.Writer is recommended.
func NewFeedRecorder(est core.LinkEstimator, w io.Writer) *FeedRecorder {
	return &FeedRecorder{LinkEstimator: est, w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, if any.
func (r *FeedRecorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// flush writes the assembled line (newline-terminated) once; errors stick.
func (r *FeedRecorder) flush() {
	r.buf = append(r.buf, '\n')
	if r.err == nil {
		_, r.err = r.w.Write(r.buf)
	}
}

// appendMeta appends the shared rx-metadata fields.
func (r *FeedRecorder) appendMeta(meta core.RxMeta) {
	r.buf = append(r.buf, `,"lqi":`...)
	r.buf = strconv.AppendUint(r.buf, uint64(meta.LQI), 10)
	r.buf = append(r.buf, `,"white":`...)
	r.buf = strconv.AppendBool(r.buf, meta.White)
	if meta.SNRdB != 0 {
		r.buf = append(r.buf, `,"snr":`...)
		r.buf = strconv.AppendFloat(r.buf, meta.SNRdB, 'g', -1, 64)
	}
}

// head begins a line: {"ev":"<ev>","at":<at>.
func (r *FeedRecorder) head(ev string, at sim.Time) {
	if at > r.lastAt {
		r.lastAt = at
	}
	r.buf = append(r.buf[:0], `{"ev":"`...)
	r.buf = append(r.buf, ev...)
	r.buf = append(r.buf, `","at":`...)
	r.buf = strconv.AppendInt(r.buf, int64(at), 10)
}

// OnBeacon records the beacon (envelope fields and footer included) and
// delegates.
func (r *FeedRecorder) OnBeacon(src packet.Addr, le *packet.LEFrame, meta core.RxMeta, now sim.Time) ([]byte, bool) {
	r.mu.Lock()
	r.head(EvBeacon, now)
	r.buf = append(r.buf, `,"src":`...)
	r.buf = strconv.AppendUint(r.buf, uint64(src), 10)
	r.buf = append(r.buf, `,"seq":`...)
	r.buf = strconv.AppendUint(r.buf, uint64(le.Seq), 10)
	r.appendMeta(meta)
	if len(le.Entries) > 0 {
		r.buf = append(r.buf, `,"links":[`...)
		for i, e := range le.Entries {
			if i > 0 {
				r.buf = append(r.buf, ',')
			}
			r.buf = append(r.buf, `{"addr":`...)
			r.buf = strconv.AppendUint(r.buf, uint64(e.Addr), 10)
			r.buf = append(r.buf, `,"q":`...)
			r.buf = strconv.AppendUint(r.buf, uint64(e.InQuality), 10)
			r.buf = append(r.buf, '}')
		}
		r.buf = append(r.buf, ']')
	}
	r.buf = append(r.buf, '}')
	r.flush()
	r.mu.Unlock()
	return r.LinkEstimator.OnBeacon(src, le, meta, now)
}

// TxResult records the ack bit and delegates. The wire carries no time for
// tx events from this path (the hook has none); the server's monotone
// ingest clock orders them after the preceding beacon/rx event, which is
// exactly where they happened.
func (r *FeedRecorder) TxResult(dest packet.Addr, acked bool) {
	r.mu.Lock()
	r.head(EvTx, r.lastAtLocked())
	r.buf = append(r.buf, `,"dest":`...)
	r.buf = strconv.AppendUint(r.buf, uint64(dest), 10)
	r.buf = append(r.buf, `,"acked":`...)
	r.buf = strconv.AppendBool(r.buf, acked)
	r.buf = append(r.buf, '}')
	r.flush()
	r.mu.Unlock()
	r.LinkEstimator.TxResult(dest, acked)
}

// OnOverhear records the overheard frame and delegates.
func (r *FeedRecorder) OnOverhear(src packet.Addr, meta core.RxMeta, now sim.Time) {
	r.mu.Lock()
	r.head(EvRx, now)
	r.buf = append(r.buf, `,"src":`...)
	r.buf = strconv.AppendUint(r.buf, uint64(src), 10)
	r.appendMeta(meta)
	r.buf = append(r.buf, '}')
	r.flush()
	r.mu.Unlock()
	r.LinkEstimator.OnOverhear(src, meta, now)
}

// Age records the aging pass and delegates.
func (r *FeedRecorder) Age(maxSilence sim.Time, now sim.Time) {
	r.mu.Lock()
	r.head(EvAge, now)
	r.buf = append(r.buf, `,"silence":`...)
	r.buf = strconv.AppendInt(r.buf, int64(maxSilence), 10)
	r.buf = append(r.buf, '}')
	r.flush()
	r.mu.Unlock()
	r.LinkEstimator.Age(maxSilence, now)
}

func (r *FeedRecorder) lastAtLocked() sim.Time { return r.lastAt }
