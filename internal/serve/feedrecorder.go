package serve

import (
	"io"
	"sync"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/serve/wire"
	"fourbit/internal/sim"
)

// FeedRecorder is a pass-through core.LinkEstimator decorator that writes
// every feedback-hook call as one serve-wire JSONL line before delegating.
// Wrapping a simulated node's estimator with it (node.EnvConfig.WrapEstimator)
// taps that node's exact estimator event stream out of a run; replaying the
// file into a served instance of the same kind, seed, and config reproduces
// the node's table — the bridge from scenario to service. The lines are the
// canonical wire.AppendJSONLEvent grammar, so they take the decoder's fast
// path and convert losslessly to the binary batch format (feedconv).
//
// The recorder changes nothing the inner estimator sees, so the run itself
// stays bit-identical. Write errors are sticky and surfaced by Err; the
// simulation is never interrupted by a full disk.
type FeedRecorder struct {
	core.LinkEstimator
	mu     sync.Mutex
	w      io.Writer
	buf    []byte
	ev     wire.Event
	lastAt sim.Time // latest hook time; stamps tx lines, whose hook has no clock
	err    error
}

// NewFeedRecorder wraps est, emitting its event stream to w. Callers own
// w's buffering and closing; a bufio.Writer is recommended.
func NewFeedRecorder(est core.LinkEstimator, w io.Writer) *FeedRecorder {
	return &FeedRecorder{LinkEstimator: est, w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, if any.
func (r *FeedRecorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// emit serializes r.ev as one canonical line; write errors stick.
func (r *FeedRecorder) emit(at sim.Time) {
	if at > r.lastAt {
		r.lastAt = at
	}
	r.ev.At = at
	r.buf = wire.AppendJSONLEvent(r.buf[:0], &r.ev)
	r.buf = append(r.buf, '\n')
	if r.err == nil {
		_, r.err = r.w.Write(r.buf)
	}
}

// OnBeacon records the beacon (envelope fields and footer included) and
// delegates.
func (r *FeedRecorder) OnBeacon(src packet.Addr, le *packet.LEFrame, meta core.RxMeta, now sim.Time) ([]byte, bool) {
	r.mu.Lock()
	r.ev = wire.Event{Ev: wire.EvBeacon, Src: src, Seq: le.Seq,
		LQI: meta.LQI, White: meta.White, SNR: meta.SNRdB, Links: le.Entries}
	r.emit(now)
	r.mu.Unlock()
	return r.LinkEstimator.OnBeacon(src, le, meta, now)
}

// TxResult records the ack bit and delegates. The wire carries no time for
// tx events from this path (the hook has none); the server's monotone
// ingest clock orders them after the preceding beacon/rx event, which is
// exactly where they happened.
func (r *FeedRecorder) TxResult(dest packet.Addr, acked bool) {
	r.mu.Lock()
	r.ev = wire.Event{Ev: wire.EvTx, Src: dest, Acked: acked}
	r.emit(r.lastAt)
	r.mu.Unlock()
	r.LinkEstimator.TxResult(dest, acked)
}

// OnOverhear records the overheard frame and delegates.
func (r *FeedRecorder) OnOverhear(src packet.Addr, meta core.RxMeta, now sim.Time) {
	r.mu.Lock()
	r.ev = wire.Event{Ev: wire.EvRx, Src: src, LQI: meta.LQI, White: meta.White, SNR: meta.SNRdB}
	r.emit(now)
	r.mu.Unlock()
	r.LinkEstimator.OnOverhear(src, meta, now)
}

// Age records the aging pass and delegates.
func (r *FeedRecorder) Age(maxSilence sim.Time, now sim.Time) {
	r.mu.Lock()
	r.ev = wire.Event{Ev: wire.EvAge, Silence: maxSilence}
	r.emit(now)
	r.mu.Unlock()
	r.LinkEstimator.Age(maxSilence, now)
}
