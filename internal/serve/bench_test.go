package serve

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/serve/wire"
	"fourbit/internal/sim"
)

// benchLines builds a representative wire stream: mostly footered beacons,
// some tx/rx/age — the shape a scenario feed replays.
func benchLines(n int) [][]byte {
	r := sim.NewRand(0xBE7C)
	var now int64
	var seqs [32]uint16
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		now += 1 + r.Int63n(int64(sim.Second))
		src := 1 + r.Intn(18)
		var line string
		switch k := r.Intn(10); {
		case k < 6:
			seqs[src]++
			line = fmt.Sprintf(`{"ev":"beacon","at":%d,"src":%d,"seq":%d,"lqi":%d,"white":true,"links":[{"addr":0,"q":%d}]}`,
				now, src, seqs[src], 40+r.Intn(80), r.Intn(256))
		case k < 8:
			line = fmt.Sprintf(`{"ev":"tx","at":%d,"dest":%d,"acked":%v}`, now, src, r.Bernoulli(0.7))
		case k < 9:
			line = fmt.Sprintf(`{"ev":"rx","at":%d,"src":%d,"lqi":%d}`, now, src, 40+r.Intn(60))
		default:
			line = fmt.Sprintf(`{"ev":"age","at":%d,"silence":%d}`, now, 2*int64(sim.Second))
		}
		out = append(out, []byte(line))
	}
	return out
}

// benchFrame encodes the same stream benchLines yields as one binary frame,
// so the two ingest sub-benchmarks push identical event sequences.
func benchFrame(b *testing.B, lines [][]byte) []byte {
	b.Helper()
	var dec EventDecoder
	evs := make([]Event, len(lines))
	for i, line := range lines {
		if err := dec.Decode(line, &evs[i]); err != nil {
			b.Fatal(err)
		}
		evs[i].Links = append([]packet.LinkEntry(nil), evs[i].Links...)
	}
	frame, err := wire.AppendBatch(nil, evs)
	if err != nil {
		b.Fatal(err)
	}
	return frame
}

// BenchmarkServeDecodeEvent measures the per-line cost of the strict wire
// decoder — the hot edge of every JSONL ingest request. Budgeted in
// scripts/alloc_budget.txt: the fast path's scratch reuse must hold.
func BenchmarkServeDecodeEvent(b *testing.B) {
	lines := benchLines(1024)
	var dec EventDecoder
	var ev Event
	for _, line := range lines { // warm scratch: 1x runs measure steady state
		if err := dec.Decode(line, &ev); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(lines[i%len(lines)], &ev); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInstances builds n warm estimator instances and registers cleanup.
func benchInstances(b *testing.B, n int) []*instance {
	b.Helper()
	ins := make([]*instance, n)
	for i := range ins {
		in, err := newInstance(fmt.Sprintf("bench-%d", i), core.KindFourBit, 0, core.DefaultConfig(),
			uint64(i), 1024, Backpressure)
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
		b.Cleanup(func() { <-in.close() })
	}
	return ins
}

// BenchmarkServeIngest measures end-to-end ingest throughput past the HTTP
// edge for both wire formats: 8 concurrent instances, each decoding and
// applying a 512-event batch per op through its bounded queue and worker,
// barrier-synced. The jsonl leg decodes line by line and admits event by
// event; the binary leg decodes one frame and admits the batch in one ring
// transaction — the tentpole hot path. events/sec is the per-process
// ceiling; allocs/op is budgeted in scripts/alloc_budget.txt.
func BenchmarkServeIngest(b *testing.B) {
	const instances = 8
	const batch = 512
	lines := benchLines(batch)

	bench := func(b *testing.B, run func(in *instance, slot int)) {
		ins := benchInstances(b, instances)
		iter := func() {
			var wg sync.WaitGroup
			for i, in := range ins {
				i, in := i, in
				wg.Add(1)
				go func() {
					defer wg.Done()
					run(in, i)
					in.barrier(nil)
				}()
			}
			wg.Wait()
		}
		iter() // warm slot buffers and tables so 1x runs are steady-state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			iter()
		}
		b.StopTimer()
		b.ReportMetric(float64(instances*batch*b.N)/b.Elapsed().Seconds(), "events/sec")
	}

	b.Run("jsonl", func(b *testing.B) {
		decs := make([]EventDecoder, instances)
		bench(b, func(in *instance, slot int) {
			dec := &decs[slot]
			var ev Event
			for _, line := range lines {
				if err := dec.Decode(line, &ev); err != nil {
					b.Error(err)
					return
				}
				for {
					err := in.enqueue(&ev)
					if err == nil {
						break
					}
					if err != ErrQueueFull {
						b.Error(err)
						return
					}
					in.barrier(nil) // wait out the worker, then retry
				}
			}
		})
	})

	b.Run("binary", func(b *testing.B) {
		frame := benchFrame(b, lines)
		frs := make([]*wire.FrameReader, instances)
		rds := make([]*bytes.Reader, instances)
		for i := range frs {
			frs[i] = wire.NewFrameReader(nil, 0, false)
			rds[i] = bytes.NewReader(nil)
		}
		bench(b, func(in *instance, slot int) {
			rd, fr := rds[slot], frs[slot]
			rd.Reset(frame)
			fr.Reset(rd)
			for {
				evs, err := fr.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					b.Error(err)
					return
				}
				for len(evs) > 0 {
					n, err := in.enqueueBatch(evs)
					evs = evs[n:]
					if err == nil {
						break
					}
					if err != ErrQueueFull {
						b.Error(err)
						return
					}
					in.barrier(nil) // wait out the worker, then retry
				}
			}
		})
	})
}
