package serve

import (
	"fmt"
	"sync"
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/sim"
)

// benchLines builds a representative wire stream: mostly footered beacons,
// some tx/rx/age — the shape a scenario feed replays.
func benchLines(n int) [][]byte {
	r := sim.NewRand(0xBE7C)
	var now int64
	var seqs [32]uint16
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		now += 1 + r.Int63n(int64(sim.Second))
		src := 1 + r.Intn(18)
		var line string
		switch k := r.Intn(10); {
		case k < 6:
			seqs[src]++
			line = fmt.Sprintf(`{"ev":"beacon","at":%d,"src":%d,"seq":%d,"lqi":%d,"white":true,"links":[{"addr":0,"q":%d}]}`,
				now, src, seqs[src], 40+r.Intn(80), r.Intn(256))
		case k < 8:
			line = fmt.Sprintf(`{"ev":"tx","at":%d,"dest":%d,"acked":%v}`, now, src, r.Bernoulli(0.7))
		case k < 9:
			line = fmt.Sprintf(`{"ev":"rx","at":%d,"src":%d,"lqi":%d}`, now, src, 40+r.Intn(60))
		default:
			line = fmt.Sprintf(`{"ev":"age","at":%d,"silence":%d}`, now, 2*int64(sim.Second))
		}
		out = append(out, []byte(line))
	}
	return out
}

// BenchmarkServeDecodeEvent measures the per-line cost of the strict wire
// decoder — the hot edge of every ingest request. Budgeted in
// scripts/alloc_budget.txt: the decoder's scratch reuse must hold.
func BenchmarkServeDecodeEvent(b *testing.B) {
	lines := benchLines(1024)
	var dec EventDecoder
	var ev Event
	for _, line := range lines { // warm scratch: 1x runs measure steady state
		if err := dec.Decode(line, &ev); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(lines[i%len(lines)], &ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeIngest measures end-to-end ingest throughput past the HTTP
// edge: 8 concurrent instances, each decoding and applying a 512-event
// batch per op through its bounded queue and worker, barrier-synced. The
// reported events/sec is the service's per-process ceiling; allocs/op is
// budgeted in scripts/alloc_budget.txt (steady-state slot and scratch reuse
// across decoder, queue, and estimator).
func BenchmarkServeIngest(b *testing.B) {
	const instances = 8
	const batch = 512
	lines := benchLines(batch)
	ins := make([]*instance, instances)
	for i := range ins {
		in, err := newInstance(fmt.Sprintf("bench-%d", i), core.KindFourBit, 0, core.DefaultConfig(),
			uint64(i), 1024, Backpressure)
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
		defer func() { <-in.close() }()
	}
	run := func() {
		var wg sync.WaitGroup
		for _, in := range ins {
			in := in
			wg.Add(1)
			go func() {
				defer wg.Done()
				var dec EventDecoder
				var ev Event
				for _, line := range lines {
					if err := dec.Decode(line, &ev); err != nil {
						b.Error(err)
						return
					}
					for {
						err := in.enqueue(&ev)
						if err == nil {
							break
						}
						if err != ErrQueueFull {
							b.Error(err)
							return
						}
						in.barrier(nil) // wait out the worker, then retry
					}
				}
				in.barrier(nil)
			}()
		}
		wg.Wait()
	}
	run() // warm slot buffers and tables so one-iteration runs are steady-state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	b.ReportMetric(float64(instances*batch*b.N)/b.Elapsed().Seconds(), "events/sec")
}
