package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer wires a Server behind httptest with test-friendly options.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// do issues a request and decodes the JSON response into out (if non-nil).
func do(t *testing.T, method, url, body string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp
}

func mustStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("status = %d, want %d", resp.StatusCode, want)
	}
}

func createInstance(t *testing.T, base, name, kind string) {
	t.Helper()
	resp := do(t, "POST", base+"/v1/instances",
		fmt.Sprintf(`{"name":%q,"kind":%q,"self":0,"seed":7}`, name, kind), nil)
	mustStatus(t, resp, http.StatusCreated)
}

// beaconLine builds one wire beacon line.
func beaconLine(at int64, src, seq, lqi int) string {
	return fmt.Sprintf(`{"ev":"beacon","at":%d,"src":%d,"seq":%d,"lqi":%d,"white":true,"links":[{"addr":0,"q":200}]}`,
		at, src, seq, lqi)
}

// --- Decoder ----------------------------------------------------------

func TestDecodeEventTyped(t *testing.T) {
	cases := []struct {
		name string
		line string
		want error // nil = accepted
	}{
		{"beacon ok", beaconLine(1, 2, 3, 99), nil},
		{"tx ok", `{"ev":"tx","at":5,"dest":3,"acked":true}`, nil},
		{"rx ok", `{"ev":"rx","at":5,"src":3,"lqi":80}`, nil},
		{"age ok", `{"ev":"age","at":5,"silence":1000}`, nil},
		{"not json", `{"ev":`, ErrEventSyntax},
		{"wrong field type", `{"ev":"tx","at":"soon","dest":3,"acked":true}`, ErrEventSyntax},
		{"array not object", `[1,2,3]`, ErrEventSyntax},
		{"no kind", `{"at":5}`, ErrEventKind},
		{"unknown kind", `{"ev":"bogus","at":5}`, ErrEventKind},
		{"poison rejected by default", `{"ev":"poison","at":5}`, ErrEventKind},
		{"missing at", `{"ev":"tx","dest":3,"acked":true}`, ErrEventField},
		{"negative at", `{"ev":"tx","at":-5,"dest":3,"acked":true}`, ErrEventField},
		{"beacon missing src", `{"ev":"beacon","at":1,"seq":2,"lqi":3}`, ErrEventField},
		{"beacon src broadcast", `{"ev":"beacon","at":1,"src":65535,"seq":2,"lqi":3}`, ErrEventField},
		{"beacon seq range", `{"ev":"beacon","at":1,"src":2,"seq":70000,"lqi":3}`, ErrEventField},
		{"beacon lqi range", `{"ev":"beacon","at":1,"src":2,"seq":3,"lqi":300}`, ErrEventField},
		{"beacon link q range", `{"ev":"beacon","at":1,"src":2,"seq":3,"lqi":4,"links":[{"addr":1,"q":999}]}`, ErrEventField},
		{"beacon link addr missing", `{"ev":"beacon","at":1,"src":2,"seq":3,"lqi":4,"links":[{"q":9}]}`, ErrEventField},
		{"tx missing acked", `{"ev":"tx","at":5,"dest":3}`, ErrEventField},
		{"tx missing dest", `{"ev":"tx","at":5,"acked":true}`, ErrEventField},
		{"rx lqi range", `{"ev":"rx","at":5,"src":3,"lqi":-1}`, ErrEventField},
		{"age zero silence", `{"ev":"age","at":5,"silence":0}`, ErrEventField},
	}
	var dec EventDecoder
	var ev Event
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := dec.Decode([]byte(tc.line), &ev)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Decode(%s) = %v, want ok", tc.line, err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode(%s) = %v, want %v", tc.line, err, tc.want)
			}
		})
	}
}

func TestDecodeEventFootersReused(t *testing.T) {
	var dec EventDecoder
	var ev Event
	if err := dec.Decode([]byte(beaconLine(1, 2, 3, 99)), &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Links) != 1 || ev.Links[0].InQuality != 200 {
		t.Fatalf("links = %+v", ev.Links)
	}
	if err := dec.Decode([]byte(`{"ev":"beacon","at":2,"src":2,"seq":4,"lqi":9}`), &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Links) != 0 {
		t.Fatalf("stale links survived: %+v", ev.Links)
	}
}

func TestDecodePoisonGated(t *testing.T) {
	dec := EventDecoder{AllowPoison: true}
	var ev Event
	if err := dec.Decode([]byte(`{"ev":"poison","at":5}`), &ev); err != nil {
		t.Fatalf("gated poison refused: %v", err)
	}
	if ev.Ev != EvPoison {
		t.Fatalf("ev = %q", ev.Ev)
	}
}

// --- Lifecycle and ingest --------------------------------------------

func TestCreateIngestQuery(t *testing.T) {
	_, ts := testServer(t, Options{})
	createInstance(t, ts.URL, "n1", "4bit")

	var lines strings.Builder
	for i := 1; i <= 40; i++ {
		lines.WriteString(beaconLine(int64(i)*1_000_000, 7, i, 100) + "\n")
	}
	var rep ingestReport
	resp := do(t, "POST", ts.URL+"/v1/instances/n1/events", lines.String(), &rep)
	mustStatus(t, resp, http.StatusOK)
	if rep.Accepted != 40 || rep.Malformed != 0 {
		t.Fatalf("report = %+v", rep)
	}

	var table struct {
		Neighbors []neighborView `json:"neighbors"`
		Applied   uint64         `json:"applied"`
	}
	resp = do(t, "GET", ts.URL+"/v1/instances/n1/table", "", &table)
	mustStatus(t, resp, http.StatusOK)
	if table.Applied != 40 {
		t.Fatalf("applied = %d, want 40 (read-your-writes barrier)", table.Applied)
	}
	if len(table.Neighbors) != 1 || table.Neighbors[0].Addr != 7 || !table.Neighbors[0].HasETX {
		t.Fatalf("table = %+v", table.Neighbors)
	}

	var q struct {
		Known  bool    `json:"known"`
		ETX    float64 `json:"etx"`
		ETXHex string  `json:"etx_hex"`
	}
	resp = do(t, "GET", ts.URL+"/v1/instances/n1/quality?addr=7", "", &q)
	mustStatus(t, resp, http.StatusOK)
	if !q.Known || q.ETX <= 0 || q.ETXHex == "" {
		t.Fatalf("quality = %+v", q)
	}
	resp = do(t, "GET", ts.URL+"/v1/instances/n1/quality?addr=9", "", &q)
	mustStatus(t, resp, http.StatusOK)
	if q.Known {
		t.Fatal("unknown neighbor reported known")
	}
}

func TestMalformedLinesCountedNotFatal(t *testing.T) {
	_, ts := testServer(t, Options{})
	createInstance(t, ts.URL, "n1", "wmewma")
	body := beaconLine(1, 2, 1, 90) + "\n" +
		"this is not json\n" +
		`{"ev":"warp","at":9}` + "\n" +
		beaconLine(2, 2, 2, 90) + "\n" +
		`{"ev":"beacon","at":3,"src":70000,"seq":3,"lqi":9}` + "\n" +
		beaconLine(3, 2, 3, 90) // truncated stream: no trailing newline
	var rep ingestReport
	resp := do(t, "POST", ts.URL+"/v1/instances/n1/events", body, &rep)
	mustStatus(t, resp, http.StatusOK)
	if rep.Accepted != 3 || rep.Malformed != 3 || rep.Lines != 6 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.LastError, "line 2") {
		t.Fatalf("LastError = %q, want first bad line context", rep.LastError)
	}
	var st struct {
		Robust RobustStats `json:"robust"`
	}
	do(t, "GET", ts.URL+"/v1/instances/n1/stats", "", &st)
	if st.Robust.Malformed != 3 || st.Robust.Enqueued != 3 {
		t.Fatalf("robust = %+v", st.Robust)
	}
}

func TestBackpressure429(t *testing.T) {
	_, ts := testServer(t, Options{QueueDepth: 4, RetryAfter: 2 * time.Second})
	createInstance(t, ts.URL, "n1", "4bit")
	// Pause the worker so the queue fills deterministically.
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/pause", "", nil), http.StatusOK)

	var lines strings.Builder
	for i := 1; i <= 10; i++ {
		lines.WriteString(beaconLine(int64(i), 3, i, 80) + "\n")
	}
	var rep ingestReport
	resp := do(t, "POST", ts.URL+"/v1/instances/n1/events", lines.String(), &rep)
	mustStatus(t, resp, http.StatusTooManyRequests)
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	if rep.Accepted != 4 {
		t.Fatalf("accepted = %d, want exactly the queue depth", rep.Accepted)
	}
	var st struct {
		Robust RobustStats `json:"robust"`
	}
	do(t, "GET", ts.URL+"/v1/instances/n1/stats", "", &st)
	if st.Robust.Backpressured == 0 {
		t.Fatalf("robust = %+v, want backpressure counted", st.Robust)
	}

	// Resume: the queue drains and ingest works again.
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/resume", "", nil), http.StatusOK)
	resp = do(t, "POST", ts.URL+"/v1/instances/n1/events", beaconLine(99, 3, 99, 80), &rep)
	mustStatus(t, resp, http.StatusOK)
}

func TestDropOldestPolicy(t *testing.T) {
	_, ts := testServer(t, Options{QueueDepth: 4, Policy: DropOldest})
	createInstance(t, ts.URL, "n1", "pdr")
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/pause", "", nil), http.StatusOK)

	var lines strings.Builder
	for i := 1; i <= 10; i++ {
		lines.WriteString(beaconLine(int64(i), 3, i, 80) + "\n")
	}
	var rep ingestReport
	resp := do(t, "POST", ts.URL+"/v1/instances/n1/events", lines.String(), &rep)
	mustStatus(t, resp, http.StatusOK)
	if rep.Accepted != 10 {
		t.Fatalf("accepted = %d, want all 10 under drop-oldest", rep.Accepted)
	}
	var st struct {
		Robust RobustStats `json:"robust"`
	}
	do(t, "GET", ts.URL+"/v1/instances/n1/stats", "", &st)
	if st.Robust.DroppedOldest != 6 {
		t.Fatalf("dropped = %d, want 6 (10 in, depth 4)", st.Robust.DroppedOldest)
	}
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/resume", "", nil), http.StatusOK)

	// The surviving events are the newest four: seqs 7..10.
	var table struct {
		Neighbors []neighborView `json:"neighbors"`
	}
	do(t, "GET", ts.URL+"/v1/instances/n1/table", "", &table)
	if len(table.Neighbors) != 1 {
		t.Fatalf("table = %+v", table.Neighbors)
	}
}

func TestOutOfOrderClampAndDupCounters(t *testing.T) {
	_, ts := testServer(t, Options{})
	createInstance(t, ts.URL, "n1", "4bit")
	body := beaconLine(100, 3, 1, 80) + "\n" +
		beaconLine(50, 3, 2, 80) + "\n" + // time runs backward: clamped
		beaconLine(200, 3, 2, 80) + "\n" + // same src+seq again: dup
		beaconLine(300, 4, 2, 80) // different src, same seq: not a dup
	var rep ingestReport
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/events", body, &rep), http.StatusOK)
	if rep.Accepted != 4 {
		t.Fatalf("report = %+v", rep)
	}
	do(t, "GET", ts.URL+"/v1/instances/n1/table", "", nil) // barrier
	var st struct {
		Robust RobustStats `json:"robust"`
	}
	do(t, "GET", ts.URL+"/v1/instances/n1/stats", "", &st)
	if st.Robust.OutOfOrder != 1 || st.Robust.DupBeacons != 1 {
		t.Fatalf("robust = %+v, want 1 out-of-order and 1 dup", st.Robust)
	}
}

func TestPoisonQuarantineIsolatesInstance(t *testing.T) {
	_, ts := testServer(t, Options{AllowPoison: true})
	createInstance(t, ts.URL, "sick", "4bit")
	createInstance(t, ts.URL, "healthy", "4bit")

	body := beaconLine(1, 3, 1, 80) + "\n" + `{"ev":"poison","at":2}` + "\n"
	var rep ingestReport
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/sick/events", body, &rep), http.StatusOK)

	// The sick instance quarantines; its state stays queryable.
	deadline := time.Now().Add(5 * time.Second)
	var st struct {
		Quarantined bool        `json:"quarantined"`
		Panic       string      `json:"panic"`
		Robust      RobustStats `json:"robust"`
	}
	for {
		do(t, "GET", ts.URL+"/v1/instances/sick/stats", "", &st)
		if st.Quarantined || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !st.Quarantined || st.Robust.Panics != 1 || !strings.Contains(st.Panic, "poison") {
		t.Fatalf("stats = %+v", st)
	}

	// Further ingest to the quarantined instance is refused with 409...
	resp := do(t, "POST", ts.URL+"/v1/instances/sick/events", beaconLine(3, 3, 2, 80), &rep)
	mustStatus(t, resp, http.StatusConflict)
	// ...its frozen table still answers...
	var table struct {
		Neighbors   []neighborView `json:"neighbors"`
		Quarantined bool           `json:"quarantined"`
	}
	mustStatus(t, do(t, "GET", ts.URL+"/v1/instances/sick/table", "", &table), http.StatusOK)
	if !table.Quarantined || len(table.Neighbors) != 1 {
		t.Fatalf("table = %+v", table)
	}
	// ...and the healthy instance is untouched.
	resp = do(t, "POST", ts.URL+"/v1/instances/healthy/events", beaconLine(5, 9, 1, 80), &rep)
	mustStatus(t, resp, http.StatusOK)

	// Restore-from-snapshot is the recovery path: a pre-quarantine snapshot
	// clears the quarantine.
	var snap InstanceSnapshot
	mustStatus(t, do(t, "GET", ts.URL+"/v1/instances/sick/snapshot", "", &snap), http.StatusOK)
	blob, _ := json.Marshal(&snap)
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/sick/restore", string(blob), nil), http.StatusOK)
	resp = do(t, "POST", ts.URL+"/v1/instances/sick/events", beaconLine(6, 3, 2, 80), &rep)
	mustStatus(t, resp, http.StatusOK)
}

func TestSnapshotRestoreHTTPRoundTrip(t *testing.T) {
	_, ts := testServer(t, Options{})
	createInstance(t, ts.URL, "a", "lqi")
	var lines strings.Builder
	for i := 1; i <= 30; i++ {
		lines.WriteString(beaconLine(int64(i)*1_000_000, 5, i, 120) + "\n")
	}
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/a/events", lines.String(), nil), http.StatusOK)

	var snap json.RawMessage
	mustStatus(t, do(t, "GET", ts.URL+"/v1/instances/a/snapshot", "", &snap), http.StatusOK)

	// Restore under a new name; both must answer identically, bit for bit.
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/b/restore", string(snap), nil), http.StatusOK)
	var qa, qb struct {
		Known  bool   `json:"known"`
		ETXHex string `json:"etx_hex"`
	}
	do(t, "GET", ts.URL+"/v1/instances/a/quality?addr=5", "", &qa)
	do(t, "GET", ts.URL+"/v1/instances/b/quality?addr=5", "", &qb)
	if !qa.Known || qa.ETXHex != qb.ETXHex {
		t.Fatalf("restored answer differs: %+v vs %+v", qa, qb)
	}

	// Version gate: a foreign snapshot version is refused.
	var mut map[string]any
	if err := json.Unmarshal(snap, &mut); err != nil {
		t.Fatal(err)
	}
	mut["version"] = SnapshotVersion + 1
	blob, _ := json.Marshal(mut)
	resp := do(t, "POST", ts.URL+"/v1/instances/c/restore", string(blob), nil)
	mustStatus(t, resp, http.StatusConflict)
}

func TestIdleEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s, ts := testServer(t, Options{IdleEvict: 60 * time.Second, JanitorInterval: time.Hour, Clock: clock})
	createInstance(t, ts.URL, "old", "4bit")
	createInstance(t, ts.URL, "fresh", "4bit")

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	do(t, "GET", ts.URL+"/v1/instances/fresh/stats", "", nil) // touch

	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	mustStatus(t, do(t, "GET", ts.URL+"/v1/instances/old/stats", "", nil), http.StatusNotFound)
	mustStatus(t, do(t, "GET", ts.URL+"/v1/instances/fresh/stats", "", nil), http.StatusOK)
	var st struct {
		Lifecycle ServerStats `json:"lifecycle"`
	}
	do(t, "GET", ts.URL+"/v1/stats", "", &st)
	if st.Lifecycle.Evicted != 1 {
		t.Fatalf("lifecycle = %+v", st.Lifecycle)
	}
}

func TestRequestDeadlineOnBarrier(t *testing.T) {
	_, ts := testServer(t, Options{RequestTimeout: 50 * time.Millisecond})
	createInstance(t, ts.URL, "n1", "4bit")
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/pause", "", nil), http.StatusOK)
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/events", beaconLine(1, 2, 1, 80), nil), http.StatusOK)
	// The queue cannot drain while paused: the query must time out, not hang.
	resp := do(t, "GET", ts.URL+"/v1/instances/n1/table", "", nil)
	mustStatus(t, resp, http.StatusGatewayTimeout)
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/resume", "", nil), http.StatusOK)
}

func TestServerErrorsAndLimits(t *testing.T) {
	_, ts := testServer(t, Options{MaxInstances: 2})

	for _, tc := range []struct {
		name, method, path, body string
		status                   int
	}{
		{"unknown route", "GET", "/v2/nope", "", http.StatusNotFound},
		{"bad method on collection", "DELETE", "/v1/instances", "", http.StatusMethodNotAllowed},
		{"create bad json", "POST", "/v1/instances", `{"name":`, http.StatusBadRequest},
		{"create bad name", "POST", "/v1/instances", `{"name":"a/b","kind":"4bit"}`, http.StatusBadRequest},
		{"create bad kind", "POST", "/v1/instances", `{"name":"x","kind":"psychic"}`, http.StatusBadRequest},
		{"missing instance table", "GET", "/v1/instances/ghost/table", "", http.StatusNotFound},
		{"missing instance delete", "DELETE", "/v1/instances/ghost", "", http.StatusNotFound},
		{"bad addr query", "GET", "/v1/instances/ghost/quality?addr=zebra", "", http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var e apiError
			resp := do(t, tc.method, ts.URL+tc.path, tc.body, &e)
			mustStatus(t, resp, tc.status)
			if e.Error == "" {
				t.Fatal("error body missing")
			}
		})
	}

	createInstance(t, ts.URL, "one", "4bit")
	// Duplicate name.
	resp := do(t, "POST", ts.URL+"/v1/instances", `{"name":"one","kind":"4bit"}`, nil)
	mustStatus(t, resp, http.StatusConflict)
	createInstance(t, ts.URL, "two", "4bit")
	// Instance limit.
	resp = do(t, "POST", ts.URL+"/v1/instances", `{"name":"three","kind":"4bit"}`, nil)
	mustStatus(t, resp, http.StatusServiceUnavailable)
	// Delete frees a slot.
	mustStatus(t, do(t, "DELETE", ts.URL+"/v1/instances/one", "", nil), http.StatusOK)
	createInstance(t, ts.URL, "three", "4bit")

	var list struct {
		Instances []struct {
			Name string `json:"name"`
		} `json:"instances"`
	}
	mustStatus(t, do(t, "GET", ts.URL+"/v1/instances", "", &list), http.StatusOK)
	if len(list.Instances) != 2 || list.Instances[0].Name != "three" || list.Instances[1].Name != "two" {
		t.Fatalf("list = %+v", list.Instances)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	createInstance(t, ts.URL, "n1", "4bit")
	mustStatus(t, do(t, "POST", ts.URL+"/v1/instances/n1/events", beaconLine(1, 2, 1, 80), nil), http.StatusOK)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := do(t, "GET", ts.URL+"/v1/healthz", "", nil)
	mustStatus(t, resp, http.StatusServiceUnavailable)
	resp = do(t, "POST", ts.URL+"/v1/instances/n1/events", beaconLine(2, 2, 2, 80), nil)
	mustStatus(t, resp, http.StatusServiceUnavailable)
	resp = do(t, "POST", ts.URL+"/v1/instances", `{"name":"late","kind":"4bit"}`, nil)
	mustStatus(t, resp, http.StatusServiceUnavailable)
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestParseOverflowPolicy(t *testing.T) {
	for s, want := range map[string]OverflowPolicy{"": Backpressure, "backpressure": Backpressure, "drop-oldest": DropOldest} {
		got, err := ParseOverflowPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseOverflowPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseOverflowPolicy("fifo"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if Backpressure.String() != "backpressure" || DropOldest.String() != "drop-oldest" {
		t.Fatal("policy names drifted from the parser")
	}
}
