package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"fourbit/internal/packet"
)

// sampleEvents covers every kind and every optional field combination.
func sampleEvents() []Event {
	return []Event{
		{Ev: EvBeacon, At: 10, Src: 2, Seq: 65535, LQI: 99, White: true, SNR: 7.5,
			Links: []packet.LinkEntry{{Addr: 0, InQuality: 200}, {Addr: 65533, InQuality: 0}}},
		{Ev: EvBeacon, At: 11, Src: 3, Seq: 0, LQI: 0},
		{Ev: EvTx, At: 20, Src: 3, Acked: true},
		{Ev: EvTx, At: 21, Src: 0, Acked: false},
		{Ev: EvRx, At: 30, Src: 4, LQI: 80, White: false, SNR: -2.25},
		{Ev: EvRx, At: 31, Src: 5, LQI: 1, White: true},
		{Ev: EvAge, At: 40, Silence: 1_000_000},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	evs := sampleEvents()
	frame, err := AppendBatch(nil, evs)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	var dec BatchDecoder
	got, n, err := dec.DecodeFrame(frame)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d frame bytes", n, len(frame))
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if !sameEvent(&evs[i], &got[i]) {
			t.Errorf("event %d: got %+v want %+v", i, got[i], evs[i])
		}
	}
}

func TestBinaryRoundTripPreservesSNRBits(t *testing.T) {
	for _, snr := range []float64{0, math.Copysign(0, -1), 1e-300, -1e300, 3.141592653589793} {
		ev := Event{Ev: EvRx, At: 1, Src: 1, SNR: snr}
		frame, err := AppendBatch(nil, []Event{ev})
		if err != nil {
			t.Fatalf("snr %v: %v", snr, err)
		}
		var dec BatchDecoder
		got, _, err := dec.DecodeFrame(frame)
		if err != nil {
			t.Fatalf("snr %v: %v", snr, err)
		}
		if math.Float64bits(got[0].SNR) != math.Float64bits(snr) {
			t.Errorf("snr bits changed: %x -> %x", math.Float64bits(snr), math.Float64bits(got[0].SNR))
		}
	}
}

func TestAppendEventRejectsInvalid(t *testing.T) {
	tooManyLinks := make([]packet.LinkEntry, packet.MaxLinkEntries+1)
	cases := []struct {
		name string
		ev   Event
	}{
		{"unknown kind", Event{Ev: "nope", At: 1}},
		{"negative at", Event{Ev: EvAge, At: -1, Silence: 5}},
		{"beacon broadcast src", Event{Ev: EvBeacon, At: 1, Src: packet.None}},
		{"tx broadcast dest", Event{Ev: EvTx, At: 1, Src: packet.Broadcast}},
		{"rx NaN snr", Event{Ev: EvRx, At: 1, Src: 1, SNR: math.NaN()}},
		{"beacon Inf snr", Event{Ev: EvBeacon, At: 1, Src: 1, SNR: math.Inf(1)}},
		{"age zero silence", Event{Ev: EvAge, At: 1}},
		{"beacon footer overflow", Event{Ev: EvBeacon, At: 1, Src: 1, Links: tooManyLinks}},
	}
	for _, c := range cases {
		if _, err := AppendEvent(nil, &c.ev); !errors.Is(err, ErrRecord) {
			t.Errorf("%s: err = %v, want ErrRecord", c.name, err)
		}
	}
}

// mutate returns a copy of body with one byte changed.
func mutate(body []byte, off int, b byte) []byte {
	out := append([]byte(nil), body...)
	out[off] = b
	return out
}

func TestDecodeBodyErrorTaxonomy(t *testing.T) {
	good := frameBody(t, sampleEvents())
	// Body layout: version(1) count-varint(1, =7) then records; the first
	// record is the full beacon starting at offset 2.
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrFrame},
		{"version only", []byte{BatchVersion}, ErrFrame},
		{"future version", mutate(good, 0, BatchVersion+1), ErrFrameVersion},
		{"torn count varint", []byte{BatchVersion, 0x80}, ErrFrame},
		{"count over record bytes", []byte{BatchVersion, 0x05}, ErrFrame},
		{"trailing record bytes", append(append([]byte(nil), good...), 0), ErrFrame},
		{"unknown record kind", mutate(good, 2, 200), ErrRecord},
		{"poison without permit", frameBody(t, []Event{{Ev: EvPoison, At: 1}}), ErrRecord},
		{"reserved flag bits", mutate(good, 3, 0x80), ErrRecord},
	}
	for _, c := range cases {
		var dec BatchDecoder
		evs, err := dec.DecodeBody(c.body)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
		if evs != nil {
			t.Errorf("%s: returned %d events alongside the error", c.name, len(evs))
		}
	}

	// AllowPoison flips exactly the poison case.
	dec := BatchDecoder{AllowPoison: true}
	if _, err := dec.DecodeBody(frameBody(t, []Event{{Ev: EvPoison, At: 1}})); err != nil {
		t.Errorf("poison with permit: %v", err)
	}
}

func TestDecodeBodyRejectsNonCanonicalZeros(t *testing.T) {
	// Fields a kind does not use must be zero on the wire; a record that
	// smuggles bits through them is rejected, which is what keeps binary
	// streams expressible as JSONL streams.
	age := frameBody(t, []Event{{Ev: EvAge, At: 1, Silence: 5}})
	tx := frameBody(t, []Event{{Ev: EvTx, At: 1, Src: 1}})
	// nlinks participates in framing, so a bare nlinks mutation is a size
	// mismatch (ErrFrame, covered above); smuggling footer entries onto a
	// non-beacon needs the matching bytes present to reach the record check.
	ageWithFooter := append(mutate(age, 2+2, 1), 0, 0, 0)
	cases := []struct {
		name string
		body []byte
	}{
		{"age with footer entries", ageWithFooter},
		{"age with lqi", mutate(age, 2+3, 1)},
		{"age with src", mutate(age, 2+4, 1)},
		{"age with seq", mutate(age, 2+6, 1)},
		{"tx with seq", mutate(tx, 2+6, 1)},
		{"tx with aux bits", mutate(tx, 2+16, 1)},
		{"tx with white flag", mutate(tx, 2+1, flagWhite)},
	}
	for _, c := range cases {
		var dec BatchDecoder
		if _, err := dec.DecodeBody(c.body); !errors.Is(err, ErrRecord) {
			t.Errorf("%s: err = %v, want ErrRecord", c.name, err)
		}
	}
}

func TestFrameReaderStream(t *testing.T) {
	evs := sampleEvents()
	var stream []byte
	var err error
	for i := range evs { // one frame per event, mixed with a batched frame
		if stream, err = AppendBatch(stream, evs[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if stream, err = AppendBatch(stream, evs); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(bytes.NewReader(stream), 0, false)
	var got []Event
	for {
		batch, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for i := range batch {
			ev := batch[i]
			ev.Links = append([]packet.LinkEntry(nil), ev.Links...)
			got = append(got, ev)
		}
	}
	want := append(append([]Event(nil), evs...), evs...)
	if len(got) != len(want) {
		t.Fatalf("streamed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameEvent(&want[i], &got[i]) {
			t.Errorf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestFrameReaderTornAndOversize(t *testing.T) {
	frame, err := AppendBatch(nil, sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	// Torn mid-body.
	fr := NewFrameReader(bytes.NewReader(frame[:len(frame)-3]), 0, false)
	if _, err := fr.Next(); !errors.Is(err, ErrFrame) {
		t.Errorf("torn body: err = %v, want ErrFrame", err)
	}
	// Torn inside the length prefix.
	fr = NewFrameReader(bytes.NewReader([]byte{0xFF}), 0, false)
	if _, err := fr.Next(); !errors.Is(err, ErrFrame) {
		t.Errorf("torn prefix: err = %v, want ErrFrame", err)
	}
	// Over the batch budget: rejected by the declared length alone, without
	// reading (or buffering) the oversized body.
	fr = NewFrameReader(bytes.NewReader(frame), 8, false)
	if _, err := fr.Next(); !errors.Is(err, ErrFrame) {
		t.Errorf("over budget: err = %v, want ErrFrame", err)
	}
	// A clean empty stream is io.EOF, not an error.
	fr = NewFrameReader(bytes.NewReader(nil), 0, false)
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestWireDecodeBatchZeroAlloc(t *testing.T) {
	frame, err := AppendBatch(nil, sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	var dec BatchDecoder
	if _, _, err := dec.DecodeFrame(frame); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := dec.DecodeFrame(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeFrame allocates %.1f times per batch, want 0", allocs)
	}
}

func TestAppendJSONLEventMatchesDecoders(t *testing.T) {
	// Every encodable event must round-trip through its JSONL line, via
	// both decode paths, and the line must be on the fast path's grammar.
	for _, ev := range append(sampleEvents(), Event{Ev: EvPoison, At: 7}) {
		line := AppendJSONLEvent(nil, &ev)
		for _, noFast := range []bool{false, true} {
			dec := EventDecoder{AllowPoison: true, noFastPath: noFast}
			var got Event
			if err := dec.Decode(line, &got); err != nil {
				t.Fatalf("%s (noFastPath=%v): %v", line, noFast, err)
			}
			if !sameEvent(&ev, &got) {
				t.Errorf("%s (noFastPath=%v): got %+v want %+v", line, noFast, got, ev)
			}
		}
		fastDec := EventDecoder{AllowPoison: true}
		if !fastDec.fastDecode(line) {
			t.Errorf("canonical line not on the fast path: %s", line)
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	// JSONL → binary → JSONL must reproduce the canonical serialization of
	// every line. Input deliberately includes non-canonical-but-valid JSONL
	// (spacing, snr:0 spelled out) to show conversion canonicalizes.
	in := strings.Join([]string{
		`{"ev":"beacon","at":10,"src":2,"seq":3,"lqi":99,"white":true,"snr":7.5,"links":[{"addr":0,"q":200},{"addr":9,"q":0}]}`,
		`{"ev":"beacon","at":11,"src":3,"seq":0,"lqi":0,"white":false}`,
		``,
		`{"ev":"tx","at":20,"dest":3,"acked":true}`,
		`{ "ev":"rx", "at":30, "src":4, "lqi":80, "snr":0 }`,
		`{"ev":"rx","at":31,"src":5,"lqi":1,"white":true,"snr":-2.25}`,
		`{"ev":"age","at":40,"silence":1000000}`,
	}, "\n") + "\n"

	var bin bytes.Buffer
	n, err := ConvertJSONLToBinary(&bin, strings.NewReader(in), 3)
	if err != nil {
		t.Fatalf("ConvertJSONLToBinary: %v", err)
	}
	if n != 6 {
		t.Fatalf("converted %d events, want 6", n)
	}

	var out bytes.Buffer
	if n, err = ConvertBinaryToJSONL(&out, &bin); err != nil {
		t.Fatalf("ConvertBinaryToJSONL: %v", err)
	}
	if n != 6 {
		t.Fatalf("converted back %d events, want 6", n)
	}

	// The round trip equals re-encoding the decoded input canonically.
	var want bytes.Buffer
	var dec EventDecoder
	var ev Event
	for _, line := range strings.Split(strings.TrimSuffix(in, "\n"), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := dec.Decode([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		want.Write(AppendJSONLEvent(nil, &ev))
		want.WriteByte('\n')
	}
	if out.String() != want.String() {
		t.Errorf("round trip diverged:\n got:\n%s want:\n%s", out.String(), want.String())
	}
}

func TestConvertRejectsMalformedLine(t *testing.T) {
	in := "{\"ev\":\"age\",\"at\":1,\"silence\":5}\n{\"ev\":\"warp\"}\n"
	var bin bytes.Buffer
	_, err := ConvertJSONLToBinary(&bin, strings.NewReader(in), 0)
	if !errors.Is(err, ErrEventKind) {
		t.Fatalf("err = %v, want ErrEventKind", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name the line: %v", err)
	}
}
