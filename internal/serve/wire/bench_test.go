package wire

import (
	"encoding/binary"
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// benchBatch builds a representative 512-event batch (mostly footered
// beacons, some tx/rx/age) and returns its encoded frame body.
func benchBatch(b *testing.B) []byte {
	b.Helper()
	r := sim.NewRand(0xB47C)
	var now sim.Time
	var seqs [32]uint16
	evs := make([]Event, 0, 512)
	for i := 0; i < 512; i++ {
		now += sim.Time(1 + r.Int63n(int64(sim.Second)))
		src := packet.Addr(1 + r.Intn(18))
		switch k := r.Intn(10); {
		case k < 6:
			seqs[src]++
			evs = append(evs, Event{Ev: EvBeacon, At: now, Src: src, Seq: seqs[src],
				LQI: uint8(40 + r.Intn(80)), White: true,
				Links: []packet.LinkEntry{{Addr: 0, InQuality: uint8(r.Intn(256))}}})
		case k < 8:
			evs = append(evs, Event{Ev: EvTx, At: now, Src: src, Acked: r.Bernoulli(0.7)})
		case k < 9:
			evs = append(evs, Event{Ev: EvRx, At: now, Src: src, LQI: uint8(40 + r.Intn(60))})
		default:
			evs = append(evs, Event{Ev: EvAge, At: now, Silence: 2 * sim.Second})
		}
	}
	frame, err := AppendBatch(nil, evs)
	if err != nil {
		b.Fatal(err)
	}
	bodyLen, n := binary.Uvarint(frame)
	if n <= 0 || int(bodyLen) != len(frame)-n {
		b.Fatalf("bad frame prefix: %d/%d", bodyLen, len(frame))
	}
	return frame[n:]
}

// BenchmarkWireDecodeBatch measures one 512-event frame body through the
// batch decoder with warm scratch — the per-frame cost of the binary ingest
// hot path. Budgeted at 0 allocs/op in scripts/alloc_budget.txt: steady
// state must reuse the event and link scratch entirely.
func BenchmarkWireDecodeBatch(b *testing.B) {
	body := benchBatch(b)
	var dec BatchDecoder
	evs, err := dec.DecodeBody(body) // warm the scratch
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evs, err = dec.DecodeBody(body); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(evs)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkWireEncodeBatch is the other direction: re-encoding the decoded
// events into a frame with a reused buffer, the batching client's steady
// state.
func BenchmarkWireEncodeBatch(b *testing.B) {
	body := benchBatch(b)
	var dec BatchDecoder
	evs, err := dec.DecodeBody(body)
	if err != nil {
		b.Fatal(err)
	}
	var rec, frame []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec = rec[:0]
		for j := range evs {
			if rec, err = AppendEvent(rec, &evs[j]); err != nil {
				b.Fatal(err)
			}
		}
		frame = AppendFrame(frame[:0], rec, len(evs))
	}
	_ = frame
}
