// Package wire owns the estimation service's two ingest wire formats and
// nothing else: the line-oriented JSONL event encoding (one JSON object
// per line, strict decode with typed per-line errors) and the batched
// binary encoding (fixed little-endian event records under varint batch
// framing, negotiated via Content-Type: application/x-fourbit-batch).
// Both decoders reuse their scratch between calls, so long streams decode
// with zero steady-state allocations, and both certify the same contract:
// a stream ingested through either format drives an estimator through the
// identical call sequence, bit for bit.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// Event kinds on the ingest wire. In JSONL form, one JSON object per line:
//
//	{"ev":"beacon","at":N,"src":N,"seq":N,"lqi":N,"white":B,"snr":F,"links":[{"addr":N,"q":N}]}
//	{"ev":"tx","at":N,"dest":N,"acked":B}
//	{"ev":"rx","at":N,"src":N,"lqi":N,"white":B,"snr":F}
//	{"ev":"age","at":N,"silence":N}
//
// at and silence are simulated-time nanoseconds. beacon carries the LE
// envelope fields the estimator's OnBeacon consumes; rx is an overheard
// non-beacon frame (OnOverhear); tx is the link layer's ack bit for one
// unicast (TxResult); age injects silence at the caller's cadence (Age).
const (
	EvBeacon = "beacon"
	EvTx     = "tx"
	EvRx     = "rx"
	EvAge    = "age"
	// EvPoison deliberately panics the instance worker. It decodes only
	// when the decoder's AllowPoison is set (the chaos harness); production
	// servers reject it as an unknown kind.
	EvPoison = "poison"
)

// Typed decode errors. Every malformed line maps onto exactly one of these;
// callers branch with errors.Is and per-line context rides in the wrapper.
var (
	// ErrEventSyntax: the line is not a JSON object of the wire shape.
	ErrEventSyntax = errors.New("serve: malformed event line")
	// ErrEventKind: the "ev" field is missing or names no known event.
	ErrEventKind = errors.New("serve: unknown event kind")
	// ErrEventField: a required field is missing or out of range.
	ErrEventField = errors.New("serve: invalid event field")
)

// Event is one decoded ingest event.
type Event struct {
	Ev      string
	At      sim.Time
	Src     packet.Addr // beacon/rx source, tx destination
	Seq     uint16
	LQI     uint8
	White   bool
	SNR     float64
	Acked   bool
	Silence sim.Time
	Links   []packet.LinkEntry // aliases decoder scratch; valid until next Decode
}

// wireLink is the footer entry wire form, pre-filled with -1 sentinels so
// missing fields are detectable without per-field pointers.
type wireLink struct {
	Addr int64 `json:"addr"`
	Q    int64 `json:"q"`
}

// UnmarshalJSON arms the -1 sentinels before decoding: encoding/json
// zero-initializes fresh slice elements, and 0 is a legal address, so the
// sentinel must be injected per element to make missing fields detectable.
func (l *wireLink) UnmarshalJSON(data []byte) error {
	type bare wireLink
	b := bare{Addr: -1, Q: -1}
	if err := json.Unmarshal(data, &b); err != nil {
		return err
	}
	*l = wireLink(b)
	return nil
}

// wireEvent is the reused decode target. Numeric fields start at -1 (none
// of them is legitimately negative on the wire), so "absent" and "present
// but wrong" both surface without allocating option pointers.
type wireEvent struct {
	Ev      string     `json:"ev"`
	At      int64      `json:"at"`
	Src     int64      `json:"src"`
	Dest    int64      `json:"dest"`
	Seq     int64      `json:"seq"`
	LQI     int64      `json:"lqi"`
	White   bool       `json:"white"`
	SNR     float64    `json:"snr"`
	Acked   *bool      `json:"acked"`
	Silence int64      `json:"silence"`
	Links   []wireLink `json:"links"`
}

// EventDecoder decodes JSONL ingest lines into Events, reusing its scratch
// between calls: a long stream decodes with zero steady-state allocations.
// Canonical lines (the exact grammar the recorder and clients emit) take a
// hand-rolled fast path; anything outside it — whitespace, escapes, unknown
// fields, exotic numbers — falls back to encoding/json, so acceptance and
// errors never depend on which path ran (FuzzDecodeEvent pins the two paths
// against each other). Not safe for concurrent use; the server keeps one
// per ingest request.
type EventDecoder struct {
	// AllowPoison admits the chaos-only poison event. Leave unset outside
	// fault-injection tests.
	AllowPoison bool

	// noFastPath forces every line through encoding/json — the reference
	// half of the fast-path differential fuzz property.
	noFastPath bool

	w     wireEvent
	acked bool // backing store for w.Acked on the fast path
	links []packet.LinkEntry
}

// reset re-arms the sentinels before each Unmarshal.
func (d *EventDecoder) reset() {
	d.w.Ev = ""
	d.w.At, d.w.Src, d.w.Dest, d.w.Seq, d.w.LQI, d.w.Silence = -1, -1, -1, -1, -1, -1
	d.w.White, d.w.SNR, d.w.Acked = false, 0, nil
	d.w.Links = d.w.Links[:0]
}

// fieldErr builds an ErrEventField with context.
func fieldErr(ev, field string, format string, args ...any) error {
	return fmt.Errorf("%w: %s.%s %s", ErrEventField, ev, field, fmt.Sprintf(format, args...))
}

// addrField validates a wire address: unicast node addresses only — the
// broadcast and none sentinels never source or sink estimator feedback.
func addrField(ev, field string, v int64) (packet.Addr, error) {
	if v < 0 {
		return 0, fieldErr(ev, field, "missing")
	}
	if v >= int64(packet.None) {
		return 0, fieldErr(ev, field, "= %d, not a unicast address", v)
	}
	return packet.Addr(v), nil
}

// Decode parses one ingest line into ev. The returned error is nil or wraps
// exactly one of ErrEventSyntax, ErrEventKind, ErrEventField. ev.Links
// aliases decoder scratch and is consumed before the next Decode.
func (d *EventDecoder) Decode(line []byte, ev *Event) error {
	d.reset()
	if d.noFastPath || !d.fastDecode(line) {
		// The fast path may have partially filled the scratch before
		// bailing; re-arm and let encoding/json be the arbiter.
		d.reset()
		if err := json.Unmarshal(line, &d.w); err != nil {
			return fmt.Errorf("%w: %v", ErrEventSyntax, err)
		}
	}
	w := &d.w
	switch w.Ev {
	case EvBeacon, EvTx, EvRx, EvAge:
	case EvPoison:
		if !d.AllowPoison {
			return fmt.Errorf("%w: %q", ErrEventKind, w.Ev)
		}
	case "":
		return fmt.Errorf("%w: no \"ev\" field", ErrEventKind)
	default:
		return fmt.Errorf("%w: %q", ErrEventKind, w.Ev)
	}
	*ev = Event{Ev: w.Ev}
	if w.At < 0 {
		return fieldErr(w.Ev, "at", "missing or negative")
	}
	ev.At = sim.Time(w.At)

	switch w.Ev {
	case EvBeacon:
		src, err := addrField(w.Ev, "src", w.Src)
		if err != nil {
			return err
		}
		if w.Seq < 0 || w.Seq > 0xFFFF {
			return fieldErr(w.Ev, "seq", "= %d, want 0..65535", w.Seq)
		}
		if w.LQI < 0 || w.LQI > 255 {
			return fieldErr(w.Ev, "lqi", "= %d, want 0..255", w.LQI)
		}
		if len(w.Links) > packet.MaxLinkEntries {
			return fieldErr(w.Ev, "links", "has %d entries, max %d", len(w.Links), packet.MaxLinkEntries)
		}
		d.links = d.links[:0]
		for i := range w.Links {
			l := &w.Links[i]
			addr, err := addrField(w.Ev, fmt.Sprintf("links[%d].addr", i), l.Addr)
			if err != nil {
				return err
			}
			if l.Q < 0 || l.Q > 255 {
				return fieldErr(w.Ev, "links", "[%d].q = %d, want 0..255", i, l.Q)
			}
			d.links = append(d.links, packet.LinkEntry{Addr: addr, InQuality: uint8(l.Q)})
		}
		ev.Src, ev.Seq, ev.LQI = src, uint16(w.Seq), uint8(w.LQI)
		ev.White, ev.SNR, ev.Links = w.White, w.SNR, d.links
	case EvTx:
		dest, err := addrField(w.Ev, "dest", w.Dest)
		if err != nil {
			return err
		}
		if w.Acked == nil {
			return fieldErr(w.Ev, "acked", "missing")
		}
		ev.Src, ev.Acked = dest, *w.Acked
	case EvRx:
		src, err := addrField(w.Ev, "src", w.Src)
		if err != nil {
			return err
		}
		if w.LQI < 0 || w.LQI > 255 {
			return fieldErr(w.Ev, "lqi", "= %d, want 0..255", w.LQI)
		}
		ev.Src, ev.LQI, ev.White, ev.SNR = src, uint8(w.LQI), w.White, w.SNR
	case EvAge:
		if w.Silence <= 0 {
			return fieldErr(w.Ev, "silence", "missing or non-positive")
		}
		ev.Silence = sim.Time(w.Silence)
	}
	return nil
}
