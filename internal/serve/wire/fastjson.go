package wire

import "strconv"

// The fast JSONL path: a hand-rolled parser for the canonical line grammar
// every producer in this repo emits (FeedRecorder, the batching client, the
// converters) — a single-line JSON object, known keys only, no whitespace,
// no string escapes, plain decimal numbers. Anything outside that grammar
// makes fastDecode bail with false and the caller re-parses the same bytes
// with encoding/json, so the fast path can only ever change speed, not
// outcomes: it either fills wireEvent exactly as encoding/json would, or it
// declines the line entirely. The differential half of FuzzDecodeEvent
// (fast-enabled vs noFastPath decoder) pins that equivalence.

// fastDecode parses line into d.w. It reports false — leaving the scratch
// in an unspecified partial state the caller must reset — whenever the line
// strays outside the canonical grammar, including every malformed line:
// errors are the slow path's job, so both paths produce identical ones.
func (d *EventDecoder) fastDecode(line []byte) bool {
	p := fastParser{in: line}
	if !p.lit('{') {
		return false
	}
	if p.lit('}') {
		return p.i == len(line) // {}: valid JSON, no fields; validation rejects it
	}
	for {
		key, ok := p.str()
		if !ok || !p.lit(':') {
			return false
		}
		switch string(key) { // compiler recognizes string([]byte) switches: no alloc
		case "ev":
			val, ok := p.str()
			if !ok {
				return false
			}
			// Assign the matching constant: no allocation, and unknown
			// kinds defer to the slow path, whose ErrEventKind quotes the
			// kind from a heap string exactly as before.
			switch string(val) {
			case EvBeacon:
				d.w.Ev = EvBeacon
			case EvTx:
				d.w.Ev = EvTx
			case EvRx:
				d.w.Ev = EvRx
			case EvAge:
				d.w.Ev = EvAge
			case EvPoison:
				d.w.Ev = EvPoison
			default:
				return false
			}
		case "at":
			if d.w.At, ok = p.int63(); !ok {
				return false
			}
		case "src":
			if d.w.Src, ok = p.int63(); !ok {
				return false
			}
		case "dest":
			if d.w.Dest, ok = p.int63(); !ok {
				return false
			}
		case "seq":
			if d.w.Seq, ok = p.int63(); !ok {
				return false
			}
		case "lqi":
			if d.w.LQI, ok = p.int63(); !ok {
				return false
			}
		case "silence":
			if d.w.Silence, ok = p.int63(); !ok {
				return false
			}
		case "white":
			if d.w.White, ok = p.boolean(); !ok {
				return false
			}
		case "acked":
			if d.acked, ok = p.boolean(); !ok {
				return false
			}
			d.w.Acked = &d.acked
		case "snr":
			if d.w.SNR, ok = p.float(); !ok {
				return false
			}
		case "links":
			if !d.fastLinks(&p) {
				return false
			}
		default:
			return false // unknown key: encoding/json ignores it; too rare to mirror
		}
		if p.lit(',') {
			continue
		}
		return p.lit('}') && p.i == len(line)
	}
}

// fastLinks parses the beacon footer array. Duplicate "links" keys follow
// encoding/json's last-one-wins: the slice restarts from empty.
func (d *EventDecoder) fastLinks(p *fastParser) bool {
	d.w.Links = d.w.Links[:0]
	if !p.lit('[') {
		return false
	}
	if p.lit(']') {
		return true
	}
	for {
		if !p.lit('{') {
			return false
		}
		l := wireLink{Addr: -1, Q: -1} // the sentinels UnmarshalJSON arms
		if !p.lit('}') {
			for {
				key, ok := p.str()
				if !ok || !p.lit(':') {
					return false
				}
				switch string(key) {
				case "addr":
					if l.Addr, ok = p.int63(); !ok {
						return false
					}
				case "q":
					if l.Q, ok = p.int63(); !ok {
						return false
					}
				default:
					return false
				}
				if p.lit(',') {
					continue
				}
				if p.lit('}') {
					break
				}
				return false
			}
		}
		d.w.Links = append(d.w.Links, l)
		if p.lit(',') {
			continue
		}
		return p.lit(']')
	}
}

// fastParser is a cursor over one line. Its primitives accept exactly the
// canonical grammar — no whitespace skipping, no escape processing — and
// report false on anything else.
type fastParser struct {
	in []byte
	i  int
}

// lit consumes c if it is the next byte.
func (p *fastParser) lit(c byte) bool {
	if p.i < len(p.in) && p.in[p.i] == c {
		p.i++
		return true
	}
	return false
}

// str consumes a quoted string with no escapes and only printable ASCII —
// the full range JSON allows (escapes, UTF-8, surrogates) bails to the
// slow path rather than being re-implemented here.
func (p *fastParser) str() ([]byte, bool) {
	if !p.lit('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.in) {
		switch c := p.in[p.i]; {
		case c == '"':
			s := p.in[start:p.i]
			p.i++
			return s, true
		case c < 0x20 || c == '\\' || c >= 0x80:
			return nil, false
		}
		p.i++
	}
	return nil, false
}

// int63 consumes a JSON integer that fits int64. A fraction, exponent, or
// overflow bails: encoding/json would reject those for an int64 field, and
// the slow path owns error wording.
func (p *fastParser) int63() (int64, bool) {
	neg := p.lit('-')
	start := p.i
	for p.i < len(p.in) && p.in[p.i] >= '0' && p.in[p.i] <= '9' {
		p.i++
	}
	digits := p.in[start:p.i]
	if len(digits) == 0 || (len(digits) > 1 && digits[0] == '0') {
		return 0, false // empty or leading zero: not a JSON number
	}
	if p.i < len(p.in) {
		if c := p.in[p.i]; c == '.' || c == 'e' || c == 'E' {
			return 0, false // a float where an integer field lives
		}
	}
	var v int64
	for _, c := range digits {
		if v > (1<<62)/5 { // v*10 would overflow int64
			return 0, false
		}
		v = v*10 + int64(c-'0')
		if v < 0 {
			return 0, false
		}
	}
	if neg {
		v = -v
	}
	return v, true
}

// boolean consumes a true/false literal.
func (p *fastParser) boolean() (bool, bool) {
	in := p.in[p.i:]
	if len(in) >= 4 && in[0] == 't' && in[1] == 'r' && in[2] == 'u' && in[3] == 'e' {
		p.i += 4
		return true, true
	}
	if len(in) >= 5 && in[0] == 'f' && in[1] == 'a' && in[2] == 'l' && in[3] == 's' && in[4] == 'e' {
		p.i += 5
		return false, true
	}
	return false, false
}

// float consumes a JSON number and parses it with strconv.ParseFloat — the
// same routine encoding/json uses, so the mantissa bits cannot differ. The
// token-to-string conversion is the fast path's one possible allocation,
// paid only on lines that carry an explicit snr.
func (p *fastParser) float() (float64, bool) {
	start := p.i
	p.lit('-')
	intStart := p.i
	for p.i < len(p.in) && p.in[p.i] >= '0' && p.in[p.i] <= '9' {
		p.i++
	}
	if n := p.i - intStart; n == 0 || (n > 1 && p.in[intStart] == '0') {
		return 0, false
	}
	if p.lit('.') {
		frac := 0
		for p.i < len(p.in) && p.in[p.i] >= '0' && p.in[p.i] <= '9' {
			p.i++
			frac++
		}
		if frac == 0 {
			return 0, false
		}
	}
	if p.i < len(p.in) && (p.in[p.i] == 'e' || p.in[p.i] == 'E') {
		p.i++
		if p.i < len(p.in) && (p.in[p.i] == '+' || p.in[p.i] == '-') {
			p.i++
		}
		exp := 0
		for p.i < len(p.in) && p.in[p.i] >= '0' && p.in[p.i] <= '9' {
			p.i++
			exp++
		}
		if exp == 0 {
			return 0, false
		}
	}
	v, err := strconv.ParseFloat(string(p.in[start:p.i]), 64)
	return v, err == nil
}
