package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"fourbit/internal/packet"
)

// sameEvent compares two decoded events bit for bit (SNR by Float64bits, so
// NaN payloads and signed zeros count).
func sameEvent(a, b *Event) bool {
	if a.Ev != b.Ev || a.At != b.At || a.Src != b.Src || a.Seq != b.Seq ||
		a.LQI != b.LQI || a.White != b.White ||
		math.Float64bits(a.SNR) != math.Float64bits(b.SNR) ||
		a.Acked != b.Acked || a.Silence != b.Silence || len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}

// FuzzDecodeEvent drives arbitrary lines through the JSONL decoder. Four
// properties, one per robustness promise: it never panics (malformed input
// must not kill a stream), every rejection maps onto exactly one typed
// error (callers branch on them), a reused decoder behaves exactly like a
// fresh one (scratch reuse must never change outcomes — the property the
// chaostest harness caught a queue-slot aliasing bug against), and the
// hand-rolled fast path agrees with encoding/json on every input (the fast
// path may only change speed, never acceptance, errors, or field bits).
func FuzzDecodeEvent(f *testing.F) {
	f.Add([]byte(`{"ev":"beacon","at":1,"src":2,"seq":3,"lqi":99,"white":true,"snr":7.5,"links":[{"addr":0,"q":200}]}`))
	f.Add([]byte(`{"ev":"tx","at":5,"dest":3,"acked":true}`))
	f.Add([]byte(`{"ev":"rx","at":5,"src":3,"lqi":80}`))
	f.Add([]byte(`{"ev":"age","at":5,"silence":1000}`))
	f.Add([]byte(`{"ev":"poison","at":5}`))
	f.Add([]byte(`{"ev":"beacon","at":-1}`))
	f.Add([]byte(`{"ev":"rx","at":5,"src":3,"lqi":80,"white":false,"snr":-0}`))
	f.Add([]byte(`{"ev":"rx","at":5,"src":3,"lqi":80,"snr":1e300}`))
	f.Add([]byte(`{"ev":"beacon","at":1,"src":2,"seq":3,"lqi":9,"links":[{"addr":1,"q":2},{"addr":1,"q":3}]}`))
	f.Add([]byte(`{"ev":"tx","at":5,"dest":3,"acked":true,"acked":false}`))
	f.Add([]byte(` {"ev":"age","at":5,"silence":1000}`))
	f.Add([]byte(`{"ev":`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"ev":"tx"}]`))

	f.Fuzz(func(t *testing.T, line []byte) {
		var fresh Event
		freshDec := EventDecoder{AllowPoison: true}
		freshErr := freshDec.Decode(line, &fresh)

		// The reference decoder: same line, encoding/json only.
		var slow Event
		slowDec := EventDecoder{AllowPoison: true, noFastPath: true}
		slowErr := slowDec.Decode(line, &slow)

		// A decoder that has chewed through other lines first must agree.
		var reused Event
		reusedDec := EventDecoder{AllowPoison: true}
		_ = reusedDec.Decode([]byte(`{"ev":"beacon","at":9,"src":8,"seq":7,"lqi":6,"links":[{"addr":1,"q":2},{"addr":3,"q":4}]}`), &reused)
		reusedErr := reusedDec.Decode(line, &reused)

		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("fresh err %v vs reused err %v", freshErr, reusedErr)
		}
		if (freshErr == nil) != (slowErr == nil) {
			t.Fatalf("fast path changed acceptance: fast err %v vs slow err %v", freshErr, slowErr)
		}
		if freshErr != nil {
			for name, err := range map[string]error{"fresh": freshErr, "slow": slowErr, "reused": reusedErr} {
				n := 0
				for _, sentinel := range []error{ErrEventSyntax, ErrEventKind, ErrEventField} {
					if errors.Is(err, sentinel) {
						n++
					}
				}
				if n != 1 {
					t.Fatalf("%s error maps onto %d sentinels, want exactly 1: %v", name, n, err)
				}
			}
			if freshErr.Error() != slowErr.Error() {
				t.Fatalf("fast path changed error wording:\n fast %v\n slow %v", freshErr, slowErr)
			}
			return
		}

		// Accepted events carry only in-range, fully-reset fields.
		switch fresh.Ev {
		case EvBeacon, EvTx, EvRx, EvAge, EvPoison:
		default:
			t.Fatalf("accepted unknown kind %q", fresh.Ev)
		}
		if fresh.At < 0 {
			t.Fatalf("accepted negative at %d", fresh.At)
		}
		if len(fresh.Links) > packet.MaxLinkEntries {
			t.Fatalf("accepted %d footer entries", len(fresh.Links))
		}
		if fresh.Ev != EvBeacon && len(fresh.Links) != 0 {
			t.Fatalf("%s event leaked %d footer entries from scratch", fresh.Ev, len(fresh.Links))
		}
		if !sameEvent(&fresh, &slow) {
			t.Fatalf("fast path diverged from encoding/json:\n fast %+v\n slow %+v", fresh, slow)
		}
		if !sameEvent(&fresh, &reused) {
			t.Fatalf("reused decoder diverged:\n fresh  %+v\n reused %+v", fresh, reused)
		}
	})
}

// frameBody strips the length prefix off an AppendBatch frame, yielding the
// body bytes DecodeBody consumes.
func frameBody(t testing.TB, evs []Event) []byte {
	frame, err := AppendBatch(nil, evs)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	_, n := binary.Uvarint(frame)
	return frame[n:]
}

// FuzzDecodeWireBatch drives arbitrary frame bodies through the binary
// batch decoder. Properties mirror FuzzDecodeEvent's: no panic, exactly one
// typed error per rejection, scratch reuse never changes outcomes, and
// decode∘encode is the identity — every accepted body's events re-encode
// without error and decode back bit-identical.
func FuzzDecodeWireBatch(f *testing.F) {
	links := []packet.LinkEntry{{Addr: 1, InQuality: 200}, {Addr: 9, InQuality: 0}}
	f.Add(frameBody(f, nil))
	f.Add(frameBody(f, []Event{
		{Ev: EvBeacon, At: 10, Src: 2, Seq: 3, LQI: 99, White: true, SNR: 7.5, Links: links},
		{Ev: EvTx, At: 20, Src: 3, Acked: true},
		{Ev: EvRx, At: 30, Src: 4, LQI: 80, SNR: -2.25},
		{Ev: EvAge, At: 40, Silence: 1_000_000},
		{Ev: EvPoison, At: 50},
	}))
	f.Add(frameBody(f, []Event{{Ev: EvRx, At: 1, Src: 0, SNR: math.Copysign(0, -1)}}))
	f.Add([]byte{BatchVersion, 0x01})       // 1 event declared, no records
	f.Add([]byte{BatchVersion + 1, 0x00})   // future version
	f.Add([]byte{BatchVersion, 0x80, 0x80}) // torn count varint
	f.Add([]byte{BatchVersion})             // count missing
	f.Add([]byte(nil))                      // empty body
	f.Add(append(frameBody(f, nil), 0x00))  // trailing record bytes

	f.Fuzz(func(t *testing.T, body []byte) {
		fresh := BatchDecoder{AllowPoison: true}
		evs, err := fresh.DecodeBody(body)

		// A decoder with warm scratch from a previous batch must agree.
		reusedDec := BatchDecoder{AllowPoison: true}
		_, _ = reusedDec.DecodeBody(frameBody(t, []Event{
			{Ev: EvBeacon, At: 1, Src: 1, Seq: 1, LQI: 1, Links: links},
			{Ev: EvAge, At: 2, Silence: 5},
		}))
		reusedEvs, reusedErr := reusedDec.DecodeBody(body)

		if (err == nil) != (reusedErr == nil) {
			t.Fatalf("fresh err %v vs reused err %v", err, reusedErr)
		}
		if err != nil {
			for name, e := range map[string]error{"fresh": err, "reused": reusedErr} {
				n := 0
				for _, sentinel := range []error{ErrFrame, ErrFrameVersion, ErrRecord} {
					if errors.Is(e, sentinel) {
						n++
					}
				}
				if n != 1 {
					t.Fatalf("%s error maps onto %d sentinels, want exactly 1: %v", name, n, e)
				}
			}
			return
		}
		if len(evs) != len(reusedEvs) {
			t.Fatalf("reused decoder yielded %d events, fresh %d", len(reusedEvs), len(evs))
		}
		for i := range evs {
			if !sameEvent(&evs[i], &reusedEvs[i]) {
				t.Fatalf("event %d diverged across scratch reuse:\n fresh  %+v\n reused %+v", i, evs[i], reusedEvs[i])
			}
		}

		// decode∘encode identity: everything the strict decoder accepted
		// must re-encode cleanly and decode back bit-identical.
		reFrame, err := AppendBatch(nil, evs)
		if err != nil {
			t.Fatalf("decoded events failed to re-encode: %v", err)
		}
		roundDec := BatchDecoder{AllowPoison: true}
		roundEvs, n, err := roundDec.DecodeFrame(reFrame)
		if err != nil || n != len(reFrame) {
			t.Fatalf("re-encoded frame failed to decode (n=%d of %d): %v", n, len(reFrame), err)
		}
		if len(roundEvs) != len(evs) {
			t.Fatalf("round trip yielded %d events, want %d", len(roundEvs), len(evs))
		}
		for i := range evs {
			if !sameEvent(&evs[i], &roundEvs[i]) {
				t.Fatalf("event %d changed across encode∘decode:\n before %+v\n after  %+v", i, evs[i], roundEvs[i])
			}
		}
	})
}
