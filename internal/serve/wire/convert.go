package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
)

// DefaultBatchEvents is the converter's and client's default events-per-
// frame: large enough to amortize framing and admission to ~nothing, small
// enough that a frame stays far under the batch byte budget.
const DefaultBatchEvents = 512

// AppendJSONLEvent appends ev as one canonical JSONL line (no trailing
// newline) — the exact grammar FeedRecorder writes and the fast decode
// path recognizes. The snr field is emitted whenever its float bits are
// nonzero (not merely its value, so a negative zero survives the round
// trip), and omitted otherwise; decode∘encode is the identity on every
// event either decoder accepts.
func AppendJSONLEvent(dst []byte, ev *Event) []byte {
	dst = append(dst, `{"ev":"`...)
	dst = append(dst, ev.Ev...)
	dst = append(dst, `","at":`...)
	dst = strconv.AppendInt(dst, int64(ev.At), 10)
	switch ev.Ev {
	case EvBeacon:
		dst = append(dst, `,"src":`...)
		dst = strconv.AppendUint(dst, uint64(ev.Src), 10)
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, uint64(ev.Seq), 10)
		dst = appendJSONLMeta(dst, ev)
		if len(ev.Links) > 0 {
			dst = append(dst, `,"links":[`...)
			for i, e := range ev.Links {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = append(dst, `{"addr":`...)
				dst = strconv.AppendUint(dst, uint64(e.Addr), 10)
				dst = append(dst, `,"q":`...)
				dst = strconv.AppendUint(dst, uint64(e.InQuality), 10)
				dst = append(dst, '}')
			}
			dst = append(dst, ']')
		}
	case EvTx:
		dst = append(dst, `,"dest":`...)
		dst = strconv.AppendUint(dst, uint64(ev.Src), 10)
		dst = append(dst, `,"acked":`...)
		dst = strconv.AppendBool(dst, ev.Acked)
	case EvRx:
		dst = append(dst, `,"src":`...)
		dst = strconv.AppendUint(dst, uint64(ev.Src), 10)
		dst = appendJSONLMeta(dst, ev)
	case EvAge:
		dst = append(dst, `,"silence":`...)
		dst = strconv.AppendInt(dst, int64(ev.Silence), 10)
	}
	return append(dst, '}')
}

// appendJSONLMeta appends the shared rx-metadata fields.
func appendJSONLMeta(dst []byte, ev *Event) []byte {
	dst = append(dst, `,"lqi":`...)
	dst = strconv.AppendUint(dst, uint64(ev.LQI), 10)
	dst = append(dst, `,"white":`...)
	dst = strconv.AppendBool(dst, ev.White)
	if math.Float64bits(ev.SNR) != 0 {
		dst = append(dst, `,"snr":`...)
		dst = strconv.AppendFloat(dst, ev.SNR, 'g', -1, 64)
	}
	return dst
}

// ConvertJSONLToBinary rewrites a JSONL event feed as a binary batch
// stream, batchEvents records per frame (≤ 0 selects DefaultBatchEvents).
// Conversion is strict — a feed line the decoder refuses fails the whole
// conversion with its line number, because a converted feed must replay
// event-for-event identically to its source. Returns the event count.
func ConvertJSONLToBinary(dst io.Writer, src io.Reader, batchEvents int) (int64, error) {
	if batchEvents <= 0 {
		batchEvents = DefaultBatchEvents
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), DefaultMaxBatchBytes)
	var dec EventDecoder
	var ev Event
	var records, frame []byte
	count, lineNo := 0, int64(0)
	var total int64
	flush := func() error {
		if count == 0 {
			return nil
		}
		frame = AppendFrame(frame[:0], records, count)
		records, count = records[:0], 0
		_, err := dst.Write(frame)
		return err
	}
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := dec.Decode(line, &ev); err != nil {
			return total, fmt.Errorf("line %d: %w", lineNo, err)
		}
		var err error
		if records, err = AppendEvent(records, &ev); err != nil {
			return total, fmt.Errorf("line %d: %w", lineNo, err)
		}
		count++
		total++
		if count >= batchEvents {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return total, fmt.Errorf("line %d: %w", lineNo+1, err)
	}
	return total, flush()
}

// ConvertBinaryToJSONL rewrites a binary batch stream as canonical JSONL —
// the inverse direction, for inspecting converted feeds with line tools.
// Returns the event count.
func ConvertBinaryToJSONL(dst io.Writer, src io.Reader) (int64, error) {
	fr := NewFrameReader(src, 0, false)
	var line []byte
	var total int64
	for {
		evs, err := fr.Next()
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		for i := range evs {
			line = AppendJSONLEvent(line[:0], &evs[i])
			line = append(line, '\n')
			if _, err := dst.Write(line); err != nil {
				return total, err
			}
			total++
		}
	}
}
