package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// The binary batch format. A stream is a sequence of length-prefixed
// frames; each frame carries one batch of fixed-layout little-endian event
// records, so a decoder needs no per-event framing decisions and no
// per-event allocations:
//
//	frame := uvarint(len(body)) body
//	body  := version(u8=1) uvarint(count) count×record
//	record:
//	  off  0  kind    u8   1=beacon 2=tx 3=rx 4=age 5=poison
//	  off  1  flags   u8   bit0=white (beacon/rx), bit1=acked (tx); rest 0
//	  off  2  nlinks  u8   beacon footer entries (0..15); 0 elsewhere
//	  off  3  lqi     u8   beacon/rx; 0 elsewhere
//	  off  4  src     u16  beacon/rx source, tx destination; 0 elsewhere
//	  off  6  seq     u16  beacon; 0 elsewhere
//	  off  8  at      u64  event time, ns (≤ MaxInt64)
//	  off 16  aux     u64  beacon/rx: float64 bits of snr; age: silence ns
//	  off 24  nlinks × { addr u16, q u8 }
//
// Decode is strict in both directions: every field a kind does not use
// must be zero, every field it does use is range-checked exactly as the
// JSONL decoder checks it, and a frame must consume its declared length to
// the byte. That makes encode∘decode the identity and means a stream
// accepted in binary form is expressible — event for event, bit for bit —
// as a JSONL stream, which is what the cross-format differential
// certification in chaostest leans on.

// ContentType negotiates the binary batch encoding on the ingest route;
// requests without it are read as JSONL.
const ContentType = "application/x-fourbit-batch"

// BatchVersion is the format generation this package encodes and decodes.
const BatchVersion = 1

// DefaultMaxBatchBytes bounds one frame body unless the reader overrides
// it — the binary analogue of the JSONL path's MaxLineBytes.
const DefaultMaxBatchBytes = 1 << 20

const (
	recordBaseLen = 24
	linkEntryLen  = 3
	// MaxEventLen is the largest possible single record: the base layout
	// plus a full 15-entry beacon footer.
	MaxEventLen = recordBaseLen + packet.MaxLinkEntries*linkEntryLen
)

// Record kind bytes.
const (
	kindBeacon = 1
	kindTx     = 2
	kindRx     = 3
	kindAge    = 4
	kindPoison = 5
)

// Record flag bits.
const (
	flagWhite = 1 << 0
	flagAcked = 1 << 1
)

// Typed batch decode errors: every malformed frame maps onto exactly one.
var (
	// ErrFrame: the batch framing is wrong — truncated frame or varint,
	// body over budget, declared count inconsistent with the body length.
	ErrFrame = errors.New("wire: malformed batch frame")
	// ErrFrameVersion: the frame's version byte names a format generation
	// this build does not speak.
	ErrFrameVersion = errors.New("wire: unsupported batch version")
	// ErrRecord: one event record carries an out-of-range or misused field.
	ErrRecord = errors.New("wire: invalid event record")
)

// kindByte maps an Event.Ev string onto its record kind byte.
func kindByte(ev string) (byte, error) {
	switch ev {
	case EvBeacon:
		return kindBeacon, nil
	case EvTx:
		return kindTx, nil
	case EvRx:
		return kindRx, nil
	case EvAge:
		return kindAge, nil
	case EvPoison:
		return kindPoison, nil
	}
	return 0, fmt.Errorf("%w: unknown kind %q", ErrRecord, ev)
}

// evString maps a record kind byte back onto the shared Ev constant, so
// decoded events carry the same interned strings the JSONL path yields.
func evString(kind byte) string {
	switch kind {
	case kindBeacon:
		return EvBeacon
	case kindTx:
		return EvTx
	case kindRx:
		return EvRx
	case kindAge:
		return EvAge
	default:
		return EvPoison
	}
}

// EncodedLen returns ev's record size in bytes.
func EncodedLen(ev *Event) int { return recordBaseLen + len(ev.Links)*linkEntryLen }

// AppendEvent appends ev's record to dst. Events that the JSONL decoder
// would refuse are refused here too (ErrRecord), so no encoder can mint a
// stream the strict decoders reject.
func AppendEvent(dst []byte, ev *Event) ([]byte, error) {
	kind, err := kindByte(ev.Ev)
	if err != nil {
		return dst, err
	}
	if ev.At < 0 {
		return dst, fmt.Errorf("%w: %s.at negative", ErrRecord, ev.Ev)
	}
	var flags, nlinks, lqi byte
	var src, seq uint16
	var aux uint64
	switch kind {
	case kindBeacon:
		if len(ev.Links) > packet.MaxLinkEntries {
			return dst, fmt.Errorf("%w: beacon has %d footer entries, max %d", ErrRecord, len(ev.Links), packet.MaxLinkEntries)
		}
		if err := checkAddr(ev.Ev, ev.Src); err != nil {
			return dst, err
		}
		if err := checkSNR(ev.Ev, ev.SNR); err != nil {
			return dst, err
		}
		if ev.White {
			flags = flagWhite
		}
		nlinks, lqi = byte(len(ev.Links)), ev.LQI
		src, seq, aux = uint16(ev.Src), ev.Seq, math.Float64bits(ev.SNR)
	case kindTx:
		if err := checkAddr(ev.Ev, ev.Src); err != nil {
			return dst, err
		}
		if ev.Acked {
			flags = flagAcked
		}
		src = uint16(ev.Src)
	case kindRx:
		if err := checkAddr(ev.Ev, ev.Src); err != nil {
			return dst, err
		}
		if err := checkSNR(ev.Ev, ev.SNR); err != nil {
			return dst, err
		}
		if ev.White {
			flags = flagWhite
		}
		lqi, src, aux = ev.LQI, uint16(ev.Src), math.Float64bits(ev.SNR)
	case kindAge:
		if ev.Silence <= 0 {
			return dst, fmt.Errorf("%w: age.silence missing or non-positive", ErrRecord)
		}
		aux = uint64(ev.Silence)
	}
	n := len(dst)
	dst = append(dst, make([]byte, recordBaseLen+int(nlinks)*linkEntryLen)...)
	rec := dst[n:]
	rec[0], rec[1], rec[2], rec[3] = kind, flags, nlinks, lqi
	binary.LittleEndian.PutUint16(rec[4:], src)
	binary.LittleEndian.PutUint16(rec[6:], seq)
	binary.LittleEndian.PutUint64(rec[8:], uint64(ev.At))
	binary.LittleEndian.PutUint64(rec[16:], aux)
	for i, l := range ev.Links {
		o := recordBaseLen + i*linkEntryLen
		binary.LittleEndian.PutUint16(rec[o:], uint16(l.Addr))
		rec[o+2] = l.InQuality
	}
	return dst, nil
}

func checkAddr(ev string, a packet.Addr) error {
	if a >= packet.None {
		return fmt.Errorf("%w: %s address %d is not unicast", ErrRecord, ev, a)
	}
	return nil
}

func checkSNR(ev string, snr float64) error {
	if math.IsNaN(snr) || math.IsInf(snr, 0) {
		return fmt.Errorf("%w: %s.snr is not finite", ErrRecord, ev)
	}
	return nil
}

// AppendBatch appends one complete frame — length prefix, version, count,
// records — for evs onto dst.
func AppendBatch(dst []byte, evs []Event) ([]byte, error) {
	var records []byte
	var err error
	for i := range evs {
		if records, err = AppendEvent(records, &evs[i]); err != nil {
			return dst, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return AppendFrame(dst, records, len(evs)), nil
}

// AppendFrame appends one complete frame for count pre-encoded records
// (AppendEvent output, concatenated) onto dst — the steady-state framer
// behind the batching client and the converter, which accumulate records
// incrementally and must be able to re-frame a suffix after a partial
// (backpressured) acceptance.
func AppendFrame(dst []byte, records []byte, count int) []byte {
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], uint64(count))
	dst = binary.AppendUvarint(dst, uint64(1+n+len(records)))
	dst = append(dst, BatchVersion)
	dst = append(dst, cnt[:n]...)
	return append(dst, records...)
}

// BatchDecoder decodes frame bodies into events, reusing its scratch
// between calls: steady-state decode of a long stream allocates nothing.
// The returned events (and their Links) alias decoder scratch and are valid
// until the next Decode call. Not safe for concurrent use.
type BatchDecoder struct {
	// AllowPoison admits the chaos-only poison record, exactly like the
	// JSONL decoder's flag.
	AllowPoison bool

	events []Event
	links  []packet.LinkEntry
}

// DecodeBody decodes one frame body (the bytes after the length prefix).
// The error is nil or wraps exactly one of ErrFrame, ErrFrameVersion,
// ErrRecord; on error no events are returned — a frame is all-or-nothing,
// unlike JSONL's per-line skipping, because framing cannot be resynced
// past a corrupt record.
func (d *BatchDecoder) DecodeBody(body []byte) ([]Event, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: body of %d bytes", ErrFrame, len(body))
	}
	if body[0] != BatchVersion {
		return nil, fmt.Errorf("%w: version %d, this build speaks %d", ErrFrameVersion, body[0], BatchVersion)
	}
	count64, n := binary.Uvarint(body[1:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad event count varint", ErrFrame)
	}
	recs := body[1+n:]
	if count64 > uint64(len(recs)/recordBaseLen) {
		return nil, fmt.Errorf("%w: %d events declared, %d bytes of records", ErrFrame, count64, len(recs))
	}
	count := int(count64)

	// First pass: walk the record sizes so the link scratch can be grown
	// once up front — events alias subslices of it, so it must not move
	// while records decode.
	totalLinks, off := 0, 0
	for i := 0; i < count; i++ {
		if off+recordBaseLen > len(recs) {
			return nil, fmt.Errorf("%w: record %d truncated", ErrFrame, i)
		}
		totalLinks += int(recs[off+2])
		off += recordBaseLen + int(recs[off+2])*linkEntryLen
	}
	if off != len(recs) {
		return nil, fmt.Errorf("%w: %d record bytes declared, %d consumed", ErrFrame, len(recs), off)
	}
	if cap(d.events) < count {
		d.events = make([]Event, 0, count+count/2)
	}
	if cap(d.links) < totalLinks {
		d.links = make([]packet.LinkEntry, 0, totalLinks+totalLinks/2)
	}
	d.events, d.links = d.events[:count], d.links[:0]

	off = 0
	for i := 0; i < count; i++ {
		n, err := d.decodeRecord(recs[off:], &d.events[i], i)
		if err != nil {
			return nil, err
		}
		off += n
	}
	return d.events, nil
}

// decodeRecord decodes one record (length pre-validated) into ev.
func (d *BatchDecoder) decodeRecord(rec []byte, ev *Event, i int) (int, error) {
	kind, flags, nlinks, lqi := rec[0], rec[1], rec[2], rec[3]
	src := binary.LittleEndian.Uint16(rec[4:])
	seq := binary.LittleEndian.Uint16(rec[6:])
	at := binary.LittleEndian.Uint64(rec[8:])
	aux := binary.LittleEndian.Uint64(rec[16:])
	size := recordBaseLen + int(nlinks)*linkEntryLen

	recErr := func(format string, args ...any) (int, error) {
		return 0, fmt.Errorf("%w: record %d %s", ErrRecord, i, fmt.Sprintf(format, args...))
	}
	if kind < kindBeacon || kind > kindPoison {
		return recErr("has unknown kind %d", kind)
	}
	if kind == kindPoison && !d.AllowPoison {
		return recErr("is poison (not allowed here)")
	}
	if at > math.MaxInt64 {
		return recErr("time overflows the simulated clock")
	}
	var allowedFlags byte
	switch kind {
	case kindBeacon, kindRx:
		allowedFlags = flagWhite
	case kindTx:
		allowedFlags = flagAcked
	}
	if flags&^allowedFlags != 0 {
		return recErr("sets reserved flag bits %#x", flags&^allowedFlags)
	}
	if nlinks != 0 && kind != kindBeacon {
		return recErr("is not a beacon but carries %d footer entries", nlinks)
	}
	if int(nlinks) > packet.MaxLinkEntries {
		return recErr("has %d footer entries, max %d", nlinks, packet.MaxLinkEntries)
	}
	if lqi != 0 && kind != kindBeacon && kind != kindRx {
		return recErr("carries an lqi but kind %d has none", kind)
	}
	if seq != 0 && kind != kindBeacon {
		return recErr("carries a seq but kind %d has none", kind)
	}
	switch kind {
	case kindBeacon, kindTx, kindRx:
		if packet.Addr(src) >= packet.None {
			return recErr("address %d is not unicast", src)
		}
	default:
		if src != 0 {
			return recErr("carries an address but kind %d has none", kind)
		}
	}
	switch kind {
	case kindBeacon, kindRx:
		snr := math.Float64frombits(aux)
		if math.IsNaN(snr) || math.IsInf(snr, 0) {
			return recErr("snr is not finite")
		}
	case kindAge:
		if aux == 0 || aux > math.MaxInt64 {
			return recErr("silence missing or out of range")
		}
	default:
		if aux != 0 {
			return recErr("carries aux bits but kind %d has none", kind)
		}
	}

	*ev = Event{Ev: evString(kind), At: sim.Time(at)}
	switch kind {
	case kindBeacon:
		linkStart := len(d.links)
		for l := 0; l < int(nlinks); l++ {
			o := recordBaseLen + l*linkEntryLen
			addr := packet.Addr(binary.LittleEndian.Uint16(rec[o:]))
			if addr >= packet.None {
				return recErr("footer entry %d address %d is not unicast", l, addr)
			}
			d.links = append(d.links, packet.LinkEntry{Addr: addr, InQuality: rec[o+2]})
		}
		ev.Src, ev.Seq, ev.LQI, ev.White = packet.Addr(src), seq, lqi, flags&flagWhite != 0
		ev.SNR = math.Float64frombits(aux)
		ev.Links = d.links[linkStart:len(d.links):len(d.links)]
	case kindTx:
		ev.Src, ev.Acked = packet.Addr(src), flags&flagAcked != 0
	case kindRx:
		ev.Src, ev.LQI, ev.White = packet.Addr(src), lqi, flags&flagWhite != 0
		ev.SNR = math.Float64frombits(aux)
	case kindAge:
		ev.Silence = sim.Time(aux)
	}
	return size, nil
}

// DecodeFrame decodes one complete length-prefixed frame from the front of
// buf, returning the events and the bytes consumed — the slice-based
// sibling of FrameReader for callers holding a whole stream in memory.
func (d *BatchDecoder) DecodeFrame(buf []byte) ([]Event, int, error) {
	bodyLen, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: bad length prefix", ErrFrame)
	}
	if bodyLen > uint64(len(buf)-n) {
		return nil, 0, fmt.Errorf("%w: %d-byte body declared, %d available", ErrFrame, bodyLen, len(buf)-n)
	}
	evs, err := d.DecodeBody(buf[n : n+int(bodyLen)])
	if err != nil {
		return nil, 0, err
	}
	return evs, n + int(bodyLen), nil
}

// FrameReader pulls length-prefixed batches off a byte stream (an HTTP
// request body, a converted feed file), reusing one frame buffer and one
// decoder across frames. Next returns io.EOF only at a clean frame
// boundary; a stream torn mid-frame is ErrFrame.
type FrameReader struct {
	// MaxBatchBytes bounds one frame body (default DefaultMaxBatchBytes).
	// A frame over budget is by construction not a batch: ErrFrame,
	// without collateral on frames already decoded.
	MaxBatchBytes int

	dec BatchDecoder
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader builds a reader over r. allowPoison is threaded to the
// batch decoder; maxBatchBytes ≤ 0 selects the default.
func NewFrameReader(r io.Reader, maxBatchBytes int, allowPoison bool) *FrameReader {
	fr := &FrameReader{MaxBatchBytes: maxBatchBytes}
	fr.dec.AllowPoison = allowPoison
	fr.br = bufio.NewReaderSize(nil, 32*1024)
	fr.Reset(r)
	return fr
}

// Reset points the reader at a new stream, keeping all scratch — the
// pooled-reuse hook for servers.
func (fr *FrameReader) Reset(r io.Reader) { fr.br.Reset(r) }

// Next decodes the next batch. The returned events alias reader scratch
// and are valid until the following Next call.
func (fr *FrameReader) Next() ([]Event, error) {
	bodyLen, err := binary.ReadUvarint(fr.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean boundary
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream torn inside a length prefix", ErrFrame)
		}
		return nil, err
	}
	max := fr.MaxBatchBytes
	if max <= 0 {
		max = DefaultMaxBatchBytes
	}
	if bodyLen > uint64(max) {
		return nil, fmt.Errorf("%w: %d-byte body exceeds the %d-byte batch budget", ErrFrame, bodyLen, max)
	}
	if cap(fr.buf) < int(bodyLen) {
		fr.buf = make([]byte, bodyLen)
	}
	fr.buf = fr.buf[:bodyLen]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream torn inside a frame body", ErrFrame)
		}
		return nil, err
	}
	return fr.dec.DecodeBody(fr.buf)
}
