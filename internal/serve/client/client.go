// Package client is the Go ingest client for the estimation service: a
// buffered, batching event feed speaking either wire format — the batched
// binary encoding by default, JSONL for interop — with backpressure-aware
// retry. Events accumulate in an in-memory batch (pre-encoded, so a Send
// costs an append, not a syscall) and flush as one POST per batch; a 429
// response consumes its Retry-After hint and resends exactly the suffix
// the server did not admit, so no event is ever duplicated or lost.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/serve/wire"
)

// Feed errors.
var (
	// ErrRejected: the server refused part of the stream for a
	// non-retryable reason (malformed input, quarantined instance).
	ErrRejected = errors.New("client: server rejected events")
	// ErrRetryBudget: backpressure persisted past the retry budget; the
	// unsent suffix is still buffered and a later Flush retries it.
	ErrRetryBudget = errors.New("client: retry budget exhausted")
)

// Options configures a Feed. The zero value batches
// wire.DefaultBatchEvents events per flush in binary format.
type Options struct {
	// BatchEvents flushes automatically once this many events are
	// buffered (default wire.DefaultBatchEvents).
	BatchEvents int
	// JSONL selects the line-oriented format instead of binary batches —
	// the interop escape hatch; same batching, same retry behavior.
	JSONL bool
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Retries bounds how many backpressure rounds one flush absorbs
	// before returning ErrRetryBudget (default 8).
	Retries int
	// RetryCap bounds one backpressure sleep, whatever Retry-After says
	// (default 1s; tests shrink it).
	RetryCap time.Duration
	// AllowPoison permits encoding the chaos-only poison event.
	AllowPoison bool
}

// Stats counts what a feed has pushed through.
type Stats struct {
	Sent    uint64 // events accepted by the server
	Flushes uint64 // HTTP requests that carried events
	Retries uint64 // backpressure rounds absorbed
}

// Feed streams events to one instance's ingest route. Not safe for
// concurrent use; run one Feed per goroutine.
type Feed struct {
	url   string
	opts  Options
	stats Stats

	buf     []byte // pre-encoded records (binary) or lines (JSONL)
	offsets []int  // start offset of each buffered event in buf
	frame   []byte // scratch for the framed request body
}

// New builds a feed for the named instance on the server at baseURL
// (e.g. "http://127.0.0.1:8080").
func New(baseURL, instance string, opts Options) *Feed {
	if opts.BatchEvents <= 0 {
		opts.BatchEvents = wire.DefaultBatchEvents
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.Retries <= 0 {
		opts.Retries = 8
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = time.Second
	}
	return &Feed{url: baseURL + "/v1/instances/" + instance + "/events", opts: opts}
}

// Stats returns the feed's counters.
func (f *Feed) Stats() Stats { return f.stats }

// Buffered returns how many events await the next flush.
func (f *Feed) Buffered() int { return len(f.offsets) }

// Send buffers one event, flushing if the batch is full. An encoding error
// (an event the wire format refuses) leaves the buffer unchanged.
func (f *Feed) Send(ev *wire.Event) error {
	if ev.Ev == wire.EvPoison && !f.opts.AllowPoison {
		return fmt.Errorf("%w: poison event without AllowPoison", wire.ErrRecord)
	}
	start := len(f.buf)
	if f.opts.JSONL {
		if _, err := wire.AppendEvent(f.frame[:0], ev); err != nil {
			return err // same validation as binary, so both formats refuse alike
		}
		f.buf = wire.AppendJSONLEvent(f.buf, ev)
		f.buf = append(f.buf, '\n')
	} else {
		var err error
		if f.buf, err = wire.AppendEvent(f.buf, ev); err != nil {
			f.buf = f.buf[:start]
			return err
		}
	}
	f.offsets = append(f.offsets, start)
	if len(f.offsets) >= f.opts.BatchEvents {
		return f.Flush()
	}
	return nil
}

// Flush pushes every buffered event, absorbing backpressure up to the
// retry budget. On success the buffer is empty; on ErrRetryBudget the
// unadmitted suffix stays buffered for the next Flush.
func (f *Feed) Flush() error {
	for round := 0; len(f.offsets) > 0; round++ {
		status, rep, err := f.post()
		if err != nil {
			return err
		}
		f.drop(int(rep.Accepted))
		f.stats.Sent += rep.Accepted
		f.stats.Flushes++
		switch status {
		case http.StatusOK:
			if len(f.offsets) > 0 {
				// 200 admits everything it read; anything left is a bug.
				return fmt.Errorf("%w: 200 with %d events unaccounted", ErrRejected, len(f.offsets))
			}
			return nil
		case http.StatusTooManyRequests:
			if round+1 >= f.opts.Retries {
				return fmt.Errorf("%w: %d events still buffered", ErrRetryBudget, len(f.offsets))
			}
			f.stats.Retries++
			time.Sleep(f.retryDelay(rep.retryAfter))
		default:
			return fmt.Errorf("%w: status %d: %s", ErrRejected, status, rep.LastError)
		}
	}
	return nil
}

// post sends the buffered suffix as one request.
func (f *Feed) post() (int, *ingestReport, error) {
	var body []byte
	contentType := "application/jsonl"
	if f.opts.JSONL {
		body = f.buf
	} else {
		f.frame = wire.AppendFrame(f.frame[:0], f.buf, len(f.offsets))
		body = f.frame
		contentType = wire.ContentType
	}
	req, err := http.NewRequest(http.MethodPost, f.url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := f.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	rep := &ingestReport{}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(rep); err != nil {
		return 0, nil, fmt.Errorf("client: bad ingest response: %w", err)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			rep.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, rep, nil
}

// drop discards the first n buffered events — the ones the server admitted.
func (f *Feed) drop(n int) {
	if n <= 0 {
		return
	}
	if n >= len(f.offsets) {
		f.buf, f.offsets = f.buf[:0], f.offsets[:0]
		return
	}
	cut := f.offsets[n]
	f.buf = f.buf[:copy(f.buf, f.buf[cut:])]
	rest := f.offsets[n:]
	for i, off := range rest {
		rest[i] = off - cut
	}
	f.offsets = f.offsets[:copy(f.offsets, rest)]
}

// retryDelay clamps a Retry-After hint to the cap.
func (f *Feed) retryDelay(hint time.Duration) time.Duration {
	if hint <= 0 || hint > f.opts.RetryCap {
		return f.opts.RetryCap
	}
	return hint
}

// ingestReport mirrors the server's ingest response body.
type ingestReport struct {
	Accepted  uint64 `json:"accepted"`
	Malformed uint64 `json:"malformed"`
	Lines     uint64 `json:"lines"`
	LastError string `json:"last_error"`

	retryAfter time.Duration
}

// CreateInstance creates an estimator instance on the server, the usual
// prologue to a feed. A nil config selects the paper's defaults.
func CreateInstance(c *http.Client, baseURL, name string, kind core.EstimatorKind,
	self packet.Addr, seed uint64, cfg *core.Config) error {
	if c == nil {
		c = http.DefaultClient
	}
	body, err := json.Marshal(map[string]any{
		"name": name, "kind": kind, "self": self, "seed": seed, "config": cfg,
	})
	if err != nil {
		return err
	}
	resp, err := c.Post(baseURL+"/v1/instances", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("client: create instance %q: status %d: %s", name, resp.StatusCode, msg)
	}
	return nil
}
