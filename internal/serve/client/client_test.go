package client_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/serve"
	"fourbit/internal/serve/client"
	"fourbit/internal/serve/wire"
	"fourbit/internal/sim"
)

// testEvents builds a deterministic stream exercising every event kind.
func testEvents(n int) []wire.Event {
	evs := make([]wire.Event, 0, n)
	for i := 0; i < n; i++ {
		at := sim.Time(i+1) * 1_000_000
		src := packet.Addr(i%5 + 1)
		switch i % 4 {
		case 0:
			evs = append(evs, wire.Event{Ev: wire.EvBeacon, At: at, Src: src,
				Seq: uint16(i), LQI: 90, White: true, SNR: float64(i%7) + 0.5})
		case 1:
			evs = append(evs, wire.Event{Ev: wire.EvTx, At: at, Src: src, Acked: i%3 != 0})
		case 2:
			evs = append(evs, wire.Event{Ev: wire.EvRx, At: at, Src: src, LQI: 80})
		default:
			evs = append(evs, wire.Event{Ev: wire.EvAge, At: at, Silence: 500_000})
		}
	}
	return evs
}

func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewServer(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// snapshotSansName fetches an instance snapshot with the name blanked, so
// two instances fed the same stream can be compared bit for bit.
func snapshotSansName(t *testing.T, base, name string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/instances/" + name + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.InstanceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot %s: status %d", name, resp.StatusCode)
	}
	snap.Name = ""
	out, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestFeedFormatsConverge feeds the identical stream through a binary feed
// and a JSONL feed and demands bit-identical instance snapshots — the
// client-side leg of the cross-format differential.
func TestFeedFormatsConverge(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	evs := testEvents(997) // not a multiple of the batch size: exercises tail flush

	for _, cfg := range []struct {
		name  string
		jsonl bool
	}{{"bin", false}, {"jsonl", true}} {
		if err := client.CreateInstance(nil, ts.URL, cfg.name, core.KindFourBit, 1, 42, nil); err != nil {
			t.Fatal(err)
		}
		feed := client.New(ts.URL, cfg.name, client.Options{BatchEvents: 128, JSONL: cfg.jsonl})
		for i := range evs {
			if err := feed.Send(&evs[i]); err != nil {
				t.Fatalf("%s send %d: %v", cfg.name, i, err)
			}
		}
		if err := feed.Flush(); err != nil {
			t.Fatalf("%s flush: %v", cfg.name, err)
		}
		if feed.Buffered() != 0 {
			t.Fatalf("%s: %d events left buffered", cfg.name, feed.Buffered())
		}
		if got := feed.Stats().Sent; got != uint64(len(evs)) {
			t.Fatalf("%s: sent %d events, want %d", cfg.name, got, len(evs))
		}
	}

	bin, jsonl := snapshotSansName(t, ts.URL, "bin"), snapshotSansName(t, ts.URL, "jsonl")
	if bin != jsonl {
		t.Errorf("binary and JSONL feeds diverged:\n bin   %s\n jsonl %s", bin, jsonl)
	}
}

// TestFeedBackpressureResendsSuffix fills a tiny paused queue, exhausts the
// retry budget, resumes, and re-flushes: every event must land exactly once.
func TestFeedBackpressureResendsSuffix(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{QueueDepth: 4, RetryAfter: time.Millisecond})
	if err := client.CreateInstance(nil, ts.URL, "bp", core.KindFourBit, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Post(ts.URL+"/v1/instances/bp/pause", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	evs := testEvents(10)
	feed := client.New(ts.URL, "bp", client.Options{
		BatchEvents: 64, Retries: 2, RetryCap: time.Millisecond,
	})
	for i := range evs {
		if err := feed.Send(&evs[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	err := feed.Flush()
	if !errors.Is(err, client.ErrRetryBudget) {
		t.Fatalf("flush against a paused full queue: err = %v, want ErrRetryBudget", err)
	}
	if feed.Buffered() != len(evs)-4 {
		t.Fatalf("buffered %d events, want %d", feed.Buffered(), len(evs)-4)
	}

	if resp, err := http.Post(ts.URL+"/v1/instances/bp/resume", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if err := feed.Flush(); err != nil {
		t.Fatalf("flush after resume: %v", err)
	}

	// The barrier-synced stats must show every event applied exactly once.
	resp, err := http.Get(ts.URL + "/v1/instances/bp/table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var table struct {
		Applied uint64 `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	if table.Applied != uint64(len(evs)) {
		t.Fatalf("applied %d events, want exactly %d", table.Applied, len(evs))
	}
}

// TestFeedRejectsPoisonWithoutPermit pins the chaos-only kind behind the
// client-side gate too.
func TestFeedRejectsPoisonWithoutPermit(t *testing.T) {
	feed := client.New("http://invalid", "x", client.Options{})
	err := feed.Send(&wire.Event{Ev: wire.EvPoison, At: 1})
	if !errors.Is(err, wire.ErrRecord) {
		t.Fatalf("err = %v, want ErrRecord", err)
	}
	if feed.Buffered() != 0 {
		t.Fatalf("refused event left %d events buffered", feed.Buffered())
	}
}

// TestFeedQuarantineSurfacesRejection drives a poison event through an
// AllowPoison server and checks the next flush reports ErrRejected.
func TestFeedQuarantineSurfacesRejection(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{AllowPoison: true})
	if err := client.CreateInstance(nil, ts.URL, "q", core.KindFourBit, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	feed := client.New(ts.URL, "q", client.Options{AllowPoison: true})
	if err := feed.Send(&wire.Event{Ev: wire.EvPoison, At: 1}); err != nil {
		t.Fatal(err)
	}
	if err := feed.Flush(); err != nil {
		t.Fatal(err) // the poison batch itself is admitted, then kills the worker
	}
	// Wait for quarantine to land, then expect 409 → ErrRejected.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := feed.Send(&wire.Event{Ev: wire.EvAge, At: 2, Silence: 1}); err != nil {
			t.Fatal(err)
		}
		err := feed.Flush()
		if errors.Is(err, client.ErrRejected) {
			return
		}
		if err != nil {
			t.Fatalf("err = %v, want ErrRejected", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("instance never quarantined")
		}
		time.Sleep(time.Millisecond)
	}
}
