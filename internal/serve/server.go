package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/serve/wire"
)

// Options configures a Server. The zero value serves with the defaults
// below; tests inject clocks and shrink queues to force edges.
type Options struct {
	// QueueDepth bounds each instance's ingest queue (default 1024).
	QueueDepth int
	// Policy selects what a full queue does (default Backpressure).
	Policy OverflowPolicy
	// RequestTimeout bounds every request, including the ingest read loop
	// and query barrier waits (default 10s).
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxInstances bounds concurrent hosted estimators (default 4096).
	MaxInstances int
	// IdleEvict evicts instances untouched for this long; 0 disables.
	IdleEvict time.Duration
	// JanitorInterval is the idle-eviction sweep cadence (default
	// IdleEvict/4 when eviction is on).
	JanitorInterval time.Duration
	// MaxLineBytes bounds one ingest line (default 1 MiB). Longer lines
	// abort the stream with 400 — by construction they are not events.
	MaxLineBytes int
	// MaxBatchBytes bounds one binary frame body (default 1 MiB). An
	// overlong frame aborts the stream with 400, before its body is read.
	MaxBatchBytes int
	// AllowPoison admits the chaos-only poison event kind. Tests only.
	AllowPoison bool
	// Clock supplies wall time for idle accounting (default time.Now).
	Clock func() time.Time
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.MaxInstances <= 0 {
		opts.MaxInstances = 4096
	}
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = 1 << 20
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = wire.DefaultMaxBatchBytes
	}
	if opts.JanitorInterval <= 0 {
		opts.JanitorInterval = opts.IdleEvict / 4
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return opts
}

// ServerStats are server-level lifecycle counters.
type ServerStats struct {
	Created  uint64 `json:"created"`
	Deleted  uint64 `json:"deleted"`
	Evicted  uint64 `json:"evicted"`  // removed by the idle janitor
	Restored uint64 `json:"restored"` // instances built from snapshots
}

// Server hosts estimator instances behind an http.Handler. Create with
// NewServer; it is safe for concurrent use.
type Server struct {
	opts Options

	mu        sync.Mutex
	instances map[string]*instance
	stats     ServerStats
	draining  bool

	janitorOnce sync.Once
	janitorStop chan struct{}
	janitorDone chan struct{}

	// frameReaders pools binary FrameReaders (each owns a read buffer, a
	// frame buffer, and decoder scratch) across ingest requests, so a busy
	// binary ingest path allocates nothing per request in steady state.
	frameReaders sync.Pool
}

// NewServer returns a server with the given options applied over defaults.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:        opts.withDefaults(),
		instances:   make(map[string]*instance),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.frameReaders.New = func() any {
		return wire.NewFrameReader(nil, s.opts.MaxBatchBytes, s.opts.AllowPoison)
	}
	if s.opts.IdleEvict > 0 {
		go s.janitor()
	} else {
		close(s.janitorDone)
	}
	return s
}

// janitor sweeps for idle instances on its interval.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.opts.JanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.EvictIdle()
		}
	}
}

// EvictIdle closes and removes every instance idle longer than IdleEvict,
// returning how many were evicted. Exposed for clock-injected tests; the
// background janitor calls it on its interval.
func (s *Server) EvictIdle() int {
	if s.opts.IdleEvict <= 0 {
		return 0
	}
	cutoff := s.opts.Clock().Unix() - int64(s.opts.IdleEvict/time.Second)
	var victims []*instance
	s.mu.Lock()
	for name, in := range s.instances {
		in.mu.Lock()
		idle := in.lastTouch <= cutoff
		in.mu.Unlock()
		if idle {
			victims = append(victims, in)
			delete(s.instances, name)
			s.stats.Evicted++
		}
	}
	s.mu.Unlock()
	for _, in := range victims {
		<-in.close()
	}
	return len(victims)
}

// StopIngest marks the server draining: ingest and instance creation are
// refused from now on, but workers keep running — the window in which a
// drain-to-disk shutdown snapshots consistent state. Drain implies it.
func (s *Server) StopIngest() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.janitorOnce.Do(func() { close(s.janitorStop) })
}

// Drain stops ingest, flushes every instance queue, and waits for the
// workers to exit — the SIGTERM path. Bounded by ctx. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.StopIngest()
	s.mu.Lock()
	ins := make([]*instance, 0, len(s.instances))
	for _, in := range s.instances {
		ins = append(ins, in)
	}
	s.mu.Unlock()
	select {
	case <-s.janitorDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	for _, in := range ins {
		// resume paused workers so close can flush them
		in.resume()
		select {
		case <-in.close():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// SnapshotAll serializes every hosted instance (draining each queue first),
// for drain-to-disk shutdowns. Quarantined instances are included — their
// frozen state is the post-mortem.
func (s *Server) SnapshotAll(ctx context.Context) ([]*InstanceSnapshot, error) {
	s.mu.Lock()
	ins := make([]*instance, 0, len(s.instances))
	for _, in := range s.instances {
		ins = append(ins, in)
	}
	s.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].name < ins[j].name })
	snaps := make([]*InstanceSnapshot, 0, len(ins))
	for _, in := range ins {
		snap, err := in.snapshot(ctx.Done())
		if err != nil {
			return snaps, fmt.Errorf("instance %q: %w", in.name, err)
		}
		snaps = append(snaps, snap)
	}
	return snaps, nil
}

// RestoreSnapshot installs an instance from a snapshot, replacing any
// existing instance with that name — the recovery path for both process
// restarts and quarantined instances.
func (s *Server) RestoreSnapshot(snap *InstanceSnapshot) error {
	if snap != nil && !validName(snap.Name) {
		return fmt.Errorf("%w: bad instance name %q", core.ErrSnapshotState, snap.Name)
	}
	in, err := restoreInstance(snap, s.opts.QueueDepth, s.opts.Policy)
	if err != nil {
		return err
	}
	in.lastTouch = s.opts.Clock().Unix()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		in.close()
		return errors.New("serve: server is draining")
	}
	old := s.instances[snap.Name]
	if old == nil && len(s.instances) >= s.opts.MaxInstances {
		s.mu.Unlock()
		in.close()
		return fmt.Errorf("serve: instance limit (%d) reached", s.opts.MaxInstances)
	}
	s.instances[snap.Name] = in
	s.stats.Restored++
	s.mu.Unlock()
	if old != nil {
		old.close()
	}
	return nil
}

// lookup fetches an instance and touches its idle clock.
func (s *Server) lookup(name string) *instance {
	s.mu.Lock()
	in := s.instances[name]
	s.mu.Unlock()
	if in != nil {
		now := s.opts.Clock().Unix()
		in.mu.Lock()
		in.lastTouch = now
		in.mu.Unlock()
	}
	return in
}

// --- HTTP surface -----------------------------------------------------

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// validName accepts instance names that are safe path segments.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	return !strings.ContainsAny(name, "/\\ \t\n\r?#%")
}

// ServeHTTP routes the API:
//
//	GET    /v1/healthz
//	GET    /v1/stats
//	POST   /v1/instances                    create
//	GET    /v1/instances                    list
//	DELETE /v1/instances/{name}             remove
//	POST   /v1/instances/{name}/events      JSONL ingest
//	GET    /v1/instances/{name}/table       neighbor table (barrier-synced)
//	GET    /v1/instances/{name}/quality?addr=N
//	GET    /v1/instances/{name}/stats
//	POST   /v1/instances/{name}/pause|resume
//	GET    /v1/instances/{name}/snapshot
//	POST   /v1/instances/{name}/restore
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	r = r.WithContext(ctx)

	path := strings.TrimSuffix(r.URL.Path, "/")
	switch path {
	case "/v1/healthz":
		s.handleHealth(w, r)
		return
	case "/v1/stats":
		s.handleServerStats(w, r)
		return
	case "/v1/instances":
		switch r.Method {
		case http.MethodPost:
			s.handleCreate(w, r)
		case http.MethodGet:
			s.handleList(w, r)
		default:
			writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		}
		return
	}

	rest, ok := strings.CutPrefix(path, "/v1/instances/")
	if !ok {
		writeErr(w, http.StatusNotFound, "no route %s", r.URL.Path)
		return
	}
	name, action, _ := strings.Cut(rest, "/")
	if !validName(name) {
		writeErr(w, http.StatusBadRequest, "bad instance name")
		return
	}

	// Restore may create the instance, so it resolves the name itself.
	if action == "restore" && r.Method == http.MethodPost {
		s.handleRestore(w, r, name)
		return
	}
	in := s.lookup(name)
	if in == nil {
		writeErr(w, http.StatusNotFound, "no instance %q", name)
		return
	}
	switch {
	case action == "" && r.Method == http.MethodDelete:
		s.handleDelete(w, name)
	case action == "events" && r.Method == http.MethodPost:
		s.handleEvents(w, r, in)
	case action == "table" && r.Method == http.MethodGet:
		s.handleTable(w, r, in)
	case action == "quality" && r.Method == http.MethodGet:
		s.handleQuality(w, r, in)
	case action == "stats" && r.Method == http.MethodGet:
		s.handleInstanceStats(w, in)
	case action == "pause" && r.Method == http.MethodPost:
		in.pause()
		writeJSON(w, http.StatusOK, map[string]any{"paused": true})
	case action == "resume" && r.Method == http.MethodPost:
		in.resume()
		writeJSON(w, http.StatusOK, map[string]any{"paused": false})
	case action == "snapshot" && r.Method == http.MethodGet:
		s.handleSnapshot(w, r, in)
	default:
		writeErr(w, http.StatusNotFound, "no route %s %s", r.Method, r.URL.Path)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n, draining := len(s.instances), s.draining
	s.mu.Unlock()
	status := http.StatusOK
	if draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ok": !draining, "instances": n, "draining": draining})
}

func (s *Server) handleServerStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st, n := s.stats, len(s.instances)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"instances": n, "lifecycle": st})
}

// createRequest is the instance-creation body. Config, when present, must
// be a complete core.Config; omitted, the paper's defaults apply.
type createRequest struct {
	Name   string             `json:"name"`
	Kind   core.EstimatorKind `json:"kind"`
	Self   packet.Addr        `json:"self"`
	Seed   uint64             `json:"seed"`
	Config *core.Config       `json:"config"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad create body: %v", err)
		return
	}
	if !validName(req.Name) {
		writeErr(w, http.StatusBadRequest, "bad instance name %q", req.Name)
		return
	}
	if _, err := core.ParseEstimatorKind(string(req.Kind)); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := core.DefaultConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	in, err := newInstance(req.Name, req.Kind, req.Self, cfg, req.Seed, s.opts.QueueDepth, s.opts.Policy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	in.lastTouch = s.opts.Clock().Unix()
	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		in.close()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	case s.instances[req.Name] != nil:
		s.mu.Unlock()
		in.close()
		writeErr(w, http.StatusConflict, "instance %q already exists", req.Name)
		return
	case len(s.instances) >= s.opts.MaxInstances:
		s.mu.Unlock()
		in.close()
		writeErr(w, http.StatusServiceUnavailable, "instance limit (%d) reached", s.opts.MaxInstances)
		return
	}
	s.instances[req.Name] = in
	s.stats.Created++
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name, "kind": in.kind, "self": req.Self})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	type item struct {
		Name        string             `json:"name"`
		Kind        core.EstimatorKind `json:"kind"`
		Neighbors   int                `json:"neighbors"`
		Queue       int                `json:"queue"`
		Paused      bool               `json:"paused,omitempty"`
		Quarantined bool               `json:"quarantined,omitempty"`
	}
	s.mu.Lock()
	ins := make([]*instance, 0, len(s.instances))
	for _, in := range s.instances {
		ins = append(ins, in)
	}
	s.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].name < ins[j].name })
	items := make([]item, 0, len(ins))
	for _, in := range ins {
		in.mu.Lock()
		items = append(items, item{
			Name: in.name, Kind: in.kind, Neighbors: in.est.Table().Len(),
			Queue: in.count, Paused: in.paused, Quarantined: in.quarantined,
		})
		in.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"instances": items})
}

func (s *Server) handleDelete(w http.ResponseWriter, name string) {
	s.mu.Lock()
	in := s.instances[name]
	if in != nil {
		delete(s.instances, name)
		s.stats.Deleted++
	}
	s.mu.Unlock()
	if in == nil {
		writeErr(w, http.StatusNotFound, "no instance %q", name)
		return
	}
	in.resume()
	<-in.close()
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

// ingestReport is the ingest response body: what happened to every unit of
// the request, so clients need no second round trip to detect faults. For
// JSONL the unit is a line; for binary batches it is a frame.
type ingestReport struct {
	Accepted  uint64 `json:"accepted"`
	Malformed uint64 `json:"malformed"`
	Lines     uint64 `json:"lines"`
	// LastError carries the first decode error verbatim (with its line or
	// frame number) when Malformed > 0 — enough to debug without flooding.
	LastError string `json:"last_error,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, in *instance) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if r.Header.Get("Content-Type") == wire.ContentType {
		s.handleEventsBinary(w, r, in)
		return
	}
	dec := EventDecoder{AllowPoison: s.opts.AllowPoison}
	var ev Event
	var rep ingestReport
	sc := bufio.NewScanner(r.Body)
	// Scanner's limit is max(cap(buf), max): the initial capacity must not
	// exceed MaxLineBytes or small line budgets would be silently ignored.
	initCap := 64 * 1024
	if s.opts.MaxLineBytes < initCap {
		initCap = s.opts.MaxLineBytes
	}
	sc.Buffer(make([]byte, 0, initCap), s.opts.MaxLineBytes)
	abort := r.Context().Done()
	for sc.Scan() {
		if aborted(abort) {
			writeJSON(w, http.StatusServiceUnavailable, rep)
			return
		}
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		rep.Lines++
		if err := dec.Decode(line, &ev); err != nil {
			rep.Malformed++
			in.mu.Lock()
			in.stats.Malformed++
			in.mu.Unlock()
			if rep.LastError == "" {
				rep.LastError = fmt.Sprintf("line %d: %v", rep.Lines, err)
			}
			continue
		}
		if err := in.enqueue(&ev); err != nil {
			s.writeEnqueueErr(w, &rep, err)
			return
		}
		rep.Accepted++
	}
	if err := sc.Err(); err != nil {
		// A torn body (client died mid-line, line over budget): report
		// what was ingested; everything accepted so far stays accepted.
		rep.LastError = fmt.Sprintf("stream: %v", err)
		writeJSON(w, http.StatusBadRequest, rep)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// writeEnqueueErr maps an admission refusal onto its status — 429 with a
// Retry-After hint for backpressure, 409 for quarantine, 503 otherwise —
// carrying the report (everything accepted so far stays accepted) as body.
func (s *Server) writeEnqueueErr(w http.ResponseWriter, rep *ingestReport, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, rep)
	case errors.Is(err, ErrQuarantined):
		writeJSON(w, http.StatusConflict, rep)
	default:
		writeJSON(w, http.StatusServiceUnavailable, rep)
	}
}

// handleEventsBinary is the batched binary ingest path: pooled frame
// reader, one ring admission per batch. A malformed frame aborts the
// stream with 400 — binary framing cannot be resynced past a bad frame,
// unlike JSONL's per-line skipping — but frames already admitted stay
// admitted, and the report says how far the stream got.
func (s *Server) handleEventsBinary(w http.ResponseWriter, r *http.Request, in *instance) {
	fr := s.frameReaders.Get().(*wire.FrameReader)
	fr.Reset(r.Body)
	defer func() {
		fr.Reset(nil) // drop the request body reference before pooling
		s.frameReaders.Put(fr)
	}()
	var rep ingestReport
	abort := r.Context().Done()
	for {
		if aborted(abort) {
			writeJSON(w, http.StatusServiceUnavailable, rep)
			return
		}
		batch, err := fr.Next()
		if err == io.EOF {
			writeJSON(w, http.StatusOK, rep)
			return
		}
		if err != nil {
			rep.Malformed++
			in.mu.Lock()
			in.stats.Malformed++
			in.mu.Unlock()
			rep.LastError = fmt.Sprintf("frame %d: %v", rep.Lines+1, err)
			writeJSON(w, http.StatusBadRequest, rep)
			return
		}
		rep.Lines++
		accepted, err := in.enqueueBatch(batch)
		rep.Accepted += uint64(accepted)
		if err != nil {
			s.writeEnqueueErr(w, &rep, err)
			return
		}
	}
}

// etxHex formats a float64 exactly (hex float), for bit-identity checks.
func etxHex(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// neighborView is one row of the table response.
type neighborView struct {
	Addr      packet.Addr `json:"addr"`
	ETX       float64     `json:"etx"`
	ETXHex    string      `json:"etx_hex"`
	Pinned    bool        `json:"pinned,omitempty"`
	HasETX    bool        `json:"has_etx"`
	LastHeard int64       `json:"last_heard"`
}

// syncBarrier waits for read-your-writes and writes the timeout error on
// failure; callers return immediately when it reports false.
func (s *Server) syncBarrier(w http.ResponseWriter, r *http.Request, in *instance) bool {
	if !in.barrier(r.Context().Done()) {
		writeErr(w, http.StatusGatewayTimeout, "deadline waiting for ingest queue to drain")
		return false
	}
	return true
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request, in *instance) {
	if !s.syncBarrier(w, r, in) {
		return
	}
	in.mu.Lock()
	rows := make([]neighborView, 0, in.est.Table().Len())
	for _, e := range in.est.Table().Entries() {
		etx, ok := in.est.Quality(e.Addr)
		row := neighborView{Addr: e.Addr, Pinned: e.Pinned, HasETX: ok, LastHeard: int64(e.LastHeard())}
		if ok {
			row.ETX, row.ETXHex = etx, etxHex(etx)
		}
		rows = append(rows, row)
	}
	applied, quarantined := in.stats.Applied, in.quarantined
	in.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"instance": in.name, "neighbors": rows, "applied": applied, "quarantined": quarantined,
	})
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request, in *instance) {
	addrStr := r.URL.Query().Get("addr")
	addr64, err := strconv.ParseUint(addrStr, 10, 16)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad addr %q", addrStr)
		return
	}
	if !s.syncBarrier(w, r, in) {
		return
	}
	in.mu.Lock()
	etx, ok := in.est.Quality(packet.Addr(addr64))
	in.mu.Unlock()
	resp := map[string]any{"addr": addr64, "known": ok}
	if ok {
		resp["etx"], resp["etx_hex"] = etx, etxHex(etx)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInstanceStats(w http.ResponseWriter, in *instance) {
	in.mu.Lock()
	robust := in.stats
	est := in.est.Counters()
	quarantined, panicMsg, paused, queued := in.quarantined, in.panicMsg, in.paused, in.count
	in.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"instance": in.name, "kind": in.kind, "robust": robust, "estimator": est,
		"quarantined": quarantined, "panic": panicMsg, "paused": paused, "queued": queued,
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, in *instance) {
	snap, err := in.snapshot(r.Context().Done())
	if err != nil {
		writeErr(w, http.StatusGatewayTimeout, "snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request, name string) {
	var snap InstanceSnapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		writeErr(w, http.StatusBadRequest, "bad snapshot body: %v", err)
		return
	}
	snap.Name = name // the URL names the target; the body's name is advisory
	if err := s.RestoreSnapshot(&snap); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrSnapshotVersion) {
			status = http.StatusConflict
		}
		writeErr(w, status, "restore: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"restored": name, "kind": snap.Kind})
}
