package serve

import (
	"bytes"
	"io"
	"math"
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/serve/wire"
	"fourbit/internal/sim"
)

// TestFeedRecorderReplayReproducesEstimator is the recorder's contract: a
// stream recorded from a live estimator and replayed through the wire
// decoder into a fresh estimator of the same kind/seed/config rebuilds the
// same table, bit for bit — the scenario-to-service bridge.
func TestFeedRecorderReplayReproducesEstimator(t *testing.T) {
	for _, kind := range core.EstimatorKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cfg := core.DefaultConfig()
			inner, err := core.NewKind(kind, 0, cfg, nil, sim.NewCountedRand(11))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			rec := NewFeedRecorder(inner, &buf)

			// Drive the recorder with a deterministic mixed stream.
			script := sim.NewRand(0xFEED)
			now := sim.Time(0)
			seqs := map[packet.Addr]uint16{}
			var le packet.LEFrame
			for i := 0; i < 3000; i++ {
				now += sim.Time(script.Int63n(int64(sim.Second)))
				src := packet.Addr(1 + script.Intn(20))
				switch k := script.Intn(10); {
				case k < 6:
					seqs[src]++
					le = packet.LEFrame{Seq: seqs[src]}
					if script.Bernoulli(0.6) {
						le.Entries = []packet.LinkEntry{{Addr: 0, InQuality: uint8(script.Intn(256))}}
					}
					meta := core.RxMeta{White: script.Bernoulli(0.5), LQI: uint8(50 + script.Intn(60))}
					if script.Bernoulli(0.3) {
						meta.SNRdB = script.Normal(8, 3)
					}
					rec.OnBeacon(src, &le, meta, now)
				case k < 8:
					rec.TxResult(src, script.Bernoulli(0.7))
				case k < 9:
					rec.OnOverhear(src, core.RxMeta{LQI: uint8(40 + script.Intn(60))}, now)
				default:
					rec.Age(2*sim.Second, now)
				}
			}
			if err := rec.Err(); err != nil {
				t.Fatal(err)
			}

			// Replay through the JSONL wire decoder into a twin estimator.
			twin, err := core.NewKind(kind, 0, cfg, nil, sim.NewCountedRand(11))
			if err != nil {
				t.Fatal(err)
			}
			var dec EventDecoder
			var ev Event
			lines := 0
			for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
				if len(line) == 0 {
					continue
				}
				lines++
				if err := dec.Decode(line, &ev); err != nil {
					t.Fatalf("line %d %q: %v", lines, line, err)
				}
				applyToEstimator(twin, &ev)
			}
			if lines != 3000 {
				t.Fatalf("recorded %d lines, want 3000", lines)
			}
			sameEstimator(t, "jsonl replay", inner, twin)

			// Third twin: convert the recorded feed to the binary batch
			// format (feedconv's path) and replay that — the converted
			// feed must reproduce the estimator bit for bit too.
			var bin bytes.Buffer
			n, err := wire.ConvertJSONLToBinary(&bin, bytes.NewReader(buf.Bytes()), 256)
			if err != nil {
				t.Fatalf("ConvertJSONLToBinary: %v", err)
			}
			if n != 3000 {
				t.Fatalf("converted %d events, want 3000", n)
			}
			binTwin, err := core.NewKind(kind, 0, cfg, nil, sim.NewCountedRand(11))
			if err != nil {
				t.Fatal(err)
			}
			fr := wire.NewFrameReader(&bin, 0, false)
			for {
				evs, err := fr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("binary replay: %v", err)
				}
				for i := range evs {
					applyToEstimator(binTwin, &evs[i])
				}
			}
			sameEstimator(t, "binary replay", inner, binTwin)
		})
	}
}

// applyToEstimator drives one decoded wire event into est — the replay leg
// shared by both wire formats.
func applyToEstimator(est core.LinkEstimator, ev *Event) {
	switch ev.Ev {
	case EvBeacon:
		relay := packet.LEFrame{Seq: ev.Seq, Entries: ev.Links}
		est.OnBeacon(ev.Src, &relay, core.RxMeta{White: ev.White, LQI: ev.LQI, SNRdB: ev.SNR}, ev.At)
	case EvTx:
		est.TxResult(ev.Src, ev.Acked)
	case EvRx:
		est.OnOverhear(ev.Src, core.RxMeta{White: ev.White, LQI: ev.LQI, SNRdB: ev.SNR}, ev.At)
	case EvAge:
		est.Age(ev.Silence, ev.At)
	}
}

// sameEstimator asserts two estimators are in bit-identical observable
// state: counters, per-address quality bits, neighbor order.
func sameEstimator(t *testing.T, leg string, a, b core.LinkEstimator) {
	t.Helper()
	if a.Counters() != b.Counters() {
		t.Fatalf("%s: counters differ:\n%+v\n%+v", leg, a.Counters(), b.Counters())
	}
	for addr := packet.Addr(0); addr < 24; addr++ {
		qa, oka := a.Quality(addr)
		qb, okb := b.Quality(addr)
		if oka != okb || math.Float64bits(qa) != math.Float64bits(qb) {
			t.Fatalf("%s: quality for %v differs: (%x,%v) vs (%x,%v)", leg, addr, qa, oka, qb, okb)
		}
	}
	na, nb := a.Neighbors(), b.Neighbors()
	if len(na) != len(nb) {
		t.Fatalf("%s: neighbors differ: %v vs %v", leg, na, nb)
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("%s: neighbor order differs: %v vs %v", leg, na, nb)
		}
	}
}

// TestFeedRecorderPassThrough: wrapping changes nothing the inner estimator
// computes (same rng draws, same results as an unwrapped twin).
func TestFeedRecorderPassThrough(t *testing.T) {
	cfg := core.DefaultConfig()
	plain := core.New(0, cfg, nil, sim.NewCountedRand(3))
	wrapped := NewFeedRecorder(core.New(0, cfg, nil, sim.NewCountedRand(3)), &bytes.Buffer{})

	var le packet.LEFrame
	for i := 1; i <= 500; i++ {
		src := packet.Addr(1 + i%15)
		le = packet.LEFrame{Seq: uint16(i), Entries: []packet.LinkEntry{{Addr: 0, InQuality: 200}}}
		meta := core.RxMeta{White: i%2 == 0, LQI: 90}
		now := sim.Time(i) * sim.Second
		plain.OnBeacon(src, &le, meta, now)
		le = packet.LEFrame{Seq: uint16(i), Entries: []packet.LinkEntry{{Addr: 0, InQuality: 200}}}
		wrapped.OnBeacon(src, &le, meta, now)
		plain.TxResult(src, i%3 != 0)
		wrapped.TxResult(src, i%3 != 0)
	}
	if plain.Counters() != wrapped.Counters() {
		t.Fatalf("counters diverged: %+v vs %+v", plain.Counters(), wrapped.Counters())
	}
	for addr := packet.Addr(0); addr < 16; addr++ {
		qa, oka := plain.Quality(addr)
		qb, okb := wrapped.Quality(addr)
		if oka != okb || math.Float64bits(qa) != math.Float64bits(qb) {
			t.Fatalf("quality for %v diverged", addr)
		}
	}
}
