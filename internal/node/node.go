// Package node assembles full protocol stacks — radio, MAC, link estimator,
// routing, collection application — for every node of a topology, and is
// the only place where the layers are wired together (the narrow-interface
// discipline the paper argues for: each layer sees only its bits).
package node

import (
	"fmt"

	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/ctp"
	"fourbit/internal/lqirouter"
	"fourbit/internal/mac"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// EnvConfig configures the shared simulation environment.
type EnvConfig struct {
	Seed       uint64
	TxPowerDBm float64
	Phy        phy.Params
	Radio      phy.RadioParams
	LQI        phy.LQIParams
	MAC        mac.Params

	// ChanPre, when non-nil, is the shared immutable channel precompute to
	// instantiate the per-seed channel from, skipping the O(n²·log10)
	// geometry rebuild. It must have been built from this topology's
	// matrices and exactly these Phy params (NewEnv verifies the params);
	// the batch runners set it once per sweep cell and share it read-only
	// across the worker pool.
	ChanPre *phy.ChannelPre

	// WrapEstimator, when non-nil, decorates each node's link estimator
	// before the router sees it — the hook the serving layer's feed
	// recorder uses to tap a node's estimator event stream out of a
	// simulation. The decorator must delegate every call (a pass-through
	// wrapper keeps the run bit-identical); it runs after SetProbes, so
	// the inner estimator is fully wired when wrapped.
	WrapEstimator func(addr packet.Addr, est core.LinkEstimator) core.LinkEstimator

	// Shards, when >= 1, builds the environment for region-sharded
	// parallel dispatch: that many event wheels, nodes partitioned by
	// phy.PartitionByRegion, the medium in handoff mode, and a
	// sim.ShardGroup driving the epochs. 0 keeps the serial path. Results
	// are bit-identical for any Shards >= 1 (and differ from serial: the
	// handoff model shifts every receiver-side effect by one epoch).
	Shards int

	// ExtraRoots lists additional collection sinks beyond the topology
	// root. Every root runs a root protocol instance and no traffic
	// source; deliveries at any sink count toward the shared ledger.
	ExtraRoots []int
}

// DefaultEnvConfig returns the standard environment at the given power.
func DefaultEnvConfig(seed uint64, txPowerDBm float64) EnvConfig {
	return EnvConfig{
		Seed:       seed,
		TxPowerDBm: txPowerDBm,
		Phy:        phy.DefaultParams(),
		Radio:      phy.DefaultRadioParams(),
		LQI:        phy.DefaultLQIParams(),
		MAC:        mac.DefaultParams(),
	}
}

// Env is the shared simulation substrate: clock, channel, medium, and the
// run's probe bus (one subscription point for every layer's typed events;
// with no sinks attached the bus is inert and the run is byte-identical to
// an unprobed one).
type Env struct {
	Clock  *sim.Simulator
	Seeds  *sim.SeedSpace
	Topo   *topo.Topology
	Chan   *phy.Channel
	Medium *phy.Medium
	Probes *probe.Bus
	Cfg    EnvConfig

	// Sharded dispatch state (nil/empty on the serial path). Clocks[s] is
	// shard s's wheel (Clock aliases Clocks[0]), Buses[s] its probe bus
	// (buses stamp events with their own clock, so each shard gets one;
	// Probes aliases Buses[0]), ShardOf maps node to shard, and Group
	// drives the epoch barriers. Callers use ClockFor/BusFor so the same
	// build code wires both paths.
	Clocks  []*sim.Simulator
	Buses   []*probe.Bus
	ShardOf []int32
	Group   *sim.ShardGroup
}

// Sharded reports whether this environment dispatches through region
// shards.
func (env *Env) Sharded() bool { return env.Group != nil }

// ClockFor returns the wheel that owns node i's events.
func (env *Env) ClockFor(i int) *sim.Simulator {
	if env.Group != nil {
		return env.Clocks[env.ShardOf[i]]
	}
	return env.Clock
}

// BusFor returns the probe bus node i's layers emit on.
func (env *Env) BusFor(i int) *probe.Bus {
	if env.Group != nil {
		return env.Buses[env.ShardOf[i]]
	}
	return env.Probes
}

// ScheduleControl schedules run-level machinery (samplers, scripted
// dynamics) that reads or mutates cross-shard state. Serial: an ordinary
// clock event. Sharded: a coordinator control that runs at the first
// epoch barrier at or after at, with every shard idle.
func (env *Env) ScheduleControl(at sim.Time, fn func()) {
	if env.Group != nil {
		env.Group.ScheduleControl(at, fn)
		return
	}
	env.Clock.At(at, fn)
}

// IsRoot reports whether node i is a collection sink (the topology root
// or one of EnvConfig.ExtraRoots).
func (env *Env) IsRoot(i int) bool {
	if i == env.Topo.Root {
		return true
	}
	for _, r := range env.Cfg.ExtraRoots {
		if r == i {
			return true
		}
	}
	return false
}

// Roots returns every collection sink, topology root first.
func (env *Env) Roots() []int {
	return append([]int{env.Topo.Root}, env.Cfg.ExtraRoots...)
}

// ShardLookahead derives the epoch length E for sharded dispatch from the
// tightest protocol deadline the handoff delay must still clear: the MAC
// ack round trip. A data frame resolves at its receiver E late; the ack
// leaves AckTurnaround later, flies for its airtime, and resolves at the
// original sender another E late — all before the sender's AckTimeout
// (measured from the data frame's end) fires:
//
//	2E + AckTurnaround + ackAirtime + guard <= AckTimeout
//
// The guard absorbs the discrete tick the barrier loop reserves. With the
// default CC2420-class numbers (turnaround 192 us, ack airtime 544 us,
// timeout 1200 us, guard 64 us) E comes out at 200 us.
func ShardLookahead(rp phy.RadioParams, mp mac.Params) sim.Time {
	ackBits := int64(rp.PreambleBytes+packet.AckFrameLen) * 8
	ackAir := sim.Time(ackBits * int64(sim.Second) / int64(rp.BitrateBps))
	const guard = 64 * sim.Microsecond
	e := (mp.AckTimeout - mp.AckTurnaround - ackAir - guard) / 2
	if e <= 0 {
		panic(fmt.Sprintf("node: MAC timing leaves no sharding lookahead (ack timeout %v, turnaround %v, ack airtime %v)",
			mp.AckTimeout, mp.AckTurnaround, ackAir))
	}
	return e
}

// NewEnv builds the environment over a topology. With Cfg.Shards >= 1 the
// environment comes up in region-sharded mode: per-shard wheels and probe
// buses, the medium in cross-shard handoff mode, and a ShardGroup whose
// epoch is ShardLookahead of the configured radio and MAC. The caller
// must drive the run through Env.Group and Close it afterwards.
func NewEnv(t *topo.Topology, cfg EnvConfig) *Env {
	for _, r := range cfg.ExtraRoots {
		if r < 0 || r >= t.N() || r == t.Root {
			panic(fmt.Sprintf("node: extra root %d invalid (n=%d, root=%d)", r, t.N(), t.Root))
		}
	}
	clock := sim.New(cfg.Seed)
	seeds := sim.NewSeedSpace(cfg.Seed)
	bus := probe.NewBus(clock)
	var ch *phy.Channel
	if cfg.ChanPre != nil {
		if cfg.ChanPre.N() != t.N() || cfg.ChanPre.Params() != cfg.Phy {
			panic("node: EnvConfig.ChanPre does not match topology/phy params")
		}
		ch = cfg.ChanPre.NewChannel(seeds)
	} else {
		// PrecomputeGeo works from per-pair geometry accessors, so a
		// city-scale topology never materializes O(n²) distance matrices;
		// below the sparse threshold it is bit-identical to the historical
		// Matrices+NewChannel path.
		ch = phy.PrecomputeGeo(t, cfg.Phy).NewChannel(seeds)
	}
	med := phy.NewMedium(clock, ch, cfg.Radio, cfg.LQI, seeds)
	for i := 0; i < med.N(); i++ {
		med.Radio(i).SetTxPower(cfg.TxPowerDBm)
	}
	env := &Env{Clock: clock, Seeds: seeds, Topo: t, Chan: ch, Medium: med, Probes: bus, Cfg: cfg}
	if cfg.Shards >= 1 {
		env.Clocks = []*sim.Simulator{clock}
		env.Buses = []*probe.Bus{bus}
		for s := 1; s < cfg.Shards; s++ {
			c := sim.New(cfg.Seed)
			env.Clocks = append(env.Clocks, c)
			env.Buses = append(env.Buses, probe.NewBus(c))
		}
		env.ShardOf = phy.PartitionByRegion(t, cfg.Phy, cfg.Shards)
		epoch := ShardLookahead(cfg.Radio, cfg.MAC)
		med.EnableSharded(env.Clocks, env.ShardOf, epoch, seeds)
		env.Group = sim.NewShardGroup(env.Clocks, epoch, med.ShardExchange)
	}
	return env
}

// Close releases the environment's worker goroutines (sharded mode; a
// no-op on the serial path).
func (env *Env) Close() {
	if env.Group != nil {
		env.Group.Close()
	}
}

// ledgerState hides the serial/sharded split of delivery accounting. The
// serial path keeps the single ledger every layer has always shared. The
// sharded path gives each shard its own ledger for traffic generation
// (sources run on shard goroutines) and an append-only delivery log owned
// by each sink's shard; finalize replays the logs in canonical
// (time, origin, seq, sink) order into one merged ledger, so duplicate
// and hop accounting is identical for any shard count.
type ledgerState struct {
	single *collect.Ledger
	parts  []*collect.Ledger
	logs   [][]collect.Delivery
}

func newLedgerState(env *Env) *ledgerState {
	if !env.Sharded() {
		return &ledgerState{single: collect.NewLedger()}
	}
	ls := &ledgerState{
		parts: make([]*collect.Ledger, len(env.Clocks)),
		logs:  make([][]collect.Delivery, len(env.Clocks)),
	}
	for s := range ls.parts {
		ls.parts[s] = collect.NewLedger()
	}
	return ls
}

// forNode returns the ledger node i's source reports generation to.
func (ls *ledgerState) forNode(env *Env, i int) *collect.Ledger {
	if ls.single != nil {
		return ls.single
	}
	return ls.parts[env.ShardOf[i]]
}

// deliver records a delivery at sink (on the sink's own shard when
// sharded — only the log append happens during the run).
func (ls *ledgerState) deliver(env *Env, sink int, origin packet.Addr, seq uint32, hops uint8) {
	if ls.single != nil {
		ls.single.NoteDelivered(origin, seq, hops)
		return
	}
	s := env.ShardOf[sink]
	ls.logs[s] = append(ls.logs[s], collect.Delivery{
		At: env.Clocks[s].Now(), Origin: origin, Seq: seq, Sink: sink, Hops: hops,
	})
}

func (ls *ledgerState) finalize() *collect.Ledger {
	if ls.single != nil {
		return ls.single
	}
	return collect.MergeLedgers(ls.parts, ls.logs)
}

// CTPNetwork is a booted network of CTP nodes plus its workload and ledger.
type CTPNetwork struct {
	Env     *Env
	Nodes   []*ctp.Node
	MACs    []*mac.MAC
	Ests    []core.LinkEstimator
	Sources []*collect.Source
	// Ledger is the run's delivery accounting. On the serial path it is
	// live throughout the run; on the sharded path it is nil until
	// FinalizeLedger merges the per-shard state after the run.
	Ledger  *collect.Ledger
	ledgers *ledgerState
}

// FinalizeLedger merges per-shard delivery accounting into Ledger after a
// sharded run (serial: a no-op; Ledger is already the single live one).
func (net *CTPNetwork) FinalizeLedger() *collect.Ledger {
	net.Ledger = net.ledgers.finalize()
	return net.Ledger
}

// BuildCTP assembles a CTP network over the default (four-bit family) link
// estimator; see BuildCTPKind for the estimator-pluggable form.
func BuildCTP(env *Env, ctpCfg ctp.Config, estCfg core.Config, wl collect.Workload) *CTPNetwork {
	return BuildCTPKind(env, ctpCfg, estCfg, core.KindFourBit, wl)
}

// BuildCTPKind assembles one CTP node per topology position (the topology
// root becomes the collection root) over a link estimator of the given
// kind, boots them staggered over the workload's boot window, and starts
// the traffic sources. Every estimator draws from the same per-node
// "est/<i>" seed stream regardless of kind, so switching kinds perturbs no
// other randomness in the run. An unknown kind panics — callers validate
// selectors at the configuration boundary (core.ParseEstimatorKind).
func BuildCTPKind(env *Env, ctpCfg ctp.Config, estCfg core.Config, kind core.EstimatorKind, wl collect.Workload) *CTPNetwork {
	n := env.Topo.N()
	net := &CTPNetwork{Env: env, ledgers: newLedgerState(env)}
	net.Ledger = net.ledgers.single
	for i := 0; i < n; i++ {
		addr := packet.Addr(i)
		m := mac.New(env.ClockFor(i), env.Medium.Radio(i), addr, env.Cfg.MAC,
			env.Seeds.Stream(fmt.Sprintf("mac/%d", i)))
		est, err := core.NewKind(kind, addr, estCfg, nil, env.Seeds.Stream(fmt.Sprintf("est/%d", i)))
		if err != nil {
			panic("node: " + err.Error())
		}
		est.SetProbes(env.BusFor(i))
		if env.Cfg.WrapEstimator != nil {
			est = env.Cfg.WrapEstimator(addr, est)
		}
		cn := ctp.New(env.ClockFor(i), m, est, env.IsRoot(i), ctpCfg,
			env.Seeds.Stream(fmt.Sprintf("ctp/%d", i)))
		net.Nodes = append(net.Nodes, cn)
		net.MACs = append(net.MACs, m)
		net.Ests = append(net.Ests, est)
	}
	for _, sink := range env.Roots() {
		sink := sink
		net.Nodes[sink].OnDeliver(func(origin packet.Addr, _ uint8, thl uint8, data []byte) {
			if seq, err := collect.DecodeReading(data); err == nil {
				net.ledgers.deliver(env, sink, origin, seq, thl)
				env.BusFor(sink).Deliver(origin, seq, thl)
			}
		})
	}
	bootRng := env.Seeds.Stream("boot")
	for i := 0; i < n; i++ {
		i := i
		boot := bootRng.UniformTime(0, wl.BootWindow)
		env.ClockFor(i).At(boot, net.Nodes[i].Start)
		if env.IsRoot(i) {
			continue
		}
		src := collect.NewSource(env.ClockFor(i), packet.Addr(i), wl,
			env.Seeds.Stream(fmt.Sprintf("src/%d", i)),
			net.Nodes[i].Send, net.ledgers.forNode(env, i))
		src.Start(boot)
		net.Sources = append(net.Sources, src)
	}
	return net
}

// Parents returns the current parent index per node (-1 when routeless),
// ready for metrics.TreeDepths. Every sink reads as -1.
func (net *CTPNetwork) Parents() []int {
	out := make([]int, len(net.Nodes))
	for i, nd := range net.Nodes {
		p := nd.Parent()
		if net.Env.IsRoot(i) || p == packet.None {
			out[i] = -1
			continue
		}
		out[i] = int(p)
	}
	return out
}

// DataTransmissions sums unicast data transmissions across all MACs — the
// numerator of the paper's cost metric.
func (net *CTPNetwork) DataTransmissions() uint64 {
	var sum uint64
	for _, m := range net.MACs {
		sum += m.Stats.TxData
	}
	return sum
}

// BeaconTransmissions sums broadcast transmissions across all MACs.
func (net *CTPNetwork) BeaconTransmissions() uint64 {
	var sum uint64
	for _, m := range net.MACs {
		sum += m.Stats.TxBeacons
	}
	return sum
}

// LQINetwork is a booted network of MultiHopLQI nodes.
type LQINetwork struct {
	Env     *Env
	Nodes   []*lqirouter.Node
	MACs    []*mac.MAC
	Sources []*collect.Source
	// Ledger follows the same serial/sharded contract as CTPNetwork.Ledger.
	Ledger  *collect.Ledger
	ledgers *ledgerState
}

// FinalizeLedger merges per-shard delivery accounting into Ledger after a
// sharded run (serial: a no-op).
func (net *LQINetwork) FinalizeLedger() *collect.Ledger {
	net.Ledger = net.ledgers.finalize()
	return net.Ledger
}

// BuildLQI assembles a MultiHopLQI network, mirroring BuildCTP.
func BuildLQI(env *Env, cfg lqirouter.Config, wl collect.Workload) *LQINetwork {
	n := env.Topo.N()
	net := &LQINetwork{Env: env, ledgers: newLedgerState(env)}
	net.Ledger = net.ledgers.single
	for i := 0; i < n; i++ {
		addr := packet.Addr(i)
		m := mac.New(env.ClockFor(i), env.Medium.Radio(i), addr, env.Cfg.MAC,
			env.Seeds.Stream(fmt.Sprintf("mac/%d", i)))
		ln := lqirouter.New(env.ClockFor(i), m, env.IsRoot(i), cfg,
			env.Seeds.Stream(fmt.Sprintf("lqi/%d", i)))
		net.Nodes = append(net.Nodes, ln)
		net.MACs = append(net.MACs, m)
	}
	for _, sink := range env.Roots() {
		sink := sink
		net.Nodes[sink].OnDeliver(func(origin packet.Addr, _ uint16, hops uint8, data []byte) {
			if seq, err := collect.DecodeReading(data); err == nil {
				net.ledgers.deliver(env, sink, origin, seq, hops)
				env.BusFor(sink).Deliver(origin, seq, hops)
			}
		})
	}
	bootRng := env.Seeds.Stream("boot")
	for i := 0; i < n; i++ {
		i := i
		boot := bootRng.UniformTime(0, wl.BootWindow)
		env.ClockFor(i).At(boot, net.Nodes[i].Start)
		if env.IsRoot(i) {
			continue
		}
		src := collect.NewSource(env.ClockFor(i), packet.Addr(i), wl,
			env.Seeds.Stream(fmt.Sprintf("src/%d", i)),
			net.Nodes[i].Send, net.ledgers.forNode(env, i))
		src.Start(boot)
		net.Sources = append(net.Sources, src)
	}
	return net
}

// Parents returns the current parent index per node (-1 when routeless).
// Every sink reads as -1.
func (net *LQINetwork) Parents() []int {
	out := make([]int, len(net.Nodes))
	for i, nd := range net.Nodes {
		p := nd.Parent()
		if net.Env.IsRoot(i) || p == packet.None {
			out[i] = -1
			continue
		}
		out[i] = int(p)
	}
	return out
}

// DataTransmissions sums unicast data transmissions across all MACs.
func (net *LQINetwork) DataTransmissions() uint64 {
	var sum uint64
	for _, m := range net.MACs {
		sum += m.Stats.TxData
	}
	return sum
}

// BeaconTransmissions sums broadcast transmissions across all MACs.
func (net *LQINetwork) BeaconTransmissions() uint64 {
	var sum uint64
	for _, m := range net.MACs {
		sum += m.Stats.TxBeacons
	}
	return sum
}
