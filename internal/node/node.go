// Package node assembles full protocol stacks — radio, MAC, link estimator,
// routing, collection application — for every node of a topology, and is
// the only place where the layers are wired together (the narrow-interface
// discipline the paper argues for: each layer sees only its bits).
package node

import (
	"fmt"

	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/ctp"
	"fourbit/internal/lqirouter"
	"fourbit/internal/mac"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// EnvConfig configures the shared simulation environment.
type EnvConfig struct {
	Seed       uint64
	TxPowerDBm float64
	Phy        phy.Params
	Radio      phy.RadioParams
	LQI        phy.LQIParams
	MAC        mac.Params

	// ChanPre, when non-nil, is the shared immutable channel precompute to
	// instantiate the per-seed channel from, skipping the O(n²·log10)
	// geometry rebuild. It must have been built from this topology's
	// matrices and exactly these Phy params (NewEnv verifies the params);
	// the batch runners set it once per sweep cell and share it read-only
	// across the worker pool.
	ChanPre *phy.ChannelPre

	// WrapEstimator, when non-nil, decorates each node's link estimator
	// before the router sees it — the hook the serving layer's feed
	// recorder uses to tap a node's estimator event stream out of a
	// simulation. The decorator must delegate every call (a pass-through
	// wrapper keeps the run bit-identical); it runs after SetProbes, so
	// the inner estimator is fully wired when wrapped.
	WrapEstimator func(addr packet.Addr, est core.LinkEstimator) core.LinkEstimator
}

// DefaultEnvConfig returns the standard environment at the given power.
func DefaultEnvConfig(seed uint64, txPowerDBm float64) EnvConfig {
	return EnvConfig{
		Seed:       seed,
		TxPowerDBm: txPowerDBm,
		Phy:        phy.DefaultParams(),
		Radio:      phy.DefaultRadioParams(),
		LQI:        phy.DefaultLQIParams(),
		MAC:        mac.DefaultParams(),
	}
}

// Env is the shared simulation substrate: clock, channel, medium, and the
// run's probe bus (one subscription point for every layer's typed events;
// with no sinks attached the bus is inert and the run is byte-identical to
// an unprobed one).
type Env struct {
	Clock  *sim.Simulator
	Seeds  *sim.SeedSpace
	Topo   *topo.Topology
	Chan   *phy.Channel
	Medium *phy.Medium
	Probes *probe.Bus
	Cfg    EnvConfig
}

// NewEnv builds the environment over a topology.
func NewEnv(t *topo.Topology, cfg EnvConfig) *Env {
	clock := sim.New(cfg.Seed)
	seeds := sim.NewSeedSpace(cfg.Seed)
	bus := probe.NewBus(clock)
	var ch *phy.Channel
	if cfg.ChanPre != nil {
		if cfg.ChanPre.N() != t.N() || cfg.ChanPre.Params() != cfg.Phy {
			panic("node: EnvConfig.ChanPre does not match topology/phy params")
		}
		ch = cfg.ChanPre.NewChannel(seeds)
	} else {
		// PrecomputeGeo works from per-pair geometry accessors, so a
		// city-scale topology never materializes O(n²) distance matrices;
		// below the sparse threshold it is bit-identical to the historical
		// Matrices+NewChannel path.
		ch = phy.PrecomputeGeo(t, cfg.Phy).NewChannel(seeds)
	}
	med := phy.NewMedium(clock, ch, cfg.Radio, cfg.LQI, seeds)
	for i := 0; i < med.N(); i++ {
		med.Radio(i).SetTxPower(cfg.TxPowerDBm)
	}
	return &Env{Clock: clock, Seeds: seeds, Topo: t, Chan: ch, Medium: med, Probes: bus, Cfg: cfg}
}

// CTPNetwork is a booted network of CTP nodes plus its workload and ledger.
type CTPNetwork struct {
	Env     *Env
	Nodes   []*ctp.Node
	MACs    []*mac.MAC
	Ests    []core.LinkEstimator
	Sources []*collect.Source
	Ledger  *collect.Ledger
}

// BuildCTP assembles a CTP network over the default (four-bit family) link
// estimator; see BuildCTPKind for the estimator-pluggable form.
func BuildCTP(env *Env, ctpCfg ctp.Config, estCfg core.Config, wl collect.Workload) *CTPNetwork {
	return BuildCTPKind(env, ctpCfg, estCfg, core.KindFourBit, wl)
}

// BuildCTPKind assembles one CTP node per topology position (the topology
// root becomes the collection root) over a link estimator of the given
// kind, boots them staggered over the workload's boot window, and starts
// the traffic sources. Every estimator draws from the same per-node
// "est/<i>" seed stream regardless of kind, so switching kinds perturbs no
// other randomness in the run. An unknown kind panics — callers validate
// selectors at the configuration boundary (core.ParseEstimatorKind).
func BuildCTPKind(env *Env, ctpCfg ctp.Config, estCfg core.Config, kind core.EstimatorKind, wl collect.Workload) *CTPNetwork {
	n := env.Topo.N()
	net := &CTPNetwork{Env: env, Ledger: collect.NewLedger()}
	for i := 0; i < n; i++ {
		addr := packet.Addr(i)
		m := mac.New(env.Clock, env.Medium.Radio(i), addr, env.Cfg.MAC,
			env.Seeds.Stream(fmt.Sprintf("mac/%d", i)))
		est, err := core.NewKind(kind, addr, estCfg, nil, env.Seeds.Stream(fmt.Sprintf("est/%d", i)))
		if err != nil {
			panic("node: " + err.Error())
		}
		est.SetProbes(env.Probes)
		if env.Cfg.WrapEstimator != nil {
			est = env.Cfg.WrapEstimator(addr, est)
		}
		cn := ctp.New(env.Clock, m, est, i == env.Topo.Root, ctpCfg,
			env.Seeds.Stream(fmt.Sprintf("ctp/%d", i)))
		net.Nodes = append(net.Nodes, cn)
		net.MACs = append(net.MACs, m)
		net.Ests = append(net.Ests, est)
	}
	root := net.Nodes[env.Topo.Root]
	root.OnDeliver(func(origin packet.Addr, _ uint8, thl uint8, data []byte) {
		if seq, err := collect.DecodeReading(data); err == nil {
			net.Ledger.NoteDelivered(origin, seq, thl)
			env.Probes.Deliver(origin, seq, thl)
		}
	})
	bootRng := env.Seeds.Stream("boot")
	for i := 0; i < n; i++ {
		i := i
		boot := bootRng.UniformTime(0, wl.BootWindow)
		env.Clock.At(boot, net.Nodes[i].Start)
		if i == env.Topo.Root {
			continue
		}
		src := collect.NewSource(env.Clock, packet.Addr(i), wl,
			env.Seeds.Stream(fmt.Sprintf("src/%d", i)),
			net.Nodes[i].Send, net.Ledger)
		src.Start(boot)
		net.Sources = append(net.Sources, src)
	}
	return net
}

// Parents returns the current parent index per node (-1 when routeless),
// ready for metrics.TreeDepths.
func (net *CTPNetwork) Parents() []int {
	out := make([]int, len(net.Nodes))
	for i, nd := range net.Nodes {
		p := nd.Parent()
		if i == net.Env.Topo.Root || p == packet.None {
			out[i] = -1
			continue
		}
		out[i] = int(p)
	}
	return out
}

// DataTransmissions sums unicast data transmissions across all MACs — the
// numerator of the paper's cost metric.
func (net *CTPNetwork) DataTransmissions() uint64 {
	var sum uint64
	for _, m := range net.MACs {
		sum += m.Stats.TxData
	}
	return sum
}

// BeaconTransmissions sums broadcast transmissions across all MACs.
func (net *CTPNetwork) BeaconTransmissions() uint64 {
	var sum uint64
	for _, m := range net.MACs {
		sum += m.Stats.TxBeacons
	}
	return sum
}

// LQINetwork is a booted network of MultiHopLQI nodes.
type LQINetwork struct {
	Env     *Env
	Nodes   []*lqirouter.Node
	MACs    []*mac.MAC
	Sources []*collect.Source
	Ledger  *collect.Ledger
}

// BuildLQI assembles a MultiHopLQI network, mirroring BuildCTP.
func BuildLQI(env *Env, cfg lqirouter.Config, wl collect.Workload) *LQINetwork {
	n := env.Topo.N()
	net := &LQINetwork{Env: env, Ledger: collect.NewLedger()}
	for i := 0; i < n; i++ {
		addr := packet.Addr(i)
		m := mac.New(env.Clock, env.Medium.Radio(i), addr, env.Cfg.MAC,
			env.Seeds.Stream(fmt.Sprintf("mac/%d", i)))
		ln := lqirouter.New(env.Clock, m, i == env.Topo.Root, cfg,
			env.Seeds.Stream(fmt.Sprintf("lqi/%d", i)))
		net.Nodes = append(net.Nodes, ln)
		net.MACs = append(net.MACs, m)
	}
	root := net.Nodes[env.Topo.Root]
	root.OnDeliver(func(origin packet.Addr, _ uint16, hops uint8, data []byte) {
		if seq, err := collect.DecodeReading(data); err == nil {
			net.Ledger.NoteDelivered(origin, seq, hops)
			env.Probes.Deliver(origin, seq, hops)
		}
	})
	bootRng := env.Seeds.Stream("boot")
	for i := 0; i < n; i++ {
		i := i
		boot := bootRng.UniformTime(0, wl.BootWindow)
		env.Clock.At(boot, net.Nodes[i].Start)
		if i == env.Topo.Root {
			continue
		}
		src := collect.NewSource(env.Clock, packet.Addr(i), wl,
			env.Seeds.Stream(fmt.Sprintf("src/%d", i)),
			net.Nodes[i].Send, net.Ledger)
		src.Start(boot)
		net.Sources = append(net.Sources, src)
	}
	return net
}

// Parents returns the current parent index per node (-1 when routeless).
func (net *LQINetwork) Parents() []int {
	out := make([]int, len(net.Nodes))
	for i, nd := range net.Nodes {
		p := nd.Parent()
		if i == net.Env.Topo.Root || p == packet.None {
			out[i] = -1
			continue
		}
		out[i] = int(p)
	}
	return out
}

// DataTransmissions sums unicast data transmissions across all MACs.
func (net *LQINetwork) DataTransmissions() uint64 {
	var sum uint64
	for _, m := range net.MACs {
		sum += m.Stats.TxData
	}
	return sum
}

// BeaconTransmissions sums broadcast transmissions across all MACs.
func (net *LQINetwork) BeaconTransmissions() uint64 {
	var sum uint64
	for _, m := range net.MACs {
		sum += m.Stats.TxBeacons
	}
	return sum
}
