package node

import (
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/ctp"
	"fourbit/internal/lqirouter"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// The probe bus must observe exactly what the per-node Stats counters
// measure: the bus is the subscription point that replaces ad-hoc counter
// scraping, so any event it drops (or double-counts) is a bug. This test
// runs a real CTP network with a CountSink attached and reconciles every
// network-wide aggregate against the per-layer counters.
func TestProbeBusMatchesCountersCTP(t *testing.T) {
	env := NewEnv(topo.Grid(4, 4, 6), DefaultEnvConfig(7, -5))
	var counts probe.CountSink
	env.Probes.Attach(&counts)
	net := BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
	env.Clock.RunUntil(3 * sim.Minute)

	if counts.DataTx == 0 || counts.BeaconTx == 0 || counts.Delivered == 0 {
		t.Fatalf("no traffic observed: %+v", counts)
	}
	if got, want := counts.DataTx, net.DataTransmissions(); got != want {
		t.Errorf("bus DataTx = %d, MAC counters = %d", got, want)
	}
	if got, want := counts.BeaconTx, net.BeaconTransmissions(); got != want {
		t.Errorf("bus BeaconTx = %d, MAC counters = %d", got, want)
	}
	var ccaFails, parentChanges, beaconsSent uint64
	for _, m := range net.MACs {
		ccaFails += m.Stats.CCAFailures
	}
	for _, n := range net.Nodes {
		parentChanges += n.Stats.ParentChanges
		beaconsSent += n.Stats.BeaconsSent
	}
	if counts.CCAGiveUps != ccaFails {
		t.Errorf("bus CCAGiveUps = %d, MAC counters = %d", counts.CCAGiveUps, ccaFails)
	}
	if counts.ParentChanges != parentChanges {
		t.Errorf("bus ParentChanges = %d, CTP counters = %d", counts.ParentChanges, parentChanges)
	}
	if counts.BeaconsSent != beaconsSent {
		t.Errorf("bus BeaconsSent = %d, CTP counters = %d", counts.BeaconsSent, beaconsSent)
	}
	est := core.SumStats(net.Ests)
	if counts.Inserted != est.Inserted {
		t.Errorf("bus Inserted = %d, estimator counters = %d", counts.Inserted, est.Inserted)
	}
	if counts.Replaced != est.Replaced {
		t.Errorf("bus Replaced = %d, estimator counters = %d", counts.Replaced, est.Replaced)
	}
	if counts.Evicted != est.Replaced {
		t.Errorf("bus Evicted = %d, want one eviction per replacement (%d)", counts.Evicted, est.Replaced)
	}
	if counts.Rejected != est.RejectedFull {
		t.Errorf("bus Rejected = %d, estimator counters = %d", counts.Rejected, est.RejectedFull)
	}
	if got, want := counts.Delivered, net.Ledger.Unique()+net.Ledger.Duplicates(); got != want {
		t.Errorf("bus Delivered = %d, ledger = %d", got, want)
	}
	if got, want := counts.Generated, net.Ledger.Generated(); got != want {
		t.Errorf("bus Generated = %d, ledger = %d", got, want)
	}
}

// The MultiHopLQI stack emits through the same bus (mac tx/ack, router
// parent changes and beacons, node deliveries, source generation).
func TestProbeBusMatchesCountersLQI(t *testing.T) {
	env := NewEnv(topo.Grid(4, 4, 6), DefaultEnvConfig(7, -5))
	var counts probe.CountSink
	env.Probes.Attach(&counts)
	net := BuildLQI(env, lqirouter.DefaultConfig(), fastWorkload())
	env.Clock.RunUntil(3 * sim.Minute)

	if got, want := counts.DataTx, net.DataTransmissions(); got != want {
		t.Errorf("bus DataTx = %d, MAC counters = %d", got, want)
	}
	if got, want := counts.BeaconTx, net.BeaconTransmissions(); got != want {
		t.Errorf("bus BeaconTx = %d, MAC counters = %d", got, want)
	}
	var parentChanges, beaconsSent uint64
	for _, n := range net.Nodes {
		parentChanges += n.Stats.ParentChanges
		beaconsSent += n.Stats.BeaconsSent
	}
	if counts.ParentChanges != parentChanges {
		t.Errorf("bus ParentChanges = %d, router counters = %d", counts.ParentChanges, parentChanges)
	}
	if counts.BeaconsSent != beaconsSent {
		t.Errorf("bus BeaconsSent = %d, router counters = %d", counts.BeaconsSent, beaconsSent)
	}
	if got, want := counts.Delivered, net.Ledger.Unique()+net.Ledger.Duplicates(); got != want {
		t.Errorf("bus Delivered = %d, ledger = %d", got, want)
	}
	if counts.Inserted != 0 {
		t.Errorf("MultiHopLQI has no link table, yet bus saw %d inserts", counts.Inserted)
	}
}

// Attaching sinks must not perturb the simulation: same seed, with and
// without a (recording) sink, must produce the identical trajectory.
func TestProbeSinksDoNotPerturbRun(t *testing.T) {
	run := func(attach bool) (uint64, uint64, []int) {
		env := NewEnv(topo.Grid(4, 4, 6), DefaultEnvConfig(11, -5))
		if attach {
			env.Probes.Attach(&probe.CountSink{})
			env.Probes.Attach(probe.NewCollector(15 * sim.Second))
		}
		net := BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
		env.Clock.RunUntil(2 * sim.Minute)
		return env.Clock.Events(), net.DataTransmissions(), net.Parents()
	}
	ev1, tx1, par1 := run(false)
	ev2, tx2, par2 := run(true)
	if ev1 != ev2 || tx1 != tx2 {
		t.Fatalf("sinks perturbed the run: events %d vs %d, datatx %d vs %d", ev1, ev2, tx1, tx2)
	}
	for i := range par1 {
		if par1[i] != par2[i] {
			t.Fatalf("sinks perturbed routing: parents %v vs %v", par1, par2)
		}
	}
}
