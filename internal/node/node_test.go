package node

import (
	"testing"

	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/ctp"
	"fourbit/internal/lqirouter"
	"fourbit/internal/metrics"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

func fastWorkload() collect.Workload {
	wl := collect.DefaultWorkload()
	wl.Period = 2 * sim.Second // denser traffic so short tests converge
	return wl
}

// flatEnv disables the random channel components so link geometry is exact:
// 42 m hops are reliable (~2.3 dB SNR) while 84 m double-hops are dead.
func flatEnv(seed uint64, power float64) EnvConfig {
	cfg := DefaultEnvConfig(seed, power)
	cfg.Phy.ShadowSigmaDB = 0
	cfg.Phy.FadeSigmaDB = 0
	cfg.Phy.TxVarSigmaDB = 0
	cfg.Phy.NoiseDriftSigmaDB = 0
	cfg.Phy.NoiseBurstAmpDB = 0
	cfg.Phy.PacketJitterSigmaDB = 0
	return cfg
}

func TestCTPLineEndToEnd(t *testing.T) {
	tp := topo.Line(4, 42) // 42 m hops: usable links, skipping a hop impossible
	env := NewEnv(tp, flatEnv(1, 0))
	net := BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
	env.Clock.RunUntil(5 * sim.Minute)

	if r := net.Ledger.TotalDeliveryRatio(); r < 0.95 {
		t.Fatalf("delivery ratio = %.3f, want >= 0.95", r)
	}
	if net.Ledger.Unique() < 100 {
		t.Fatalf("only %d unique deliveries", net.Ledger.Unique())
	}
	// Line forces the routing tree 0 <- 1 <- 2 <- 3.
	depths := metrics.TreeDepths(net.Parents(), tp.Root)
	for i, want := range []int{0, 1, 2, 3} {
		if depths[i] != want {
			t.Errorf("node %d depth = %d, want %d (parents=%v)", i, depths[i], want, net.Parents())
		}
	}
}

func TestCTPGridMultihop(t *testing.T) {
	tp := topo.Grid(4, 4, 16)
	env := NewEnv(tp, DefaultEnvConfig(2, 0))
	net := BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
	env.Clock.RunUntil(5 * sim.Minute)

	if r := net.Ledger.TotalDeliveryRatio(); r < 0.9 {
		t.Fatalf("grid delivery ratio = %.3f, want >= 0.9", r)
	}
	depths := metrics.TreeDepths(net.Parents(), tp.Root)
	mean, connected, detached := metrics.MeanDepth(depths, tp.Root)
	if detached > 0 {
		t.Fatalf("%d nodes detached from the tree", detached)
	}
	if connected != tp.N()-1 {
		t.Fatalf("connected = %d, want %d", connected, tp.N()-1)
	}
	if mean < 1.0 || mean > 3.5 {
		t.Fatalf("mean depth = %.2f, implausible for a 4x4/16 m grid", mean)
	}
}

func TestLQILineEndToEnd(t *testing.T) {
	tp := topo.Line(4, 42)
	env := NewEnv(tp, flatEnv(3, 0))
	net := BuildLQI(env, lqirouter.DefaultConfig(), fastWorkload())
	env.Clock.RunUntil(6 * sim.Minute)

	if r := net.Ledger.TotalDeliveryRatio(); r < 0.9 {
		t.Fatalf("delivery ratio = %.3f, want >= 0.9", r)
	}
	depths := metrics.TreeDepths(net.Parents(), tp.Root)
	for i, want := range []int{0, 1, 2, 3} {
		if depths[i] != want {
			t.Errorf("node %d depth = %d, want %d", i, depths[i], want)
		}
	}
}

func TestCTPDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		tp := topo.Grid(3, 3, 16)
		env := NewEnv(tp, DefaultEnvConfig(7, 0))
		net := BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
		env.Clock.RunUntil(3 * sim.Minute)
		return net.Ledger.Unique(), net.DataTransmissions(), env.Clock.Events()
	}
	u1, d1, e1 := run()
	u2, d2, e2 := run()
	if u1 != u2 || d1 != d2 || e1 != e2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", u1, d1, e1, u2, d2, e2)
	}
}

func TestCTPDifferentSeedsDiffer(t *testing.T) {
	run := func(seed uint64) uint64 {
		tp := topo.Grid(3, 3, 16)
		env := NewEnv(tp, DefaultEnvConfig(seed, 0))
		BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
		env.Clock.RunUntil(2 * sim.Minute)
		return env.Clock.Events()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical event counts (suspicious)")
	}
}

func TestCTPReroutesAroundDeadLink(t *testing.T) {
	// Triangle: root R(0,0), helper A(18,0), leaf C(36,0). A 6 dB wall on
	// the direct R<->C path makes the 2-hop route via A the initial
	// choice. At t=4min the C<->A path dies completely; C must re-route
	// directly to R (lossy but workable) and keep delivering.
	tp := &topo.Topology{Name: "triangle", Positions: []topo.Point{
		{X: 0, Y: 0}, {X: 18, Y: 0}, {X: 36, Y: 0},
	}}
	env := NewEnv(tp, flatEnv(4, 0))
	env.Chan.SetModifierBoth(0, 2, constantLoss(6))
	net := BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())

	env.Clock.At(4*sim.Minute, func() {
		env.Chan.SetModifierBoth(1, 2, constantLoss(80))
	})
	env.Clock.RunUntil(4 * sim.Minute)
	beforeUnique := net.Ledger.Unique()
	env.Clock.RunUntil(10 * sim.Minute)

	delivered := net.Ledger.Unique() - beforeUnique
	// Node 2 generates ~180 packets in the remaining 6 min; node 1 too.
	// Without re-routing node 2's share would vanish.
	if delivered < 200 {
		t.Fatalf("only %d deliveries after link death; re-routing failed", delivered)
	}
	if net.Nodes[2].Parent() != 0 {
		t.Fatalf("node 2 parent = %v after link death, want 0 (direct)", net.Nodes[2].Parent())
	}
	if r := net.Ledger.DeliveryRatio(2); r < 0.8 {
		t.Fatalf("node 2 delivery ratio = %.3f after re-route", r)
	}
}

type constantLoss float64

func (c constantLoss) ExtraLossDB(sim.Time) float64 { return float64(c) }

func TestFourBitAvoidsBurstyLinkLQIDoesNot(t *testing.T) {
	// The paper's central failure case (§2.1, Figure 3): node C can reach
	// the root R directly over a link that is bursty — dead 75% of the
	// time, but carrying saturated LQI when alive — or via helper A over
	// two clean hops. MultiHopLQI sees only the high LQI of received
	// beacons and keeps the direct link; 4B's beacon-gap and ack-bit
	// streams expose it.
	build := func(seed uint64) (*Env, *topo.Topology) {
		tp := &topo.Topology{Name: "bursty-triangle", Positions: []topo.Point{
			{X: 0, Y: 0}, {X: 12, Y: 5}, {X: 24, Y: 0},
		}}
		cfg := DefaultEnvConfig(seed, 0)
		cfg.Phy.ShadowSigmaDB = 0
		cfg.Phy.FadeSigmaDB = 0
		cfg.Phy.NoiseBurstAmpDB = 0
		cfg.Phy.PacketJitterSigmaDB = 0
		env := NewEnv(tp, cfg)
		ge := phy.NewGilbertElliott(50, 2500*sim.Millisecond, 7500*sim.Millisecond,
			env.Seeds.Stream("ge"))
		env.Chan.SetModifierBoth(0, 2, ge)
		return env, tp
	}

	envL, _ := build(11)
	lqiNet := BuildLQI(envL, lqirouter.DefaultConfig(), fastWorkload())
	envL.Clock.RunUntil(12 * sim.Minute)

	env4, _ := build(11)
	ctpNet := BuildCTP(env4, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
	env4.Clock.RunUntil(12 * sim.Minute)

	lqiRatio := lqiNet.Ledger.DeliveryRatio(2)
	fbRatio := ctpNet.Ledger.DeliveryRatio(2)

	if lqiNet.Nodes[2].Parent() != 0 {
		t.Logf("note: MultiHopLQI parent of C = %v (expected 0: blind to bursts)",
			lqiNet.Nodes[2].Parent())
	}
	if ctpNet.Nodes[2].Parent() != 1 {
		t.Errorf("4B parent of C = %v, want 1 (route around the bursty link)",
			ctpNet.Nodes[2].Parent())
	}
	if fbRatio < 0.95 {
		t.Errorf("4B delivery ratio on bursty topology = %.3f, want >= 0.95", fbRatio)
	}
	if fbRatio < lqiRatio+0.1 {
		t.Errorf("4B (%.3f) should clearly beat MultiHopLQI (%.3f) here", fbRatio, lqiRatio)
	}
}

func TestParentsSnapshotShape(t *testing.T) {
	tp := topo.Line(3, 42)
	env := NewEnv(tp, flatEnv(5, 0))
	net := BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
	// Before boot: everyone routeless.
	for i, p := range net.Parents() {
		if p != -1 {
			t.Fatalf("node %d has parent %d before boot", i, p)
		}
	}
	env.Clock.RunUntil(2 * sim.Minute)
	parents := net.Parents()
	if parents[tp.Root] != -1 {
		t.Fatal("root must have no parent")
	}
	if parents[1] != 0 || parents[2] != 1 {
		t.Fatalf("parents = %v, want [_, 0, 1]", parents)
	}
}

func TestBeaconAndDataCountersAdvance(t *testing.T) {
	tp := topo.Line(3, 15)
	env := NewEnv(tp, DefaultEnvConfig(6, 0))
	net := BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), fastWorkload())
	env.Clock.RunUntil(3 * sim.Minute)
	if net.BeaconTransmissions() == 0 {
		t.Fatal("no beacons transmitted")
	}
	if net.DataTransmissions() == 0 {
		t.Fatal("no data transmitted")
	}
	// Data transmissions must be at least deliveries weighted by depth:
	// node1 1 hop + node2 2 hops.
	if net.DataTransmissions() < net.Ledger.Unique() {
		t.Fatal("fewer data transmissions than deliveries; counting broken")
	}
}
