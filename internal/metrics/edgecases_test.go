package metrics

import (
	"math"
	"testing"
)

// Edge cases for the aggregation primitives the scenario exports lean on:
// empty inputs, single observations, and degenerate all-equal samples must
// produce well-defined (zero or constant) summaries, never NaN.

func TestQuantileEmpty(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := Quantile(nil, q); got != 0 {
			t.Errorf("Quantile(nil, %v) = %v, want 0", q, got)
		}
		if got := Quantile([]float64{}, q); got != 0 {
			t.Errorf("Quantile([], %v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleValue(t *testing.T) {
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := Quantile([]float64{7.5}, q); got != 7.5 {
			t.Errorf("Quantile([7.5], %v) = %v, want 7.5", q, got)
		}
	}
}

func TestQuantileAllEqual(t *testing.T) {
	vs := []float64{3, 3, 3, 3, 3}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := Quantile(vs, q); got != 3 {
			t.Errorf("Quantile(all-3s, %v) = %v, want 3", q, got)
		}
	}
}

func TestQuantileOutOfRangeClamps(t *testing.T) {
	vs := []float64{1, 2, 3}
	if got := Quantile(vs, -0.5); got != 1 {
		t.Errorf("Quantile(q<0) = %v, want min", got)
	}
	if got := Quantile(vs, 1.5); got != 3 {
		t.Errorf("Quantile(q>1) = %v, want max", got)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	b := NewBoxplot(nil)
	if b.N != 0 || b.Min != 0 || b.Q1 != 0 || b.Median != 0 || b.Q3 != 0 || b.Max != 0 || b.Mean != 0 {
		t.Errorf("NewBoxplot(nil) = %+v, want all zeros", b)
	}
}

func TestBoxplotSingleValue(t *testing.T) {
	b := NewBoxplot([]float64{0.42})
	if b.N != 1 {
		t.Fatalf("N = %d, want 1", b.N)
	}
	for name, v := range map[string]float64{
		"min": b.Min, "q1": b.Q1, "med": b.Median, "q3": b.Q3, "max": b.Max, "mean": b.Mean,
	} {
		if v != 0.42 {
			t.Errorf("%s = %v, want 0.42", name, v)
		}
	}
}

func TestWindowMeanEdgeCases(t *testing.T) {
	// Empty series: no samples can fall in any window.
	var empty Series
	if got := empty.WindowMean(0, 10); !math.IsNaN(got) {
		t.Errorf("WindowMean on empty series = %v, want NaN", got)
	}

	var s Series
	s.Add(5, 10)
	s.Add(6, 20)
	s.Add(7, 30)

	// Window entirely before the first sample.
	if got := s.WindowMean(0, 5); !math.IsNaN(got) {
		t.Errorf("WindowMean before first sample = %v, want NaN", got)
	}
	// Degenerate t0 == t1: the half-open window [t, t) is empty even when
	// a sample sits exactly at t.
	if got := s.WindowMean(5, 5); !math.IsNaN(got) {
		t.Errorf("WindowMean over empty window = %v, want NaN", got)
	}
	// Window entirely after the last sample.
	if got := s.WindowMean(8, 100); !math.IsNaN(got) {
		t.Errorf("WindowMean after last sample = %v, want NaN", got)
	}
	// Half-open semantics: [5, 7) includes t=5 and t=6, excludes t=7.
	if got := s.WindowMean(5, 7); got != 15 {
		t.Errorf("WindowMean[5,7) = %v, want 15", got)
	}
	// Full coverage sanity.
	if got := s.WindowMean(0, 100); got != 20 {
		t.Errorf("WindowMean[0,100) = %v, want 20", got)
	}
}

func TestTreeDepthsDetachedSubtrees(t *testing.T) {
	// Root 0. Nodes 1,2 form a proper chain. Nodes 3,4 form a detached
	// 2-cycle; node 5 hangs off the cycle; node 6 points nowhere (-1).
	parents := []int{-1, 0, 1, 4, 3, 3, -1}
	depths := TreeDepths(parents, 0)
	want := []int{0, 1, 2, -1, -1, -1, -1}
	for i := range want {
		if depths[i] != want[i] {
			t.Errorf("depths[%d] = %d, want %d (full: %v)", i, depths[i], want[i], depths)
		}
	}
	// A self-loop is the tightest detached cycle.
	depths = TreeDepths([]int{-1, 1}, 0)
	if depths[1] != -1 {
		t.Errorf("self-looped node depth = %d, want -1", depths[1])
	}
	// A chain hanging off a detached subtree stays detached even when it
	// is long, and nodes with out-of-range parents are detached too.
	parents = []int{-1, 99, 1, 2, 3}
	depths = TreeDepths(parents, 0)
	for i := 1; i < len(parents); i++ {
		if depths[i] != -1 {
			t.Errorf("node %d reached depth %d through an out-of-range parent", i, depths[i])
		}
	}
	// MeanDepth counts the detached nodes separately.
	mean, connected, detached := MeanDepth([]int{0, 1, 2, -1, -1, -1, -1}, 0)
	if mean != 1.5 || connected != 2 || detached != 4 {
		t.Errorf("MeanDepth = %v/%d/%d, want 1.5/2/4", mean, connected, detached)
	}
}

func TestBoxplotAllEqual(t *testing.T) {
	b := NewBoxplot([]float64{1, 1, 1, 1})
	if b.Min != 1 || b.Q1 != 1 || b.Median != 1 || b.Q3 != 1 || b.Max != 1 || b.Mean != 1 || b.N != 4 {
		t.Errorf("all-equal boxplot = %+v, want constant 1", b)
	}
	// No NaNs may leak into renderings.
	for _, v := range []float64{b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean} {
		if math.IsNaN(v) {
			t.Fatal("NaN in all-equal boxplot")
		}
	}
}
