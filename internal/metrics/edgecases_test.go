package metrics

import (
	"math"
	"testing"
)

// Edge cases for the aggregation primitives the scenario exports lean on:
// empty inputs, single observations, and degenerate all-equal samples must
// produce well-defined (zero or constant) summaries, never NaN.

func TestQuantileEmpty(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := Quantile(nil, q); got != 0 {
			t.Errorf("Quantile(nil, %v) = %v, want 0", q, got)
		}
		if got := Quantile([]float64{}, q); got != 0 {
			t.Errorf("Quantile([], %v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleValue(t *testing.T) {
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := Quantile([]float64{7.5}, q); got != 7.5 {
			t.Errorf("Quantile([7.5], %v) = %v, want 7.5", q, got)
		}
	}
}

func TestQuantileAllEqual(t *testing.T) {
	vs := []float64{3, 3, 3, 3, 3}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := Quantile(vs, q); got != 3 {
			t.Errorf("Quantile(all-3s, %v) = %v, want 3", q, got)
		}
	}
}

func TestQuantileOutOfRangeClamps(t *testing.T) {
	vs := []float64{1, 2, 3}
	if got := Quantile(vs, -0.5); got != 1 {
		t.Errorf("Quantile(q<0) = %v, want min", got)
	}
	if got := Quantile(vs, 1.5); got != 3 {
		t.Errorf("Quantile(q>1) = %v, want max", got)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	b := NewBoxplot(nil)
	if b.N != 0 || b.Min != 0 || b.Q1 != 0 || b.Median != 0 || b.Q3 != 0 || b.Max != 0 || b.Mean != 0 {
		t.Errorf("NewBoxplot(nil) = %+v, want all zeros", b)
	}
}

func TestBoxplotSingleValue(t *testing.T) {
	b := NewBoxplot([]float64{0.42})
	if b.N != 1 {
		t.Fatalf("N = %d, want 1", b.N)
	}
	for name, v := range map[string]float64{
		"min": b.Min, "q1": b.Q1, "med": b.Median, "q3": b.Q3, "max": b.Max, "mean": b.Mean,
	} {
		if v != 0.42 {
			t.Errorf("%s = %v, want 0.42", name, v)
		}
	}
}

func TestBoxplotAllEqual(t *testing.T) {
	b := NewBoxplot([]float64{1, 1, 1, 1})
	if b.Min != 1 || b.Q1 != 1 || b.Median != 1 || b.Q3 != 1 || b.Max != 1 || b.Mean != 1 || b.N != 4 {
		t.Errorf("all-equal boxplot = %+v, want constant 1", b)
	}
	// No NaNs may leak into renderings.
	for _, v := range []float64{b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean} {
		if math.IsNaN(v) {
			t.Fatal("NaN in all-equal boxplot")
		}
	}
}
