// Package metrics provides the small statistical toolkit the experiment
// harness uses to report the paper's numbers: streaming summaries,
// quantiles, boxplot five-number summaries (Figure 8), time series
// (Figure 3), and routing-tree depth computation (Figures 2, 6, 7).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations.
type Summary struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records an observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics. It sorts a copy.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Boxplot is the five-number summary used for Figure 8.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// NewBoxplot summarizes values.
func NewBoxplot(values []float64) Boxplot {
	if len(values) == 0 {
		return Boxplot{}
	}
	var s Summary
	for _, v := range values {
		s.Add(v)
	}
	return Boxplot{
		Min:    s.Min(),
		Q1:     Quantile(values, 0.25),
		Median: Quantile(values, 0.5),
		Q3:     Quantile(values, 0.75),
		Max:    s.Max(),
		Mean:   s.Mean(),
		N:      len(values),
	}
}

// String renders the summary compactly.
func (b Boxplot) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f (n=%d)",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.N)
}

// Series is a time-indexed sequence of values (Figure 3's PRR/LQI traces).
type Series struct {
	T []float64 // time, in whatever unit the caller uses (hours for Fig 3)
	V []float64
}

// Add appends a point.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// WindowMean averages the values with t in [t0, t1).
func (s *Series) WindowMean(t0, t1 float64) float64 {
	var sum float64
	var n int
	for i, t := range s.T {
		if t >= t0 && t < t1 {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TreeDepths computes each node's hop distance to its tree root by
// following parent pointers. parents[i] is the parent index of node i, -1
// for "no parent". Nodes on loops or detached from a root get depth -1.
// roots are flagged by parent == -2 by convention of the caller, or simply
// depth 0 when parents[i] == -1 and i == root.
func TreeDepths(parents []int, root int) []int {
	n := len(parents)
	depths := make([]int, n)
	for i := range depths {
		depths[i] = -1
	}
	if root >= 0 && root < n {
		depths[root] = 0
	}
	for i := 0; i < n; i++ {
		if depths[i] >= 0 {
			continue
		}
		// Walk up, remembering the path; bail on loops or dead ends.
		path := []int{}
		cur := i
		for {
			if cur < 0 || cur >= n {
				break
			}
			if depths[cur] >= 0 {
				// Found an anchored node; unwind.
				d := depths[cur]
				for k := len(path) - 1; k >= 0; k-- {
					d++
					depths[path[k]] = d
				}
				break
			}
			looped := false
			for _, p := range path {
				if p == cur {
					looped = true
					break
				}
			}
			if looped {
				break
			}
			path = append(path, cur)
			cur = parents[cur]
		}
	}
	return depths
}

// TreeDepthsMulti is TreeDepths for a forest with several sinks (the
// multi-sink collection workload): every root anchors at depth 0 and each
// node's depth is its hop distance to whichever sink its parent chain
// reaches. With one root it is identical to TreeDepths.
func TreeDepthsMulti(parents []int, roots []int) []int {
	n := len(parents)
	depths := make([]int, n)
	for i := range depths {
		depths[i] = -1
	}
	for _, root := range roots {
		if root >= 0 && root < n {
			depths[root] = 0
		}
	}
	for i := 0; i < n; i++ {
		if depths[i] >= 0 {
			continue
		}
		path := []int{}
		cur := i
		for {
			if cur < 0 || cur >= n {
				break
			}
			if depths[cur] >= 0 {
				d := depths[cur]
				for k := len(path) - 1; k >= 0; k-- {
					d++
					depths[path[k]] = d
				}
				break
			}
			looped := false
			for _, p := range path {
				if p == cur {
					looped = true
					break
				}
			}
			if looped {
				break
			}
			path = append(path, cur)
			cur = parents[cur]
		}
	}
	return depths
}

// MeanDepthMulti is MeanDepth over a multi-sink forest: sinks are
// excluded from the mean and the connected/detached counts.
func MeanDepthMulti(depths []int, roots []int) (mean float64, connected, detached int) {
	isRoot := func(i int) bool {
		for _, r := range roots {
			if r == i {
				return true
			}
		}
		return false
	}
	var sum int
	for i, d := range depths {
		if isRoot(i) {
			continue
		}
		if d < 0 {
			detached++
			continue
		}
		sum += d
		connected++
	}
	if connected == 0 {
		return 0, 0, detached
	}
	return float64(sum) / float64(connected), connected, detached
}

// MeanDepth averages the depths of all nodes except the root, counting
// detached nodes (depth < 0) as notConnected instead, which is returned
// separately so callers can report both.
func MeanDepth(depths []int, root int) (mean float64, connected, detached int) {
	var sum int
	for i, d := range depths {
		if i == root {
			continue
		}
		if d < 0 {
			detached++
			continue
		}
		sum += d
		connected++
	}
	if connected == 0 {
		return 0, 0, detached
	}
	return float64(sum) / float64(connected), connected, detached
}
