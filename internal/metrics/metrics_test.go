package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 || s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("summary wrong: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if math.Abs(s.Std()-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std = %v", s.Std())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 {
		t.Fatal("empty summary should be zero-valued")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation: median of [1,2,3,4] is 2.5.
	if got := Quantile([]float64{4, 3, 2, 1}, 0.5); got != 2.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				vals[i] = 0
			}
		}
		qa, qb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(vals, qa) <= Quantile(vals, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxplot(t *testing.T) {
	b := NewBoxplot([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Median != 3 || b.Max != 5 || b.Mean != 3 || b.N != 5 {
		t.Fatalf("boxplot = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %v, %v", b.Q1, b.Q3)
	}
	if NewBoxplot(nil).N != 0 {
		t.Fatal("empty boxplot should be zero")
	}
	if b.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSeriesWindowMean(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	if s.Len() != 10 {
		t.Fatal("len wrong")
	}
	if got := s.WindowMean(2, 5); got != (4+6+8)/3.0 {
		t.Fatalf("WindowMean = %v", got)
	}
	if !math.IsNaN(s.WindowMean(100, 200)) {
		t.Fatal("empty window should be NaN")
	}
}

func TestTreeDepthsChain(t *testing.T) {
	// 0 <- 1 <- 2 <- 3
	parents := []int{-1, 0, 1, 2}
	d := TreeDepths(parents, 0)
	for i, want := range []int{0, 1, 2, 3} {
		if d[i] != want {
			t.Fatalf("depths = %v", d)
		}
	}
}

func TestTreeDepthsDetachedAndLoop(t *testing.T) {
	// 0 root; 1 -> 2 -> 1 loop; 3 detached; 4 -> 0 fine.
	parents := []int{-1, 2, 1, -1, 0}
	d := TreeDepths(parents, 0)
	if d[0] != 0 || d[4] != 1 {
		t.Fatalf("depths = %v", d)
	}
	if d[1] != -1 || d[2] != -1 || d[3] != -1 {
		t.Fatalf("loop/detached nodes must be -1: %v", d)
	}
	mean, connected, detached := MeanDepth(d, 0)
	if connected != 1 || detached != 3 || mean != 1 {
		t.Fatalf("MeanDepth = (%v, %d, %d)", mean, connected, detached)
	}
}

func TestTreeDepthsBranching(t *testing.T) {
	//      0
	//    / | \
	//   1  2  3
	//  / \
	// 4   5
	parents := []int{-1, 0, 0, 0, 1, 1}
	d := TreeDepths(parents, 0)
	want := []int{0, 1, 1, 1, 2, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("depths = %v, want %v", d, want)
		}
	}
	mean, connected, detached := MeanDepth(d, 0)
	if detached != 0 || connected != 5 {
		t.Fatal("connectivity wrong")
	}
	if math.Abs(mean-7.0/5.0) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
}

// Property: depths are consistent — every anchored node's depth is its
// parent's depth + 1.
func TestPropertyTreeDepthConsistency(t *testing.T) {
	f := func(raw []uint8) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		parents := make([]int, n)
		for i, r := range raw {
			p := int(r)%(n+1) - 1 // -1 .. n-1
			if p == i {
				p = -1
			}
			parents[i] = p
		}
		d := TreeDepths(parents, 0)
		if d[0] != 0 {
			return false
		}
		for i := 1; i < n; i++ {
			if d[i] < 0 {
				continue
			}
			p := parents[i]
			if p < 0 || p >= n || d[p] < 0 || d[i] != d[p]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
