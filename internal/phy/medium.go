package phy

import (
	"fmt"

	"fourbit/internal/sim"
)

// RadioParams describe the CC2420-class transceiver.
type RadioParams struct {
	BitrateBps        int     // 250 kbit/s for 802.15.4 at 2.4 GHz
	PreambleBytes     int     // synchronization header sent before the frame
	SensitivityDBm    float64 // below this a frame cannot be acquired
	DetectionDBm      float64 // below this a signal contributes nothing
	CCAThresholdDBm   float64 // clear-channel assessment energy threshold
	CaptureDB         float64 // a new signal this much stronger steals the receiver
	DefaultTxPowerDBm float64
	// InterferenceFactor weights co-channel interference relative to
	// thermal noise when computing the effective SINR. Concurrent 802.15.4
	// transmissions are far more destructive than AWGN of the same power
	// (the BER curve's DSSS processing gain does not apply to structured
	// interference), so interference counts this many times its power.
	InterferenceFactor float64
}

// DefaultRadioParams returns CC2420-like values.
func DefaultRadioParams() RadioParams {
	return RadioParams{
		BitrateBps:         250_000,
		PreambleBytes:      6,
		SensitivityDBm:     -100,
		DetectionDBm:       -110,
		CCAThresholdDBm:    -85,
		CaptureDB:          6,
		DefaultTxPowerDBm:  0,
		InterferenceFactor: 6,
	}
}

// Medium connects n radios through a Channel, implementing frame-level
// transmission with SINR-based reception, physical capture, and energy-based
// carrier sense. All radios share one spectrum (one 802.15.4 channel).
type Medium struct {
	clock  *sim.Simulator
	ch     *Channel
	rp     RadioParams
	lqip   LQIParams
	radios []*Radio
	rng    *sim.Rand

	active     []*transmission
	candidates [][]int32 // per transmitter: receivers within detection range
	candSlots  [][]int32 // sparse channel only: adjacency slot per candidate

	// Hot-path caches: the radio parameters converted to linear once, the
	// running interference sum per receiver (maintained incrementally as
	// transmissions start and finish instead of rescanning active), and a
	// free list of per-transmission received-power buffers.
	captureLin float64
	detectMW   float64
	sensMW     float64
	ccaMW      float64
	interfMW   []float64
	powCap     int // max candidate-set size: length of pooled powMW buffers
	powFree    [][]float64
	txFree     []*transmission // recycled transmission records
	finishFn   func(any)       // m.finishTx adapter, built once for ScheduleArg
	prrT       []*PRRTable     // per frame length, filled lazily from the shared cache

	onTransmit func(from int, data []byte)

	sh *shardedMedium // nil on the serial path; see EnableSharded

	Stats MediumStats
}

// MediumStats aggregate frame outcomes across all radios.
type MediumStats struct {
	Transmissions    uint64
	Delivered        uint64
	DroppedBER       uint64 // failed the SINR reception draw, no interference present
	DroppedCollision uint64 // failed the draw with interference present
	CaptureSwitches  uint64 // receptions stomped by a much stronger signal
	DroppedTxWhileRx uint64 // receptions aborted because the radio turned around to transmit
}

type transmission struct {
	from     int
	data     []byte
	powerDBm float64
	end      sim.Time
	idx      int       // position in Medium.active, for O(1) removal
	powMW    []float64 // received power per candidate (sender's candidate order); 0 = undetectable
}

type reception struct {
	tx          *transmission
	rec         *shardRec // sharded path; exactly one of tx/rec is set
	powerMW     float64
	curInterfMW float64
	maxInterfMW float64
}

// NewMedium builds the shared medium. Radios are created for every node of
// the channel with the default transmit power.
func NewMedium(clock *sim.Simulator, ch *Channel, rp RadioParams, lqip LQIParams, seeds *sim.SeedSpace) *Medium {
	m := &Medium{
		clock: clock,
		ch:    ch,
		rp:    rp,
		lqip:  lqip,
		rng:   seeds.Stream("phy/medium"),
	}
	n := ch.N()
	m.finishFn = func(a any) { m.finishTx(a.(*transmission)) }
	m.captureLin = DBToLinear(rp.CaptureDB)
	m.detectMW = DBmToMilliwatts(rp.DetectionDBm)
	m.sensMW = DBmToMilliwatts(rp.SensitivityDBm)
	m.ccaMW = DBmToMilliwatts(rp.CCAThresholdDBm)
	m.interfMW = make([]float64, n)
	// One contiguous backing array for the radios: the per-candidate hot
	// loops chase radios[j] for scattered j, and spreading n individually
	// allocated structs across the heap costs a cache miss per visit at
	// city scale.
	m.radios = make([]*Radio, n)
	backing := make([]Radio, n)
	for i := 0; i < n; i++ {
		backing[i] = Radio{m: m, id: i}
		m.radios[i] = &backing[i]
		m.radios[i].SetTxPower(rp.DefaultTxPowerDBm)
	}
	// Candidate receivers: static gain at maximum plausible power
	// (audibleMaxTxPowerDBm) plus a fade margin (audibleFadeMarginDB) must
	// clear the detection floor. The margin is generous so that fading can
	// only shrink, never grow, the true receiver set. The channel's
	// representation supplies the links to filter: the dense path offers
	// every pair, the sparse one only its stored audible set — which must
	// therefore floor at or below what this filter could admit, or culling
	// would change results. The filter expression itself is identical
	// either way, applied to identical static-gain values.
	if ch.Sparse() {
		need := rp.DetectionDBm - audibleMaxTxPowerDBm - audibleFadeMarginDB
		if floor := ch.AudibleFloorDB(); floor > need-0.25 {
			panic(fmt.Sprintf("phy: sparse channel floor %.2f dB too high for detection threshold %.2f dBm (needs <= %.2f)",
				floor, rp.DetectionDBm, need-0.25))
		}
		m.candSlots = make([][]int32, n)
	}
	m.candidates = make([][]int32, n)
	for i := 0; i < n; i++ {
		ch.ForEachAudible(i, func(j int, slot int32, gainDB float64) {
			if audibleMaxTxPowerDBm+gainDB+audibleFadeMarginDB >= rp.DetectionDBm {
				m.candidates[i] = append(m.candidates[i], int32(j))
				if m.candSlots != nil {
					m.candSlots[i] = append(m.candSlots[i], slot)
				}
			}
		})
		if len(m.candidates[i]) > m.powCap {
			m.powCap = len(m.candidates[i])
		}
	}
	return m
}

// Radio returns the radio of node id.
func (m *Medium) Radio(id int) *Radio { return m.radios[id] }

// OnTransmit installs a measurement tap invoked for every transmission put
// on the air (trace recording; not visible to the protocol stack). Serial
// path only: under sharded dispatch the tap would run concurrently from
// every shard, so the combination panics instead of racing silently.
func (m *Medium) OnTransmit(fn func(from int, data []byte)) {
	if m.sh != nil {
		panic("phy: OnTransmit is incompatible with sharded dispatch")
	}
	m.onTransmit = fn
}

// N returns the number of radios.
func (m *Medium) N() int { return len(m.radios) }

// Airtime returns the on-air duration of a frame of payloadBytes (MAC header
// + payload + CRC), including the synchronization header.
func (m *Medium) Airtime(payloadBytes int) sim.Time {
	bits := int64(m.rp.PreambleBytes+payloadBytes) * 8
	return sim.Time(bits * int64(sim.Second) / int64(m.rp.BitrateBps))
}

func (m *Medium) noiseMW(id int) float64 {
	if m.sh != nil {
		return m.ch.NoiseMW(id, m.sh.shards[m.sh.shardOf[id]].clock.Now())
	}
	return m.ch.NoiseMW(id, m.clock.Now())
}

// getPowBuf returns a zeroed per-transmission received-power buffer sized
// for the largest candidate set (indexed by candidate position, so it stays
// cache-resident at city scale instead of spanning all n nodes), reusing a
// pooled one when available. finishTx releases buffers back via putPowBuf;
// no reference to a buffer survives its transmission (receptions of a frame
// are all resolved inside that frame's finishTx).
func (m *Medium) getPowBuf() []float64 {
	if n := len(m.powFree); n > 0 {
		b := m.powFree[n-1]
		m.powFree = m.powFree[:n-1]
		return b
	}
	return make([]float64, m.powCap)
}

func (m *Medium) putPowBuf(b []float64) { m.powFree = append(m.powFree, b) }

// getTx returns a zeroed transmission record, reusing a pooled one when
// available. finishTx releases records: by the time it returns, every
// reception of the frame is resolved and no pointer to the record survives
// (receptions locked on it are cleared in its candidate sweep).
func (m *Medium) getTx() *transmission {
	if n := len(m.txFree); n > 0 {
		t := m.txFree[n-1]
		m.txFree = m.txFree[:n-1]
		*t = transmission{}
		return t
	}
	return &transmission{}
}

// prrDecide resolves a reception draw through the certified PRR table for
// the frame's length (bit-identical to rng.Bernoulli(PRR(...)); see
// PRRTable.Decide), falling back to the analytic function for lengths the
// table does not serve. The per-medium slice keeps the shared-cache lookup
// off the per-reception path.
func (m *Medium) prrDecide(sinrDB float64, frameBytes int) bool {
	return m.prrDecideWith(sinrDB, frameBytes, m.rng, &m.prrT)
}

// prrDecideWith is prrDecide with the draw stream and the table cache as
// parameters: the sharded resolve path supplies a per-receiver stream and
// a per-shard cache, so concurrent shards neither contend on one
// generator nor race on the lazily-grown cache slice.
func (m *Medium) prrDecideWith(sinrDB float64, frameBytes int, rng *sim.Rand, cache *[]*PRRTable) bool {
	prrT := *cache
	if frameBytes > 0 && frameBytes < len(prrT) {
		if tb := prrT[frameBytes]; tb != nil {
			return tb.Decide(sinrDB, rng)
		}
	}
	tb := PRRTableFor(frameBytes)
	if tb == nil {
		return rng.Bernoulli(PRR(sinrDB, frameBytes))
	}
	if frameBytes >= len(prrT) {
		grown := make([]*PRRTable, frameBytes+1)
		copy(grown, prrT)
		prrT = grown
	}
	prrT[frameBytes] = tb
	*cache = prrT
	return tb.Decide(sinrDB, rng)
}

func (m *Medium) startTx(r *Radio, data []byte) sim.Time {
	if m.sh != nil {
		return m.startTxSharded(r, data)
	}
	if r.transmitting {
		panic(fmt.Sprintf("phy: radio %d Transmit while transmitting", r.id))
	}
	now := m.clock.Now()
	if r.rx != nil {
		// Half duplex: turning around to transmit aborts the reception.
		r.rx = nil
		m.Stats.DroppedTxWhileRx++
	}
	air := m.Airtime(len(data))
	if r.down {
		// A powered-off radio radiates nothing. The MAC never reaches this
		// path in practice (ChannelClear is false while down), but the
		// contract stays safe: the "transmission" occupies the radio for its
		// airtime and touches no receiver.
		t := m.getTx()
		t.from, t.end, t.idx, t.powMW = r.id, now+air, len(m.active), m.getPowBuf()
		m.active = append(m.active, t)
		r.transmitting = true
		m.clock.ScheduleArg(t.end, m.finishFn, t)
		return air
	}
	t := m.getTx()
	t.from = r.id
	t.data = data
	t.powerDBm = r.txPowerDBm
	t.end = now + air
	t.idx = len(m.active)
	t.powMW = m.getPowBuf()
	m.active = append(m.active, t)
	r.transmitting = true
	m.Stats.Transmissions++
	r.Stats.TxFrames++
	if m.onTransmit != nil {
		m.onTransmit(r.id, data)
	}

	cands := m.candidates[r.id]
	var slots []int32
	if m.candSlots != nil {
		slots = m.candSlots[r.id]
	}
	for ci, j32 := range cands {
		j := int(j32)
		// Both branches sample the same per-pair fading process at the same
		// instant in the same (ascending-j) order; the slot variant only
		// skips the adjacency row search.
		var pmw float64
		if slots != nil {
			pmw = r.txPowMW * m.ch.gainLinSlot(r.id, j, slots[ci], now)
		} else {
			pmw = r.txPowMW * m.ch.GainLin(r.id, j, now)
		}
		if pmw < m.detectMW {
			continue
		}
		t.powMW[ci] = pmw
		m.interfMW[j] += pmw
		rj := m.radios[j]
		switch {
		case rj.down:
			// Powered off: the energy still arrives at the antenna (and is
			// accounted as interference for symmetry with finishTx), but the
			// radio cannot lock on.
		case rj.transmitting:
			// Busy transmitting; this signal is inaudible to j but was
			// recorded above as interference for others via t.powMW.
		case rj.rx != nil:
			if pmw > rj.rx.powerMW*m.captureLin && pmw >= m.sensMW {
				// Physical capture: the much stronger new signal steals the
				// receiver; the old frame is lost and keeps interfering.
				m.Stats.CaptureSwitches++
				rj.Stats.DropsCollision++
				rj.lockOn(t, pmw, m.interfMW[j]-pmw)
			} else {
				rj.rx.curInterfMW += pmw
				if rj.rx.curInterfMW > rj.rx.maxInterfMW {
					rj.rx.maxInterfMW = rj.rx.curInterfMW
				}
			}
		default: // idle
			if pmw >= m.sensMW {
				rj.lockOn(t, pmw, m.interfMW[j]-pmw)
			}
		}
	}
	// The finish event is scheduled before any caller-side completion event
	// at the same deadline, so receivers see the frame before the sender's
	// MAC reacts to its own completion (FIFO ordering at equal times).
	m.clock.ScheduleArg(t.end, m.finishFn, t)
	return air
}

func (m *Medium) finishTx(t *transmission) {
	// Swap-delete from the active set; t recorded its own position.
	last := len(m.active) - 1
	if t.idx != last {
		moved := m.active[last]
		m.active[t.idx] = moved
		moved.idx = t.idx
	}
	m.active[last] = nil
	m.active = m.active[:last]
	sender := m.radios[t.from]
	sender.transmitting = false

	now := m.clock.Now()
	for ci, j32 := range m.candidates[t.from] {
		j := int(j32)
		pmw := t.powMW[ci]
		if pmw == 0 {
			continue
		}
		t.powMW[ci] = 0
		m.interfMW[j] -= pmw
		if m.interfMW[j] < 0 {
			m.interfMW[j] = 0 // rounding drift from the incremental sum
		}
		rj := m.radios[j]
		rx := rj.rx
		if rx == nil {
			continue
		}
		if rx.tx != t {
			// This transmission was interference for j's ongoing reception.
			rx.curInterfMW -= pmw
			if rx.curInterfMW < 0 {
				rx.curInterfMW = 0
			}
			continue
		}
		rj.rx = nil
		noise := m.ch.NoiseMW(j, now)
		sinrLin := rx.powerMW / (noise + m.rp.InterferenceFactor*rx.maxInterfMW)
		sinrDB := LinearToDB(sinrLin)
		// Fast per-packet variation (multipath ISI): one draw decides both
		// the frame's fate and, if it survives, the quality it reports —
		// so received packets are biased toward good instants.
		if jitter := m.ch.PacketJitterSigmaDB(); jitter > 0 {
			sinrDB += m.rng.Normal(0, jitter)
		}
		if m.prrDecide(sinrDB, len(t.data)) {
			lqi, white := m.lqip.Synthesize(sinrDB, m.rng)
			info := RxInfo{
				At:    now,
				SNRdB: sinrDB,
				LQI:   lqi,
				White: white,
			}
			m.Stats.Delivered++
			rj.Stats.RxFrames++
			if rj.snoop != nil {
				rj.snoop(t.data, info)
			}
			if rj.recv != nil {
				rj.recv(t.data, info)
			}
		} else if rx.maxInterfMW > noise*0.1 {
			m.Stats.DroppedCollision++
			rj.Stats.DropsCollision++
		} else {
			m.Stats.DroppedBER++
			rj.Stats.DropsBER++
		}
	}
	m.putPowBuf(t.powMW)
	*t = transmission{} // drop the data reference before pooling
	m.txFree = append(m.txFree, t)
}

// Radio is one node's transceiver. MAC layers drive it through Transmit and
// ChannelClear and receive frames via the handler installed with OnReceive.
type Radio struct {
	m            *Medium
	id           int
	txPowerDBm   float64
	txPowMW      float64 // txPowerDBm converted once at SetTxPower
	transmitting bool
	down         bool
	rx           *reception
	rxBuf        reception // storage reused across receptions (rx points here)
	recv         func(data []byte, info RxInfo)
	snoop        func(data []byte, info RxInfo)

	Stats RadioStats
}

// lockOn points the radio's receiver at transmission t, reusing the
// radio-owned reception buffer (the previous reception, if any, is dead by
// the time lockOn runs).
func (r *Radio) lockOn(t *transmission, pmw, interf float64) {
	r.rxBuf = reception{tx: t, powerMW: pmw, curInterfMW: interf, maxInterfMW: interf}
	r.rx = &r.rxBuf
}

// lockOnRec is lockOn for the sharded path, where the frame arrives as a
// cross-shard record instead of a live transmission.
func (r *Radio) lockOnRec(rec *shardRec, pmw, interf float64) {
	r.rxBuf = reception{rec: rec, powerMW: pmw, curInterfMW: interf, maxInterfMW: interf}
	r.rx = &r.rxBuf
}

// RadioStats count per-radio frame outcomes.
type RadioStats struct {
	TxFrames       uint64
	RxFrames       uint64
	DropsBER       uint64
	DropsCollision uint64
}

// ID returns the node index of this radio.
func (r *Radio) ID() int { return r.id }

// OnReceive installs the frame delivery handler. The data slice is shared
// with the sender and must be treated as immutable.
func (r *Radio) OnReceive(fn func(data []byte, info RxInfo)) { r.recv = fn }

// OnSnoop installs a measurement tap that sees every frame this radio
// successfully receives, before the protocol handler. Used by the trace
// recorder; must not mutate the data.
func (r *Radio) OnSnoop(fn func(data []byte, info RxInfo)) { r.snoop = fn }

// SetTxPower sets the transmit power in dBm for subsequent transmissions.
func (r *Radio) SetTxPower(dbm float64) {
	r.txPowerDBm = dbm
	r.txPowMW = DBmToMilliwatts(dbm)
}

// TxPower returns the configured transmit power in dBm.
func (r *Radio) TxPower() float64 { return r.txPowerDBm }

// SetDown powers the radio off (true) or back on (false). A down radio is
// deaf and mute: it radiates nothing, locks onto nothing, and reports a
// busy channel so its MAC's CSMA attempts fail without touching the air.
// From the network's perspective the node is dead — neighbors stop hearing
// its beacons and acks and age it out — which is how scenario dynamics
// script node death and reboot. Going down aborts any in-progress
// reception; a frame already mid-flight from this radio completes (the
// sub-millisecond truncation is below the model's resolution).
func (r *Radio) SetDown(down bool) {
	if r.down == down {
		return
	}
	r.down = down
	if down && r.rx != nil {
		r.rx = nil
	}
}

// Down reports whether the radio is powered off.
func (r *Radio) Down() bool { return r.down }

// Transmitting reports whether the radio is mid-transmission.
func (r *Radio) Transmitting() bool { return r.transmitting }

// Receiving reports whether the radio is locked onto an incoming frame.
func (r *Radio) Receiving() bool { return r.rx != nil }

// ChannelClear performs a CC2420-style energy-detect clear channel
// assessment: the channel is clear when total received energy (noise plus
// all active signals) is below the CCA threshold and the radio itself is
// neither transmitting nor locked onto a frame. The signal energy comes
// from the incrementally-maintained per-receiver interference sum (a
// radio's own transmissions never contribute: a node is not among its own
// candidates), and the comparison happens in the linear domain.
func (r *Radio) ChannelClear() bool {
	if r.down || r.transmitting || r.rx != nil {
		return false
	}
	return r.m.noiseMW(r.id)+r.m.interfMW[r.id] < r.m.ccaMW
}

// Transmit puts data on the air immediately and returns its airtime. The
// caller (the MAC) schedules its own completion handling after the returned
// duration; receivers get the frame first at that instant.
func (r *Radio) Transmit(data []byte) sim.Time {
	return r.m.startTx(r, data)
}
