package phy

import (
	"math"
	"testing"

	"fourbit/internal/sim"
)

// Frame lengths spanning every bucket the simulator uses in practice: ack
// frames, beacons, data frames, the 802.15.4 maximum, and the extremes of
// the table-served range.
var prrTestFrameLengths = []int{1, 5, 12, 36, 40, 64, 127, 1024, prrMaxTableBytes}

// TestPRRTableLookupAccuracy pins the interpolated Lookup within 1e-3 of
// the analytic PRR across −20..+20 dB for every frame-length bucket — the
// documented quantization error budget (the measured interpolation error
// is ≤ ~2.5e-4; 1e-3 leaves slack without hiding regressions like a
// coarser grid or a broken index computation).
func TestPRRTableLookupAccuracy(t *testing.T) {
	for _, fb := range prrTestFrameLengths {
		tab := PRRTableFor(fb)
		if tab == nil {
			t.Fatalf("PRRTableFor(%d) = nil, want table", fb)
		}
		worst := 0.0
		for sinr := -20.0; sinr <= 20.0; sinr += 0.003 {
			got := tab.Lookup(sinr)
			want := PRR(sinr, fb)
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
		}
		if worst > 1e-3 {
			t.Errorf("frameBytes=%d: max |Lookup-PRR| = %g, want <= 1e-3", fb, worst)
		}
	}
}

// TestPRRTableLookupEdges checks the clamped ends of the interpolation
// domain and basic sanity of the returned curve.
func TestPRRTableLookupEdges(t *testing.T) {
	tab := PRRTableFor(40)
	if got := tab.Lookup(prrTableMaxDB + 50); got != 1 {
		t.Errorf("Lookup above domain = %v, want 1", got)
	}
	if got := tab.Lookup(prrTableMinDB - 50); got != tab.Lookup(prrTableMinDB) {
		t.Errorf("Lookup below domain = %v, want clamp to %v", got, tab.Lookup(prrTableMinDB))
	}
	for sinr := -40.0; sinr < 10; sinr += 0.37 {
		if p := tab.Lookup(sinr); p < 0 || p > 1 {
			t.Fatalf("Lookup(%v) = %v out of [0,1]", sinr, p)
		}
	}
}

// TestPRRTableDecideBitExact is the certified-exactness property the whole
// reception fast path rests on: Decide must equal Bernoulli(PRR(sinr, n))
// in outcome AND consume the random stream identically, for any SINR. Two
// identically-seeded streams are stepped side by side — one through the
// table, one through the analytic draw — over a dense random sweep that
// concentrates on the waterfall and the table's domain edges; any
// divergence in outcome or in stream position fails.
func TestPRRTableDecideBitExact(t *testing.T) {
	// 135 is the shortest frame whose PRR underflows to exactly 0.0 in
	// the table domain (0.5^(8·135) is below the smallest subnormal), and
	// 1024 exercises the same deep in the long-frame regime: Bernoulli(0)
	// consumes no draw, so zero cells must route through the analytic
	// path — the regression the zeroTo certification exists for.
	for _, fb := range []int{5, 36, 40, 127, 135, 1024} {
		tab := PRRTableFor(fb)
		rngTab := sim.NewRand(42)
		rngRef := sim.NewRand(42)
		sweep := sim.NewRand(7)
		for i := 0; i < 20000; i++ {
			var sinr float64
			switch i % 4 {
			case 0: // full table domain and beyond
				sinr = -45 + 60*sweep.Float64()
			case 1: // waterfall, where bounds gaps are widest
				sinr = -6 + 8*sweep.Float64()
			case 2: // near the PRR==1 threshold neighborhood
				sinr = 1 + 6*sweep.Float64()
			case 3: // exact grid points and domain edges
				sinr = prrTableMinDB + float64(i%prrTableCells)/prrTableStepsPerDB
			}
			got := tab.Decide(sinr, rngTab)
			want := rngRef.Bernoulli(PRR(sinr, fb))
			if got != want {
				t.Fatalf("frameBytes=%d sinr=%v: Decide=%v, Bernoulli(PRR)=%v", fb, sinr, got, want)
			}
			// Streams must stay in lockstep; a silent extra or missing
			// draw would surface here as a value mismatch.
			if a, b := rngTab.Float64(), rngRef.Float64(); a != b {
				t.Fatalf("frameBytes=%d sinr=%v: random streams diverged (%v vs %v)", fb, sinr, a, b)
			}
		}
	}
}

// TestPRRTableForRange pins the served frame-length range: out-of-range
// lengths get nil (callers fall back to the analytic path), in-range
// lengths get a table that remembers its length, and repeated calls share
// one table.
func TestPRRTableForRange(t *testing.T) {
	for _, fb := range []int{0, -1, prrMaxTableBytes + 1} {
		if tab := PRRTableFor(fb); tab != nil {
			t.Errorf("PRRTableFor(%d) = %v, want nil", fb, tab)
		}
	}
	tab := PRRTableFor(36)
	if tab.FrameBytes() != 36 {
		t.Errorf("FrameBytes() = %d, want 36", tab.FrameBytes())
	}
	if again := PRRTableFor(36); again != tab {
		t.Errorf("PRRTableFor(36) built a second table; want the shared one")
	}
}

// TestNewGilbertElliottRejectsZeroMeans is the regression test for the
// latent division-by-zero: a zero sojourn mean used to become an infinite
// transition rate and feed NaN probabilities into the chain's Bernoulli
// draws. Construction must panic instead.
func TestNewGilbertElliottRejectsZeroMeans(t *testing.T) {
	cases := []struct {
		name      string
		good, bad sim.Time
	}{
		{"zero good", 0, sim.Second},
		{"zero bad", sim.Second, 0},
		{"both zero", 0, 0},
		{"negative good", -sim.Second, sim.Second},
		{"negative bad", sim.Second, -sim.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGilbertElliott(%v, %v) did not panic", tc.good, tc.bad)
				}
			}()
			NewGilbertElliott(40, tc.good, tc.bad, sim.NewRand(1))
		})
	}
}
