package phy

import "math"

// ln10div10 turns 10^(x/10) into exp(x·ln10/10): one exp instead of the
// log+exp+special-casing inside math.Pow — the conversion sits on the
// per-frame path of the medium, where it dominates without this.
const ln10div10 = math.Ln10 / 10

// DBmToMilliwatts converts dBm to linear milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return math.Exp(dbm * ln10div10) }

// MilliwattsToDBm converts linear milliwatts to dBm. Zero or negative power
// maps to -infinity dBm.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// DBToLinear converts a dB ratio to a linear ratio.
func DBToLinear(db float64) float64 { return math.Exp(db * ln10div10) }

// LinearToDB converts a linear ratio to dB.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}
