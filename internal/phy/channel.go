package phy

import (
	"fmt"
	"math"
	"sync/atomic"

	"fourbit/internal/sim"
)

// Params configures the channel model. The defaults approximate an indoor
// office deployment of CC2420-class radios, with per-node hardware variation
// as characterized by Zuniga & Krishnamachari (ToSN'07) — the source the
// paper cites for link unreliability and asymmetry.
type Params struct {
	// Path loss: PL(d) = PathLossRefDB + 10·Exponent·log10(d/1m).
	PathLossRefDB    float64
	PathLossExponent float64
	// Lognormal shadowing, sampled once per unordered node pair (the static
	// environment is symmetric; asymmetry comes from hardware variation).
	ShadowSigmaDB float64
	// Per-node transmit power offset and receiver noise-figure offset
	// (hardware variation ⇒ persistent link asymmetry).
	TxVarSigmaDB    float64
	NoiseFigSigmaDB float64
	// Thermal noise floor and its slow per-node drift (interference from
	// the 2.4 GHz band, temperature, ...).
	NoiseFloorDBm     float64
	NoiseDriftSigmaDB float64
	NoiseDriftTau     sim.Time
	// Per-link time-varying fading. Combined with the steep 802.15.4 PRR
	// waterfall this makes marginal links bursty/bimodal while leaving
	// high-margin links untouched.
	FadeSigmaDB float64
	FadeTau     sim.Time
	// Receiver-side noise bursts: external 2.4 GHz interference (WiFi,
	// microwave ovens) periodically raises one receiver's noise floor by
	// NoiseBurstAmpDB for ~NoiseBurstMeanOn at a time. Packets received
	// outside bursts carry full LQI, so the resulting loss is invisible to
	// physical-layer metrics — but the ack bit sees it, and a 4B node can
	// route around the deaf receiver.
	NoiseBurstAmpDB   float64
	NoiseBurstMeanOn  sim.Time
	NoiseBurstMeanOff sim.Time
	// PacketJitterSigmaDB is fast per-packet channel variation (multipath
	// inter-symbol interference, co-channel noise) applied independently
	// to each frame's effective SNR. With the steep 802.15.4 waterfall it
	// is what produces the wide band of intermediate-quality links real
	// testbeds show — and the LQI optimism bias: packets that survive a
	// low draw are rare, so received packets systematically report better
	// channel quality than the link average.
	PacketJitterSigmaDB float64
	// SparseAboveN selects the sparse audible-set representation (see
	// spatial.go) for networks of at least this many nodes, replacing the
	// dense n×n gain/fade/modifier arrays with a per-node CSR over links
	// whose static gain clears AudibleFloorDB. Zero means
	// DefaultSparseAboveN; negative disables the sparse path entirely.
	// Representation choice never changes results — the differential
	// tests pin byte-identical trajectories either way.
	SparseAboveN int
	// AudibleFloorDB is the static-gain storage floor of the sparse
	// representation in dB (a large negative number). Zero means
	// DefaultAudibleFloorDB, which sits a guard band below the weakest
	// signal the medium's detection threshold could ever admit. NewMedium
	// rejects a sparse channel whose floor is too high for the radio's
	// configured detection threshold.
	AudibleFloorDB float64
}

// DefaultParams returns the indoor-office parameterization used by the
// Mirage-style experiments. The reference loss is calibrated so hop depths
// match the paper's testbeds: at 0 dBm the reliable range is ~40 m (1–2 hop
// networks on a 48×28 m floor), shrinking to ~9 m at −20 dBm (4+ hops) —
// the depth progression of the paper's Figure 7.
func DefaultParams() Params {
	return Params{
		PathLossRefDB:       47,
		PathLossExponent:    3.0,
		ShadowSigmaDB:       3.2,
		TxVarSigmaDB:        2.0,
		NoiseFigSigmaDB:     0.9,
		NoiseFloorDBm:       -98,
		NoiseDriftSigmaDB:   0.8,
		NoiseDriftTau:       5 * sim.Minute,
		FadeSigmaDB:         2.0,
		FadeTau:             25 * sim.Second,
		NoiseBurstAmpDB:     10,
		NoiseBurstMeanOn:    300 * sim.Millisecond,
		NoiseBurstMeanOff:   12 * sim.Second,
		PacketJitterSigmaDB: 2.5,
	}
}

// LinkModifier adds scripted, time-varying extra loss to a directed link.
// Scenario builders install modifiers (e.g. a GilbertElliott process) to
// force specific link dynamics, such as the degrading parent link in the
// paper's Figure 3.
type LinkModifier interface {
	ExtraLossDB(t sim.Time) float64
}

// Channel holds the directed link-gain model between n nodes and the
// per-node noise processes. It is built once from inter-node distances (and
// optional extra static attenuation, e.g. floors/walls from the topology)
// and then queried per packet.
type Channel struct {
	p Params
	n int

	staticGainDB []float64         // dense: n*n path loss + shadowing + tx offset, tx→rx
	noiseFigDB   []float64         // per node
	noiseDrift   []ouState         // per node
	fade         []ouState         // dense: per unordered pair at [a*n+b], a<b; sparse: per stored pair
	bursts       []*GilbertElliott // per-node noise bursts (nil if disabled)
	modifiers    []LinkModifier    // dense: n*n scripted link-loss slots
	noiseMods    [][]LinkModifier  // per-node scripted noise excursions (nil if unused)

	// Sparse audible-set representation (see spatial.go), active instead
	// of the dense arrays when sparse is true: a symmetric CSR over the
	// stored directed links. adjNbr[adjOff[i]:adjOff[i+1]] lists i's
	// audible neighbors ascending; the parallel arrays carry the directed
	// static gain (dB and linear) and the pair's index into fade. Culled
	// links read as gain −Inf (0 linear) and hold no state at all — no
	// fading process, no modifier slot. modMap replaces the dense
	// modifiers array (scripted dynamics touch a handful of links; a map
	// beats 800 MB of nil slots at 10k nodes).
	sparse     bool
	adjOff     []int32
	adjNbr     []int32
	adjGainDB  []float64
	adjGainLin []float64
	adjPair    []int32
	modMap     map[int64]LinkModifier

	// Linear-domain mirrors of the static model, precomputed once so the
	// per-frame path (GainLin, NoiseMW) converts only the time-varying dB
	// terms.
	staticGainLin []float64 // n*n: 10^(staticGainDB/10)
	noiseMWStatic []float64 // per node: floor + noise figure in milliwatts

	// Dynamics bookkeeping. AddNoiseModifier bumps noiseEpoch, which
	// invalidates the same-instant noise memo below; SetModifier maintains
	// linkModCount, the gain side's invalidation mechanism — while it is
	// zero (no scripted link dynamics installed, the common case for every
	// non-scenario run) the per-query fast path skips the n*n
	// modifier-slot load entirely. There is no gain-side memo to version:
	// same-instant gain repeats were measured too rare to pay for one.
	noiseEpoch   uint32
	linkModCount int

	// Same-instant noise memo: a (time, epoch)-keyed cache of the last
	// computed noise power per receiver. A hit can only occur for a
	// repeated query at an identical timestamp, where the OU and
	// Gilbert–Elliott processes are no-ops by construction (dt == 0 draws
	// nothing), so the memo is exactness-transparent: it never changes a
	// value or the random-stream consumption. (A per-link gain memo was
	// measured too: same-instant gain repeats are so rare that its n²
	// stores cost more than the hits saved, so only the noise path keeps
	// a memo.)
	noiseMemo []chanMemo // n

	// Per-family OU transition-coefficient caches; see ouCoeffs. burstCo
	// is the analogous shared decay cache for the per-node noise-burst
	// processes (identical sojourn means across nodes).
	fadeCo  ouCoeffs
	noiseCo ouCoeffs
	burstCo geCoeffs

	noiseRng *sim.Rand
	fadeRng  *sim.Rand

	// Sharded-dispatch state (nil on the serial path; see EnableSharded):
	// directed fading processes plus per-receiver random streams, so that
	// concurrent shards never touch a shared generator or a shared OU
	// state. shardFade is indexed like the gain representation: by
	// adjacency slot when sparse, by tx*n+rx when dense. The coefficient
	// caches get per-shard replicas too (indexed by shardOf[rx]): they are
	// exactness-transparent but lazily written, so sharing one across
	// shards would be a data race — and a torn (dt, decay) pair read by
	// another shard would silently corrupt a sample.
	shardFade     []ouState
	shardFadeRng  []*sim.Rand
	shardNoiseRng []*sim.Rand
	shardOf       []int32
	shardFadeCo   []ouCoeffs
	shardNoiseCo  []ouCoeffs
	shardBurstCo  []geCoeffs
}

// EnableSharded switches the channel's time-varying processes to their
// sharded representation: one fading process per *directed* link (the
// serial channel shares one per unordered pair, which two shards would
// race on), per-receiver lightweight random streams for fading, noise
// drift, and reception draws, and per-shard transition-coefficient caches
// — every piece of state a query can touch is owned by the shard that
// owns the receiver (shardOf). Results therefore differ from the serial
// channel — the two directions of a link fade independently — but are
// bit-identical for any shard count, which is the invariant the sharded
// dispatcher certifies (the caches never change a value, only how often
// it is recomputed). Idempotent; must be called before the simulation
// starts.
func (c *Channel) EnableSharded(seeds *sim.SeedSpace, shardOf []int32, shards int) {
	if c.shardFadeRng != nil {
		return
	}
	if c.sparse {
		c.shardFade = make([]ouState, len(c.adjNbr))
	} else {
		c.shardFade = make([]ouState, c.n*c.n)
	}
	c.shardFadeRng = make([]*sim.Rand, c.n)
	c.shardNoiseRng = make([]*sim.Rand, c.n)
	for i := 0; i < c.n; i++ {
		c.shardFadeRng[i] = seeds.Light(fmt.Sprintf("shard/fade/%d", i))
		c.shardNoiseRng[i] = seeds.Light(fmt.Sprintf("shard/noise/%d", i))
	}
	c.shardOf = shardOf
	c.shardFadeCo = make([]ouCoeffs, shards)
	c.shardNoiseCo = make([]ouCoeffs, shards)
	if c.bursts != nil {
		c.shardBurstCo = make([]geCoeffs, shards)
		for i := 0; i < c.n; i++ {
			c.bursts[i].SharedDecay(&c.shardBurstCo[shardOf[i]])
		}
	}
}

// Sharded reports whether EnableSharded has switched this channel to the
// per-directed-link representation.
func (c *Channel) Sharded() bool { return c.shardFadeRng != nil }

// chanMemo is one slot of the same-instant memo. epoch 0 is never current
// (epochs start at 1), so the zero value is invalid without initialization.
type chanMemo struct {
	at    sim.Time
	epoch uint32
	val   float64
}

// ChannelPre is the immutable, seed-independent half of a channel: the
// deterministic path-loss geometry (the n·log10 matrix — by far the most
// expensive part of channel construction) plus the parameters. One
// ChannelPre serves any number of per-seed Channel instantiations, and it
// is safe to share read-only across goroutines: after Precompute returns,
// nothing ever writes it (NewChannel only reads basePL/extraDB).
type ChannelPre struct {
	p Params
	n int

	// basePL is the distance-determined path loss per unordered pair
	// (PathLossRefDB + 10·Exponent·log10(max(d, 0.5m))), stored at [i*n+j]
	// for i < j. The per-seed terms — shadowing draw, then static
	// obstruction loss — are added in NewChannel in exactly the order the
	// monolithic constructor used, so the float results are bit-identical.
	basePL []float64
	// extraDB is a defensive copy of the static obstruction loss per
	// unordered pair ([i*n+j], i < j); nil when the topology had none.
	extraDB []float64

	// Sparse near-pair geometry (see spatial.go), replacing basePL/extraDB
	// when sparse is true: a CSR over unordered pairs within the cutoff
	// radius (row i lists j > i ascending) with each pair's deterministic
	// path loss and obstruction loss, plus the retained Geometry for the
	// rare beyond-cutoff pair whose shadowing draw defeats the certified
	// bound plAtCutoff.
	sparse     bool
	geo        Geometry
	cutoffM    float64
	plAtCutoff float64
	nearOff    []int32
	nearNbr    []int32
	nearPL     []float64
	nearExtra  []float64
}

// precomputeCount counts Precompute invocations process-wide. It exists so
// tests can assert that replicated runs share one precompute per cell
// instead of rebuilding the geometry per seed.
var precomputeCount atomic.Uint64

// PrecomputeCount returns the process-wide number of Precompute calls
// (test/diagnostic hook for setup-sharing assertions).
func PrecomputeCount() uint64 { return precomputeCount.Load() }

// Precompute builds the immutable half of a channel for nodes separated by
// dist (meters, dist[i][j] == dist[j][i]) with optional extraLossDB (static
// obstruction loss per unordered pair; nil means none). It draws no
// randomness: the result is a pure function of (dist, extraLossDB, p).
func Precompute(dist [][]float64, extraLossDB [][]float64, p Params) *ChannelPre {
	precomputeCount.Add(1)
	n := len(dist)
	pre := &ChannelPre{p: p, n: n, basePL: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist[i][j]
			if d < 0.5 {
				d = 0.5
			}
			pre.basePL[i*n+j] = p.PathLossRefDB + 10*p.PathLossExponent*math.Log10(d)
		}
	}
	if extraLossDB != nil {
		pre.extraDB = make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pre.extraDB[i*n+j] = extraLossDB[i][j]
			}
		}
	}
	return pre
}

// N returns the number of nodes the precompute covers.
func (pre *ChannelPre) N() int { return pre.n }

// Params returns the channel parameters the precompute was built for.
func (pre *ChannelPre) Params() Params { return pre.p }

// NewChannel instantiates the per-seed half over the shared precompute:
// hardware variation, shadowing, and the dynamic processes, drawn from
// streams of seeds in the same order as the monolithic constructor, so a
// precompute-split channel is bit-identical to a direct one. The receiver
// is only read; concurrent NewChannel calls over one ChannelPre are safe.
func (pre *ChannelPre) NewChannel(seeds *sim.SeedSpace) *Channel {
	n := pre.n
	p := pre.p
	c := &Channel{
		p:          p,
		n:          n,
		noiseFigDB: make([]float64, n),
		noiseDrift: make([]ouState, n),
		noiseRng:   seeds.Stream("phy/noise"),
		fadeRng:    seeds.Stream("phy/fade"),
	}
	static := seeds.Stream("phy/static")
	txOff := make([]float64, n)
	for i := 0; i < n; i++ {
		txOff[i] = static.Normal(0, p.TxVarSigmaDB)
		c.noiseFigDB[i] = static.Normal(0, p.NoiseFigSigmaDB)
	}
	if p.NoiseBurstAmpDB > 0 && p.NoiseBurstMeanOn > 0 && p.NoiseBurstMeanOff > 0 {
		// One backing array, not n heap objects: NoiseMW touches bursts[rx]
		// once per receiver per reception, in receiver order — contiguous
		// processes keep that sweep inside a few pages at city scale.
		c.bursts = make([]*GilbertElliott, n)
		backing := make([]GilbertElliott, n)
		for i := 0; i < n; i++ {
			backing[i] = *NewGilbertElliott(p.NoiseBurstAmpDB,
				p.NoiseBurstMeanOff, p.NoiseBurstMeanOn,
				seeds.Stream(fmt.Sprintf("phy/burst/%d", i)))
			c.bursts[i] = backing[i].SharedDecay(&c.burstCo)
		}
	}
	if pre.sparse {
		pre.newSparse(c, static, txOff)
	} else {
		c.staticGainDB = make([]float64, n*n)
		c.fade = make([]ouState, n*n)
		c.modifiers = make([]LinkModifier, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pl := pre.basePL[i*n+j]
				pl += static.Normal(0, p.ShadowSigmaDB)
				if pre.extraDB != nil {
					pl += pre.extraDB[i*n+j]
				}
				// Environment loss is symmetric; asymmetry enters through
				// the transmitter's power offset (receiver noise figure is
				// applied on the noise side).
				c.staticGainDB[i*n+j] = -pl + txOff[i]
				c.staticGainDB[j*n+i] = -pl + txOff[j]
			}
		}
		c.staticGainLin = make([]float64, n*n)
		for i, g := range c.staticGainDB {
			c.staticGainLin[i] = DBToLinear(g)
		}
	}
	c.noiseMWStatic = make([]float64, n)
	for i := 0; i < n; i++ {
		c.noiseMWStatic[i] = DBmToMilliwatts(p.NoiseFloorDBm + c.noiseFigDB[i])
	}
	c.noiseEpoch = 1
	c.noiseMemo = make([]chanMemo, n)
	return c
}

// NewChannel builds the channel for nodes separated by dist (meters,
// dist[i][j] == dist[j][i]) with optional extraLossDB (static obstruction
// loss per unordered pair; nil means none). Random draws come from streams
// of rng so that two channels built from the same seeds are identical.
// It is Precompute + ChannelPre.NewChannel in one step; replicated runs
// should precompute once and instantiate per seed instead.
func NewChannel(dist [][]float64, extraLossDB [][]float64, p Params, seeds *sim.SeedSpace) *Channel {
	return Precompute(dist, extraLossDB, p).NewChannel(seeds)
}

// N returns the number of nodes the channel connects.
func (c *Channel) N() int { return c.n }

// PacketJitterSigmaDB returns the per-packet SNR jitter the medium applies.
func (c *Channel) PacketJitterSigmaDB() float64 { return c.p.PacketJitterSigmaDB }

// GainDB returns the instantaneous channel gain from tx to rx at time t,
// including static path loss/shadowing/hardware offsets, time-varying
// fading, and any installed link modifier. Gain is negative (a loss). On a
// sparse channel a culled link reads as −Inf without sampling anything:
// no fading state exists for it, and no modifier can resurrect it (the
// link was certified inaudible at its best; scripted dynamics only ever
// add loss on top).
func (c *Channel) GainDB(tx, rx int, t sim.Time) float64 {
	if c.sparse {
		slot := c.slotOf(tx, rx)
		if slot < 0 {
			return math.Inf(-1)
		}
		g := c.adjGainDB[slot]
		if c.p.FadeSigmaDB > 0 {
			if c.shardFade != nil {
				g += c.shardFade[slot].sample(t, c.p.FadeTau, c.p.FadeSigmaDB, c.shardFadeRng[rx], &c.shardFadeCo[c.shardOf[rx]])
			} else {
				// Fading is a property of the physical path: one process per
				// stored unordered pair, so the two directions fade together.
				g += c.fade[c.adjPair[slot]].sample(t, c.p.FadeTau, c.p.FadeSigmaDB, c.fadeRng, &c.fadeCo)
			}
		}
		if c.linkModCount > 0 {
			if m := c.modMap[int64(tx)*int64(c.n)+int64(rx)]; m != nil {
				g -= m.ExtraLossDB(t)
			}
		}
		return g
	}
	g := c.staticGainDB[tx*c.n+rx]
	if c.p.FadeSigmaDB > 0 {
		if c.shardFade != nil {
			g += c.shardFade[tx*c.n+rx].sample(t, c.p.FadeTau, c.p.FadeSigmaDB, c.shardFadeRng[rx], &c.shardFadeCo[c.shardOf[rx]])
		} else {
			// Fading is a property of the physical path: use one process per
			// unordered pair so the two directions fade together.
			g += c.fadeState(tx, rx).sample(t, c.p.FadeTau, c.p.FadeSigmaDB, c.fadeRng, &c.fadeCo)
		}
	}
	if c.linkModCount > 0 {
		if m := c.modifiers[tx*c.n+rx]; m != nil {
			g -= m.ExtraLossDB(t)
		}
	}
	return g
}

// GainLin is GainDB in linear power ratio, organized so the precomputed
// static gain costs nothing and only the time-varying dB terms (fading,
// modifiers) pay one exp. It samples the same fading process in the same
// order as GainDB, so the two are interchangeable without perturbing the
// random streams. While no link modifiers are installed (linkModCount ==
// 0, maintained by SetModifier) the modifier layer — an n²-slot pointer
// load per query — is skipped entirely.
func (c *Channel) GainLin(tx, rx int, t sim.Time) float64 {
	if c.sparse {
		slot := c.slotOf(tx, rx)
		if slot < 0 {
			return 0
		}
		return c.gainLinSlot(tx, rx, slot, t)
	}
	idx := tx*c.n + rx
	g := c.staticGainLin[idx]
	varDB := 0.0
	if c.p.FadeSigmaDB > 0 {
		if c.shardFade != nil {
			varDB = c.shardFade[idx].sample(t, c.p.FadeTau, c.p.FadeSigmaDB, c.shardFadeRng[rx], &c.shardFadeCo[c.shardOf[rx]])
		} else {
			varDB = c.fadeState(tx, rx).sample(t, c.p.FadeTau, c.p.FadeSigmaDB, c.fadeRng, &c.fadeCo)
		}
	}
	if c.linkModCount > 0 {
		if lm := c.modifiers[idx]; lm != nil {
			varDB -= lm.ExtraLossDB(t)
		}
	}
	if varDB != 0 {
		g *= DBToLinear(varDB)
	}
	return g
}

func (c *Channel) fadeState(a, b int) *ouState {
	if a > b {
		a, b = b, a
	}
	return &c.fade[a*c.n+b]
}

// StaticGainDB returns the time-invariant part of the link gain, used for
// neighbor-candidate pruning and for topology reports. Culled links on a
// sparse channel read as −Inf.
func (c *Channel) StaticGainDB(tx, rx int) float64 {
	if c.sparse {
		if slot := c.slotOf(tx, rx); slot >= 0 {
			return c.adjGainDB[slot]
		}
		return math.Inf(-1)
	}
	return c.staticGainDB[tx*c.n+rx]
}

// NoiseDBm returns the instantaneous noise floor at rx, including slow
// drift and external interference bursts.
func (c *Channel) NoiseDBm(rx int, t sim.Time) float64 {
	nz := c.p.NoiseFloorDBm + c.noiseFigDB[rx]
	if c.p.NoiseDriftSigmaDB > 0 {
		rng, co := c.noiseRng, &c.noiseCo
		if c.shardNoiseRng != nil {
			rng, co = c.shardNoiseRng[rx], &c.shardNoiseCo[c.shardOf[rx]]
		}
		nz += c.noiseDrift[rx].sample(t, c.p.NoiseDriftTau, c.p.NoiseDriftSigmaDB, rng, co)
	}
	if c.bursts != nil {
		nz += c.bursts[rx].ExtraLossDB(t)
	}
	if c.noiseMods != nil {
		for _, m := range c.noiseMods[rx] {
			nz += m.ExtraLossDB(t)
		}
	}
	return nz
}

// NoiseMW is NoiseDBm in milliwatts: the static floor + noise figure come
// from a precomputed table and only the drift/burst dB excursion pays a
// conversion. Sampling order matches NoiseDBm exactly, and repeated
// queries at one instant hit the epoch-versioned memo.
func (c *Channel) NoiseMW(rx int, t sim.Time) float64 {
	memo := &c.noiseMemo[rx]
	if memo.at == t && memo.epoch == c.noiseEpoch {
		return memo.val
	}
	mw := c.noiseMWStatic[rx]
	varDB := 0.0
	if c.p.NoiseDriftSigmaDB > 0 {
		rng, co := c.noiseRng, &c.noiseCo
		if c.shardNoiseRng != nil {
			rng, co = c.shardNoiseRng[rx], &c.shardNoiseCo[c.shardOf[rx]]
		}
		varDB = c.noiseDrift[rx].sample(t, c.p.NoiseDriftTau, c.p.NoiseDriftSigmaDB, rng, co)
	}
	if c.bursts != nil {
		varDB += c.bursts[rx].ExtraLossDB(t)
	}
	if c.noiseMods != nil {
		for _, m := range c.noiseMods[rx] {
			varDB += m.ExtraLossDB(t)
		}
	}
	if varDB != 0 {
		mw *= DBToLinear(varDB)
	}
	*memo = chanMemo{at: t, epoch: c.noiseEpoch, val: mw}
	return mw
}

// SetModifier installs (or clears, with nil) a scripted loss process on the
// directed link tx→rx. linkModCount tracks how many modifiers are
// installed so the gain fast path can skip the modifier layer entirely
// while the count is zero.
func (c *Channel) SetModifier(tx, rx int, m LinkModifier) {
	if tx < 0 || tx >= c.n || rx < 0 || rx >= c.n {
		panic(fmt.Sprintf("phy: SetModifier(%d,%d) out of range n=%d", tx, rx, c.n))
	}
	if c.sparse {
		// Modifiers are honored on stored links only: a culled link has no
		// state and reads −Inf regardless, and a loss process can never
		// raise a gain that was certified inaudible at its ceiling. The
		// map is keyed by the directed index; it stays tiny (scripted
		// dynamics touch a handful of links).
		key := int64(tx)*int64(c.n) + int64(rx)
		switch old := c.modMap[key]; {
		case old == nil && m != nil:
			c.linkModCount++
		case old != nil && m == nil:
			c.linkModCount--
		}
		if m == nil {
			delete(c.modMap, key)
			return
		}
		if c.modMap == nil {
			c.modMap = make(map[int64]LinkModifier)
		}
		c.modMap[key] = m
		return
	}
	idx := tx*c.n + rx
	switch old := c.modifiers[idx]; {
	case old == nil && m != nil:
		c.linkModCount++
	case old != nil && m == nil:
		c.linkModCount--
	}
	c.modifiers[idx] = m
}

// SetModifierBoth installs the same modifier on both directions of a link.
func (c *Channel) SetModifierBoth(a, b int, m LinkModifier) {
	c.SetModifier(a, b, m)
	c.SetModifier(b, a, m)
}

// AddNoiseModifier attaches a scripted noise-floor excursion (in dB, via the
// LinkModifier interface) to receiver rx. Scenario dynamics use this for
// mid-run interference onset: a GilbertElliott process windowed to the
// event raises the receiver's noise floor, so losses occur that no received
// packet's LQI can reveal. Multiple modifiers on one receiver add up.
func (c *Channel) AddNoiseModifier(rx int, m LinkModifier) {
	if rx < 0 || rx >= c.n {
		panic(fmt.Sprintf("phy: AddNoiseModifier(%d) out of range n=%d", rx, c.n))
	}
	if c.noiseMods == nil {
		c.noiseMods = make([][]LinkModifier, c.n)
	}
	c.noiseMods[rx] = append(c.noiseMods[rx], m)
	c.noiseEpoch++
}

// ExpectedSNRdB returns the static (no fading, no drift) SNR for a packet
// sent at txPowerDBm from tx to rx — the planning value used by topology
// diagnostics and tests.
func (c *Channel) ExpectedSNRdB(tx, rx int, txPowerDBm float64) float64 {
	return txPowerDBm + c.StaticGainDB(tx, rx) - (c.p.NoiseFloorDBm + c.noiseFigDB[rx])
}
