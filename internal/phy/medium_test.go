package phy

import (
	"testing"

	"fourbit/internal/sim"
)

// testbed builds a clock + medium over a line of n nodes at the given
// spacing with all randomness disabled except the reception draw.
func testbed(t *testing.T, n int, spacing float64, seed uint64) (*sim.Simulator, *Medium) {
	t.Helper()
	clock := sim.New(seed)
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB = 0
	p.PacketJitterSigmaDB = 0
	ch := NewChannel(lineDist(n, spacing), nil, p, sim.NewSeedSpace(seed))
	m := NewMedium(clock, ch, DefaultRadioParams(), DefaultLQIParams(), sim.NewSeedSpace(seed))
	return clock, m
}

func TestAirtimeMatchesBitrate(t *testing.T) {
	_, m := testbed(t, 2, 5, 1)
	// (6 preamble + 34 payload) bytes * 8 bits / 250 kbit/s = 1.28 ms.
	if got := m.Airtime(34); got != 1280*sim.Microsecond {
		t.Fatalf("Airtime(34) = %v, want 1.28ms", got)
	}
}

func TestStrongLinkDelivers(t *testing.T) {
	clock, m := testbed(t, 2, 5, 1) // 5 m at 0 dBm: huge margin
	var got []RxInfo
	m.Radio(1).OnReceive(func(data []byte, info RxInfo) {
		if len(data) != 20 {
			t.Errorf("payload len %d, want 20", len(data))
		}
		got = append(got, info)
	})
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d/50 on a 5 m link", len(got))
	}
	for _, info := range got {
		if !info.White {
			t.Error("white bit clear on a very strong link")
		}
		if info.LQI < 105 {
			t.Errorf("LQI %d on a very strong link", info.LQI)
		}
		if info.SNRdB < 20 {
			t.Errorf("SNR %v dB, want > 20", info.SNRdB)
		}
	}
}

func TestOutOfRangeLinkDeliversNothing(t *testing.T) {
	clock, m := testbed(t, 2, 120, 2) // 120 m: below detection at 0 dBm
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d frames on a 120 m link", delivered)
	}
}

func TestIntermediateLinkLossy(t *testing.T) {
	// Place the receiver in the grey region and verify PRR is intermediate.
	clock, m := testbed(t, 2, 55, 3)
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	n := 600
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 30)) })
	}
	clock.Run()
	prr := float64(delivered) / float64(n)
	if prr < 0.02 || prr > 0.98 {
		t.Fatalf("PRR at 26.5 m = %.3f, want intermediate (grey region)", prr)
	}
}

func TestHalfDuplexSenderDoesNotHearItself(t *testing.T) {
	clock, m := testbed(t, 2, 5, 4)
	heardSelf := false
	m.Radio(0).OnReceive(func([]byte, RxInfo) { heardSelf = true })
	clock.At(0, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	clock.Run()
	if heardSelf {
		t.Fatal("sender received its own frame")
	}
}

func TestConcurrentSendersCollideAtMidpoint(t *testing.T) {
	// Nodes 0 and 2 transmit simultaneously; node 1 sits exactly between
	// them, so neither signal can capture: both frames must be lost.
	clock := sim.New(5)
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	ch := NewChannel(lineDist(3, 10), nil, p, sim.NewSeedSpace(5))
	m := NewMedium(clock, ch, DefaultRadioParams(), DefaultLQIParams(), sim.NewSeedSpace(5))
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 30)) })
		clock.At(at, func() { m.Radio(2).Transmit(make([]byte, 30)) })
	}
	clock.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d frames under symmetric collision, want 0", delivered)
	}
	if m.Stats.DroppedCollision == 0 {
		t.Fatal("no collision drops recorded")
	}
}

func TestCaptureStrongerSignalWins(t *testing.T) {
	// Node 1 is 5 m from node 0 but 35 m from node 2: node 2's signal is
	// acquirable but node 0's is ~25 dB stronger, far above the capture
	// margin, so node 0's frames should stomp node 2's and get through
	// even when node 2 transmits first.
	clock := sim.New(6)
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB = 0
	p.PacketJitterSigmaDB = 0
	dist := [][]float64{
		{0, 5, 40},
		{5, 0, 35},
		{40, 35, 0},
	}
	ch := NewChannel(dist, nil, p, sim.NewSeedSpace(6))
	m := NewMedium(clock, ch, DefaultRadioParams(), DefaultLQIParams(), sim.NewSeedSpace(6))
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	n := 100
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		// Weak interferer starts first, strong signal arrives mid-frame.
		clock.At(at, func() { m.Radio(2).Transmit(make([]byte, 30)) })
		clock.At(at+200*sim.Microsecond, func() { m.Radio(0).Transmit(make([]byte, 30)) })
	}
	clock.Run()
	if delivered < n*8/10 {
		t.Fatalf("capture delivered %d/%d, want most", delivered, n)
	}
	if m.Stats.CaptureSwitches == 0 {
		t.Fatal("no capture switches recorded")
	}
}

func TestChannelClearReflectsActivity(t *testing.T) {
	clock, m := testbed(t, 2, 5, 7)
	if !m.Radio(1).ChannelClear() {
		t.Fatal("idle channel reported busy")
	}
	clock.At(0, func() {
		m.Radio(0).Transmit(make([]byte, 60))
	})
	clock.At(100*sim.Microsecond, func() {
		if m.Radio(1).ChannelClear() {
			t.Error("channel clear while 5 m neighbor transmitting")
		}
		if m.Radio(0).ChannelClear() {
			t.Error("transmitting radio reported channel clear")
		}
	})
	clock.Run()
	if !m.Radio(1).ChannelClear() {
		t.Fatal("channel busy after all transmissions ended")
	}
}

func TestTurnaroundAbortsReception(t *testing.T) {
	clock, m := testbed(t, 2, 5, 8)
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	clock.At(0, func() { m.Radio(0).Transmit(make([]byte, 60)) })
	// Node 1 turns around to transmit mid-reception.
	clock.At(300*sim.Microsecond, func() { m.Radio(1).Transmit(make([]byte, 10)) })
	clock.Run()
	if delivered != 0 {
		t.Fatal("frame delivered despite receiver turning to transmit")
	}
	if m.Stats.DroppedTxWhileRx != 1 {
		t.Fatalf("DroppedTxWhileRx = %d, want 1", m.Stats.DroppedTxWhileRx)
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	clock, m := testbed(t, 2, 5, 9)
	clock.At(0, func() {
		m.Radio(0).Transmit(make([]byte, 60))
		defer func() {
			if recover() == nil {
				t.Error("double Transmit did not panic")
			}
		}()
		m.Radio(0).Transmit(make([]byte, 10))
	})
	clock.Run()
}

func TestLowPowerShrinksRange(t *testing.T) {
	deliver := func(power float64) int {
		clock, m := testbed(t, 2, 30, uint64(10+int(power)))
		m.Radio(0).SetTxPower(power)
		count := 0
		m.Radio(1).OnReceive(func([]byte, RxInfo) { count++ })
		for i := 0; i < 200; i++ {
			at := sim.Time(i) * 10 * sim.Millisecond
			clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 30)) })
		}
		clock.Run()
		return count
	}
	at0 := deliver(0)
	at20 := deliver(-20)
	if at0 < 190 {
		t.Fatalf("22 m link at 0 dBm delivered %d/200, want ~all", at0)
	}
	if at20 > 10 {
		t.Fatalf("22 m link at -20 dBm delivered %d/200, want ~none", at20)
	}
}

func TestMediumStatsConsistency(t *testing.T) {
	clock, m := testbed(t, 3, 18, 11)
	rx := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { rx++ })
	m.Radio(2).OnReceive(func([]byte, RxInfo) { rx++ })
	for i := 0; i < 300; i++ {
		at := sim.Time(i) * 5 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 25)) })
	}
	clock.Run()
	if m.Stats.Transmissions != 300 {
		t.Fatalf("Transmissions = %d, want 300", m.Stats.Transmissions)
	}
	if uint64(rx) != m.Stats.Delivered {
		t.Fatalf("delivered callbacks %d != Stats.Delivered %d", rx, m.Stats.Delivered)
	}
}
