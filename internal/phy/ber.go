package phy

import "math"

// BER computes the bit error rate of IEEE 802.15.4 O-QPSK DSSS at 2.4 GHz
// for the given signal-to-noise(-plus-interference) ratio in dB, using the
// standard's analytic expression (also used by Zuniga & Krishnamachari):
//
//	BER = (8/15) · (1/16) · Σ_{k=2}^{16} (−1)^k · C(16,k) · exp(20·γ·(1/k − 1))
//
// where γ is the linear SINR. The curve has the characteristic steep
// waterfall between roughly −4 dB and +2 dB that produces the narrow band of
// intermediate-quality links observed on real testbeds.
func BER(sinrDB float64) float64 {
	gamma := DBToLinear(sinrDB)
	var sum float64
	for k := 2; k <= 16; k++ {
		term := binom16[k] * math.Exp(20*gamma*(1/float64(k)-1))
		if k%2 == 0 {
			sum += term
		} else {
			sum -= term
		}
	}
	ber := (8.0 / 15.0) * (1.0 / 16.0) * sum
	if ber < 0 {
		return 0
	}
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// binom16[k] = C(16, k).
var binom16 = [17]float64{
	1, 16, 120, 560, 1820, 4368, 8008, 11440,
	12870, 11440, 8008, 4368, 1820, 560, 120, 16, 1,
}

// PRR computes the packet reception ratio for a frame of frameBytes bytes
// (PHY payload: MAC header + payload + CRC; the synchronization header is
// assumed acquired) at the given SINR. Independent bit errors are assumed,
// so PRR = (1 − BER)^(8·frameBytes).
func PRR(sinrDB float64, frameBytes int) float64 {
	if frameBytes <= 0 {
		return 1
	}
	ber := BER(sinrDB)
	if ber == 0 {
		return 1
	}
	return math.Pow(1-ber, float64(8*frameBytes))
}

// SNRForPRR inverts PRR by bisection: it returns the SINR in dB at which a
// frame of frameBytes achieves the target reception ratio. It is used by
// tests and by scenario builders that place links at chosen qualities.
func SNRForPRR(target float64, frameBytes int) float64 {
	if target <= 0 {
		return -20
	}
	if target >= 1 {
		return 20
	}
	lo, hi := -20.0, 20.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if PRR(mid, frameBytes) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
