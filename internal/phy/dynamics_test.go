package phy

import (
	"fmt"
	"math"
	"testing"

	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// Scenario dynamics rest on two phy primitives: a radio that can be powered
// off mid-run (node death/reboot) and scripted per-receiver noise excursions
// (mid-run interference onset). These tests pin their contracts.

func TestDownRadioIsDeaf(t *testing.T) {
	clock, m := testbed(t, 2, 5, 1)
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	m.Radio(1).SetDown(true)
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if delivered != 0 {
		t.Fatalf("down radio received %d frames", delivered)
	}
	if !m.Radio(1).Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
}

func TestDownRadioIsMuteAndRecovers(t *testing.T) {
	clock, m := testbed(t, 2, 5, 1)
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	// The sender dies for the first half of the run, then reboots.
	m.Radio(0).SetDown(true)
	clock.At(100*sim.Millisecond, func() { m.Radio(0).SetDown(false) })
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d frames, want exactly the 10 sent after reboot", delivered)
	}
}

func TestDownRadioReportsBusyChannel(t *testing.T) {
	_, m := testbed(t, 2, 5, 1)
	if !m.Radio(0).ChannelClear() {
		t.Fatal("idle powered radio should see a clear channel")
	}
	m.Radio(0).SetDown(true)
	if m.Radio(0).ChannelClear() {
		t.Fatal("down radio must report a busy channel (CSMA never transmits)")
	}
	m.Radio(0).SetDown(false)
	if !m.Radio(0).ChannelClear() {
		t.Fatal("channel should be clear again after power-up")
	}
}

// constLoss is a trivial LinkModifier for noise-injection tests.
type constLoss float64

func (c constLoss) ExtraLossDB(sim.Time) float64 { return float64(c) }

func TestNoiseModifierRaisesFloor(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseFigSigmaDB = 0
	p.NoiseBurstAmpDB = 0
	ch := NewChannel(lineDist(2, 5), nil, p, sim.NewSeedSpace(1))

	base := ch.NoiseDBm(1, 0)
	ch.AddNoiseModifier(1, constLoss(20))
	got := ch.NoiseDBm(1, 0)
	if diff := got - base; diff < 19.99 || diff > 20.01 {
		t.Fatalf("noise modifier added %.2f dB, want 20", diff)
	}
	// The linear-domain mirror must agree.
	wantMW := DBmToMilliwatts(got)
	if mw := ch.NoiseMW(1, 0); mw < wantMW*0.999 || mw > wantMW*1.001 {
		t.Fatalf("NoiseMW %.3g disagrees with NoiseDBm %.3g", mw, wantMW)
	}
	// Modifiers accumulate, and other receivers are untouched.
	ch.AddNoiseModifier(1, constLoss(5))
	if diff := ch.NoiseDBm(1, 0) - base; diff < 24.99 || diff > 25.01 {
		t.Fatalf("stacked modifiers added %.2f dB, want 25", diff)
	}
	if d := ch.NoiseDBm(0, 0) - p.NoiseFloorDBm; d != 0 {
		t.Fatalf("receiver 0 floor moved by %.2f dB; modifiers must be per-receiver", d)
	}
}

func TestNoiseModifierDrownsReception(t *testing.T) {
	clock := sim.New(4)
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB = 0
	p.PacketJitterSigmaDB = 0
	ch := NewChannel(lineDist(2, 20), nil, p, sim.NewSeedSpace(4))
	m := NewMedium(clock, ch, DefaultRadioParams(), DefaultLQIParams(), sim.NewSeedSpace(4))

	// A windowed 60 dB noise burst at the receiver from 100 ms on.
	ge := NewGilbertElliott(60, sim.Millisecond, sim.Hour, sim.NewRand(9)).
		Window(100*sim.Millisecond, sim.Hour)
	ch.AddNoiseModifier(1, ge)

	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d frames, want the 10 before interference onset", delivered)
	}
}

// TestSparseCulledLinkImmuneToDynamics pins the spatial index's contract
// under scripted dynamics: a link the audibility culling removed has no
// state, so no installed modifier — not even a (physically impossible)
// negative "loss" that would amplify the link, nor a noise excursion
// lowering the receiver's floor — can resurrect it. The link was certified
// inaudible at its best-case power; dynamics operate strictly within that
// certificate.
func TestSparseCulledLinkImmuneToDynamics(t *testing.T) {
	clock := sim.New(6)
	// Two tight clusters 3 km apart: intra-cluster links are strong by a
	// huge margin, inter-cluster links are inaudible by an equally huge
	// one — no seed can flip either.
	tp := &topo.Topology{Name: "twoclusters"}
	for i := 0; i < 4; i++ {
		tp.Positions = append(tp.Positions, topo.Point{X: float64(i) * 5})
	}
	for i := 0; i < 4; i++ {
		tp.Positions = append(tp.Positions, topo.Point{X: 3000 + float64(i)*5})
	}
	p := sparseTestParams()
	p.SparseAboveN = 1
	seeds := sim.NewSeedSpace(6)
	ch := PrecomputeGeo(tp, p).NewChannel(seeds)
	if !ch.Sparse() {
		t.Fatal("expected sparse representation")
	}
	if ch.slotOf(0, 7) >= 0 {
		t.Fatal("link (0,7) at 3 km unexpectedly audible")
	}
	if ch.slotOf(0, 1) < 0 {
		t.Fatal("adjacent link (0,1) unexpectedly culled")
	}
	m := NewMedium(clock, ch, DefaultRadioParams(), DefaultLQIParams(), seeds)

	// Try everything: a gain-side "modifier" that would add 100 dB to the
	// culled link, and a noise excursion dropping the far receiver's floor.
	ch.SetModifierBoth(0, 7, constLoss(-100))
	ch.AddNoiseModifier(7, constLoss(-40))
	if g := ch.GainDB(0, 7, sim.Second); !math.IsInf(g, -1) {
		t.Fatalf("culled link gain %v after modifier, want -Inf", g)
	}
	if g := ch.GainLin(0, 7, sim.Second); g != 0 {
		t.Fatalf("culled link linear gain %v after modifier, want 0", g)
	}

	far, near := 0, 0
	m.Radio(7).OnReceive(func([]byte, RxInfo) { far++ })
	m.Radio(1).OnReceive(func([]byte, RxInfo) { near++ })
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if far != 0 {
		t.Fatalf("culled receiver got %d frames after scripted dynamics", far)
	}
	if near == 0 {
		t.Fatal("audible neighbor received nothing; medium degenerate")
	}
	// Clearing the modifier keeps the bookkeeping balanced (the gain fast
	// path may skip the modifier layer again).
	ch.SetModifierBoth(0, 7, nil)
	if ch.linkModCount != 0 {
		t.Fatalf("linkModCount %d after clearing all modifiers", ch.linkModCount)
	}
}

// TestDynamicsSparseDenseIdentical runs the full scripted-dynamics
// repertoire — interference onset via AddNoiseModifier, a Gilbert–Elliott
// loss process installed with SetModifier on a live link, and a mid-run
// node death — over both channel representations and requires
// byte-identical trajectories. Dynamics must neither resurrect culled
// links nor perturb the shared random streams differently per
// representation.
func TestDynamicsSparseDenseIdentical(t *testing.T) {
	const n = 200
	tp := topo.UniformRandom(n, 380, 380, 5)
	p := sparseTestParams()

	// The scripted link: node 0 and its geometrically nearest neighbor
	// (identical under both representations, and audible with near
	// certainty at this density).
	target, bestD := -1, math.Inf(1)
	for j := 1; j < n; j++ {
		if d := tp.Distance(0, j); d < bestD {
			target, bestD = j, d
		}
	}

	run := func(sparseAbove int) (string, MediumStats) {
		pp := p
		pp.SparseAboveN = sparseAbove
		clock := sim.New(77)
		seeds := sim.NewSeedSpace(77)
		ch := PrecomputeGeo(tp, pp).NewChannel(seeds)
		if got, want := ch.Sparse(), sparseAbove > 0; got != want {
			t.Fatalf("Sparse() = %v, want %v", got, want)
		}
		m := NewMedium(clock, ch, DefaultRadioParams(), DefaultLQIParams(), seeds)

		// Scripted dynamics, identical in both runs: a 40 dB bursty loss
		// on the 0↔target link from 300 ms, interference onset at the
		// target from 600 ms, and node n/2 dying at 900 ms.
		ch.SetModifierBoth(0, target, NewGilbertElliott(40, 5*sim.Millisecond, 20*sim.Millisecond,
			sim.NewRand(501)).Window(300*sim.Millisecond, sim.Hour))
		ch.AddNoiseModifier(target, NewGilbertElliott(30, 2*sim.Millisecond, 10*sim.Millisecond,
			sim.NewRand(502)).Window(600*sim.Millisecond, sim.Hour))
		clock.At(900*sim.Millisecond, func() { m.Radio(n / 2).SetDown(true) })

		var log []byte
		for i := 0; i < n; i++ {
			rx := i
			m.Radio(i).OnReceive(func(data []byte, info RxInfo) {
				log = append(log, fmt.Sprintf("%d %d %d %x %d\n",
					rx, data[0], info.At, math.Float64bits(info.SNRdB), info.LQI)...)
			})
		}
		for i := 0; i < n; i++ {
			id := i
			frame := make([]byte, 30)
			frame[0] = byte(id)
			phase := sim.Time(id) * sim.Millisecond / 6
			for k := 0; k < 30; k++ {
				clock.Schedule(sim.Time(k)*50*sim.Millisecond+phase, func() {
					if !m.Radio(id).Transmitting() && !m.Radio(id).Down() {
						m.Radio(id).Transmit(frame)
					}
				})
			}
		}
		clock.RunUntil(1500 * sim.Millisecond)
		return string(log), m.Stats
	}

	logS, statsS := run(1)
	logD, statsD := run(-1)
	if statsS != statsD {
		t.Fatalf("stats diverge under dynamics:\nsparse %+v\ndense  %+v", statsS, statsD)
	}
	if logS != logD {
		t.Fatalf("trajectories diverge under dynamics (sparse %d bytes, dense %d bytes)",
			len(logS), len(logD))
	}
	if statsS.Delivered == 0 {
		t.Fatalf("degenerate run: %+v", statsS)
	}
}
