package phy

import (
	"testing"

	"fourbit/internal/sim"
)

// Scenario dynamics rest on two phy primitives: a radio that can be powered
// off mid-run (node death/reboot) and scripted per-receiver noise excursions
// (mid-run interference onset). These tests pin their contracts.

func TestDownRadioIsDeaf(t *testing.T) {
	clock, m := testbed(t, 2, 5, 1)
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	m.Radio(1).SetDown(true)
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if delivered != 0 {
		t.Fatalf("down radio received %d frames", delivered)
	}
	if !m.Radio(1).Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
}

func TestDownRadioIsMuteAndRecovers(t *testing.T) {
	clock, m := testbed(t, 2, 5, 1)
	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	// The sender dies for the first half of the run, then reboots.
	m.Radio(0).SetDown(true)
	clock.At(100*sim.Millisecond, func() { m.Radio(0).SetDown(false) })
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d frames, want exactly the 10 sent after reboot", delivered)
	}
}

func TestDownRadioReportsBusyChannel(t *testing.T) {
	_, m := testbed(t, 2, 5, 1)
	if !m.Radio(0).ChannelClear() {
		t.Fatal("idle powered radio should see a clear channel")
	}
	m.Radio(0).SetDown(true)
	if m.Radio(0).ChannelClear() {
		t.Fatal("down radio must report a busy channel (CSMA never transmits)")
	}
	m.Radio(0).SetDown(false)
	if !m.Radio(0).ChannelClear() {
		t.Fatal("channel should be clear again after power-up")
	}
}

// constLoss is a trivial LinkModifier for noise-injection tests.
type constLoss float64

func (c constLoss) ExtraLossDB(sim.Time) float64 { return float64(c) }

func TestNoiseModifierRaisesFloor(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseFigSigmaDB = 0
	p.NoiseBurstAmpDB = 0
	ch := NewChannel(lineDist(2, 5), nil, p, sim.NewSeedSpace(1))

	base := ch.NoiseDBm(1, 0)
	ch.AddNoiseModifier(1, constLoss(20))
	got := ch.NoiseDBm(1, 0)
	if diff := got - base; diff < 19.99 || diff > 20.01 {
		t.Fatalf("noise modifier added %.2f dB, want 20", diff)
	}
	// The linear-domain mirror must agree.
	wantMW := DBmToMilliwatts(got)
	if mw := ch.NoiseMW(1, 0); mw < wantMW*0.999 || mw > wantMW*1.001 {
		t.Fatalf("NoiseMW %.3g disagrees with NoiseDBm %.3g", mw, wantMW)
	}
	// Modifiers accumulate, and other receivers are untouched.
	ch.AddNoiseModifier(1, constLoss(5))
	if diff := ch.NoiseDBm(1, 0) - base; diff < 24.99 || diff > 25.01 {
		t.Fatalf("stacked modifiers added %.2f dB, want 25", diff)
	}
	if d := ch.NoiseDBm(0, 0) - p.NoiseFloorDBm; d != 0 {
		t.Fatalf("receiver 0 floor moved by %.2f dB; modifiers must be per-receiver", d)
	}
}

func TestNoiseModifierDrownsReception(t *testing.T) {
	clock := sim.New(4)
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB = 0
	p.PacketJitterSigmaDB = 0
	ch := NewChannel(lineDist(2, 20), nil, p, sim.NewSeedSpace(4))
	m := NewMedium(clock, ch, DefaultRadioParams(), DefaultLQIParams(), sim.NewSeedSpace(4))

	// A windowed 60 dB noise burst at the receiver from 100 ms on.
	ge := NewGilbertElliott(60, sim.Millisecond, sim.Hour, sim.NewRand(9)).
		Window(100*sim.Millisecond, sim.Hour)
	ch.AddNoiseModifier(1, ge)

	delivered := 0
	m.Radio(1).OnReceive(func([]byte, RxInfo) { delivered++ })
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		clock.At(at, func() { m.Radio(0).Transmit(make([]byte, 20)) })
	}
	clock.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d frames, want the 10 before interference onset", delivered)
	}
}
