package phy

import (
	"fmt"
	"math"

	"fourbit/internal/sim"
)

// ouState is a lazily-advanced Ornstein–Uhlenbeck (mean-reverting Gaussian)
// process sample. The OU process models slow temporal variation: per-link
// multipath fading and per-node noise-floor drift. Lazy advancement keeps
// the simulation event-free between queries while remaining exact: the OU
// transition density between two sample times has the closed form
//
//	X(t+dt) = X(t)·e^(−dt/τ) + N(0, σ²·(1 − e^(−2dt/τ)))
//
// The struct is deliberately 16 bytes: a sparse channel holds one per
// stored pair and samples them in data-dependent order, so the array is
// sized and accessed like a hash table — lastPlus1 packs the "ever
// sampled" flag into the timestamp (0 = never; otherwise sample time + 1)
// to avoid a padded bool widening every state by half a cache line.
type ouState struct {
	value     float64
	lastPlus1 sim.Time // 0 = uninitialized; else last sample time + 1
}

const (
	ouCoeffBits  = 6
	ouCoeffSlots = 1 << ouCoeffBits
)

// ouCoeffs memoizes the OU transition coefficients of one process family
// (one fixed tau/sigma pair): decay = e^(−dt/τ) and the shock scale
// σ·sqrt(1 − decay²) depend only on the integer step dt, and steps repeat
// heavily — every receiver of a transmission advances its process from the
// same previous event, so a whole candidate sweep shares one or two dt
// values. A small direct-mapped cache keyed by dt therefore eliminates the
// exp+sqrt pair from most hot-path queries. It is exactness-transparent:
// a hit replays coefficients computed by the identical expressions on the
// identical inputs, so the simulation's floats do not move by one bit.
type ouCoeffs struct {
	dt    [ouCoeffSlots]sim.Time // 0 = empty (sample only probes for dt > 0)
	decay [ouCoeffSlots]float64
	diff  [ouCoeffSlots]float64
}

// slot maps a step to its cache slot: a multiplicative hash so steps that
// differ only in low-order ticks spread across slots.
func (c *ouCoeffs) slot(dt sim.Time) uint {
	return uint(uint64(dt) * 0x9e3779b97f4a7c15 >> (64 - ouCoeffBits))
}

// sample advances the process to time t and returns its value. sigma is the
// stationary standard deviation and tau the relaxation time; co caches the
// per-step transition coefficients for this (tau, sigma) family.
func (o *ouState) sample(t sim.Time, tau sim.Time, sigma float64, rng *sim.Rand, co *ouCoeffs) float64 {
	if sigma == 0 || tau <= 0 {
		return 0
	}
	if o.lastPlus1 == 0 {
		o.value = rng.Normal(0, sigma)
		o.lastPlus1 = t + 1
		return o.value
	}
	dt := t - (o.lastPlus1 - 1)
	if dt <= 0 {
		return o.value
	}
	i := co.slot(dt)
	if co.dt[i] != dt {
		a := math.Exp(-float64(dt) / float64(tau))
		co.dt[i], co.decay[i], co.diff[i] = dt, a, sigma*math.Sqrt(1-a*a)
	}
	o.value = o.value*co.decay[i] + rng.Normal(0, co.diff[i])
	o.lastPlus1 = t + 1
	return o.value
}

// GilbertElliott is a two-state continuous-time Markov channel modifier used
// to script bursty / bimodal link behaviour (the §2.1 failure case for
// physical-layer-only estimation). In the Good state it adds no loss; in
// the Bad state it adds BadLossDB of attenuation — large enough that packets
// are not received at all, so the packets that *are* received (during Good
// sojourns) still carry high LQI.
//
// The chain is sampled lazily at query times using the exact two-state
// marginal: with λ = 1/MeanGood, μ = 1/MeanBad and πG = μ/(λ+μ),
// P(Good at t | state at t0) = πG + (1{Good at t0} − πG)·e^(−(λ+μ)(t−t0)).
type GilbertElliott struct {
	// BadLossDB, MeanGood and MeanBad are construction-time parameters,
	// exported for inspection only: the transition rates are derived from
	// them once in NewGilbertElliott, so mutating them afterwards does not
	// change the chain's dynamics. Build a new process instead.
	BadLossDB float64  // extra attenuation in the Bad state
	MeanGood  sim.Time // mean sojourn in Good
	MeanBad   sim.Time // mean sojourn in Bad
	From      sim.Time // activation window start
	Until     sim.Time // activation window end (0 = forever); set via Window

	rng     *sim.Rand
	state   bool // true = Good
	last    sim.Time
	started bool

	// Transition rates derived from the sojourn means once at
	// construction — ExtraLossDB sits on the per-reception noise path, and
	// the three divisions per query were measurable there.
	lambda  float64 // Good -> Bad rate, 1/MeanGood
	mu      float64 // Bad -> Good rate, 1/MeanBad
	piGood  float64 // stationary P(Good) = mu/(lambda+mu)
	rateSum float64 // lambda + mu

	// Decay memo, same trick as ouCoeffs: queries arrive on the regular
	// cadence of reception events, so the step t−last repeats and
	// e^(−(λ+μ)·dt) can be replayed instead of recomputed. The default
	// memo is process-local; SharedDecay points a family of identically
	// parameterized processes (e.g. a channel's per-node noise bursts) at
	// one common cache, so a step seen by any member hits for all.
	// memoStep == 0 means empty (only consulted for positive steps).
	memoStep  sim.Time
	memoDecay float64
	shared    *geCoeffs
}

// geCoeffs is a direct-mapped decay cache shared by a family of
// GilbertElliott processes with one (λ+μ). Exactness-transparent like
// ouCoeffs: a hit replays e^(−(λ+μ)·dt) computed by the identical
// expression on the identical step.
type geCoeffs struct {
	dt    [ouCoeffSlots]sim.Time // 0 = empty
	decay [ouCoeffSlots]float64
}

// SharedDecay attaches the process to a family decay cache and returns the
// receiver. All members must have identical rate sums (identical sojourn
// means); the caller guarantees this.
func (g *GilbertElliott) SharedDecay(c *geCoeffs) *GilbertElliott {
	g.shared = c
	return g
}

// NewGilbertElliott returns a burst process driven by rng. The process is
// active only inside [from, until); outside the window it adds no loss and
// holds the chain in Good. Both sojourn means must be positive: a zero
// mean would turn into an infinite transition rate and feed NaN
// probabilities into the chain's Bernoulli draws, so it panics here, at
// the construction site that can name the bad parameter.
func NewGilbertElliott(badLossDB float64, meanGood, meanBad sim.Time, rng *sim.Rand) *GilbertElliott {
	if meanGood <= 0 || meanBad <= 0 {
		panic(fmt.Sprintf("phy: GilbertElliott sojourn means must be positive (meanGood=%v meanBad=%v)",
			meanGood, meanBad))
	}
	lambda := 1 / meanGood.Seconds()
	mu := 1 / meanBad.Seconds()
	return &GilbertElliott{
		BadLossDB: badLossDB,
		MeanGood:  meanGood,
		MeanBad:   meanBad,
		rng:       rng,
		state:     true,
		lambda:    lambda,
		mu:        mu,
		piGood:    mu / (lambda + mu),
		rateSum:   lambda + mu,
	}
}

// Window restricts the process to [from, until) and returns the receiver.
func (g *GilbertElliott) Window(from, until sim.Time) *GilbertElliott {
	g.From, g.Until = from, until
	return g
}

// ExtraLossDB reports the additional attenuation the process imposes at t.
func (g *GilbertElliott) ExtraLossDB(t sim.Time) float64 {
	if t < g.From || (g.Until > 0 && t >= g.Until) {
		g.state, g.started = true, false
		return 0
	}
	if !g.started {
		g.started = true
		g.last = t
		g.state = g.rng.Bernoulli(g.piGood)
	} else if step := t - g.last; step > 0 {
		var decay float64
		switch {
		case g.shared != nil:
			c := g.shared
			i := uint(uint64(step) * 0x9e3779b97f4a7c15 >> (64 - ouCoeffBits))
			if c.dt[i] != step {
				c.dt[i], c.decay[i] = step, math.Exp(-g.rateSum*step.Seconds())
			}
			decay = c.decay[i]
		case step == g.memoStep:
			decay = g.memoDecay
		default:
			decay = math.Exp(-g.rateSum * step.Seconds())
			g.memoStep, g.memoDecay = step, decay
		}
		var pGood float64
		if g.state {
			pGood = g.piGood + (1-g.piGood)*decay
		} else {
			pGood = g.piGood - g.piGood*decay
		}
		g.state = g.rng.Bernoulli(pGood)
		g.last = t
	}
	if g.state {
		return 0
	}
	return g.BadLossDB
}

// StationaryBadFraction returns the long-run fraction of time in Bad.
func (g *GilbertElliott) StationaryBadFraction() float64 {
	return g.lambda / g.rateSum
}
