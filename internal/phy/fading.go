package phy

import (
	"math"

	"fourbit/internal/sim"
)

// ouState is a lazily-advanced Ornstein–Uhlenbeck (mean-reverting Gaussian)
// process sample. The OU process models slow temporal variation: per-link
// multipath fading and per-node noise-floor drift. Lazy advancement keeps
// the simulation event-free between queries while remaining exact: the OU
// transition density between two sample times has the closed form
//
//	X(t+dt) = X(t)·e^(−dt/τ) + N(0, σ²·(1 − e^(−2dt/τ)))
type ouState struct {
	value float64
	last  sim.Time
	init  bool
}

// sample advances the process to time t and returns its value. sigma is the
// stationary standard deviation and tau the relaxation time.
func (o *ouState) sample(t sim.Time, tau sim.Time, sigma float64, rng *sim.Rand) float64 {
	if sigma == 0 || tau <= 0 {
		return 0
	}
	if !o.init {
		o.value = rng.Normal(0, sigma)
		o.last = t
		o.init = true
		return o.value
	}
	dt := t - o.last
	if dt <= 0 {
		return o.value
	}
	a := math.Exp(-float64(dt) / float64(tau))
	o.value = o.value*a + rng.Normal(0, sigma*math.Sqrt(1-a*a))
	o.last = t
	return o.value
}

// GilbertElliott is a two-state continuous-time Markov channel modifier used
// to script bursty / bimodal link behaviour (the §2.1 failure case for
// physical-layer-only estimation). In the Good state it adds no loss; in
// the Bad state it adds BadLossDB of attenuation — large enough that packets
// are not received at all, so the packets that *are* received (during Good
// sojourns) still carry high LQI.
//
// The chain is sampled lazily at query times using the exact two-state
// marginal: with λ = 1/MeanGood, μ = 1/MeanBad and πG = μ/(λ+μ),
// P(Good at t | state at t0) = πG + (1{Good at t0} − πG)·e^(−(λ+μ)(t−t0)).
type GilbertElliott struct {
	BadLossDB float64  // extra attenuation in the Bad state
	MeanGood  sim.Time // mean sojourn in Good
	MeanBad   sim.Time // mean sojourn in Bad
	From      sim.Time // activation window start
	Until     sim.Time // activation window end (0 = forever)

	rng     *sim.Rand
	state   bool // true = Good
	last    sim.Time
	started bool
}

// NewGilbertElliott returns a burst process driven by rng. The process is
// active only inside [from, until); outside the window it adds no loss and
// holds the chain in Good.
func NewGilbertElliott(badLossDB float64, meanGood, meanBad sim.Time, rng *sim.Rand) *GilbertElliott {
	return &GilbertElliott{
		BadLossDB: badLossDB,
		MeanGood:  meanGood,
		MeanBad:   meanBad,
		rng:       rng,
		state:     true,
	}
}

// Window restricts the process to [from, until) and returns the receiver.
func (g *GilbertElliott) Window(from, until sim.Time) *GilbertElliott {
	g.From, g.Until = from, until
	return g
}

// ExtraLossDB reports the additional attenuation the process imposes at t.
func (g *GilbertElliott) ExtraLossDB(t sim.Time) float64 {
	if t < g.From || (g.Until > 0 && t >= g.Until) {
		g.state, g.started = true, false
		return 0
	}
	lambda := 1 / g.MeanGood.Seconds() // Good -> Bad rate
	mu := 1 / g.MeanBad.Seconds()      // Bad -> Good rate
	piGood := mu / (lambda + mu)
	if !g.started {
		g.started = true
		g.last = t
		g.state = g.rng.Bernoulli(piGood)
	} else if dt := (t - g.last).Seconds(); dt > 0 {
		decay := math.Exp(-(lambda + mu) * dt)
		var pGood float64
		if g.state {
			pGood = piGood + (1-piGood)*decay
		} else {
			pGood = piGood - piGood*decay
		}
		g.state = g.rng.Bernoulli(pGood)
		g.last = t
	}
	if g.state {
		return 0
	}
	return g.BadLossDB
}

// StationaryBadFraction returns the long-run fraction of time in Bad.
func (g *GilbertElliott) StationaryBadFraction() float64 {
	lambda := 1 / g.MeanGood.Seconds()
	mu := 1 / g.MeanBad.Seconds()
	return lambda / (lambda + mu)
}
