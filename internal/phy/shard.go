package phy

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"fourbit/internal/sim"
)

// This file implements the region-sharded dispatch path of the Medium: the
// node set is partitioned into spatially contiguous shards, each shard runs
// its own event wheel, and every transmission's receiver-side effects are
// handed off across the epoch barrier and applied exactly one epoch later —
// on every shard, including the sender's own. Shifting *all* receiver-side
// effects by the same constant E (frame appears at start+E, reception
// resolves at end+E) is what makes the result invariant to the shard
// count: no effect ever depends on which side of a boundary a receiver
// sits, because every receiver is treated as remote.
//
// Correct cross-shard ordering needs no dedicated machinery beyond the
// wheel's own FIFO-at-deadline contract. At each barrier the coordinator
// merges the per-shard outboxes into one canonical order — (start time,
// source node id), unique because a radio transmits one frame at a time —
// and pushes the apply/resolve timers in that order. Two facts then pin
// every same-deadline tie: (1) within a batch, a resolve (end+E) that
// collides with an apply (start+E) belongs to a strictly earlier record
// (end = start + airtime > start), so it is pushed first; (2) across
// batches, an apply from batch b lands before b+E, while any timer pushed
// at a later barrier b' >= b+E has a deadline >= b', so cross-batch
// collisions cannot occur. Handoff timers are scheduled "silent"
// (sim.ScheduleArgSilent): their count varies with the shard count, and
// the run fingerprint's event total must not.

// PartitionByRegion splits the node set into shards of (near-)equal size
// along the spatial grid the audible-set index uses: nodes are ordered by
// their grid bucket (side = Params.CutoffRadiusM(), row-major over the
// bounding box, floors ignored) with node id as the tiebreak, and the
// order is cut into contiguous chunks. Neighbor sets are radius-bounded,
// so consecutive buckets keep most links intra-shard. The partition only
// affects which goroutine dispatches a node's events — never the results,
// which are invariant to the shard count by construction.
func PartitionByRegion(geo Geometry, p Params, shards int) []int32 {
	n := geo.N()
	if shards < 1 {
		panic(fmt.Sprintf("phy: PartitionByRegion shards %d < 1", shards))
	}
	side := p.CutoffRadiusM()
	minX, minY := math.Inf(1), math.Inf(1)
	maxX := math.Inf(-1)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x, y, _ := geo.Coord(i)
		xs[i], ys[i] = x, y
		minX, minY = math.Min(minX, x), math.Min(minY, y)
		maxX = math.Max(maxX, x)
	}
	cols := int((maxX-minX)/side) + 1
	order := make([]int, n)
	key := make([]int64, n)
	for i := 0; i < n; i++ {
		bx := int64((xs[i] - minX) / side)
		by := int64((ys[i] - minY) / side)
		key[i] = by*int64(cols) + bx
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if key[ia] != key[ib] {
			return key[ia] < key[ib]
		}
		return ia < ib
	})
	out := make([]int32, n)
	for pos, id := range order {
		out[id] = int32(pos * shards / n)
	}
	return out
}

// shardRec is the cross-shard image of one transmission: everything a
// receiving shard needs to mirror the serial startTx/finishTx sweeps one
// epoch later. data is a copy — the MAC reuses its encode buffer the
// moment the airtime elapses on the sender's wheel, which is an epoch
// before the last receiver resolves. powMW is indexed by the sender's
// candidate position (like transmission.powMW); shards write disjoint
// subranges of it. refs counts the target shards that have not yet
// resolved; the last one retires the record to its own shard's list, and
// the coordinator sweeps those back into the global pool at each barrier.
type shardRec struct {
	from    int32
	refs    int32 // atomic
	start   sim.Time
	end     sim.Time
	txPowMW float64
	data    []byte
	powMW   []float64
}

// shardHand is the argument of one shard's apply/resolve timer pair for
// one record. Pooled per target shard: popped by the coordinator at the
// barrier (every shard idle), pushed back by the owner after its resolve.
type shardHand struct {
	rec   *shardRec
	shard int32
}

// mediumShard is the per-shard mutable state of the sharded medium. Only
// the owning shard's goroutine touches it mid-epoch; the coordinator
// touches it only at barriers.
type mediumShard struct {
	clock    *sim.Simulator
	outbox   []*shardRec // records started by this shard's senders this epoch
	recFree  []*shardRec
	recWant  int // barrier refill level: high-water of per-epoch consumption
	handFree []*shardHand
	retired  []*shardRec // fully-resolved records awaiting the barrier sweep
	prrT     []*PRRTable // per-shard PRR-table cache (lazy growth is single-writer)
	stats    MediumStats // this shard's share; summed into Medium.Stats at barriers
	pad      [5]uint64   // keep neighbouring shards' hot counters off one cache line
}

// shardedMedium bundles everything the sharded path adds to a Medium.
type shardedMedium struct {
	clocks  []*sim.Simulator
	shardOf []int32
	epoch   sim.Time
	shards  []mediumShard
	rxRng   []*sim.Rand // per receiver: jitter + PRR draw + LQI synthesis
	candOff [][]int32   // per sender: shard -> [candOff[s], candOff[s+1]) in candidates
	recPool []*shardRec
	cursors []int // merge scratch

	applyFn      func(any)
	resolveFn    func(any)
	senderDoneFn func(any)
}

// shardRecTarget is the initial per-shard free-list refill level. The
// actual level tracks the high-water mark of records a shard consumed in
// one epoch (its outbox length at the barrier): synchronized workloads can
// start tens of same-instant transmissions on one shard inside a single
// epoch, and a fixed level would leave getRec allocating on every such
// burst while the global pool sits full.
const shardRecTarget = 16

// EnableSharded switches the medium to region-sharded dispatch. clocks[s]
// is shard s's wheel, shardOf maps node to shard, and epoch is the
// conservative lookahead E: every receiver-side effect of a transmission
// applies exactly E after the serial model would apply it, so epoch must
// be small enough that every protocol deadline still clears (the MAC ack
// round-trip is the binding constraint; internal/node derives E from it).
// Must be called before the simulation starts; incompatible with the
// OnTransmit trace tap, whose callback would otherwise run concurrently.
func (m *Medium) EnableSharded(clocks []*sim.Simulator, shardOf []int32, epoch sim.Time, seeds *sim.SeedSpace) {
	if m.sh != nil {
		panic("phy: EnableSharded called twice")
	}
	if m.onTransmit != nil {
		panic("phy: sharded dispatch is incompatible with the OnTransmit trace tap")
	}
	n := len(m.radios)
	if len(shardOf) != n {
		panic(fmt.Sprintf("phy: EnableSharded shardOf length %d, want %d", len(shardOf), n))
	}
	if epoch <= 0 {
		panic(fmt.Sprintf("phy: EnableSharded epoch %v must be positive", epoch))
	}
	S := len(clocks)
	for _, s := range shardOf {
		if int(s) < 0 || int(s) >= S {
			panic(fmt.Sprintf("phy: shard index %d out of range [0,%d)", s, S))
		}
	}
	m.ch.EnableSharded(seeds, shardOf, S)
	sh := &shardedMedium{
		clocks:  clocks,
		shardOf: shardOf,
		epoch:   epoch,
		shards:  make([]mediumShard, S),
		rxRng:   make([]*sim.Rand, n),
		candOff: make([][]int32, n),
		cursors: make([]int, S),
	}
	for s := range sh.shards {
		sh.shards[s].clock = clocks[s]
		sh.shards[s].recWant = shardRecTarget
	}
	for i := 0; i < n; i++ {
		sh.rxRng[i] = seeds.Light(fmt.Sprintf("shard/medium/%d", i))
	}
	// Regroup every candidate list by target shard (ascending node id
	// within a shard — a stable bucket sort of an ascending list), so each
	// target shard's apply/resolve sweeps walk one contiguous subrange and
	// visit receivers in a canonical order.
	counts := make([]int32, S+1)
	pos := make([]int32, S)
	for i := 0; i < n; i++ {
		cands := m.candidates[i]
		off := make([]int32, S+1)
		for k := range counts {
			counts[k] = 0
		}
		for _, j := range cands {
			counts[shardOf[j]+1]++
		}
		for s := 0; s < S; s++ {
			off[s+1] = off[s] + counts[s+1]
			pos[s] = off[s]
		}
		newCands := make([]int32, len(cands))
		var newSlots []int32
		var slots []int32
		if m.candSlots != nil {
			slots = m.candSlots[i]
			newSlots = make([]int32, len(slots))
		}
		for k, j := range cands {
			s := shardOf[j]
			newCands[pos[s]] = j
			if slots != nil {
				newSlots[pos[s]] = slots[k]
			}
			pos[s]++
		}
		m.candidates[i] = newCands
		if m.candSlots != nil {
			m.candSlots[i] = newSlots
		}
		sh.candOff[i] = off
	}
	sh.applyFn = func(a any) { m.applyHand(a.(*shardHand)) }
	sh.resolveFn = func(a any) { m.resolveHand(a.(*shardHand)) }
	sh.senderDoneFn = func(a any) { a.(*Radio).transmitting = false }
	m.sh = sh
}

// Sharded reports whether the medium dispatches through shards.
func (m *Medium) Sharded() bool { return m.sh != nil }

func (st *mediumShard) getRec(powCap int) *shardRec {
	if n := len(st.recFree); n > 0 {
		r := st.recFree[n-1]
		st.recFree = st.recFree[:n-1]
		return r
	}
	return &shardRec{powMW: make([]float64, powCap)}
}

func (st *mediumShard) getHand() *shardHand {
	if n := len(st.handFree); n > 0 {
		h := st.handFree[n-1]
		st.handFree = st.handFree[:n-1]
		return h
	}
	return &shardHand{}
}

// startTxSharded mirrors the sender half of startTx on the sender's own
// wheel: occupy the radio, copy the frame, queue the record for the next
// barrier. All receiver-side effects happen one epoch later in applyHand/
// resolveHand. The sender-completion event stays counted and is scheduled
// before the caller's own completion at the same deadline, preserving the
// serial FIFO contract the MAC relies on.
func (m *Medium) startTxSharded(r *Radio, data []byte) sim.Time {
	if r.transmitting {
		panic(fmt.Sprintf("phy: radio %d Transmit while transmitting", r.id))
	}
	sh := m.sh
	s := sh.shardOf[r.id]
	st := &sh.shards[s]
	clock := st.clock
	now := clock.Now()
	if r.rx != nil {
		r.rx = nil
		st.stats.DroppedTxWhileRx++
	}
	air := m.Airtime(len(data))
	r.transmitting = true
	if r.down {
		// Powered off: occupy the radio for the airtime, radiate nothing.
		clock.ScheduleArg(now+air, sh.senderDoneFn, r)
		return air
	}
	st.stats.Transmissions++
	r.Stats.TxFrames++
	rec := st.getRec(m.powCap)
	rec.from = int32(r.id)
	rec.start = now
	rec.end = now + air
	rec.txPowMW = r.txPowMW
	rec.data = append(rec.data[:0], data...)
	st.outbox = append(st.outbox, rec)
	clock.ScheduleArg(rec.end, sh.senderDoneFn, r)
	return air
}

// applyHand runs on the target shard at rec.start+epoch: the frame
// "appears" to this shard's receivers, mirroring the receiver sweep of the
// serial startTx over this shard's candidate subrange. Fading is sampled
// at the original emission instant, so the gain is the one the serial
// model would have used.
func (m *Medium) applyHand(h *shardHand) {
	sh := m.sh
	rec := h.rec
	s := int(h.shard)
	from := int(rec.from)
	cands := m.candidates[from]
	off := sh.candOff[from]
	var slots []int32
	if m.candSlots != nil {
		slots = m.candSlots[from]
	}
	st := &sh.shards[s]
	for ci := off[s]; ci < off[s+1]; ci++ {
		j := int(cands[ci])
		var pmw float64
		if slots != nil {
			pmw = rec.txPowMW * m.ch.gainLinSlot(from, j, slots[ci], rec.start)
		} else {
			pmw = rec.txPowMW * m.ch.GainLin(from, j, rec.start)
		}
		if pmw < m.detectMW {
			continue
		}
		rec.powMW[ci] = pmw
		m.interfMW[j] += pmw
		rj := m.radios[j]
		switch {
		case rj.down:
			// Accounted as interference for symmetry with resolveHand.
		case rj.transmitting:
			// Inaudible to j, still interference for others via rec.powMW.
		case rj.rx != nil:
			if pmw > rj.rx.powerMW*m.captureLin && pmw >= m.sensMW {
				st.stats.CaptureSwitches++
				rj.Stats.DropsCollision++
				rj.lockOnRec(rec, pmw, m.interfMW[j]-pmw)
			} else {
				rj.rx.curInterfMW += pmw
				if rj.rx.curInterfMW > rj.rx.maxInterfMW {
					rj.rx.maxInterfMW = rj.rx.curInterfMW
				}
			}
		default: // idle
			if pmw >= m.sensMW {
				rj.lockOnRec(rec, pmw, m.interfMW[j]-pmw)
			}
		}
	}
}

// resolveHand runs on the target shard at rec.end+epoch: the airtime is
// over, mirroring the receiver sweep of the serial finishTx. Reception
// draws use the receiver's private stream, so outcomes cannot depend on
// how draws from different shards would have interleaved on a shared one.
// The last target shard to resolve retires the record.
func (m *Medium) resolveHand(h *shardHand) {
	sh := m.sh
	rec := h.rec
	s := int(h.shard)
	from := int(rec.from)
	cands := m.candidates[from]
	off := sh.candOff[from]
	st := &sh.shards[s]
	now := st.clock.Now()
	for ci := off[s]; ci < off[s+1]; ci++ {
		pmw := rec.powMW[ci]
		if pmw == 0 {
			continue
		}
		rec.powMW[ci] = 0
		j := int(cands[ci])
		m.interfMW[j] -= pmw
		if m.interfMW[j] < 0 {
			m.interfMW[j] = 0 // rounding drift from the incremental sum
		}
		rj := m.radios[j]
		rx := rj.rx
		if rx == nil {
			continue
		}
		if rx.rec != rec {
			// This record was interference for j's ongoing reception.
			rx.curInterfMW -= pmw
			if rx.curInterfMW < 0 {
				rx.curInterfMW = 0
			}
			continue
		}
		rj.rx = nil
		noise := m.ch.NoiseMW(j, now)
		sinrLin := rx.powerMW / (noise + m.rp.InterferenceFactor*rx.maxInterfMW)
		sinrDB := LinearToDB(sinrLin)
		rng := sh.rxRng[j]
		if jitter := m.ch.PacketJitterSigmaDB(); jitter > 0 {
			sinrDB += rng.Normal(0, jitter)
		}
		if m.prrDecideWith(sinrDB, len(rec.data), rng, &st.prrT) {
			lqi, white := m.lqip.Synthesize(sinrDB, rng)
			info := RxInfo{At: now, SNRdB: sinrDB, LQI: lqi, White: white}
			st.stats.Delivered++
			rj.Stats.RxFrames++
			if rj.snoop != nil {
				rj.snoop(rec.data, info)
			}
			if rj.recv != nil {
				rj.recv(rec.data, info)
			}
		} else if rx.maxInterfMW > noise*0.1 {
			st.stats.DroppedCollision++
			rj.Stats.DropsCollision++
		} else {
			st.stats.DroppedBER++
			rj.Stats.DropsBER++
		}
	}
	st.handFree = append(st.handFree, h)
	if atomic.AddInt32(&rec.refs, -1) == 0 {
		st.retired = append(st.retired, rec)
	}
}

// ShardExchange is the epoch-barrier hook (sim.ShardGroup's exchange): it
// runs on the coordinator with every shard idle at exactly the barrier
// time. It merges the per-shard outboxes into the canonical (start, source
// id) order and pushes each record's apply/resolve timers onto every
// target shard's wheel in that order — which, with the wheel's
// FIFO-at-deadline contract, fixes every same-deadline tie identically
// for any shard count. It then recycles retired records and refreshes the
// aggregate stats.
func (m *Medium) ShardExchange(barrier sim.Time) {
	sh := m.sh
	S := len(sh.shards)
	total := 0
	for s := 0; s < S; s++ {
		ob := sh.shards[s].outbox
		total += len(ob)
		if len(ob) > sh.shards[s].recWant {
			sh.shards[s].recWant = len(ob)
		}
		// A shard's outbox is start-ordered by construction (wheel time is
		// monotone); same-instant sends by different nodes of one shard
		// land in wheel-dispatch order, so restore the canonical id order
		// within those runs (insertion sort: runs are almost always 1).
		for i := 1; i < len(ob); i++ {
			for k := i; k > 0 && ob[k].start == ob[k-1].start && ob[k].from < ob[k-1].from; k-- {
				ob[k], ob[k-1] = ob[k-1], ob[k]
			}
		}
	}
	if total > 0 {
		cur := sh.cursors
		for s := range cur {
			cur[s] = 0
		}
		for {
			best := -1
			var bestRec *shardRec
			for s := 0; s < S; s++ {
				ob := sh.shards[s].outbox
				if cur[s] >= len(ob) {
					continue
				}
				r := ob[cur[s]]
				if best < 0 || r.start < bestRec.start || (r.start == bestRec.start && r.from < bestRec.from) {
					best, bestRec = s, r
				}
			}
			if best < 0 {
				break
			}
			cur[best]++
			rec := bestRec
			off := sh.candOff[rec.from]
			targets := int32(0)
			for t := 0; t < S; t++ {
				if off[t+1] > off[t] {
					targets++
				}
			}
			if targets == 0 {
				// No receiver anywhere: recycle immediately (powMW untouched).
				sh.recPool = append(sh.recPool, rec)
				continue
			}
			rec.refs = targets
			for t := 0; t < S; t++ {
				if off[t+1] == off[t] {
					continue
				}
				st := &sh.shards[t]
				h := st.getHand()
				h.rec, h.shard = rec, int32(t)
				st.clock.ScheduleArgSilent(rec.start+sh.epoch, sh.applyFn, h)
				st.clock.ScheduleArgSilent(rec.end+sh.epoch, sh.resolveFn, h)
			}
		}
		for s := 0; s < S; s++ {
			sh.shards[s].outbox = sh.shards[s].outbox[:0]
		}
	}
	// Recycle fully-resolved records and top the per-shard free lists up,
	// so mid-epoch allocation stays a cold path.
	for s := 0; s < S; s++ {
		st := &sh.shards[s]
		if len(st.retired) > 0 {
			sh.recPool = append(sh.recPool, st.retired...)
			st.retired = st.retired[:0]
		}
	}
	for s := 0; s < S; s++ {
		st := &sh.shards[s]
		for len(st.recFree) < st.recWant && len(sh.recPool) > 0 {
			n := len(sh.recPool) - 1
			st.recFree = append(st.recFree, sh.recPool[n])
			sh.recPool = sh.recPool[:n]
		}
	}
	m.Stats = MediumStats{}
	for s := 0; s < S; s++ {
		st := &sh.shards[s].stats
		m.Stats.Transmissions += st.Transmissions
		m.Stats.Delivered += st.Delivered
		m.Stats.DroppedBER += st.DroppedBER
		m.Stats.DroppedCollision += st.DroppedCollision
		m.Stats.CaptureSwitches += st.CaptureSwitches
		m.Stats.DroppedTxWhileRx += st.DroppedTxWhileRx
	}
}
