package phy

import (
	"math"
	"testing"

	"fourbit/internal/sim"
)

func lineDist(n int, spacing float64) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(float64(i-j)) * spacing
		}
	}
	return d
}

func TestChannelGainDecreasesWithDistance(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	p.TxVarSigmaDB = 0
	p.FadeSigmaDB = 0
	ch := NewChannel(lineDist(5, 10), nil, p, sim.NewSeedSpace(1))
	g1 := ch.GainDB(0, 1, 0)
	g2 := ch.GainDB(0, 2, 0)
	g4 := ch.GainDB(0, 4, 0)
	if !(g1 > g2 && g2 > g4) {
		t.Fatalf("gain not decreasing with distance: %v %v %v", g1, g2, g4)
	}
	// Log-distance law: doubling distance costs 10·n·log10(2) ≈ 9.03 dB at n=3.
	if math.Abs((g1-g2)-10*p.PathLossExponent*math.Log10(2)) > 1e-9 {
		t.Errorf("doubling distance cost = %v dB, want %.2f", g1-g2, 10*p.PathLossExponent*math.Log10(2))
	}
}

func TestChannelShadowingIsSymmetricWithoutHardwareVariation(t *testing.T) {
	p := DefaultParams()
	p.TxVarSigmaDB = 0
	p.FadeSigmaDB = 0
	ch := NewChannel(lineDist(6, 7), nil, p, sim.NewSeedSpace(2))
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if ch.StaticGainDB(i, j) != ch.StaticGainDB(j, i) {
				t.Fatalf("link %d<->%d asymmetric without hardware variation", i, j)
			}
		}
	}
}

func TestChannelHardwareVariationCreatesAsymmetry(t *testing.T) {
	p := DefaultParams()
	p.FadeSigmaDB = 0
	ch := NewChannel(lineDist(10, 7), nil, p, sim.NewSeedSpace(3))
	asym := 0
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if math.Abs(ch.StaticGainDB(i, j)-ch.StaticGainDB(j, i)) > 0.5 {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Fatal("expected some asymmetric links with per-node tx variation")
	}
}

func TestChannelDeterministicAcrossBuilds(t *testing.T) {
	p := DefaultParams()
	a := NewChannel(lineDist(8, 6), nil, p, sim.NewSeedSpace(42))
	b := NewChannel(lineDist(8, 6), nil, p, sim.NewSeedSpace(42))
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if a.StaticGainDB(i, j) != b.StaticGainDB(i, j) {
				t.Fatalf("same seed produced different gains at (%d,%d)", i, j)
			}
		}
	}
	if a.NoiseDBm(3, sim.Second) != b.NoiseDBm(3, sim.Second) {
		t.Fatal("same seed produced different noise")
	}
}

func TestChannelExtraLossApplied(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB = 0, 0, 0
	n := 3
	extra := make([][]float64, n)
	for i := range extra {
		extra[i] = make([]float64, n)
	}
	extra[0][2] = 15
	extra[2][0] = 15
	base := NewChannel(lineDist(n, 10), nil, p, sim.NewSeedSpace(4))
	walled := NewChannel(lineDist(n, 10), extra, p, sim.NewSeedSpace(4))
	diff := base.StaticGainDB(0, 2) - walled.StaticGainDB(0, 2)
	if math.Abs(diff-15) > 1e-9 {
		t.Fatalf("extra loss not applied: diff = %v, want 15", diff)
	}
}

func TestFadingVariesOverTimeButStaysZeroMean(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB = 0, 0
	ch := NewChannel(lineDist(2, 10), nil, p, sim.NewSeedSpace(5))
	static := ch.StaticGainDB(0, 1)
	var sum, sumsq float64
	n := 3000
	for i := 0; i < n; i++ {
		g := ch.GainDB(0, 1, sim.Time(i)*sim.Minute) - static
		sum += g
		sumsq += g * g
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.35 {
		t.Errorf("fading mean = %v dB, want ~0", mean)
	}
	if std < p.FadeSigmaDB*0.7 || std > p.FadeSigmaDB*1.3 {
		t.Errorf("fading std = %v dB, want ~%v", std, p.FadeSigmaDB)
	}
}

func TestFadingSymmetricAcrossDirections(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB = 0, 0
	ch := NewChannel(lineDist(2, 10), nil, p, sim.NewSeedSpace(6))
	// Fading is a path property: both directions must see the same process.
	for i := 1; i <= 20; i++ {
		at := sim.Time(i) * sim.Second
		f01 := ch.GainDB(0, 1, at) - ch.StaticGainDB(0, 1)
		f10 := ch.GainDB(1, 0, at) - ch.StaticGainDB(1, 0)
		if math.Abs(f01-f10) > 1e-12 {
			t.Fatalf("fading differs across directions at %v: %v vs %v", at, f01, f10)
		}
	}
}

func TestLinkModifierImposedAndCleared(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB = 0, 0, 0
	ch := NewChannel(lineDist(2, 10), nil, p, sim.NewSeedSpace(7))
	base := ch.GainDB(0, 1, 0)
	ch.SetModifier(0, 1, constantLoss(20))
	if got := ch.GainDB(0, 1, sim.Second); math.Abs(base-20-got) > 1e-9 {
		t.Fatalf("modifier not applied: %v, want %v", got, base-20)
	}
	if got := ch.GainDB(1, 0, sim.Second); got != base {
		t.Fatalf("reverse direction affected: %v, want %v", got, base)
	}
	ch.SetModifier(0, 1, nil)
	if got := ch.GainDB(0, 1, 2*sim.Second); got != base {
		t.Fatalf("modifier not cleared: %v", got)
	}
}

type constantLoss float64

func (c constantLoss) ExtraLossDB(sim.Time) float64 { return float64(c) }

func TestNoiseDriftRevertsToMean(t *testing.T) {
	p := DefaultParams()
	ch := NewChannel(lineDist(2, 10), nil, p, sim.NewSeedSpace(8))
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		sum += ch.NoiseDBm(0, sim.Time(i)*sim.Minute)
	}
	mean := sum / float64(n)
	want := p.NoiseFloorDBm // plus the node's fixed noise figure offset, sigma 0.9
	if math.Abs(mean-want) > 3 {
		t.Errorf("long-run noise mean = %v, want near %v", mean, want)
	}
}

func TestGilbertElliottInactiveOutsideWindow(t *testing.T) {
	ge := NewGilbertElliott(40, 10*sim.Second, 5*sim.Second, sim.NewRand(1)).
		Window(sim.Hour, 2*sim.Hour)
	for _, at := range []sim.Time{0, 30 * sim.Minute, 2*sim.Hour + 1} {
		if ge.ExtraLossDB(at) != 0 {
			t.Fatalf("G-E active outside window at %v", at)
		}
	}
}

func TestGilbertElliottDutyCycleMatchesStationary(t *testing.T) {
	mg, mb := 10*sim.Second, 5*sim.Second
	ge := NewGilbertElliott(40, mg, mb, sim.NewRand(2))
	bad := 0
	n := 30000
	for i := 0; i < n; i++ {
		if ge.ExtraLossDB(sim.Time(i)*sim.Second) > 0 {
			bad++
		}
	}
	got := float64(bad) / float64(n)
	want := ge.StationaryBadFraction() // 1/3 for these sojourns
	if math.Abs(got-want) > 0.03 {
		t.Errorf("bad fraction = %.3f, want %.3f", got, want)
	}
}

func TestGilbertElliottBurstsAreCorrelated(t *testing.T) {
	// Sampling every 100 ms with 5 s sojourns must produce runs, not i.i.d.
	// flips: count state changes between consecutive samples.
	ge := NewGilbertElliott(40, 10*sim.Second, 5*sim.Second, sim.NewRand(3))
	changes, prev := 0, ge.ExtraLossDB(0) > 0
	n := 10000
	for i := 1; i < n; i++ {
		cur := ge.ExtraLossDB(sim.Time(i)*100*sim.Millisecond) > 0
		if cur != prev {
			changes++
		}
		prev = cur
	}
	// i.i.d. sampling at the stationary distribution would flip ~44% of the
	// time; a CTMC sampled at 100 ms with multi-second sojourns flips ~1-3%.
	if rate := float64(changes) / float64(n); rate > 0.1 {
		t.Errorf("state flip rate %.3f, want « 0.44 (bursty)", rate)
	}
}

func TestLQISaturatesAtHighSNR(t *testing.T) {
	lp := DefaultLQIParams()
	rng := sim.NewRand(4)
	for i := 0; i < 200; i++ {
		lqi, white := lp.Synthesize(15, rng)
		if lqi < 105 {
			t.Fatalf("LQI at 15 dB = %d, want saturated near %v", lqi, lp.Max)
		}
		if !white {
			t.Fatal("white bit clear at 15 dB SNR")
		}
	}
}

func TestLQILowAtLowSNR(t *testing.T) {
	lp := DefaultLQIParams()
	rng := sim.NewRand(5)
	for i := 0; i < 200; i++ {
		lqi, white := lp.Synthesize(-2, rng)
		if float64(lqi) > lp.Base {
			t.Fatalf("LQI at -2 dB = %d, want below the 0 dB baseline %.0f", lqi, lp.Base)
		}
		if white {
			t.Fatal("white bit set at -2 dB SNR")
		}
	}
}

func TestLQIMeanTracksSNR(t *testing.T) {
	lp := DefaultLQIParams()
	rng := sim.NewRand(6)
	mean := func(snr float64) float64 {
		var s float64
		for i := 0; i < 500; i++ {
			l, _ := lp.Synthesize(snr, rng)
			s += float64(l)
		}
		return s / 500
	}
	if !(mean(0) < mean(4) && mean(4) < mean(8)) {
		t.Error("LQI mean not increasing with SNR in the grey region")
	}
}
