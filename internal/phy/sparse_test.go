package phy

import (
	"fmt"
	"math"
	"testing"

	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// sparseTestParams returns a parameterization whose cutoff radius is small
// relative to the test areas (high path-loss exponent), so the differential
// tests exercise all three construction regimes: precomputed near pairs,
// beyond-cutoff pairs culled by the certified bound, and beyond-cutoff
// pairs whose shadowing draw defeats the bound's headroom and fall back to
// the exact per-pair evaluation.
func sparseTestParams() Params {
	p := DefaultParams()
	p.PathLossExponent = 4.5
	return p
}

// buildPair instantiates the same topology and seed as a sparse and a dense
// channel (the representations under differential test).
func buildPair(tb testing.TB, tp *topo.Topology, p Params, seed uint64) (sp, de *Channel) {
	pSparse, pDense := p, p
	pSparse.SparseAboveN = 1
	pDense.SparseAboveN = -1
	preS := PrecomputeGeo(tp, pSparse)
	preD := PrecomputeGeo(tp, pDense)
	if !preS.Sparse() || preD.Sparse() {
		tb.Fatalf("representation selection: sparse=%v dense=%v", preS.Sparse(), preD.Sparse())
	}
	return preS.NewChannel(sim.NewSeedSpace(seed)), preD.NewChannel(sim.NewSeedSpace(seed))
}

// TestSparseDenseChannelIdentical is the channel-level half of the
// differential harness: over a topology with many beyond-cutoff pairs, the
// sparse channel must store exactly the pairs whose drawn static gain
// clears the floor in either direction — the same draws the dense channel
// produces — with bit-identical gains, and its lazily-sampled fading must
// consume the shared fade stream in exact lockstep with the dense path.
func TestSparseDenseChannelIdentical(t *testing.T) {
	const n = 500
	tp := topo.UniformRandom(n, 600, 600, 7)
	p := sparseTestParams()
	sp, de := buildPair(t, tp, p, 42)

	// The area must actually reach beyond the cutoff or the certified
	// bound path went unexercised.
	maxD := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := tp.Distance(i, j); d > maxD {
				maxD = d
			}
		}
	}
	if cut := p.CutoffRadiusM(); maxD <= cut {
		t.Fatalf("topology diameter %.0f m inside cutoff %.0f m: bound path unexercised", maxD, cut)
	}

	floor := sp.AudibleFloorDB()
	stored, culled, farStored := 0, 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			gij := de.staticGainDB[i*n+j]
			gji := de.staticGainDB[j*n+i]
			slot := sp.slotOf(i, j)
			want := gij >= floor || gji >= floor
			if got := slot >= 0; got != want {
				t.Fatalf("pair (%d,%d): stored=%v want %v (gains %.2f/%.2f, floor %.2f)",
					i, j, got, want, gij, gji, floor)
			}
			if slot < 0 {
				culled++
				continue
			}
			stored++
			if tp.Distance(i, j) > sp.p.CutoffRadiusM() {
				farStored++
			}
			rev := sp.slotOf(j, i)
			if sp.adjGainDB[slot] != gij || sp.adjGainDB[rev] != gji {
				t.Fatalf("pair (%d,%d): sparse gains %x/%x want %x/%x", i, j,
					math.Float64bits(sp.adjGainDB[slot]), math.Float64bits(sp.adjGainDB[rev]),
					math.Float64bits(gij), math.Float64bits(gji))
			}
			if sp.adjGainLin[slot] != de.staticGainLin[i*n+j] {
				t.Fatalf("pair (%d,%d): linear mirror mismatch", i, j)
			}
		}
	}
	if stored == 0 || culled == 0 {
		t.Fatalf("degenerate audible set: %d stored, %d culled", stored, culled)
	}
	t.Logf("n=%d: %d pairs stored (%d beyond cutoff), %d culled", n, stored, farStored, culled)

	// Fade-stream lockstep: sample every stored link at advancing times in
	// identical order on both channels; values must match bit-for-bit, and
	// afterwards the two fade streams must sit at the same position (their
	// next raw draws agree).
	for pass, at := range []sim.Time{sim.Second, 2 * sim.Second, 5 * sim.Second} {
		for i := 0; i < n; i++ {
			sp.ForEachAudible(i, func(j int, slot int32, _ float64) {
				gs := sp.GainDB(i, j, at)
				gd := de.GainDB(i, j, at)
				if gs != gd {
					t.Fatalf("pass %d GainDB(%d,%d): sparse %v dense %v", pass, i, j, gs, gd)
				}
			})
		}
	}
	if a, b := sp.fadeRng.Float64(), de.fadeRng.Float64(); a != b {
		t.Fatalf("fade streams out of lockstep: next draws %v vs %v", a, b)
	}
	// Culled links read as nothing, without touching any stream.
	for i := 0; i < n && culled > 0; i++ {
		for j := i + 1; j < n; j++ {
			if sp.slotOf(i, j) < 0 {
				if g := sp.GainDB(i, j, 9*sim.Second); !math.IsInf(g, -1) {
					t.Fatalf("culled link (%d,%d) GainDB = %v, want -Inf", i, j, g)
				}
				if g := sp.GainLin(i, j, 9*sim.Second); g != 0 {
					t.Fatalf("culled link (%d,%d) GainLin = %v, want 0", i, j, g)
				}
				i = n // one is enough
				break
			}
		}
	}
}

// TestSparseDenseMultiFloorIdentical repeats the channel-level differential
// over a multi-storey layout, where the near-pair filter's obstruction term
// matters: floor slabs (14 dB each) push many pairs inside the cutoff
// radius past the deterministic loss bound, so they are excluded from the
// precomputed near set and must flow through the certified-bound/exact
// fallback instead — with the stored audible set still exactly matching the
// dense criterion.
func TestSparseDenseMultiFloorIdentical(t *testing.T) {
	const n = 600
	tp := topo.MultiFloor(n, 6, 120, 80, 13)
	p := sparseTestParams()
	sp, de := buildPair(t, tp, p, 77)

	// The obstruction-exclusion branch must actually fire: count pairs
	// within the cutoff radius whose distance-plus-slab loss exceeds the
	// bound (the test's own reimplementation of the filter).
	cut := p.CutoffRadiusM()
	plAtCutoff := p.PathLossRefDB + 10*p.PathLossExponent*math.Log10(cut)
	obstructedNear := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := tp.Distance(i, j)
			if d > cut {
				continue
			}
			if d < 0.5 {
				d = 0.5
			}
			base := p.PathLossRefDB + 10*p.PathLossExponent*math.Log10(d)
			if base+tp.ExtraLossDB(i, j) > plAtCutoff {
				obstructedNear++
			}
		}
	}
	if obstructedNear == 0 {
		t.Fatal("no obstructed within-radius pairs: the obstruction filter went unexercised")
	}

	floor := sp.AudibleFloorDB()
	stored, culled := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			gij := de.staticGainDB[i*n+j]
			gji := de.staticGainDB[j*n+i]
			slot := sp.slotOf(i, j)
			want := gij >= floor || gji >= floor
			if got := slot >= 0; got != want {
				t.Fatalf("pair (%d,%d): stored=%v want %v (gains %.2f/%.2f, floor %.2f)",
					i, j, got, want, gij, gji, floor)
			}
			if slot < 0 {
				culled++
				continue
			}
			stored++
			rev := sp.slotOf(j, i)
			if sp.adjGainDB[slot] != gij || sp.adjGainDB[rev] != gji {
				t.Fatalf("pair (%d,%d): gain mismatch across representations", i, j)
			}
		}
	}
	if stored == 0 || culled == 0 {
		t.Fatalf("degenerate audible set: %d stored, %d culled", stored, culled)
	}
	t.Logf("n=%d floors=6: %d stored, %d culled, %d obstructed within-radius pairs excluded from the near set",
		n, stored, culled, obstructedNear)
}

// TestCutoffCertifiedConservative is the conservativeness proof for the
// audibility floor: for every culled pair, the link's best case — maximum
// plausible transmit power, the model's full fade margin on top of the
// actually-drawn static gain — still lands below the radio's detection
// threshold (the medium drops it before any reception draw or interference
// accounting), and the SINR it could present against a generously
// best-case noise floor sits in a PRR-table cell whose certified upper
// bound is zero at the table's resolution. No culled receiver could have
// decoded a frame or contributed interference.
func TestCutoffCertifiedConservative(t *testing.T) {
	const n = 500
	tp := topo.UniformRandom(n, 600, 600, 11)
	p := sparseTestParams()
	sp, de := buildPair(t, tp, p, 1234)
	rp := DefaultRadioParams()
	floor := sp.AudibleFloorDB()

	// Best-case noise: thermal floor minus a 6 dB allowance, beyond 5σ of
	// the combined noise-figure (σ=0.9) and drift (σ=0.8) excursions.
	const bestNoiseAllowanceDB = 6
	// The table for the longest frame the CTP stack sends (the PRR bound
	// loosens with shorter frames only far above this SINR regime; check a
	// short frame too).
	tables := []*PRRTable{PRRTableFor(40), PRRTableFor(20)}

	culled := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sp.slotOf(i, j) >= 0 {
				continue
			}
			culled++
			for _, dir := range [2][2]int{{i, j}, {j, i}} {
				g := de.staticGainDB[dir[0]*n+dir[1]]
				if g >= floor {
					t.Fatalf("culled link %v has gain %.2f above floor %.2f", dir, g, floor)
				}
				worstPowDBm := audibleMaxTxPowerDBm + g + audibleFadeMarginDB
				if worstPowDBm >= rp.DetectionDBm-0.4 {
					t.Fatalf("culled link %v best-case power %.2f dBm within guard of detection %.2f dBm",
						dir, worstPowDBm, rp.DetectionDBm)
				}
				sinrDB := worstPowDBm - (p.NoiseFloorDBm - bestNoiseAllowanceDB)
				for _, tb := range tables {
					if ub := tb.CertifiedUpperPRR(sinrDB); ub > 2*prrBoundsEps {
						t.Fatalf("culled link %v: certified PRR upper bound %g at SINR %.2f dB (frame %d) above table resolution",
							dir, ub, sinrDB, tb.FrameBytes())
					}
				}
			}
		}
	}
	if culled == 0 {
		t.Fatal("no culled pairs: conservativeness untested")
	}
	t.Logf("certified %d culled pairs conservative", culled)
}

// TestSparseMediumTrajectoryIdentical is the medium-level half of the
// differential harness: identical scripted traffic over the two channel
// representations must produce byte-identical frame trajectories — every
// delivery at the same instant with the same bit-exact SNR and LQI, the
// same drop and capture counters — with all channel dynamics (fading,
// noise drift, bursts, packet jitter) enabled.
func TestSparseMediumTrajectoryIdentical(t *testing.T) {
	const n = 300
	tp := topo.UniformRandom(n, 450, 450, 3)
	p := sparseTestParams()
	p.PathLossExponent = 4.0

	run := func(sparseAbove int) (string, MediumStats) {
		pp := p
		pp.SparseAboveN = sparseAbove
		clock := sim.New(99)
		seeds := sim.NewSeedSpace(99)
		ch := PrecomputeGeo(tp, pp).NewChannel(seeds)
		m := NewMedium(clock, ch, DefaultRadioParams(), DefaultLQIParams(), seeds)
		var log []byte
		for i := 0; i < n; i++ {
			rx := i
			m.Radio(i).OnReceive(func(data []byte, info RxInfo) {
				log = append(log, fmt.Sprintf("%d %d %d %x %d\n",
					rx, data[0], info.At, math.Float64bits(info.SNRdB), info.LQI)...)
			})
		}
		// Scripted traffic: each node transmits every 40 ms, phase-offset
		// by its id so transmissions overlap in shifting patterns (plenty
		// of collisions and captures, no self-overlap: a 40-byte frame is
		// ~1.5 ms of airtime).
		for i := 0; i < n; i++ {
			id := i
			frame := []byte{byte(id), byte(id >> 8)}
			frame = append(frame, make([]byte, 38)...)
			phase := sim.Time(id) * sim.Millisecond / 8
			for k := 0; k < 40; k++ {
				clock.Schedule(sim.Time(k)*40*sim.Millisecond+phase, func() {
					if !m.Radio(id).Transmitting() {
						m.Radio(id).Transmit(frame)
					}
				})
			}
		}
		clock.RunUntil(2 * sim.Second)
		return string(log), m.Stats
	}

	logS, statsS := run(1)
	logD, statsD := run(-1)
	if statsS != statsD {
		t.Fatalf("medium stats diverge:\nsparse %+v\ndense  %+v", statsS, statsD)
	}
	if logS != logD {
		t.Fatalf("delivery logs diverge (sparse %d bytes, dense %d bytes)", len(logS), len(logD))
	}
	if statsS.Delivered == 0 || statsS.DroppedCollision == 0 {
		t.Fatalf("degenerate traffic: %+v", statsS)
	}
	t.Logf("trajectories identical: %+v", statsS)
}
