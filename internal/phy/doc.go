// Package phy models the physical layer the paper's evaluation ran on: a
// CC2420-class IEEE 802.15.4 radio (2.4 GHz, O-QPSK with direct-sequence
// spread spectrum, 250 kbit/s) over an indoor channel with log-distance path
// loss, lognormal shadowing, per-node hardware variation, slow noise-floor
// drift, and per-link time-varying fading.
//
// The model is the substitution for the Mirage/TutorNet hardware (see
// DESIGN.md §1): it reproduces the two channel properties the paper's
// argument depends on — a narrow "grey region" of intermediate-quality
// links, and received-packet quality indicators (LQI) that stay high on
// bursty links whose packet reception ratio is collapsing.
package phy
