package phy

import (
	"fmt"
	"sync"

	"fourbit/internal/sim"
)

// This file implements the reception-path fast kernel: a quantized
// SINR→PRR lookup table in the tradition of TOSSIM and Zuniga &
// Krishnamachari's link-model tooling, which precompute reception curves
// because the analytic 802.15.4 BER series (15 math.Exp calls plus a
// math.Pow per evaluation) dominates per-packet cost.
//
// Unlike a plain lookup table, the table's decision path is *certified
// exact*: every cell stores rigorous lower/upper bounds on the analytic
// PRR over that cell, and the reception draw compares the uniform sample
// against the bounds first. Only when the sample lands inside the bounds
// gap (probability = the cell's PRR span, <2.5% in the waterfall and ~0
// elsewhere) does the kernel fall back to the analytic function — so the
// Bernoulli outcome, and the number of random draws consumed, are
// bit-identical to evaluating the analytic PRR on every packet. Figure
// outputs do not move by one bit; see TestGoldenRunFingerprints.
//
// The interpolated Lookup path is the conventional approximate query
// (linear interpolation between exact grid samples, error ≤ ~2.5e-4, see
// TestPRRTableLookupAccuracy); it serves analysis tooling that wants
// cheap curve evaluation and is not used for reception decisions.

const (
	// Table domain. Above prrTableMaxDB the BER series underflows so far
	// that PRR is exactly 1.0 in float64 for any frame length the table
	// accepts (the build panics otherwise); below prrTableMinDB the
	// kernel falls back to the analytic function (receptions jammed that
	// deep are rare — heavy same-cell collisions only).
	prrTableMinDB      = -40.0
	prrTableMaxDB      = 8.0
	prrTableStepsPerDB = 128 // 1/128 dB cells: exactly representable, shift-friendly
	prrTableCells      = int((prrTableMaxDB - prrTableMinDB) * prrTableStepsPerDB)

	// prrBoundsEps widens every certified bound beyond the float-level
	// error of the analytic evaluation (relative error ~1e-13; see the
	// error budget in docs/ARCHITECTURE.md). Widening costs only fallback
	// probability, never correctness.
	prrBoundsEps = 1e-9

	// prrMaxTableBytes bounds the frame lengths served by tables. Beyond
	// it (no real 802.15.4 frame is within two orders of magnitude) the
	// medium uses the analytic path directly.
	prrMaxTableBytes = 4096
)

// Cell classification for the exact decision path.
const (
	prrCellSubOne uint8 = iota // PRR certainly < 1.0: draw, compare against bounds
	prrCellOne                 // PRR certainly == 1.0: deliver, no draw
	prrCellExact               // threshold/underflow neighborhood: analytic evaluation
)

// prrCell carries one cell's certified bounds and decision class in a
// single record, so Decide touches one cache line per draw instead of
// three parallel slices.
type prrCell struct {
	lo, hi float64 // certified bounds on PRR over the cell
	kind   uint8   // decision class
}

// PRRTable is the precomputed reception curve for one frame length.
type PRRTable struct {
	frameBytes int
	val        []float64 // exact PRR at the prrTableCells+1 grid points
	cell       []prrCell // per-cell decision data
}

// FrameBytes returns the frame length this table was built for.
func (t *PRRTable) FrameBytes() int { return t.frameBytes }

// buildPRRTable samples the analytic PRR over the grid and certifies
// per-cell bounds. PRR is strictly increasing in SINR, so the exact values
// at a cell's edges bound the analytic function over the cell; prrBoundsEps
// absorbs the evaluation's own float error.
func buildPRRTable(frameBytes int) *PRRTable {
	t := &PRRTable{
		frameBytes: frameBytes,
		val:        make([]float64, prrTableCells+1),
		cell:       make([]prrCell, prrTableCells),
	}
	const step = 1.0 / prrTableStepsPerDB
	for g := range t.val {
		t.val[g] = PRR(prrTableMinDB+float64(g)*step, frameBytes)
	}
	if t.val[prrTableCells] != 1 {
		// Analytically impossible for frameBytes <= prrMaxTableBytes (the
		// BER series is below 2^-54 above +8 dB); a failure here means the
		// golden reference changed and the domain must be revisited.
		panic(fmt.Sprintf("phy: PRR(%v dB, %d bytes) = %v, table domain does not saturate",
			prrTableMaxDB, frameBytes, t.val[prrTableCells]))
	}
	// oneFrom is the lowest grid index from which every sampled value is
	// exactly 1.0. The true ==1.0 threshold of the float function lies
	// within one cell of it (BER moves ~7% per cell near the threshold,
	// vastly above its ~1e-13 relative evaluation noise), so cells two or
	// more grid steps away are certified; the neighborhood stays exact.
	oneFrom := prrTableCells
	for oneFrom > 0 && t.val[oneFrom-1] == 1 {
		oneFrom--
	}
	// zeroTo is the highest grid index whose sampled value is exactly 0
	// (−1 if the curve is positive over the whole domain; long frames
	// underflow to 0 where BER clamps at 0.5). The symmetric concern to
	// the ==1.0 threshold: Bernoulli(0) consumes no draw, so any cell
	// that might contain an exact zero must stay on the analytic path.
	// Cells two or more grid steps above zeroTo are certified strictly
	// positive by the same monotonicity-vs-float-noise argument as above.
	zeroTo := -1
	for zeroTo+1 <= prrTableCells && t.val[zeroTo+1] == 0 {
		zeroTo++
	}
	for i := 0; i < prrTableCells; i++ {
		c := &t.cell[i]
		c.lo = t.val[i] - prrBoundsEps
		if c.lo < 0 {
			c.lo = 0
		}
		c.hi = t.val[i+1] + prrBoundsEps
		if c.hi > 1 {
			c.hi = 1
		}
		switch {
		case i >= oneFrom+2:
			c.kind = prrCellOne
		case i+1 <= oneFrom-2 && i >= zeroTo+2:
			c.kind = prrCellSubOne
		default:
			c.kind = prrCellExact
		}
	}
	return t
}

// Lookup returns the linearly-interpolated PRR at sinrDB — the cheap
// approximate query for analysis and planning tools. Its error against the
// analytic PRR is bounded by the curve's curvature over one 1/128 dB cell
// (≤ ~2.5e-4; pinned to 1e-3 by TestPRRTableLookupAccuracy). Reception
// decisions never use it; they go through Decide.
func (t *PRRTable) Lookup(sinrDB float64) float64 {
	if sinrDB >= prrTableMaxDB {
		return 1
	}
	if sinrDB <= prrTableMinDB {
		return t.val[0]
	}
	pos := (sinrDB - prrTableMinDB) * prrTableStepsPerDB
	i := int(pos)
	if i >= prrTableCells { // guard the rounding edge at the domain top
		i = prrTableCells - 1
	}
	frac := pos - float64(i)
	return t.val[i] + frac*(t.val[i+1]-t.val[i])
}

// Decide performs the reception Bernoulli draw for a frame heard at
// sinrDB, bit-identical to rng.Bernoulli(PRR(sinrDB, frameBytes)) in both
// outcome and random-stream consumption: certainly-delivered cells consume
// no draw (as Bernoulli(1) does not), certainly-sub-one cells consume
// exactly one draw and resolve it against the certified bounds, and only
// draws landing inside a cell's bounds gap — or SINRs outside the table
// domain — pay for the analytic function.
func (t *PRRTable) Decide(sinrDB float64, rng *sim.Rand) bool {
	if sinrDB >= prrTableMaxDB {
		return true // PRR is exactly 1.0 here; Bernoulli(1) draws nothing
	}
	if sinrDB < prrTableMinDB {
		return rng.Bernoulli(PRR(sinrDB, t.frameBytes))
	}
	i := int((sinrDB - prrTableMinDB) * prrTableStepsPerDB)
	if i >= prrTableCells {
		i = prrTableCells - 1
	}
	c := &t.cell[i]
	switch c.kind {
	case prrCellOne:
		return true
	case prrCellExact:
		return rng.Bernoulli(PRR(sinrDB, t.frameBytes))
	}
	u := rng.Float64()
	if u < c.lo {
		return true
	}
	if u >= c.hi {
		return false
	}
	return u < PRR(sinrDB, t.frameBytes)
}

// CertifiedUpperPRR returns a certified upper bound on the analytic
// reception probability at sinrDB. PRR is strictly increasing in SINR, so
// the containing cell's certified hi bound (upper grid edge + prrBoundsEps,
// covering the analytic evaluation's own float error) bounds the function
// over the cell; below the table domain the domain floor's bound applies,
// at or above the saturation point the bound is 1. The spatial-culling
// conservativeness test uses this to certify that no culled link's
// best-case SINR could ever decode a frame above the table's resolution.
func (t *PRRTable) CertifiedUpperPRR(sinrDB float64) float64 {
	if sinrDB >= prrTableMaxDB {
		return 1
	}
	if sinrDB < prrTableMinDB {
		sinrDB = prrTableMinDB
	}
	i := int((sinrDB - prrTableMinDB) * prrTableStepsPerDB)
	if i >= prrTableCells {
		i = prrTableCells - 1
	}
	return t.cell[i].hi
}

// prrTableCache shares built tables process-wide: the curve depends only
// on the frame length, so concurrent experiment runs (and every run of a
// sweep) reuse one table per length instead of rebuilding ~50 KB of curve
// per Medium.
var prrTableCache sync.Map // int → *PRRTable

// PRRTableFor returns the shared reception-curve table for frameBytes,
// building it on first use, or nil when the length is out of the table
// range (non-positive, or beyond prrMaxTableBytes) and callers must use
// the analytic PRR.
func PRRTableFor(frameBytes int) *PRRTable {
	if frameBytes <= 0 || frameBytes > prrMaxTableBytes {
		return nil
	}
	if t, ok := prrTableCache.Load(frameBytes); ok {
		return t.(*PRRTable)
	}
	t, _ := prrTableCache.LoadOrStore(frameBytes, buildPRRTable(frameBytes))
	return t.(*PRRTable)
}
