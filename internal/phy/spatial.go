package phy

import (
	"math"
	"sort"

	"fourbit/internal/sim"
)

// This file implements the spatial audible-set index: the machinery that
// lets a channel over thousands of nodes store and visit only the links
// that can physically matter, instead of dense n×n matrices.
//
// The representation split is by network size (Params.SparseAboveN): small
// networks — every existing testbed and golden — keep the dense arrays and
// are bit-for-bit untouched; large networks use a CSR adjacency holding
// only links whose drawn static gain clears an audibility floor
// (Params.AudibleFloorDB). The floor is chosen so that a culled link could
// never be detected by a receiver, never contribute interference, and a
// fortiori never decode a frame — the medium already drops sub-detection
// signals before any reception draw, so culling them earlier is
// trajectory-invisible.
//
// Exactness contract (pinned by the differential tests in sparse_test.go
// and internal/scenario): a sparse channel is a bit-identical drop-in for
// the dense one on the same topology and seeds. Two properties make that
// hold by construction rather than approximately:
//
//  1. Random-stream alignment. The per-seed constructor draws the
//     shadowing deviate for EVERY unordered pair in the dense order
//     (i ascending, j ascending), whether or not the pair is stored, so
//     the "phy/static" stream is consumed identically. Fading state is
//     allocated per stored pair and sampled lazily exactly where the dense
//     path would sample it — culled pairs are never queried on either
//     path, so the "phy/fade" stream aligns too.
//
//  2. Exact audibility, not radius audibility. A pair is stored iff its
//     actual drawn static gain (either direction) clears the floor — the
//     same per-link criterion the dense medium applies when building its
//     candidate sets. The bucket cutoff radius only decides where the
//     deterministic path loss is precomputed: outside the near set —
//     beyond the radius, or obstructed past the same loss bound (floor
//     slabs, clutter) — a certified lower bound on path loss (monotone in
//     distance, obstruction loss never negative) proves most pairs
//     inaudible without computing their geometry, and the rare draw that
//     lands inside the bound's headroom
//     falls back to the exact per-pair evaluation. No probabilistic
//     culling anywhere: the audible set equals the dense candidate
//     superset exactly, for every seed.

// Geometry describes node placement for channel precomputation without
// materializing n×n matrices: positions for spatial bucketing plus exact
// per-pair distance and static obstruction loss. topo.Topology implements
// it. ExtraLossDB must be non-negative (obstructions only attenuate) and
// Distance monotone under the triangle geometry of Coord — both hold for
// physical placements; the audibility culling's certified bound relies on
// them.
type Geometry interface {
	N() int
	// Coord returns node i's position in meters (z derived from the floor
	// index for multi-storey layouts).
	Coord(i int) (x, y, z float64)
	Distance(i, j int) float64
	ExtraLossDB(i, j int) float64
}

const (
	// audibleMaxTxPowerDBm is the maximum plausible transmit power the
	// audibility filter assumes (radios default to 0 dBm; power sweeps only
	// go down). Shared by the medium's candidate filter and the channel's
	// sparse storage floor so the two stay consistent.
	audibleMaxTxPowerDBm = 1
	// audibleFadeMarginDB is the fade headroom of the candidate filter:
	// generous, so fading can only shrink — never grow — the true receiver
	// set (the pre-existing model assumption, formerly local to NewMedium).
	audibleFadeMarginDB = 14
	// audibleFloorGuardDB separates the sparse storage floor from the
	// medium's candidate threshold so float rounding at the exact boundary
	// can never store a link on one side and admit it on the other.
	audibleFloorGuardDB = 0.5

	// DefaultAudibleFloorDB is the default sparse storage floor:
	// DetectionDBm(−110) − audibleMaxTxPowerDBm − audibleFadeMarginDB −
	// audibleFloorGuardDB. A directed link whose static gain sits below it
	// can never clear the detection floor even at maximum power with the
	// full fade margin: the medium would skip it before any reception
	// draw, so storing it would only spend memory. NewMedium enforces that
	// a sparse channel's floor is compatible with the radio's actual
	// detection threshold.
	DefaultAudibleFloorDB = -(110.0) - audibleMaxTxPowerDBm - audibleFadeMarginDB - audibleFloorGuardDB

	// DefaultSparseAboveN is the node count from which PrecomputeGeo
	// selects the sparse representation when Params.SparseAboveN is zero.
	// Every paper testbed and golden (≤ 94 nodes) stays dense by a wide
	// margin; city-scale presets (2k–10k) go sparse.
	DefaultSparseAboveN = 512

	// cutoffHeadroomSigmas sizes the shadowing/hardware headroom folded
	// into the bucket cutoff radius, in combined (root-sum-square)
	// standard deviations of the shadowing and tx-offset draws. It trades
	// construction work, not correctness: a draw that beats the headroom
	// just pays one exact per-pair path-loss evaluation (see newSparse),
	// so 2σ (~2% fallback rate among beyond-cutoff pairs) keeps the radius
	// — and with it the precomputed near-pair set — small.
	cutoffHeadroomSigmas = 2
)

// audibleFloor resolves the sparse storage floor (0 = default).
func (p Params) audibleFloor() float64 {
	if p.AudibleFloorDB == 0 {
		return DefaultAudibleFloorDB
	}
	return p.AudibleFloorDB
}

// sparseFor reports whether a network of n nodes uses the sparse
// representation under these parameters: n at or above the threshold
// (SparseAboveN; 0 = DefaultSparseAboveN, negative = never) and a
// positive path-loss exponent (the cutoff bound needs loss to grow with
// distance; a degenerate exponent keeps the dense arrays).
func (p Params) sparseFor(n int) bool {
	th := p.SparseAboveN
	if th < 0 {
		return false
	}
	if th == 0 {
		th = DefaultSparseAboveN
	}
	return n >= th && p.PathLossExponent > 0
}

// CutoffRadiusM returns the spatial-bucket cutoff radius in meters: the
// distance at which the deterministic path loss alone puts a link
// cutoffHeadroomSigmas of shadowing-plus-hardware deviation below the
// audibility floor. Pairs beyond it are culled through a certified
// path-loss lower bound instead of per-pair geometry; pairs whose
// shadowing draw defeats the headroom still get the exact evaluation, so
// the radius tunes construction cost only, never the audible set.
func (p Params) CutoffRadiusM() float64 {
	headroom := cutoffHeadroomSigmas * math.Sqrt(p.ShadowSigmaDB*p.ShadowSigmaDB+p.TxVarSigmaDB*p.TxVarSigmaDB)
	pl := -p.audibleFloor() + headroom
	r := math.Pow(10, (pl-p.PathLossRefDB)/(10*p.PathLossExponent))
	if r < 1 {
		r = 1
	}
	return r
}

// PrecomputeGeo builds the immutable half of a channel directly from node
// geometry, selecting the representation by size: dense basePL matrices
// below the sparse threshold (bit-identical to Precompute over
// Topology.Matrices), a bucketed near-pair CSR above it. Like Precompute
// it draws no randomness; the result is a pure function of (g, p) and is
// safe to share read-only across per-seed instantiations.
func PrecomputeGeo(g Geometry, p Params) *ChannelPre {
	precomputeCount.Add(1)
	n := g.N()
	if !p.sparseFor(n) {
		pre := &ChannelPre{p: p, n: n, basePL: make([]float64, n*n), extraDB: make([]float64, n*n)}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := g.Distance(i, j)
				if d < 0.5 {
					d = 0.5
				}
				pre.basePL[i*n+j] = p.PathLossRefDB + 10*p.PathLossExponent*math.Log10(d)
				pre.extraDB[i*n+j] = g.ExtraLossDB(i, j)
			}
		}
		return pre
	}
	return precomputeSparse(g, p)
}

// precomputeSparse builds the bucketed near-pair half: a CSR over
// unordered pairs whose deterministic loss — distance AND obstruction —
// stays within the cutoff bound (row i lists j > i, ascending), holding
// each pair's path loss and obstruction loss. Every pair NOT in the CSR is
// certified to lose at least plAtCutoff deterministically: either its
// distance exceeds the cutoff radius (monotone path loss), or its
// distance-plus-obstruction loss was computed here and found beyond the
// bound. The second class is what keeps multi-storey layouts sparse: floor
// slabs (14 dB each) push most cross-floor pairs past the bound even when
// the floors stack at the same horizontal coordinates, so they cost
// neither CSR memory nor a per-seed geometry evaluation.
func precomputeSparse(g Geometry, p Params) *ChannelPre {
	n := g.N()
	r := p.CutoffRadiusM()
	pre := &ChannelPre{
		p:       p,
		n:       n,
		sparse:  true,
		geo:     g,
		cutoffM: r,
		// Monotone path loss: any pair farther than r (bucket misses are
		// farther by construction) loses at least this much to distance
		// alone. r >= 1 > 0.5, so the short-range clamp cannot undercut it.
		plAtCutoff: p.PathLossRefDB + 10*p.PathLossExponent*math.Log10(r),
		nearOff:    make([]int32, n+1),
	}
	// Grid buckets of side r over the horizontal plane: any pair within r
	// in 3-D is within r in 2-D, hence in the same or an adjacent bucket.
	type cell struct{ cx, cy int32 }
	buckets := make(map[cell][]int32)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x, y, _ := g.Coord(i)
		xs[i], ys[i] = x, y
		c := cell{int32(math.Floor(x / r)), int32(math.Floor(y / r))}
		buckets[c] = append(buckets[c], int32(i))
	}
	// Horizontal prefilter radius: 2-D distance is a lower bound on the
	// 3-D one, so any pair beyond rr in the plane is certainly beyond the
	// cutoff; the tiny relative guard keeps the squared comparison from
	// ever skipping a borderline pair the exact Distance check would keep.
	rr := r * (1 + 1e-12)
	rr *= rr
	var row []int32
	anyExtra := false
	for i := 0; i < n; i++ {
		ci := cell{int32(math.Floor(xs[i] / r)), int32(math.Floor(ys[i] / r))}
		row = row[:0]
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, j := range buckets[cell{ci.cx + dx, ci.cy + dy}] {
					if int(j) <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[int(j)], ys[i]-ys[int(j)]
					if ddx*ddx+ddy*ddy > rr {
						continue
					}
					if g.Distance(i, int(j)) <= r {
						row = append(row, j)
					}
				}
			}
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		for _, j := range row {
			d := g.Distance(i, int(j))
			if d < 0.5 {
				d = 0.5
			}
			base := p.PathLossRefDB + 10*p.PathLossExponent*math.Log10(d)
			e := g.ExtraLossDB(i, int(j))
			if base+e > pre.plAtCutoff {
				// Deterministic loss alone already exceeds the certified
				// bound (obstruction made up what distance did not): the
				// per-seed loop treats the pair exactly like a beyond-cutoff
				// one, so storing it would be pure waste.
				continue
			}
			pre.nearNbr = append(pre.nearNbr, j)
			pre.nearPL = append(pre.nearPL, base)
			pre.nearExtra = append(pre.nearExtra, e)
			if e != 0 {
				anyExtra = true
			}
		}
		pre.nearOff[i+1] = int32(len(pre.nearNbr))
	}
	if !anyExtra {
		// All-zero obstruction loss adds nothing (x + 0.0 is the identity
		// for the positive losses here), so drop the array; the seed loop
		// skips the add, bit-identically.
		pre.nearExtra = nil
	}
	return pre
}

// Sparse reports whether this precompute selected the sparse audible-set
// representation.
func (pre *ChannelPre) Sparse() bool { return pre.sparse }

// audPair is one stored unordered pair discovered during sparse channel
// construction, with both directed static gains.
type audPair struct {
	i, j     int32
	gij, gji float64
}

// newSparse runs the per-seed pair loop for the sparse representation and
// fills the channel's CSR adjacency. It consumes the static stream exactly
// as the dense loop does — one shadowing deviate per unordered pair, i and
// j ascending — and stores a pair iff either directed static gain clears
// the audibility floor: the same criterion, on the same drawn values, that
// the dense medium's candidate filter would apply, so the audible set is
// byte-for-byte the dense candidate superset.
func (pre *ChannelPre) newSparse(c *Channel, static *sim.Rand, txOff []float64) {
	n := pre.n
	p := pre.p
	floor := p.audibleFloor()
	var pairs []audPair
	deg := make([]int32, n)
	for i := 0; i < n; i++ {
		lo, hi := pre.nearOff[i], pre.nearOff[i+1]
		ptr := lo
		ti := txOff[i]
		for j := i + 1; j < n; j++ {
			s := static.Normal(0, p.ShadowSigmaDB)
			var pl float64
			if ptr < hi && int(pre.nearNbr[ptr]) == j {
				// In the near set: precomputed deterministic loss, with
				// the shadowing and obstruction terms added in the dense
				// constructor's exact order.
				pl = pre.nearPL[ptr] + s
				if pre.nearExtra != nil {
					pl += pre.nearExtra[ptr]
				}
				ptr++
			} else {
				// Not in the near set: the certified bound. The pair's
				// deterministic loss (distance plus obstruction) is at
				// least plAtCutoff by the near set's construction, so the
				// actual gain in either direction is at most
				// −(plAtCutoff + s) + max txOff; when even that bound
				// misses the floor the pair is culled exactly. Only a
				// draw inside the headroom pays for the pair's true
				// geometry.
				tmax := ti
				if txOff[j] > tmax {
					tmax = txOff[j]
				}
				if -(pre.plAtCutoff+s)+tmax < floor {
					continue
				}
				d := pre.geo.Distance(i, j)
				if d < 0.5 {
					d = 0.5
				}
				pl = p.PathLossRefDB + 10*p.PathLossExponent*math.Log10(d)
				pl += s
				pl += pre.geo.ExtraLossDB(i, j)
			}
			gij := -pl + ti
			gji := -pl + txOff[j]
			if gij >= floor || gji >= floor {
				pairs = append(pairs, audPair{int32(i), int32(j), gij, gji})
				deg[i]++
				deg[j]++
			}
		}
	}

	// Assemble the symmetric CSR. Pairs were generated with i ascending
	// and j ascending within i, so each row receives its lower neighbors
	// (from earlier outer iterations) and then its upper neighbors in
	// order — rows come out sorted without a sort pass.
	c.sparse = true
	c.adjOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		c.adjOff[i+1] = c.adjOff[i] + deg[i]
	}
	m := len(pairs)
	c.adjNbr = make([]int32, 2*m)
	c.adjGainDB = make([]float64, 2*m)
	c.adjGainLin = make([]float64, 2*m)
	c.adjPair = make([]int32, 2*m)
	cursor := make([]int32, n)
	copy(cursor, c.adjOff[:n])
	for pi := range pairs {
		pr := &pairs[pi]
		si := cursor[pr.i]
		cursor[pr.i]++
		c.adjNbr[si], c.adjGainDB[si], c.adjPair[si] = pr.j, pr.gij, int32(pi)
		sj := cursor[pr.j]
		cursor[pr.j]++
		c.adjNbr[sj], c.adjGainDB[sj], c.adjPair[sj] = pr.i, pr.gji, int32(pi)
	}
	for s, g := range c.adjGainDB {
		c.adjGainLin[s] = DBToLinear(g)
	}
	c.fade = make([]ouState, m)
}

// Sparse reports whether the channel uses the sparse audible-set
// representation.
func (c *Channel) Sparse() bool { return c.sparse }

// AudibleFloorDB returns the resolved static-gain storage floor of the
// sparse representation (also resolved, for symmetry, on dense channels).
func (c *Channel) AudibleFloorDB() float64 { return c.p.audibleFloor() }

// AudibleLinks returns the number of stored directed links: n·(n−1) on the
// dense path, the audible-set size on the sparse one — the denominator of
// the culling ratio city-scale diagnostics report.
func (c *Channel) AudibleLinks() int {
	if !c.sparse {
		return c.n * (c.n - 1)
	}
	return len(c.adjNbr)
}

// slotOf locates rx in tx's CSR row, or −1 when the link is culled.
func (c *Channel) slotOf(tx, rx int) int32 {
	lo, hi := c.adjOff[tx], c.adjOff[tx+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if int(c.adjNbr[mid]) < rx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.adjOff[tx+1] && int(c.adjNbr[lo]) == rx {
		return lo
	}
	return -1
}

// ForEachAudible invokes fn for every receiver j (ascending) the channel's
// representation admits as possibly audible from i, with the directed
// static gain i→j and the adjacency slot (−1 on the dense path, which
// admits everyone). The medium builds its candidate sets through this so
// the two representations filter the identical per-link values.
func (c *Channel) ForEachAudible(i int, fn func(j int, slot int32, gainDB float64)) {
	if !c.sparse {
		row := c.staticGainDB[i*c.n : (i+1)*c.n]
		for j := range row {
			if j == i {
				continue
			}
			fn(j, -1, row[j])
		}
		return
	}
	for s := c.adjOff[i]; s < c.adjOff[i+1]; s++ {
		fn(int(c.adjNbr[s]), s, c.adjGainDB[s])
	}
}

// gainLinSlot is GainLin for a known adjacency slot — the sparse hot path
// the medium uses for candidate receivers, skipping the row search. It
// samples the pair's fading process exactly as GainLin would.
func (c *Channel) gainLinSlot(tx, rx int, slot int32, t sim.Time) float64 {
	g := c.adjGainLin[slot]
	varDB := 0.0
	if c.p.FadeSigmaDB > 0 {
		if c.shardFade != nil {
			varDB = c.shardFade[slot].sample(t, c.p.FadeTau, c.p.FadeSigmaDB, c.shardFadeRng[rx], &c.shardFadeCo[c.shardOf[rx]])
		} else {
			varDB = c.fade[c.adjPair[slot]].sample(t, c.p.FadeTau, c.p.FadeSigmaDB, c.fadeRng, &c.fadeCo)
		}
	}
	if c.linkModCount > 0 {
		if lm := c.modMap[int64(tx)*int64(c.n)+int64(rx)]; lm != nil {
			varDB -= lm.ExtraLossDB(t)
		}
	}
	if varDB != 0 {
		g *= DBToLinear(varDB)
	}
	return g
}
