package phy

import (
	"fmt"
	"strings"
	"testing"

	"fourbit/internal/sim"
)

// shardedTestbed builds one clock per shard and a medium in cross-shard
// handoff mode over dist, with block-contiguous node→shard assignment and
// all channel randomness except the reception draw disabled. Every shard
// count is fed from identically-seeded SeedSpaces, so trajectories are
// comparable bit-for-bit across counts.
func shardedTestbed(t *testing.T, dist [][]float64, shards int, seed uint64) ([]*sim.Simulator, []int32, *Medium, *sim.ShardGroup) {
	t.Helper()
	n := len(dist)
	p := DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB = 0
	p.PacketJitterSigmaDB = 0
	ch := NewChannel(dist, nil, p, sim.NewSeedSpace(seed))
	clocks := make([]*sim.Simulator, shards)
	for i := range clocks {
		clocks[i] = sim.New(seed)
	}
	m := NewMedium(clocks[0], ch, DefaultRadioParams(), DefaultLQIParams(), sim.NewSeedSpace(seed))
	shardOf := make([]int32, n)
	for i := range shardOf {
		shardOf[i] = int32(i * shards / n)
	}
	const epoch = 200 * sim.Microsecond
	m.EnableSharded(clocks, shardOf, epoch, sim.NewSeedSpace(seed))
	g := sim.NewShardGroup(clocks, epoch, m.ShardExchange)
	return clocks, shardOf, m, g
}

// runShardScript drives a fixed transmission script over a 12-node line
// under the given shard count and returns a full textual trace: every
// delivery with its exact timing/LQI/SNR bit patterns, the medium stats,
// and the counted event total. The script deliberately mixes staggered
// sends, same-instant bursts from different regions (the merge-order
// stress), overlapping airtimes (collisions/capture), and a mid-run radio
// outage toggled at an epoch barrier.
func runShardScript(t *testing.T, shards int) string {
	t.Helper()
	const n = 12
	clocks, shardOf, m, g := shardedTestbed(t, lineDist(n, 5), shards, 7)
	defer g.Close()

	logs := make([][]string, n)
	for i := 0; i < n; i++ {
		i := i
		m.Radio(i).OnReceive(func(data []byte, info RxInfo) {
			logs[i] = append(logs[i], fmt.Sprintf("at=%d from=%d lqi=%d white=%v snr=%s",
				clocks[shardOf[i]].Now(), data[0], info.LQI, info.White, hexf(info.SNRdB)))
		})
	}
	send := func(at sim.Time, id int) {
		data := make([]byte, 20)
		data[0] = byte(id)
		clocks[shardOf[id]].At(at, func() {
			if !m.Radio(id).Transmitting() && !m.Radio(id).Down() {
				m.Radio(id).Transmit(data)
			}
		})
	}
	for i := 0; i < n; i++ {
		send(sim.Millisecond+sim.Time(i)*500*sim.Microsecond, i) // staggered, overlapping airtimes
		send(20*sim.Millisecond, i)                              // the whole line at one instant
		send(40*sim.Millisecond+sim.Time(i%3)*sim.Millisecond, i)
	}
	g.ScheduleControl(30*sim.Millisecond, func() { m.Radio(5).SetDown(true) })
	g.ScheduleControl(50*sim.Millisecond, func() { m.Radio(5).SetDown(false) })
	for i := 0; i < n; i += 2 {
		send(55*sim.Millisecond, i)
	}
	g.RunUntil(70 * sim.Millisecond)

	var b strings.Builder
	fmt.Fprintf(&b, "stats=%+v events=%d\n", m.Stats, g.Events())
	for i, log := range logs {
		fmt.Fprintf(&b, "node %d:\n  %s\n", i, strings.Join(log, "\n  "))
	}
	return b.String()
}

// hexf formats a float's exact bit pattern (mirrors the experiment
// package's fingerprint formatting).
func hexf(v float64) string { return fmt.Sprintf("%x", v) }

// TestShardCountInvarianceMedium is the phy-layer half of the tentpole
// contract: the same script over the same seeds produces bit-identical
// deliveries, stats, and counted event totals for every shard count —
// including 1, whose single "shard" still runs the handoff machinery.
func TestShardCountInvarianceMedium(t *testing.T) {
	want := runShardScript(t, 1)
	for _, shards := range []int{2, 3, 4, 6} {
		if got := runShardScript(t, shards); got != want {
			t.Errorf("shards=%d trace diverged from shards=1:\n--- shards=1\n%s\n--- shards=%d\n%s",
				shards, want, shards, got)
		}
	}
}

// TestShardHandoffMergeOrder pins the canonical handoff order directly:
// two frames with the *same start instant* from different sources must
// apply at the receiver in ascending source id, for every shard count and
// regardless of the order the sends were scheduled in. Receiver 1 hears
// node 0 strongly (5 m) and node 2 weakly (25 m); if the strong frame
// applies first there is no capture switch, while the reversed order
// would lock onto the weak frame and then stomp it (CaptureSwitches > 0)
// — so the stat is a direct witness of the merge order.
func TestShardHandoffMergeOrder(t *testing.T) {
	dist := [][]float64{
		{0, 5, 30},
		{5, 0, 25},
		{30, 25, 0},
	}
	for _, shards := range []int{1, 3} {
		clocks, shardOf, m, g := shardedTestbed(t, dist, shards, 3)
		var got []string
		m.Radio(1).OnReceive(func(data []byte, info RxInfo) {
			got = append(got, fmt.Sprintf("from=%d", data[0]))
		})
		at := 1 * sim.Millisecond
		// Schedule the high-id sender first: with one shard both sends
		// share a wheel slot and would otherwise enter the outbox in
		// schedule order, so this exercises the exchange's same-start
		// repair, not just the cross-shard merge.
		for _, id := range []int{2, 0} {
			id := id
			data := make([]byte, 20)
			data[0] = byte(id)
			clocks[shardOf[id]].At(at, func() { m.Radio(id).Transmit(data) })
		}
		g.RunUntil(10 * sim.Millisecond)
		g.Close()
		if m.Stats.CaptureSwitches != 0 {
			t.Errorf("shards=%d: %d capture switches; the weak same-start frame applied before the strong one",
				shards, m.Stats.CaptureSwitches)
		}
		if len(got) != 1 || got[0] != "from=0" {
			t.Errorf("shards=%d: delivered %v, want exactly the strong frame from node 0", shards, got)
		}
	}
}
