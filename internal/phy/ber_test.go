package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBERMonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for snr := -10.0; snr <= 15; snr += 0.25 {
		b := BER(snr)
		if b > prev+1e-15 {
			t.Fatalf("BER not monotone: BER(%.2f)=%g > previous %g", snr, b, prev)
		}
		prev = b
	}
}

func TestBERBounds(t *testing.T) {
	f := func(snr float64) bool {
		snr = math.Mod(snr, 60) // keep finite, wide range
		b := BER(snr)
		return b >= 0 && b <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBERWaterfallRegion(t *testing.T) {
	// The 802.15.4 analytic curve transitions from unusable to near-perfect
	// within a few dB; this narrow grey region is the modeling target.
	if b := BER(-6); b < 1e-2 {
		t.Errorf("BER(-6 dB) = %g, want > 1e-2 (unusable)", b)
	}
	if b := BER(3); b > 1e-6 {
		t.Errorf("BER(3 dB) = %g, want < 1e-6 (clean)", b)
	}
}

func TestPRRMonotoneInSNR(t *testing.T) {
	prev := 0.0
	for snr := -10.0; snr <= 10; snr += 0.5 {
		p := PRR(snr, 40)
		if p < prev-1e-12 {
			t.Fatalf("PRR not monotone at %.1f dB: %g < %g", snr, p, prev)
		}
		prev = p
	}
}

func TestPRRMonotoneInLength(t *testing.T) {
	// Longer frames can only do worse at fixed SNR.
	for _, snr := range []float64{-2, 0, 2} {
		prev := 1.0
		for _, n := range []int{10, 20, 40, 80, 127} {
			p := PRR(snr, n)
			if p > prev+1e-12 {
				t.Fatalf("PRR(%v dB, %d B) = %g > PRR of shorter frame %g", snr, n, p, prev)
			}
			prev = p
		}
	}
}

func TestPRRBounds(t *testing.T) {
	f := func(snr float64, n int) bool {
		snr = math.Mod(snr, 40)
		if n < 0 {
			n = -n
		}
		n = n%127 + 1
		p := PRR(snr, n)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPRRExtremes(t *testing.T) {
	if p := PRR(20, 127); p < 0.9999 {
		t.Errorf("PRR(20 dB) = %g, want ~1", p)
	}
	if p := PRR(-15, 40); p > 1e-6 {
		t.Errorf("PRR(-15 dB) = %g, want ~0", p)
	}
	if p := PRR(5, 0); p != 1 {
		t.Errorf("PRR of empty frame = %g, want 1", p)
	}
}

func TestSNRForPRRInverts(t *testing.T) {
	for _, target := range []float64{0.1, 0.5, 0.9, 0.99} {
		snr := SNRForPRR(target, 40)
		got := PRR(snr, 40)
		if math.Abs(got-target) > 0.01 {
			t.Errorf("PRR(SNRForPRR(%.2f)) = %.4f", target, got)
		}
	}
}

func TestSNRForPRRExtremes(t *testing.T) {
	if SNRForPRR(0, 40) != -20 {
		t.Error("SNRForPRR(0) should clamp low")
	}
	if SNRForPRR(1, 40) != 20 {
		t.Error("SNRForPRR(1) should clamp high")
	}
}

func TestUnitConversionsRoundTrip(t *testing.T) {
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 150)
		back := MilliwattsToDBm(DBmToMilliwatts(dbm))
		return math.Abs(back-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(MilliwattsToDBm(0), -1) {
		t.Error("0 mW should be -inf dBm")
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("0 linear should be -inf dB")
	}
}

func BenchmarkPRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PRR(float64(i%12)-6, 40)
	}
}
