package phy

import "fourbit/internal/sim"

// RxInfo is the per-packet physical-layer metadata attached to every
// received frame. It carries the paper's single physical-layer bit — the
// white bit — together with the raw indicators (LQI, SNR) that protocols
// such as MultiHopLQI consume directly. (A received-signal-strength field
// used to ride along; nothing consumed it, and its dBm conversion was one
// of the costliest operations on the delivery path, so it is gone —
// recover RSSI as SNRdB + noise floor if a future consumer needs it.)
type RxInfo struct {
	At    sim.Time
	SNRdB float64 // effective signal-to-(noise+interference) ratio
	LQI   uint8   // CC2420-style link quality indication, ~[40,110]
	White bool    // the white bit: all symbols decoded with high confidence
}

// LQIParams control the synthesis of the CC2420-style LQI value and of the
// white bit from per-packet SNR.
type LQIParams struct {
	// LQI = clamp(Base + Slope·SNRdB + N(0,NoiseSigma), Min, Max): a linear
	// ramp through the grey region that saturates at Max — the saturation is
	// what blinds LQI to burst losses (Figure 3).
	Base       float64
	Slope      float64
	NoiseSigma float64
	Min, Max   float64
	// WhiteLQI is the white-bit threshold: packets whose synthesized LQI
	// meets it are flagged "channel was clean during this packet".
	WhiteLQI uint8
}

// DefaultLQIParams matches the CC2420's observed behaviour: LQI saturates
// at ~110 already around 4 dB SNR — barely above the reception waterfall —
// and carries substantial per-packet variance below. The early saturation
// is the crux of the paper's Figure 3: every link whose good-phase SNR
// clears ~4 dB shows perfect LQI on the packets that arrive, regardless of
// how many packets never arrive at all (bursty links, asymmetric links).
func DefaultLQIParams() LQIParams {
	return LQIParams{
		Base:       78,
		Slope:      10,
		NoiseSigma: 3.0,
		Min:        40,
		Max:        110,
		WhiteLQI:   100,
	}
}

// Synthesize produces the LQI byte and white bit for a packet received at
// the given SNR.
func (p LQIParams) Synthesize(snrDB float64, rng *sim.Rand) (lqi uint8, white bool) {
	v := p.Base + p.Slope*snrDB + rng.Normal(0, p.NoiseSigma)
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	lqi = uint8(v + 0.5)
	return lqi, lqi >= p.WhiteLQI
}
