package packet

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame drives arbitrary bytes through the MAC frame decoder —
// the radio receive path decodes every frame it hears, so it must never
// panic, and anything it accepts must re-encode to the identical bytes
// (decode is the inverse of encode on the accepted set).
func FuzzDecodeFrame(f *testing.F) {
	seed := Frame{Type: TypeData, AckRequest: true, Seq: 7, Src: 3, Dst: 9, Payload: []byte("hello")}
	enc, err := seed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, FrameHeaderLen+FrameTrailerLen))
	corrupt := append([]byte(nil), enc...)
	corrupt[len(corrupt)-1] ^= 0xFF // CRC
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// The decoder aliases nothing: mutating the input must not reach
		// the decoded frame.
		if len(data) > 0 {
			data[0] ^= 0xFF
		}
		if len(fr.Payload) > MaxPayload {
			// Accepted but not re-encodable; the MAC never builds such
			// frames, the decoder tolerates them.
			return
		}
		enc, err := fr.Encode()
		if err != nil {
			t.Fatalf("accepted frame did not re-encode: %v", err)
		}
		if len(data) > 0 {
			data[0] ^= 0xFF
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not inverse:\n in  %x\n out %x", data, enc)
		}
	})
}

// FuzzDecodeLEFrame does the same for the link-estimation envelope nested
// inside beacon payloads, including the reusable-scratch decoder: decoding
// into a dirty LEFrame must behave exactly like decoding into a fresh one.
func FuzzDecodeLEFrame(f *testing.F) {
	seed := LEFrame{Seq: 99, NetPayload: []byte{1, 2, 3},
		Entries: []LinkEntry{{Addr: 4, InQuality: 200}, {Addr: 7, InQuality: 31}}}
	enc, err := seed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, freshErr := DecodeLEFrame(data)

		dirty := LEFrame{NetPayload: []byte{9}, Entries: make([]LinkEntry, 3, 16)}
		dirtyErr := DecodeLEFrameInto(&dirty, data)
		if (freshErr == nil) != (dirtyErr == nil) {
			t.Fatalf("fresh err %v vs scratch err %v", freshErr, dirtyErr)
		}
		if freshErr != nil {
			if !errors.Is(freshErr, ErrShortHeader) && !errors.Is(freshErr, ErrBadLength) {
				t.Fatalf("untyped decode error: %v", freshErr)
			}
			return
		}
		if fresh.Seq != dirty.Seq || !bytes.Equal(fresh.NetPayload, dirty.NetPayload) ||
			len(fresh.Entries) != len(dirty.Entries) {
			t.Fatalf("scratch decode diverged from fresh decode")
		}
		for i := range fresh.Entries {
			if fresh.Entries[i] != dirty.Entries[i] {
				t.Fatalf("entry %d: %+v vs %+v", i, fresh.Entries[i], dirty.Entries[i])
			}
		}
		if len(fresh.Entries) > MaxLinkEntries {
			return // tolerated on decode, never produced by Encode
		}
		enc, err := fresh.Encode()
		if err != nil {
			t.Fatalf("accepted envelope did not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not inverse:\n in  %x\n out %x", data, enc)
		}
	})
}
