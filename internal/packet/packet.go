// Package packet defines the wire formats used by every layer of the stack:
// the 802.15.4-style MAC frame, the link-estimation (layer 2.5) header and
// footer, CTP's data and routing frames, and MultiHopLQI's beacon and data
// frames. All frames have explicit binary encodings (big endian) with a
// CRC-16/CCITT trailer, and every format round-trips through
// Encode/Decode — the frames really do cross the simulated air as bytes.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is a link-layer node address.
type Addr uint16

// Broadcast is the all-nodes destination address.
const Broadcast Addr = 0xFFFF

// None is the distinguished "no address" value (e.g. no parent selected).
const None Addr = 0xFFFE

// String formats an address, with the two sentinels named.
func (a Addr) String() string {
	switch a {
	case Broadcast:
		return "bcast"
	case None:
		return "none"
	default:
		return fmt.Sprintf("%d", uint16(a))
	}
}

// FrameType discriminates MAC frames.
type FrameType uint8

// Frame types.
const (
	TypeData   FrameType = 1 // unicast network-layer data
	TypeAck    FrameType = 2 // link-layer acknowledgment
	TypeBeacon FrameType = 3 // broadcast routing/estimation beacon
)

func (t FrameType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypeBeacon:
		return "beacon"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Frame header flag bits.
const (
	flagAckRequest = 1 << 0
)

// Frame is the MAC-layer frame.
type Frame struct {
	Type       FrameType
	AckRequest bool
	Seq        uint8 // link-layer sequence number, matches acks to data
	Src, Dst   Addr
	Payload    []byte
}

// Frame layout: Type(1) Flags(1) Seq(1) Src(2) Dst(2) PayloadLen(2) | payload | CRC(2).
const (
	FrameHeaderLen  = 9
	FrameTrailerLen = 2
	// MaxPayload keeps frames within the 127-byte 802.15.4 PSDU.
	MaxPayload = 116
	// AckFrameLen is the encoded size of an acknowledgment frame.
	AckFrameLen = FrameHeaderLen + FrameTrailerLen
)

// Errors returned by decoders.
var (
	ErrShortFrame  = errors.New("packet: frame too short")
	ErrBadCRC      = errors.New("packet: CRC mismatch")
	ErrBadLength   = errors.New("packet: length field inconsistent")
	ErrBadType     = errors.New("packet: unknown frame type")
	ErrTooLong     = errors.New("packet: payload exceeds maximum")
	ErrShortHeader = errors.New("packet: payload header truncated")
)

// EncodedLen returns the on-air byte count of the frame.
func (f *Frame) EncodedLen() int { return FrameHeaderLen + len(f.Payload) + FrameTrailerLen }

// Encode serializes the frame, appending a CRC-16 over header and payload.
func (f *Frame) Encode() ([]byte, error) {
	buf := make([]byte, f.EncodedLen())
	if err := f.EncodeTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendTo serializes the frame onto dst and returns the extended slice —
// the steady-state encoder: a caller that keeps the returned slice as its
// scratch buffer (f.AppendTo(buf[:0])) encodes without allocating once
// the buffer has grown to its working size.
func (f *Frame) AppendTo(dst []byte) ([]byte, error) {
	n := len(dst)
	dst = appendZeros(dst, f.EncodedLen())
	if err := f.EncodeTo(dst[n:]); err != nil {
		return dst[:n], err
	}
	return dst, nil
}

// appendZeros extends dst by n writable bytes, reusing capacity.
func appendZeros(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	return append(dst, make([]byte, n)...)
}

// EncodeTo serializes the frame into buf, which must be exactly
// EncodedLen() bytes. It writes the same bytes Encode returns; callers
// with a reusable buffer (the MAC's pooled acks) use it to serialize
// without allocating.
func (f *Frame) EncodeTo(buf []byte) error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLong, len(f.Payload))
	}
	if len(buf) != f.EncodedLen() {
		return fmt.Errorf("packet: EncodeTo buffer is %d bytes, frame needs %d", len(buf), f.EncodedLen())
	}
	buf[0] = byte(f.Type)
	buf[1] = 0 // buf may be reused; every byte must be written, not OR'd
	if f.AckRequest {
		buf[1] = flagAckRequest
	}
	buf[2] = f.Seq
	binary.BigEndian.PutUint16(buf[3:], uint16(f.Src))
	binary.BigEndian.PutUint16(buf[5:], uint16(f.Dst))
	binary.BigEndian.PutUint16(buf[7:], uint16(len(f.Payload)))
	copy(buf[FrameHeaderLen:], f.Payload)
	crc := CRC16(buf[:len(buf)-FrameTrailerLen])
	binary.BigEndian.PutUint16(buf[len(buf)-FrameTrailerLen:], crc)
	return nil
}

// DecodeFrame parses and validates an encoded frame. The payload is copied;
// the result does not alias data.
func DecodeFrame(data []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeFrameInto(f, data); err != nil {
		return nil, err
	}
	if len(f.Payload) > 0 {
		p := make([]byte, len(f.Payload))
		copy(p, f.Payload)
		f.Payload = p
	}
	return f, nil
}

// DecodeFrameInto parses and validates an encoded frame into f without
// allocating: f.Payload aliases data, so the caller must treat it as
// immutable and must not retain it past data's lifetime. This is the MAC
// receive path's decoder — radios decode every frame they hear.
func DecodeFrameInto(f *Frame, data []byte) error {
	if len(data) < FrameHeaderLen+FrameTrailerLen {
		return ErrShortFrame
	}
	wantCRC := binary.BigEndian.Uint16(data[len(data)-FrameTrailerLen:])
	if CRC16(data[:len(data)-FrameTrailerLen]) != wantCRC {
		return ErrBadCRC
	}
	*f = Frame{
		Type:       FrameType(data[0]),
		AckRequest: data[1]&flagAckRequest != 0,
		Seq:        data[2],
		Src:        Addr(binary.BigEndian.Uint16(data[3:])),
		Dst:        Addr(binary.BigEndian.Uint16(data[5:])),
	}
	switch f.Type {
	case TypeData, TypeAck, TypeBeacon:
	default:
		return fmt.Errorf("%w: %d", ErrBadType, data[0])
	}
	plen := int(binary.BigEndian.Uint16(data[7:]))
	if FrameHeaderLen+plen+FrameTrailerLen != len(data) {
		return fmt.Errorf("%w: header says %d, frame holds %d",
			ErrBadLength, plen, len(data)-FrameHeaderLen-FrameTrailerLen)
	}
	if plen > 0 {
		f.Payload = data[FrameHeaderLen : FrameHeaderLen+plen]
	}
	return nil
}

// FrameDst peeks the destination address of an encoded frame without
// validating it. ok is false when data is too short to be any frame.
// Receivers use this to discard overheard traffic addressed elsewhere
// before paying for CRC validation and a full decode.
func FrameDst(data []byte) (dst Addr, ok bool) {
	if len(data) < FrameHeaderLen+FrameTrailerLen {
		return 0, false
	}
	return Addr(binary.BigEndian.Uint16(data[5:])), true
}

// NewAck builds the acknowledgment frame for a received frame.
func NewAck(of *Frame, acker Addr) *Frame {
	return &Frame{Type: TypeAck, Seq: of.Seq, Src: acker, Dst: of.Src}
}

// crc16Table is the byte-at-a-time lookup table for CRC-16/CCITT
// (polynomial 0x1021). Entry i is the CRC state transition for input byte i.
var crc16Table = func() (t [256]uint16) {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

// crc16Slices extends crc16Table for slicing-by-8: crc16Slices[k][b] is the
// CRC state transition for byte b followed by k zero bytes, so eight input
// bytes resolve through eight independent table lookups per iteration.
// Algebraically identical to the byte-at-a-time loop (CRC is linear over
// GF(2)), hence bit-identical output — certified by TestCRC16SlicingMatchesBitwise.
var crc16Slices = func() (t [8][256]uint16) {
	t[0] = crc16Table
	for k := 1; k < 8; k++ {
		for b := 0; b < 256; b++ {
			c := t[k-1][b]
			t[k][b] = c<<8 ^ crc16Table[byte(c>>8)]
		}
	}
	return t
}()

// CRC16 computes CRC-16/CCITT (polynomial 0x1021, init 0xFFFF) over data,
// eight bytes per step (slicing-by-8) with a byte-at-a-time tail.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for len(data) >= 8 {
		crc = crc16Slices[7][byte(crc>>8)^data[0]] ^
			crc16Slices[6][byte(crc)^data[1]] ^
			crc16Slices[5][data[2]] ^
			crc16Slices[4][data[3]] ^
			crc16Slices[3][data[4]] ^
			crc16Slices[2][data[5]] ^
			crc16Slices[1][data[6]] ^
			crc16Slices[0][data[7]]
		data = data[8:]
	}
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}
