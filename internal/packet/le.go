package packet

import "encoding/binary"

// LEFrame is the link-estimation layer (layer 2.5) envelope the 4B
// estimator wraps around network-layer broadcasts, exactly as §3.3
// describes: a header carrying the beacon sequence number (receivers use
// the gaps to measure beacon reception rate) and a footer of link
// information entries; the network layer's own payload rides in between.
type LEFrame struct {
	Seq        uint16      // estimator beacon sequence number
	Entries    []LinkEntry // footer: a subset of the sender's link table
	NetPayload []byte      // the network layer's beacon
}

// LinkEntry advertises the sender's inbound reception quality from a
// neighbor, quantized to 1/255 units. The original broadcast-ETX estimator
// needs these to form bidirectional estimates; 4B sends them too but only
// uses them for bootstrapping.
type LinkEntry struct {
	Addr      Addr
	InQuality uint8 // PRR * 255
}

// LE layout: Seq(2) NumEntries(1) NetLen(1) | net payload | entries(3 each).
const (
	leHeaderLen  = 4
	linkEntryLen = 3
	// MaxLinkEntries bounds the footer so beacons fit the 802.15.4 PSDU.
	MaxLinkEntries = 15
)

// EncodedLen returns the serialized size.
func (l *LEFrame) EncodedLen() int {
	return leHeaderLen + len(l.NetPayload) + len(l.Entries)*linkEntryLen
}

// Encode serializes the LE envelope.
func (l *LEFrame) Encode() ([]byte, error) {
	return l.AppendTo(nil)
}

// AppendTo serializes the LE envelope onto dst and returns the extended
// slice, reusing dst's capacity — the allocation-free encoder for the
// beacon send path.
func (l *LEFrame) AppendTo(dst []byte) ([]byte, error) {
	if len(l.Entries) > MaxLinkEntries {
		return dst, ErrTooLong
	}
	if len(l.NetPayload) > 255 {
		return dst, ErrTooLong
	}
	start := len(dst)
	if cap(dst)-start >= l.EncodedLen() {
		dst = dst[:start+l.EncodedLen()]
	} else {
		dst = append(dst, make([]byte, l.EncodedLen())...)
	}
	buf := dst[start:]
	binary.BigEndian.PutUint16(buf[0:], l.Seq)
	buf[2] = byte(len(l.Entries))
	buf[3] = byte(len(l.NetPayload))
	copy(buf[leHeaderLen:], l.NetPayload)
	off := leHeaderLen + len(l.NetPayload)
	for _, e := range l.Entries {
		binary.BigEndian.PutUint16(buf[off:], uint16(e.Addr))
		buf[off+2] = e.InQuality
		off += linkEntryLen
	}
	return dst, nil
}

// DecodeLEFrame parses an LE envelope. The payload is copied; the result
// does not alias data.
func DecodeLEFrame(data []byte) (*LEFrame, error) {
	l := &LEFrame{}
	if err := DecodeLEFrameInto(l, data); err != nil {
		return nil, err
	}
	if len(l.NetPayload) > 0 {
		p := make([]byte, len(l.NetPayload))
		copy(p, l.NetPayload)
		l.NetPayload = p
	}
	return l, nil
}

// DecodeLEFrameInto parses an LE envelope into l, reusing l's Entries
// backing array and aliasing data for NetPayload — the zero-allocation
// decoder for the beacon receive path. The caller must treat NetPayload as
// immutable and must not retain it past data's lifetime.
func DecodeLEFrameInto(l *LEFrame, data []byte) error {
	if len(data) < leHeaderLen {
		return ErrShortHeader
	}
	n := int(data[2])
	netLen := int(data[3])
	if len(data) != leHeaderLen+netLen+n*linkEntryLen {
		return ErrBadLength
	}
	l.Seq = binary.BigEndian.Uint16(data[0:])
	l.NetPayload = nil
	if netLen > 0 {
		l.NetPayload = data[leHeaderLen : leHeaderLen+netLen]
	}
	l.Entries = l.Entries[:0]
	off := leHeaderLen + netLen
	for i := 0; i < n; i++ {
		l.Entries = append(l.Entries, LinkEntry{
			Addr:      Addr(binary.BigEndian.Uint16(data[off:])),
			InQuality: data[off+2],
		})
		off += linkEntryLen
	}
	return nil
}
