package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Type:       TypeData,
		AckRequest: true,
		Seq:        42,
		Src:        7,
		Dst:        12,
		Payload:    []byte("hello collection"),
	}
	enc, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != f.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(enc), f.EncodedLen())
	}
	got, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", f, got)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ uint8, ack bool, seq uint8, src, dst uint16, payload []byte) bool {
		ft := FrameType(typ%3) + 1
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := &Frame{Type: ft, AckRequest: ack, Seq: seq, Src: Addr(src), Dst: Addr(dst), Payload: payload}
		enc, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeFrame(enc)
		if err != nil {
			return false
		}
		if len(in.Payload) == 0 {
			return out.Payload == nil && in.Type == out.Type && in.Seq == out.Seq &&
				in.Src == out.Src && in.Dst == out.Dst && in.AckRequest == out.AckRequest
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	f := &Frame{Type: TypeData, Seq: 1, Src: 1, Dst: 2, Payload: []byte("payload")}
	enc, _ := f.Encode()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		bad := bytes.Clone(enc)
		i := rng.Intn(len(bad))
		bit := byte(1) << rng.Intn(8)
		bad[i] ^= bit
		if _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("single-bit corruption at byte %d bit %d not detected", i, bit)
		}
	}
}

func TestFrameTooLongRejected(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Encode(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeFrame(nil); !errors.Is(err, ErrShortFrame) {
		t.Errorf("nil: %v, want ErrShortFrame", err)
	}
	if _, err := DecodeFrame(make([]byte, 5)); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short: %v, want ErrShortFrame", err)
	}
	// Valid CRC but inconsistent length field.
	f := &Frame{Type: TypeData, Payload: []byte("abc")}
	enc, _ := f.Encode()
	enc[8] = 200 // length low byte
	crc := CRC16(enc[:len(enc)-2])
	enc[len(enc)-2] = byte(crc >> 8)
	enc[len(enc)-1] = byte(crc)
	if _, err := DecodeFrame(enc); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: %v, want ErrBadLength", err)
	}
	// Valid CRC but unknown type.
	f2 := &Frame{Type: TypeData}
	enc2, _ := f2.Encode()
	enc2[0] = 99
	crc2 := CRC16(enc2[:len(enc2)-2])
	enc2[len(enc2)-2] = byte(crc2 >> 8)
	enc2[len(enc2)-1] = byte(crc2)
	if _, err := DecodeFrame(enc2); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: %v, want ErrBadType", err)
	}
}

func TestNewAckMatchesFrame(t *testing.T) {
	f := &Frame{Type: TypeData, AckRequest: true, Seq: 77, Src: 3, Dst: 9}
	ack := NewAck(f, 9)
	if ack.Type != TypeAck || ack.Seq != 77 || ack.Src != 9 || ack.Dst != 3 {
		t.Fatalf("bad ack: %+v", ack)
	}
	enc, err := ack.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != AckFrameLen {
		t.Fatalf("ack frame length %d, want %d", len(enc), AckFrameLen)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#x, want 0x29B1", got)
	}
}

// crc16Bitwise is the definitional CRC-16/CCITT: one bit at a time, no
// tables — the reference the slicing-by-8 production path is certified
// against.
func crc16Bitwise(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

func TestCRC16SlicingMatchesBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Every length 0..64 crosses all slicing tail sizes; contents random.
	for size := 0; size <= 64; size++ {
		for trial := 0; trial < 8; trial++ {
			data := make([]byte, size)
			rng.Read(data)
			if got, want := CRC16(data), crc16Bitwise(data); got != want {
				t.Fatalf("CRC16(len=%d) = %#x, bitwise reference %#x", size, got, want)
			}
		}
	}
}

func TestAddrString(t *testing.T) {
	if Broadcast.String() != "bcast" || None.String() != "none" || Addr(5).String() != "5" {
		t.Fatal("Addr.String formatting wrong")
	}
}

func TestLEFrameRoundTrip(t *testing.T) {
	l := &LEFrame{
		Seq:        1234,
		Entries:    []LinkEntry{{Addr: 3, InQuality: 200}, {Addr: 9, InQuality: 255}},
		NetPayload: []byte{1, 2, 3, 4, 5},
	}
	enc, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLEFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", l, got)
	}
}

func TestLEFrameRoundTripProperty(t *testing.T) {
	f := func(seq uint16, entries []uint16, quals []uint8, payload []byte) bool {
		if len(entries) > MaxLinkEntries {
			entries = entries[:MaxLinkEntries]
		}
		if len(payload) > 100 {
			payload = payload[:100]
		}
		in := &LEFrame{Seq: seq}
		for i, a := range entries {
			q := uint8(0)
			if i < len(quals) {
				q = quals[i]
			}
			in.Entries = append(in.Entries, LinkEntry{Addr: Addr(a), InQuality: q})
		}
		if len(payload) > 0 {
			in.NetPayload = bytes.Clone(payload)
		}
		enc, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeLEFrame(enc)
		if err != nil {
			return false
		}
		return out.Seq == in.Seq &&
			reflect.DeepEqual(out.Entries, in.Entries) &&
			bytes.Equal(out.NetPayload, in.NetPayload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLEFrameLimits(t *testing.T) {
	l := &LEFrame{Entries: make([]LinkEntry, MaxLinkEntries+1)}
	if _, err := l.Encode(); !errors.Is(err, ErrTooLong) {
		t.Fatal("oversized footer accepted")
	}
	if _, err := DecodeLEFrame([]byte{0, 0}); !errors.Is(err, ErrShortHeader) {
		t.Fatal("short LE header accepted")
	}
	if _, err := DecodeLEFrame([]byte{0, 0, 5, 0}); !errors.Is(err, ErrBadLength) {
		t.Fatal("truncated footer accepted")
	}
}

func TestCTPDataRoundTrip(t *testing.T) {
	d := &CTPData{
		Options:   CTPOptPull | CTPOptCongested,
		THL:       3,
		ETX:       57,
		Origin:    21,
		OriginSeq: 250,
		CollectID: 1,
		Data:      []byte("reading=42"),
	}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCTPData(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", d, got)
	}
}

func TestCTPDataProperty(t *testing.T) {
	f := func(opt, thl uint8, etx uint16, origin uint16, seq, cid uint8, data []byte) bool {
		if len(data) > MaxPayload-8 {
			data = data[:MaxPayload-8]
		}
		in := &CTPData{Options: opt, THL: thl, ETX: etx, Origin: Addr(origin), OriginSeq: seq, CollectID: cid}
		if len(data) > 0 {
			in.Data = bytes.Clone(data)
		}
		enc, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeCTPData(enc)
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCTPBeaconRoundTrip(t *testing.T) {
	f := func(opt uint8, parent, etx uint16) bool {
		in := &CTPBeacon{Options: opt, Parent: Addr(parent), ETX: etx}
		enc, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeCTPBeacon(enc)
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLQIBeaconRoundTrip(t *testing.T) {
	f := func(parent, cost uint16, hops uint8, seq uint16) bool {
		in := &LQIBeacon{Parent: Addr(parent), Cost: cost, HopCount: hops, Seq: seq}
		enc, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeLQIBeacon(enc)
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLQIDataRoundTrip(t *testing.T) {
	f := func(origin, seq uint16, hops uint8, data []byte) bool {
		if len(data) > MaxPayload-5 {
			data = data[:MaxPayload-5]
		}
		in := &LQIData{Origin: Addr(origin), OriginSeq: seq, HopCount: hops}
		if len(data) > 0 {
			in.Data = bytes.Clone(data)
		}
		enc, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeLQIData(enc)
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedEncodingCTPBeaconInsideLEInsideFrame(t *testing.T) {
	// Full beacon path: CTP beacon -> LE envelope -> MAC frame -> air bytes.
	cb := &CTPBeacon{Options: CTPOptPull, Parent: 4, ETX: 23}
	cbBytes, err := cb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	le := &LEFrame{Seq: 99, NetPayload: cbBytes, Entries: []LinkEntry{{Addr: 4, InQuality: 230}}}
	leBytes, err := le.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f := &Frame{Type: TypeBeacon, Seq: 5, Src: 2, Dst: Broadcast, Payload: leBytes}
	air, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}

	gotF, err := DecodeFrame(air)
	if err != nil {
		t.Fatal(err)
	}
	gotLE, err := DecodeLEFrame(gotF.Payload)
	if err != nil {
		t.Fatal(err)
	}
	gotCB, err := DecodeCTPBeacon(gotLE.NetPayload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cb, gotCB) {
		t.Fatalf("nested round trip mismatch: %+v vs %+v", cb, gotCB)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	f := &Frame{Type: TypeData, AckRequest: true, Seq: 1, Src: 2, Dst: 3, Payload: make([]byte, 40)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	f := &Frame{Type: TypeData, AckRequest: true, Seq: 1, Src: 2, Dst: 3, Payload: make([]byte, 40)}
	enc, _ := f.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(enc); err != nil {
			b.Fatal(err)
		}
	}
}
