package packet

import "encoding/binary"

// LQIBeacon is the MultiHopLQI routing beacon: the sender advertises its
// accumulated LQI-derived path cost and hop count. Unlike CTP beacons it
// does not travel inside an LE envelope — MultiHopLQI has no link
// estimation layer; receivers judge the link purely from the LQI of the
// beacon itself.
type LQIBeacon struct {
	Parent   Addr
	Cost     uint16 // accumulated LQI-derived cost
	HopCount uint8
	Seq      uint16
}

const lqiBeaconLen = 7

// Encode serializes the beacon.
func (b *LQIBeacon) Encode() ([]byte, error) {
	buf := make([]byte, lqiBeaconLen)
	binary.BigEndian.PutUint16(buf[0:], uint16(b.Parent))
	binary.BigEndian.PutUint16(buf[2:], b.Cost)
	buf[4] = b.HopCount
	binary.BigEndian.PutUint16(buf[5:], b.Seq)
	return buf, nil
}

// DecodeLQIBeacon parses a beacon.
func DecodeLQIBeacon(data []byte) (*LQIBeacon, error) {
	if len(data) < lqiBeaconLen {
		return nil, ErrShortHeader
	}
	return &LQIBeacon{
		Parent:   Addr(binary.BigEndian.Uint16(data[0:])),
		Cost:     binary.BigEndian.Uint16(data[2:]),
		HopCount: data[4],
		Seq:      binary.BigEndian.Uint16(data[5:]),
	}, nil
}

// LQIData is MultiHopLQI's data frame header plus application payload.
type LQIData struct {
	Origin    Addr
	OriginSeq uint16
	HopCount  uint8
	Data      []byte
}

const lqiDataHeaderLen = 5

// EncodedLen returns the serialized size.
func (d *LQIData) EncodedLen() int { return lqiDataHeaderLen + len(d.Data) }

// Encode serializes the data header and payload.
func (d *LQIData) Encode() ([]byte, error) {
	if d.EncodedLen() > MaxPayload {
		return nil, ErrTooLong
	}
	buf := make([]byte, d.EncodedLen())
	binary.BigEndian.PutUint16(buf[0:], uint16(d.Origin))
	binary.BigEndian.PutUint16(buf[2:], d.OriginSeq)
	buf[4] = d.HopCount
	copy(buf[lqiDataHeaderLen:], d.Data)
	return buf, nil
}

// DecodeLQIData parses a data frame payload.
func DecodeLQIData(data []byte) (*LQIData, error) {
	if len(data) < lqiDataHeaderLen {
		return nil, ErrShortHeader
	}
	d := &LQIData{
		Origin:    Addr(binary.BigEndian.Uint16(data[0:])),
		OriginSeq: binary.BigEndian.Uint16(data[2:]),
		HopCount:  data[4],
	}
	if rest := data[lqiDataHeaderLen:]; len(rest) > 0 {
		d.Data = make([]byte, len(rest))
		copy(d.Data, rest)
	}
	return d, nil
}
