package packet

import "encoding/binary"

// CTP frame options (shared by data and routing frames, per TEP 123).
const (
	CTPOptPull      = 1 << 0 // P: sender requests routing information
	CTPOptCongested = 1 << 1 // C: sender's forwarding queue is filling
)

// CTPData is the CTP data-frame header plus application payload.
type CTPData struct {
	Options   uint8
	THL       uint8  // time-has-lived, incremented per hop (loop damping)
	ETX       uint16 // sender's path cost in 1/10 ETX units (loop detection)
	Origin    Addr
	OriginSeq uint8
	CollectID uint8 // collection service instance
	Data      []byte
}

const ctpDataHeaderLen = 8

// EncodedLen returns the serialized size.
func (d *CTPData) EncodedLen() int { return ctpDataHeaderLen + len(d.Data) }

// Encode serializes the CTP data header and payload.
func (d *CTPData) Encode() ([]byte, error) {
	return d.AppendTo(nil)
}

// AppendTo serializes the CTP data frame onto dst and returns the
// extended slice, reusing dst's capacity — the allocation-free encoder
// for the forwarding path.
func (d *CTPData) AppendTo(dst []byte) ([]byte, error) {
	if d.EncodedLen() > MaxPayload {
		return dst, ErrTooLong
	}
	start := len(dst)
	if cap(dst)-start >= d.EncodedLen() {
		dst = dst[:start+d.EncodedLen()]
	} else {
		dst = append(dst, make([]byte, d.EncodedLen())...)
	}
	buf := dst[start:]
	buf[0] = d.Options
	buf[1] = d.THL
	binary.BigEndian.PutUint16(buf[2:], d.ETX)
	binary.BigEndian.PutUint16(buf[4:], uint16(d.Origin))
	buf[6] = d.OriginSeq
	buf[7] = d.CollectID
	copy(buf[ctpDataHeaderLen:], d.Data)
	return dst, nil
}

// DecodeCTPData parses a CTP data frame payload. The payload is copied;
// the result does not alias data.
func DecodeCTPData(data []byte) (*CTPData, error) {
	d := &CTPData{}
	if err := DecodeCTPDataInto(d, data); err != nil {
		return nil, err
	}
	if len(d.Data) > 0 {
		p := make([]byte, len(d.Data))
		copy(p, d.Data)
		d.Data = p
	}
	return d, nil
}

// DecodeCTPDataInto parses a CTP data frame payload into d without
// allocating: d.Data aliases data, so the caller must treat it as
// immutable and must not retain it past data's lifetime. This is the
// forwarding receive path's decoder.
func DecodeCTPDataInto(d *CTPData, data []byte) error {
	if len(data) < ctpDataHeaderLen {
		return ErrShortHeader
	}
	*d = CTPData{
		Options:   data[0],
		THL:       data[1],
		ETX:       binary.BigEndian.Uint16(data[2:]),
		Origin:    Addr(binary.BigEndian.Uint16(data[4:])),
		OriginSeq: data[6],
		CollectID: data[7],
	}
	if rest := data[ctpDataHeaderLen:]; len(rest) > 0 {
		d.Data = rest
	}
	return nil
}

// CTPBeacon is the CTP routing frame: the sender advertises its current
// parent and path cost. It travels inside the LE envelope.
type CTPBeacon struct {
	Options uint8
	Parent  Addr
	ETX     uint16 // path cost in 1/10 ETX units
}

const ctpBeaconLen = 5

// Encode serializes the routing frame.
func (b *CTPBeacon) Encode() ([]byte, error) {
	return b.AppendTo(nil), nil
}

// AppendTo serializes the routing frame onto dst and returns the extended
// slice, reusing dst's capacity. CTPBeacon serialization cannot fail.
func (b *CTPBeacon) AppendTo(dst []byte) []byte {
	start := len(dst)
	if cap(dst)-start >= ctpBeaconLen {
		dst = dst[:start+ctpBeaconLen]
	} else {
		dst = append(dst, make([]byte, ctpBeaconLen)...)
	}
	buf := dst[start:]
	buf[0] = b.Options
	binary.BigEndian.PutUint16(buf[1:], uint16(b.Parent))
	binary.BigEndian.PutUint16(buf[3:], b.ETX)
	return dst
}

// DecodeCTPBeacon parses a routing frame.
func DecodeCTPBeacon(data []byte) (*CTPBeacon, error) {
	if len(data) < ctpBeaconLen {
		return nil, ErrShortHeader
	}
	return &CTPBeacon{
		Options: data[0],
		Parent:  Addr(binary.BigEndian.Uint16(data[1:])),
		ETX:     binary.BigEndian.Uint16(data[3:]),
	}, nil
}
