package trace

import (
	"bytes"
	"math"
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
)

// beaconNet builds a 2-node medium where node 0 broadcasts periodically.
func beaconNet(seed uint64, spacing float64) (*sim.Simulator, *phy.Medium) {
	clock := sim.New(seed)
	p := phy.DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB = 0
	p.PacketJitterSigmaDB = 0
	dist := [][]float64{{0, spacing}, {spacing, 0}}
	seeds := sim.NewSeedSpace(seed)
	ch := phy.NewChannel(dist, nil, p, seeds)
	m := phy.NewMedium(clock, ch, phy.DefaultRadioParams(), phy.DefaultLQIParams(), seeds)
	return clock, m
}

func broadcastLoop(clock *sim.Simulator, m *phy.Medium, from int, period sim.Time) {
	f := &packet.Frame{
		Type:    packet.TypeBeacon,
		Src:     packet.Addr(from),
		Dst:     packet.Broadcast,
		Payload: make([]byte, 30), // realistic beacon length
	}
	enc, err := f.Encode()
	if err != nil {
		panic(err)
	}
	clock.Every(period, period, func() {
		if !m.Radio(from).Transmitting() {
			m.Radio(from).Transmit(enc)
		}
	})
}

func TestRecorderCapturesCleanLink(t *testing.T) {
	clock, m := beaconNet(1, 10)
	rec := NewRecorder(clock, m, 10*sim.Second, "clean")
	broadcastLoop(clock, m, 0, sim.Second)
	// Run past the minute boundary so the last beacon's reception (airtime
	// later) is dispatched before the trace is finalized.
	clock.RunUntil(60*sim.Second + 600*sim.Millisecond)
	tr := rec.Finalize()

	lt := tr.Link(0, 1)
	if lt == nil {
		t.Fatal("link 0->1 not recorded")
	}
	if len(lt.Samples) < 5 {
		t.Fatalf("only %d samples", len(lt.Samples))
	}
	for _, s := range lt.Samples {
		if s.Sent == 0 {
			continue
		}
		if prr := s.PRR(); prr < 0.99 {
			t.Fatalf("clean 10 m link recorded PRR %.2f", prr)
		}
		if s.MeanLQI < 100 {
			t.Fatalf("clean link mean LQI %.1f", s.MeanLQI)
		}
	}
	if tr.Link(1, 0) != nil {
		t.Fatal("recorded a link with no traffic")
	}
}

func TestRecorderCapturesLossyLink(t *testing.T) {
	clock, m := beaconNet(2, 55) // grey region
	rec := NewRecorder(clock, m, 10*sim.Second, "grey")
	broadcastLoop(clock, m, 0, 200*sim.Millisecond)
	clock.RunUntil(2 * sim.Minute)
	tr := rec.Finalize()
	lt := tr.Link(0, 1)
	if lt == nil {
		t.Fatal("link not recorded")
	}
	var sent, rcvd int
	for _, s := range lt.Samples {
		sent += s.Sent
		rcvd += s.Rcvd
	}
	prr := float64(rcvd) / float64(sent)
	if prr < 0.02 || prr > 0.98 {
		t.Fatalf("grey link overall PRR %.3f, want intermediate", prr)
	}
}

func TestRecorderCountsUnicastOut(t *testing.T) {
	clock, m := beaconNet(3, 10)
	rec := NewRecorder(clock, m, 10*sim.Second, "unicast")
	f := &packet.Frame{Type: packet.TypeData, Src: 0, Dst: 1}
	enc, _ := f.Encode()
	clock.Every(sim.Second, sim.Second, func() {
		if !m.Radio(0).Transmitting() {
			m.Radio(0).Transmit(enc)
		}
	})
	clock.RunUntil(30 * sim.Second)
	if tr := rec.Finalize(); len(tr.Links) != 0 {
		t.Fatal("unicast traffic leaked into the broadcast trace")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	in := &Trace{
		Name:   "x",
		Window: 10 * sim.Second,
		Links: []LinkTrace{{From: 1, To: 2, Samples: []Sample{
			{At: 10 * sim.Second, Sent: 5, Rcvd: 4, MeanLQI: 104.5},
		}}},
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Window != in.Window || len(out.Links) != 1 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out.Links[0].Samples[0] != in.Links[0].Samples[0] {
		t.Fatal("sample mismatch")
	}
}

func TestReplayerImposesRecordedPRR(t *testing.T) {
	lt := &LinkTrace{From: 0, To: 1, Samples: []Sample{
		{At: 10 * sim.Second, Sent: 10, Rcvd: 10}, // clean window
		{At: 20 * sim.Second, Sent: 10, Rcvd: 3},  // bad window
	}}
	rp, err := NewReplayer(lt, 10*sim.Second, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	count := func(t0, t1 sim.Time) (lossy, total int) {
		for at := t0; at < t1; at += 10 * sim.Millisecond {
			total++
			if rp.ExtraLossDB(at) > 0 {
				lossy++
			}
		}
		return
	}
	lossyClean, totalClean := count(0, 10*sim.Second)
	if frac := float64(lossyClean) / float64(totalClean); frac > 0.02 {
		t.Fatalf("clean window lossy fraction %.3f", frac)
	}
	lossyBad, totalBad := count(10*sim.Second, 20*sim.Second)
	frac := float64(lossyBad) / float64(totalBad)
	if math.Abs(frac-0.7) > 0.06 {
		t.Fatalf("bad window lossy fraction %.3f, want ~0.7", frac)
	}
	// Past the last sample: the final window's PRR persists.
	lossyTail, totalTail := count(25*sim.Second, 30*sim.Second)
	if f := float64(lossyTail) / float64(totalTail); math.Abs(f-0.7) > 0.1 {
		t.Fatalf("tail lossy fraction %.3f, want ~0.7", f)
	}
}

func TestReplayerRejectsEmpty(t *testing.T) {
	if _, err := NewReplayer(&LinkTrace{}, sim.Second, sim.NewRand(1)); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := NewReplayer(nil, sim.Second, sim.NewRand(1)); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestReplayerSilentWindowIsNotLoss(t *testing.T) {
	lt := &LinkTrace{Samples: []Sample{{At: 10 * sim.Second, Sent: 0, Rcvd: 0}}}
	rp, err := NewReplayer(lt, 10*sim.Second, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	for at := sim.Time(0); at < 10*sim.Second; at += sim.Second {
		if rp.ExtraLossDB(at) != 0 {
			t.Fatal("silent window treated as lossy")
		}
	}
}

func TestRecorderReplayerEndToEnd(t *testing.T) {
	// Record a grey link, then replay it onto a clean link and verify the
	// replayed PRR matches the recording.
	clock, m := beaconNet(4, 55)
	rec := NewRecorder(clock, m, 5*sim.Second, "e2e")
	broadcastLoop(clock, m, 0, 100*sim.Millisecond)
	clock.RunUntil(2 * sim.Minute)
	tr := rec.Finalize()
	lt := tr.Link(0, 1)
	var sent, rcvd int
	for _, s := range lt.Samples {
		sent += s.Sent
		rcvd += s.Rcvd
	}
	recordedPRR := float64(rcvd) / float64(sent)

	// Replay onto a 10 m (perfect) link.
	clock2, m2 := beaconNet(5, 10)
	rp, err := NewReplayer(lt, 5*sim.Second, sim.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	// Install via the channel of the new medium.
	got := 0
	m2.Radio(1).OnReceive(func([]byte, phy.RxInfo) { got++ })
	sentCount := 0
	f := &packet.Frame{Type: packet.TypeBeacon, Src: 0, Dst: packet.Broadcast}
	enc, _ := f.Encode()
	clock2.Every(sim.Second, 100*sim.Millisecond, func() {
		if m2.Radio(0).Transmitting() {
			return
		}
		if rp.ExtraLossDB(clock2.Now()) == 0 {
			m2.Radio(0).Transmit(enc) // delivered: the 10 m link is clean
		}
		sentCount++
	})
	clock2.RunUntil(2 * sim.Minute)
	replayPRR := float64(got) / float64(sentCount)
	if math.Abs(replayPRR-recordedPRR) > 0.12 {
		t.Fatalf("replayed PRR %.3f vs recorded %.3f", replayPRR, recordedPRR)
	}
}
