// Package trace records and replays per-link reception behaviour,
// implementing the trace-driven simulation mode: a Recorder taps the medium
// and produces windowed PRR/LQI time series per directed link (the raw
// material of the paper's Figure 3), and a Replayer turns a recorded link
// series back into a channel modifier so experiments can be re-run against
// captured link dynamics.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// Sample is one measurement window of a directed link.
type Sample struct {
	At      sim.Time // window end
	Sent    int      // broadcast frames the transmitter put on air
	Rcvd    int      // of those, frames this receiver decoded
	MeanLQI float64  // mean LQI over received frames (0 if none)
}

// PRR returns the window's packet reception ratio (NaN-free: 0 when the
// sender was silent).
func (s Sample) PRR() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Rcvd) / float64(s.Sent)
}

// LinkTrace is the time series of one directed link.
type LinkTrace struct {
	From, To int
	Samples  []Sample
}

// Trace is a set of recorded link series.
type Trace struct {
	Name   string
	Window sim.Time
	Links  []LinkTrace

	// index maps (from,to) to a position in Links. It is built lazily on
	// the first Link call (traces arrive both from recorders and from
	// ReadJSON, so construction cannot own it) and rebuilt if Links was
	// meanwhile appended to; indexed remembers how many entries it covers.
	index   map[linkKey]int
	indexed int
}

// Link returns the series for the directed link (from, to), or nil.
// Lookups are O(1) after the first call builds the index — replayed
// experiments resolve every directed pair of a topology, which made the
// previous linear scan O(links²) per setup.
func (t *Trace) Link(from, to int) *LinkTrace {
	if t.index == nil || t.indexed != len(t.Links) {
		t.index = make(map[linkKey]int, len(t.Links))
		for i := range t.Links {
			t.index[linkKey{t.Links[i].From, t.Links[i].To}] = i
		}
		t.indexed = len(t.Links)
	}
	if i, ok := t.index[linkKey{from, to}]; ok {
		return &t.Links[i]
	}
	return nil
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON deserializes a trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// Recorder taps a medium and accumulates windowed per-link broadcast
// reception statistics. Only broadcast (beacon) frames are counted: they
// reach every in-range receiver, so sent-counts are comparable across
// links; unicast sent-counts would only be meaningful for the addressee.
type Recorder struct {
	clock  *sim.Simulator
	window sim.Time
	name   string

	links map[linkKey]*linkAcc
	sent  []int // broadcast frames per transmitter in the current window
	prev  []int // carried totals at window roll
}

type linkKey struct{ from, to int }

type linkAcc struct {
	rcvd   int
	lqiSum float64
	series LinkTrace
}

// NewRecorder attaches a recorder to the medium, sampling every window.
func NewRecorder(clock *sim.Simulator, m *phy.Medium, window sim.Time, name string) *Recorder {
	r := &Recorder{
		clock:  clock,
		window: window,
		name:   name,
		links:  make(map[linkKey]*linkAcc),
		sent:   make([]int, m.N()),
	}
	m.OnTransmit(func(from int, data []byte) {
		f, err := packet.DecodeFrame(data)
		if err != nil || f.Dst != packet.Broadcast {
			return
		}
		r.sent[from]++
	})
	for i := 0; i < m.N(); i++ {
		to := i
		m.Radio(i).OnSnoop(func(data []byte, info phy.RxInfo) {
			f, err := packet.DecodeFrame(data)
			if err != nil || f.Dst != packet.Broadcast {
				return
			}
			r.note(int(f.Src), to, info.LQI)
		})
	}
	clock.Every(window, window, r.roll)
	return r
}

// NewRecorderProbe attaches a recorder to the run's probe bus instead of
// tapping the medium directly: broadcast transmissions arrive as TxEvents,
// receptions as RxEvents. For broadcast (beacon) traffic the two taps see
// the same frames — the medium delivers every decodable broadcast to every
// in-range MAC, which is exactly what the bus re-emits — so a probe-fed
// recorder produces the identical Trace (pinned by test). n is the number
// of nodes (transmitter slots).
func NewRecorderProbe(clock *sim.Simulator, bus *probe.Bus, n int, window sim.Time, name string) *Recorder {
	r := &Recorder{
		clock:  clock,
		window: window,
		name:   name,
		links:  make(map[linkKey]*linkAcc),
		sent:   make([]int, n),
	}
	bus.Attach(recorderSink{r: r})
	clock.Every(window, window, r.roll)
	return r
}

// recorderSink adapts a Recorder to the probe bus (BaseSink supplies the
// no-ops for the events a trace does not consume).
type recorderSink struct {
	probe.BaseSink
	r *Recorder
}

// OnTx implements probe.Sink: broadcast frames on air count as sent.
func (s recorderSink) OnTx(ev probe.TxEvent) {
	if ev.Sent && ev.Broadcast() {
		s.r.sent[ev.Node]++
	}
}

// OnRx implements probe.Sink: broadcast receptions count toward the link.
func (s recorderSink) OnRx(ev probe.RxEvent) {
	if ev.Dest == packet.Broadcast {
		s.r.note(int(ev.Src), int(ev.Node), ev.LQI)
	}
}

func (r *Recorder) note(from, to int, lqi uint8) {
	k := linkKey{from, to}
	acc := r.links[k]
	if acc == nil {
		acc = &linkAcc{series: LinkTrace{From: from, To: to}}
		r.links[k] = acc
	}
	acc.rcvd++
	acc.lqiSum += float64(lqi)
}

// roll closes the current window into samples on every observed link.
func (r *Recorder) roll() {
	now := r.clock.Now()
	sentDelta := make([]int, len(r.sent))
	if r.prev == nil {
		r.prev = make([]int, len(r.sent))
	}
	for i := range r.sent {
		sentDelta[i] = r.sent[i] - r.prev[i]
		r.prev[i] = r.sent[i]
	}
	for k, acc := range r.links {
		sent := sentDelta[k.from]
		if sent == 0 && acc.rcvd == 0 {
			continue
		}
		s := Sample{At: now, Sent: sent, Rcvd: acc.rcvd}
		if acc.rcvd > 0 {
			s.MeanLQI = acc.lqiSum / float64(acc.rcvd)
		}
		acc.series.Samples = append(acc.series.Samples, s)
		acc.rcvd = 0
		acc.lqiSum = 0
	}
}

// Finalize closes the pending window and returns the assembled trace.
func (r *Recorder) Finalize() *Trace {
	r.roll()
	t := &Trace{Name: r.name, Window: r.window}
	for _, acc := range r.links {
		if len(acc.series.Samples) > 0 {
			t.Links = append(t.Links, acc.series)
		}
	}
	return t
}

// ErrEmptyTrace reports a replay request over an empty series.
var ErrEmptyTrace = errors.New("trace: empty link trace")

// Replayer drives a directed link from a recorded PRR series: at each
// packet it looks up the window covering the current time and draws the
// packet's fate from the recorded reception ratio, imposing either no loss
// or a killing attenuation. It implements phy.LinkModifier.
type Replayer struct {
	lt     *LinkTrace
	window sim.Time
	rng    *sim.Rand
	// KillLossDB is the attenuation applied to packets the trace says are
	// lost; large enough that reception is impossible.
	KillLossDB float64
}

// NewReplayer builds a modifier replaying lt (recorded with the given
// window length).
func NewReplayer(lt *LinkTrace, window sim.Time, rng *sim.Rand) (*Replayer, error) {
	if lt == nil || len(lt.Samples) == 0 {
		return nil, ErrEmptyTrace
	}
	return &Replayer{lt: lt, window: window, rng: rng, KillLossDB: 80}, nil
}

// ExtraLossDB implements phy.LinkModifier.
func (rp *Replayer) ExtraLossDB(t sim.Time) float64 {
	prr := rp.prrAt(t)
	if rp.rng.Bernoulli(prr) {
		return 0
	}
	return rp.KillLossDB
}

func (rp *Replayer) prrAt(t sim.Time) float64 {
	samples := rp.lt.Samples
	// Samples are stamped at window end; find the first window containing t.
	for _, s := range samples {
		if t < s.At {
			if s.Sent == 0 {
				return 1 // silence is not evidence of loss
			}
			return s.PRR()
		}
	}
	last := samples[len(samples)-1]
	if last.Sent == 0 {
		return 1
	}
	return last.PRR()
}
