package trace

import (
	"fmt"
	"testing"

	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/ctp"
	"fourbit/internal/node"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

func TestTraceLinkIndex(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if i == j {
				continue
			}
			tr.Links = append(tr.Links, LinkTrace{From: i, To: j})
		}
	}
	// Every directed pair resolves to its own series (the regression the
	// index must preserve: same answers as the linear scan).
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			lt := tr.Link(i, j)
			if i == j {
				if lt != nil {
					t.Fatalf("self link (%d,%d) resolved", i, j)
				}
				continue
			}
			if lt == nil || lt.From != i || lt.To != j {
				t.Fatalf("Link(%d,%d) = %+v", i, j, lt)
			}
		}
	}
	if tr.Link(20, 0) != nil || tr.Link(-1, 3) != nil {
		t.Fatal("unknown link resolved")
	}
	// The returned pointer aliases the stored series.
	tr.Link(1, 2).Samples = append(tr.Link(1, 2).Samples, Sample{At: sim.Second, Sent: 1})
	if got := len(tr.Link(1, 2).Samples); got != 1 {
		t.Fatalf("mutation through Link lost: %d samples", got)
	}
	// Appending after the index was built must not serve stale answers.
	tr.Links = append(tr.Links, LinkTrace{From: 42, To: 7})
	if lt := tr.Link(42, 7); lt == nil || lt.From != 42 {
		t.Fatal("appended link not found after index build")
	}
}

// ctpTraceRun runs a small CTP collection network for two simulated
// minutes with the given recorder factory attached before boot, and
// returns the finalized trace.
func ctpTraceRun(t *testing.T, mk func(env *node.Env) *Recorder) *Trace {
	t.Helper()
	env := node.NewEnv(topo.Grid(3, 3, 8), node.DefaultEnvConfig(21, -5))
	rec := mk(env)
	wl := collect.DefaultWorkload()
	wl.Period = 2 * sim.Second
	node.BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), wl)
	env.Clock.RunUntil(2 * sim.Minute)
	return rec.Finalize()
}

// A probe-fed recorder must produce the identical trace to a medium-tapped
// one: for broadcast traffic the bus re-emits exactly what the medium
// delivers, and neither recorder perturbs the run.
func TestRecorderProbeMatchesMediumTap(t *testing.T) {
	window := 10 * sim.Second
	tapped := ctpTraceRun(t, func(env *node.Env) *Recorder {
		return NewRecorder(env.Clock, env.Medium, window, "tap")
	})
	probed := ctpTraceRun(t, func(env *node.Env) *Recorder {
		return NewRecorderProbe(env.Clock, env.Probes, env.Medium.N(), window, "probe")
	})

	if len(tapped.Links) == 0 {
		t.Fatal("medium-tapped recorder saw no links")
	}
	if len(tapped.Links) != len(probed.Links) {
		t.Fatalf("link counts differ: tap %d, probe %d", len(tapped.Links), len(probed.Links))
	}
	for i := range tapped.Links {
		want := &tapped.Links[i]
		got := probed.Link(want.From, want.To)
		if got == nil {
			t.Fatalf("probe recorder missing link %d->%d", want.From, want.To)
		}
		if len(got.Samples) != len(want.Samples) {
			t.Fatalf("link %d->%d: %d vs %d samples", want.From, want.To, len(got.Samples), len(want.Samples))
		}
		for k := range want.Samples {
			if got.Samples[k] != want.Samples[k] {
				t.Fatalf("link %d->%d sample %d: %+v vs %+v",
					want.From, want.To, k, got.Samples[k], want.Samples[k])
			}
		}
	}
}

// The probe-fed recorder composes with other sinks on the same bus.
func TestRecorderProbeSharesBus(t *testing.T) {
	env := node.NewEnv(topo.Grid(3, 3, 8), node.DefaultEnvConfig(22, -5))
	recs := make([]*Recorder, 2)
	for i := range recs {
		recs[i] = NewRecorderProbe(env.Clock, env.Probes, env.Medium.N(), 10*sim.Second, fmt.Sprintf("r%d", i))
	}
	wl := collect.DefaultWorkload()
	wl.Period = 2 * sim.Second
	node.BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), wl)
	env.Clock.RunUntil(time30s)
	a, b := recs[0].Finalize(), recs[1].Finalize()
	if len(a.Links) == 0 || len(a.Links) != len(b.Links) {
		t.Fatalf("sibling recorders disagree: %d vs %d links", len(a.Links), len(b.Links))
	}
}

const time30s = 30 * sim.Second
