package core

import (
	"testing"
	"testing/quick"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

func TestTableInsertFindRemove(t *testing.T) {
	tb := newTable(3)
	if tb.Cap() != 3 || tb.Len() != 0 {
		t.Fatal("fresh table wrong shape")
	}
	for i := 1; i <= 3; i++ {
		if tb.Insert(packet.Addr(i)) == nil {
			t.Fatalf("insert %d failed with room available", i)
		}
	}
	if tb.Insert(9) != nil {
		t.Fatal("insert succeeded on a full table")
	}
	if e := tb.Find(2); e == nil || e.Addr != 2 {
		t.Fatal("Find(2) failed")
	}
	if tb.Find(9) != nil {
		t.Fatal("found never-inserted entry")
	}
	// Re-inserting an existing address returns the same entry.
	e2 := tb.Find(2)
	if tb.Insert(2) != e2 {
		t.Fatal("Insert of existing addr did not return existing entry")
	}
	if !tb.Remove(2) || tb.Find(2) != nil || tb.Len() != 2 {
		t.Fatal("Remove failed")
	}
	if tb.Remove(2) {
		t.Fatal("double Remove reported success")
	}
}

func TestTablePinUnpin(t *testing.T) {
	tb := newTable(2)
	tb.Insert(1)
	if !tb.Pin(1) || !tb.Find(1).Pinned {
		t.Fatal("Pin failed")
	}
	if !tb.Unpin(1) || tb.Find(1).Pinned {
		t.Fatal("Unpin failed")
	}
	if tb.Pin(7) || tb.Unpin(7) {
		t.Fatal("Pin/Unpin of absent entry reported success")
	}
}

func TestEvictionNeverTouchesPinned(t *testing.T) {
	rng := sim.NewRand(1)
	tb := newTable(4)
	for i := 1; i <= 4; i++ {
		tb.Insert(packet.Addr(i))
	}
	tb.Pin(1)
	tb.Pin(3)
	// Evict both unpinned entries.
	if !tb.EvictRandomUnpinned(rng) || !tb.EvictRandomUnpinned(rng) {
		t.Fatal("eviction of unpinned entries failed")
	}
	if tb.Find(1) == nil || tb.Find(3) == nil {
		t.Fatal("pinned entry evicted")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	// Only pinned entries remain: eviction must now fail.
	if tb.EvictRandomUnpinned(rng) {
		t.Fatal("eviction succeeded with only pinned entries")
	}
}

func TestEvictionIsRandomAcrossVictims(t *testing.T) {
	// Over many trials every unpinned entry must get evicted sometimes.
	hits := map[packet.Addr]int{}
	for trial := 0; trial < 300; trial++ {
		rng := sim.NewRand(uint64(trial))
		tb := newTable(5)
		for i := 1; i <= 5; i++ {
			tb.Insert(packet.Addr(i))
		}
		tb.Pin(5)
		tb.EvictRandomUnpinned(rng)
		for i := 1; i <= 5; i++ {
			if tb.Find(packet.Addr(i)) == nil {
				hits[packet.Addr(i)]++
			}
		}
	}
	if hits[5] != 0 {
		t.Fatal("pinned entry evicted")
	}
	for i := 1; i <= 4; i++ {
		if hits[packet.Addr(i)] < 20 {
			t.Fatalf("entry %d evicted only %d/300 times; eviction not uniform", i, hits[packet.Addr(i)])
		}
	}
}

// Property: under arbitrary interleavings of insert / pin / evict, the
// table never exceeds capacity and pinned entries survive every eviction.
func TestPropertyTableInvariants(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		rng := sim.NewRand(seed)
		tb := newTable(6)
		pinned := map[packet.Addr]bool{}
		for _, op := range ops {
			addr := packet.Addr(op%40 + 1)
			switch op % 5 {
			case 0, 1:
				tb.Insert(addr)
			case 2:
				if tb.Pin(addr) {
					pinned[addr] = true
				}
			case 3:
				if tb.Unpin(addr) {
					delete(pinned, addr)
				}
			case 4:
				tb.EvictRandomUnpinned(rng)
			}
			if tb.Len() > tb.Cap() {
				return false
			}
			for a := range pinned {
				if tb.Find(a) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
