package core

import (
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// PDREstimator is a windowed-mean packet-delivery-ratio estimator — the
// simple-moving-average family studied by "On the Accuracy and Precision
// of Moving Averages to Estimate Wi-Fi Link Quality" (arXiv:2411.12265):
// the latest MAWindow-beacon reception ratio *is* the estimate, with no
// exponential smoothing anywhere. Combined with footer-advertised reverse
// quality it publishes a bidirectional ETX.
//
// Against WMEWMA it trades precision for accuracy under change: a link
// shift is fully reflected after one window, but every estimate carries
// the full sampling noise of a MAWindow-packet Bernoulli trial — the
// accuracy/precision tradeoff that paper quantifies. All mechanics except
// the publish step live in the shared beaconKind (policy.go).
type PDREstimator struct {
	beaconKind
}

var _ LinkEstimator = (*PDREstimator)(nil)

// NewPDR builds a windowed-mean PDR estimator for node self.
func NewPDR(self packet.Addr, cfg Config, rng *sim.Rand) *PDREstimator {
	est := &PDREstimator{beaconKind: newBeaconKind(self, cfg, rng)}
	est.publish = est.publishWindow
	return est
}

// publishWindow publishes the finished window's reception ratio directly:
// the defining move of the SMA family (no EWMA on either level).
func (est *PDREstimator) publishWindow(e *Entry, sample float64) {
	e.prrInit = true
	e.prrEwma = sample // the windowed mean, advertised verbatim in footers
	if !e.outValid {
		return
	}
	// The new sample replaces the estimate entirely — no smoothing.
	// invQuality is already within [1, MaxETX] for a ratio in [0, 1].
	e.etxInit = true
	e.etx = invQuality(sample*e.outQuality, est.cfg.MaxETX)
}
