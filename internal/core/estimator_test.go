package core

import (
	"math"
	"testing"
	"testing/quick"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

const self packet.Addr = 100

func newEst(features Features) *Estimator {
	cfg := DefaultConfig()
	cfg.Features = features
	return New(self, cfg, nil, sim.NewRand(1))
}

// beacon feeds a minimal LE beacon with the given sequence number.
func beacon(t *testing.T, est *Estimator, src packet.Addr, seq uint16, white bool) {
	t.Helper()
	le := &packet.LEFrame{Seq: seq}
	if _, ok := est.OnBeacon(src, le, RxMeta{White: white}, 0); !ok {
		t.Fatal("OnBeacon rejected well-formed beacon")
	}
}

func wantETX(t *testing.T, est *Estimator, addr packet.Addr, want float64) {
	t.Helper()
	got, ok := est.Quality(addr)
	if !ok {
		t.Fatalf("no estimate for %v, want %v", addr, want)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ETX(%v) = %.12f, want %.12f", addr, got, want)
	}
}

// TestFigure5WorkedExample drives the hybrid estimator through a
// deterministic packet sequence and checks every intermediate value of the
// two windows and the outer EWMA, mirroring the structure of the paper's
// Figure 5 (ku=5, kb=2; EWMA weights 0.9).
func TestFigure5WorkedExample(t *testing.T) {
	est := newEst(FourBit())

	// Two beacons (seq 1,2): first beacon window = 2/2 received.
	// PRR EWMA initializes to 1.0; ETX sample 1/1.0 = 1.0 initializes the
	// hybrid estimate.
	beacon(t, est, 7, 1, true)
	if _, ok := est.Quality(7); ok {
		t.Fatal("estimate exists after a single beacon (window is kb=2)")
	}
	beacon(t, est, 7, 2, true)
	wantETX(t, est, 7, 1.0)

	// Beacons seq 3 then 6 (4 and 5 lost): window = 2 received, 2 missed.
	// PRR sample 0.5 -> EWMA 0.9*1.0 + 0.1*0.5 = 0.95.
	// ETX sample 1/0.95 = 1.0526...; hybrid = 0.9*1.0 + 0.1/0.95.
	beacon(t, est, 7, 3, true)
	beacon(t, est, 7, 6, true)
	wantETX(t, est, 7, 0.9+0.1/0.95)
	prev := 0.9 + 0.1/0.95

	// Unicast window: 4 of 5 acked -> sample ku/a = 5/4 = 1.25.
	for i := 0; i < 5; i++ {
		est.TxResult(7, i != 0) // one failure, four acks
	}
	want := 0.9*prev + 0.1*1.25
	wantETX(t, est, 7, want)
	prev = want

	// Five straight failures: a=0, estimate = failures since last success = 5.
	for i := 0; i < 5; i++ {
		est.TxResult(7, false)
	}
	want = 0.9*prev + 0.1*5
	wantETX(t, est, 7, want)
	prev = want

	// Five more failures: the failure run is now 10 — the sample grows.
	for i := 0; i < 5; i++ {
		est.TxResult(7, false)
	}
	want = 0.9*prev + 0.1*10
	wantETX(t, est, 7, want)
}

func TestBeaconSeqWraparound(t *testing.T) {
	est := newEst(FourBit())
	beacon(t, est, 7, 65534, true)
	beacon(t, est, 7, 65535, true) // window 1: 2/2
	beacon(t, est, 7, 0, true)     // wraps; gap = 1
	beacon(t, est, 7, 1, true)     // window 2: 2/2
	wantETX(t, est, 7, 1.0)
	if est.Stats.BeaconWindows != 2 {
		t.Fatalf("BeaconWindows = %d, want 2", est.Stats.BeaconWindows)
	}
}

func TestBeaconDuplicateSeqIgnored(t *testing.T) {
	est := newEst(FourBit())
	beacon(t, est, 7, 1, true)
	beacon(t, est, 7, 1, true) // duplicate must not complete the window
	if _, ok := est.Quality(7); ok {
		t.Fatal("duplicate beacon completed the window")
	}
	beacon(t, est, 7, 2, true)
	wantETX(t, est, 7, 1.0)
}

func TestHugeSeqGapReinitializesWindow(t *testing.T) {
	est := newEst(FourBit())
	beacon(t, est, 7, 1, true)
	beacon(t, est, 7, 2, true) // window: PRR 1.0, ETX 1.0
	// Neighbor silent for 1000 beacons (or rebooted): instead of recording
	// 999 misses, the window restarts.
	beacon(t, est, 7, 1002, true)
	beacon(t, est, 7, 1003, true) // fresh window: 2/2
	wantETX(t, est, 7, 1.0)
	if est.Stats.BeaconWindows != 2 {
		t.Fatalf("BeaconWindows = %d, want 2", est.Stats.BeaconWindows)
	}
}

func TestBroadcastVariantNeedsFooter(t *testing.T) {
	est := newEst(BroadcastOnly())
	// Many perfect beacons but the neighbor never advertises our inbound
	// quality: the bidirectional estimator cannot produce an estimate.
	for i := 1; i <= 10; i++ {
		beacon(t, est, 7, uint16(i), true)
	}
	if _, ok := est.Quality(7); ok {
		t.Fatal("bidirectional estimate produced without reverse quality")
	}
	// Now the neighbor's footer reports it hears us at 0.8.
	le := &packet.LEFrame{Seq: 11, Entries: []packet.LinkEntry{{Addr: self, InQuality: 204}}}
	est.OnBeacon(7, le, RxMeta{}, 0)
	le2 := &packet.LEFrame{Seq: 12, Entries: []packet.LinkEntry{{Addr: self, InQuality: 204}}}
	est.OnBeacon(7, le2, RxMeta{}, 0)
	etx, ok := est.Quality(7)
	if !ok {
		t.Fatal("no estimate after reverse quality arrived")
	}
	want := 1 / (1.0 * (204.0 / 255.0))
	if math.Abs(etx-want) > 1e-9 {
		t.Fatalf("bidirectional ETX = %v, want %v", etx, want)
	}
}

func TestBroadcastVariantIgnoresAckBit(t *testing.T) {
	est := newEst(BroadcastOnly())
	beacon(t, est, 7, 1, true)
	for i := 0; i < 20; i++ {
		est.TxResult(7, false)
	}
	if est.Stats.UnicastWindows != 0 {
		t.Fatal("broadcast-only variant consumed ack bits")
	}
}

func TestUnicastStreamRequiresTableEntry(t *testing.T) {
	est := newEst(FourBit())
	for i := 0; i < 10; i++ {
		est.TxResult(55, true) // 55 was never heard from
	}
	if _, ok := est.Quality(55); ok {
		t.Fatal("estimate created for neighbor never in table")
	}
}

func TestFreeSlotInsertion(t *testing.T) {
	est := newEst(BroadcastOnly())
	for i := 1; i <= est.cfg.TableSize; i++ {
		beacon(t, est, packet.Addr(i), 1, false)
	}
	if est.Table().Len() != est.cfg.TableSize {
		t.Fatalf("table len %d, want %d", est.Table().Len(), est.cfg.TableSize)
	}
	if est.Stats.Inserted != uint64(est.cfg.TableSize) {
		t.Fatalf("Inserted = %d", est.Stats.Inserted)
	}
}

func TestFullTableWithoutWhiteCompareRejects(t *testing.T) {
	est := newEst(Features{AckBit: true}) // no WhiteCompare
	for i := 1; i <= est.cfg.TableSize; i++ {
		beacon(t, est, packet.Addr(i), 1, true)
	}
	beacon(t, est, 200, 1, true) // white, but feature disabled
	if est.Table().Find(200) != nil {
		t.Fatal("entry admitted to full table without white/compare")
	}
	if est.Stats.RejectedFull == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestWhiteCompareReplacement(t *testing.T) {
	compared := 0
	cmp := ComparerFunc(func(src packet.Addr, _ []byte) bool {
		compared++
		return true
	})
	cfg := DefaultConfig()
	est := New(self, cfg, cmp, sim.NewRand(1))
	for i := 1; i <= cfg.TableSize; i++ {
		beacon(t, est, packet.Addr(i), 1, true)
	}
	// Non-white packet from an unknown node: compare must not be asked.
	beacon(t, est, 200, 1, false)
	if compared != 0 {
		t.Fatal("compare bit asked for a non-white packet")
	}
	if est.Table().Find(200) != nil {
		t.Fatal("non-white packet admitted to full table")
	}
	// White packet: compare asked, entry replaces a random unpinned one.
	beacon(t, est, 201, 1, true)
	if compared != 1 {
		t.Fatalf("compare asked %d times, want 1", compared)
	}
	if est.Table().Find(201) == nil {
		t.Fatal("white+compare packet not admitted")
	}
	if est.Table().Len() != cfg.TableSize {
		t.Fatal("table size changed across replacement")
	}
	if est.Stats.Replaced != 1 {
		t.Fatalf("Replaced = %d, want 1", est.Stats.Replaced)
	}
}

func TestWhiteCompareRespectsComparerVerdict(t *testing.T) {
	cmp := ComparerFunc(func(packet.Addr, []byte) bool { return false })
	cfg := DefaultConfig()
	est := New(self, cfg, cmp, sim.NewRand(1))
	for i := 1; i <= cfg.TableSize; i++ {
		beacon(t, est, packet.Addr(i), 1, true)
	}
	beacon(t, est, 201, 1, true)
	if est.Table().Find(201) != nil {
		t.Fatal("admitted although network layer said the route is not better")
	}
}

func TestAllPinnedBlocksReplacement(t *testing.T) {
	cmp := ComparerFunc(func(packet.Addr, []byte) bool { return true })
	cfg := DefaultConfig()
	est := New(self, cfg, cmp, sim.NewRand(1))
	for i := 1; i <= cfg.TableSize; i++ {
		beacon(t, est, packet.Addr(i), 1, true)
		est.Pin(packet.Addr(i))
	}
	beacon(t, est, 201, 1, true)
	if est.Table().Find(201) != nil {
		t.Fatal("replacement evicted a pinned entry")
	}
	for i := 1; i <= cfg.TableSize; i++ {
		if est.Table().Find(packet.Addr(i)) == nil {
			t.Fatalf("pinned entry %d missing", i)
		}
	}
}

func TestPinUnpinThroughEstimator(t *testing.T) {
	est := newEst(FourBit())
	beacon(t, est, 7, 1, true)
	if !est.Pin(7) {
		t.Fatal("Pin failed")
	}
	if est.Pin(99) {
		t.Fatal("Pin of unknown neighbor succeeded")
	}
	if !est.Unpin(7) {
		t.Fatal("Unpin failed")
	}
}

func TestMakeBeaconSequenceAndFooter(t *testing.T) {
	est := newEst(FourBit())
	// Two neighbors with initialized inbound quality, one without.
	for seq := uint16(1); seq <= 2; seq++ {
		beacon(t, est, 1, seq, true)
		beacon(t, est, 2, seq, true)
	}
	beacon(t, est, 3, 1, true) // window not complete: no prr yet

	// MakeBeacon returns estimator-owned scratch, valid only until the next
	// call — snapshot what we need before asking for the second beacon.
	b1ptr := est.MakeBeacon([]byte{0xAA})
	b1 := *b1ptr
	b1.NetPayload = append([]byte(nil), b1ptr.NetPayload...)
	b1.Entries = append([]packet.LinkEntry(nil), b1ptr.Entries...)
	b2 := est.MakeBeacon(nil)
	if b2.Seq != b1.Seq+1 {
		t.Fatalf("beacon seqs %d,%d not consecutive", b1.Seq, b2.Seq)
	}
	if string(b1.NetPayload) != "\xAA" {
		t.Fatal("net payload not carried")
	}
	if len(b1.Entries) != 2 {
		t.Fatalf("footer has %d entries, want 2 (only initialized ones)", len(b1.Entries))
	}
	for _, e := range b1.Entries {
		if e.Addr == 3 {
			t.Fatal("uninitialized neighbor advertised in footer")
		}
		if e.InQuality != 255 {
			t.Fatalf("InQuality = %d, want 255 for perfect link", e.InQuality)
		}
	}
}

func TestMakeBeaconFooterRotates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FooterEntries = 2
	est := New(self, cfg, nil, sim.NewRand(1))
	for i := 1; i <= 5; i++ {
		beacon(t, est, packet.Addr(i), 1, true)
		beacon(t, est, packet.Addr(i), 2, true)
	}
	seen := map[packet.Addr]bool{}
	for i := 0; i < 10; i++ {
		for _, e := range est.MakeBeacon(nil).Entries {
			seen[e.Addr] = true
		}
	}
	if len(seen) != 5 {
		t.Fatalf("rotation advertised %d distinct neighbors over 10 beacons, want all 5", len(seen))
	}
}

func TestAgePenalizesSilentNeighbors(t *testing.T) {
	est := newEst(FourBit())
	beacon(t, est, 7, 1, true)
	beacon(t, est, 7, 2, true) // ETX 1.0, heard at t=0
	before, _ := est.Quality(7)
	// Silent for a long time: aging injects misses, completing windows
	// with PRR 0 samples that drag the estimate up.
	for i := 1; i <= 8; i++ {
		est.Age(30*sim.Second, sim.Time(i)*sim.Minute)
	}
	after, _ := est.Quality(7)
	if !(after > before) {
		t.Fatalf("ETX did not degrade for silent neighbor: %v -> %v", before, after)
	}
	if est.Stats.AgedMisses == 0 {
		t.Fatal("no aged misses recorded")
	}
}

func TestAgeSkipsFreshAndNeverHeard(t *testing.T) {
	est := newEst(FourBit())
	beacon(t, est, 7, 1, true)
	est.Age(30*sim.Second, 10*sim.Second) // within silence budget
	if est.Stats.AgedMisses != 0 {
		t.Fatal("aged a recently-heard neighbor")
	}
}

func TestNeighborsList(t *testing.T) {
	est := newEst(FourBit())
	beacon(t, est, 3, 1, true)
	beacon(t, est, 5, 1, true)
	got := est.Neighbors()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Neighbors = %v", got)
	}
}

// Property: the hybrid estimate stays within [1, MaxETX] under arbitrary
// interleavings of beacon receptions, losses, acks and failures.
func TestPropertyETXBounds(t *testing.T) {
	f := func(ops []byte, seed uint64) bool {
		est := New(self, DefaultConfig(), nil, sim.NewRand(seed))
		seq := uint16(0)
		for _, op := range ops {
			switch op % 4 {
			case 0: // beacon received
				seq++
				est.OnBeacon(7, &packet.LEFrame{Seq: seq}, RxMeta{White: true}, 0)
			case 1: // beacons lost
				seq += uint16(op%7) + 1
			case 2:
				est.TxResult(7, true)
			case 3:
				est.TxResult(7, false)
			}
			if etx, ok := est.Quality(7); ok {
				if etx < 1 || etx > est.cfg.MaxETX || math.IsNaN(etx) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: estimates converge to ~1/PRR on a Bernoulli link driven only by
// beacons (unidirectional bootstrap).
func TestBeaconStreamConvergesToInversePRR(t *testing.T) {
	for _, prr := range []float64{0.9, 0.7, 0.5} {
		est := newEst(FourBit())
		rng := sim.NewRand(uint64(prr * 1000))
		seq := uint16(0)
		for i := 0; i < 4000; i++ {
			seq++
			if rng.Bernoulli(prr) {
				est.OnBeacon(7, &packet.LEFrame{Seq: seq}, RxMeta{}, 0)
			}
		}
		etx, ok := est.Quality(7)
		if !ok {
			t.Fatalf("no estimate at PRR %.1f", prr)
		}
		want := 1 / prr
		if math.Abs(etx-want) > 0.25*want {
			t.Errorf("PRR %.1f: ETX = %.2f, want ~%.2f", prr, etx, want)
		}
	}
}

// Property: with heavy data traffic, the unicast stream dominates and the
// estimate converges to ~1/p where p is the ack probability (§3.3: "when
// there is heavy data traffic, unicast estimates dominate").
func TestUnicastStreamConvergesToInverseAckRate(t *testing.T) {
	for _, p := range []float64{0.8, 0.5} {
		est := newEst(FourBit())
		beacon(t, est, 7, 1, true)
		beacon(t, est, 7, 2, true) // bootstrap at ETX 1
		rng := sim.NewRand(uint64(p * 997))
		for i := 0; i < 5000; i++ {
			est.TxResult(7, rng.Bernoulli(p))
		}
		etx, _ := est.Quality(7)
		want := 1 / p
		if math.Abs(etx-want) > 0.3*want {
			t.Errorf("ack rate %.1f: ETX = %.2f, want ~%.2f", p, etx, want)
		}
	}
}

func TestEstimatorAgilityAfterLinkDeath(t *testing.T) {
	// A perfect link dies completely. Count unicast windows until the
	// estimate exceeds 5 (bad enough that any route would switch): the
	// hybrid estimator must notice within a handful of windows.
	est := newEst(FourBit())
	beacon(t, est, 7, 1, true)
	beacon(t, est, 7, 2, true)
	tx := 0
	for {
		est.TxResult(7, false)
		tx++
		if etx, _ := est.Quality(7); etx > 5 {
			break
		}
		if tx > 200 {
			t.Fatal("estimator never noticed dead link")
		}
	}
	if tx > 40 {
		t.Errorf("needed %d failed transmissions to exceed ETX 5; too sluggish", tx)
	}
}

func TestVariantNames(t *testing.T) {
	cases := map[string]Features{
		"4B":         FourBit(),
		"CTP+unidir": {AckBit: true},
		"CTP+white":  {WhiteCompare: true},
		"CTP":        BroadcastOnly(),
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("Features%+v.String() = %q, want %q", f, got, want)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero table size accepted")
		}
	}()
	New(self, Config{}, nil, sim.NewRand(1))
}
