package core

import (
	"fmt"

	"fourbit/internal/packet"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// LinkEstimator is the router-facing contract every link estimator
// implements. The paper's four-bit hybrid (Estimator) is one implementation;
// WMEWMA (beacon-only windowed ETX), PDREstimator (windowed-mean reception
// ratio) and LQIEstimator (pure physical-layer moving average) are competing
// designs that plug into the same router, so estimator choice becomes an
// experiment axis instead of a protocol fork.
//
// The contract has four parts:
//
//   - Neighbor table access: every estimator manages a shared *Table whose
//     entries publish an ETX-comparable cost through Entry.ETX. Quality is
//     the keyed lookup; Pin/Unpin are the network layer's pin bit.
//
//   - Feedback hooks: OnBeacon consumes received routing beacons (and strips
//     the layer-2.5 envelope), TxResult consumes the link layer's ack bit
//     for unicast transmissions, OnOverhear consumes physical-layer metadata
//     from non-beacon frames the node happens to receive, and Age lets the
//     router inject silence at its own beacon cadence. Implementations are
//     free to ignore any hook (the four-bit estimator ignores OnOverhear;
//     the LQI estimator ignores TxResult) — a hook call must then be a
//     strict no-op, consuming no randomness.
//
//   - Cost quantity: Quality reports a bidirectional-ETX-comparable value
//     (1 = perfect link, larger is worse, clamped at Config.MaxETX), so the
//     router's additive path cost works unchanged under every estimator.
//
//   - Envelope: MakeBeacon wraps the network layer's beacon payload in the
//     estimator's wire envelope (packet.LEFrame); OnBeacon unwraps it and
//     returns the network payload for delivery upward. Estimators that need
//     no footer still speak the envelope so variants interoperate on the
//     wire. The returned frame is estimator-owned scratch, valid only
//     until the next MakeBeacon call — callers serialize it immediately
//     (the beacon path does) rather than retaining it.
//
// RNG-stream discipline: an estimator draws only from the *sim.Rand it was
// constructed with (the per-node "est/<addr>" stream), and only inside
// feedback hooks that the four-bit estimator would also be called on.
// That keeps every other stream in the simulation untouched by estimator
// choice, which is what makes estimator sweeps comparable seed-for-seed.
type LinkEstimator interface {
	// Neighbor table access.
	Table() *Table
	Quality(addr packet.Addr) (etx float64, ok bool)
	Pin(addr packet.Addr) bool
	Unpin(addr packet.Addr) bool
	Neighbors() []packet.Addr

	// Feedback hooks.
	OnBeacon(src packet.Addr, le *packet.LEFrame, meta RxMeta, now sim.Time) ([]byte, bool)
	TxResult(dest packet.Addr, acked bool)
	OnOverhear(src packet.Addr, meta RxMeta, now sim.Time)
	Age(maxSilence sim.Time, now sim.Time)

	// Envelope and wiring.
	MakeBeacon(netPayload []byte) *packet.LEFrame
	SetComparer(cmp Comparer)
	// SetProbes installs the run's probe bus; the estimator emits its
	// table admission/eviction events into it. A nil bus (the default)
	// silences the events. Like SetComparer it exists for post-construction
	// wiring — estimators are built without a clock, so they cannot find
	// the bus themselves.
	SetProbes(b *probe.Bus)

	// Counters returns the estimator-internal event counts.
	Counters() Stats

	// Snapshot serializes the estimator's complete state — table entries in
	// insertion order, window accounting, wire-envelope cursors, counters,
	// and the rng stream position — such that RestoreKind (or Restore on a
	// fresh instance of the same kind) continues bit-identically: every
	// subsequent estimate, admission decision, and beacon footer matches
	// what the un-snapshotted estimator would have produced. It fails for
	// estimators built over plain (uncounted) rng streams, whose position
	// is unobservable; long-running instances use sim.NewCountedRand.
	Snapshot() (*EstimatorSnapshot, error)
	// Restore replaces the estimator's state with the snapshot's. The
	// snapshot must carry the receiver's kind and a supported version;
	// installed probe buses and comparers survive the restore.
	Restore(snap *EstimatorSnapshot) error
}

// EstimatorKind names a pluggable estimator implementation. The zero value
// selects the four-bit hybrid, so existing configurations are unchanged.
type EstimatorKind string

// The registered estimator kinds.
const (
	// KindFourBit is the paper's hybrid estimator (beacon-driven windowed
	// EWMA bootstrap + unicast ack-bit windows + white/compare admission),
	// including its Figure 6 ablations via Config.Features.
	KindFourBit EstimatorKind = "4bit"
	// KindWMEWMA is the Woo-style beacon-only estimator: windowed-mean
	// reception ratio smoothed by an EWMA, made bidirectional through
	// beacon footers — the paper's "no unicast bit" baseline generalized
	// to its own window length (Config.MAWindow).
	KindWMEWMA EstimatorKind = "wmewma"
	// KindPDR is a windowed-mean packet-delivery-ratio estimator (the
	// simple-moving-average family of arXiv:2411.12265): the latest
	// window's reception ratio is the estimate, with no exponential
	// smoothing — maximally agile, maximally noisy.
	KindPDR EstimatorKind = "pdr"
	// KindLQI is a pure physical-layer estimator: an EWMA over the LQI of
	// received frames, mapped to an ETX-comparable cost by the MultiHopLQI
	// cubic. It never sees missed packets — the blindness the paper's
	// Figure 3 documents.
	KindLQI EstimatorKind = "lqi"
)

// EstimatorKinds lists the registered kinds in presentation order.
func EstimatorKinds() []EstimatorKind {
	return []EstimatorKind{KindFourBit, KindWMEWMA, KindPDR, KindLQI}
}

// ParseEstimatorKind resolves a kind name; the empty string is the default
// (four-bit).
func ParseEstimatorKind(s string) (EstimatorKind, error) {
	if s == "" {
		return KindFourBit, nil
	}
	for _, k := range EstimatorKinds() {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("core: unknown estimator kind %q (kinds: %v)", s, EstimatorKinds())
}

// NewKind constructs an estimator of the given kind. The empty kind means
// KindFourBit, so callers can pass a selector through unset. cmp may be nil;
// routers that provide the compare bit install it via SetComparer.
func NewKind(kind EstimatorKind, self packet.Addr, cfg Config, cmp Comparer, rng *sim.Rand) (LinkEstimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case "", KindFourBit:
		return New(self, cfg, cmp, rng), nil
	case KindWMEWMA:
		return NewWMEWMA(self, cfg, rng), nil
	case KindPDR:
		return NewPDR(self, cfg, rng), nil
	case KindLQI:
		return NewLQIEstimator(self, cfg, rng), nil
	default:
		_, err := ParseEstimatorKind(string(kind))
		return nil, err
	}
}
