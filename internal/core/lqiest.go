package core

import (
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// AdjustLQI converts a received frame's LQI into the link-cost increment,
// exactly as the TinyOS MultiHopLQI implementation does: a cubic penalty in
// (80 - (lqi - 50)) that makes low-LQI hops rapidly unattractive. It lives
// here because it is estimation logic, not routing logic: both the
// MultiHopLQI router (internal/lqirouter) and the pure-LQI table estimator
// below derive their cost quantity from it.
func AdjustLQI(lqi uint8) uint16 {
	v := 80 - (int(lqi) - 50)
	if v < 1 {
		v = 1
	}
	cost := ((v * v) >> 3) * v >> 3
	if cost > 0xFFFE {
		cost = 0xFFFE
	}
	if cost < 1 {
		cost = 1
	}
	return uint16(cost)
}

// adjustLQIUnit is AdjustLQI at a saturated LQI (110, the CC2420 maximum):
// the normalizer that anchors a perfect link at ETX 1.
var adjustLQIUnit = float64(AdjustLQI(110))

// ETXFromLQI maps a (possibly fractional, from a moving average) LQI value
// onto the ETX-comparable cost scale: the MultiHopLQI cubic normalized so a
// saturated-LQI link costs exactly 1, clamped at maxETX.
func ETXFromLQI(lqi float64, maxETX float64) float64 {
	if lqi < 0 {
		lqi = 0
	}
	if lqi > 255 {
		lqi = 255
	}
	etx := float64(AdjustLQI(uint8(lqi+0.5))) / adjustLQIUnit
	if etx < 1 {
		etx = 1
	}
	if etx > maxETX {
		etx = maxETX
	}
	return etx
}

// LQIEstimator is a pure physical-layer estimator: an EWMA (weight
// Config.PRRAlpha on history) over the LQI of received frames, mapped to
// the ETX scale through the MultiHopLQI cubic. It is the estimation logic
// of internal/lqirouter lifted into the pluggable framework — with a
// neighbor table, so a table-driven router (CTP) can run on it.
//
// By construction it shares MultiHopLQI's blindspot (the paper's Figure
// 3): only *received* frames produce samples, so a link that drops most
// packets but delivers the survivors at high LQI looks nearly perfect.
// Missed beacons, failed unicasts and reverse-path asymmetry are all
// invisible — TxResult is a strict no-op and footers are neither sent nor
// read. Silence is the one failure it reacts to: Age doubles the cost of
// neighbors not heard within the silence budget.
type LQIEstimator struct {
	tableView
	cfg  Config
	self packet.Addr
	rng  *sim.Rand

	beaconSeq     uint16
	beaconScratch packet.LEFrame // MakeBeacon's reusable envelope

	stats Stats
}

var _ LinkEstimator = (*LQIEstimator)(nil)

// NewLQIEstimator builds a pure-LQI moving-average estimator for node self.
func NewLQIEstimator(self packet.Addr, cfg Config, rng *sim.Rand) *LQIEstimator {
	if err := cfg.Validate(); err != nil {
		panic("core: invalid estimator config: " + err.Error())
	}
	return &LQIEstimator{
		tableView: tableView{table: newTable(cfg.TableSize), self: self},
		cfg:       cfg,
		self:      self,
		rng:       rng,
	}
}

// SetComparer implements LinkEstimator; ignored (physical layer only).
func (est *LQIEstimator) SetComparer(cmp Comparer) {}

// Counters implements LinkEstimator.
func (est *LQIEstimator) Counters() Stats { return est.stats }

// MakeBeacon implements LinkEstimator: the envelope carries a sequence
// number (receivers of other kinds may count it) but no footer — pure-LQI
// estimation keeps no reception statistics to advertise.
func (est *LQIEstimator) MakeBeacon(netPayload []byte) *packet.LEFrame {
	est.beaconSeq++
	est.beaconScratch = packet.LEFrame{Seq: est.beaconSeq, NetPayload: netPayload,
		Entries: est.beaconScratch.Entries[:0]}
	return &est.beaconScratch
}

// OnBeacon implements LinkEstimator: the beacon's own LQI is the sample,
// exactly as MultiHopLQI judges the link by the beacon that carried the
// advertisement.
func (est *LQIEstimator) OnBeacon(src packet.Addr, le *packet.LEFrame, meta RxMeta, now sim.Time) ([]byte, bool) {
	if le == nil {
		return nil, false
	}
	est.stats.BeaconsIn++
	e := est.table.Find(src)
	if e == nil {
		e = admitBasic(&est.tableView, est.rng, &est.cfg, &est.stats, src)
	}
	if e != nil {
		e.lastHeard = now
		est.fold(e, meta.LQI)
	}
	return le.NetPayload, true
}

// OnOverhear feeds the LQI of any other received frame into an *existing*
// entry — data traffic refines the estimate at data cadence, but table
// admission stays beacon-driven (a unicast sender is already a neighbor).
func (est *LQIEstimator) OnOverhear(src packet.Addr, meta RxMeta, now sim.Time) {
	if e := est.table.Find(src); e != nil {
		e.lastHeard = now
		est.fold(e, meta.LQI)
	}
}

// fold pushes one LQI sample into the entry's moving average (kept in
// prrEwma, on the raw LQI scale) and republishes the mapped ETX.
func (est *LQIEstimator) fold(e *Entry, lqi uint8) {
	sample := float64(lqi)
	if !e.prrInit {
		e.prrInit = true
		e.prrEwma = sample
	} else {
		a := est.cfg.PRRAlpha
		e.prrEwma = a*e.prrEwma + (1-a)*sample
	}
	e.windows++
	est.stats.BeaconWindows++
	e.etxInit = true
	e.etx = ETXFromLQI(e.prrEwma, est.cfg.MaxETX)
}

// TxResult implements LinkEstimator as a strict no-op — the defining
// blindness: no feedback from the data path ever reaches the estimate.
func (est *LQIEstimator) TxResult(dest packet.Addr, acked bool) {}

// Age implements the router's silence feedback: every entry not heard
// within the budget has its cost doubled (up to MaxETX). Without this a
// dead neighbor would keep its last — typically excellent — estimate
// forever and the router could never abandon it.
func (est *LQIEstimator) Age(maxSilence sim.Time, now sim.Time) {
	for _, e := range est.table.Entries() {
		if !e.etxInit || now-e.lastHeard <= maxSilence {
			continue
		}
		e.lastHeard = now
		est.stats.AgedMisses++
		e.etx *= 2
		if e.etx > est.cfg.MaxETX {
			e.etx = est.cfg.MaxETX
		}
	}
}
