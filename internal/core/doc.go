// Package core implements the paper's contribution: a link estimator driven
// by four bits of protocol-independent, cross-layer information.
//
// The four bits (§3.1 of the paper):
//
//   - white bit (physical layer, per received packet): set when every
//     symbol in the packet had a very low probability of decoding error —
//     the medium was clean during reception. Carried here in RxMeta.White,
//     produced by the phy layer.
//   - ack bit (link layer, per transmitted unicast): set when a synchronous
//     layer-2 acknowledgment arrived for the transmission. Fed to the
//     estimator through Estimator.TxResult.
//   - pin bit (network layer, per link-table entry): while set the
//     estimator may not evict the entry. Set via Estimator.Pin / Unpin.
//   - compare bit (network layer, per received routing packet, on demand):
//     the estimator asks the network layer whether the packet's sender
//     offers a route better than some current table entry. Supplied by the
//     network layer implementing Comparer.
//
// The estimator itself (Estimator) follows §3.3: a small table of candidate
// links managed with Woo et al.'s algorithm (random unpinned eviction gated
// on white+compare), and a hybrid ETX estimate combining a windowed-EWMA
// over beacon reception with windowed unicast ack counts.
//
// The package is also an estimator framework: LinkEstimator is the
// router-facing contract, and the four-bit design is one of several
// registered implementations (EstimatorKinds) — a Woo-style beacon-only
// WMEWMA, a windowed-mean PDR estimator, and a pure-LQI moving average —
// so the paper's comparative claims can be tested with the estimator, not
// the router, as the experimental variable. See linkestimator.go for the
// contract and policy.go for the mechanics the kinds share.
package core
