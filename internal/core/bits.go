package core

import "fourbit/internal/packet"

// RxMeta is the physical-layer metadata the estimator sees for a received
// routing packet. Only the white bit is consumed by the 4B design; LQI is
// carried for LQI-based comparison protocols and diagnostics.
type RxMeta struct {
	White bool
	LQI   uint8
	SNRdB float64
}

// Comparer is the network layer's side of the compare bit. CompareBit
// reports whether the network-layer routing information in netPayload,
// received from src, advertises a route better than the route provided by
// one or more entries currently in the link table. The network layer may
// decline (return false) for packets it cannot judge.
type Comparer interface {
	CompareBit(src packet.Addr, netPayload []byte) bool
}

// ComparerFunc adapts a function to the Comparer interface.
type ComparerFunc func(src packet.Addr, netPayload []byte) bool

// CompareBit implements Comparer.
func (f ComparerFunc) CompareBit(src packet.Addr, netPayload []byte) bool {
	return f(src, netPayload)
}

// Features selects which of the four bits the estimator actually uses,
// spanning the design space of the paper's Figure 6:
//
//	{}                          — the original CTP/MintRoute broadcast
//	                              estimator: bidirectional beacon ETX, no
//	                              table replacement once full
//	{AckBit}                    — "CTP + unidirectional estimation": beacon
//	                              bootstrap refined by data-ack windows
//	{WhiteCompare}              — "CTP + white bit": broadcast estimator
//	                              plus white/compare-gated table replacement
//	{AckBit, WhiteCompare}      — the full 4B estimator
//
// The pin bit is always honored; it protects in-use routes regardless of
// variant (every protocol in the paper's comparison pins its parent).
type Features struct {
	AckBit       bool
	WhiteCompare bool
}

// FourBit returns the full feature set of the paper's estimator.
func FourBit() Features { return Features{AckBit: true, WhiteCompare: true} }

// BroadcastOnly returns the original CTP estimator's feature set.
func BroadcastOnly() Features { return Features{} }

// String names the variant as the paper's Figure 6 does.
func (f Features) String() string {
	switch {
	case f.AckBit && f.WhiteCompare:
		return "4B"
	case f.AckBit:
		return "CTP+unidir"
	case f.WhiteCompare:
		return "CTP+white"
	default:
		return "CTP"
	}
}
