package core

import (
	"strings"
	"testing"
)

// TestConfigValidate pins the constructor-and-scenario-shared validation:
// each case mutates one knob off the valid default and names the substring
// the error must carry, so a misconfigured sweep fails with a message that
// identifies the knob.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // "" = valid
	}{
		{"default", func(c *Config) {}, ""},
		{"zero table", func(c *Config) { c.TableSize = 0 }, "TableSize"},
		{"negative table", func(c *Config) { c.TableSize = -3 }, "TableSize"},
		{"zero unicast window", func(c *Config) { c.UnicastWindow = 0 }, "UnicastWindow"},
		{"zero beacon window", func(c *Config) { c.BeaconWindow = 0 }, "BeaconWindow"},
		{"negative ma window", func(c *Config) { c.MAWindow = -1 }, "MAWindow"},
		{"zero ma window is default", func(c *Config) { c.MAWindow = 0 }, ""},
		{"zero prr alpha", func(c *Config) { c.PRRAlpha = 0 }, "PRRAlpha"},
		{"prr alpha above one", func(c *Config) { c.PRRAlpha = 1.01 }, "PRRAlpha"},
		{"prr alpha NaN", func(c *Config) { c.PRRAlpha = nan() }, "PRRAlpha"},
		{"prr alpha exactly one", func(c *Config) { c.PRRAlpha = 1 }, ""},
		{"zero etx alpha", func(c *Config) { c.ETXAlpha = 0 }, "ETXAlpha"},
		{"negative etx alpha", func(c *Config) { c.ETXAlpha = -0.5 }, "ETXAlpha"},
		{"max etx at one", func(c *Config) { c.MaxETX = 1 }, "MaxETX"},
		{"evict at one", func(c *Config) { c.EvictETX = 1 }, "EvictETX"},
		{"evict above max", func(c *Config) { c.EvictETX = 51 }, "EvictETX"},
		{"evict equals max", func(c *Config) { c.EvictETX = 50 }, ""},
		{"negative footer", func(c *Config) { c.FooterEntries = -1 }, "FooterEntries"},
		{"zero footer", func(c *Config) { c.FooterEntries = 0 }, ""},
		{"zero seq gap", func(c *Config) { c.MaxSeqGap = 0 }, "MaxSeqGap"},
		{"negative lottery", func(c *Config) { c.LotteryProb = -0.1 }, "LotteryProb"},
		{"lottery above one", func(c *Config) { c.LotteryProb = 1.5 }, "LotteryProb"},
		{"lottery zero and one", func(c *Config) { c.LotteryProb = 1 }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			err := cfg.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted the config, want error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate() = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// Every kind's constructor must reject an invalid config the same way.
func TestAllKindsRejectInvalidConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.EvictETX = bad.MaxETX + 1
	for _, k := range EstimatorKinds() {
		if _, err := NewKind(k, 1, bad, nil, nil); err == nil {
			t.Errorf("NewKind(%s) accepted EvictETX > MaxETX", k)
		}
	}
}

func TestParseEstimatorKind(t *testing.T) {
	for _, k := range EstimatorKinds() {
		got, err := ParseEstimatorKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseEstimatorKind(%q) = (%v, %v)", k, got, err)
		}
	}
	if got, err := ParseEstimatorKind(""); err != nil || got != KindFourBit {
		t.Errorf("ParseEstimatorKind(\"\") = (%v, %v), want the four-bit default", got, err)
	}
	if _, err := ParseEstimatorKind("etx9000"); err == nil {
		t.Error("unknown kind accepted")
	}
}
