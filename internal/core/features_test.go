package core

import (
	"math"
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// The Figure 6 design space: each feature bit must change exactly its own
// behavior. These tests drive the four feature sets — BroadcastOnly,
// AckBit-only, WhiteCompare-only, FourBit — through one deterministic
// two-node script and pin the full behavioral delta matrix: the ack bit
// decides (a) whether beacon-window estimates are unidirectional or need
// the neighbor's reverse quality and (b) whether unicast outcomes move the
// estimate at all; the white/compare bit decides admission to a full
// table and nothing else.

// featureScript drives an estimator of the given features through the
// shared two-node script: two beacons from neighbor 7 (footer advertising
// reverse quality 204/255 = 0.8 for us), then five failed unicast
// transmissions.
func featureScript(t *testing.T, f Features) (est *Estimator, afterBeacons, afterFails float64) {
	t.Helper()
	est = newEst(f)
	footer := []packet.LinkEntry{{Addr: self, InQuality: 204}}
	for seq := uint16(1); seq <= 2; seq++ {
		le := &packet.LEFrame{Seq: seq, Entries: footer}
		if _, ok := est.OnBeacon(7, le, RxMeta{White: true}, 0); !ok {
			t.Fatal("OnBeacon rejected well-formed beacon")
		}
	}
	var ok bool
	afterBeacons, ok = est.Quality(7)
	if !ok {
		t.Fatal("no estimate after a full beacon window")
	}
	for i := 0; i < 5; i++ {
		est.TxResult(7, false)
	}
	afterFails, ok = est.Quality(7)
	if !ok {
		t.Fatal("estimate vanished")
	}
	return est, afterBeacons, afterFails
}

func TestFeatureBitBehavioralDeltas(t *testing.T) {
	// Expected values, worked by hand. Beacon window (kb=2, both received):
	// PRR EWMA = 1.0. With the ack bit the ETX sample is unidirectional,
	// 1/1.0 = 1; without it the reverse quality factors in, 1/(1.0*0.8) =
	// 1.25. Five straight unicast failures complete one ku=5 window with
	// sample = failsSince = 5, folding 0.9*1.0 + 0.1*5 = 1.4 — but only
	// when the ack bit exists.
	cases := []struct {
		name                     string
		features                 Features
		afterBeacons, afterFails float64
		unicastWindows           uint64
	}{
		{"4B", FourBit(), 1.0, 1.4, 1},
		{"AckBit-only", Features{AckBit: true}, 1.0, 1.4, 1},
		{"WhiteCompare-only", Features{WhiteCompare: true}, 1.25, 1.25, 0},
		{"BroadcastOnly", BroadcastOnly(), 1.25, 1.25, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			est, afterBeacons, afterFails := featureScript(t, c.features)
			if math.Abs(afterBeacons-c.afterBeacons) > 1e-12 {
				t.Errorf("after beacons: ETX = %.12f, want %.12f", afterBeacons, c.afterBeacons)
			}
			if math.Abs(afterFails-c.afterFails) > 1e-12 {
				t.Errorf("after failures: ETX = %.12f, want %.12f", afterFails, c.afterFails)
			}
			if est.Stats.UnicastWindows != c.unicastWindows {
				t.Errorf("UnicastWindows = %d, want %d", est.Stats.UnicastWindows, c.unicastWindows)
			}
		})
	}
}

// TestWhiteCompareBitGatesAdmission pins the other half of the matrix: with
// a full one-entry table and the lottery disabled, only the WhiteCompare
// variants admit a compare-qualified newcomer; the others must reject it.
// The ack bit plays no role in admission.
func TestWhiteCompareBitGatesAdmission(t *testing.T) {
	cases := []struct {
		name     string
		features Features
		admitted bool
	}{
		{"4B", FourBit(), true},
		{"WhiteCompare-only", Features{WhiteCompare: true}, true},
		{"AckBit-only", Features{AckBit: true}, false},
		{"BroadcastOnly", BroadcastOnly(), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.TableSize = 1
			cfg.LotteryProb = 0 // isolate the compare path from the FREQUENCY lottery
			cfg.Features = c.features
			est := New(self, cfg, ComparerFunc(func(packet.Addr, []byte) bool { return true }), sim.NewRand(1))
			beacon(t, est, 7, 1, true) // fills the single slot
			beacon(t, est, 8, 1, true) // newcomer, white, compare says yes
			gotEntry := est.Table().Find(8) != nil
			if gotEntry != c.admitted {
				t.Fatalf("newcomer admitted = %v, want %v", gotEntry, c.admitted)
			}
			if c.admitted {
				if est.Stats.Replaced != 1 || est.Stats.CompareAsked != 1 || est.Stats.CompareTrue != 1 {
					t.Errorf("stats = %+v, want one compare-gated replacement", est.Stats)
				}
				if est.Table().Find(7) != nil {
					t.Error("victim survived a one-entry replacement")
				}
			} else {
				if est.Stats.RejectedFull != 1 || est.Stats.CompareAsked != 0 {
					t.Errorf("stats = %+v, want one silent rejection", est.Stats)
				}
			}
		})
	}
}
