package core

import (
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// Config parameterizes the estimator. The defaults are the paper's: a
// 10-entry table, unicast window ku=5, beacon window kb=2, and EWMA weights
// of 0.9 for both the beacon-PRR stream and the outer hybrid ETX stream.
type Config struct {
	TableSize     int
	UnicastWindow int     // ku: transmissions per unicast ETX sample
	BeaconWindow  int     // kb: beacons (received+missed) per PRR sample
	PRRAlpha      float64 // windowed-EWMA weight on beacon PRR samples
	ETXAlpha      float64 // outer EWMA weight on hybrid ETX samples
	MaxETX        float64 // estimate clamp (a dead link)
	FooterEntries int     // link-info entries advertised per beacon
	MaxSeqGap     int     // larger beacon seq gaps reinitialize the window
	// EvictETX is the standard (Woo et al. / TinyOS) replacement policy:
	// with a full table, a newcomer may displace the unpinned entry with
	// the worst effective ETX, provided that ETX is at least EvictETX.
	// Entries that have completed several beacon windows without producing
	// an estimate (e.g. the neighbor never reciprocates reverse link
	// information) count as MaxETX — they hold a slot but provide no link.
	EvictETX float64
	// LotteryProb approximates the FREQUENCY part of Woo et al.'s table
	// management: a beacon from an unknown neighbor that finds the table
	// full (and nothing evictable) still claims a slot with this
	// probability, displacing a random unpinned entry. Frequently-heard
	// neighbors (close, reliable) get proportionally many chances, so the
	// table converges toward the most useful senders instead of freezing
	// on whichever ten were heard first — without it, clusters of nodes
	// can lock onto each other and never admit a root-ward link.
	LotteryProb float64
	Features    Features
}

// DefaultConfig returns the paper's parameterization with the full 4B
// feature set.
func DefaultConfig() Config {
	return Config{
		TableSize:     10,
		UnicastWindow: 5,
		BeaconWindow:  2,
		PRRAlpha:      0.9,
		ETXAlpha:      0.9,
		MaxETX:        50,
		FooterEntries: 8,
		MaxSeqGap:     32,
		EvictETX:      6,
		LotteryProb:   0.03,
		Features:      FourBit(),
	}
}

// Stats counts estimator-internal events.
type Stats struct {
	BeaconsIn      uint64 // routing beacons processed
	Inserted       uint64 // entries inserted into free slots
	Replaced       uint64 // entries inserted via white+compare eviction
	RejectedFull   uint64 // beacons from unknown neighbors dropped, table full
	CompareAsked   uint64 // compare bit requests to the network layer
	CompareTrue    uint64
	BeaconWindows  uint64 // completed beacon windows (PRR samples)
	UnicastWindows uint64 // completed unicast windows (ack-bit samples)
	AgedMisses     uint64 // synthetic misses injected for silent neighbors
}

// Estimator is the 4B link estimator (and, via Config.Features, its
// ablations). It acts as a layer 2.5: routing beacons pass through
// MakeBeacon / OnBeacon, which add and strip the LE envelope.
type Estimator struct {
	cfg   Config
	self  packet.Addr
	cmp   Comparer
	rng   *sim.Rand
	table *Table

	beaconSeq uint16
	footerIdx int

	Stats Stats
}

// New builds an estimator for node self. cmp supplies the compare bit (nil
// disables it, as for protocols whose network layer cannot judge routes).
func New(self packet.Addr, cfg Config, cmp Comparer, rng *sim.Rand) *Estimator {
	if cfg.TableSize <= 0 || cfg.UnicastWindow <= 0 || cfg.BeaconWindow <= 0 {
		panic("core: invalid estimator config")
	}
	return &Estimator{
		cfg:   cfg,
		self:  self,
		cmp:   cmp,
		rng:   rng,
		table: newTable(cfg.TableSize),
	}
}

// SetComparer installs the network layer's compare-bit provider after
// construction (the routing engine is usually built after the estimator).
func (est *Estimator) SetComparer(cmp Comparer) { est.cmp = cmp }

// Table exposes the link table for inspection (metrics, tests).
func (est *Estimator) Table() *Table { return est.table }

// Quality returns the current bidirectional ETX estimate for addr. ok is
// false while no estimate exists (unknown neighbor, or still bootstrapping).
func (est *Estimator) Quality(addr packet.Addr) (etx float64, ok bool) {
	e := est.table.Find(addr)
	if e == nil || !e.etxInit {
		return 0, false
	}
	return e.etx, true
}

// Pin sets the pin bit on addr (network layer: "this link is in use").
func (est *Estimator) Pin(addr packet.Addr) bool { return est.table.Pin(addr) }

// Unpin clears the pin bit on addr.
func (est *Estimator) Unpin(addr packet.Addr) bool { return est.table.Unpin(addr) }

// Neighbors returns the addresses currently in the table.
func (est *Estimator) Neighbors() []packet.Addr {
	out := make([]packet.Addr, 0, est.table.Len())
	for _, e := range est.table.Entries() {
		out = append(out, e.Addr)
	}
	return out
}

// MakeBeacon wraps the network layer's beacon payload in the LE envelope:
// it assigns the next beacon sequence number and attaches a round-robin
// subset of the table's inbound qualities as the footer.
func (est *Estimator) MakeBeacon(netPayload []byte) *packet.LEFrame {
	est.beaconSeq++
	le := &packet.LEFrame{Seq: est.beaconSeq, NetPayload: netPayload}
	entries := est.table.Entries()
	n := len(entries)
	max := est.cfg.FooterEntries
	if max > packet.MaxLinkEntries {
		max = packet.MaxLinkEntries
	}
	for i := 0; i < n && len(le.Entries) < max; i++ {
		e := entries[(est.footerIdx+i)%n]
		if !e.prrInit {
			continue
		}
		le.Entries = append(le.Entries, packet.LinkEntry{
			Addr:      e.Addr,
			InQuality: uint8(e.prrEwma*255 + 0.5),
		})
	}
	if n > 0 {
		est.footerIdx = (est.footerIdx + 1) % n
	}
	return le
}

// OnBeacon processes a received routing beacon (already stripped of its MAC
// frame): sequence-number accounting for the inbound PRR window, footer
// processing for reverse quality, and the white/compare table-insertion
// policy of §3.3. It returns the network payload for delivery upward, and
// false if the beacon was malformed.
func (est *Estimator) OnBeacon(src packet.Addr, le *packet.LEFrame, meta RxMeta, now sim.Time) ([]byte, bool) {
	if le == nil {
		return nil, false
	}
	est.Stats.BeaconsIn++
	e := est.table.Find(src)
	if e == nil {
		e = est.admit(src, le, meta)
	}
	if e != nil {
		est.accountBeacon(e, le.Seq, now)
		for _, ent := range le.Entries {
			if ent.Addr == est.self {
				e.outQuality = float64(ent.InQuality) / 255
				e.outValid = true
			}
		}
		est.completeBeaconWindow(e)
	}
	return le.NetPayload, true
}

// admit decides whether a beacon from an unknown neighbor earns a table
// slot. Free slots are always granted (Woo et al.). With a full table, the
// WhiteCompare feature admits promising senders by evicting a random
// unpinned entry (§3.3); independent of that, the standard replacement
// policy lets a newcomer displace the unpinned entry with the worst
// effective ETX when that entry is bad enough to be useless.
func (est *Estimator) admit(src packet.Addr, le *packet.LEFrame, meta RxMeta) *Entry {
	if e := est.table.Insert(src); e != nil {
		est.Stats.Inserted++
		return e
	}
	// Standard policy first: displace a demonstrably useless entry. This
	// keeps squatters from poisoning the white/compare path below.
	if est.evictWorst() {
		est.Stats.Replaced++
		return est.mustInsert(src)
	}
	if est.cfg.Features.WhiteCompare && meta.White && est.cmp != nil {
		est.Stats.CompareAsked++
		if est.cmp.CompareBit(src, le.NetPayload) {
			est.Stats.CompareTrue++
			if est.evictForReplacement() {
				est.Stats.Replaced++
				return est.mustInsert(src)
			}
		}
	}
	// FREQUENCY lottery (Woo et al.): persistent senders eventually win a
	// slot even when every incumbent looks individually fine. The victim
	// is the worst unpinned entry, never a random good one — otherwise
	// rarely-heard phantom neighbors (one lucky fade per hour) would
	// erode real links in sparse low-power networks.
	if est.rng.Bernoulli(est.cfg.LotteryProb) && est.evictForReplacement() {
		est.Stats.Replaced++
		return est.mustInsert(src)
	}
	est.Stats.RejectedFull++
	return nil
}

// evictForReplacement frees a slot for a compare-qualified newcomer: the
// unpinned entry with the worst effective ETX goes (mirroring the TinyOS
// 4-bit estimator, which replaces its worst mature neighbor on a set
// compare bit); if every unpinned entry is still warming up, a random one
// goes instead. Evicting the *best* links here would churn the table
// faster than estimates mature — the failure mode the maturity rules of
// Woo et al. exist to prevent.
func (est *Estimator) evictForReplacement() bool {
	var victim packet.Addr
	worst := 0.0
	for _, e := range est.table.Entries() {
		if e.Pinned {
			continue
		}
		if etx := est.effectiveETX(e); etx > worst {
			worst = etx
			victim = e.Addr
		}
	}
	if worst > 0 {
		return est.table.Remove(victim)
	}
	return est.table.EvictRandomUnpinned(est.rng)
}

func (est *Estimator) mustInsert(src packet.Addr) *Entry {
	e := est.table.Insert(src)
	if e == nil {
		panic("core: insert failed after eviction")
	}
	return e
}

// evictWorst removes the unpinned entry with the highest effective ETX if
// that ETX reaches the eviction threshold, reporting whether a slot was
// freed. Mature entries without an estimate count as MaxETX.
func (est *Estimator) evictWorst() bool {
	var victim packet.Addr
	worst := -1.0
	for _, e := range est.table.Entries() {
		if e.Pinned {
			continue
		}
		etx := est.effectiveETX(e)
		if etx > worst {
			worst = etx
			victim = e.Addr
		}
	}
	if worst < est.cfg.EvictETX {
		return false
	}
	return est.table.Remove(victim)
}

// effectiveETX is the eviction-policy view of an entry: its estimate if it
// has one, MaxETX if it has had enough beacon windows to produce one and
// has not (a squatter), and 0 (not evictable) while still warming up.
func (est *Estimator) effectiveETX(e *Entry) float64 {
	if e.etxInit {
		return e.etx
	}
	if e.windows >= 3 {
		return est.cfg.MaxETX
	}
	return 0
}

func (est *Estimator) accountBeacon(e *Entry, seq uint16, now sim.Time) {
	e.lastHeard = now
	if !e.seqInit {
		e.seqInit = true
		e.lastSeq = seq
		e.rcvd = 1
		return
	}
	gap := int(seq - e.lastSeq) // uint16 arithmetic handles wraparound
	e.lastSeq = seq
	switch {
	case gap == 0:
		// Duplicate delivery; ignore.
	case gap > est.cfg.MaxSeqGap || gap < 0:
		// Too long a silence (or a rebooted neighbor): restart the window
		// rather than recording an implausible miss burst.
		e.rcvd, e.missed = 1, 0
	default:
		e.missed += gap - 1
		e.rcvd++
	}
}

// completeBeaconWindow folds a finished beacon window into the PRR EWMA and
// pushes the resulting ETX sample into the hybrid estimate, per Figure 5.
func (est *Estimator) completeBeaconWindow(e *Entry) {
	if e.rcvd+e.missed < est.cfg.BeaconWindow {
		return
	}
	sample := float64(e.rcvd) / float64(e.rcvd+e.missed)
	e.rcvd, e.missed = 0, 0
	e.windows++
	if !e.prrInit {
		e.prrInit = true
		e.prrEwma = sample
	} else {
		a := est.cfg.PRRAlpha
		e.prrEwma = a*e.prrEwma + (1-a)*sample
	}
	est.Stats.BeaconWindows++

	// Convert the smoothed reception ratio into an ETX sample. With the
	// ack bit available the beacon stream is unidirectional bootstrap
	// (§3.3: incoming estimates only); without it, the classic broadcast
	// estimator needs the neighbor-reported reverse quality.
	var etxSample float64
	if est.cfg.Features.AckBit {
		etxSample = invQuality(e.prrEwma, est.cfg.MaxETX)
	} else {
		if !e.outValid {
			return
		}
		etxSample = invQuality(e.prrEwma*e.outQuality, est.cfg.MaxETX)
	}
	est.feedETX(e, etxSample)
}

func invQuality(q, maxETX float64) float64 {
	if q <= 1/maxETX {
		return maxETX
	}
	return 1 / q
}

// TxResult feeds the ack bit for one unicast transmission to dest (§3.1:
// one bit per transmitted packet). Variants without the ack bit ignore it.
func (est *Estimator) TxResult(dest packet.Addr, acked bool) {
	if !est.cfg.Features.AckBit {
		return
	}
	e := est.table.Find(dest)
	if e == nil {
		return
	}
	e.uTotal++
	if acked {
		e.uAcked++
		e.failsSince = 0
	} else {
		e.failsSince++
	}
	if e.uTotal < est.cfg.UnicastWindow {
		return
	}
	var sample float64
	if e.uAcked > 0 {
		sample = float64(e.uTotal) / float64(e.uAcked)
	} else {
		// ku consecutive failures: the estimate is the number of failed
		// deliveries since the last success (grows each barren window).
		sample = float64(e.failsSince)
	}
	e.uTotal, e.uAcked = 0, 0
	est.Stats.UnicastWindows++
	est.feedETX(e, sample)
}

func (est *Estimator) feedETX(e *Entry, sample float64) {
	if sample < 1 {
		sample = 1
	}
	if sample > est.cfg.MaxETX {
		sample = est.cfg.MaxETX
	}
	if !e.etxInit {
		e.etxInit = true
		e.etx = sample
		return
	}
	a := est.cfg.ETXAlpha
	e.etx = a*e.etx + (1-a)*sample
}

// Age injects one synthetic missed beacon into every entry silent for
// longer than maxSilence, letting the broadcast stream notice dead
// neighbors that send nothing (the routing engine calls this at its own
// beacon cadence). Pinned entries age too — the route through them should
// look worse — but are never evicted here.
func (est *Estimator) Age(maxSilence sim.Time, now sim.Time) {
	for _, e := range est.table.Entries() {
		if !e.seqInit || now-e.lastHeard <= maxSilence {
			continue
		}
		e.missed++
		e.lastHeard = now
		est.Stats.AgedMisses++
		est.completeBeaconWindow(e)
	}
}
