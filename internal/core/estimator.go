package core

import (
	"fourbit/internal/packet"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// Stats counts estimator-internal events. Every LinkEstimator kind reports
// through the same counter set (counters a kind cannot produce stay zero:
// only the four-bit family asks compare-bit questions or completes unicast
// windows), so estimator-internal behavior is comparable across sweeps.
type Stats struct {
	BeaconsIn      uint64 // routing beacons processed
	Inserted       uint64 // entries inserted into free slots
	Replaced       uint64 // entries inserted via eviction (all policies)
	RejectedFull   uint64 // beacons from unknown neighbors dropped, table full
	LotteryWins    uint64 // of Replaced: slots claimed through the FREQUENCY lottery
	CompareAsked   uint64 // compare bit requests to the network layer
	CompareTrue    uint64
	BeaconWindows  uint64 // completed beacon windows (PRR samples)
	UnicastWindows uint64 // completed unicast windows (ack-bit samples)
	AgedMisses     uint64 // synthetic misses injected for silent neighbors
}

// add accumulates other into s (for network-wide aggregation).
func (s *Stats) add(other Stats) {
	s.BeaconsIn += other.BeaconsIn
	s.Inserted += other.Inserted
	s.Replaced += other.Replaced
	s.RejectedFull += other.RejectedFull
	s.LotteryWins += other.LotteryWins
	s.CompareAsked += other.CompareAsked
	s.CompareTrue += other.CompareTrue
	s.BeaconWindows += other.BeaconWindows
	s.UnicastWindows += other.UnicastWindows
	s.AgedMisses += other.AgedMisses
}

// SumStats aggregates the counters of a set of estimators (a network).
func SumStats(ests []LinkEstimator) Stats {
	var sum Stats
	for _, e := range ests {
		sum.add(e.Counters())
	}
	return sum
}

// Estimator is the 4B link estimator (and, via Config.Features, its
// ablations). It acts as a layer 2.5: routing beacons pass through
// MakeBeacon / OnBeacon, which add and strip the LE envelope.
type Estimator struct {
	tableView
	cfg  Config
	self packet.Addr
	cmp  Comparer
	rng  *sim.Rand

	beaconSeq     uint16
	footerIdx     int
	beaconScratch packet.LEFrame // MakeBeacon's reusable envelope

	Stats Stats
}

// Estimator implements LinkEstimator.
var _ LinkEstimator = (*Estimator)(nil)

// New builds an estimator for node self. cmp supplies the compare bit (nil
// disables it, as for protocols whose network layer cannot judge routes).
func New(self packet.Addr, cfg Config, cmp Comparer, rng *sim.Rand) *Estimator {
	if err := cfg.Validate(); err != nil {
		panic("core: invalid estimator config: " + err.Error())
	}
	return &Estimator{
		tableView: tableView{table: newTable(cfg.TableSize), self: self},
		cfg:       cfg,
		self:      self,
		cmp:       cmp,
		rng:       rng,
	}
}

// SetComparer installs the network layer's compare-bit provider after
// construction (the routing engine is usually built after the estimator).
func (est *Estimator) SetComparer(cmp Comparer) { est.cmp = cmp }

// Counters implements LinkEstimator.
func (est *Estimator) Counters() Stats { return est.Stats }

// OnOverhear implements LinkEstimator as a strict no-op: the 4B design
// deliberately takes nothing from non-beacon receptions beyond the ack bit
// (TxResult); overheard-frame metadata is a physical-layer signal the
// hybrid estimator does not consume.
func (est *Estimator) OnOverhear(src packet.Addr, meta RxMeta, now sim.Time) {}

// MakeBeacon wraps the network layer's beacon payload in the LE envelope:
// it assigns the next beacon sequence number and attaches a round-robin
// subset of the table's inbound qualities as the footer.
func (est *Estimator) MakeBeacon(netPayload []byte) *packet.LEFrame {
	est.beaconSeq++
	buildBeacon(&est.beaconScratch, est.table, est.beaconSeq, &est.footerIdx, est.cfg.FooterEntries, netPayload)
	return &est.beaconScratch
}

// OnBeacon processes a received routing beacon (already stripped of its MAC
// frame): sequence-number accounting for the inbound PRR window, footer
// processing for reverse quality, and the white/compare table-insertion
// policy of §3.3. It returns the network payload for delivery upward, and
// false if the beacon was malformed.
func (est *Estimator) OnBeacon(src packet.Addr, le *packet.LEFrame, meta RxMeta, now sim.Time) ([]byte, bool) {
	if le == nil {
		return nil, false
	}
	est.Stats.BeaconsIn++
	e := est.table.Find(src)
	if e == nil {
		e = est.admit(src, le, meta)
	}
	if e != nil {
		accountSeq(e, le.Seq, est.cfg.MaxSeqGap, now)
		scanFooter(e, le, est.self)
		est.completeBeaconWindow(e)
	}
	return le.NetPayload, true
}

// admit decides whether a beacon from an unknown neighbor earns a table
// slot. Free slots are always granted (Woo et al.). With a full table, the
// WhiteCompare feature admits promising senders by evicting a random
// unpinned entry (§3.3); independent of that, the standard replacement
// policy lets a newcomer displace the unpinned entry with the worst
// effective ETX when that entry is bad enough to be useless.
//
// This is admitBasic (policy.go) with the white/compare step spliced
// between eviction and lottery — the one admission move unique to the 4B
// design. A policy change made here likely belongs in admitBasic too.
func (est *Estimator) admit(src packet.Addr, le *packet.LEFrame, meta RxMeta) *Entry {
	if e := est.table.Insert(src); e != nil {
		est.Stats.Inserted++
		est.probes.Table(est.self, src, probe.OpInsert)
		return e
	}
	// Standard policy first: displace a demonstrably useless entry. This
	// keeps squatters from poisoning the white/compare path below.
	if victim, ok := evictWorst(est.table, est.cfg.MaxETX, est.cfg.EvictETX); ok {
		est.Stats.Replaced++
		est.emitReplace(victim, src)
		return mustInsert(est.table, src)
	}
	if est.cfg.Features.WhiteCompare && meta.White && est.cmp != nil {
		est.Stats.CompareAsked++
		if est.cmp.CompareBit(src, le.NetPayload) {
			est.Stats.CompareTrue++
			if victim, ok := evictForReplacement(est.table, est.cfg.MaxETX, est.rng); ok {
				est.Stats.Replaced++
				est.emitReplace(victim, src)
				return mustInsert(est.table, src)
			}
		}
	}
	// FREQUENCY lottery (Woo et al.): persistent senders eventually win a
	// slot even when every incumbent looks individually fine. The victim
	// is the worst unpinned entry, never a random good one — otherwise
	// rarely-heard phantom neighbors (one lucky fade per hour) would
	// erode real links in sparse low-power networks.
	if est.rng.Bernoulli(est.cfg.LotteryProb) {
		if victim, ok := evictForReplacement(est.table, est.cfg.MaxETX, est.rng); ok {
			est.Stats.Replaced++
			est.Stats.LotteryWins++
			est.emitReplace(victim, src)
			return mustInsert(est.table, src)
		}
	}
	est.Stats.RejectedFull++
	est.probes.Table(est.self, src, probe.OpReject)
	return nil
}

// completeBeaconWindow folds a finished beacon window into the PRR EWMA and
// pushes the resulting ETX sample into the hybrid estimate, per Figure 5.
func (est *Estimator) completeBeaconWindow(e *Entry) {
	if e.rcvd+e.missed < est.cfg.BeaconWindow {
		return
	}
	sample := float64(e.rcvd) / float64(e.rcvd+e.missed)
	e.rcvd, e.missed = 0, 0
	e.windows++
	if !e.prrInit {
		e.prrInit = true
		e.prrEwma = sample
	} else {
		a := est.cfg.PRRAlpha
		e.prrEwma = a*e.prrEwma + (1-a)*sample
	}
	est.Stats.BeaconWindows++

	// Convert the smoothed reception ratio into an ETX sample. With the
	// ack bit available the beacon stream is unidirectional bootstrap
	// (§3.3: incoming estimates only); without it, the classic broadcast
	// estimator needs the neighbor-reported reverse quality.
	var etxSample float64
	if est.cfg.Features.AckBit {
		etxSample = invQuality(e.prrEwma, est.cfg.MaxETX)
	} else {
		if !e.outValid {
			return
		}
		etxSample = invQuality(e.prrEwma*e.outQuality, est.cfg.MaxETX)
	}
	foldETX(e, etxSample, est.cfg.ETXAlpha, est.cfg.MaxETX)
}

// TxResult feeds the ack bit for one unicast transmission to dest (§3.1:
// one bit per transmitted packet). Variants without the ack bit ignore it.
func (est *Estimator) TxResult(dest packet.Addr, acked bool) {
	if !est.cfg.Features.AckBit {
		return
	}
	e := est.table.Find(dest)
	if e == nil {
		return
	}
	e.uTotal++
	if acked {
		e.uAcked++
		e.failsSince = 0
	} else {
		e.failsSince++
	}
	if e.uTotal < est.cfg.UnicastWindow {
		return
	}
	var sample float64
	if e.uAcked > 0 {
		sample = float64(e.uTotal) / float64(e.uAcked)
	} else {
		// ku consecutive failures: the estimate is the number of failed
		// deliveries since the last success (grows each barren window).
		sample = float64(e.failsSince)
	}
	e.uTotal, e.uAcked = 0, 0
	est.Stats.UnicastWindows++
	foldETX(e, sample, est.cfg.ETXAlpha, est.cfg.MaxETX)
}

// Age injects one synthetic missed beacon into every entry silent for
// longer than maxSilence, letting the broadcast stream notice dead
// neighbors that send nothing (the routing engine calls this at its own
// beacon cadence). Pinned entries age too — the route through them should
// look worse — but are never evicted here.
func (est *Estimator) Age(maxSilence sim.Time, now sim.Time) {
	for _, e := range est.table.Entries() {
		if !e.seqInit || now-e.lastHeard <= maxSilence {
			continue
		}
		e.missed++
		e.lastHeard = now
		est.Stats.AgedMisses++
		est.completeBeaconWindow(e)
	}
}
