package core

import (
	"math"
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// Worked examples for the competing estimator kinds, mirroring the style
// of TestFigure5WorkedExample: deterministic packet scripts with every
// intermediate value checked by hand.

// kindBeacon feeds one beacon with a reverse-quality footer through any
// LinkEstimator.
func kindBeacon(t *testing.T, est LinkEstimator, src packet.Addr, seq uint16, inQ uint8, lqi uint8) {
	t.Helper()
	le := &packet.LEFrame{Seq: seq, Entries: []packet.LinkEntry{{Addr: self, InQuality: inQ}}}
	if _, ok := est.OnBeacon(src, le, RxMeta{White: true, LQI: lqi}, 0); !ok {
		t.Fatal("OnBeacon rejected well-formed beacon")
	}
}

func wantKindETX(t *testing.T, est LinkEstimator, addr packet.Addr, want float64) {
	t.Helper()
	got, ok := est.Quality(addr)
	if !ok {
		t.Fatalf("no estimate for %v, want %v", addr, want)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ETX(%v) = %.12f, want %.12f", addr, got, want)
	}
}

func TestWMEWMAWorkedExample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MAWindow = 4
	est := NewWMEWMA(self, cfg, sim.NewRand(1))

	// Window 1: beacons 1..4 all received, reverse quality 255 (1.0).
	// PRR EWMA initializes to 1.0; ETX = 1/(1.0*1.0) = 1.0.
	for seq := uint16(1); seq <= 3; seq++ {
		kindBeacon(t, est, 7, seq, 255, 100)
	}
	if _, ok := est.Quality(7); ok {
		t.Fatal("estimate exists before the window filled")
	}
	kindBeacon(t, est, 7, 4, 255, 100)
	wantKindETX(t, est, 7, 1.0)

	// Window 2: seq 5 and 8 received, 6 and 7 missed — sample 2/4 = 0.5.
	// PRR EWMA: 0.9*1.0 + 0.1*0.5 = 0.95. ETX sample 1/0.95; outer EWMA:
	// 0.9*1.0 + 0.1/0.95.
	kindBeacon(t, est, 7, 5, 255, 100)
	kindBeacon(t, est, 7, 8, 255, 100)
	wantKindETX(t, est, 7, 0.9+0.1/0.95)

	// Unicast failures must not move a beacon-only estimate.
	before, _ := est.Quality(7)
	for i := 0; i < 50; i++ {
		est.TxResult(7, false)
	}
	wantKindETX(t, est, 7, before)
	if est.Counters().UnicastWindows != 0 {
		t.Fatal("beacon-only estimator completed a unicast window")
	}
	if est.Counters().BeaconWindows != 2 {
		t.Fatalf("BeaconWindows = %d, want 2", est.Counters().BeaconWindows)
	}
}

func TestWMEWMANeedsReverseQuality(t *testing.T) {
	est := NewWMEWMA(self, DefaultConfig(), sim.NewRand(1))
	// Beacons without our address in the footer: inbound PRR is known but
	// no bidirectional estimate can form.
	for seq := uint16(1); seq <= 10; seq++ {
		le := &packet.LEFrame{Seq: seq}
		est.OnBeacon(7, le, RxMeta{}, 0)
	}
	if _, ok := est.Quality(7); ok {
		t.Fatal("bidirectional estimate without reverse quality")
	}
}

func TestPDRWorkedExample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MAWindow = 4
	est := NewPDR(self, cfg, sim.NewRand(1))

	// Window 1: 4/4 received at reverse quality 1.0 → ETX exactly 1.
	for seq := uint16(1); seq <= 4; seq++ {
		kindBeacon(t, est, 7, seq, 255, 100)
	}
	wantKindETX(t, est, 7, 1.0)

	// Window 2: seq 5, 8 received (6, 7 missed) → sample 0.5. The SMA
	// family publishes the window mean verbatim: ETX = 1/0.5 = 2 — no
	// memory of the perfect window 1 (contrast WMEWMA's 0.9+0.1/0.95).
	kindBeacon(t, est, 7, 5, 255, 100)
	kindBeacon(t, est, 7, 8, 255, 100)
	wantKindETX(t, est, 7, 2.0)

	// Window 3: perfect again → snaps straight back to 1.
	for seq := uint16(9); seq <= 12; seq++ {
		kindBeacon(t, est, 7, seq, 255, 100)
	}
	wantKindETX(t, est, 7, 1.0)
}

func TestLQIWorkedExample(t *testing.T) {
	est := NewLQIEstimator(self, DefaultConfig(), sim.NewRand(1))

	// First beacon at saturated LQI 110: mean 110 → cost AdjustLQI(110)
	// normalized to 1.0. The estimate exists immediately (no window).
	kindBeacon(t, est, 7, 1, 0, 110)
	wantKindETX(t, est, 7, 1.0)

	// A beacon at LQI 60: mean = 0.9*110 + 0.1*60 = 105 →
	// AdjustLQI(105)/AdjustLQI(110).
	kindBeacon(t, est, 7, 2, 0, 60)
	wantKindETX(t, est, 7, float64(AdjustLQI(105))/float64(AdjustLQI(110)))

	// The defining blindness: 100 failed unicasts change nothing.
	before, _ := est.Quality(7)
	for i := 0; i < 100; i++ {
		est.TxResult(7, false)
	}
	wantKindETX(t, est, 7, before)

	// But overheard frames do refine the moving average...
	est.OnOverhear(7, RxMeta{LQI: 110}, 0)
	after, _ := est.Quality(7)
	if after > before {
		t.Fatalf("high-LQI overhear worsened the estimate: %v -> %v", before, after)
	}
	// ...without admitting unknown senders into the table.
	est.OnOverhear(99, RxMeta{LQI: 110}, 0)
	if est.Table().Find(99) != nil {
		t.Fatal("overheard frame admitted an unknown sender")
	}
}

func TestLQIAgingDoublesCost(t *testing.T) {
	est := NewLQIEstimator(self, DefaultConfig(), sim.NewRand(1))
	kindBeacon(t, est, 7, 1, 0, 110)
	wantKindETX(t, est, 7, 1.0)
	est.Age(sim.Second, 10*sim.Second) // silent well past the budget
	wantKindETX(t, est, 7, 2.0)
	// Doubling saturates at MaxETX.
	for i := 0; i < 20; i++ {
		est.Age(sim.Second, sim.Time(20+i*10)*sim.Second)
	}
	wantKindETX(t, est, 7, DefaultConfig().MaxETX)
}

func TestETXFromLQIMonotoneAndClamped(t *testing.T) {
	prev := math.Inf(1)
	for lqi := 0.0; lqi <= 120; lqi++ {
		etx := ETXFromLQI(lqi, 50)
		if etx > prev {
			t.Fatalf("ETXFromLQI not monotone at %v: %v > %v", lqi, etx, prev)
		}
		if etx < 1 || etx > 50 {
			t.Fatalf("ETXFromLQI(%v) = %v outside [1, 50]", lqi, etx)
		}
		prev = etx
	}
	if got := ETXFromLQI(110, 50); got != 1 {
		t.Fatalf("saturated LQI cost = %v, want 1", got)
	}
}

// TestAdjustLQIDelegation pins that the cubic in core is the one the
// MultiHopLQI router uses (the router delegates here), at the TinyOS
// reference points.
func TestAdjustLQIDelegation(t *testing.T) {
	cases := map[uint8]uint16{110: 125, 100: 420, 80: 1950}
	for lqi, want := range cases {
		if got := AdjustLQI(lqi); got != want {
			t.Errorf("AdjustLQI(%d) = %d, want %d", lqi, got, want)
		}
	}
}

// TestNoOpHooksConsumeNoRandomness pins the interface contract that
// ignored feedback hooks are strict no-ops: the estimator's rng stream
// must be untouched by them, or estimator comparisons would decorrelate
// through hooks the estimator does not even use.
func TestNoOpHooksConsumeNoRandomness(t *testing.T) {
	for _, kind := range EstimatorKinds() {
		rng := sim.NewRand(42)
		est, err := NewKind(kind, self, DefaultConfig(), nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Drive only hooks that are no-ops for at least one kind: none may
		// draw. (Admission paths draw by design; they are not exercised on
		// an empty table.)
		est.TxResult(7, false)
		est.OnOverhear(7, RxMeta{LQI: 100}, 0)
		est.Age(sim.Second, sim.Minute)
		probe := rng.Uint64()
		want := sim.NewRand(42).Uint64()
		if probe != want {
			t.Errorf("%s: hooks consumed randomness (stream advanced)", kind)
		}
	}
}

// Every kind must survive the malformed-beacon contract.
func TestKindsRejectNilBeacon(t *testing.T) {
	for _, kind := range EstimatorKinds() {
		est, err := NewKind(kind, self, DefaultConfig(), nil, sim.NewRand(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := est.OnBeacon(7, nil, RxMeta{}, 0); ok {
			t.Errorf("%s: nil beacon accepted", kind)
		}
	}
}
