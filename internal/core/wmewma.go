package core

import (
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// WMEWMA is the Woo-style beacon-only estimator (the WMEWMA of "Taming the
// Underlying Challenges of Reliable Multihop Routing in Sensor Networks",
// generalized from the paper's "CTP without the unicast bit" baseline): the
// inbound beacon reception ratio over a window of MAWindow beacons is
// smoothed by an EWMA, combined with the neighbor-advertised reverse
// quality from beacon footers, and inverted into a bidirectional ETX.
//
// It consumes no link-layer or network-layer feedback: TxResult and
// OnOverhear are strict no-ops, and admission never asks the compare bit —
// the estimator the paper argues is too sluggish to track data-path
// failures (its window turns over at beacon cadence, which Trickle decays
// to minutes). All mechanics except the publish step live in the shared
// beaconKind (policy.go).
type WMEWMA struct {
	beaconKind
}

var _ LinkEstimator = (*WMEWMA)(nil)

// NewWMEWMA builds a beacon-only windowed-EWMA estimator for node self.
func NewWMEWMA(self packet.Addr, cfg Config, rng *sim.Rand) *WMEWMA {
	est := &WMEWMA{beaconKind: newBeaconKind(self, cfg, rng)}
	est.publish = est.publishWindow
	return est
}

// publishWindow folds a finished beacon window into the PRR EWMA and the
// published ETX — the defining double smoothing of the WMEWMA family.
func (est *WMEWMA) publishWindow(e *Entry, sample float64) {
	if !e.prrInit {
		e.prrInit = true
		e.prrEwma = sample
	} else {
		a := est.cfg.PRRAlpha
		e.prrEwma = a*e.prrEwma + (1-a)*sample
	}
	if !e.outValid {
		return // reverse quality unknown: no bidirectional estimate yet
	}
	foldETX(e, invQuality(e.prrEwma*e.outQuality, est.cfg.MaxETX), est.cfg.ETXAlpha, est.cfg.MaxETX)
}
