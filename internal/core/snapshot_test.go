package core

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// snapEvent is one scripted estimator input for the round-trip tests: the
// same pre-generated sequence is fed to the original and the restored
// estimator, so any divergence is snapshot loss, not script drift.
type snapEvent struct {
	kind    int // 0 beacon, 1 tx result, 2 overhear, 3 age
	now     sim.Time
	src     packet.Addr
	seq     uint16
	lqi     uint8
	white   bool
	acked   bool
	entries []packet.LinkEntry
	silence sim.Time
}

// genSnapEvents scripts a deterministic, adversarial event mix: more
// neighbors than table slots (admission, eviction, and lottery draws all
// fire), footers that include self (reverse quality), sequence gaps and
// duplicates, tx acks and failures, and periodic aging.
func genSnapEvents(seed uint64, steps int, self packet.Addr) []snapEvent {
	script := sim.NewRand(seed)
	seqs := map[packet.Addr]uint16{}
	var evs []snapEvent
	now := sim.Time(0)
	for i := 0; i < steps; i++ {
		now += sim.Time(script.Int63n(int64(sim.Second)))
		ev := snapEvent{now: now}
		switch k := script.Intn(10); {
		case k < 6: // beacon from one of 24 neighbors (> TableSize)
			src := packet.Addr(1 + script.Intn(24))
			gap := uint16(1)
			if script.Bernoulli(0.2) {
				gap = uint16(script.Intn(4)) // 0 = duplicate seq
			}
			seqs[src] += gap
			ev.kind, ev.src, ev.seq = 0, src, seqs[src]
			ev.lqi = uint8(40 + script.Intn(70))
			ev.white = script.Bernoulli(0.5)
			if script.Bernoulli(0.7) {
				ev.entries = []packet.LinkEntry{{Addr: self, InQuality: uint8(script.Intn(256))}}
			}
		case k < 8: // unicast result to a likely-known neighbor
			ev.kind, ev.src, ev.acked = 1, packet.Addr(1+script.Intn(24)), script.Bernoulli(0.6)
		case k < 9: // overheard data frame
			ev.kind, ev.src, ev.lqi = 2, packet.Addr(1+script.Intn(24)), uint8(30+script.Intn(80))
		default: // aging pass
			ev.kind, ev.silence = 3, 2*sim.Second
		}
		evs = append(evs, ev)
	}
	return evs
}

// applySnapEvents feeds the scripted events to an estimator, reusing one
// LE scratch frame as the beacon path does.
func applySnapEvents(t *testing.T, est LinkEstimator, evs []snapEvent) {
	t.Helper()
	var le packet.LEFrame
	for i := range evs {
		ev := &evs[i]
		switch ev.kind {
		case 0:
			le = packet.LEFrame{Seq: ev.seq, Entries: ev.entries}
			if _, ok := est.OnBeacon(ev.src, &le, RxMeta{White: ev.white, LQI: ev.lqi}, ev.now); !ok {
				t.Fatalf("event %d: beacon refused", i)
			}
		case 1:
			est.TxResult(ev.src, ev.acked)
		case 2:
			est.OnOverhear(ev.src, RxMeta{LQI: ev.lqi}, ev.now)
		case 3:
			est.Age(ev.silence, ev.now)
		}
	}
}

// sameEstimatorView asserts two estimators are observationally identical:
// neighbor set and order, bit-exact estimates, counters, and the next
// beacon envelope (sequence number and footer round-robin position).
func sameEstimatorView(t *testing.T, a, b LinkEstimator) {
	t.Helper()
	na, nb := a.Neighbors(), b.Neighbors()
	if len(na) != len(nb) {
		t.Fatalf("neighbor counts differ: %v vs %v", na, nb)
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("neighbor order differs at %d: %v vs %v", i, na, nb)
		}
	}
	for addr := packet.Addr(0); addr < 32; addr++ {
		qa, oka := a.Quality(addr)
		qb, okb := b.Quality(addr)
		if oka != okb || math.Float64bits(qa) != math.Float64bits(qb) {
			t.Fatalf("quality for %v differs: (%x,%v) vs (%x,%v)", addr, qa, oka, qb, okb)
		}
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("counters differ:\n%+v\n%+v", a.Counters(), b.Counters())
	}
	fa := *a.MakeBeacon(nil)
	fb := *b.MakeBeacon(nil)
	if fa.Seq != fb.Seq || len(fa.Entries) != len(fb.Entries) {
		t.Fatalf("beacon envelopes differ: %+v vs %+v", fa, fb)
	}
	for i := range fa.Entries {
		if fa.Entries[i] != fb.Entries[i] {
			t.Fatalf("beacon footer entry %d differs: %+v vs %+v", i, fa.Entries[i], fb.Entries[i])
		}
	}
}

// TestSnapshotRoundTripBitIdentical is the snapshot/restore certificate:
// for every kind, an estimator snapshotted mid-stream — through a JSON
// round trip — and restored into a fresh instance continues bit-identically
// to the uninterrupted original over an adversarial second half.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	const self = packet.Addr(0)
	for _, kind := range EstimatorKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			evs := genSnapEvents(0x5eed+uint64(len(kind)), 4000, self)
			half := len(evs) / 2

			orig, err := NewKind(kind, self, DefaultConfig(), nil, sim.NewCountedRand(77))
			if err != nil {
				t.Fatal(err)
			}
			cmp := ComparerFunc(func(src packet.Addr, _ []byte) bool { return src%3 == 0 })
			orig.SetComparer(cmp)
			applySnapEvents(t, orig, evs[:half])

			snap, err := orig.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			blob, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var decoded EstimatorSnapshot
			if err := json.Unmarshal(blob, &decoded); err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreKind(&decoded)
			if err != nil {
				t.Fatal(err)
			}
			restored.SetComparer(cmp)

			sameEstimatorView(t, orig, restored)
			applySnapEvents(t, orig, evs[half:])
			applySnapEvents(t, restored, evs[half:])
			sameEstimatorView(t, orig, restored)
		})
	}
}

// TestSnapshotRejectsPlainRNG: estimators over ordinary simulation streams
// refuse to snapshot instead of serializing a wrong rng position.
func TestSnapshotRejectsPlainRNG(t *testing.T) {
	est := New(0, DefaultConfig(), nil, sim.NewRand(1))
	if _, err := est.Snapshot(); !errors.Is(err, ErrSnapshotRNG) {
		t.Fatalf("err = %v, want ErrSnapshotRNG", err)
	}
}

// TestSnapshotVersionAndKindGates: the restore path refuses foreign
// versions, mismatched kinds, and structurally bad payloads with typed
// errors.
func TestSnapshotVersionAndKindGates(t *testing.T) {
	est, _ := NewKind(KindWMEWMA, 0, DefaultConfig(), nil, sim.NewCountedRand(1))
	snap, err := est.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	bad := *snap
	bad.Version = SnapshotVersion + 1
	if _, err := RestoreKind(&bad); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version gate: err = %v, want ErrSnapshotVersion", err)
	}
	if err := est.Restore(&bad); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version gate (Restore): err = %v, want ErrSnapshotVersion", err)
	}

	bad = *snap
	bad.Kind = KindPDR
	if err := est.Restore(&bad); !errors.Is(err, ErrSnapshotKind) {
		t.Fatalf("kind gate: err = %v, want ErrSnapshotKind", err)
	}
	bad.Kind = "no-such-kind"
	if _, err := RestoreKind(&bad); !errors.Is(err, ErrSnapshotKind) {
		t.Fatalf("unknown kind: err = %v, want ErrSnapshotKind", err)
	}

	bad = *snap
	bad.Config.TableSize = 0
	if _, err := RestoreKind(&bad); !errors.Is(err, ErrSnapshotState) {
		t.Fatalf("bad config: err = %v, want ErrSnapshotState", err)
	}

	bad = *snap
	bad.Entries = make([]EntrySnapshot, bad.Config.TableSize+1)
	for i := range bad.Entries {
		bad.Entries[i].Addr = packet.Addr(i + 1)
	}
	if err := est.Restore(&bad); !errors.Is(err, ErrSnapshotState) {
		t.Fatalf("overfull table: err = %v, want ErrSnapshotState", err)
	}

	bad = *snap
	bad.Entries = []EntrySnapshot{{Addr: 3}, {Addr: 3}}
	if err := est.Restore(&bad); !errors.Is(err, ErrSnapshotState) {
		t.Fatalf("duplicate entries: err = %v, want ErrSnapshotState", err)
	}

	if _, err := RestoreKind(nil); !errors.Is(err, ErrSnapshotState) {
		t.Fatalf("nil snapshot: err = %v, want ErrSnapshotState", err)
	}
}

// TestSnapshotPreservesWiring: Restore keeps the receiver's probe bus and
// comparer — they are wiring, not state, and rolling restarts re-install
// them before events flow.
func TestSnapshotPreservesWiring(t *testing.T) {
	est := New(0, DefaultConfig(), nil, sim.NewCountedRand(5))
	asked := false
	est.SetComparer(ComparerFunc(func(packet.Addr, []byte) bool { asked = true; return false }))
	snap, err := est.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if est.cmp == nil {
		t.Fatal("comparer lost across Restore")
	}
	_ = asked
}
