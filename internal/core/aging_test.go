package core

import (
	"math"
	"testing"
	"testing/quick"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

func TestEvictWorstPrefersSquatters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TableSize = 3
	est := New(self, cfg, nil, sim.NewRand(1))
	// Two good neighbors with estimates, one squatter that beacons but
	// (in broadcast mode it would never mature)... here: make a squatter
	// by feeding single beacons repeatedly with huge gaps so its window
	// reinitializes and it completes windows with heavy loss.
	for seq := uint16(1); seq <= 6; seq++ {
		beacon(t, est, 1, seq, true)
		beacon(t, est, 2, seq, true)
	}
	// Neighbor 3: receives 1 of every 14 beacons -> terrible but mature.
	for i := 0; i < 10; i++ {
		beacon(t, est, 3, uint16(1+i*14), true)
	}
	e3 := est.Table().Find(3)
	if e3 == nil {
		t.Fatal("setup: 3 missing")
	}
	if etx3, ok := e3.ETX(); !ok || etx3 < cfg.EvictETX {
		t.Fatalf("setup: neighbor 3 should look bad (etx=%v ok=%v)", etx3, ok)
	}
	// A newcomer arrives at the full table: the bad entry must go, the
	// good ones stay.
	beacon(t, est, 9, 1, false)
	if est.Table().Find(3) != nil {
		t.Fatal("worst entry survived")
	}
	if est.Table().Find(1) == nil || est.Table().Find(2) == nil {
		t.Fatal("good entry evicted")
	}
	if est.Table().Find(9) == nil {
		t.Fatal("newcomer not admitted")
	}
}

func TestEvictWorstSparesGoodTables(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TableSize = 2
	est := New(self, cfg, nil, sim.NewRand(1))
	for seq := uint16(1); seq <= 4; seq++ {
		beacon(t, est, 1, seq, true)
		beacon(t, est, 2, seq, true)
	}
	// Both entries are perfect; a (non-white) newcomer must be rejected.
	beacon(t, est, 9, 1, false)
	if est.Table().Find(9) != nil {
		t.Fatal("newcomer displaced a good entry without white/compare")
	}
}

func TestAgeDoesNotEvict(t *testing.T) {
	est := newEst(FourBit())
	beacon(t, est, 7, 1, true)
	beacon(t, est, 7, 2, true)
	for i := 1; i <= 50; i++ {
		est.Age(10*sim.Second, sim.Time(i)*sim.Minute)
	}
	if est.Table().Find(7) == nil {
		t.Fatal("aging removed the entry; it must only degrade the estimate")
	}
	etx, ok := est.Quality(7)
	if !ok {
		t.Fatal("estimate lost")
	}
	// The two EWMA stages degrade gradually; after 25 all-miss windows the
	// estimate must be far above any usable link (enough to re-route).
	if etx < 5 {
		t.Fatalf("long-dead neighbor ETX = %v, want clearly degraded (> 5)", etx)
	}
}

func TestPinnedParentAgesButSurvivesReplacement(t *testing.T) {
	cmp := ComparerFunc(func(packet.Addr, []byte) bool { return true })
	cfg := DefaultConfig()
	cfg.TableSize = 2
	est := New(self, cfg, cmp, sim.NewRand(1))
	beacon(t, est, 1, 1, true)
	beacon(t, est, 1, 2, true)
	beacon(t, est, 2, 1, true)
	est.Pin(1)
	// Age hard: entry 1 degrades to MaxETX-ish but must survive any
	// admission pressure because it is pinned.
	for i := 1; i <= 60; i++ {
		est.Age(sim.Second, sim.Time(i)*sim.Minute)
	}
	for a := packet.Addr(10); a < 20; a++ {
		beacon(t, est, a, 1, true)
	}
	if est.Table().Find(1) == nil {
		t.Fatal("pinned, aged parent evicted")
	}
}

// Property: Quality(x) transitions monotonically through feed order — more
// precisely, the estimate never becomes NaN/Inf and Neighbors never exceeds
// the configured table size no matter the input interleaving.
func TestPropertyEstimatorRobustness(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		cmp := ComparerFunc(func(packet.Addr, []byte) bool { return seed%2 == 0 })
		cfg := DefaultConfig()
		cfg.TableSize = 4
		est := New(self, cfg, cmp, sim.NewRand(seed))
		now := sim.Time(0)
		seqs := map[packet.Addr]uint16{}
		for _, op := range ops {
			addr := packet.Addr(op%9 + 1)
			now += sim.Time(op%1000) * sim.Millisecond
			switch op % 5 {
			case 0, 1:
				seqs[addr] += uint16(op%4) + 1
				est.OnBeacon(addr, &packet.LEFrame{Seq: seqs[addr]}, RxMeta{White: op%2 == 0}, now)
			case 2:
				est.TxResult(addr, op%3 == 0)
			case 3:
				est.Pin(addr)
				est.Unpin(addr)
			case 4:
				est.Age(sim.Second, now)
			}
			if est.Table().Len() > cfg.TableSize {
				return false
			}
			for _, a := range est.Neighbors() {
				if etx, ok := est.Quality(a); ok {
					if math.IsNaN(etx) || math.IsInf(etx, 0) || etx < 1 || etx > cfg.MaxETX {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeBeaconRespectsWireLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TableSize = 40
	cfg.FooterEntries = 100 // deliberately above the wire maximum
	est := New(self, cfg, nil, sim.NewRand(1))
	for a := packet.Addr(1); a <= 40; a++ {
		beacon(t, est, a, 1, true)
		beacon(t, est, a, 2, true)
	}
	le := est.MakeBeacon(nil)
	if len(le.Entries) > packet.MaxLinkEntries {
		t.Fatalf("footer %d entries exceeds wire maximum %d", len(le.Entries), packet.MaxLinkEntries)
	}
	if _, err := le.Encode(); err != nil {
		t.Fatalf("beacon does not encode: %v", err)
	}
}
