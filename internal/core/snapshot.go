package core

import (
	"errors"
	"fmt"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// Estimator snapshot/restore: the serializable form of a LinkEstimator's
// complete state. A snapshot taken mid-stream and restored into a fresh
// process continues bit-identically — same estimates, same admission
// decisions, same beacon footers — because it captures everything the
// estimator's future behavior depends on: every table entry field in
// insertion order (the footer round-robin, eviction scans, and
// random-victim draws all observe that order), the window accounting in
// progress, the wire-envelope cursors, the counters, and the rng stream
// position (seed + draw count of a counted stream; see sim.NewCountedRand).
//
// The format is JSON-friendly: Go's float64 encoding is shortest-round-trip
// exact, so estimates survive marshal/unmarshal bit-for-bit. Version gates
// the schema — a snapshot from a different schema is refused, never
// misinterpreted.

// SnapshotVersion is the current estimator snapshot schema version.
// Restore refuses any other value.
const SnapshotVersion = 1

// Snapshot/restore errors. Callers branch on these with errors.Is.
var (
	// ErrSnapshotRNG: the estimator draws from a plain stream whose
	// position cannot be observed (simulation wiring); only estimators
	// built over sim.NewCountedRand streams are snapshotable.
	ErrSnapshotRNG = errors.New("core: estimator rng stream is not snapshotable (use sim.NewCountedRand)")
	// ErrSnapshotVersion: the snapshot's schema version is not supported.
	ErrSnapshotVersion = errors.New("core: unsupported estimator snapshot version")
	// ErrSnapshotKind: the snapshot's kind does not match the estimator
	// (or names no registered kind).
	ErrSnapshotKind = errors.New("core: estimator snapshot kind mismatch")
	// ErrSnapshotState: the snapshot's payload is structurally invalid
	// (more entries than the table holds, duplicate addresses, bad config).
	ErrSnapshotState = errors.New("core: invalid estimator snapshot state")
)

// EntrySnapshot is the serialized form of one table Entry — every field,
// including the unexported window accounting, so a restored entry resumes
// its in-progress windows exactly.
type EntrySnapshot struct {
	Addr   packet.Addr `json:"addr"`
	Pinned bool        `json:"pinned,omitempty"`

	SeqInit   bool     `json:"seq_init,omitempty"`
	LastSeq   uint16   `json:"last_seq,omitempty"`
	Rcvd      int      `json:"rcvd,omitempty"`
	Missed    int      `json:"missed,omitempty"`
	PRRInit   bool     `json:"prr_init,omitempty"`
	PRREwma   float64  `json:"prr_ewma,omitempty"`
	LastHeard sim.Time `json:"last_heard,omitempty"`

	OutQuality float64 `json:"out_quality,omitempty"`
	OutValid   bool    `json:"out_valid,omitempty"`

	UTotal     int `json:"u_total,omitempty"`
	UAcked     int `json:"u_acked,omitempty"`
	FailsSince int `json:"fails_since,omitempty"`

	ETXInit bool    `json:"etx_init,omitempty"`
	ETX     float64 `json:"etx,omitempty"`

	Windows int `json:"windows,omitempty"`
}

// EstimatorSnapshot is the versioned, serializable state of one estimator
// instance. Entries appear in table insertion order.
type EstimatorSnapshot struct {
	Version  int           `json:"version"`
	Kind     EstimatorKind `json:"kind"`
	Self     packet.Addr   `json:"self"`
	Config   Config        `json:"config"`
	RNGSeed  uint64        `json:"rng_seed"`
	RNGDraws uint64        `json:"rng_draws"`

	BeaconSeq uint16          `json:"beacon_seq"`
	FooterIdx int             `json:"footer_idx,omitempty"`
	Stats     Stats           `json:"stats"`
	Entries   []EntrySnapshot `json:"entries"`
}

// snapshot serializes one entry.
func (e *Entry) snapshot() EntrySnapshot {
	return EntrySnapshot{
		Addr: e.Addr, Pinned: e.Pinned,
		SeqInit: e.seqInit, LastSeq: e.lastSeq, Rcvd: e.rcvd, Missed: e.missed,
		PRRInit: e.prrInit, PRREwma: e.prrEwma, LastHeard: e.lastHeard,
		OutQuality: e.outQuality, OutValid: e.outValid,
		UTotal: e.uTotal, UAcked: e.uAcked, FailsSince: e.failsSince,
		ETXInit: e.etxInit, ETX: e.etx,
		Windows: e.windows,
	}
}

// restoreInto writes the snapshot's fields over a freshly-inserted entry.
func (s *EntrySnapshot) restoreInto(e *Entry) {
	e.Pinned = s.Pinned
	e.seqInit, e.lastSeq, e.rcvd, e.missed = s.SeqInit, s.LastSeq, s.Rcvd, s.Missed
	e.prrInit, e.prrEwma, e.lastHeard = s.PRRInit, s.PRREwma, s.LastHeard
	e.outQuality, e.outValid = s.OutQuality, s.OutValid
	e.uTotal, e.uAcked, e.failsSince = s.UTotal, s.UAcked, s.FailsSince
	e.etxInit, e.etx = s.ETXInit, s.ETX
	e.windows = s.Windows
}

// snapshotCommon assembles the snapshot fields every kind shares.
func snapshotCommon(kind EstimatorKind, self packet.Addr, cfg Config, rng *sim.Rand,
	beaconSeq uint16, footerIdx int, stats Stats, t *Table) (*EstimatorSnapshot, error) {
	seed, draws, ok := rng.SnapshotState()
	if !ok {
		return nil, ErrSnapshotRNG
	}
	snap := &EstimatorSnapshot{
		Version: SnapshotVersion, Kind: kind, Self: self, Config: cfg,
		RNGSeed: seed, RNGDraws: draws,
		BeaconSeq: beaconSeq, FooterIdx: footerIdx, Stats: stats,
		Entries: make([]EntrySnapshot, 0, t.Len()),
	}
	for _, e := range t.Entries() {
		snap.Entries = append(snap.Entries, e.snapshot())
	}
	return snap, nil
}

// checkSnapshot validates the envelope against the restoring kind and
// returns the restored rng stream and rebuilt table.
func checkSnapshot(snap *EstimatorSnapshot, kind EstimatorKind) (*sim.Rand, *Table, error) {
	if snap == nil {
		return nil, nil, fmt.Errorf("%w: nil snapshot", ErrSnapshotState)
	}
	if snap.Version != SnapshotVersion {
		return nil, nil, fmt.Errorf("%w: snapshot has version %d, this build speaks %d",
			ErrSnapshotVersion, snap.Version, SnapshotVersion)
	}
	if snap.Kind != kind {
		return nil, nil, fmt.Errorf("%w: snapshot is %q, estimator is %q", ErrSnapshotKind, snap.Kind, kind)
	}
	if err := snap.Config.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrSnapshotState, err)
	}
	if len(snap.Entries) > snap.Config.TableSize {
		return nil, nil, fmt.Errorf("%w: %d entries exceed table size %d",
			ErrSnapshotState, len(snap.Entries), snap.Config.TableSize)
	}
	t := newTable(snap.Config.TableSize)
	for i := range snap.Entries {
		s := &snap.Entries[i]
		if t.Find(s.Addr) != nil {
			return nil, nil, fmt.Errorf("%w: duplicate entry for %v", ErrSnapshotState, s.Addr)
		}
		s.restoreInto(t.Insert(s.Addr))
	}
	return sim.RestoreCountedRand(snap.RNGSeed, snap.RNGDraws), t, nil
}

// Snapshot implements LinkEstimator for the four-bit hybrid.
func (est *Estimator) Snapshot() (*EstimatorSnapshot, error) {
	return snapshotCommon(KindFourBit, est.self, est.cfg, est.rng,
		est.beaconSeq, est.footerIdx, est.Stats, est.table)
}

// Restore implements LinkEstimator for the four-bit hybrid. The installed
// comparer and probe bus survive — they are receiver-side wiring, not
// estimator state.
func (est *Estimator) Restore(snap *EstimatorSnapshot) error {
	rng, t, err := checkSnapshot(snap, KindFourBit)
	if err != nil {
		return err
	}
	est.table, est.self, est.cfg, est.rng = t, snap.Self, snap.Config, rng
	est.tableView.self = snap.Self
	est.beaconSeq, est.footerIdx, est.Stats = snap.BeaconSeq, snap.FooterIdx, snap.Stats
	return nil
}

// snapshot assembles a beacon-kind snapshot under the concrete kind name.
func (k *beaconKind) snapshot(kind EstimatorKind) (*EstimatorSnapshot, error) {
	return snapshotCommon(kind, k.self, k.cfg, k.rng,
		k.beaconSeq, k.footerIdx, k.stats, k.table)
}

// restore rebuilds the shared beacon-kind state from the snapshot.
func (k *beaconKind) restore(kind EstimatorKind, snap *EstimatorSnapshot) error {
	rng, t, err := checkSnapshot(snap, kind)
	if err != nil {
		return err
	}
	k.table, k.self, k.cfg, k.rng = t, snap.Self, snap.Config, rng
	k.tableView.self = snap.Self
	k.window = snap.Config.maWindow()
	k.beaconSeq, k.footerIdx, k.stats = snap.BeaconSeq, snap.FooterIdx, snap.Stats
	return nil
}

// Snapshot implements LinkEstimator for the WMEWMA kind.
func (est *WMEWMA) Snapshot() (*EstimatorSnapshot, error) { return est.snapshot(KindWMEWMA) }

// Restore implements LinkEstimator for the WMEWMA kind.
func (est *WMEWMA) Restore(snap *EstimatorSnapshot) error { return est.restore(KindWMEWMA, snap) }

// Snapshot implements LinkEstimator for the PDR kind.
func (est *PDREstimator) Snapshot() (*EstimatorSnapshot, error) { return est.snapshot(KindPDR) }

// Restore implements LinkEstimator for the PDR kind.
func (est *PDREstimator) Restore(snap *EstimatorSnapshot) error { return est.restore(KindPDR, snap) }

// Snapshot implements LinkEstimator for the LQI kind (no footer cursor —
// its beacons advertise nothing).
func (est *LQIEstimator) Snapshot() (*EstimatorSnapshot, error) {
	return snapshotCommon(KindLQI, est.self, est.cfg, est.rng,
		est.beaconSeq, 0, est.stats, est.table)
}

// Restore implements LinkEstimator for the LQI kind.
func (est *LQIEstimator) Restore(snap *EstimatorSnapshot) error {
	rng, t, err := checkSnapshot(snap, KindLQI)
	if err != nil {
		return err
	}
	est.table, est.self, est.cfg, est.rng = t, snap.Self, snap.Config, rng
	est.tableView.self = snap.Self
	est.beaconSeq, est.stats = snap.BeaconSeq, snap.Stats
	return nil
}

// RestoreKind builds a fresh estimator of the snapshot's kind and restores
// the snapshot into it — the rolling-restart path: serialize with Snapshot,
// ship the JSON, RestoreKind on the other side, continue bit-identically.
// The returned estimator has no comparer or probe bus installed; callers
// re-wire those as after NewKind.
func RestoreKind(snap *EstimatorSnapshot) (LinkEstimator, error) {
	if snap == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrSnapshotState)
	}
	if _, err := ParseEstimatorKind(string(snap.Kind)); err != nil || snap.Kind == "" {
		return nil, fmt.Errorf("%w: %q", ErrSnapshotKind, snap.Kind)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot has version %d, this build speaks %d",
			ErrSnapshotVersion, snap.Version, SnapshotVersion)
	}
	if err := snap.Config.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotState, err)
	}
	est, err := NewKind(snap.Kind, snap.Self, snap.Config, nil, sim.NewCountedRand(snap.RNGSeed))
	if err != nil {
		return nil, err
	}
	if err := est.Restore(snap); err != nil {
		return nil, err
	}
	return est, nil
}
