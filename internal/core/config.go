package core

import "fmt"

// Config parameterizes the estimators. The defaults are the paper's: a
// 10-entry table, unicast window ku=5, beacon window kb=2, and EWMA weights
// of 0.9 for both the beacon-PRR stream and the outer hybrid ETX stream.
// The non-four-bit estimator kinds read the same knobs (table size, alphas,
// eviction policy) plus MAWindow, so one Config parameterizes any kind.
type Config struct {
	TableSize     int
	UnicastWindow int     // ku: transmissions per unicast ETX sample
	BeaconWindow  int     // kb: beacons (received+missed) per PRR sample
	PRRAlpha      float64 // windowed-EWMA weight on beacon PRR samples
	ETXAlpha      float64 // outer EWMA weight on hybrid ETX samples
	MaxETX        float64 // estimate clamp (a dead link)
	FooterEntries int     // link-info entries advertised per beacon
	MaxSeqGap     int     // larger beacon seq gaps reinitialize the window
	// MAWindow is the moving-average window (in beacons) of the wmewma and
	// pdr estimator kinds; 0 means the default (the four-bit estimator does
	// not read it — its windows are BeaconWindow and UnicastWindow).
	MAWindow int
	// EvictETX is the standard (Woo et al. / TinyOS) replacement policy:
	// with a full table, a newcomer may displace the unpinned entry with
	// the worst effective ETX, provided that ETX is at least EvictETX.
	// Entries that have completed several beacon windows without producing
	// an estimate (e.g. the neighbor never reciprocates reverse link
	// information) count as MaxETX — they hold a slot but provide no link.
	EvictETX float64
	// LotteryProb approximates the FREQUENCY part of Woo et al.'s table
	// management: a beacon from an unknown neighbor that finds the table
	// full (and nothing evictable) still claims a slot with this
	// probability, displacing a random unpinned entry. Frequently-heard
	// neighbors (close, reliable) get proportionally many chances, so the
	// table converges toward the most useful senders instead of freezing
	// on whichever ten were heard first — without it, clusters of nodes
	// can lock onto each other and never admit a root-ward link.
	LotteryProb float64
	Features    Features
}

// DefaultConfig returns the paper's parameterization with the full 4B
// feature set.
func DefaultConfig() Config {
	return Config{
		TableSize:     10,
		UnicastWindow: 5,
		BeaconWindow:  2,
		PRRAlpha:      0.9,
		ETXAlpha:      0.9,
		MaxETX:        50,
		FooterEntries: 8,
		MaxSeqGap:     32,
		MAWindow:      defaultMAWindow,
		EvictETX:      6,
		LotteryProb:   0.03,
		Features:      FourBit(),
	}
}

// defaultMAWindow is the moving-average window the wmewma/pdr kinds fall
// back to when Config.MAWindow is zero.
const defaultMAWindow = 5

// Validate reports the first structural problem with the configuration.
// Estimator constructors call it (construction panics or errors on an
// invalid config), and scenario spec validation calls it before a run is
// ever scheduled, so a bad knob fails fast instead of producing a silently
// meaningless sweep cell.
func (c Config) Validate() error {
	switch {
	case c.TableSize <= 0:
		return fmt.Errorf("core: TableSize %d must be positive", c.TableSize)
	case c.UnicastWindow <= 0:
		return fmt.Errorf("core: UnicastWindow %d must be positive", c.UnicastWindow)
	case c.BeaconWindow <= 0:
		return fmt.Errorf("core: BeaconWindow %d must be positive", c.BeaconWindow)
	case c.MAWindow < 0:
		return fmt.Errorf("core: MAWindow %d must be >= 0 (0 = default)", c.MAWindow)
	case !(c.PRRAlpha > 0 && c.PRRAlpha <= 1):
		return fmt.Errorf("core: PRRAlpha %g outside (0, 1]", c.PRRAlpha)
	case !(c.ETXAlpha > 0 && c.ETXAlpha <= 1):
		return fmt.Errorf("core: ETXAlpha %g outside (0, 1]", c.ETXAlpha)
	case c.MaxETX <= 1:
		return fmt.Errorf("core: MaxETX %g must exceed 1 (a perfect link)", c.MaxETX)
	case c.EvictETX <= 1:
		return fmt.Errorf("core: EvictETX %g must exceed 1 (would evict perfect links)", c.EvictETX)
	case c.EvictETX > c.MaxETX:
		return fmt.Errorf("core: EvictETX %g exceeds MaxETX %g (nothing would ever be evictable)", c.EvictETX, c.MaxETX)
	case c.FooterEntries < 0:
		return fmt.Errorf("core: FooterEntries %d must be >= 0", c.FooterEntries)
	case c.MaxSeqGap <= 0:
		return fmt.Errorf("core: MaxSeqGap %d must be positive", c.MaxSeqGap)
	case c.LotteryProb < 0 || c.LotteryProb > 1:
		return fmt.Errorf("core: LotteryProb %g outside [0, 1]", c.LotteryProb)
	}
	return nil
}

// maWindow resolves the moving-average window, applying the default.
func (c Config) maWindow() int {
	if c.MAWindow > 0 {
		return c.MAWindow
	}
	return defaultMAWindow
}
