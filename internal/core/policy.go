package core

import (
	"fourbit/internal/packet"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// Shared estimator mechanics. Every LinkEstimator kind manages the same
// fixed-capacity Table, speaks the same LE beacon envelope, counts beacon
// sequence numbers the same way, and (except for admission details) evicts
// by the same Woo-style policy — so those mechanics live here, and each
// estimator file contains only what makes that estimator different.

// tableView provides the neighbor-table half of the LinkEstimator contract
// over a shared *Table, plus the probe-bus plumbing every kind shares.
// Estimators embed it.
type tableView struct {
	table  *Table
	self   packet.Addr
	probes *probe.Bus
}

// SetProbes implements LinkEstimator: it installs the run's probe bus,
// into which the estimator emits its table admission/eviction events.
// Estimators are built without a clock, so unlike the other layers they
// receive the bus explicitly (node wiring calls this right after NewKind).
func (v *tableView) SetProbes(b *probe.Bus) { v.probes = b }

// Table exposes the link table for inspection (routing, metrics, tests).
func (v *tableView) Table() *Table { return v.table }

// Quality returns the current bidirectional ETX estimate for addr. ok is
// false while no estimate exists (unknown neighbor, or still bootstrapping).
func (v *tableView) Quality(addr packet.Addr) (etx float64, ok bool) {
	e := v.table.Find(addr)
	if e == nil || !e.etxInit {
		return 0, false
	}
	return e.etx, true
}

// Pin sets the pin bit on addr (network layer: "this link is in use").
func (v *tableView) Pin(addr packet.Addr) bool { return v.table.Pin(addr) }

// Unpin clears the pin bit on addr.
func (v *tableView) Unpin(addr packet.Addr) bool { return v.table.Unpin(addr) }

// Neighbors returns the addresses currently in the table.
func (v *tableView) Neighbors() []packet.Addr {
	out := make([]packet.Addr, 0, v.table.Len())
	for _, e := range v.table.Entries() {
		out = append(out, e.Addr)
	}
	return out
}

// effETX is the eviction-policy view of an entry, shared by every
// estimator kind: its estimate if initialized; MaxETX for a mature
// estimate-less squatter (the maturity rule of Woo et al.); 0 — not
// evictable — while warming up. A plain function rather than a per-kind
// closure so the admission scans, the hottest loops of the whole
// simulator, inline it. (The LQI kind publishes on the first sample, so
// its entries never hit the squatter clause — behavior is identical for
// all kinds.)
func effETX(e *Entry, maxETX float64) float64 {
	if e.etxInit {
		return e.etx
	}
	if e.windows >= matureWindows {
		return maxETX
	}
	return 0
}

// evictWorst removes the unpinned entry with the highest effective ETX if
// that ETX reaches the eviction threshold, naming the victim and reporting
// whether a slot was freed. Mature entries without an estimate count as
// maxETX (see effETX).
func evictWorst(t *Table, maxETX, threshold float64) (packet.Addr, bool) {
	var victim packet.Addr
	worst := -1.0
	for _, e := range t.entries {
		if e.Pinned {
			continue
		}
		etx := effETX(e, maxETX)
		if etx > worst {
			worst = etx
			victim = e.Addr
		}
	}
	if worst < threshold {
		return 0, false
	}
	return victim, t.Remove(victim)
}

// evictForReplacement frees a slot for a qualified newcomer: the unpinned
// entry with the worst effective ETX goes (mirroring the TinyOS 4-bit
// estimator, which replaces its worst mature neighbor on a set compare
// bit); if every unpinned entry is still warming up, a random one goes
// instead. Evicting the *best* links here would churn the table faster
// than estimates mature — the failure mode the maturity rules of Woo et
// al. exist to prevent. The victim is named so callers can report the
// eviction.
func evictForReplacement(t *Table, maxETX float64, rng *sim.Rand) (packet.Addr, bool) {
	var victim packet.Addr
	worst := 0.0
	for _, e := range t.entries {
		if e.Pinned {
			continue
		}
		if etx := effETX(e, maxETX); etx > worst {
			worst = etx
			victim = e.Addr
		}
	}
	if worst > 0 {
		return victim, t.Remove(victim)
	}
	return t.evictRandomUnpinned(rng)
}

// matureWindows is the number of completed estimation windows after which
// an entry that still has no estimate counts as a squatter (effective ETX
// = MaxETX) for eviction purposes — the maturity rule of Woo et al.,
// shared by every kind's effectiveETX.
const matureWindows = 3

func mustInsert(t *Table, src packet.Addr) *Entry {
	e := t.Insert(src)
	if e == nil {
		panic("core: insert failed after eviction")
	}
	return e
}

// admitBasic is the admission policy of the non-four-bit estimators: free
// slots are always granted; otherwise the standard replacement policy
// (displace a useless entry whose effective ETX reaches EvictETX) and the
// FREQUENCY lottery apply — the four-bit white/compare path in between is
// the one admission step unique to that design. Admission outcomes are
// emitted as table events through the view's probe bus.
func admitBasic(v *tableView, rng *sim.Rand, cfg *Config, stats *Stats, src packet.Addr) *Entry {
	t := v.table
	if e := t.Insert(src); e != nil {
		stats.Inserted++
		v.probes.Table(v.self, src, probe.OpInsert)
		return e
	}
	if victim, ok := evictWorst(t, cfg.MaxETX, cfg.EvictETX); ok {
		stats.Replaced++
		v.emitReplace(victim, src)
		return mustInsert(t, src)
	}
	if rng.Bernoulli(cfg.LotteryProb) {
		if victim, ok := evictForReplacement(t, cfg.MaxETX, rng); ok {
			stats.Replaced++
			stats.LotteryWins++
			v.emitReplace(victim, src)
			return mustInsert(t, src)
		}
	}
	stats.RejectedFull++
	v.probes.Table(v.self, src, probe.OpReject)
	return nil
}

// emitReplace reports an eviction-for-admission pair on the probe bus.
func (v *tableView) emitReplace(victim, newcomer packet.Addr) {
	v.probes.Table(v.self, victim, probe.OpEvict)
	v.probes.Table(v.self, newcomer, probe.OpReplace)
}

// accountSeq folds a received beacon's sequence number into the entry's
// reception window: gaps count as misses, wraparound is handled by uint16
// arithmetic, and implausibly long silences restart the window.
func accountSeq(e *Entry, seq uint16, maxSeqGap int, now sim.Time) {
	e.lastHeard = now
	if !e.seqInit {
		e.seqInit = true
		e.lastSeq = seq
		e.rcvd = 1
		return
	}
	gap := int(seq - e.lastSeq) // uint16 arithmetic handles wraparound
	e.lastSeq = seq
	switch {
	case gap == 0:
		// Duplicate delivery; ignore.
	case gap > maxSeqGap || gap < 0:
		// Too long a silence (or a rebooted neighbor): restart the window
		// rather than recording an implausible miss burst.
		e.rcvd, e.missed = 1, 0
	default:
		e.missed += gap - 1
		e.rcvd++
	}
}

// scanFooter records the reverse (outbound) quality the neighbor advertises
// for us in its beacon footer.
func scanFooter(e *Entry, le *packet.LEFrame, self packet.Addr) {
	for _, ent := range le.Entries {
		if ent.Addr == self {
			e.outQuality = float64(ent.InQuality) / 255
			e.outValid = true
		}
	}
}

// buildBeacon assembles the LE envelope around a network payload: the given
// sequence number plus a round-robin subset of the table's inbound
// qualities as the footer. It fills le in place — the estimator's scratch
// frame, whose Entries backing array is reused beacon after beacon.
func buildBeacon(le *packet.LEFrame, t *Table, seq uint16, footerIdx *int, footerEntries int, netPayload []byte) {
	le.Seq, le.NetPayload, le.Entries = seq, netPayload, le.Entries[:0]
	entries := t.Entries()
	n := len(entries)
	max := footerEntries
	if max > packet.MaxLinkEntries {
		max = packet.MaxLinkEntries
	}
	for i := 0; i < n && len(le.Entries) < max; i++ {
		e := entries[(*footerIdx+i)%n]
		if !e.prrInit {
			continue
		}
		le.Entries = append(le.Entries, packet.LinkEntry{
			Addr:      e.Addr,
			InQuality: uint8(e.prrEwma*255 + 0.5),
		})
	}
	if n > 0 {
		*footerIdx = (*footerIdx + 1) % n
	}
}

// beaconKind is the machinery shared by the windowed beacon-driven
// estimator kinds (wmewma, pdr): sequence-window accounting over MAWindow
// beacons, footer reverse quality, basic admission, silence aging, and the
// standard beacon envelope. The concrete kind supplies only publish — how
// a finished window's reception ratio becomes the published estimate —
// which is exactly where the moving-average families differ.
type beaconKind struct {
	tableView
	cfg    Config
	self   packet.Addr
	rng    *sim.Rand
	window int

	beaconSeq     uint16
	footerIdx     int
	beaconScratch packet.LEFrame // MakeBeacon's reusable envelope

	stats   Stats
	publish func(e *Entry, sample float64)
}

func newBeaconKind(self packet.Addr, cfg Config, rng *sim.Rand) beaconKind {
	if err := cfg.Validate(); err != nil {
		panic("core: invalid estimator config: " + err.Error())
	}
	return beaconKind{
		tableView: tableView{table: newTable(cfg.TableSize), self: self},
		cfg:       cfg,
		self:      self,
		rng:       rng,
		window:    cfg.maWindow(),
	}
}

// SetComparer implements LinkEstimator; the beacon-only kinds never ask
// the network layer anything, so the comparer is ignored.
func (k *beaconKind) SetComparer(cmp Comparer) {}

// Counters implements LinkEstimator.
func (k *beaconKind) Counters() Stats { return k.stats }

// MakeBeacon implements LinkEstimator: the footer advertises inbound
// reception ratios, which neighbors need for the reverse half of their
// bidirectional estimates.
func (k *beaconKind) MakeBeacon(netPayload []byte) *packet.LEFrame {
	k.beaconSeq++
	buildBeacon(&k.beaconScratch, k.table, k.beaconSeq, &k.footerIdx, k.cfg.FooterEntries, netPayload)
	return &k.beaconScratch
}

// OnBeacon implements LinkEstimator: sequence accounting over the MAWindow
// beacon window, footer processing for reverse quality, basic (no compare
// bit) admission.
func (k *beaconKind) OnBeacon(src packet.Addr, le *packet.LEFrame, meta RxMeta, now sim.Time) ([]byte, bool) {
	if le == nil {
		return nil, false
	}
	k.stats.BeaconsIn++
	e := k.table.Find(src)
	if e == nil {
		e = admitBasic(&k.tableView, k.rng, &k.cfg, &k.stats, src)
	}
	if e != nil {
		accountSeq(e, le.Seq, k.cfg.MaxSeqGap, now)
		scanFooter(e, le, k.self)
		k.completeWindow(e)
	}
	return le.NetPayload, true
}

// completeWindow closes a filled window and hands its reception ratio to
// the kind's publish hook.
func (k *beaconKind) completeWindow(e *Entry) {
	if e.rcvd+e.missed < k.window {
		return
	}
	sample := float64(e.rcvd) / float64(e.rcvd+e.missed)
	e.rcvd, e.missed = 0, 0
	e.windows++
	k.stats.BeaconWindows++
	k.publish(e, sample)
}

// TxResult implements LinkEstimator as a strict no-op: beacon-only
// estimation is blind to unicast outcomes — the ablated bit these kinds
// exist to demonstrate.
func (k *beaconKind) TxResult(dest packet.Addr, acked bool) {}

// OnOverhear implements LinkEstimator as a strict no-op.
func (k *beaconKind) OnOverhear(src packet.Addr, meta RxMeta, now sim.Time) {}

// Age injects one synthetic missed beacon per silent entry, as the
// four-bit estimator does.
func (k *beaconKind) Age(maxSilence sim.Time, now sim.Time) {
	for _, e := range k.table.Entries() {
		if !e.seqInit || now-e.lastHeard <= maxSilence {
			continue
		}
		e.missed++
		e.lastHeard = now
		k.stats.AgedMisses++
		k.completeWindow(e)
	}
}

// invQuality converts a delivery ratio into an ETX-comparable cost.
func invQuality(q, maxETX float64) float64 {
	if q <= 1/maxETX {
		return maxETX
	}
	return 1 / q
}

// foldETX pushes one clamped ETX sample into the entry's published
// estimate through the outer EWMA (alpha 1 reduces to initialization-only;
// alpha is the weight on the old value).
func foldETX(e *Entry, sample, alpha, maxETX float64) {
	if sample < 1 {
		sample = 1
	}
	if sample > maxETX {
		sample = maxETX
	}
	if !e.etxInit {
		e.etxInit = true
		e.etx = sample
		return
	}
	e.etx = alpha*e.etx + (1-alpha)*sample
}
