package core

import (
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// Entry is one candidate link in the estimator's table. Fields are managed
// by the owning estimator; external layers interact only through the pin
// bit and the published ETX. The field groups below are the union the
// estimator kinds need: every kind publishes through etx/etxInit, the
// beacon-counting kinds (4bit, wmewma, pdr) use the sequence window, and
// the LQI kind keeps its moving average in prrEwma (on the raw LQI scale
// instead of a reception ratio — it advertises no footers, so the value
// never leaves the node).
type Entry struct {
	Addr   packet.Addr
	Pinned bool // the pin bit: network layer forbids eviction

	// Inbound beacon stream (sequence-number based reception counting).
	seqInit   bool
	lastSeq   uint16
	rcvd      int
	missed    int
	prrInit   bool
	prrEwma   float64
	lastHeard sim.Time

	// Reverse (outbound) quality learned from the neighbor's beacon
	// footers. Only the broadcast-bidirectional variants need it.
	outQuality float64
	outValid   bool

	// Unicast (data) stream, driven by the ack bit.
	uTotal     int
	uAcked     int
	failsSince int

	// Hybrid ETX (the outer EWMA of Figure 5).
	etxInit bool
	etx     float64

	// windows counts completed estimation windows (samples, for the LQI
	// kind); the eviction policy uses it to distinguish warming-up entries
	// from estimate-less squatters.
	windows int
}

// ETX returns the current hybrid estimate and whether one exists yet.
func (e *Entry) ETX() (float64, bool) { return e.etx, e.etxInit }

// InboundQuality returns the EWMA beacon reception ratio from the neighbor
// (the value advertised in beacon footers) and whether it is initialized.
func (e *Entry) InboundQuality() (float64, bool) { return e.prrEwma, e.prrInit }

// LastHeard returns the time the neighbor was last received from.
func (e *Entry) LastHeard() sim.Time { return e.lastHeard }

// Table is the fixed-capacity link table with pin-aware random eviction.
// The zero Table is unusable; use newTable.
//
// Lookups are the hottest operation in the whole simulator (parent
// selection queries the table for every routing candidate on every beacon
// and every data transmission), so the table keeps a dense address→slot
// index beside the ordered entry list: Find is O(1), while insertion order
// — which the footer round-robin, eviction tie-breaking and random-victim
// draws all observe — is preserved exactly by the entry list.
type Table struct {
	cap     int
	entries []*Entry
	index   []int32 // addr → slot+1 in entries; 0 = absent
	free    []*Entry
	slab    []Entry // backing storage; one allocation for all entries ever
	scratch []int   // victim-candidate buffer for EvictRandomUnpinned
}

func newTable(capacity int) *Table {
	return &Table{cap: capacity}
}

// Cap returns the table capacity.
func (t *Table) Cap() int { return t.cap }

// Len returns the number of occupied slots.
func (t *Table) Len() int { return len(t.entries) }

// Find returns the entry for addr, or nil.
func (t *Table) Find(addr packet.Addr) *Entry {
	if int(addr) < len(t.index) {
		if p := t.index[addr]; p > 0 {
			return t.entries[p-1]
		}
	}
	return nil
}

func (t *Table) setIndex(addr packet.Addr, slot int) {
	if int(addr) >= len(t.index) {
		grown := make([]int32, int(addr)+1)
		copy(grown, t.index)
		t.index = grown
	}
	t.index[addr] = int32(slot + 1)
}

// Insert adds a fresh entry for addr if there is room, returning it; it
// returns nil when the table is full. Inserting an existing address returns
// the existing entry.
func (t *Table) Insert(addr packet.Addr) *Entry {
	if e := t.Find(addr); e != nil {
		return e
	}
	if len(t.entries) >= t.cap {
		return nil
	}
	var e *Entry
	if n := len(t.free); n > 0 {
		e = t.free[n-1]
		t.free = t.free[:n-1]
		*e = Entry{Addr: addr}
	} else {
		// Entries come from a lazily-built slab: at most cap distinct
		// Entry objects ever exist (evicted ones recycle through free),
		// so the slab never reallocates and the pointers stay stable.
		if t.slab == nil {
			t.slab = make([]Entry, 0, t.cap)
		}
		t.slab = append(t.slab, Entry{Addr: addr})
		e = &t.slab[len(t.slab)-1]
	}
	t.entries = append(t.entries, e)
	t.setIndex(addr, len(t.entries)-1)
	return e
}

// removeAt splices out the entry at slot i, maintaining the index for every
// shifted entry and recycling the removed Entry.
func (t *Table) removeAt(i int) {
	e := t.entries[i]
	t.entries = append(t.entries[:i], t.entries[i+1:]...)
	for j := i; j < len(t.entries); j++ {
		t.index[t.entries[j].Addr] = int32(j + 1)
	}
	t.index[e.Addr] = 0
	t.free = append(t.free, e)
}

// EvictRandomUnpinned removes one uniformly-chosen unpinned entry — the
// replacement policy of §3.3 — and reports whether a slot was freed.
func (t *Table) EvictRandomUnpinned(rng *sim.Rand) bool {
	_, ok := t.evictRandomUnpinned(rng)
	return ok
}

// evictRandomUnpinned is EvictRandomUnpinned naming its victim, for callers
// that report the eviction (the probe bus's table events).
func (t *Table) evictRandomUnpinned(rng *sim.Rand) (packet.Addr, bool) {
	victims := t.scratch[:0]
	for i, e := range t.entries {
		if !e.Pinned {
			victims = append(victims, i)
		}
	}
	t.scratch = victims[:0]
	if len(victims) == 0 {
		return 0, false
	}
	i := victims[rng.Intn(len(victims))]
	victim := t.entries[i].Addr
	t.removeAt(i)
	return victim, true
}

// Remove deletes addr from the table (regardless of pinning; the network
// layer unpins before asking). It reports whether the entry existed.
func (t *Table) Remove(addr packet.Addr) bool {
	if int(addr) < len(t.index) {
		if p := t.index[addr]; p > 0 {
			t.removeAt(int(p - 1))
			return true
		}
	}
	return false
}

// Pin sets the pin bit on addr's entry, reporting success.
func (t *Table) Pin(addr packet.Addr) bool {
	if e := t.Find(addr); e != nil {
		e.Pinned = true
		return true
	}
	return false
}

// Unpin clears the pin bit on addr's entry, reporting success.
func (t *Table) Unpin(addr packet.Addr) bool {
	if e := t.Find(addr); e != nil {
		e.Pinned = false
		return true
	}
	return false
}

// Entries returns the live entries in insertion order. The slice is shared;
// callers must not mutate it.
func (t *Table) Entries() []*Entry { return t.entries }
