package collect

import (
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

func TestReadingRoundTrip(t *testing.T) {
	b := EncodeReading(0xDEADBEEF, 12)
	if len(b) != 12 {
		t.Fatalf("payload len %d, want 12", len(b))
	}
	seq, err := DecodeReading(b)
	if err != nil || seq != 0xDEADBEEF {
		t.Fatalf("decode = (%x, %v)", seq, err)
	}
	if _, err := DecodeReading([]byte{1, 2}); err == nil {
		t.Fatal("short reading accepted")
	}
	if len(EncodeReading(1, 2)) != 4 {
		t.Fatal("undersized request not padded to the seq width")
	}
}

func TestSourceRateAndAccounting(t *testing.T) {
	clock := sim.New(1)
	ledger := NewLedger()
	wl := DefaultWorkload()
	var sent int
	src := NewSource(clock, 5, wl, sim.NewRand(2), func(data []byte) bool {
		if _, err := DecodeReading(data); err != nil {
			t.Fatal(err)
		}
		sent++
		return sent%4 != 0 // refuse every 4th
	}, ledger)
	src.Start(0)
	clock.RunUntil(10 * sim.Minute)
	// ~60 packets in 10 min at 1/10 s; jitter makes it 54-66.
	if sent < 50 || sent > 70 {
		t.Fatalf("sent %d packets in 10 min, want ~60", sent)
	}
	if src.Generated != uint64(sent) {
		t.Fatalf("Generated = %d, sent = %d", src.Generated, sent)
	}
	if src.Refused != uint64(sent/4) {
		t.Fatalf("Refused = %d, want %d", src.Refused, sent/4)
	}
	if g := ledger.Generated(); g != uint64(sent) {
		t.Fatalf("ledger.Generated = %d, want %d", g, sent)
	}
}

func TestLedgerUniqueAndDuplicates(t *testing.T) {
	l := NewLedger()
	l.NoteGenerated(1, 1)
	l.NoteGenerated(1, 2)
	l.NoteGenerated(1, 3)
	l.NoteGenerated(2, 1)

	l.NoteDelivered(1, 1, 2)
	l.NoteDelivered(1, 1, 2) // duplicate
	l.NoteDelivered(1, 2, 3)
	l.NoteDelivered(2, 1, 1)

	if l.Unique() != 3 {
		t.Fatalf("Unique = %d, want 3", l.Unique())
	}
	if l.Duplicates() != 1 {
		t.Fatalf("Duplicates = %d, want 1", l.Duplicates())
	}
	if got := l.DeliveryRatio(1); got != 2.0/3.0 {
		t.Fatalf("DeliveryRatio(1) = %v, want 2/3", got)
	}
	if got := l.DeliveryRatio(2); got != 1 {
		t.Fatalf("DeliveryRatio(2) = %v, want 1", got)
	}
	if got := l.TotalDeliveryRatio(); got != 3.0/4.0 {
		t.Fatalf("TotalDeliveryRatio = %v, want 3/4", got)
	}
	if got := l.MeanHops(); got != (2+3+1)/3.0 {
		t.Fatalf("MeanHops = %v, want 2", got)
	}
	ratios := l.DeliveryRatios()
	if len(ratios) != 2 {
		t.Fatalf("DeliveryRatios has %d origins", len(ratios))
	}
}

func TestLedgerGeneratedTracksHighestSeq(t *testing.T) {
	l := NewLedger()
	// Out-of-order generation notes keep the max.
	l.NoteGenerated(packet.Addr(3), 5)
	l.NoteGenerated(packet.Addr(3), 2)
	if l.Generated() != 5 {
		t.Fatalf("Generated = %d, want 5", l.Generated())
	}
}

func TestLedgerEmptyOriginRatioIsOne(t *testing.T) {
	l := NewLedger()
	if l.DeliveryRatio(9) != 1 || l.TotalDeliveryRatio() != 1 {
		t.Fatal("empty ledger ratios should be 1")
	}
}
