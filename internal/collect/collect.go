// Package collect implements the collection application of the paper's
// evaluation: every node offers a constant-rate stream of readings to one
// sink, with jitter against synchronization and staggered boot. The Ledger
// tracks unique end-to-end deliveries per origin — the raw material of the
// paper's delivery-ratio and cost metrics.
package collect

import (
	"encoding/binary"
	"errors"
	"sort"

	"fourbit/internal/packet"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// Workload describes the offered traffic (paper §4: one packet every 10
// seconds per node, jittered, with boot staggered uniformly over 30 s).
type Workload struct {
	Period       sim.Time
	JitterFrac   float64 // each inter-packet gap is U[1-j, 1+j] * Period
	PayloadBytes int     // application payload size (>= 4 for the seq)
	BootWindow   sim.Time
}

// DefaultWorkload returns the paper's workload.
func DefaultWorkload() Workload {
	return Workload{
		Period:       10 * sim.Second,
		JitterFrac:   0.1,
		PayloadBytes: 12,
		BootWindow:   30 * sim.Second,
	}
}

// EncodeReading builds an application payload carrying seq, padded to size.
func EncodeReading(seq uint32, size int) []byte {
	return AppendReading(nil, seq, size)
}

// AppendReading appends an application payload carrying seq, padded to
// size, onto dst — the allocation-free encoder for sources reusing one
// buffer per packet (the protocols copy accepted payloads).
func AppendReading(dst []byte, seq uint32, size int) []byte {
	if size < 4 {
		size = 4
	}
	start := len(dst)
	if cap(dst)-start >= size {
		dst = dst[:start+size]
		for i := start; i < start+size; i++ {
			dst[i] = 0
		}
	} else {
		dst = append(dst, make([]byte, size)...)
	}
	binary.BigEndian.PutUint32(dst[start:], seq)
	return dst
}

// ErrShortReading reports an undecodable application payload.
var ErrShortReading = errors.New("collect: reading too short")

// DecodeReading extracts the application sequence number.
func DecodeReading(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, ErrShortReading
	}
	return binary.BigEndian.Uint32(b), nil
}

// Source is one node's traffic generator. Send is the protocol's client
// entry point; it reports whether the packet was accepted.
type Source struct {
	clock  *sim.Simulator
	wl     Workload
	rng    *sim.Rand
	send   func(data []byte) bool
	origin packet.Addr
	ledger *Ledger
	probes *probe.Bus
	seq    uint32
	timer  *sim.Timer // one persistent timer, re-armed per packet
	buf    []byte     // reusable reading buffer (protocols copy on accept)

	Generated uint64
	Refused   uint64 // packets the protocol would not accept (queue full)
}

// NewSource builds a generator for origin that submits through send and
// accounts generation in ledger. Each offered packet is also emitted as a
// probe.GenerateEvent into the bus installed on clock, if any.
func NewSource(clock *sim.Simulator, origin packet.Addr, wl Workload, rng *sim.Rand,
	send func([]byte) bool, ledger *Ledger) *Source {
	src := &Source{clock: clock, wl: wl, rng: rng, send: send, origin: origin,
		ledger: ledger, probes: probe.FromSim(clock)}
	src.timer = clock.NewTimer(src.fire)
	return src
}

// Start schedules the first packet at boot + U[0, Period].
func (s *Source) Start(boot sim.Time) {
	first := boot + s.rng.UniformTime(0, s.wl.Period)
	s.timer.Reschedule(first)
}

func (s *Source) fire() {
	s.seq++
	s.Generated++
	s.ledger.NoteGenerated(s.origin, s.seq)
	s.buf = AppendReading(s.buf[:0], s.seq, s.wl.PayloadBytes)
	accepted := s.send(s.buf)
	if !accepted {
		s.Refused++
	}
	s.probes.Generate(s.origin, s.seq, accepted)
	j := s.wl.JitterFrac
	gap := s.wl.Period.Scale(s.rng.Uniform(1-j, 1+j))
	s.timer.RescheduleAfter(gap)
}

// Ledger is the sink-side accounting of unique deliveries.
type Ledger struct {
	generated map[packet.Addr]uint32
	delivered map[packet.Addr]map[uint32]struct{}
	hops      map[packet.Addr]uint64 // sum of per-delivery hop counts
	dups      uint64
	unique    uint64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		generated: make(map[packet.Addr]uint32),
		delivered: make(map[packet.Addr]map[uint32]struct{}),
		hops:      make(map[packet.Addr]uint64),
	}
}

// NoteGenerated records that origin produced application seq.
func (l *Ledger) NoteGenerated(origin packet.Addr, seq uint32) {
	if seq > l.generated[origin] {
		l.generated[origin] = seq
	}
}

// Delivery is one sink-side delivery event, recorded by sharded runs into
// per-shard logs instead of mutating a shared ledger mid-run. MergeLedgers
// replays the logs afterwards.
type Delivery struct {
	At     sim.Time
	Origin packet.Addr
	Seq    uint32
	Sink   int
	Hops   uint8
}

// MergeLedgers combines the per-shard accounting of a sharded run into
// one ledger equal to what a serial run over the same events would have
// produced. Generation maps union trivially (each origin reports to
// exactly one shard's ledger); delivery logs are concatenated and
// replayed in (time, origin, seq, sink) order, so first-delivery hop
// crediting and duplicate counting cannot depend on the shard count.
func MergeLedgers(parts []*Ledger, logs [][]Delivery) *Ledger {
	out := NewLedger()
	for _, p := range parts {
		for origin, g := range p.generated {
			if g > out.generated[origin] {
				out.generated[origin] = g
			}
		}
	}
	var all []Delivery
	for _, log := range logs {
		all = append(all, log...)
	}
	sort.Slice(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.At != y.At {
			return x.At < y.At
		}
		if x.Origin != y.Origin {
			return x.Origin < y.Origin
		}
		if x.Seq != y.Seq {
			return x.Seq < y.Seq
		}
		return x.Sink < y.Sink
	})
	for _, d := range all {
		out.NoteDelivered(d.Origin, d.Seq, d.Hops)
	}
	return out
}

// NoteDelivered records a delivery at the sink; duplicates are counted
// separately and excluded from unique totals.
func (l *Ledger) NoteDelivered(origin packet.Addr, seq uint32, hops uint8) {
	m := l.delivered[origin]
	if m == nil {
		m = make(map[uint32]struct{})
		l.delivered[origin] = m
	}
	if _, ok := m[seq]; ok {
		l.dups++
		return
	}
	m[seq] = struct{}{}
	l.unique++
	l.hops[origin] += uint64(hops)
}

// Unique returns the number of unique packets delivered.
func (l *Ledger) Unique() uint64 { return l.unique }

// Duplicates returns the number of duplicate deliveries.
func (l *Ledger) Duplicates() uint64 { return l.dups }

// Generated returns the total packets generated across origins.
func (l *Ledger) Generated() uint64 {
	var total uint64
	for _, g := range l.generated {
		total += uint64(g)
	}
	return total
}

// DeliveryRatio returns unique delivered / generated for origin (1 when the
// origin generated nothing).
func (l *Ledger) DeliveryRatio(origin packet.Addr) float64 {
	g := l.generated[origin]
	if g == 0 {
		return 1
	}
	return float64(len(l.delivered[origin])) / float64(g)
}

// DeliveryRatios returns the per-origin delivery ratios for all origins
// that generated traffic.
func (l *Ledger) DeliveryRatios() map[packet.Addr]float64 {
	out := make(map[packet.Addr]float64, len(l.generated))
	for origin := range l.generated {
		out[origin] = l.DeliveryRatio(origin)
	}
	return out
}

// TotalDeliveryRatio returns unique delivered / generated across the network.
func (l *Ledger) TotalDeliveryRatio() float64 {
	g := l.Generated()
	if g == 0 {
		return 1
	}
	return float64(l.unique) / float64(g)
}

// MeanHops returns the mean hop count over unique deliveries.
func (l *Ledger) MeanHops() float64 {
	if l.unique == 0 {
		return 0
	}
	var sum uint64
	for _, h := range l.hops {
		sum += h
	}
	return float64(sum) / float64(l.unique)
}
