// Package probe is the simulator's observability bus: one subscription
// point for the typed events every protocol layer emits while a run
// executes — transmissions and their ack bits (mac), routing beacons and
// parent changes (ctp, lqirouter), link-table admission and eviction (every
// core.LinkEstimator kind), traffic generation (collect) and end-to-end
// delivery (node).
//
// Sinks are pure observers: attaching one never schedules events, draws
// randomness, or mutates protocol state, so a run's trajectory is
// bit-identical with any set of sinks attached — including none. With no
// sinks the emit paths reduce to a nil/empty check, which keeps the
// default (unprobed) hot path at its measured cost.
//
// The bus reaches the layers through the simulator: node.NewEnv builds one
// Bus per run and installs it as the clock's opaque probe slot
// (sim.Simulator.SetProbes); layers constructed over that clock recover it
// with FromSim at construction time. That plumbing keeps constructor
// signatures stable as instrumentation grows — only the link estimators,
// which are built without a clock, receive the bus explicitly
// (core.LinkEstimator.SetProbes).
package probe

import (
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// TxEvent reports the completion of one link-layer Send: the transmission
// (or the CSMA give-up) and its ack bit. Dest is packet.Broadcast for
// beacons; Acked is meaningful only for acknowledged unicasts.
type TxEvent struct {
	At          sim.Time
	Node        packet.Addr // transmitter
	Dest        packet.Addr
	Sent        bool // false: CSMA gave up, nothing went on air
	Acked       bool // the ack bit of this transmission
	CCAAttempts int
}

// Broadcast reports whether the transmission was a broadcast (beacon).
func (e TxEvent) Broadcast() bool { return e.Dest == packet.Broadcast }

// RxEvent reports one frame delivered up by the link layer (addressed to
// the node or broadcast), with its physical-layer quality indicator.
type RxEvent struct {
	At   sim.Time
	Node packet.Addr // receiver
	Src  packet.Addr
	Dest packet.Addr // packet.Broadcast for beacons
	LQI  uint8
}

// BeaconEvent reports a routing beacon put on air by the network layer.
type BeaconEvent struct {
	At   sim.Time
	Node packet.Addr
	// CostFixed is the advertised path cost in the 1/10-ETX wire encoding
	// (0xFFFF = no route).
	CostFixed uint16
	Pull      bool // the beacon asks neighbors for routing state
}

// ParentChangeEvent reports a next-hop change in the routing engine. To is
// packet.None (and Cost 0) when the node lost its route entirely.
type ParentChangeEvent struct {
	At       sim.Time
	Node     packet.Addr
	From, To packet.Addr
	Cost     float64 // new path ETX through To (0 when routeless)
}

// TableOp names a link-table admission outcome.
type TableOp uint8

// Table operations. A replacement emits OpEvict for the victim followed by
// OpReplace for the newcomer, so occupancy is conserved event-by-event.
const (
	OpInsert  TableOp = iota // newcomer granted a free slot
	OpReplace                // newcomer granted a slot freed by eviction
	OpEvict                  // incumbent removed to make room
	OpReject                 // newcomer dropped, table full
)

// String names the operation for exports.
func (op TableOp) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpReplace:
		return "replace"
	case OpEvict:
		return "evict"
	case OpReject:
		return "reject"
	}
	return "unknown"
}

// TableEvent reports one link-table admission decision of a node's
// estimator.
type TableEvent struct {
	At       sim.Time
	Node     packet.Addr
	Neighbor packet.Addr // the entry the operation concerns
	Op       TableOp
}

// GenerateEvent reports one application packet offered to the collection
// protocol.
type GenerateEvent struct {
	At       sim.Time
	Origin   packet.Addr
	Seq      uint32
	Accepted bool // false: the protocol refused it (queue full, not booted)
}

// DeliverEvent reports one data packet arriving at the collection root
// (duplicates included — dedup is the ledger's job, not the bus's).
type DeliverEvent struct {
	At     sim.Time
	Origin packet.Addr
	Seq    uint32
	Hops   uint8
}

// Sink receives the bus's typed events. Embed BaseSink to implement only
// the events a collector cares about.
type Sink interface {
	OnTx(TxEvent)
	OnRx(RxEvent)
	OnBeacon(BeaconEvent)
	OnParentChange(ParentChangeEvent)
	OnTable(TableEvent)
	OnGenerate(GenerateEvent)
	OnDeliver(DeliverEvent)
}

// BaseSink is a no-op Sink for embedding.
type BaseSink struct{}

// OnTx implements Sink.
func (BaseSink) OnTx(TxEvent) {}

// OnRx implements Sink.
func (BaseSink) OnRx(RxEvent) {}

// OnBeacon implements Sink.
func (BaseSink) OnBeacon(BeaconEvent) {}

// OnParentChange implements Sink.
func (BaseSink) OnParentChange(ParentChangeEvent) {}

// OnTable implements Sink.
func (BaseSink) OnTable(TableEvent) {}

// OnGenerate implements Sink.
func (BaseSink) OnGenerate(GenerateEvent) {}

// OnDeliver implements Sink.
func (BaseSink) OnDeliver(DeliverEvent) {}

// Bus stamps events with the simulation clock and fans them out to the
// attached sinks in attachment order. A nil *Bus is a valid, permanently
// silent bus, so layers may emit unconditionally.
type Bus struct {
	clock *sim.Simulator
	sinks []Sink
}

// NewBus builds a bus over the clock and installs it as the simulator's
// probe slot, where FromSim finds it.
func NewBus(clock *sim.Simulator) *Bus {
	b := &Bus{clock: clock}
	clock.SetProbes(b)
	return b
}

// FromSim recovers the bus installed on the simulator, or nil if the run
// carries no probes (e.g. layer unit tests that build a bare clock).
func FromSim(s *sim.Simulator) *Bus {
	if s == nil {
		return nil
	}
	b, _ := s.Probes().(*Bus)
	return b
}

// Attach subscribes a sink to every subsequent event.
func (b *Bus) Attach(s Sink) { b.sinks = append(b.sinks, s) }

// Active reports whether any sink is attached — the emit-path fast check.
func (b *Bus) Active() bool { return b != nil && len(b.sinks) > 0 }

// Tx emits a transmission-completion event.
func (b *Bus) Tx(node, dest packet.Addr, sent, acked bool, cca int) {
	if !b.Active() {
		return
	}
	ev := TxEvent{At: b.clock.Now(), Node: node, Dest: dest, Sent: sent, Acked: acked, CCAAttempts: cca}
	for _, s := range b.sinks {
		s.OnTx(ev)
	}
}

// Rx emits a frame-delivered event.
func (b *Bus) Rx(node, src, dest packet.Addr, lqi uint8) {
	if !b.Active() {
		return
	}
	ev := RxEvent{At: b.clock.Now(), Node: node, Src: src, Dest: dest, LQI: lqi}
	for _, s := range b.sinks {
		s.OnRx(ev)
	}
}

// Beacon emits a routing-beacon-sent event.
func (b *Bus) Beacon(node packet.Addr, costFixed uint16, pull bool) {
	if !b.Active() {
		return
	}
	ev := BeaconEvent{At: b.clock.Now(), Node: node, CostFixed: costFixed, Pull: pull}
	for _, s := range b.sinks {
		s.OnBeacon(ev)
	}
}

// ParentChange emits a routing parent-change event.
func (b *Bus) ParentChange(node, from, to packet.Addr, cost float64) {
	if !b.Active() {
		return
	}
	ev := ParentChangeEvent{At: b.clock.Now(), Node: node, From: from, To: to, Cost: cost}
	for _, s := range b.sinks {
		s.OnParentChange(ev)
	}
}

// Table emits a link-table admission event.
func (b *Bus) Table(node, neighbor packet.Addr, op TableOp) {
	if !b.Active() {
		return
	}
	ev := TableEvent{At: b.clock.Now(), Node: node, Neighbor: neighbor, Op: op}
	for _, s := range b.sinks {
		s.OnTable(ev)
	}
}

// Generate emits a traffic-generation event.
func (b *Bus) Generate(origin packet.Addr, seq uint32, accepted bool) {
	if !b.Active() {
		return
	}
	ev := GenerateEvent{At: b.clock.Now(), Origin: origin, Seq: seq, Accepted: accepted}
	for _, s := range b.sinks {
		s.OnGenerate(ev)
	}
}

// Deliver emits a root-delivery event.
func (b *Bus) Deliver(origin packet.Addr, seq uint32, hops uint8) {
	if !b.Active() {
		return
	}
	ev := DeliverEvent{At: b.clock.Now(), Origin: origin, Seq: seq, Hops: hops}
	for _, s := range b.sinks {
		s.OnDeliver(ev)
	}
}

// CountSink aggregates network-wide event totals — the probe-bus view of
// the counters the per-node Stats structs accumulate. The equivalence of
// the two views is pinned by tests: everything the end-of-run aggregates
// measure is observable on the bus.
type CountSink struct {
	BaseSink

	DataTx, DataAcked uint64 // unicast transmissions on air / acked
	BeaconTx          uint64 // broadcast transmissions on air
	CCAGiveUps        uint64 // Sends that never reached the air
	BeaconsSent       uint64 // network-layer beacons (≤ BeaconTx emitters)
	ParentChanges     uint64
	RouteLosses       uint64 // of ParentChanges: transitions to routeless
	Inserted          uint64
	Replaced          uint64
	Evicted           uint64
	Rejected          uint64
	Generated         uint64 // application packets offered (accepted or not)
	Refused           uint64 // of Generated: refused by the protocol
	Delivered         uint64 // root deliveries, duplicates included
}

// OnTx implements Sink.
func (c *CountSink) OnTx(ev TxEvent) {
	if !ev.Sent {
		c.CCAGiveUps++
		return
	}
	if ev.Broadcast() {
		c.BeaconTx++
		return
	}
	c.DataTx++
	if ev.Acked {
		c.DataAcked++
	}
}

// OnBeacon implements Sink.
func (c *CountSink) OnBeacon(BeaconEvent) { c.BeaconsSent++ }

// OnParentChange implements Sink.
func (c *CountSink) OnParentChange(ev ParentChangeEvent) {
	c.ParentChanges++
	if ev.To == packet.None {
		c.RouteLosses++
	}
}

// OnTable implements Sink.
func (c *CountSink) OnTable(ev TableEvent) {
	switch ev.Op {
	case OpInsert:
		c.Inserted++
	case OpReplace:
		c.Replaced++
	case OpEvict:
		c.Evicted++
	case OpReject:
		c.Rejected++
	}
}

// OnGenerate implements Sink.
func (c *CountSink) OnGenerate(ev GenerateEvent) {
	c.Generated++
	if !ev.Accepted {
		c.Refused++
	}
}

// OnDeliver implements Sink.
func (c *CountSink) OnDeliver(DeliverEvent) { c.Delivered++ }
