package probe

import (
	"math"

	"fourbit/internal/metrics"
	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// Window is one fixed-width slice of a run's probe-event stream: the
// time-resolved counterparts of the end-of-run aggregates (windowed cost,
// windowed delivery ratio) plus the routing and table churn that explains
// them. Counts are network-wide.
type Window struct {
	Start, End sim.Time

	Generated uint64 // application packets offered in the window
	Delivered uint64 // root deliveries (duplicates included)
	DataTx    uint64 // unicast transmissions on air
	DataAcked uint64
	BeaconTx  uint64 // broadcast transmissions on air

	ParentChanges uint64 // next-hop switches (route losses included)
	RouteLosses   uint64

	// Table composition churn: admission activity inside the window, plus
	// the network-wide occupancy (live entries across all link tables) at
	// the instant the window closed.
	TableInserted  uint64
	TableReplaced  uint64
	TableEvicted   uint64
	TableRejected  uint64
	TableOccupancy uint64
}

// Cost is the windowed form of the paper's cost metric: unicast data
// transmissions per root delivery inside the window. NaN while nothing was
// delivered (cost is undefined, not zero, when the network moves packets
// without landing any).
func (w *Window) Cost() float64 {
	if w.Delivered == 0 {
		return math.NaN()
	}
	return float64(w.DataTx) / float64(w.Delivered)
}

// DeliveryRatio is deliveries per offered packet inside the window. It can
// exceed 1 when a window drains queued backlog. NaN while nothing was
// offered.
func (w *Window) DeliveryRatio() float64 {
	if w.Generated == 0 {
		return math.NaN()
	}
	return float64(w.Delivered) / float64(w.Generated)
}

// Timeline is the windowed time series of one run.
type Timeline struct {
	Window  sim.Time
	Windows []Window
}

// CostSeries returns the windowed cost over time (T in minutes, stamped at
// each window's end; windows with no deliveries carry NaN).
func (t *Timeline) CostSeries() metrics.Series {
	var s metrics.Series
	for i := range t.Windows {
		w := &t.Windows[i]
		s.Add(w.End.Seconds()/60, w.Cost())
	}
	return s
}

// DeliverySeries returns the windowed delivery ratio over time (T in
// minutes, stamped at each window's end).
func (t *Timeline) DeliverySeries() metrics.Series {
	var s metrics.Series
	for i := range t.Windows {
		w := &t.Windows[i]
		s.Add(w.End.Seconds()/60, w.DeliveryRatio())
	}
	return s
}

// BaselineCost is the mean windowed cost over the windows that closed in
// (from, upto] — the pre-event baseline of RecoveryWindows (a window
// closing exactly at the event is entirely pre-event, so it counts).
// Windows without deliveries are skipped. ok is false when no window
// qualifies.
func (t *Timeline) BaselineCost(from, upto sim.Time) (mean float64, ok bool) {
	var sum float64
	var n int
	for i := range t.Windows {
		w := &t.Windows[i]
		if w.End <= from || w.End > upto || w.Delivered == 0 {
			continue
		}
		sum += w.Cost()
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Recovery is the outcome of RecoveryWindows.
type Recovery struct {
	Baseline float64 // mean pre-event windowed cost
	// Windows is the number of post-event windows until the windowed cost
	// first returned to within eps of the baseline (1 = the first window
	// after the event already qualified). When Recovered is false it is the
	// number of post-event windows observed, all above the band.
	Windows   int
	Recovered bool
}

// RecoveryWindows measures re-convergence after a scripted event at time
// event: how many windows pass before the windowed cost first returns to
// baseline*(1+eps) or better, where the baseline is the mean windowed cost
// over [baselineFrom, event). Undefined-cost windows (nothing delivered)
// never qualify — a network delivering nothing has not recovered, however
// few transmissions it wastes. ok is false when no baseline exists or no
// window closed after the event.
func (t *Timeline) RecoveryWindows(baselineFrom, event sim.Time, eps float64) (Recovery, bool) {
	base, ok := t.BaselineCost(baselineFrom, event)
	if !ok {
		return Recovery{}, false
	}
	rec := Recovery{Baseline: base}
	band := base * (1 + eps)
	seen := false
	for i := range t.Windows {
		w := &t.Windows[i]
		if w.Start < event {
			continue
		}
		seen = true
		rec.Windows++
		if w.Delivered > 0 && w.Cost() <= band {
			rec.Recovered = true
			return rec, true
		}
	}
	return rec, seen
}

// Collector is the probe sink that accumulates a Timeline. It is a pure
// observer: windows roll lazily off event timestamps (the simulation clock
// is monotone), so attaching a collector schedules nothing and cannot
// perturb the run. Construct with NewCollector, attach to the run's bus,
// and call Finalize once the run ends.
type Collector struct {
	window    sim.Time
	cur       Window
	occupancy uint64 // running network-wide table occupancy
	out       Timeline
}

// NewCollector builds a timeline collector with the given window width.
func NewCollector(window sim.Time) *Collector {
	if window <= 0 {
		panic("probe: non-positive timeline window")
	}
	c := &Collector{window: window}
	c.cur = Window{Start: 0, End: window}
	c.out.Window = window
	return c
}

// advance closes windows until at fits inside the current one.
func (c *Collector) advance(at sim.Time) {
	for at >= c.cur.End {
		c.close()
	}
}

func (c *Collector) close() {
	c.cur.TableOccupancy = c.occupancy
	c.out.Windows = append(c.out.Windows, c.cur)
	start := c.cur.End
	c.cur = Window{Start: start, End: start + c.window}
}

// Finalize closes the window in progress (stamped as ending at now) and
// returns the assembled timeline. The collector must not receive further
// events afterwards.
func (c *Collector) Finalize(now sim.Time) *Timeline {
	c.advance(now)
	if c.cur.Start < now {
		c.cur.End = now
		c.close()
	}
	return &c.out
}

// OnTx implements Sink.
func (c *Collector) OnTx(ev TxEvent) {
	c.advance(ev.At)
	if !ev.Sent {
		return
	}
	if ev.Broadcast() {
		c.cur.BeaconTx++
		return
	}
	c.cur.DataTx++
	if ev.Acked {
		c.cur.DataAcked++
	}
}

// OnRx implements Sink.
func (c *Collector) OnRx(ev RxEvent) { c.advance(ev.At) }

// OnBeacon implements Sink.
func (c *Collector) OnBeacon(ev BeaconEvent) { c.advance(ev.At) }

// OnParentChange implements Sink.
func (c *Collector) OnParentChange(ev ParentChangeEvent) {
	c.advance(ev.At)
	c.cur.ParentChanges++
	if ev.To == packet.None {
		c.cur.RouteLosses++
	}
}

// OnTable implements Sink.
func (c *Collector) OnTable(ev TableEvent) {
	c.advance(ev.At)
	switch ev.Op {
	case OpInsert:
		c.cur.TableInserted++
		c.occupancy++
	case OpReplace:
		c.cur.TableReplaced++
		c.occupancy++
	case OpEvict:
		c.cur.TableEvicted++
		c.occupancy--
	case OpReject:
		c.cur.TableRejected++
	}
}

// OnGenerate implements Sink.
func (c *Collector) OnGenerate(ev GenerateEvent) {
	c.advance(ev.At)
	c.cur.Generated++
}

// OnDeliver implements Sink.
func (c *Collector) OnDeliver(ev DeliverEvent) {
	c.advance(ev.At)
	c.cur.Delivered++
}
