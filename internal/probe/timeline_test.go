package probe

import (
	"math"
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// feed pushes a minimal event stream through a collector: per entry, the
// events fire at the given time.
func TestCollectorWindows(t *testing.T) {
	c := NewCollector(10 * sim.Second)
	clock := sim.New(1)
	b := NewBus(clock)
	b.Attach(c)

	at := func(ts sim.Time, fn func()) { clock.At(ts, fn) }
	at(1*sim.Second, func() { b.Generate(1, 1, true) })
	at(2*sim.Second, func() { b.Tx(1, 0, true, true, 1) })
	at(3*sim.Second, func() { b.Deliver(1, 1, 1) })
	at(11*sim.Second, func() { b.Tx(2, 0, true, false, 1) })
	at(12*sim.Second, func() { b.Tx(2, 0, true, true, 2) })
	at(13*sim.Second, func() { b.Deliver(2, 1, 1) })
	at(14*sim.Second, func() { b.Tx(2, packet.Broadcast, true, false, 1) })
	at(15*sim.Second, func() { b.Tx(3, 0, false, false, 8) }) // CSMA give-up: not on air
	clock.Run()

	tl := c.Finalize(25 * sim.Second)
	if len(tl.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(tl.Windows))
	}
	w0, w1, w2 := &tl.Windows[0], &tl.Windows[1], &tl.Windows[2]
	if w0.Generated != 1 || w0.Delivered != 1 || w0.DataTx != 1 || w0.DataAcked != 1 {
		t.Errorf("window 0 = %+v", *w0)
	}
	if got := w0.Cost(); got != 1 {
		t.Errorf("window 0 cost = %v, want 1", got)
	}
	if got := w0.DeliveryRatio(); got != 1 {
		t.Errorf("window 0 delivery = %v, want 1", got)
	}
	if w1.DataTx != 2 || w1.DataAcked != 1 || w1.Delivered != 1 || w1.BeaconTx != 1 {
		t.Errorf("window 1 = %+v", *w1)
	}
	if got := w1.Cost(); got != 2 {
		t.Errorf("window 1 cost = %v, want 2", got)
	}
	// The give-up never went on air: no DataTx anywhere for node 3.
	if w1.DataTx+w2.DataTx != 2 {
		t.Errorf("CSMA give-up counted as a transmission")
	}
	// Window 2 closed by Finalize: empty, truncated at now.
	if w2.Start != 20*sim.Second || w2.End != 25*sim.Second {
		t.Errorf("window 2 span = [%v, %v)", w2.Start, w2.End)
	}
	if !math.IsNaN(w2.Cost()) || !math.IsNaN(w2.DeliveryRatio()) {
		t.Errorf("empty window: cost/delivery should be NaN, got %v/%v", w2.Cost(), w2.DeliveryRatio())
	}
}

func TestCollectorOccupancy(t *testing.T) {
	c := NewCollector(10 * sim.Second)
	clock := sim.New(1)
	b := NewBus(clock)
	b.Attach(c)

	clock.At(1*sim.Second, func() {
		b.Table(1, 2, OpInsert)
		b.Table(1, 3, OpInsert)
	})
	clock.At(11*sim.Second, func() {
		b.Table(1, 2, OpEvict)
		b.Table(1, 4, OpReplace)
		b.Table(1, 5, OpReject)
	})
	clock.Run()
	tl := c.Finalize(20 * sim.Second)
	if len(tl.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(tl.Windows))
	}
	if got := tl.Windows[0].TableOccupancy; got != 2 {
		t.Errorf("window 0 occupancy = %d, want 2", got)
	}
	w1 := &tl.Windows[1]
	if w1.TableEvicted != 1 || w1.TableReplaced != 1 || w1.TableRejected != 1 {
		t.Errorf("window 1 churn = %+v", *w1)
	}
	// Evict+Replace conserves occupancy.
	if w1.TableOccupancy != 2 {
		t.Errorf("window 1 occupancy = %d, want 2", w1.TableOccupancy)
	}
}

func TestCollectorFinalizeExactBoundary(t *testing.T) {
	c := NewCollector(10 * sim.Second)
	clock := sim.New(1)
	b := NewBus(clock)
	b.Attach(c)
	clock.At(5*sim.Second, func() { b.Deliver(1, 1, 1) })
	clock.Run()
	// Ending exactly on a window boundary must not append an empty window.
	tl := c.Finalize(10 * sim.Second)
	if len(tl.Windows) != 1 {
		t.Fatalf("windows = %d, want 1", len(tl.Windows))
	}
	if tl.Windows[0].End != 10*sim.Second {
		t.Errorf("window end = %v", tl.Windows[0].End)
	}
}

// makeTimeline builds a timeline with the given per-window (datatx,
// delivered) pairs over 1-minute windows.
func makeTimeline(pairs [][2]uint64) *Timeline {
	tl := &Timeline{Window: sim.Minute}
	for i, p := range pairs {
		tl.Windows = append(tl.Windows, Window{
			Start: sim.Time(i) * sim.Minute, End: sim.Time(i+1) * sim.Minute,
			DataTx: p[0], Delivered: p[1], Generated: p[1],
		})
	}
	return tl
}

func TestBaselineCost(t *testing.T) {
	tl := makeTimeline([][2]uint64{{10, 10}, {20, 10}, {30, 10}, {100, 10}})
	// Windows end at minutes 1..4; baseline over (0, 3] window-ends picks
	// windows 0-2: costs 1, 2, 3.
	base, ok := tl.BaselineCost(0, 3*sim.Minute)
	if !ok || base != 2 {
		t.Fatalf("baseline = %v/%v, want 2/true", base, ok)
	}
	// A window delivering nothing is skipped, not counted as zero.
	tl.Windows[1].Delivered = 0
	base, ok = tl.BaselineCost(0, 3*sim.Minute)
	if !ok || base != 2 {
		t.Fatalf("baseline with dead window = %v/%v, want 2/true", base, ok)
	}
	if _, ok := tl.BaselineCost(10*sim.Minute, 20*sim.Minute); ok {
		t.Error("baseline over empty range reported ok")
	}
}

func TestRecoveryWindows(t *testing.T) {
	// Baseline cost 1; event at minute 2; post-event costs 5, 5, 1.1, ...
	tl := makeTimeline([][2]uint64{{10, 10}, {10, 10}, {50, 10}, {50, 10}, {11, 10}, {10, 10}})
	rec, ok := tl.RecoveryWindows(0, 2*sim.Minute, 0.25)
	if !ok {
		t.Fatal("no recovery measurement")
	}
	if rec.Baseline != 1 {
		t.Errorf("baseline = %v, want 1", rec.Baseline)
	}
	if !rec.Recovered || rec.Windows != 3 {
		t.Errorf("recovery = %+v, want recovered in 3", rec)
	}

	// Never recovering: all post-event windows above the band.
	tl2 := makeTimeline([][2]uint64{{10, 10}, {10, 10}, {50, 10}, {50, 10}})
	rec, ok = tl2.RecoveryWindows(0, 2*sim.Minute, 0.25)
	if !ok || rec.Recovered || rec.Windows != 2 {
		t.Errorf("non-recovery = %+v/%v, want 2 windows not recovered", rec, ok)
	}

	// Windows delivering nothing never qualify, even though their cost is
	// undefined rather than high.
	tl3 := makeTimeline([][2]uint64{{10, 10}, {10, 10}, {50, 0}, {10, 10}})
	rec, ok = tl3.RecoveryWindows(0, 2*sim.Minute, 0.25)
	if !ok || !rec.Recovered || rec.Windows != 2 {
		t.Errorf("dead-window recovery = %+v/%v, want recovered in 2", rec, ok)
	}

	// No baseline before the event.
	if _, ok := tl.RecoveryWindows(0, 0, 0.25); ok {
		t.Error("recovery without baseline reported ok")
	}
}

func TestSeriesExports(t *testing.T) {
	tl := makeTimeline([][2]uint64{{10, 10}, {20, 10}})
	cost := tl.CostSeries()
	if cost.Len() != 2 || cost.T[0] != 1 || cost.V[1] != 2 {
		t.Errorf("cost series = %+v", cost)
	}
	del := tl.DeliverySeries()
	if del.Len() != 2 || del.V[0] != 1 {
		t.Errorf("delivery series = %+v", del)
	}
}
