package probe

import (
	"math"
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// Window-roll edge cases for the timeline Collector: the lazy roll must put
// every event in exactly one window, tolerate boundary-coincident and
// repeated timestamps, bridge long silent gaps with explicit empty windows,
// and survive degenerate (zero-length) runs.

// TestWindowBoundaryDuplicateTimestamps: events stamped exactly on a window
// boundary belong to the window that STARTS there (windows are [start,
// end)), and a burst of identical boundary timestamps rolls the window once,
// not once per event.
func TestWindowBoundaryDuplicateTimestamps(t *testing.T) {
	const w = 10 * sim.Second
	c := NewCollector(w)

	c.OnGenerate(GenerateEvent{At: w - 1, Origin: 3}) // last tick of window 0
	for i := 0; i < 3; i++ {                          // burst exactly on the boundary
		c.OnDeliver(DeliverEvent{At: w, Origin: 3})
	}
	c.OnGenerate(GenerateEvent{At: w, Origin: 3}) // same duplicate stamp again

	tl := c.Finalize(2 * w)
	if len(tl.Windows) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(tl.Windows), tl.Windows)
	}
	w0, w1 := tl.Windows[0], tl.Windows[1]
	if w0.Generated != 1 || w0.Delivered != 0 {
		t.Fatalf("window 0 miscounted: %+v", w0)
	}
	if w1.Generated != 1 || w1.Delivered != 3 {
		t.Fatalf("boundary events landed in the wrong window: %+v", w1)
	}
	if w0.Start != 0 || w0.End != w || w1.Start != w || w1.End != 2*w {
		t.Fatalf("window edges drifted: %+v %+v", w0, w1)
	}
}

// TestWindowGapEmitsEmptyWindows: a silent multi-window gap yields explicit
// zero-count windows (NaN cost — undefined, not zero), so series stay
// evenly spaced for plotting and recovery scans.
func TestWindowGapEmitsEmptyWindows(t *testing.T) {
	const w = 10 * sim.Second
	c := NewCollector(w)
	c.OnDeliver(DeliverEvent{At: 1 * sim.Second})
	c.OnDeliver(DeliverEvent{At: 5*w + sim.Second}) // five windows later

	tl := c.Finalize(6 * w)
	if len(tl.Windows) != 6 {
		t.Fatalf("got %d windows, want 6", len(tl.Windows))
	}
	for i := 1; i <= 4; i++ {
		win := tl.Windows[i]
		if win.Generated != 0 || win.Delivered != 0 || win.DataTx != 0 {
			t.Fatalf("gap window %d not empty: %+v", i, win)
		}
		if !math.IsNaN(win.Cost()) || !math.IsNaN(win.DeliveryRatio()) {
			t.Fatalf("empty window %d has defined cost/delivery", i)
		}
		if win.Start != sim.Time(i)*w || win.End != sim.Time(i+1)*w {
			t.Fatalf("gap window %d edges wrong: %+v", i, win)
		}
	}
	if tl.Windows[5].Delivered != 1 {
		t.Fatalf("post-gap event lost: %+v", tl.Windows[5])
	}
	// Occupancy snapshots persist across empty windows.
	c2 := NewCollector(w)
	c2.OnTable(TableEvent{At: sim.Second, Node: 1, Neighbor: 2, Op: OpInsert})
	tl2 := c2.Finalize(4 * w)
	for i, win := range tl2.Windows {
		if win.TableOccupancy != 1 {
			t.Fatalf("window %d occupancy %d, want 1 carried through the gap", i, win.TableOccupancy)
		}
	}
}

// TestZeroLengthRun: finalizing at time zero — a run that never advanced —
// must not panic and must yield an empty, well-formed timeline.
func TestZeroLengthRun(t *testing.T) {
	tl := NewCollector(10 * sim.Second).Finalize(0)
	if len(tl.Windows) != 0 {
		t.Fatalf("zero-length run produced %d windows: %+v", len(tl.Windows), tl.Windows)
	}
	if s := tl.CostSeries(); len(s.T) != 0 {
		t.Fatalf("zero-length run produced a cost series: %+v", s)
	}
	if _, ok := tl.BaselineCost(0, 0); ok {
		t.Fatal("zero-length run claims a baseline cost")
	}
}

// TestFinalizeOnExactBoundary: a run ending exactly on a window edge closes
// the last full window and appends no zero-width tail; ending mid-window
// stamps the partial window's true end.
func TestFinalizeOnExactBoundary(t *testing.T) {
	const w = 10 * sim.Second
	c := NewCollector(w)
	c.OnGenerate(GenerateEvent{At: sim.Second})
	tl := c.Finalize(w)
	if len(tl.Windows) != 1 {
		t.Fatalf("got %d windows, want 1", len(tl.Windows))
	}
	if tl.Windows[0].Start != 0 || tl.Windows[0].End != w {
		t.Fatalf("boundary finalize produced wrong edges: %+v", tl.Windows[0])
	}

	c2 := NewCollector(w)
	c2.OnGenerate(GenerateEvent{At: sim.Second})
	tl2 := c2.Finalize(w/2 + 1)
	if len(tl2.Windows) != 1 || tl2.Windows[0].End != w/2+1 {
		t.Fatalf("partial finalize did not stamp the true end: %+v", tl2.Windows)
	}
}

// TestEventsAtTimeZero: the simulator's first events carry At == 0 — the
// very start of the first window, not "before" it.
func TestEventsAtTimeZero(t *testing.T) {
	const w = 10 * sim.Second
	c := NewCollector(w)
	c.OnTx(TxEvent{At: 0, Node: 1, Dest: 2, Sent: true, Acked: true})
	c.OnTx(TxEvent{At: 0, Node: 1, Dest: packet.Broadcast, Sent: true})
	c.OnDeliver(DeliverEvent{At: 0})
	tl := c.Finalize(w)
	if len(tl.Windows) != 1 {
		t.Fatalf("got %d windows, want 1", len(tl.Windows))
	}
	got := tl.Windows[0]
	if got.DataTx != 1 || got.DataAcked != 1 || got.BeaconTx != 1 || got.Delivered != 1 {
		t.Fatalf("time-zero events miscounted: %+v", got)
	}
	if got.Cost() != 1 {
		t.Fatalf("cost %v, want 1", got.Cost())
	}
}
