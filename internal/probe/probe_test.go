package probe

import (
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/sim"
)

// recordSink captures every event for inspection.
type recordSink struct {
	tx       []TxEvent
	rx       []RxEvent
	beacons  []BeaconEvent
	parents  []ParentChangeEvent
	tables   []TableEvent
	gens     []GenerateEvent
	delivers []DeliverEvent
}

func (s *recordSink) OnTx(ev TxEvent)                     { s.tx = append(s.tx, ev) }
func (s *recordSink) OnRx(ev RxEvent)                     { s.rx = append(s.rx, ev) }
func (s *recordSink) OnBeacon(ev BeaconEvent)             { s.beacons = append(s.beacons, ev) }
func (s *recordSink) OnParentChange(ev ParentChangeEvent) { s.parents = append(s.parents, ev) }
func (s *recordSink) OnTable(ev TableEvent)               { s.tables = append(s.tables, ev) }
func (s *recordSink) OnGenerate(ev GenerateEvent)         { s.gens = append(s.gens, ev) }
func (s *recordSink) OnDeliver(ev DeliverEvent)           { s.delivers = append(s.delivers, ev) }

func TestNilBusEmitsAreSafe(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	// Every emit on a nil bus must be a no-op, not a panic — layers emit
	// unconditionally.
	b.Tx(1, 2, true, true, 1)
	b.Rx(1, 2, packet.Broadcast, 100)
	b.Beacon(1, 10, false)
	b.ParentChange(1, 2, 3, 1.5)
	b.Table(1, 2, OpInsert)
	b.Generate(1, 1, true)
	b.Deliver(1, 1, 2)
}

func TestFromSim(t *testing.T) {
	clock := sim.New(1)
	if FromSim(clock) != nil {
		t.Fatal("fresh simulator carries a bus")
	}
	if FromSim(nil) != nil {
		t.Fatal("nil simulator carries a bus")
	}
	b := NewBus(clock)
	if FromSim(clock) != b {
		t.Fatal("NewBus did not install itself on the clock")
	}
}

func TestBusStampsAndFansOut(t *testing.T) {
	clock := sim.New(1)
	b := NewBus(clock)
	if b.Active() {
		t.Fatal("sinkless bus reports active")
	}
	s1, s2 := &recordSink{}, &recordSink{}
	b.Attach(s1)
	b.Attach(s2)
	if !b.Active() {
		t.Fatal("bus with sinks reports inactive")
	}

	clock.At(5*sim.Second, func() {
		b.Tx(3, 4, true, true, 2)
		b.Deliver(7, 9, 3)
	})
	clock.Run()

	for _, s := range []*recordSink{s1, s2} {
		if len(s.tx) != 1 || len(s.delivers) != 1 {
			t.Fatalf("fan-out: tx=%d delivers=%d, want 1/1", len(s.tx), len(s.delivers))
		}
		ev := s.tx[0]
		if ev.At != 5*sim.Second {
			t.Errorf("event not stamped with clock time: %v", ev.At)
		}
		if ev.Node != 3 || ev.Dest != 4 || !ev.Sent || !ev.Acked || ev.CCAAttempts != 2 {
			t.Errorf("tx event fields: %+v", ev)
		}
		if ev.Broadcast() {
			t.Error("unicast event claims broadcast")
		}
	}
}

func TestTableOpStrings(t *testing.T) {
	want := map[TableOp]string{OpInsert: "insert", OpReplace: "replace", OpEvict: "evict", OpReject: "reject", TableOp(99): "unknown"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("TableOp(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestCountSink(t *testing.T) {
	clock := sim.New(1)
	b := NewBus(clock)
	var c CountSink
	b.Attach(&c)

	b.Tx(1, 2, true, true, 1)                 // data, acked
	b.Tx(1, 2, true, false, 1)                // data, unacked
	b.Tx(1, packet.Broadcast, true, false, 1) // beacon
	b.Tx(1, 2, false, false, 8)               // CSMA give-up
	b.Beacon(1, 10, false)
	b.ParentChange(1, 2, 3, 1.5)
	b.ParentChange(1, 3, packet.None, 0) // route loss
	b.Table(1, 2, OpInsert)
	b.Table(1, 3, OpEvict)
	b.Table(1, 4, OpReplace)
	b.Table(1, 5, OpReject)
	b.Generate(2, 1, true)
	b.Generate(2, 2, false)
	b.Deliver(2, 1, 2)

	want := CountSink{
		DataTx: 2, DataAcked: 1, BeaconTx: 1, CCAGiveUps: 1,
		BeaconsSent: 1, ParentChanges: 2, RouteLosses: 1,
		Inserted: 1, Evicted: 1, Replaced: 1, Rejected: 1,
		Generated: 2, Refused: 1, Delivered: 1,
	}
	if c != want {
		t.Errorf("CountSink = %+v, want %+v", c, want)
	}
}
