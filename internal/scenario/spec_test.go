package scenario

import (
	"strings"
	"testing"

	"fourbit/internal/node"
	"fourbit/internal/sim"
)

// wantErr asserts err is non-nil and mentions frag.
func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected an error mentioning %q, got nil", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		frag string
	}{
		{"unknown protocol", Spec{Protocol: "5B"}, "unknown protocol"},
		{"unknown topology", Spec{Topology: TopoSpec{Kind: "torus"}}, "unknown topology kind"},
		{"generated topo without N", Spec{Topology: TopoSpec{Kind: "uniform"}}, "needs N"},
		{"grid without shape", Spec{Topology: TopoSpec{Kind: "grid"}}, "Rows and Cols"},
		{"negative duration", Spec{DurationMin: -1}, "negative duration"},
		{"negative replicates", Spec{Replicates: -2}, "negative replicates"},
		{"negative table", Spec{TableSize: -1}, "negative estimator"},
		{"bad jitter", Spec{Traffic: &TrafficSpec{JitterFrac: f64(1.5)}}, "invalid traffic"},
		{"table on lqi", Spec{Protocol: "MultiHopLQI", TableSize: 4}, "do not apply to MultiHopLQI"},
		{"unknown event", Spec{Dynamics: []Event{{Kind: "meteor-strike"}}}, "unknown event kind"},
		{"down without nodes", Spec{Dynamics: []Event{{Kind: "node-down", AtMin: 1}}}, "explicit target"},
		{"empty window", Spec{Dynamics: []Event{{Kind: "interference", AtMin: 5, UntilMin: 2}}}, "is empty"},
		{"self link", Spec{Dynamics: []Event{{Kind: "link-burst", LinkA: 3, LinkB: 3}}}, "distinct endpoints"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantErr(t, c.spec.Validate(), c.frag)
		})
	}
}

func f64(v float64) *float64 { return &v }

func TestRunConfigRejectsOutOfRangeNodes(t *testing.T) {
	s := Spec{
		Topology: TopoSpec{Kind: "line", N: 5},
		Dynamics: []Event{{Kind: "node-down", AtMin: 1, Nodes: []int{9}}},
	}
	_, err := s.RunConfig()
	wantErr(t, err, "outside topology")

	s.Dynamics = []Event{{Kind: "link-burst", AtMin: 1, LinkA: 1, LinkB: 12}}
	_, err = s.RunConfig()
	wantErr(t, err, "outside topology")
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"Protocol": "4B", "TablSize": 4}`))
	wantErr(t, err, "TablSize")
}

func TestParseSpecRoundTrip(t *testing.T) {
	data := []byte(`{
		"Name": "cooked",
		"Protocol": "CTP",
		"Topology": {"Kind": "clustered", "N": 24, "Clusters": 4},
		"Seed": 9,
		"TxPowerDBm": -10,
		"DurationMin": 2,
		"TableSize": 6,
		"Dynamics": [{"Kind": "power-step", "AtMin": 1, "PowerDBm": -15}]
	}`)
	s, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := s.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Topo.N() != 24 || rc.TxPowerDBm != -10 || rc.Est == nil || rc.Est.TableSize != 6 {
		t.Fatalf("spec did not compile faithfully: %+v", rc)
	}
	if rc.EnvMutate == nil {
		t.Fatal("dynamics did not compile to an EnvMutate hook")
	}
}

func TestSpecKnobsReachConfigs(t *testing.T) {
	s := Spec{
		Protocol:   "4B",
		Topology:   TopoSpec{Kind: "line", N: 4},
		BeaconMaxS: 64,
		TableSize:  3,
		Traffic:    &TrafficSpec{PeriodS: 5},
		Channel:    &ChannelSpec{NoiseBurstAmpDB: f64(22)},
	}
	rc, err := s.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.CTP == nil || rc.CTP.BeaconMax != 64*sim.Second {
		t.Errorf("BeaconMaxS did not reach ctp config: %+v", rc.CTP)
	}
	if rc.Est == nil || rc.Est.TableSize != 3 {
		t.Errorf("TableSize did not reach estimator config: %+v", rc.Est)
	}
	if rc.Workload.Period != 5*sim.Second {
		t.Errorf("traffic period = %v, want 5s", rc.Workload.Period)
	}
	if rc.Env == nil || rc.Env.Phy.NoiseBurstAmpDB != 22 {
		t.Errorf("channel override did not reach env config")
	}

	s.Protocol = "MultiHopLQI"
	s.TableSize = 0 // stating a table size with MultiHopLQI is a validation error
	rc, err = s.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.LQI == nil || rc.LQI.BeaconPeriod != 64*sim.Second {
		t.Errorf("BeaconMaxS did not reach lqirouter config: %+v", rc.LQI)
	}
	if rc.Est != nil {
		t.Error("table override must not apply to MultiHopLQI")
	}
}

func TestSweepDropsTableKnobOnLQICells(t *testing.T) {
	sw := Sweep{
		Base: Spec{Topology: TopoSpec{Kind: "line", N: 4}, TableSize: 4},
		Axes: []Axis{{Param: "protocol", Strings: []string{"4B", "MultiHopLQI"}}},
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Spec.TableSize != 4 {
		t.Error("4B cell lost its table size")
	}
	if cells[1].Spec.TableSize != 0 {
		t.Error("MultiHopLQI cell kept a table size it cannot use")
	}
}

func TestDynamicsDriveRadios(t *testing.T) {
	s := Spec{
		Topology: TopoSpec{Kind: "line", N: 3},
		Dynamics: []Event{
			{Kind: "node-down", AtMin: 1, UntilMin: 2, Nodes: []int{1}},
			{Kind: "power-step", AtMin: 1, PowerDBm: -7, Nodes: []int{2}},
		},
	}
	rc, err := s.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	env := node.NewEnv(rc.Topo, node.DefaultEnvConfig(rc.Seed, rc.TxPowerDBm))
	rc.EnvMutate(env)

	env.Clock.RunUntil(90 * sim.Second)
	if !env.Medium.Radio(1).Down() {
		t.Error("node 1 should be down between minutes 1 and 2")
	}
	if got := env.Medium.Radio(2).TxPower(); got != -7 {
		t.Errorf("node 2 power = %v dBm after step, want -7", got)
	}
	env.Clock.RunUntil(150 * sim.Second)
	if env.Medium.Radio(1).Down() {
		t.Error("node 1 should have rebooted at minute 2")
	}
}

func TestLinkBurstsOnSamePairStack(t *testing.T) {
	// Two bursts on the same link, hours of mean Bad sojourn: inside each
	// window the link must be attenuated; between them it must not be.
	s := Spec{
		Topology: TopoSpec{Kind: "line", N: 3},
		Dynamics: []Event{
			{Kind: "link-burst", AtMin: 1, UntilMin: 2, LinkA: 1, LinkB: 2, AmpDB: 40, MeanOnMS: 3.6e6, MeanOffS: 0.001},
			{Kind: "link-burst", AtMin: 3, UntilMin: 4, LinkA: 2, LinkB: 1, AmpDB: 40, MeanOnMS: 3.6e6, MeanOffS: 0.001},
		},
	}
	rc, err := s.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	env := node.NewEnv(rc.Topo, node.DefaultEnvConfig(rc.Seed, 0))
	rc.EnvMutate(env)

	quiet := env.Chan.GainDB(1, 2, 150*sim.Second) // between the windows
	in1 := env.Chan.GainDB(1, 2, 90*sim.Second)    // inside window 1
	in2 := env.Chan.GainDB(1, 2, 210*sim.Second)   // inside window 2
	if quiet-in1 < 30 {
		t.Errorf("window 1 burst missing: gain %.1f vs quiet %.1f", in1, quiet)
	}
	if quiet-in2 < 30 {
		t.Errorf("window 2 burst lost (modifier overwritten): gain %.1f vs quiet %.1f", in2, quiet)
	}
}

func TestNodeDownSparesRoot(t *testing.T) {
	s := Spec{
		Topology: TopoSpec{Kind: "line", N: 3},
		Dynamics: []Event{{Kind: "node-down", AtMin: 1, Nodes: []int{0, 1}}},
	}
	rc, err := s.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	env := node.NewEnv(rc.Topo, node.DefaultEnvConfig(rc.Seed, 0))
	rc.EnvMutate(env)
	env.Clock.RunUntil(2 * sim.Minute)
	if env.Medium.Radio(0).Down() {
		t.Error("the root must never be powered down")
	}
	if !env.Medium.Radio(1).Down() {
		t.Error("node 1 should be down")
	}
}
