package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// tinySweep is a 2×2 grid of very short line-topology runs, small enough
// to execute in tests.
func tinySweep() Sweep {
	return Sweep{
		Name: "tiny",
		Base: Spec{
			Topology:    TopoSpec{Kind: "line", N: 5, SpacingM: 12},
			Seed:        3,
			DurationMin: 1,
			WarmupMin:   0.5,
			Replicates:  2,
		},
		Axes: []Axis{
			{Param: "protocol", Strings: []string{"4B", "MultiHopLQI"}},
			{Param: "txpower", Values: []float64{0, -5}},
		},
	}
}

func TestSweepValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		sw   Sweep
		frag string
	}{
		{"unknown param", Sweep{Axes: []Axis{{Param: "humidity", Values: []float64{1}}}}, "unknown sweep parameter"},
		{"empty axis", Sweep{Axes: []Axis{{Param: "txpower"}}}, "no values"},
		{"both kinds", Sweep{Axes: []Axis{{Param: "txpower", Values: []float64{1}, Strings: []string{"a"}}}}, "both Values and Strings"},
		{"stringly needs strings", Sweep{Axes: []Axis{{Param: "protocol", Values: []float64{1}}}}, "needs Strings"},
		{"numeric needs values", Sweep{Axes: []Axis{{Param: "txpower", Strings: []string{"x"}}}}, "needs numeric"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantErr(t, c.sw.Validate(), c.frag)
		})
	}
	// A bad protocol name is caught at cell expansion.
	sw := tinySweep()
	sw.Axes[0].Strings = []string{"4B", "9B"}
	_, err := sw.Cells()
	wantErr(t, err, "unknown protocol")
}

func TestSweepExpansionRowMajor(t *testing.T) {
	sw := tinySweep()
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	want := [][2]string{{"4B", "0"}, {"4B", "-5"}, {"MultiHopLQI", "0"}, {"MultiHopLQI", "-5"}}
	for i, c := range cells {
		if c.Labels[0].Value != want[i][0] || c.Labels[1].Value != want[i][1] {
			t.Errorf("cell %d = %v, want %v", i, c.Labels, want[i])
		}
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
	}
	// The base spec must not leak mutations between cells.
	if cells[0].Spec.Protocol != "4B" || cells[3].Spec.Protocol != "MultiHopLQI" {
		t.Error("cell specs share state")
	}
	if sw.Base.Protocol != "" {
		t.Error("expansion mutated the base spec")
	}
}

func TestDefaultSweepIsTwelveCells(t *testing.T) {
	sw := DefaultSweep(1, 25, 3)
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("default sweep has %d cells, want 12", len(cells))
	}
	kinds := map[string]bool{}
	for _, c := range cells {
		kinds[c.Spec.Topology.Kind] = true
		if c.Spec.Replicates != 3 {
			t.Fatalf("cell lost replicate count: %+v", c.Spec)
		}
	}
	if len(kinds) != 3 {
		t.Fatalf("default sweep spans %d topologies, want 3", len(kinds))
	}
}

func TestSweepRunWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	sw := tinySweep()
	serial, err := sw.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := sw.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatal("sweep results differ between 1 and 4 workers")
	}
	// And the exports are byte-identical too.
	var a, b bytes.Buffer
	if err := serial.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := pooled.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV differs between worker counts")
	}
}

func TestSweepExports(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	sw := tinySweep()
	res, err := sw.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 cells:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "cell,protocol,txpower,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	for _, want := range []string{"cost_mean", "delivery_mean", "beacontx_mean"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("CSV header missing %q", want)
		}
	}

	var jsonBuf bytes.Buffer
	if err := res.WriteJSONL(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	jl := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	if len(jl) != 4 {
		t.Fatalf("JSONL has %d lines, want 4", len(jl))
	}
	for _, line := range jl {
		for _, want := range []string{`"params"`, `"seeds"`, `"runs"`, `"cost"`} {
			if !strings.Contains(line, want) {
				t.Errorf("JSONL row missing %s: %s", want, line)
			}
		}
	}

	var table bytes.Buffer
	res.Fprint(&table)
	if !strings.Contains(table.String(), "4 cells") {
		t.Errorf("table rendering: %s", table.String())
	}
}

func TestParseSweepRejectsUnknownFields(t *testing.T) {
	_, err := ParseSweep([]byte(`{"Base": {}, "Axez": []}`))
	wantErr(t, err, "Axez")
}

func TestPresetsAllValid(t *testing.T) {
	for _, p := range Presets() {
		if _, err := p.Spec.RunConfig(); err != nil {
			t.Errorf("preset %q does not compile: %v", p.Name, err)
		}
	}
	if _, ok := Preset("baseline"); !ok {
		t.Error("baseline preset missing")
	}
	if _, ok := Preset("no-such"); ok {
		t.Error("lookup of unknown preset succeeded")
	}
}
