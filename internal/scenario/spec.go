package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/ctp"
	"fourbit/internal/experiment"
	"fourbit/internal/lqirouter"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// Spec declares one collection scenario. The zero value of every field
// means "the paper's default": a zero Spec (plus a topology kind) is
// exactly the standard 25-minute Mirage-style run the figure harnesses
// use, so presets and JSON files only state what they change.
//
// Durations are minutes or seconds as suffixed, powers are dBm — the same
// units the fourbitsim flags use.
type Spec struct {
	Name string `json:",omitempty"`
	// Protocol is a variant name as printed by experiment.Protocol: "4B",
	// "CTP", "CTP+unidir", "CTP+white", "CTP-unlimited", "MultiHopLQI".
	// Empty means "4B".
	Protocol string `json:",omitempty"`
	// Estimator selects the link-estimator implementation for CTP-family
	// protocols: "4bit", "wmewma", "pdr", "lqi" (core.EstimatorKinds).
	// Empty keeps the protocol's default four-bit family estimator —
	// byte-identical to pre-framework behavior. Invalid on MultiHopLQI,
	// which carries its estimation inline.
	Estimator string `json:",omitempty"`
	Topology  TopoSpec
	Seed      uint64 `json:",omitempty"`
	// TxPowerDBm is the shared transmit power (0 dBm default, like the
	// testbeds; the paper's Figure 7 sweeps it down to -20).
	TxPowerDBm  float64 `json:",omitempty"`
	DurationMin float64 `json:",omitempty"` // 0 = 25 (the paper's runs)
	WarmupMin   float64 `json:",omitempty"` // 0 = 5; tree-depth sampling starts here
	SampleS     float64 `json:",omitempty"` // 0 = 60; depth sampling period
	// Replicates > 1 fans the scenario across that many seeds derived from
	// Seed (experiment.ReplicaSeeds) and aggregates mean ± stddev.
	Replicates int `json:",omitempty"`

	Traffic *TrafficSpec `json:",omitempty"` // nil = 1 pkt / 10 s / node
	Channel *ChannelSpec `json:",omitempty"` // nil = testbed defaults

	// TableSize / FooterEntries override the link-estimator table (CTP
	// family only; 0 keeps the protocol's default — 10 entries for the
	// paper's variants, unrestricted for CTP-unlimited).
	TableSize     int `json:",omitempty"`
	FooterEntries int `json:",omitempty"`
	// BeaconMaxS overrides the beacon rate: CTP's Trickle maximum interval
	// (default 128 s) or MultiHopLQI's fixed beacon period (default 30 s).
	BeaconMaxS float64 `json:",omitempty"`

	// Dynamics are scripted mid-run events: node death/reboot, power
	// steps, interference onset, link bursts.
	Dynamics []Event `json:",omitempty"`

	// Shards selects the region-sharded parallel event loop
	// (experiment.RunConfig.Shards): 0 auto-selects — city-scale
	// populations shard, everything else (every golden config included)
	// stays on the serial path byte-for-byte; >= 1 forces that shard
	// count; -1 forces serial. Sharded results are invariant to the shard
	// count but are a different (equally valid) trajectory than serial.
	// Incompatible with TimelineS (the probe collector is serial-only).
	Shards int `json:",omitempty"`
	// Sinks is the number of collection roots (multi-sink collection).
	// 0 or 1 is the classic single-sink run, bit-for-bit. Larger values
	// add Sinks-1 extra roots at deterministic geometric anchors spread
	// over the deployment's bounding box (far corner first), so a preset
	// names a sink count, not node indices. Max 9.
	Sinks int `json:",omitempty"`
	// TimelineS, when positive, records a windowed timeline (cost,
	// delivery ratio, parent churn, table composition per window of that
	// many seconds) through the run's probe bus. Timelines are pure
	// observation: the run's trajectory and headline metrics are identical
	// with or without one. They are what makes the Dynamics above
	// measurable — see the recovery-time metric (probe.RecoveryWindows)
	// and the timeline exports.
	TimelineS float64 `json:",omitempty"`
}

// TrafficSpec overrides the offered collection workload.
type TrafficSpec struct {
	PeriodS      float64  `json:",omitempty"` // 0 = 10
	JitterFrac   *float64 `json:",omitempty"` // nil = 0.1
	PayloadBytes int      `json:",omitempty"` // 0 = 12
	BootWindowS  float64  `json:",omitempty"` // 0 = 30
}

// Workload resolves the spec into the collect package's workload.
func (t *TrafficSpec) Workload() collect.Workload {
	wl := collect.DefaultWorkload()
	if t == nil {
		return wl
	}
	if t.PeriodS > 0 {
		wl.Period = sim.FromSeconds(t.PeriodS)
	}
	if t.JitterFrac != nil {
		wl.JitterFrac = *t.JitterFrac
	}
	if t.PayloadBytes > 0 {
		wl.PayloadBytes = t.PayloadBytes
	}
	if t.BootWindowS > 0 {
		wl.BootWindow = sim.FromSeconds(t.BootWindowS)
	}
	return wl
}

// ChannelSpec overrides individual channel-model parameters. Fields are
// pointers so JSON can state only what changes; nil keeps the testbed
// default (experiment.EnvConfigFor, which already hardens TutorNet-style
// topologies).
type ChannelSpec struct {
	PathLossRefDB       *float64 `json:",omitempty"`
	PathLossExponent    *float64 `json:",omitempty"`
	ShadowSigmaDB       *float64 `json:",omitempty"`
	TxVarSigmaDB        *float64 `json:",omitempty"`
	NoiseFigSigmaDB     *float64 `json:",omitempty"`
	NoiseFloorDBm       *float64 `json:",omitempty"`
	NoiseDriftSigmaDB   *float64 `json:",omitempty"`
	NoiseDriftTauS      *float64 `json:",omitempty"`
	FadeSigmaDB         *float64 `json:",omitempty"`
	FadeTauS            *float64 `json:",omitempty"`
	NoiseBurstAmpDB     *float64 `json:",omitempty"`
	NoiseBurstMeanOnMS  *float64 `json:",omitempty"`
	NoiseBurstMeanOffS  *float64 `json:",omitempty"`
	PacketJitterSigmaDB *float64 `json:",omitempty"`
	// SparseAboveN / AudibleFloorDB control the sparse audible-set channel
	// representation for city-scale networks (see phy.PrecomputeGeo).
	// Representation choice never changes results; these exist to force a
	// path (differential tests) or tune the storage floor. nil keeps the
	// phy defaults (sparse from 512 nodes, floor −125.5 dB).
	SparseAboveN   *int     `json:",omitempty"`
	AudibleFloorDB *float64 `json:",omitempty"`
}

func (c *ChannelSpec) apply(p *phy.Params) {
	set := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	set(&p.PathLossRefDB, c.PathLossRefDB)
	set(&p.PathLossExponent, c.PathLossExponent)
	set(&p.ShadowSigmaDB, c.ShadowSigmaDB)
	set(&p.TxVarSigmaDB, c.TxVarSigmaDB)
	set(&p.NoiseFigSigmaDB, c.NoiseFigSigmaDB)
	set(&p.NoiseFloorDBm, c.NoiseFloorDBm)
	set(&p.NoiseDriftSigmaDB, c.NoiseDriftSigmaDB)
	set(&p.FadeSigmaDB, c.FadeSigmaDB)
	set(&p.NoiseBurstAmpDB, c.NoiseBurstAmpDB)
	set(&p.PacketJitterSigmaDB, c.PacketJitterSigmaDB)
	if c.NoiseDriftTauS != nil {
		p.NoiseDriftTau = sim.FromSeconds(*c.NoiseDriftTauS)
	}
	if c.FadeTauS != nil {
		p.FadeTau = sim.FromSeconds(*c.FadeTauS)
	}
	if c.NoiseBurstMeanOnMS != nil {
		p.NoiseBurstMeanOn = sim.FromSeconds(*c.NoiseBurstMeanOnMS / 1000)
	}
	if c.NoiseBurstMeanOffS != nil {
		p.NoiseBurstMeanOff = sim.FromSeconds(*c.NoiseBurstMeanOffS)
	}
	if c.SparseAboveN != nil {
		p.SparseAboveN = *c.SparseAboveN
	}
	set(&p.AudibleFloorDB, c.AudibleFloorDB)
}

// protocol resolves the protocol name (empty = 4B).
func (s *Spec) protocol() (experiment.Protocol, error) {
	name := s.Protocol
	if name == "" {
		name = "4B"
	}
	return experiment.ParseProtocol(name)
}

// duration returns the run length; the conversion chain matches the
// fourbitsim -minutes flag exactly so presets reproduce figure runs
// bit-for-bit.
func (s *Spec) duration() sim.Time {
	m := s.DurationMin
	if m == 0 {
		m = 25
	}
	return sim.FromSeconds(m * 60)
}

// Validate reports the first structural problem with the spec. Node-index
// range checks happen in RunConfig, after the topology is built.
func (s *Spec) Validate() error {
	if _, err := s.protocol(); err != nil {
		return err
	}
	if err := s.Topology.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if s.DurationMin < 0 || s.WarmupMin < 0 || s.SampleS < 0 {
		return fmt.Errorf("scenario %q: negative duration", s.Name)
	}
	if s.TimelineS < 0 {
		return fmt.Errorf("scenario %q: negative timeline window", s.Name)
	}
	if s.Replicates < 0 {
		return fmt.Errorf("scenario %q: negative replicates", s.Name)
	}
	if s.Shards < -1 {
		return fmt.Errorf("scenario %q: Shards must be -1 (serial), 0 (auto) or a shard count", s.Name)
	}
	if s.Shards > 0 && s.TimelineS > 0 {
		return fmt.Errorf("scenario %q: TimelineS needs the serial path; drop Shards or set it to -1", s.Name)
	}
	if s.Sinks < 0 || s.Sinks > 9 {
		return fmt.Errorf("scenario %q: Sinks must be between 0 and 9, got %d", s.Name, s.Sinks)
	}
	if s.TableSize < 0 || s.FooterEntries < 0 || s.BeaconMaxS < 0 {
		return fmt.Errorf("scenario %q: negative estimator/beacon knob", s.Name)
	}
	if p, _ := s.protocol(); p == experiment.ProtoMultiHopLQI && (s.TableSize > 0 || s.FooterEntries > 0) {
		return fmt.Errorf("scenario %q: TableSize/FooterEntries do not apply to MultiHopLQI (no link table)", s.Name)
	}
	if s.Estimator != "" {
		if _, err := core.ParseEstimatorKind(s.Estimator); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if p, _ := s.protocol(); p == experiment.ProtoMultiHopLQI {
			return fmt.Errorf("scenario %q: Estimator does not apply to MultiHopLQI (estimation is inline)", s.Name)
		}
	}
	if s.Traffic != nil {
		t := s.Traffic
		if t.PeriodS < 0 || t.PayloadBytes < 0 || t.BootWindowS < 0 ||
			(t.JitterFrac != nil && (*t.JitterFrac < 0 || *t.JitterFrac >= 1)) {
			return fmt.Errorf("scenario %q: invalid traffic spec", s.Name)
		}
	}
	for i := range s.Dynamics {
		if err := s.Dynamics[i].validate(); err != nil {
			return fmt.Errorf("scenario %q: dynamics[%d]: %w", s.Name, i, err)
		}
	}
	return nil
}

// RunConfig compiles the spec into one experiment run.
func (s *Spec) RunConfig() (experiment.RunConfig, error) {
	if err := s.Validate(); err != nil {
		return experiment.RunConfig{}, err
	}
	p, _ := s.protocol()
	tp, err := s.Topology.Build(s.Seed)
	if err != nil {
		return experiment.RunConfig{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	rc := experiment.DefaultRunConfig(p, tp, s.Seed)
	rc.TxPowerDBm = s.TxPowerDBm
	rc.Duration = s.duration()
	if s.WarmupMin > 0 {
		rc.Warmup = sim.FromSeconds(s.WarmupMin * 60)
	}
	if s.SampleS > 0 {
		rc.SampleEvery = sim.FromSeconds(s.SampleS)
	}
	rc.Workload = s.Traffic.Workload()
	if s.Channel != nil {
		env := experiment.EnvConfigFor(tp, s.Seed, s.TxPowerDBm)
		s.Channel.apply(&env.Phy)
		rc.Env = &env
	}
	if s.Estimator != "" {
		kind, err := core.ParseEstimatorKind(s.Estimator)
		if err != nil {
			return experiment.RunConfig{}, err
		}
		rc.Estimator = kind
	}
	if (s.TableSize > 0 || s.FooterEntries > 0) && p != experiment.ProtoMultiHopLQI {
		est, err := experiment.EstimatorConfig(p)
		if err != nil {
			return experiment.RunConfig{}, err
		}
		if s.TableSize > 0 {
			est.TableSize = s.TableSize
		}
		if s.FooterEntries > 0 {
			est.FooterEntries = s.FooterEntries
		}
		// The knobs passed structural validation above; the estimator
		// constructors re-validate, but catching a contradictory combination
		// here names the scenario instead of panicking mid-run.
		if err := est.Validate(); err != nil {
			return experiment.RunConfig{}, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		rc.Est = &est
	}
	if s.BeaconMaxS > 0 {
		if p == experiment.ProtoMultiHopLQI {
			cfg := lqirouter.DefaultConfig()
			cfg.BeaconPeriod = sim.FromSeconds(s.BeaconMaxS)
			rc.LQI = &cfg
		} else {
			cfg := ctp.DefaultConfig()
			cfg.BeaconMax = sim.FromSeconds(s.BeaconMaxS)
			rc.CTP = &cfg
		}
	}
	if len(s.Dynamics) > 0 {
		for i := range s.Dynamics {
			if err := s.Dynamics[i].checkNodes(tp); err != nil {
				return experiment.RunConfig{}, fmt.Errorf("scenario %q: dynamics[%d]: %w", s.Name, i, err)
			}
		}
		rc.EnvMutate = compileDynamics(s.Dynamics)
	}
	if s.TimelineS > 0 {
		rc.TimelineWindow = sim.FromSeconds(s.TimelineS)
	}
	rc.Shards = s.Shards
	if s.Sinks > 1 {
		rc.ExtraSinks = extraSinks(tp, s.Sinks-1)
	}
	return rc, nil
}

// sinkAnchors are the unit-bounding-box positions extra sinks snap to, in
// placement order: the far corner first (the longest haul from the usual
// near-origin root), then the remaining corners, center, and edge
// midpoints. Fixed anchors make a preset's sink layout a pure function of
// the topology — no indices to restate when N changes.
var sinkAnchors = [][2]float64{
	{1, 1}, {1, 0}, {0, 1}, {0.5, 0.5}, {1, 0.5}, {0, 0.5}, {0.5, 1}, {0.5, 0},
}

// extraSinks picks count extra collection roots: for each anchor in order,
// the node nearest that point of the deployment's xy bounding box (floors
// project onto one plane — a multifloor block wants sinks spread in plan,
// not stacked) that is not the root or an earlier pick. Ascending node
// scan breaks distance ties toward the lower index.
func extraSinks(tp *topo.Topology, count int) []int {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range tp.Positions {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	taken := map[int]bool{tp.Root: true}
	var out []int
	for k := 0; k < count && k < len(sinkAnchors); k++ {
		ax := minX + sinkAnchors[k][0]*(maxX-minX)
		ay := minY + sinkAnchors[k][1]*(maxY-minY)
		best, bestD := -1, math.Inf(1)
		for i, p := range tp.Positions {
			if taken[i] {
				continue
			}
			d := (p.X-ax)*(p.X-ax) + (p.Y-ay)*(p.Y-ay)
			if d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}

// Batch expands the spec into its replicate runs: one RunConfig per seed.
// With Replicates <= 1 the batch is the single run under Seed itself;
// otherwise the seeds come from experiment.ReplicaSeeds, so a scenario's
// replication matches `fourbitsim replicate` exactly.
func (s *Spec) Batch() ([]experiment.RunConfig, []uint64, error) {
	rc, err := s.RunConfig()
	if err != nil {
		return nil, nil, err
	}
	if s.Replicates <= 1 {
		return []experiment.RunConfig{rc}, []uint64{rc.Seed}, nil
	}
	seeds := experiment.ReplicaSeeds(s.Seed, s.Replicates)
	rcs := make([]experiment.RunConfig, len(seeds))
	for i, seed := range seeds {
		rcs[i] = rc
		rcs[i].Seed = seed
	}
	return rcs, seeds, nil
}

// Run executes the scenario (with replication, if requested) on a worker
// pool and aggregates the results. workers <= 0 means the default pool
// (all CPUs); results are identical for every worker count.
func (s *Spec) Run(workers int) (*experiment.Replicated, error) {
	rcs, seeds, err := s.Batch()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = experiment.DefaultWorkers()
	}
	runs := experiment.RunAllWorkers(rcs, workers)
	return experiment.Aggregate(rcs[0].Protocol, rcs[0].TxPowerDBm, seeds, runs), nil
}

// ParseSpec decodes and validates a JSON scenario spec. Unknown fields are
// errors — a misspelled knob must not silently fall back to a default.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// TopoSpec names a topology generator and its parameters. Kinds:
//
//	mirage     the 85-node single-floor office testbed (default)
//	tutornet   the 94-node two-floor testbed
//	line       N nodes, SpacingM apart (default 10 m)
//	grid       Rows×Cols nodes, SpacingM apart (default 6 m)
//	uniform    N nodes uniform over WidthM×HeightM (default 50×30 m)
//	clustered  N nodes in Clusters two-tier groups, SpreadM sigma
//	corridor   N nodes along a LengthM×WidthM hallway (default 120×4 m)
//	multifloor N nodes uniform over Floors storeys of WidthM×HeightM
//
// Seed, when nonzero, decouples the placement from the scenario seed so a
// replicated scenario varies the channel/protocol randomness while holding
// the layout fixed.
type TopoSpec struct {
	Kind      string  `json:",omitempty"`
	N         int     `json:",omitempty"`
	Rows      int     `json:",omitempty"`
	Cols      int     `json:",omitempty"`
	SpacingM  float64 `json:",omitempty"`
	WidthM    float64 `json:",omitempty"`
	HeightM   float64 `json:",omitempty"`
	LengthM   float64 `json:",omitempty"`
	Clusters  int     `json:",omitempty"`
	SpreadM   float64 `json:",omitempty"`
	Floors    int     `json:",omitempty"`
	ClutterDB float64 `json:",omitempty"`
	Seed      uint64  `json:",omitempty"`
}

// TopoKinds lists the supported generator names.
func TopoKinds() []string {
	return []string{"mirage", "tutornet", "line", "grid", "uniform", "clustered", "corridor", "multifloor"}
}

func (ts *TopoSpec) validate() error {
	switch ts.Kind {
	case "", "mirage", "tutornet":
		return nil
	case "line", "uniform", "clustered", "corridor", "multifloor":
		if ts.N <= 1 {
			return fmt.Errorf("topology %q needs N >= 2 nodes", ts.Kind)
		}
		return nil
	case "grid":
		if ts.Rows <= 0 || ts.Cols <= 0 || ts.Rows*ts.Cols <= 1 {
			return fmt.Errorf("topology grid needs Rows and Cols (>= 2 nodes)")
		}
		return nil
	default:
		return fmt.Errorf("unknown topology kind %q (kinds: %v)", ts.Kind, TopoKinds())
	}
}

// Build generates the topology. masterSeed seeds the placement unless the
// spec pins its own Seed.
func (ts *TopoSpec) Build(masterSeed uint64) (*topo.Topology, error) {
	if err := ts.validate(); err != nil {
		return nil, err
	}
	seed := ts.Seed
	if seed == 0 {
		seed = masterSeed
	}
	or := func(v, def float64) float64 {
		if v > 0 {
			return v
		}
		return def
	}
	var tp *topo.Topology
	switch ts.Kind {
	case "", "mirage":
		tp = topo.Mirage(seed)
	case "tutornet":
		tp = topo.TutorNet(seed)
	case "line":
		tp = topo.Line(ts.N, or(ts.SpacingM, 10))
	case "grid":
		tp = topo.Grid(ts.Rows, ts.Cols, or(ts.SpacingM, 6))
	case "uniform":
		tp = topo.UniformRandom(ts.N, or(ts.WidthM, 50), or(ts.HeightM, 30), seed)
	case "clustered":
		clusters := ts.Clusters
		if clusters <= 0 {
			clusters = 5
		}
		tp = topo.Clustered(ts.N, clusters, or(ts.WidthM, 50), or(ts.HeightM, 30), or(ts.SpreadM, 3), seed)
	case "corridor":
		tp = topo.Corridor(ts.N, or(ts.LengthM, 120), or(ts.WidthM, 4), seed)
	case "multifloor":
		floors := ts.Floors
		if floors <= 0 {
			floors = 2
		}
		tp = topo.MultiFloor(ts.N, floors, or(ts.WidthM, 42), or(ts.HeightM, 24), seed)
	}
	if ts.ClutterDB > 0 {
		tp.ClutterDB = ts.ClutterDB
		tp.ClutterSeed = seed
	}
	return tp, nil
}
