package scenario

import (
	"testing"

	"fourbit/internal/experiment"
	"fourbit/internal/phy"
)

// cityRunConfig compiles a city preset and asserts the compiled run would
// select the sparse audible-set channel representation — the presets exist
// to exercise that path, so silently falling back to the dense O(n²)
// arrays (a threshold regression, or a lost Channel override) would turn
// them into memory bombs.
func cityRunConfig(t *testing.T, name string) experiment.RunConfig {
	t.Helper()
	p, ok := Preset(name)
	if !ok {
		t.Fatalf("preset %q missing", name)
	}
	rc, err := p.Spec.RunConfig()
	if err != nil {
		t.Fatalf("preset %q does not compile: %v", name, err)
	}
	if rc.Env == nil {
		t.Fatalf("preset %q lost its channel overrides", name)
	}
	if !phy.PrecomputeGeo(rc.Topo, rc.Env.Phy).Sparse() {
		t.Fatalf("preset %q (n=%d) selects the dense representation", name, rc.Topo.N())
	}
	return rc
}

// TestCityPresetsSelectSparse pins the representation choice for every
// city-scale preset, including the 10k-node one (topology build and
// geometric precompute only — no channel instantiation, so it stays cheap
// enough for -short).
func TestCityPresetsSelectSparse(t *testing.T) {
	for _, name := range []string{"city-corridor-2k", "city-multifloor-10k"} {
		cityRunConfig(t, name)
	}
}

// TestCityScaleSmoke actually runs the 2000-node corridor preset for a few
// simulated seconds: the full protocol stack over the sparse channel must
// boot, form the first tree layers around the root, and deliver traffic.
// CI runs this under the race detector (the `city-scale-smoke` step); the
// simulated duration is cut far below the preset's so that stays fast.
func TestCityScaleSmoke(t *testing.T) {
	p, _ := Preset("city-corridor-2k")
	p.Spec.DurationMin = 0.2 // 12 s simulated: boot window + first samples
	p.Spec.WarmupMin = 0.1
	p.Spec.SampleS = 3
	rc, err := p.Spec.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	cityRunConfig(t, "city-corridor-2k") // representation pin on the real preset
	res := experiment.Run(rc)
	if res.Generated == 0 {
		t.Fatal("city smoke generated no traffic")
	}
	if res.Unique == 0 {
		t.Fatal("city smoke delivered nothing; network degenerate")
	}
	t.Logf("2k smoke: generated=%d unique=%d delivery=%.2f events=%d",
		res.Generated, res.Unique, res.DeliveryRatio, res.Events)
}
