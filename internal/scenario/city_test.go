package scenario

import (
	"testing"

	"fourbit/internal/experiment"
	"fourbit/internal/phy"
)

// cityRunConfig compiles a city preset and asserts the compiled run would
// select the sparse audible-set channel representation — the presets exist
// to exercise that path, so silently falling back to the dense O(n²)
// arrays (a threshold regression, or a lost Channel override) would turn
// them into memory bombs.
func cityRunConfig(t *testing.T, name string) experiment.RunConfig {
	t.Helper()
	p, ok := Preset(name)
	if !ok {
		t.Fatalf("preset %q missing", name)
	}
	rc, err := p.Spec.RunConfig()
	if err != nil {
		t.Fatalf("preset %q does not compile: %v", name, err)
	}
	if rc.Env == nil {
		t.Fatalf("preset %q lost its channel overrides", name)
	}
	if !phy.PrecomputeGeo(rc.Topo, rc.Env.Phy).Sparse() {
		t.Fatalf("preset %q (n=%d) selects the dense representation", name, rc.Topo.N())
	}
	return rc
}

// TestCityPresetsSelectSparse pins the representation choice for every
// city-scale preset, including the 10k-node one (topology build and
// geometric precompute only — no channel instantiation, so it stays cheap
// enough for -short).
func TestCityPresetsSelectSparse(t *testing.T) {
	for _, name := range []string{"city-corridor-2k", "city-multifloor-10k", "city-multifloor-10k-4sink"} {
		cityRunConfig(t, name)
	}
}

// TestMultiSinkPresetCompiles pins the 4-sink preset's sink derivation:
// three extra roots, all distinct, none the primary root — the anchor
// placement is deterministic, so a change here means the sink layout (and
// every result from the preset) moved.
func TestMultiSinkPresetCompiles(t *testing.T) {
	rc := cityRunConfig(t, "city-multifloor-10k-4sink")
	if len(rc.ExtraSinks) != 3 {
		t.Fatalf("ExtraSinks = %v, want 3 extra roots", rc.ExtraSinks)
	}
	seen := map[int]bool{rc.Topo.Root: true}
	for _, s := range rc.ExtraSinks {
		if s < 0 || s >= rc.Topo.N() {
			t.Errorf("extra sink %d out of range", s)
		}
		if seen[s] {
			t.Errorf("extra sink %d duplicates the root or another sink", s)
		}
		seen[s] = true
	}
}

// TestMultiSinkSmoke runs a short multi-sink collection end to end on the
// 2000-node corridor (sharded, like any city-scale run): traffic must be
// generated and delivered, and the per-node accounting must cover every
// non-sink origin — the merged multi-sink ledger behind one number.
func TestMultiSinkSmoke(t *testing.T) {
	p, _ := Preset("city-corridor-2k")
	p.Spec.DurationMin = 0.2
	p.Spec.WarmupMin = 0.1
	p.Spec.SampleS = 3
	p.Spec.Sinks = 3
	rc, err := p.Spec.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.ExtraSinks) != 2 {
		t.Fatalf("ExtraSinks = %v, want 2", rc.ExtraSinks)
	}
	res := experiment.Run(rc)
	if res.Generated == 0 || res.Unique == 0 {
		t.Fatalf("multi-sink smoke degenerate: generated=%d unique=%d", res.Generated, res.Unique)
	}
	if want := rc.Topo.N() - 3; len(res.PerNodeDelivery) != want {
		t.Errorf("PerNodeDelivery has %d entries, want %d (all nodes minus 3 sinks)", len(res.PerNodeDelivery), want)
	}
	t.Logf("multi-sink smoke: sinks=%v generated=%d unique=%d delivery=%.2f",
		append([]int{rc.Topo.Root}, rc.ExtraSinks...), res.Generated, res.Unique, res.DeliveryRatio)
}

// TestCityScaleSmoke actually runs the 2000-node corridor preset for a few
// simulated seconds: the full protocol stack over the sparse channel must
// boot, form the first tree layers around the root, and deliver traffic.
// CI runs this under the race detector (the `city-scale-smoke` step); the
// simulated duration is cut far below the preset's so that stays fast.
func TestCityScaleSmoke(t *testing.T) {
	p, _ := Preset("city-corridor-2k")
	p.Spec.DurationMin = 0.2 // 12 s simulated: boot window + first samples
	p.Spec.WarmupMin = 0.1
	p.Spec.SampleS = 3
	rc, err := p.Spec.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	cityRunConfig(t, "city-corridor-2k") // representation pin on the real preset
	res := experiment.Run(rc)
	if res.Generated == 0 {
		t.Fatal("city smoke generated no traffic")
	}
	if res.Unique == 0 {
		t.Fatal("city smoke delivered nothing; network degenerate")
	}
	t.Logf("2k smoke: generated=%d unique=%d delivery=%.2f events=%d",
		res.Generated, res.Unique, res.DeliveryRatio, res.Events)
}
