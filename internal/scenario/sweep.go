package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"fourbit/internal/experiment"
)

// Axis is one swept parameter: a name from the registry below plus its
// values (numeric parameters use Values, protocol/topology names use
// Strings). Axis order is significant: the grid expands row-major with the
// last axis fastest, and result rows keep that order.
type Axis struct {
	Param   string
	Values  []float64 `json:",omitempty"`
	Strings []string  `json:",omitempty"`
}

// SweepParams lists the parameter names an Axis may sweep, with the Spec
// field each one drives.
//
//	protocol       Spec.Protocol            (Strings)
//	estimator      Spec.Estimator           (Strings; dropped on MultiHopLQI cells)
//	topology       Spec.Topology.Kind       (Strings)
//	txpower        Spec.TxPowerDBm          dBm
//	nodes          Spec.Topology.N
//	clusters       Spec.Topology.Clusters
//	spacing-m      Spec.Topology.SpacingM
//	clutter-db     Spec.Topology.ClutterDB
//	tablesize      Spec.TableSize (no-op on MultiHopLQI cells, which have no table)
//	beaconmax-s    Spec.BeaconMaxS
//	period-s       Spec.Traffic.PeriodS
//	noise-burst-db Spec.Channel.NoiseBurstAmpDB
//	duration-min   Spec.DurationMin
//	seed           Spec.Seed
func SweepParams() []string {
	return []string{"protocol", "estimator", "topology", "txpower", "nodes", "clusters",
		"spacing-m", "clutter-db", "tablesize", "beaconmax-s", "period-s",
		"noise-burst-db", "duration-min", "seed"}
}

func (a *Axis) len() int {
	if len(a.Strings) > 0 {
		return len(a.Strings)
	}
	return len(a.Values)
}

func (a *Axis) validate() error {
	// The registry check runs first: a misspelled parameter must say so,
	// not complain about the value type it would have needed.
	found := false
	for _, p := range SweepParams() {
		if p == a.Param {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown sweep parameter %q (parameters: %v)", a.Param, SweepParams())
	}
	switch {
	case len(a.Values) > 0 && len(a.Strings) > 0:
		return fmt.Errorf("axis %q sets both Values and Strings", a.Param)
	case len(a.Values) == 0 && len(a.Strings) == 0:
		return fmt.Errorf("axis %q has no values", a.Param)
	}
	stringly := a.Param == "protocol" || a.Param == "estimator" || a.Param == "topology"
	if stringly && len(a.Strings) == 0 {
		return fmt.Errorf("axis %q needs Strings values", a.Param)
	}
	if !stringly && len(a.Values) == 0 {
		return fmt.Errorf("axis %q needs numeric Values", a.Param)
	}
	return nil
}

// label formats value i for result rows and CSV columns.
func (a *Axis) label(i int) string {
	if len(a.Strings) > 0 {
		return a.Strings[i]
	}
	return strconv.FormatFloat(a.Values[i], 'g', -1, 64)
}

// apply writes value i of the axis into the spec.
func (a *Axis) apply(s *Spec, i int) {
	if len(a.Strings) > 0 {
		switch a.Param {
		case "protocol":
			s.Protocol = a.Strings[i]
		case "estimator":
			s.Estimator = a.Strings[i]
		case "topology":
			s.Topology.Kind = a.Strings[i]
		}
		return
	}
	v := a.Values[i]
	switch a.Param {
	case "txpower":
		s.TxPowerDBm = v
	case "nodes":
		s.Topology.N = int(v)
	case "clusters":
		s.Topology.Clusters = int(v)
	case "spacing-m":
		s.Topology.SpacingM = v
	case "clutter-db":
		s.Topology.ClutterDB = v
	case "tablesize":
		s.TableSize = int(v)
	case "beaconmax-s":
		s.BeaconMaxS = v
	case "period-s":
		if s.Traffic == nil {
			s.Traffic = &TrafficSpec{}
		} else {
			t := *s.Traffic
			s.Traffic = &t
		}
		s.Traffic.PeriodS = v
	case "noise-burst-db":
		if s.Channel == nil {
			s.Channel = &ChannelSpec{}
		} else {
			c := *s.Channel
			s.Channel = &c
		}
		amp := v
		s.Channel.NoiseBurstAmpDB = &amp
	case "duration-min":
		s.DurationMin = v
	case "seed":
		s.Seed = uint64(v)
	}
}

// Sweep is a parameter grid over a base scenario: the cartesian product of
// the axes, each cell a Spec derived from Base with the cell's values
// applied, replicated Base.Replicates times.
type Sweep struct {
	Name string `json:",omitempty"`
	Base Spec
	Axes []Axis
}

// Label is one cell coordinate, e.g. {Param: "txpower", Value: "-10"}.
type Label struct {
	Param string
	Value string
}

// Cell is one expanded grid point.
type Cell struct {
	Index  int
	Labels []Label
	Spec   Spec
}

// maxCells bounds a sweep's grid; beyond this the spec is almost certainly
// a typo (and the flat run batch would not fit in memory anyway).
const maxCells = 100000

// Validate checks the axes and the base spec.
func (sw *Sweep) Validate() error {
	cells := 1
	for i := range sw.Axes {
		if err := sw.Axes[i].validate(); err != nil {
			return fmt.Errorf("sweep %q: %w", sw.Name, err)
		}
		cells *= sw.Axes[i].len()
		if cells > maxCells {
			return fmt.Errorf("sweep %q: grid exceeds %d cells", sw.Name, maxCells)
		}
	}
	// The base must be valid for at least one cell; full validation of
	// every cell happens during expansion (axes may fix what the base
	// leaves unset, e.g. a "nodes" axis over a generated topology).
	return nil
}

// Cells expands the grid in row-major order (last axis fastest). Every
// cell's spec is fully validated; the first invalid cell aborts expansion.
func (sw *Sweep) Cells() ([]Cell, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	total := 1
	for i := range sw.Axes {
		total *= sw.Axes[i].len()
	}
	cells := make([]Cell, 0, total)
	idx := make([]int, len(sw.Axes))
	for n := 0; n < total; n++ {
		spec := sw.Base
		labels := make([]Label, len(sw.Axes))
		for ai := range sw.Axes {
			a := &sw.Axes[ai]
			a.apply(&spec, idx[ai])
			labels[ai] = Label{Param: a.Param, Value: a.label(idx[ai])}
		}
		// In a protocol × tablesize (or × estimator) cross-product the
		// MultiHopLQI cells have no link table for the knob to drive; drop
		// them so those cells run the protocol default instead of failing
		// validation. A standalone Spec stating the same contradiction
		// still errors.
		if spec.Protocol == "MultiHopLQI" {
			spec.TableSize, spec.FooterEntries = 0, 0
			spec.Estimator = ""
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("sweep %q cell %d %v: %w", sw.Name, n, labels, err)
		}
		cells = append(cells, Cell{Index: n, Labels: labels, Spec: spec})
		for ai := len(sw.Axes) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < sw.Axes[ai].len() {
				break
			}
			idx[ai] = 0
		}
	}
	return cells, nil
}

// CellResult pairs a cell with its aggregated replicate outcome.
type CellResult struct {
	Cell Cell
	Rep  *experiment.Replicated
}

// SweepResult is the outcome of a full grid.
type SweepResult struct {
	Name  string
	Cells []CellResult
}

// Run expands the grid, flattens every cell's replicate batch into one
// submission to the experiment worker pool, and regroups per cell. workers
// <= 0 means the default pool (all CPUs). Because RunAllWorkers' results
// depend only on the RunConfigs, a sweep's output is byte-identical for
// every worker count.
func (sw *Sweep) Run(workers int) (*SweepResult, error) {
	cells, err := sw.Cells()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = experiment.DefaultWorkers()
	}
	type span struct {
		off   int
		seeds []uint64
	}
	var flat []experiment.RunConfig
	spans := make([]span, len(cells))
	for i := range cells {
		rcs, seeds, err := cells[i].Spec.Batch()
		if err != nil {
			return nil, err
		}
		spans[i] = span{off: len(flat), seeds: seeds}
		flat = append(flat, rcs...)
	}
	results := experiment.RunAllWorkers(flat, workers)
	out := &SweepResult{Name: sw.Name, Cells: make([]CellResult, len(cells))}
	for i := range cells {
		sp := spans[i]
		runs := results[sp.off : sp.off+len(sp.seeds)]
		rc := flat[sp.off]
		out.Cells[i] = CellResult{
			Cell: cells[i],
			Rep:  experiment.Aggregate(rc.Protocol, rc.TxPowerDBm, sp.seeds, runs),
		}
	}
	return out, nil
}

// ParseSweep decodes and validates a JSON sweep. Unknown fields are errors.
func ParseSweep(data []byte) (Sweep, error) {
	var sw Sweep
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		return Sweep{}, fmt.Errorf("scenario: parsing sweep: %w", err)
	}
	if err := sw.Validate(); err != nil {
		return Sweep{}, err
	}
	return sw, nil
}
