package scenario

import (
	"fourbit/internal/experiment"
)

// The paper's figures, re-expressed as scenario presets. Each *Specs
// function is the declarative form of the corresponding experiment batch
// builder; TestFigureSpecsMatchExperimentBatches pins the two to compile to
// identical RunConfigs, and the Run wrappers execute through the same
// worker pool, so figure output through this path is byte-identical to the
// classic harness. Figure 3 is not a RunConfig batch (it instruments one
// link mid-run) and stays a bespoke harness in internal/experiment.

// figureSpec is the shared 25-minute testbed scenario scaled to minutes.
func figureSpec(protocol, kind string, seed uint64, minutes float64) Spec {
	return Spec{
		Protocol:    protocol,
		Topology:    TopoSpec{Kind: kind},
		Seed:        seed,
		DurationMin: minutes,
	}
}

// Fig2Specs is Figure 2 as scenarios: CTP(10), MultiHopLQI and
// CTP-unlimited on Mirage at 0 dBm.
func Fig2Specs(seed uint64, minutes float64) []Spec {
	var specs []Spec
	for _, p := range []string{"CTP", "MultiHopLQI", "CTP-unlimited"} {
		specs = append(specs, figureSpec(p, "mirage", seed, minutes))
	}
	return specs
}

// Fig6Specs is Figure 6 as scenarios: the five design-space variants.
func Fig6Specs(seed uint64, minutes float64) []Spec {
	var specs []Spec
	for _, p := range []string{"CTP", "CTP+unidir", "CTP+white", "4B", "MultiHopLQI"} {
		specs = append(specs, figureSpec(p, "mirage", seed, minutes))
	}
	return specs
}

// PowerSweepSpecs is the Figure 7/8 batch as scenarios: (4B, MultiHopLQI)
// at each power of experiment.PowerSweepPowers.
func PowerSweepSpecs(seed uint64, minutes float64) []Spec {
	var specs []Spec
	for _, pw := range experiment.PowerSweepPowers {
		for _, p := range []string{"4B", "MultiHopLQI"} {
			s := figureSpec(p, "mirage", seed, minutes)
			s.TxPowerDBm = pw
			specs = append(specs, s)
		}
	}
	return specs
}

// HeadlineSpecs is the headline comparison as scenarios: (4B, MultiHopLQI)
// on Mirage then TutorNet.
func HeadlineSpecs(seed uint64, minutes float64) []Spec {
	var specs []Spec
	for _, kind := range []string{"mirage", "tutornet"} {
		for _, p := range []string{"4B", "MultiHopLQI"} {
			specs = append(specs, figureSpec(p, kind, seed, minutes))
		}
	}
	return specs
}

// EstCompareSpecs is the estimator comparison as scenarios: CTP on the
// default grid topology with each registered estimator kind swapped in
// (experiment.EstCompareBatch, declaratively).
func EstCompareSpecs(seed uint64, minutes float64) []Spec {
	var specs []Spec
	for _, k := range experiment.EstCompareKinds {
		s := Spec{
			Protocol:    "4B",
			Estimator:   string(k),
			Topology:    TopoSpec{Kind: "grid", Rows: 8, Cols: 8},
			Seed:        seed,
			TxPowerDBm:  experiment.EstComparePower(),
			DurationMin: minutes,
		}
		specs = append(specs, s)
	}
	return specs
}

// RunEstCompare executes the estimator comparison through its scenario
// preset.
func RunEstCompare(seed uint64, minutes float64, workers int) *experiment.EstCompareResult {
	rcs := mustRuns(EstCompareSpecs(seed, minutes))
	return &experiment.EstCompareResult{Topo: rcs[0].Topo, Runs: experiment.RunAllWorkers(rcs, workers)}
}

// BuildRuns compiles a spec batch into experiment runs.
func BuildRuns(specs []Spec) ([]experiment.RunConfig, error) {
	rcs := make([]experiment.RunConfig, len(specs))
	for i := range specs {
		rc, err := specs[i].RunConfig()
		if err != nil {
			return nil, err
		}
		rcs[i] = rc
	}
	return rcs, nil
}

// mustRuns backs the figure wrappers: the presets above are pinned valid
// by tests, so an error here is a programming bug, not an input problem.
func mustRuns(specs []Spec) []experiment.RunConfig {
	rcs, err := BuildRuns(specs)
	if err != nil {
		panic(err)
	}
	return rcs
}

// RunFig2 executes Figure 2 through its scenario preset.
func RunFig2(seed uint64, minutes float64, workers int) *experiment.Fig2Result {
	rcs := mustRuns(Fig2Specs(seed, minutes))
	return &experiment.Fig2Result{Topo: rcs[0].Topo, Runs: experiment.RunAllWorkers(rcs, workers)}
}

// RunFig6 executes Figure 6 through its scenario preset.
func RunFig6(seed uint64, minutes float64, workers int) *experiment.Fig6Result {
	rcs := mustRuns(Fig6Specs(seed, minutes))
	return &experiment.Fig6Result{Topo: rcs[0].Topo, Runs: experiment.RunAllWorkers(rcs, workers)}
}

// RunPowerSweep executes the Figure 7/8 batch through its scenario preset.
func RunPowerSweep(seed uint64, minutes float64, workers int) *experiment.PowerSweepResult {
	rcs := mustRuns(PowerSweepSpecs(seed, minutes))
	return experiment.AssemblePowerSweep(rcs[0].Topo, experiment.RunAllWorkers(rcs, workers))
}

// RunHeadline executes the headline comparison through its scenario preset.
func RunHeadline(seed uint64, minutes float64, workers int) *experiment.HeadlineResult {
	rcs := mustRuns(HeadlineSpecs(seed, minutes))
	return experiment.AssembleHeadline(rcs, experiment.RunAllWorkers(rcs, workers))
}
