package scenario

import (
	"strings"
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/experiment"
)

func TestSpecEstimatorSelector(t *testing.T) {
	s := Spec{Protocol: "4B", Estimator: "lqi", Topology: TopoSpec{Kind: "grid", Rows: 3, Cols: 3}}
	rc, err := s.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Estimator != core.KindLQI {
		t.Fatalf("rc.Estimator = %q, want %q", rc.Estimator, core.KindLQI)
	}
	// Empty stays empty — the byte-identical default path.
	s.Estimator = ""
	rc, err = s.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Estimator != "" {
		t.Fatalf("rc.Estimator = %q, want empty default", rc.Estimator)
	}
}

func TestSpecEstimatorValidation(t *testing.T) {
	bad := Spec{Estimator: "etx9000", Topology: TopoSpec{Kind: "mirage"}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "etx9000") {
		t.Errorf("unknown estimator: err = %v", bad.Validate())
	}
	lqiProto := Spec{Protocol: "MultiHopLQI", Estimator: "4bit", Topology: TopoSpec{Kind: "mirage"}}
	if err := lqiProto.Validate(); err == nil || !strings.Contains(err.Error(), "MultiHopLQI") {
		t.Errorf("estimator on MultiHopLQI: err = %v", lqiProto.Validate())
	}
}

// A contradictory estimator-config knob must fail at spec compilation with
// the scenario named, not panic inside a worker mid-sweep.
func TestSpecEstimatorConfigValidated(t *testing.T) {
	s := Spec{Name: "bad-knobs", Protocol: "4B", Topology: TopoSpec{Kind: "mirage"}, TableSize: -1}
	if err := s.Validate(); err == nil {
		t.Error("negative TableSize passed validation")
	}
}

func TestSweepEstimatorAxis(t *testing.T) {
	sw := Sweep{
		Name: "est-axis",
		Base: Spec{Topology: TopoSpec{Kind: "grid", Rows: 3, Cols: 3}, Seed: 1},
		Axes: []Axis{
			{Param: "protocol", Strings: []string{"4B", "MultiHopLQI"}},
			{Param: "estimator", Strings: []string{"4bit", "wmewma"}},
		},
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	// 4B cells carry the estimator; MultiHopLQI cells drop it (the knob
	// has nothing to drive) instead of failing the whole grid.
	for _, c := range cells {
		switch c.Spec.Protocol {
		case "4B":
			if c.Spec.Estimator == "" {
				t.Errorf("cell %d: estimator dropped on a CTP-family cell", c.Index)
			}
		case "MultiHopLQI":
			if c.Spec.Estimator != "" {
				t.Errorf("cell %d: estimator kept on MultiHopLQI", c.Index)
			}
		}
	}
	// The axis label still records the swept value even on dropped cells.
	if cells[3].Labels[1].Value != "wmewma" {
		t.Errorf("label = %+v", cells[3].Labels)
	}
}

func TestSweepEstimatorAxisRejectsNumeric(t *testing.T) {
	a := Axis{Param: "estimator", Values: []float64{1, 2}}
	if err := a.validate(); err == nil {
		t.Error("numeric estimator axis accepted")
	}
}

func TestEstComparePresetSpecsValid(t *testing.T) {
	specs := EstCompareSpecs(1, 25)
	if len(specs) != len(experiment.EstCompareKinds) {
		t.Fatalf("specs = %d, want %d", len(specs), len(experiment.EstCompareKinds))
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			t.Errorf("spec %d invalid: %v", i, err)
		}
	}
}
