package scenario

import (
	"fmt"

	"fourbit/internal/node"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// Event is one scripted dynamics entry of a Spec. Kinds:
//
//	node-down     power Nodes off at AtMin; with UntilMin set, reboot them
//	              then (death + reboot in one event). A down node radiates
//	              nothing and hears nothing; neighbors age it out.
//	node-up       power Nodes back on at AtMin.
//	power-step    set Nodes' transmit power to PowerDBm at AtMin.
//	interference  from AtMin to UntilMin (0 = forever), raise Nodes'
//	              receive noise floors with a bursty Gilbert-Elliott
//	              process: AmpDB excursions (default 30), mean burst
//	              MeanOnMS (default 500 ms), mean gap MeanOffS (default
//	              5 s). Losses from it are invisible to LQI — received
//	              packets still look clean — which is the paper's §2.1
//	              blind spot, now schedulable mid-run.
//	link-burst    from AtMin to UntilMin, attenuate the LinkA↔LinkB pair
//	              by AmpDB (default 50, i.e. silence) with the same burst
//	              process — the Figure 3 degraded-parent mechanism as a
//	              reusable event.
//
// Nodes empty means "every node except the root" (interference, power
// steps); node-down and node-up require explicit targets so a scenario
// cannot accidentally kill its whole network.
type Event struct {
	Kind     string
	AtMin    float64
	UntilMin float64 `json:",omitempty"`
	Nodes    []int   `json:",omitempty"`
	PowerDBm float64 `json:",omitempty"`
	AmpDB    float64 `json:",omitempty"`
	MeanOnMS float64 `json:",omitempty"`
	MeanOffS float64 `json:",omitempty"`
	LinkA    int     `json:",omitempty"`
	LinkB    int     `json:",omitempty"`
}

// EventKinds lists the supported dynamics kinds.
func EventKinds() []string {
	return []string{"node-down", "node-up", "power-step", "interference", "link-burst"}
}

func (e *Event) validate() error {
	switch e.Kind {
	case "node-down", "node-up":
		if len(e.Nodes) == 0 {
			return fmt.Errorf("%s needs explicit target Nodes", e.Kind)
		}
	case "power-step", "interference":
	case "link-burst":
		if e.LinkA == e.LinkB {
			return fmt.Errorf("link-burst needs two distinct endpoints, got %d-%d", e.LinkA, e.LinkB)
		}
	default:
		return fmt.Errorf("unknown event kind %q (kinds: %v)", e.Kind, EventKinds())
	}
	if e.AtMin < 0 {
		return fmt.Errorf("%s at %.2f min: negative time", e.Kind, e.AtMin)
	}
	if e.UntilMin != 0 && e.UntilMin <= e.AtMin {
		return fmt.Errorf("%s window [%.2f, %.2f) min is empty", e.Kind, e.AtMin, e.UntilMin)
	}
	if e.AmpDB < 0 || e.MeanOnMS < 0 || e.MeanOffS < 0 {
		return fmt.Errorf("%s: negative burst parameter", e.Kind)
	}
	return nil
}

// checkNodes verifies target indices against the built topology.
func (e *Event) checkNodes(tp *topo.Topology) error {
	check := func(id int) error {
		if id < 0 || id >= tp.N() {
			return fmt.Errorf("%s: node %d outside topology %s (N=%d)", e.Kind, id, tp.Name, tp.N())
		}
		return nil
	}
	for _, id := range e.Nodes {
		if err := check(id); err != nil {
			return err
		}
	}
	if e.Kind == "link-burst" {
		if err := check(e.LinkA); err != nil {
			return err
		}
		if err := check(e.LinkB); err != nil {
			return err
		}
	}
	return nil
}

// targets resolves the event's node set (empty = all non-root).
func (e *Event) targets(env *node.Env) []int {
	if len(e.Nodes) > 0 {
		return e.Nodes
	}
	out := make([]int, 0, env.Topo.N()-1)
	for i := 0; i < env.Topo.N(); i++ {
		if i != env.Topo.Root {
			out = append(out, i)
		}
	}
	return out
}

func orf(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

// sumModifier adds up several scripted loss processes on one link —
// multiple link-burst events on the same pair must all fire, but the
// channel holds a single modifier per directed link.
type sumModifier []phy.LinkModifier

// ExtraLossDB implements phy.LinkModifier.
func (s sumModifier) ExtraLossDB(t sim.Time) float64 {
	var sum float64
	for _, m := range s {
		sum += m.ExtraLossDB(t)
	}
	return sum
}

// compileDynamics turns the event list into the experiment harness's
// EnvMutate hook: modifiers install immediately, radio events schedule on
// the run's clock. All randomness comes from per-event named seed streams,
// so dynamics replicate exactly and never perturb the protocol streams.
// Link-burst events targeting the same pair stack (like noise modifiers)
// instead of overwriting each other.
func compileDynamics(events []Event) func(*node.Env) {
	evs := append([]Event(nil), events...)
	return func(env *node.Env) {
		links := map[[2]int]sumModifier{}
		dlinks := map[[2]int]sumModifier{}
		for i := range evs {
			installEvent(env, i, &evs[i], links, dlinks)
		}
		for pair, mods := range links {
			var m phy.LinkModifier = mods
			if len(mods) == 1 {
				m = mods[0]
			}
			env.Chan.SetModifierBoth(pair[0], pair[1], m)
		}
		for pair, mods := range dlinks {
			var m phy.LinkModifier = mods
			if len(mods) == 1 {
				m = mods[0]
			}
			env.Chan.SetModifier(pair[0], pair[1], m)
		}
	}
}

// links collects undirected serial-run burst modifiers (one shared process
// per pair, installed both ways); dlinks collects the sharded run's
// directed ones — see the link-burst case for why sharding splits them.
func installEvent(env *node.Env, idx int, e *Event, links, dlinks map[[2]int]sumModifier) {
	at := sim.FromSeconds(e.AtMin * 60)
	until := sim.FromSeconds(e.UntilMin * 60)
	switch e.Kind {
	case "node-down":
		// The root is never powered down: a dead sink measures only zeros,
		// and every preset's point is how the *network* reacts to churn.
		targets := make([]int, 0, len(e.targets(env)))
		for _, id := range e.targets(env) {
			if id != env.Topo.Root {
				targets = append(targets, id)
			}
		}
		// ScheduleControl is Clock.At on the serial path; on the sharded
		// path it runs the mutation at an epoch barrier with every shard
		// idle, since radio state belongs to the owning shard mid-epoch.
		env.ScheduleControl(at, func() {
			for _, id := range targets {
				env.Medium.Radio(id).SetDown(true)
			}
		})
		if e.UntilMin > 0 {
			env.ScheduleControl(until, func() {
				for _, id := range targets {
					env.Medium.Radio(id).SetDown(false)
				}
			})
		}
	case "node-up":
		targets := e.targets(env)
		env.ScheduleControl(at, func() {
			for _, id := range targets {
				env.Medium.Radio(id).SetDown(false)
			}
		})
	case "power-step":
		targets := e.targets(env)
		power := e.PowerDBm
		env.ScheduleControl(at, func() {
			for _, id := range targets {
				env.Medium.Radio(id).SetTxPower(power)
			}
		})
	case "interference":
		amp := orf(e.AmpDB, 30)
		meanOn := sim.FromSeconds(orf(e.MeanOnMS, 500) / 1000)
		meanOff := sim.FromSeconds(orf(e.MeanOffS, 5))
		for _, id := range e.targets(env) {
			ge := phy.NewGilbertElliott(amp, meanOff, meanOn,
				env.Seeds.Stream(fmt.Sprintf("scenario/event/%d/noise/%d", idx, id))).
				Window(at, until)
			env.Chan.AddNoiseModifier(id, ge)
		}
	case "link-burst":
		amp := orf(e.AmpDB, 50)
		meanOn := sim.FromSeconds(orf(e.MeanOnMS, 500) / 1000)
		meanOff := sim.FromSeconds(orf(e.MeanOffS, 5))
		a, b := e.LinkA, e.LinkB
		if a > b {
			a, b = b, a
		}
		if env.Sharded() {
			// A shared two-way process would be sampled by both endpoints'
			// shards concurrently — a data race, and an interleaving-
			// dependent trajectory. Sharded runs attenuate each direction
			// with its own process (distinct seed streams), which is a
			// different but equally valid burst realization; within the
			// sharded world it is shard-count invariant because each
			// directed process is only ever sampled by the receiver's
			// shard at the same virtual instants for any shard count.
			mk := func(dir string) phy.LinkModifier {
				return phy.NewGilbertElliott(amp, meanOff, meanOn,
					env.Seeds.Stream(fmt.Sprintf("scenario/event/%d/link/%s", idx, dir))).
					Window(at, until)
			}
			dlinks[[2]int{a, b}] = append(dlinks[[2]int{a, b}], mk("fwd"))
			dlinks[[2]int{b, a}] = append(dlinks[[2]int{b, a}], mk("rev"))
			return
		}
		ge := phy.NewGilbertElliott(amp, meanOff, meanOn,
			env.Seeds.Stream(fmt.Sprintf("scenario/event/%d/link", idx))).
			Window(at, until)
		links[[2]int{a, b}] = append(links[[2]int{a, b}], ge)
	}
}
