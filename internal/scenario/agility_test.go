package scenario

import (
	"bytes"
	"flag"
	"os"
	"sync"
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/experiment"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden_timeline.txt from the current model")

// The agility figure pinned by the golden and the ordering test: seed 1,
// 12 simulated minutes (death at 4.8), the default grid. One execution
// serves both tests.
var (
	agilityOnce sync.Once
	agilityRes  *AgilityResult
)

func agilityFixture() *AgilityResult {
	agilityOnce.Do(func() { agilityRes = RunAgility(1, 12, 0) })
	return agilityRes
}

// TestAgilityRecoveryOrdering pins the reproduction target of the timeline
// figure: after the scripted parent death, the four-bit hybrid's windowed
// cost returns to its pre-death baseline strictly faster than every other
// estimator kind — the ack bit reacts at data cadence, beacon windows and
// silence aging at beacon cadence or slower.
func TestAgilityRecoveryOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	r := agilityFixture()
	fb, ok := r.Recovery(core.KindFourBit)
	if !ok || !fb.Recovered {
		t.Fatalf("4bit did not recover: %+v (ok=%v)", fb, ok)
	}
	for _, k := range []core.EstimatorKind{core.KindWMEWMA, core.KindPDR, core.KindLQI} {
		other, ok := r.Recovery(k)
		if !ok {
			t.Errorf("%s: no recovery measurement", k)
			continue
		}
		if other.Recovered && other.Windows <= fb.Windows {
			t.Errorf("recovery ordering: 4bit %d windows should beat %s %d windows",
				fb.Windows, k, other.Windows)
		}
	}
	// The disruption must be real: every estimator's run saw the death
	// (the dead relays stop delivering, so the end-to-end cost of the
	// sluggish estimators exceeds the hybrid's).
	fbRun := r.ByKind(core.KindFourBit)
	for _, k := range []core.EstimatorKind{core.KindWMEWMA, core.KindPDR, core.KindLQI} {
		if run := r.ByKind(k); run != nil && run.Cost <= fbRun.Cost {
			t.Errorf("end-to-end cost: 4bit %.2f should beat %s %.2f under churn", fbRun.Cost, k, run.Cost)
		}
	}
}

// TestGoldenTimelineFigure pins the timeline figure's stdout byte-for-byte
// (the `fourbitsim timeline -seed 1 -minutes 12` output). Regenerate with:
//
//	go test ./internal/scenario -run TestGoldenTimelineFigure -update-goldens
func TestGoldenTimelineFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	var b bytes.Buffer
	agilityFixture().Fprint(&b)
	got := b.String()

	const path = "testdata/golden_timeline.txt"
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-goldens to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("timeline figure diverged from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// The agility specs must be valid scenarios whose compiled runs carry the
// timeline and the death event.
func TestAgilitySpecsValid(t *testing.T) {
	specs := AgilitySpecs(1, 0)
	if len(specs) != len(experiment.EstCompareKinds) {
		t.Fatalf("specs = %d, want %d", len(specs), len(experiment.EstCompareKinds))
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
		rc, err := specs[i].RunConfig()
		if err != nil {
			t.Fatal(err)
		}
		if rc.TimelineWindow != AgilityWindowS*1e9 {
			t.Errorf("spec %d timeline window = %v", i, rc.TimelineWindow)
		}
		if rc.EnvMutate == nil {
			t.Errorf("spec %d compiled without dynamics", i)
		}
	}
}

func TestTimelinePresets(t *testing.T) {
	for _, name := range []string{"node-death-recovery", "interference-onset"} {
		p, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if p.Spec.TimelineS <= 0 {
			t.Errorf("preset %q records no timeline", name)
		}
		if len(p.Spec.Dynamics) == 0 {
			t.Errorf("preset %q scripts no dynamics", name)
		}
		if err := p.Spec.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	// node-death-recovery tracks the agility figure's conditions.
	p, _ := Preset("node-death-recovery")
	want := AgilitySpecs(1, 0)[0]
	want.Name = "node-death-recovery"
	if p.Spec.Estimator != "4bit" || p.Spec.TxPowerDBm != want.TxPowerDBm ||
		len(p.Spec.Dynamics) != 1 || p.Spec.Dynamics[0].AtMin != want.Dynamics[0].AtMin {
		t.Errorf("node-death-recovery drifted from the agility figure: %+v vs %+v", p.Spec, want)
	}
}
