package scenario

import "fourbit/internal/experiment"

// NamedSpec is a ready-to-run scenario preset for the CLI.
type NamedSpec struct {
	Name string
	Desc string
	Spec Spec
}

// Presets returns the built-in scenario library: the conditions the paper
// could not test on its two testbeds, each exercising one axis the
// estimator literature says can flip conclusions (workload, density,
// marginal power, external interference, churn). `fourbitsim scenario
// -preset <name>` runs one; docs/SCENARIOS.md walks through each.
func Presets() []NamedSpec {
	return []NamedSpec{
		{
			Name: "baseline",
			Desc: "4B on Mirage at 0 dBm — the standard 25-minute run",
			Spec: Spec{Name: "baseline", Protocol: "4B", Topology: TopoSpec{Kind: "mirage"}, Seed: 1},
		},
		{
			Name: "clustered-table-pressure",
			Desc: "dense two-tier clusters with a 4-entry link table: admission policy under maximum pressure",
			Spec: Spec{
				Name:      "clustered-table-pressure",
				Protocol:  "4B",
				Topology:  TopoSpec{Kind: "clustered", N: 60, Clusters: 5, WidthM: 45, HeightM: 30, SpreadM: 2.5, ClutterDB: 4},
				Seed:      1,
				TableSize: 4,
			},
		},
		estKindPreset("grid-beacon-etx", "wmewma",
			"CTP on the comparison grid with the beacon-only WMEWMA estimator (fourbitsim compare runs all kinds)"),
		estKindPreset("grid-pure-lqi", "lqi",
			"CTP on the comparison grid with the pure-LQI moving-average estimator (the Figure 3 blindspot, table-driven)"),
		{
			Name: "corridor-marginal",
			Desc: "a 150 m corridor at -15 dBm: long chains of grey-region links",
			Spec: Spec{
				Name:       "corridor-marginal",
				Protocol:   "4B",
				Topology:   TopoSpec{Kind: "corridor", N: 40, LengthM: 150, WidthM: 4},
				Seed:       1,
				TxPowerDBm: -15,
			},
		},
		{
			Name: "interference-onset",
			Desc: "uniform field; minutes 10-18 an interferer blankets half the nodes (LQI-invisible losses); 30 s timeline + recovery-time",
			Spec: Spec{
				Name:      "interference-onset",
				Protocol:  "4B",
				Topology:  TopoSpec{Kind: "uniform", N: 60, WidthM: 50, HeightM: 30, ClutterDB: 4},
				Seed:      1,
				TimelineS: AgilityWindowS,
				Dynamics: []Event{{
					Kind: "interference", AtMin: 10, UntilMin: 18,
					Nodes: evens(60), AmpDB: 25, MeanOnMS: 800, MeanOffS: 3,
				}},
			},
		},
		deathRecoveryPreset(),
		{
			Name: "node-churn",
			Desc: "clustered network; a third of the nodes die at minute 8 and reboot at minute 16",
			Spec: Spec{
				Name:     "node-churn",
				Protocol: "4B",
				Topology: TopoSpec{Kind: "clustered", N: 60, Clusters: 6, WidthM: 50, HeightM: 30, SpreadM: 3},
				Seed:     1,
				Dynamics: []Event{{
					Kind: "node-down", AtMin: 8, UntilMin: 16, Nodes: every(3, 60),
				}},
			},
		},
		cityPreset("city-corridor-2k",
			"a 1.5 km urban corridor of 2000 nodes — the sparse audible-set channel at city scale",
			TopoSpec{Kind: "corridor", N: 2000, LengthM: 1500, WidthM: 40}),
		cityPreset("city-multifloor-10k",
			"a 10000-node eight-floor block (600x300 m per floor) — the largest built-in deployment",
			TopoSpec{Kind: "multifloor", N: 10000, Floors: 8, WidthM: 600, HeightM: 300}),
		multiSinkCityPreset(),
		{
			Name: "power-drop",
			Desc: "multifloor deployment; every non-root node steps from 0 to -12 dBm at minute 10 (links turn marginal mid-run)",
			Spec: Spec{
				Name:     "power-drop",
				Protocol: "4B",
				Topology: TopoSpec{Kind: "multifloor", N: 60, Floors: 3, WidthM: 40, HeightM: 24},
				Seed:     1,
				Dynamics: []Event{{
					Kind: "power-step", AtMin: 10, PowerDBm: -12,
				}},
			},
		},
	}
}

// deathRecoveryPreset derives the node-death-recovery preset from the
// agility figure's own specs, so preset conditions (grid, power, dead
// nodes, timeline window) track agility.go instead of restating them. The
// preset is the figure's four-bit run; `fourbitsim timeline` runs all four
// estimator kinds side by side.
func deathRecoveryPreset() NamedSpec {
	s := AgilitySpecs(1, 0)[0]
	if s.Estimator != string(experiment.EstCompareKinds[0]) {
		panic("scenario: agility specs no longer lead with the four-bit kind")
	}
	s.Name = "node-death-recovery"
	return NamedSpec{
		Name: "node-death-recovery",
		Desc: "comparison grid; the root-adjacent relays die at minute 10; 30 s timeline + recovery-time",
		Spec: s,
	}
}

// cityPreset wraps a city-scale topology in the shared large-deployment
// conditions: a steeper urban path-loss exponent (4.0 — dense construction,
// so radio horizons stay a few hundred meters and the audible set is
// genuinely sparse), a short run (the point is scale, not duration), and a
// compressed boot window so 25% of a run is not spent booting. Above
// phy.DefaultSparseAboveN nodes the channel automatically selects the
// sparse audible-set representation; docs/SCENARIOS.md §"City scale"
// derives the densities.
func cityPreset(name, desc string, tp TopoSpec) NamedSpec {
	return NamedSpec{
		Name: name,
		Desc: desc,
		Spec: Spec{
			Name:        name,
			Protocol:    "4B",
			Topology:    tp,
			Seed:        1,
			DurationMin: 2,
			WarmupMin:   0.5,
			SampleS:     30,
			Traffic:     &TrafficSpec{BootWindowS: 10},
			Channel:     &ChannelSpec{PathLossExponent: fptr(4.0)},
		},
	}
}

// multiSinkCityPreset derives the four-sink variant of the 10k block from
// the single-sink preset, so the two differ only in Sinks: the root plus
// three anchor-placed extra sinks (far corner first — see extraSinks)
// drain the same deployment, quartering the per-sink funnel load.
func multiSinkCityPreset() NamedSpec {
	p := cityPreset("city-multifloor-10k-4sink",
		"the 10000-node block drained by four sinks — multi-sink collection at city scale",
		TopoSpec{Kind: "multifloor", N: 10000, Floors: 8, WidthM: 600, HeightM: 300})
	p.Spec.Sinks = 4
	return p
}

// fptr makes a pointer-valued ChannelSpec field literal.
func fptr(v float64) *float64 { return &v }

// estKindPreset derives a single-estimator preset from the comparison
// figure's own specs, so preset conditions (grid, power, seed) track
// experiment/estcompare.go instead of restating them.
func estKindPreset(name, kind, desc string) NamedSpec {
	for _, s := range EstCompareSpecs(1, 0) {
		if s.Estimator == kind {
			s.Name = name
			return NamedSpec{Name: name, Desc: desc, Spec: s}
		}
	}
	panic("scenario: estimator kind not in the comparison figure: " + kind)
}

// Preset looks a preset up by name.
func Preset(name string) (NamedSpec, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return NamedSpec{}, false
}

// evens returns the even node indices below n — a deterministic "half the
// network" target set.
func evens(n int) []int {
	var out []int
	for i := 2; i < n; i += 2 {
		out = append(out, i)
	}
	return out
}

// every returns every k-th node index below n — "a third of the network"
// for k=3. The dynamics engine spares the root on node-down regardless.
func every(k, n int) []int {
	var out []int
	for i := k; i < n; i += k {
		out = append(out, i)
	}
	return out
}

// DefaultSweep is the baseline grid behind `fourbitsim sweep` with no spec
// file: three topologies × two transmit powers × two protocols = 12 cells,
// the smallest grid that exercises density, power and protocol at once.
func DefaultSweep(seed uint64, minutes float64, replicates int) Sweep {
	return Sweep{
		Name: "baseline-grid",
		Base: Spec{
			Topology: TopoSpec{
				N: 60, WidthM: 50, HeightM: 30,
				Clusters: 6, SpreadM: 3,
			},
			Seed:        seed,
			DurationMin: minutes,
			Replicates:  replicates,
		},
		Axes: []Axis{
			{Param: "topology", Strings: []string{"mirage", "uniform", "clustered"}},
			{Param: "txpower", Values: []float64{0, -10}},
			{Param: "protocol", Strings: []string{"4B", "MultiHopLQI"}},
		},
	}
}
