package scenario

import (
	"fmt"
	"io"
	"math"

	"fourbit/internal/core"
	"fourbit/internal/experiment"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// The agility figure: the paper's re-convergence claim measured as a
// timeline. One CTP router on the estimator-comparison grid, every
// registered estimator kind swapped in, and a scripted parent death mid-run
// — the relay next to the root dies and every route through it must be
// re-learned. The windowed cost timeline shows each estimator's reaction,
// and the recovery-time metric (probe.RecoveryWindows) reduces it to one
// number: windows until cost returns to within AgilityEps of the pre-death
// baseline. The reproduction target is the ordering — the four-bit hybrid,
// fed by the ack bit at data cadence, re-converges faster than the
// beacon-window estimators (wmewma, pdr) and the silence-blind pure-LQI
// estimator, which all react at beacon cadence or slower.

const (
	// AgilityWindowS is the timeline window width of the figure (seconds).
	AgilityWindowS = 30
	// AgilityEps is the recovery band: recovered means windowed cost is
	// back to within (1+AgilityEps)·baseline.
	AgilityEps = 0.25
	// agilityDeathFrac and agilityBaselineFrac place the scripted death
	// and the start of the baseline window as fractions of the run length,
	// so shortened runs (tests, golden) keep the same shape.
	agilityDeathFrac    = 0.4
	agilityBaselineFrac = 0.2
)

// AgilityDeadNodes returns the nodes the figure kills: the root-adjacent
// relays of the 8x8 comparison grid (root 0 in a corner; 1, 8 and 9 are
// its east, north and diagonal neighbors). Every route into the root runs
// through one of them at the comparison power, so their death forces a
// network-wide repair — the surviving second-ring nodes must become the
// root's new (longer, greyer) last hops.
func AgilityDeadNodes() []int { return []int{1, 8, 9} }

// AgilitySpecs is the figure as scenarios: one spec per estimator kind,
// with the scripted death and the timeline declared like any user scenario
// would. minutes <= 0 means the standard 25.
func AgilitySpecs(seed uint64, minutes float64) []Spec {
	if minutes <= 0 {
		minutes = 25
	}
	var specs []Spec
	for _, k := range experiment.EstCompareKinds {
		specs = append(specs, Spec{
			Name:        "agility-" + string(k),
			Protocol:    "4B",
			Estimator:   string(k),
			Topology:    TopoSpec{Kind: "grid", Rows: 8, Cols: 8},
			Seed:        seed,
			TxPowerDBm:  experiment.EstComparePower(),
			DurationMin: minutes,
			TimelineS:   AgilityWindowS,
			Dynamics: []Event{{
				Kind:  "node-down",
				AtMin: minutes * agilityDeathFrac,
				Nodes: AgilityDeadNodes(),
			}},
		})
	}
	return specs
}

// AgilityResult holds the per-estimator timeline runs.
type AgilityResult struct {
	Seed     uint64
	Minutes  float64
	DeathMin float64
	Runs     []*experiment.Result // ordered as experiment.EstCompareKinds
}

// RunAgility executes the agility figure on a worker pool.
func RunAgility(seed uint64, minutes float64, workers int) *AgilityResult {
	if minutes <= 0 {
		minutes = 25
	}
	rcs := mustRuns(AgilitySpecs(seed, minutes))
	return &AgilityResult{
		Seed:     seed,
		Minutes:  minutes,
		DeathMin: minutes * agilityDeathFrac,
		Runs:     experiment.RunAllWorkers(rcs, workers),
	}
}

// ByKind returns the run for an estimator kind, or nil.
func (r *AgilityResult) ByKind(k core.EstimatorKind) *experiment.Result {
	for _, res := range r.Runs {
		if res.Estimator == k {
			return res
		}
	}
	return nil
}

// Recovery computes the recovery-time metric for one estimator kind's run:
// windows after the scripted death until the windowed cost returns to
// within AgilityEps of the pre-death baseline (measured over the settled
// window between agilityBaselineFrac of the run and the death).
func (r *AgilityResult) Recovery(k core.EstimatorKind) (probe.Recovery, bool) {
	res := r.ByKind(k)
	if res == nil || res.Timeline == nil {
		return probe.Recovery{}, false
	}
	death := sim.FromSeconds(r.DeathMin * 60)
	baselineFrom := sim.FromSeconds(r.Minutes * agilityBaselineFrac * 60)
	return res.Timeline.RecoveryWindows(baselineFrom, death, AgilityEps)
}

// FprintRecovery reports the recovery-time metric for a replicated
// scenario run: for each seed, windows after the first scripted dynamics
// event until the windowed cost returned to within AgilityEps of its
// pre-event baseline. It prints nothing when the spec recorded no timeline
// or scripted no dynamics — recovery is only defined against an event.
// The baseline is measured from the end of warmup (or half the event time,
// if the event precedes warmup's end) up to the event.
func FprintRecovery(w io.Writer, s *Spec, rep *experiment.Replicated) {
	if s.TimelineS <= 0 || len(s.Dynamics) == 0 {
		return
	}
	eventMin := s.Dynamics[0].AtMin
	for _, e := range s.Dynamics[1:] {
		if e.AtMin < eventMin {
			eventMin = e.AtMin
		}
	}
	event := sim.FromSeconds(eventMin * 60)
	warmup := s.WarmupMin
	if warmup == 0 {
		warmup = 5 // experiment.DefaultRunConfig's warmup
	}
	baselineFrom := sim.FromSeconds(warmup * 60)
	if baselineFrom >= event {
		baselineFrom = event / 2
	}
	fmt.Fprintf(w, "recovery after the minute-%.1f event (cost within +%.0f%% of the [%s, %s) baseline):\n",
		eventMin, AgilityEps*100, baselineFrom, event)
	for i, run := range rep.Runs {
		if run.Timeline == nil {
			continue
		}
		rec, ok := run.Timeline.RecoveryWindows(baselineFrom, event, AgilityEps)
		switch {
		case !ok:
			fmt.Fprintf(w, "  seed %-20d no baseline (nothing delivered before the event)\n", rep.Seeds[i])
		case rec.Recovered:
			fmt.Fprintf(w, "  seed %-20d %d windows (%s), baseline cost %.2f\n",
				rep.Seeds[i], rec.Windows, sim.FromSeconds(float64(rec.Windows)*s.TimelineS), rec.Baseline)
		default:
			fmt.Fprintf(w, "  seed %-20d not recovered in %d windows, baseline cost %.2f\n",
				rep.Seeds[i], rec.Windows, rec.Baseline)
		}
	}
}

// costGlyph maps a window's cost (relative to baseline) onto one strip
// character: '.' inside the recovery band, then rising steps, '!' for
// windows that delivered nothing (cost undefined).
func costGlyph(cost, baseline float64) byte {
	if math.IsNaN(cost) {
		return '!'
	}
	switch ratio := cost / baseline; {
	case ratio <= 1+AgilityEps:
		return '.'
	case ratio <= 1.5:
		return ':'
	case ratio <= 2:
		return '='
	case ratio <= 3:
		return '+'
	case ratio <= 5:
		return '*'
	default:
		return '#'
	}
}

// strip renders a timeline as one character per window, with a '|' marking
// the window in which the death fires.
func strip(tl *probe.Timeline, baseline float64, death sim.Time) string {
	var b []byte
	for i := range tl.Windows {
		w := &tl.Windows[i]
		if w.Start <= death && death < w.End {
			b = append(b, '|')
		}
		b = append(b, costGlyph(w.Cost(), baseline))
	}
	return string(b)
}

// Fprint renders the agility figure: the per-estimator cost strips around
// the scripted death, the recovery table, and the headline orderings.
func (r *AgilityResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Agility: parent death at minute %.1f (nodes %v down), %s windows, recovery band +%.0f%%\n",
		r.DeathMin, AgilityDeadNodes(), (AgilityWindowS * sim.Second).String(), AgilityEps*100)
	fmt.Fprintf(w, "cost per window relative to pre-death baseline ('|' = death; '.' within band, ':' <=1.5x, '=' <=2x, '+' <=3x, '*' <=5x, '#' >5x, '!' nothing delivered)\n\n")
	for _, k := range experiment.EstCompareKinds {
		res := r.ByKind(k)
		if res == nil || res.Timeline == nil {
			continue
		}
		rec, ok := r.Recovery(k)
		if !ok {
			// No pre-death baseline (nothing delivered before the event):
			// a strip normalized to it would be fabricated, so say so
			// instead of rendering one.
			fmt.Fprintf(w, "%-8s (no pre-death baseline; end-to-end cost %.2f, delivery %.1f%%)\n\n",
				string(k), res.Cost, res.DeliveryRatio*100)
			continue
		}
		label := ""
		if rec.Recovered {
			label = fmt.Sprintf("recovered in %2d windows (%s)", rec.Windows,
				(sim.Time(rec.Windows) * AgilityWindowS * sim.Second).String())
		} else {
			label = fmt.Sprintf("not recovered in %d windows", rec.Windows)
		}
		death := sim.FromSeconds(r.DeathMin * 60)
		fmt.Fprintf(w, "%-8s %s\n", string(k), strip(res.Timeline, rec.Baseline, death))
		fmt.Fprintf(w, "%-8s baseline %.2f  end-to-end cost %.2f  delivery %.1f%%  %s\n\n",
			"", rec.Baseline, res.Cost, res.DeliveryRatio*100, label)
	}
	fb, fbOK := r.Recovery(core.KindFourBit)
	if !fbOK || !fb.Recovered {
		return
	}
	for _, k := range []core.EstimatorKind{core.KindWMEWMA, core.KindPDR, core.KindLQI} {
		other, ok := r.Recovery(k)
		if !ok {
			continue
		}
		switch {
		case !other.Recovered:
			fmt.Fprintf(w, "4bit recovery vs %s: %d windows vs not recovered\n", string(k), fb.Windows)
		default:
			fmt.Fprintf(w, "4bit recovery vs %s: %d vs %d windows\n", string(k), fb.Windows, other.Windows)
		}
	}
}
