package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"fourbit/internal/experiment"
	"fourbit/internal/probe"
)

// Structured result export. CSV carries one row per cell (axis columns
// first, then aggregate columns) for spreadsheets and gnuplot; JSONL
// carries one object per cell including the per-seed runs, for anything
// programmatic. Both formats are stable row-ordered (cell index), so diffs
// between sweeps are meaningful.

// csvAggregates are the per-cell aggregate columns, in order. The first
// four restate the resolved configuration (axis columns carry the swept
// values; these carry what they expanded to, e.g. topology "clustered" →
// "clustered-60-6"), under names that cannot collide with axis params
// (which include "nodes", "txpower", "topology", "protocol").
var csvAggregates = []string{
	"proto", "topo", "topo_nodes", "txpower_dbm", "replicates",
	"cost_mean", "cost_std", "delivery_mean", "delivery_std",
	"depth_mean", "depth_std", "hops_mean", "datatx_mean", "beacontx_mean",
	// Estimator-internal counters (CTP family; zero for MultiHopLQI):
	// beacons processed, table insertions/evictions/rejections, lottery
	// wins — the table dynamics behind the headline metrics.
	"est_beacons_mean", "est_inserted_mean", "est_replaced_mean",
	"est_rejected_mean", "est_lottery_mean",
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// WriteCSV emits the result table.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	var header []string
	header = append(header, "cell")
	if len(r.Cells) > 0 {
		for _, l := range r.Cells[0].Cell.Labels {
			header = append(header, l.Param)
		}
	}
	header = append(header, csvAggregates...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		rep := c.Rep
		row := []string{strconv.Itoa(c.Cell.Index)}
		for _, l := range c.Cell.Labels {
			row = append(row, l.Value)
		}
		topoName, nodes := cellTopo(c)
		row = append(row,
			rep.Protocol.String(),
			topoName,
			strconv.Itoa(nodes),
			strconv.FormatFloat(rep.TxPowerDBm, 'g', -1, 64),
			strconv.Itoa(len(rep.Runs)),
			fmtF(rep.Cost.Mean), fmtF(rep.Cost.Stddev),
			fmtF(rep.Delivery.Mean), fmtF(rep.Delivery.Stddev),
			fmtF(rep.MeanDepth.Mean), fmtF(rep.MeanDepth.Stddev),
			fmtF(rep.MeanHops.Mean),
			fmtF(rep.DataTx.Mean), fmtF(rep.BeaconTx.Mean),
			fmtF(rep.EstBeacons.Mean), fmtF(rep.EstInserted.Mean),
			fmtF(rep.EstReplaced.Mean), fmtF(rep.EstRejected.Mean),
			fmtF(rep.EstLottery.Mean),
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// cellTopo rebuilds the cell's topology name and size for reporting (the
// build is deterministic and cheap next to the runs themselves).
func cellTopo(c *CellResult) (name string, nodes int) {
	tp, err := c.Cell.Spec.Topology.Build(c.Cell.Spec.Seed)
	if err != nil {
		return "?", 0
	}
	return tp.Name, tp.N()
}

// jsonCell is the JSONL row schema.
type jsonCell struct {
	Cell       int               `json:"cell"`
	Params     map[string]string `json:"params"`
	Protocol   string            `json:"protocol"`
	Topology   string            `json:"topology"`
	Nodes      int               `json:"nodes"`
	TxPowerDBm float64           `json:"txpower_dbm"`
	Seeds      []uint64          `json:"seeds"`
	Cost       jsonStat          `json:"cost"`
	Delivery   jsonStat          `json:"delivery"`
	Depth      jsonStat          `json:"depth"`
	Hops       jsonStat          `json:"hops"`
	DataTx     jsonStat          `json:"datatx"`
	BeaconTx   jsonStat          `json:"beacontx"`
	Est        jsonEstStats      `json:"est"`
	Runs       []jsonRun         `json:"runs"`
}

// jsonEstStats carries the estimator-internal counter aggregates (means
// across the cell's replicates; all zero for MultiHopLQI cells).
type jsonEstStats struct {
	Beacons  float64 `json:"beacons"`
	Inserted float64 `json:"inserted"`
	Replaced float64 `json:"replaced"`
	Rejected float64 `json:"rejected"`
	Lottery  float64 `json:"lottery"`
}

type jsonStat struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

type jsonRun struct {
	Seed        uint64  `json:"seed"`
	Cost        float64 `json:"cost"`
	Delivery    float64 `json:"delivery"`
	Depth       float64 `json:"depth"`
	DataTx      uint64  `json:"datatx"`
	BeaconTx    uint64  `json:"beacontx"`
	EstBeacons  uint64  `json:"est_beacons"`
	EstInserted uint64  `json:"est_inserted"`
	EstReplaced uint64  `json:"est_replaced"`
	EstRejected uint64  `json:"est_rejected"`
	EstLottery  uint64  `json:"est_lottery"`
}

// WriteJSONL emits one JSON object per cell, one per line.
func (r *SweepResult) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Cells {
		c := &r.Cells[i]
		rep := c.Rep
		params := make(map[string]string, len(c.Cell.Labels))
		for _, l := range c.Cell.Labels {
			params[l.Param] = l.Value
		}
		topoName, nodes := cellTopo(c)
		row := jsonCell{
			Cell:       c.Cell.Index,
			Params:     params,
			Protocol:   rep.Protocol.String(),
			Topology:   topoName,
			Nodes:      nodes,
			TxPowerDBm: rep.TxPowerDBm,
			Seeds:      rep.Seeds,
			Cost:       jsonStat{rep.Cost.Mean, rep.Cost.Stddev},
			Delivery:   jsonStat{rep.Delivery.Mean, rep.Delivery.Stddev},
			Depth:      jsonStat{rep.MeanDepth.Mean, rep.MeanDepth.Stddev},
			Hops:       jsonStat{rep.MeanHops.Mean, rep.MeanHops.Stddev},
			DataTx:     jsonStat{rep.DataTx.Mean, rep.DataTx.Stddev},
			BeaconTx:   jsonStat{rep.BeaconTx.Mean, rep.BeaconTx.Stddev},
			Est: jsonEstStats{
				Beacons:  rep.EstBeacons.Mean,
				Inserted: rep.EstInserted.Mean,
				Replaced: rep.EstReplaced.Mean,
				Rejected: rep.EstRejected.Mean,
				Lottery:  rep.EstLottery.Mean,
			},
		}
		for j, run := range rep.Runs {
			row.Runs = append(row.Runs, jsonRun{
				Seed:        rep.Seeds[j],
				Cost:        run.Cost,
				Delivery:    run.DeliveryRatio,
				Depth:       run.MeanDepth,
				DataTx:      run.DataTx,
				BeaconTx:    run.BeaconTx,
				EstBeacons:  run.EstBeaconsIn,
				EstInserted: run.EstInserted,
				EstReplaced: run.EstReplaced,
				EstRejected: run.EstRejected,
				EstLottery:  run.EstLotteryWins,
			})
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Timeline export. One CSV row (or one JSONL windows element) per recorded
// window, labeled by run, so replicated scenarios and estimator comparisons
// export into a single long-format file gnuplot/pandas can facet directly.
// ---------------------------------------------------------------------------

// TimelineRow is one run's timeline, labeled for export.
type TimelineRow struct {
	Label    string // what distinguishes the run (scenario name, estimator kind)
	Seed     uint64
	Timeline *probe.Timeline
}

// TimelineRows collects the recorded timelines of a replicated scenario
// result (empty when the spec requested none).
func TimelineRows(name string, rep *experiment.Replicated) []TimelineRow {
	var rows []TimelineRow
	for i, run := range rep.Runs {
		if run.Timeline == nil {
			continue
		}
		label := name
		if label == "" {
			label = rep.Protocol.String()
		}
		rows = append(rows, TimelineRow{Label: label, Seed: rep.Seeds[i], Timeline: run.Timeline})
	}
	return rows
}

// TimelineRows collects the agility figure's per-estimator timelines.
func (r *AgilityResult) TimelineRows() []TimelineRow {
	var rows []TimelineRow
	for _, run := range r.Runs {
		if run.Timeline == nil {
			continue
		}
		rows = append(rows, TimelineRow{Label: string(run.Estimator), Seed: r.Seed, Timeline: run.Timeline})
	}
	return rows
}

// timelineCSVHeader is the window-row schema. Ratios that are undefined in
// a window (nothing delivered / nothing offered) export as empty cells,
// not NaN, so spreadsheets parse the column as numeric.
var timelineCSVHeader = []string{
	"label", "seed", "window", "start_s", "end_s",
	"generated", "delivered", "delivery_ratio",
	"datatx", "data_acked", "beacontx", "cost",
	"parent_changes", "route_losses",
	"tbl_inserted", "tbl_replaced", "tbl_evicted", "tbl_rejected", "tbl_occupancy",
}

func fmtRatio(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmtF(v)
}

// WriteTimelineCSV emits the labeled timelines as one row per window.
func WriteTimelineCSV(w io.Writer, rows []TimelineRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(timelineCSVHeader); err != nil {
		return err
	}
	for _, r := range rows {
		for i := range r.Timeline.Windows {
			win := &r.Timeline.Windows[i]
			rec := []string{
				r.Label,
				strconv.FormatUint(r.Seed, 10),
				strconv.Itoa(i),
				strconv.FormatFloat(win.Start.Seconds(), 'f', 1, 64),
				strconv.FormatFloat(win.End.Seconds(), 'f', 1, 64),
				strconv.FormatUint(win.Generated, 10),
				strconv.FormatUint(win.Delivered, 10),
				fmtRatio(win.DeliveryRatio()),
				strconv.FormatUint(win.DataTx, 10),
				strconv.FormatUint(win.DataAcked, 10),
				strconv.FormatUint(win.BeaconTx, 10),
				fmtRatio(win.Cost()),
				strconv.FormatUint(win.ParentChanges, 10),
				strconv.FormatUint(win.RouteLosses, 10),
				strconv.FormatUint(win.TableInserted, 10),
				strconv.FormatUint(win.TableReplaced, 10),
				strconv.FormatUint(win.TableEvicted, 10),
				strconv.FormatUint(win.TableRejected, 10),
				strconv.FormatUint(win.TableOccupancy, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTimeline is the JSONL row schema: one object per run, windows inline.
type jsonTimeline struct {
	Label   string       `json:"label"`
	Seed    uint64       `json:"seed"`
	WindowS float64      `json:"window_s"`
	Windows []jsonWindow `json:"windows"`
}

type jsonWindow struct {
	StartS        float64  `json:"start_s"`
	EndS          float64  `json:"end_s"`
	Generated     uint64   `json:"generated"`
	Delivered     uint64   `json:"delivered"`
	Delivery      *float64 `json:"delivery,omitempty"` // absent when undefined
	DataTx        uint64   `json:"datatx"`
	DataAcked     uint64   `json:"data_acked"`
	BeaconTx      uint64   `json:"beacontx"`
	Cost          *float64 `json:"cost,omitempty"` // absent when undefined
	ParentChanges uint64   `json:"parent_changes"`
	RouteLosses   uint64   `json:"route_losses"`
	TblInserted   uint64   `json:"tbl_inserted"`
	TblReplaced   uint64   `json:"tbl_replaced"`
	TblEvicted    uint64   `json:"tbl_evicted"`
	TblRejected   uint64   `json:"tbl_rejected"`
	TblOccupancy  uint64   `json:"tbl_occupancy"`
}

func ratioPtr(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// WriteTimelineJSONL emits one JSON object per labeled timeline.
func WriteTimelineJSONL(w io.Writer, rows []TimelineRow) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		row := jsonTimeline{Label: r.Label, Seed: r.Seed, WindowS: r.Timeline.Window.Seconds()}
		for i := range r.Timeline.Windows {
			win := &r.Timeline.Windows[i]
			row.Windows = append(row.Windows, jsonWindow{
				StartS:        win.Start.Seconds(),
				EndS:          win.End.Seconds(),
				Generated:     win.Generated,
				Delivered:     win.Delivered,
				Delivery:      ratioPtr(win.DeliveryRatio()),
				DataTx:        win.DataTx,
				DataAcked:     win.DataAcked,
				BeaconTx:      win.BeaconTx,
				Cost:          ratioPtr(win.Cost()),
				ParentChanges: win.ParentChanges,
				RouteLosses:   win.RouteLosses,
				TblInserted:   win.TableInserted,
				TblReplaced:   win.TableReplaced,
				TblEvicted:    win.TableEvicted,
				TblRejected:   win.TableRejected,
				TblOccupancy:  win.TableOccupancy,
			})
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// Fprint renders the sweep as an aligned terminal table.
func (r *SweepResult) Fprint(w io.Writer) {
	if r.Name != "" {
		fmt.Fprintf(w, "sweep %s: %d cells\n", r.Name, len(r.Cells))
	} else {
		fmt.Fprintf(w, "sweep: %d cells\n", len(r.Cells))
	}
	width := 0
	labels := make([]string, len(r.Cells))
	for i := range r.Cells {
		s := ""
		for j, l := range r.Cells[i].Cell.Labels {
			if j > 0 {
				s += " "
			}
			s += l.Param + "=" + l.Value
		}
		labels[i] = s
		if len(s) > width {
			width = len(s)
		}
	}
	fmt.Fprintf(w, "%4s  %-*s %18s %16s %8s\n", "cell", width, "parameters", "cost", "delivery", "depth")
	for i := range r.Cells {
		rep := r.Cells[i].Rep
		fmt.Fprintf(w, "%4d  %-*s %9.2f ±%6.2f %8.1f%% ±%4.1f%% %8.2f\n",
			r.Cells[i].Cell.Index, width, labels[i],
			rep.Cost.Mean, rep.Cost.Stddev,
			rep.Delivery.Mean*100, rep.Delivery.Stddev*100,
			rep.MeanDepth.Mean)
	}
}
