package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Structured result export. CSV carries one row per cell (axis columns
// first, then aggregate columns) for spreadsheets and gnuplot; JSONL
// carries one object per cell including the per-seed runs, for anything
// programmatic. Both formats are stable row-ordered (cell index), so diffs
// between sweeps are meaningful.

// csvAggregates are the per-cell aggregate columns, in order. The first
// four restate the resolved configuration (axis columns carry the swept
// values; these carry what they expanded to, e.g. topology "clustered" →
// "clustered-60-6"), under names that cannot collide with axis params
// (which include "nodes", "txpower", "topology", "protocol").
var csvAggregates = []string{
	"proto", "topo", "topo_nodes", "txpower_dbm", "replicates",
	"cost_mean", "cost_std", "delivery_mean", "delivery_std",
	"depth_mean", "depth_std", "hops_mean", "datatx_mean", "beacontx_mean",
	// Estimator-internal counters (CTP family; zero for MultiHopLQI):
	// beacons processed, table insertions/evictions/rejections, lottery
	// wins — the table dynamics behind the headline metrics.
	"est_beacons_mean", "est_inserted_mean", "est_replaced_mean",
	"est_rejected_mean", "est_lottery_mean",
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// WriteCSV emits the result table.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	var header []string
	header = append(header, "cell")
	if len(r.Cells) > 0 {
		for _, l := range r.Cells[0].Cell.Labels {
			header = append(header, l.Param)
		}
	}
	header = append(header, csvAggregates...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		rep := c.Rep
		row := []string{strconv.Itoa(c.Cell.Index)}
		for _, l := range c.Cell.Labels {
			row = append(row, l.Value)
		}
		topoName, nodes := cellTopo(c)
		row = append(row,
			rep.Protocol.String(),
			topoName,
			strconv.Itoa(nodes),
			strconv.FormatFloat(rep.TxPowerDBm, 'g', -1, 64),
			strconv.Itoa(len(rep.Runs)),
			fmtF(rep.Cost.Mean), fmtF(rep.Cost.Stddev),
			fmtF(rep.Delivery.Mean), fmtF(rep.Delivery.Stddev),
			fmtF(rep.MeanDepth.Mean), fmtF(rep.MeanDepth.Stddev),
			fmtF(rep.MeanHops.Mean),
			fmtF(rep.DataTx.Mean), fmtF(rep.BeaconTx.Mean),
			fmtF(rep.EstBeacons.Mean), fmtF(rep.EstInserted.Mean),
			fmtF(rep.EstReplaced.Mean), fmtF(rep.EstRejected.Mean),
			fmtF(rep.EstLottery.Mean),
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// cellTopo rebuilds the cell's topology name and size for reporting (the
// build is deterministic and cheap next to the runs themselves).
func cellTopo(c *CellResult) (name string, nodes int) {
	tp, err := c.Cell.Spec.Topology.Build(c.Cell.Spec.Seed)
	if err != nil {
		return "?", 0
	}
	return tp.Name, tp.N()
}

// jsonCell is the JSONL row schema.
type jsonCell struct {
	Cell       int               `json:"cell"`
	Params     map[string]string `json:"params"`
	Protocol   string            `json:"protocol"`
	Topology   string            `json:"topology"`
	Nodes      int               `json:"nodes"`
	TxPowerDBm float64           `json:"txpower_dbm"`
	Seeds      []uint64          `json:"seeds"`
	Cost       jsonStat          `json:"cost"`
	Delivery   jsonStat          `json:"delivery"`
	Depth      jsonStat          `json:"depth"`
	Hops       jsonStat          `json:"hops"`
	DataTx     jsonStat          `json:"datatx"`
	BeaconTx   jsonStat          `json:"beacontx"`
	Est        jsonEstStats      `json:"est"`
	Runs       []jsonRun         `json:"runs"`
}

// jsonEstStats carries the estimator-internal counter aggregates (means
// across the cell's replicates; all zero for MultiHopLQI cells).
type jsonEstStats struct {
	Beacons  float64 `json:"beacons"`
	Inserted float64 `json:"inserted"`
	Replaced float64 `json:"replaced"`
	Rejected float64 `json:"rejected"`
	Lottery  float64 `json:"lottery"`
}

type jsonStat struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

type jsonRun struct {
	Seed        uint64  `json:"seed"`
	Cost        float64 `json:"cost"`
	Delivery    float64 `json:"delivery"`
	Depth       float64 `json:"depth"`
	DataTx      uint64  `json:"datatx"`
	BeaconTx    uint64  `json:"beacontx"`
	EstBeacons  uint64  `json:"est_beacons"`
	EstInserted uint64  `json:"est_inserted"`
	EstReplaced uint64  `json:"est_replaced"`
	EstRejected uint64  `json:"est_rejected"`
	EstLottery  uint64  `json:"est_lottery"`
}

// WriteJSONL emits one JSON object per cell, one per line.
func (r *SweepResult) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Cells {
		c := &r.Cells[i]
		rep := c.Rep
		params := make(map[string]string, len(c.Cell.Labels))
		for _, l := range c.Cell.Labels {
			params[l.Param] = l.Value
		}
		topoName, nodes := cellTopo(c)
		row := jsonCell{
			Cell:       c.Cell.Index,
			Params:     params,
			Protocol:   rep.Protocol.String(),
			Topology:   topoName,
			Nodes:      nodes,
			TxPowerDBm: rep.TxPowerDBm,
			Seeds:      rep.Seeds,
			Cost:       jsonStat{rep.Cost.Mean, rep.Cost.Stddev},
			Delivery:   jsonStat{rep.Delivery.Mean, rep.Delivery.Stddev},
			Depth:      jsonStat{rep.MeanDepth.Mean, rep.MeanDepth.Stddev},
			Hops:       jsonStat{rep.MeanHops.Mean, rep.MeanHops.Stddev},
			DataTx:     jsonStat{rep.DataTx.Mean, rep.DataTx.Stddev},
			BeaconTx:   jsonStat{rep.BeaconTx.Mean, rep.BeaconTx.Stddev},
			Est: jsonEstStats{
				Beacons:  rep.EstBeacons.Mean,
				Inserted: rep.EstInserted.Mean,
				Replaced: rep.EstReplaced.Mean,
				Rejected: rep.EstRejected.Mean,
				Lottery:  rep.EstLottery.Mean,
			},
		}
		for j, run := range rep.Runs {
			row.Runs = append(row.Runs, jsonRun{
				Seed:        rep.Seeds[j],
				Cost:        run.Cost,
				Delivery:    run.DeliveryRatio,
				Depth:       run.MeanDepth,
				DataTx:      run.DataTx,
				BeaconTx:    run.BeaconTx,
				EstBeacons:  run.EstBeaconsIn,
				EstInserted: run.EstInserted,
				EstReplaced: run.EstReplaced,
				EstRejected: run.EstRejected,
				EstLottery:  run.EstLotteryWins,
			})
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// Fprint renders the sweep as an aligned terminal table.
func (r *SweepResult) Fprint(w io.Writer) {
	if r.Name != "" {
		fmt.Fprintf(w, "sweep %s: %d cells\n", r.Name, len(r.Cells))
	} else {
		fmt.Fprintf(w, "sweep: %d cells\n", len(r.Cells))
	}
	width := 0
	labels := make([]string, len(r.Cells))
	for i := range r.Cells {
		s := ""
		for j, l := range r.Cells[i].Cell.Labels {
			if j > 0 {
				s += " "
			}
			s += l.Param + "=" + l.Value
		}
		labels[i] = s
		if len(s) > width {
			width = len(s)
		}
	}
	fmt.Fprintf(w, "%4s  %-*s %18s %16s %8s\n", "cell", width, "parameters", "cost", "delivery", "depth")
	for i := range r.Cells {
		rep := r.Cells[i].Rep
		fmt.Fprintf(w, "%4d  %-*s %9.2f ±%6.2f %8.1f%% ±%4.1f%% %8.2f\n",
			r.Cells[i].Cell.Index, width, labels[i],
			rep.Cost.Mean, rep.Cost.Stddev,
			rep.Delivery.Mean*100, rep.Delivery.Stddev*100,
			rep.MeanDepth.Mean)
	}
}
