package scenario

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

func exportFixture() []TimelineRow {
	tl := &probe.Timeline{Window: 30 * sim.Second, Windows: []probe.Window{
		{Start: 0, End: 30 * sim.Second, Generated: 10, Delivered: 8, DataTx: 24, DataAcked: 20,
			BeaconTx: 5, ParentChanges: 2, TableInserted: 3, TableOccupancy: 3},
		{Start: 30 * sim.Second, End: 60 * sim.Second}, // empty: ratios undefined
	}}
	return []TimelineRow{{Label: "agility-4bit", Seed: 7, Timeline: tl}}
}

func TestWriteTimelineCSV(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTimelineCSV(&b, exportFixture()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	first := rows[1]
	if first[col["label"]] != "agility-4bit" || first[col["seed"]] != "7" || first[col["window"]] != "0" {
		t.Errorf("row identity: %v", first)
	}
	if first[col["cost"]] != "3.0000" || first[col["delivery_ratio"]] != "0.8000" {
		t.Errorf("derived columns: cost=%q delivery=%q", first[col["cost"]], first[col["delivery_ratio"]])
	}
	// Undefined ratios export as empty cells, never "NaN".
	second := rows[2]
	if second[col["cost"]] != "" || second[col["delivery_ratio"]] != "" {
		t.Errorf("undefined ratios: cost=%q delivery=%q, want empty", second[col["cost"]], second[col["delivery_ratio"]])
	}
	if strings.Contains(b.String(), "NaN") {
		t.Error("NaN leaked into CSV")
	}
}

func TestWriteTimelineJSONL(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTimelineJSONL(&b, exportFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %d, want 1", len(lines))
	}
	var row struct {
		Label   string           `json:"label"`
		Seed    uint64           `json:"seed"`
		WindowS float64          `json:"window_s"`
		Windows []map[string]any `json:"windows"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatal(err)
	}
	if row.Label != "agility-4bit" || row.Seed != 7 || row.WindowS != 30 || len(row.Windows) != 2 {
		t.Fatalf("row = %+v", row)
	}
	if _, ok := row.Windows[0]["cost"]; !ok {
		t.Error("first window lost its cost")
	}
	// Undefined ratios are omitted, not emitted as null/NaN.
	if _, ok := row.Windows[1]["cost"]; ok {
		t.Error("undefined cost emitted")
	}
}

// Scenario-level plumbing: a spec with TimelineS produces timelines that
// TimelineRows can export, one per replicate seed.
func TestScenarioTimelineRows(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := Spec{
		Name:        "tl",
		Topology:    TopoSpec{Kind: "grid", Rows: 3, Cols: 3},
		Seed:        1,
		DurationMin: 2,
		Replicates:  2,
		TimelineS:   30,
	}
	rep, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	rows := TimelineRows(s.Name, rep)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want one per replicate", len(rows))
	}
	for _, r := range rows {
		if r.Label != "tl" || r.Seed == 0 || len(r.Timeline.Windows) != 4 {
			t.Errorf("row = %+v (windows %d)", r, len(r.Timeline.Windows))
		}
	}
}
