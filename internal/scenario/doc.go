// Package scenario is the declarative experiment layer: it turns a
// serializable description of a collection scenario — topology generator,
// channel parameters, traffic pattern, protocol knobs, scripted dynamics —
// into the experiment harness's RunConfig batches, and expands parameter
// grids (Sweep) into replicated, aggregated result tables with CSV/JSONL
// export.
//
// The paper's claim is that four-bit estimation holds up across
// *conditions*; the five figure harnesses cover five of them. A Spec makes
// the rest reachable without writing a new harness: every figure is itself
// just a preset batch of Specs (see Fig2Specs and friends), and new
// workloads — dense clusters, marginal power, mid-run interference, node
// churn — are data, not code.
//
// Layering: scenario sits above internal/experiment and compiles down to
// it. Execution always goes through experiment.RunAllWorkers, so a sweep's
// results are byte-identical for every worker count, and replication uses
// experiment.ReplicaSeeds, so cell confidence intervals reproduce exactly.
//
// The JSON forms of Spec and Sweep are the CLI surface (`fourbitsim
// scenario -spec`, `fourbitsim sweep -spec`); docs/SCENARIOS.md is the
// cookbook with a worked example for every knob.
package scenario
