package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"fourbit/internal/experiment"
	"fourbit/internal/sim"
)

// The figure presets must compile to exactly the batches the classic
// harness builds — this is what makes figure output through the scenario
// path byte-identical to pre-scenario output.
func TestFigureSpecsMatchExperimentBatches(t *testing.T) {
	const seed, minutes = 1, 25.0
	dur := sim.FromSeconds(minutes * 60)
	cases := []struct {
		name  string
		specs []Spec
		want  []experiment.RunConfig
	}{
		{"fig2", Fig2Specs(seed, minutes), experiment.Fig2Batch(seed, dur)},
		{"fig6", Fig6Specs(seed, minutes), experiment.Fig6Batch(seed, dur)},
		{"powersweep", PowerSweepSpecs(seed, minutes), experiment.PowerSweepBatch(seed, dur)},
		{"headline", HeadlineSpecs(seed, minutes), experiment.HeadlineBatch(seed, dur)},
		{"estcompare", EstCompareSpecs(seed, minutes), experiment.EstCompareBatch(seed, dur)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := BuildRuns(c.specs)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(c.want) {
				t.Fatalf("batch size %d, want %d", len(got), len(c.want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], c.want[i]) {
					t.Errorf("run %d differs:\nscenario:   %+v\nexperiment: %+v", i, got[i], c.want[i])
				}
			}
		})
	}
}

// A full end-to-end check on one figure: the rendered output of the
// scenario path is byte-identical to the classic harness.
func TestFig2OutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	const seed, minutes = 1, 2.0
	var classic, preset bytes.Buffer
	experiment.RunFig2Workers(seed, sim.FromSeconds(minutes*60), 2).Fprint(&classic)
	RunFig2(seed, minutes, 2).Fprint(&preset)
	if classic.String() != preset.String() {
		t.Fatalf("fig2 output differs:\n-- classic --\n%s\n-- scenario --\n%s",
			classic.String(), preset.String())
	}
}
