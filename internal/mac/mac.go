// Package mac implements the link layer: an unslotted CSMA/CA transmit path
// with clear-channel assessment and random backoff, plus synchronous
// layer-2 acknowledgments — the mechanism behind the paper's ack bit.
//
// A MAC performs exactly one transmission attempt per Send; retransmission
// policy belongs to the network layer (CTP retries up to 30 times,
// MultiHopLQI up to 5), which also lets the network layer feed every
// attempt's ack bit to the link estimator, as §3.3 requires.
package mac

import (
	"errors"
	"fmt"

	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// Params configure CSMA/CA and acknowledgment timing. Defaults approximate
// the TinyOS CC2420 stack.
type Params struct {
	InitialBackoffMin    sim.Time
	InitialBackoffMax    sim.Time
	CongestionBackoffMin sim.Time
	CongestionBackoffMax sim.Time
	MaxCCAAttempts       int      // give up (no transmission) after this many busy CCAs
	AckTurnaround        sim.Time // rx/tx turnaround before the ack goes out
	AckTimeout           sim.Time // ack wait measured from the end of the data frame
}

// DefaultParams returns CC2420-like CSMA and ack timing.
func DefaultParams() Params {
	return Params{
		InitialBackoffMin:    320 * sim.Microsecond,
		InitialBackoffMax:    4960 * sim.Microsecond,
		CongestionBackoffMin: 320 * sim.Microsecond,
		CongestionBackoffMax: 2560 * sim.Microsecond,
		MaxCCAAttempts:       8,
		AckTurnaround:        192 * sim.Microsecond,
		AckTimeout:           1200 * sim.Microsecond,
	}
}

// TxResult reports the outcome of one Send.
type TxResult struct {
	// Sent reports whether the frame actually went on air. False means
	// CSMA gave up after MaxCCAAttempts busy assessments.
	Sent bool
	// Acked is the ack bit: a layer-2 acknowledgment was received for this
	// transmission. Always false for broadcasts and for frames sent
	// without AckRequest. Per the paper: if clear, the packet may or may
	// not have arrived.
	Acked bool
	// CCAAttempts counts clear-channel assessments used (>= 1 if Sent).
	CCAAttempts int
}

// Stats counts per-node link-layer activity. TxData is the basis of the
// paper's cost metric (transmissions per delivered packet).
type Stats struct {
	TxData      uint64 // unicast data transmissions put on air
	TxBeacons   uint64 // broadcast transmissions put on air
	TxAcks      uint64
	RxData      uint64
	RxBeacons   uint64
	RxAcks      uint64
	AckTimeouts uint64
	CCAFailures uint64 // Sends abandoned with the channel busy
	DecodeErr   uint64
}

// ErrBusy is returned by Send when a transmission is already in flight.
var ErrBusy = errors.New("mac: transmission in progress")

// Receiver is the upper-layer frame sink. Frames addressed to this node or
// broadcast are delivered with their physical-layer metadata (including the
// white bit). The frame and its payload — which aliases the sender's
// reusable encode buffer — are valid only for the duration of the callback
// and must be treated as immutable; layers that need the payload bytes
// later must copy them before returning (the sender's next transmission
// rewrites the backing array).
type Receiver func(f *packet.Frame, info phy.RxInfo)

// MAC is one node's link layer.
//
// At most one Send is in flight, and its backoff → transmission → ack-wait
// chain needs exactly one pending timeout at a time — so the MAC owns a
// single reusable operation record and a single persistent timer that it
// re-arms per stage (sim.Timer.Reschedule), instead of allocating a
// record, closures and timers per Send. With ~one Send per data packet and
// per beacon, this removes the largest steady-state allocation source in
// the simulator.
type MAC struct {
	clock  *sim.Simulator
	radio  *phy.Radio
	addr   packet.Addr
	p      Params
	rng    *sim.Rand
	recv   Receiver
	probes *probe.Bus

	dsn     uint8
	cur     *txOp // nil, or &m.op
	op      txOp  // the reusable operation record
	timer   *sim.Timer
	txBuf   []byte       // reusable data/beacon encode buffer; see Send
	rxFrame packet.Frame // scratch for the receive path; see onRadioReceive

	// Pooled synchronous acks. An ack's encoded bytes are referenced by
	// the medium until its transmission leaves the air, so each record
	// carries the instant it becomes provably unreferenced (busyUntil) and
	// getAckOp only reuses records strictly past it — no release event,
	// no allocation per ack. In practice a MAC has at most a couple in
	// flight, so the pool stays tiny.
	acks      []*ackOp
	ackFireFn func(any) // m.fireAck adapter, built once for ScheduleArg

	Stats Stats
}

// ackOp is one pooled in-flight acknowledgment.
type ackOp struct {
	enc       []byte
	busyUntil sim.Time
}

// txState names the pending stage of the in-flight operation — what the
// MAC's timer means when it fires.
type txState uint8

const (
	txBackoff txState = iota // waiting to assess the channel
	txOnAir                  // frame on air; timer fires at its end
	txAckWait                // frame sent; timer is the ack timeout
)

type txOp struct {
	frame    *packet.Frame
	encoded  []byte
	done     func(TxResult)
	attempts int
	awaitAck bool
	state    txState
}

// New builds a MAC bound to a radio. rng drives backoff draws. The MAC
// emits its transmission outcomes (the tx/ack probe events) into the probe
// bus installed on clock, if any.
func New(clock *sim.Simulator, radio *phy.Radio, addr packet.Addr, p Params, rng *sim.Rand) *MAC {
	m := &MAC{clock: clock, radio: radio, addr: addr, p: p, rng: rng, probes: probe.FromSim(clock)}
	m.timer = clock.NewTimer(m.onTimer)
	m.ackFireFn = func(a any) { m.fireAck(a.(*ackOp)) }
	radio.OnReceive(m.onRadioReceive)
	return m
}

// onTimer dispatches the in-flight operation's pending stage.
func (m *MAC) onTimer() {
	op := m.cur
	if op == nil {
		return
	}
	switch op.state {
	case txBackoff:
		m.tryCCA(op)
	case txOnAir:
		m.onTxDone(op)
	case txAckWait:
		m.Stats.AckTimeouts++
		m.finish(op, TxResult{Sent: true, Acked: false, CCAAttempts: op.attempts})
	}
}

// Addr returns this node's link-layer address.
func (m *MAC) Addr() packet.Addr { return m.addr }

// OnReceive installs the upper-layer frame sink.
func (m *MAC) OnReceive(r Receiver) { m.recv = r }

// Busy reports whether a Send is in flight.
func (m *MAC) Busy() bool { return m.cur != nil }

// Send transmits f (one CSMA attempt; no retransmission). The frame's Seq
// is assigned by the MAC. done, if non-nil, is invoked exactly once with
// the outcome; it may immediately issue the next Send.
func (m *MAC) Send(f *packet.Frame, done func(TxResult)) error {
	if m.cur != nil {
		return ErrBusy
	}
	if f.Src != m.addr {
		panic(fmt.Sprintf("mac %v: sending frame with Src %v", m.addr, f.Src))
	}
	if f.Dst == m.addr {
		panic(fmt.Sprintf("mac %v: sending frame to self", m.addr))
	}
	m.dsn++
	f.Seq = m.dsn
	// One reusable encode buffer: the medium references these bytes only
	// until the transmission leaves the air, and the next Send cannot
	// start before then (Busy serializes operations), so reuse is safe.
	var err error
	m.txBuf, err = f.AppendTo(m.txBuf[:0])
	if err != nil {
		return err
	}
	m.op = txOp{
		frame:    f,
		encoded:  m.txBuf,
		done:     done,
		awaitAck: f.AckRequest && f.Dst != packet.Broadcast,
		state:    txBackoff,
	}
	m.cur = &m.op
	m.timer.RescheduleAfter(m.rng.UniformTime(m.p.InitialBackoffMin, m.p.InitialBackoffMax))
	return nil
}

func (m *MAC) tryCCA(op *txOp) {
	op.attempts++
	if !m.radio.ChannelClear() {
		if op.attempts >= m.p.MaxCCAAttempts {
			m.Stats.CCAFailures++
			m.finish(op, TxResult{Sent: false, CCAAttempts: op.attempts})
			return
		}
		m.timer.RescheduleAfter(m.rng.UniformTime(m.p.CongestionBackoffMin, m.p.CongestionBackoffMax))
		return
	}
	air := m.radio.Transmit(op.encoded)
	if op.frame.Dst == packet.Broadcast {
		m.Stats.TxBeacons++
	} else {
		m.Stats.TxData++
	}
	op.state = txOnAir
	m.timer.RescheduleAfter(air)
}

func (m *MAC) onTxDone(op *txOp) {
	if !op.awaitAck {
		m.finish(op, TxResult{Sent: true, CCAAttempts: op.attempts})
		return
	}
	op.state = txAckWait
	m.timer.RescheduleAfter(m.p.AckTimeout)
}

func (m *MAC) finish(op *txOp, res TxResult) {
	if m.cur != op {
		return
	}
	m.cur = nil
	m.timer.Cancel() // no-op unless an ack arrived ahead of its timeout
	m.probes.Tx(m.addr, op.frame.Dst, res.Sent, res.Acked, res.CCAAttempts)
	done := op.done
	op.frame, op.encoded, op.done = nil, nil, nil // done may start the next Send
	if done != nil {
		done(res)
	}
}

func (m *MAC) onRadioReceive(data []byte, info phy.RxInfo) {
	// In a dense network most receptions are overheard traffic addressed to
	// someone else; peek the destination and drop those before paying for
	// CRC validation and a decode. (The medium delivers frames intact, so
	// skipping validation here cannot mask corruption.)
	if dst, ok := packet.FrameDst(data); ok && dst != m.addr && dst != packet.Broadcast {
		return
	}
	// Decode into the MAC-owned scratch frame: receivers get a *Frame that
	// is valid only for the duration of the upcall (see Receiver).
	f := &m.rxFrame
	if err := packet.DecodeFrameInto(f, data); err != nil {
		m.Stats.DecodeErr++
		return
	}
	switch {
	case f.Type == packet.TypeAck:
		if f.Dst != m.addr {
			return
		}
		m.Stats.RxAcks++
		op := m.cur
		if op != nil && op.awaitAck && op.state == txAckWait && m.timer.Active() &&
			f.Seq == op.frame.Seq && f.Src == op.frame.Dst {
			m.finish(op, TxResult{Sent: true, Acked: true, CCAAttempts: op.attempts})
		}
	case f.Dst == m.addr || f.Dst == packet.Broadcast:
		if f.Dst == m.addr {
			m.Stats.RxData++
			if f.AckRequest {
				m.sendAck(f)
			}
		} else {
			m.Stats.RxBeacons++
		}
		m.probes.Rx(m.addr, f.Src, f.Dst, info.LQI)
		if m.recv != nil {
			m.recv(f, info)
		}
	}
}

// sendAck emits the synchronous L2 acknowledgment after the rx/tx
// turnaround. Hardware acks preempt whatever the transmit path is doing
// short of an actual transmission in progress.
func (m *MAC) sendAck(of *packet.Frame) {
	ack := packet.Frame{Type: packet.TypeAck, Seq: of.Seq, Src: m.addr, Dst: of.Src}
	op := m.getAckOp(ack.EncodedLen())
	if err := ack.EncodeTo(op.enc); err != nil {
		panic("mac: ack encode failed: " + err.Error())
	}
	m.clock.ScheduleArg(m.clock.Now()+m.p.AckTurnaround, m.ackFireFn, op)
}

// getAckOp returns an ack record whose previous transmission is provably
// off the air (strictly past busyUntil — at the boundary instant the
// medium's finish sweep may not have run yet), growing the pool when every
// record is still in flight.
func (m *MAC) getAckOp(encLen int) *ackOp {
	now := m.clock.Now()
	var op *ackOp
	for _, a := range m.acks {
		if a.busyUntil < now {
			op = a
			break
		}
	}
	if op == nil {
		op = &ackOp{}
		m.acks = append(m.acks, op)
	}
	if cap(op.enc) < encLen {
		op.enc = make([]byte, encLen)
	}
	op.enc = op.enc[:encLen]
	// In flight from this moment; fireAck tightens the bound once the
	// actual airtime is known.
	op.busyUntil = sim.Never
	return op
}

func (m *MAC) fireAck(op *ackOp) {
	if m.radio.Transmitting() {
		op.busyUntil = m.clock.Now() - 1 // tx collision with our own frame; ack is lost
		return
	}
	air := m.radio.Transmit(op.enc)
	m.Stats.TxAcks++
	op.busyUntil = m.clock.Now() + air
}
