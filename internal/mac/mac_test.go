package mac

import (
	"testing"

	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
)

// rig is a small line network of MACs over a quiet channel.
type rig struct {
	clock *sim.Simulator
	med   *phy.Medium
	macs  []*MAC
}

func newRig(t *testing.T, n int, spacing float64, seed uint64) *rig {
	t.Helper()
	clock := sim.New(seed)
	p := phy.DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB = 0
	p.PacketJitterSigmaDB = 0
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			d := float64(i - j)
			if d < 0 {
				d = -d
			}
			dist[i][j] = d * spacing
		}
	}
	seeds := sim.NewSeedSpace(seed)
	ch := phy.NewChannel(dist, nil, p, seeds)
	med := phy.NewMedium(clock, ch, phy.DefaultRadioParams(), phy.DefaultLQIParams(), seeds)
	r := &rig{clock: clock, med: med}
	for i := 0; i < n; i++ {
		r.macs = append(r.macs, New(clock, med.Radio(i), packet.Addr(i), DefaultParams(), seeds.Stream("mac")))
	}
	return r
}

func TestUnicastDeliveredAndAcked(t *testing.T) {
	r := newRig(t, 2, 5, 1)
	var delivered *packet.Frame
	var deliveredInfo phy.RxInfo
	r.macs[1].OnReceive(func(f *packet.Frame, info phy.RxInfo) {
		delivered, deliveredInfo = f, info
	})
	var res *TxResult
	f := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1, Payload: []byte("x")}
	r.clock.At(0, func() {
		if err := r.macs[0].Send(f, func(tr TxResult) { res = &tr }); err != nil {
			t.Fatal(err)
		}
	})
	r.clock.Run()
	if delivered == nil {
		t.Fatal("frame not delivered")
	}
	if delivered.Src != 0 || string(delivered.Payload) != "x" {
		t.Fatalf("bad delivery: %+v", delivered)
	}
	if !deliveredInfo.White {
		t.Error("white bit clear on a 5 m link")
	}
	if res == nil {
		t.Fatal("completion callback not invoked")
	}
	if !res.Sent || !res.Acked {
		t.Fatalf("result = %+v, want Sent+Acked", *res)
	}
	if r.macs[1].Stats.TxAcks != 1 {
		t.Fatalf("receiver sent %d acks, want 1", r.macs[1].Stats.TxAcks)
	}
	if r.macs[0].Stats.TxData != 1 {
		t.Fatalf("TxData = %d, want 1", r.macs[0].Stats.TxData)
	}
}

func TestUnicastToDeadNodeNotAcked(t *testing.T) {
	r := newRig(t, 2, 200, 2) // out of range
	var res *TxResult
	f := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1, Payload: []byte("x")}
	r.clock.At(0, func() { r.macs[0].Send(f, func(tr TxResult) { res = &tr }) })
	r.clock.Run()
	if res == nil {
		t.Fatal("no completion")
	}
	if !res.Sent || res.Acked {
		t.Fatalf("result = %+v, want Sent, not Acked", *res)
	}
	if r.macs[0].Stats.AckTimeouts != 1 {
		t.Fatalf("AckTimeouts = %d, want 1", r.macs[0].Stats.AckTimeouts)
	}
}

func TestBroadcastNoAckAwaited(t *testing.T) {
	r := newRig(t, 3, 5, 3)
	got := 0
	for _, m := range r.macs[1:] {
		m.OnReceive(func(*packet.Frame, phy.RxInfo) { got++ })
	}
	var res *TxResult
	f := &packet.Frame{Type: packet.TypeBeacon, Src: 0, Dst: packet.Broadcast, Payload: []byte("b")}
	r.clock.At(0, func() { r.macs[0].Send(f, func(tr TxResult) { res = &tr }) })
	r.clock.Run()
	if got != 2 {
		t.Fatalf("broadcast reached %d nodes, want 2", got)
	}
	if res == nil || !res.Sent || res.Acked {
		t.Fatalf("result = %+v", res)
	}
	if r.macs[1].Stats.TxAcks+r.macs[2].Stats.TxAcks != 0 {
		t.Fatal("broadcast must not be acked")
	}
	if r.macs[0].Stats.TxBeacons != 1 {
		t.Fatalf("TxBeacons = %d, want 1", r.macs[0].Stats.TxBeacons)
	}
}

func TestSendWhileBusyReturnsErrBusy(t *testing.T) {
	r := newRig(t, 2, 5, 4)
	f1 := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1}
	f2 := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1}
	r.clock.At(0, func() {
		if err := r.macs[0].Send(f1, nil); err != nil {
			t.Fatal(err)
		}
		if err := r.macs[0].Send(f2, nil); err != ErrBusy {
			t.Fatalf("second Send: %v, want ErrBusy", err)
		}
	})
	r.clock.Run()
}

func TestCompletionAllowsImmediateNextSend(t *testing.T) {
	r := newRig(t, 2, 5, 5)
	sent := 0
	var send func()
	send = func() {
		f := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1}
		err := r.macs[0].Send(f, func(TxResult) {
			sent++
			if sent < 5 {
				send()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	r.clock.At(0, send)
	r.clock.Run()
	if sent != 5 {
		t.Fatalf("chained sends completed %d, want 5", sent)
	}
}

func TestSequenceNumbersIncrement(t *testing.T) {
	r := newRig(t, 2, 5, 6)
	var seqs []uint8
	r.macs[1].OnReceive(func(f *packet.Frame, _ phy.RxInfo) { seqs = append(seqs, f.Seq) })
	for i := 0; i < 3; i++ {
		at := sim.Time(i) * 100 * sim.Millisecond
		r.clock.At(at, func() {
			r.macs[0].Send(&packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1}, nil)
		})
	}
	r.clock.Run()
	if len(seqs) != 3 || seqs[0]+1 != seqs[1] || seqs[1]+1 != seqs[2] {
		t.Fatalf("seqs = %v, want consecutive", seqs)
	}
}

func TestUnicastNotDeliveredToThirdParty(t *testing.T) {
	r := newRig(t, 3, 5, 7)
	overheard := false
	r.macs[2].OnReceive(func(*packet.Frame, phy.RxInfo) { overheard = true })
	r.clock.At(0, func() {
		r.macs[0].Send(&packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1}, nil)
	})
	r.clock.Run()
	if overheard {
		t.Fatal("MAC delivered unicast addressed to another node")
	}
}

func TestCSMADefersToOngoingTransmission(t *testing.T) {
	// Two nodes within carrier-sense range send at the same instant; CSMA
	// backoff must serialize them so the far receiver gets both.
	r := newRig(t, 3, 8, 8)
	got := 0
	r.macs[2].OnReceive(func(*packet.Frame, phy.RxInfo) { got++ })
	for trial := 0; trial < 50; trial++ {
		at := sim.Time(trial) * 50 * sim.Millisecond
		r.clock.At(at, func() {
			r.macs[0].Send(&packet.Frame{Type: packet.TypeData, AckRequest: false, Src: 0, Dst: 2, Payload: make([]byte, 50)}, nil)
			r.macs[1].Send(&packet.Frame{Type: packet.TypeData, AckRequest: false, Src: 1, Dst: 2, Payload: make([]byte, 50)}, nil)
		})
	}
	r.clock.Run()
	if got < 95 {
		t.Fatalf("CSMA delivered %d/100 under contention", got)
	}
}

func TestAckBitFrequencyTracksLinkPRR(t *testing.T) {
	// On a grey-region link the fraction of acked transmissions estimates
	// the round-trip delivery probability — the quantity the 4B unicast
	// stream consumes. Check it is intermediate and roughly PRR(fwd)*PRR(ack).
	r := newRig(t, 2, 55, 9)
	acked, total := 0, 0
	var send func()
	send = func() {
		f := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1, Payload: make([]byte, 20)}
		r.macs[0].Send(f, func(tr TxResult) {
			if tr.Sent {
				total++
				if tr.Acked {
					acked++
				}
			}
			if total < 400 {
				r.clock.After(5*sim.Millisecond, send)
			}
		})
	}
	r.clock.At(0, send)
	r.clock.Run()
	frac := float64(acked) / float64(total)
	if frac < 0.05 || frac > 0.95 {
		t.Fatalf("acked fraction = %.3f on grey link, want intermediate", frac)
	}
}

func TestStatsRxCounts(t *testing.T) {
	r := newRig(t, 2, 5, 10)
	r.clock.At(0, func() {
		r.macs[0].Send(&packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1}, nil)
	})
	r.clock.At(sim.Second, func() {
		r.macs[0].Send(&packet.Frame{Type: packet.TypeBeacon, Src: 0, Dst: packet.Broadcast}, nil)
	})
	r.clock.Run()
	if r.macs[1].Stats.RxData != 1 || r.macs[1].Stats.RxBeacons != 1 {
		t.Fatalf("rx stats = %+v", r.macs[1].Stats)
	}
	if r.macs[0].Stats.RxAcks != 1 {
		t.Fatalf("sender RxAcks = %d, want 1", r.macs[0].Stats.RxAcks)
	}
}
