// Package lqirouter implements MultiHopLQI, the TinyOS collection protocol
// the paper uses as its baseline (state of the art for CC2420 platforms at
// the time). MultiHopLQI is a pure physical-layer design: each node
// advertises an accumulated cost in periodic beacons, and receivers judge
// the link to the sender solely by the LQI of the beacon itself — no link
// table, no reception-ratio accounting, no feedback from data traffic.
//
// The cost of one hop is AdjustLQI(lqi), the cubic penalty used by the
// TinyOS implementation, so low-LQI links are strongly avoided — but links
// whose received packets carry high LQI while many packets are lost
// entirely (bursty links) look perfect. That blindness is the paper's
// Figure 3 failure case.
package lqirouter

import (
	"fourbit/internal/core"
	"fourbit/internal/mac"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// Config parameterizes MultiHopLQI. Defaults follow the TinyOS library.
type Config struct {
	BeaconPeriod sim.Time // fixed beaconing period (jittered ±20%)
	MaxRetries   int      // transmissions per data packet per hop
	QueueSize    int
	RouteTimeout sim.Time // silence after which the parent is dropped
	DupCacheSize int
	MaxHops      uint8
}

// DefaultConfig returns TinyOS MultiHopLQI-like parameters. The retry
// budget matches the sustained per-packet retransmission counts visible in
// the paper's Figure 3 (~8+ unacked transmissions per packet on a degraded
// in-use link): the protocol keeps hammering the link its LQI metric
// chose, because no link-layer feedback reaches route selection.
func DefaultConfig() Config {
	return Config{
		BeaconPeriod: 30 * sim.Second,
		MaxRetries:   20,
		QueueSize:    12,
		RouteTimeout: 150 * sim.Second,
		DupCacheSize: 64,
		MaxHops:      60,
	}
}

// AdjustLQI converts a received beacon's LQI into the link-cost increment,
// exactly as the TinyOS implementation does: a cubic penalty in
// (80 - (lqi - 50)) that makes low-LQI hops rapidly unattractive.
//
// The cubic itself lives in internal/core (estimation logic shared with
// the pluggable pure-LQI estimator, core.LQIEstimator); this router keeps
// only the routing machinery around it.
func AdjustLQI(lqi uint8) uint16 { return core.AdjustLQI(lqi) }

// noRoute is the advertised cost of a node without a route.
const noRoute = 0xFFFF

// Stats counts per-node protocol activity.
type Stats struct {
	Generated     uint64
	DeliveredRoot uint64
	Forwarded     uint64
	BeaconsSent   uint64
	ParentChanges uint64
	DupsDropped   uint64
	DropsQueue    uint64
	DropsRetry    uint64
	DropsHops     uint64
}

// Deliver is the root's delivery callback.
type Deliver func(origin packet.Addr, originSeq uint16, hops uint8, data []byte)

// Node is one MultiHopLQI instance.
type Node struct {
	clock  *sim.Simulator
	m      *mac.MAC
	cfg    Config
	self   packet.Addr
	isRoot bool
	rng    *sim.Rand
	probes *probe.Bus

	deliver Deliver

	parent     packet.Addr
	myCost     uint16
	lastParent sim.Time
	beaconSeq  uint16
	started    bool

	queue     []*packet.LQIData
	sending   bool
	attempts  int
	dup       map[dupKey]struct{}
	dupFIFO   []dupKey
	dupNext   int
	originSeq uint16

	Stats Stats
}

type dupKey struct {
	origin packet.Addr
	seq    uint16
}

// New wires a MultiHopLQI node onto its MAC. Call Start to boot it.
func New(clock *sim.Simulator, m *mac.MAC, isRoot bool, cfg Config, rng *sim.Rand) *Node {
	n := &Node{
		clock:  clock,
		m:      m,
		cfg:    cfg,
		self:   m.Addr(),
		isRoot: isRoot,
		rng:    rng,
		probes: probe.FromSim(clock),
		parent: packet.None,
		myCost: noRoute,
		dup:    make(map[dupKey]struct{}, cfg.DupCacheSize),
	}
	if isRoot {
		n.myCost = 0
	}
	m.OnReceive(n.onFrame)
	return n
}

// Addr returns the node's address.
func (n *Node) Addr() packet.Addr { return n.self }

// Parent returns the current parent (packet.None when routeless).
func (n *Node) Parent() packet.Addr { return n.parent }

// Cost returns the advertised path cost (0 at root, max when routeless).
func (n *Node) Cost() uint16 { return n.myCost }

// OnDeliver installs the root's delivery callback.
func (n *Node) OnDeliver(fn Deliver) { n.deliver = fn }

// Start boots the beacon timer.
func (n *Node) Start() {
	if n.started {
		return
	}
	n.started = true
	n.scheduleBeacon(true)
}

func (n *Node) scheduleBeacon(first bool) {
	d := n.cfg.BeaconPeriod
	var delay sim.Time
	if first {
		delay = n.rng.UniformTime(0, d)
	} else {
		delay = n.rng.UniformTime(d.Scale(0.8), d.Scale(1.2))
	}
	n.clock.After(delay, n.beaconFire)
}

func (n *Node) beaconFire() {
	// Route liveness: a parent silent past the timeout is abandoned.
	if !n.isRoot && n.parent != packet.None &&
		n.clock.Now()-n.lastParent > n.cfg.RouteTimeout {
		old := n.parent
		n.parent = packet.None
		n.myCost = noRoute
		n.Stats.ParentChanges++
		n.probes.ParentChange(n.self, old, packet.None, 0)
	}
	n.sendBeacon()
	n.scheduleBeacon(false)
}

func (n *Node) sendBeacon() {
	if n.m.Busy() {
		return
	}
	n.beaconSeq++
	b := &packet.LQIBeacon{Parent: n.parent, Cost: n.myCost, Seq: n.beaconSeq}
	payload, err := b.Encode()
	if err != nil {
		panic("lqirouter: beacon encode: " + err.Error())
	}
	f := &packet.Frame{Type: packet.TypeBeacon, Src: n.self, Dst: packet.Broadcast, Payload: payload}
	if n.m.Send(f, func(mac.TxResult) { n.pump() }) == nil {
		n.Stats.BeaconsSent++
		n.probes.Beacon(n.self, n.myCost, false)
	}
}

func (n *Node) onFrame(f *packet.Frame, info phy.RxInfo) {
	if !n.started {
		return // unbooted motes hear nothing
	}
	switch f.Type {
	case packet.TypeBeacon:
		b, err := packet.DecodeLQIBeacon(f.Payload)
		if err != nil {
			return
		}
		n.handleBeacon(f.Src, b, info)
	case packet.TypeData:
		n.handleData(f)
	}
}

// handleBeacon applies MultiHopLQI's route logic: the path through the
// sender costs its advertised cost plus the LQI-derived cost of this very
// beacon's reception. Strictly better paths are adopted immediately.
func (n *Node) handleBeacon(src packet.Addr, b *packet.LQIBeacon, info phy.RxInfo) {
	if n.isRoot {
		return
	}
	if b.Parent == n.self {
		// Our own child; adopting it would loop.
		return
	}
	if b.Cost == noRoute {
		return
	}
	link := uint32(AdjustLQI(info.LQI))
	total32 := uint32(b.Cost) + link
	if total32 > noRoute-1 {
		total32 = noRoute - 1
	}
	total := uint16(total32)
	if src == n.parent {
		n.myCost = total
		n.lastParent = n.clock.Now()
		return
	}
	if total < n.myCost {
		if n.parent != src {
			n.Stats.ParentChanges++
			// ParentChangeEvent.Cost is ETX-comparable by contract; the
			// raw MultiHopLQI cost normalizes onto that scale by the
			// saturated-LQI hop cost (exactly core.ETXFromLQI's anchor).
			n.probes.ParentChange(n.self, n.parent, src, float64(total)/float64(core.AdjustLQI(110)))
		}
		n.parent = src
		n.myCost = total
		n.lastParent = n.clock.Now()
		n.pump()
	}
}

// Send accepts a client packet for collection.
func (n *Node) Send(data []byte) bool {
	if !n.started {
		return false
	}
	n.originSeq++
	n.Stats.Generated++
	if n.isRoot {
		n.Stats.DeliveredRoot++
		if n.deliver != nil {
			n.deliver(n.self, n.originSeq, 0, data)
		}
		return true
	}
	// Copy data: clients (the collect sources) reuse their encode buffers,
	// so the queue must not alias caller memory.
	d := &packet.LQIData{Origin: n.self, OriginSeq: n.originSeq,
		Data: append([]byte(nil), data...)}
	if !n.enqueue(d) {
		return false
	}
	n.pump()
	return true
}

func (n *Node) handleData(f *packet.Frame) {
	d, err := packet.DecodeLQIData(f.Payload)
	if err != nil {
		return
	}
	k := dupKey{d.Origin, d.OriginSeq}
	if _, seen := n.dup[k]; seen {
		n.Stats.DupsDropped++
		return
	}
	n.dupAdd(k)
	if n.isRoot {
		n.Stats.DeliveredRoot++
		if n.deliver != nil {
			n.deliver(d.Origin, d.OriginSeq, d.HopCount, d.Data)
		}
		return
	}
	if d.HopCount >= n.cfg.MaxHops {
		n.Stats.DropsHops++
		return
	}
	fwd := *d
	fwd.HopCount++
	if n.enqueue(&fwd) {
		n.pump()
	}
}

func (n *Node) dupAdd(k dupKey) {
	if _, ok := n.dup[k]; ok {
		return
	}
	if len(n.dupFIFO) < n.cfg.DupCacheSize {
		n.dupFIFO = append(n.dupFIFO, k)
	} else {
		delete(n.dup, n.dupFIFO[n.dupNext])
		n.dupFIFO[n.dupNext] = k
		n.dupNext = (n.dupNext + 1) % n.cfg.DupCacheSize
	}
	n.dup[k] = struct{}{}
}

func (n *Node) enqueue(d *packet.LQIData) bool {
	if len(n.queue) >= n.cfg.QueueSize {
		n.Stats.DropsQueue++
		return false
	}
	n.queue = append(n.queue, d)
	return true
}

func (n *Node) pump() {
	if n.sending || len(n.queue) == 0 || n.parent == packet.None || n.m.Busy() {
		return
	}
	d := n.queue[0]
	payload, err := d.Encode()
	if err != nil {
		n.queue = n.queue[1:]
		n.Stats.DropsQueue++
		n.pump()
		return
	}
	f := &packet.Frame{
		Type:       packet.TypeData,
		AckRequest: true,
		Src:        n.self,
		Dst:        n.parent,
		Payload:    payload,
	}
	n.sending = true
	if err := n.m.Send(f, n.onDataTxDone); err != nil {
		n.sending = false
		n.clock.After(10*sim.Millisecond, n.pump)
	}
}

func (n *Node) onDataTxDone(res mac.TxResult) {
	n.sending = false
	if res.Acked {
		n.queue = n.queue[1:]
		n.attempts = 0
		n.Stats.Forwarded++
		n.pump()
		return
	}
	// No link-layer feedback reaches route selection: MultiHopLQI keeps
	// hammering the same parent until its bounded retries run out.
	n.attempts++
	if n.attempts >= n.cfg.MaxRetries {
		n.queue = n.queue[1:]
		n.attempts = 0
		n.Stats.DropsRetry++
		n.pump()
		return
	}
	n.clock.After(n.rng.UniformTime(4*sim.Millisecond, 24*sim.Millisecond), n.pump)
}
