package lqirouter

import (
	"math"
	"testing"

	"fourbit/internal/mac"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
)

type rig struct {
	clock *sim.Simulator
	med   *phy.Medium
	ch    *phy.Channel
	nodes []*Node
	macs  []*mac.MAC
}

func newRig(t *testing.T, seed uint64, positions [][2]float64, cfg Config) *rig {
	t.Helper()
	n := len(positions)
	clock := sim.New(seed)
	p := phy.DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB, p.PacketJitterSigmaDB = 0, 0
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dx := positions[i][0] - positions[j][0]
			dy := positions[i][1] - positions[j][1]
			dist[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	seeds := sim.NewSeedSpace(seed)
	ch := phy.NewChannel(dist, nil, p, seeds)
	med := phy.NewMedium(clock, ch, phy.DefaultRadioParams(), phy.DefaultLQIParams(), seeds)
	r := &rig{clock: clock, med: med, ch: ch}
	for i := 0; i < n; i++ {
		m := mac.New(clock, med.Radio(i), packet.Addr(i), mac.DefaultParams(), seeds.Stream("mac"))
		nd := New(clock, m, i == 0, cfg, seeds.Stream("lqi"))
		r.nodes = append(r.nodes, nd)
		r.macs = append(r.macs, m)
	}
	return r
}

func (r *rig) startAll() {
	for _, nd := range r.nodes {
		nd.Start()
	}
}

func TestRouteAdoptionAndGradient(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BeaconPeriod = 2 * sim.Second // quick convergence for the test
	r := newRig(t, 1, [][2]float64{{0, 0}, {38, 0}, {76, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(30 * sim.Second)
	if r.nodes[1].Parent() != 0 || r.nodes[2].Parent() != 1 {
		t.Fatalf("parents = %v, %v; want 0, 1", r.nodes[1].Parent(), r.nodes[2].Parent())
	}
	if !(r.nodes[0].Cost() == 0 && r.nodes[1].Cost() > 0 && r.nodes[2].Cost() > r.nodes[1].Cost()) {
		t.Fatalf("cost gradient broken: %d, %d, %d",
			r.nodes[0].Cost(), r.nodes[1].Cost(), r.nodes[2].Cost())
	}
}

func TestRootIgnoresBeacons(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BeaconPeriod = 2 * sim.Second
	r := newRig(t, 2, [][2]float64{{0, 0}, {20, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(20 * sim.Second)
	if r.nodes[0].Parent() != packet.None || r.nodes[0].Cost() != 0 {
		t.Fatal("root state corrupted by beacons")
	}
}

func TestChildBeaconNotAdopted(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 3, [][2]float64{{0, 0}, {20, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(sim.Second)
	// Forge a beacon from node 9 claiming node 1 as its parent: node 1
	// must not adopt its own child regardless of the advertised cost.
	b := &packet.LQIBeacon{Parent: 1, Cost: 1, Seq: 1}
	r.nodes[1].handleBeacon(9, b, phy.RxInfo{LQI: 110})
	if r.nodes[1].Parent() == 9 {
		t.Fatal("adopted own child as parent")
	}
}

func TestRoutelessSenderNotAdopted(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 4, [][2]float64{{0, 0}, {20, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(sim.Second)
	b := &packet.LQIBeacon{Parent: packet.None, Cost: noRoute, Seq: 1}
	r.nodes[1].handleBeacon(9, b, phy.RxInfo{LQI: 110})
	if r.nodes[1].Parent() == 9 {
		t.Fatal("adopted a routeless sender")
	}
}

func TestBetterCostWins(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 5, [][2]float64{{0, 0}, {20, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(sim.Second)
	n1 := r.nodes[1]
	n1.handleBeacon(7, &packet.LQIBeacon{Parent: 0, Cost: 2000, Seq: 1}, phy.RxInfo{LQI: 110})
	if n1.Parent() != 7 {
		t.Fatalf("parent = %v, want 7", n1.Parent())
	}
	costVia7 := n1.Cost()
	// A clearly cheaper route arrives.
	n1.handleBeacon(8, &packet.LQIBeacon{Parent: 0, Cost: 100, Seq: 1}, phy.RxInfo{LQI: 110})
	if n1.Parent() != 8 || n1.Cost() >= costVia7 {
		t.Fatalf("did not adopt cheaper route: parent=%v cost=%d (was %d)",
			n1.Parent(), n1.Cost(), costVia7)
	}
	// A worse one does not displace it.
	n1.handleBeacon(9, &packet.LQIBeacon{Parent: 0, Cost: 60000, Seq: 1}, phy.RxInfo{LQI: 110})
	if n1.Parent() != 8 {
		t.Fatal("adopted a worse route")
	}
}

func TestLowLQIBeaconLessAttractive(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 6, [][2]float64{{0, 0}, {20, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(sim.Second)
	n1 := r.nodes[1]
	// Same advertised cost; the high-LQI one must win.
	n1.handleBeacon(7, &packet.LQIBeacon{Parent: 0, Cost: 500, Seq: 1}, phy.RxInfo{LQI: 70})
	costLow := n1.Cost()
	n1.handleBeacon(8, &packet.LQIBeacon{Parent: 0, Cost: 500, Seq: 1}, phy.RxInfo{LQI: 110})
	if n1.Parent() != 8 || n1.Cost() >= costLow {
		t.Fatalf("high-LQI route not preferred: parent=%v", n1.Parent())
	}
}

func TestParentTimeoutInvalidatesRoute(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BeaconPeriod = 2 * sim.Second
	cfg.RouteTimeout = 10 * sim.Second
	r := newRig(t, 7, [][2]float64{{0, 0}, {30, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	if r.nodes[1].Parent() != 0 {
		t.Fatal("no route formed")
	}
	// Silence the root entirely; node 1 must drop the route.
	r.ch.SetModifierBoth(0, 1, deadLink(80))
	r.clock.RunUntil(40 * sim.Second)
	if r.nodes[1].Parent() != packet.None {
		t.Fatalf("parent = %v after 30 s of silence (timeout 10 s)", r.nodes[1].Parent())
	}
	if r.nodes[1].Cost() != noRoute {
		t.Fatal("cost not invalidated")
	}
}

type deadLink float64

func (d deadLink) ExtraLossDB(sim.Time) float64 { return float64(d) }

func TestDataForwardingAndDupSuppression(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BeaconPeriod = 2 * sim.Second
	r := newRig(t, 8, [][2]float64{{0, 0}, {30, 0}}, cfg)
	delivered := 0
	r.nodes[0].OnDeliver(func(origin packet.Addr, seq uint16, hops uint8, data []byte) {
		delivered++
	})
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	for i := 0; i < 10; i++ {
		r.clock.After(sim.Time(i)*sim.Second, func() { r.nodes[1].Send([]byte{1}) })
	}
	r.clock.RunUntil(30 * sim.Second)
	if delivered != 10 {
		t.Fatalf("delivered %d/10", delivered)
	}
	// Duplicate injection at the root.
	d := &packet.LQIData{Origin: 1, OriginSeq: 500}
	payload, _ := d.Encode()
	f := &packet.Frame{Type: packet.TypeData, Src: 1, Dst: 0, Payload: payload}
	r.nodes[0].handleData(f)
	r.nodes[0].handleData(f)
	if delivered != 11 {
		t.Fatalf("delivered %d, want 11 (dup suppressed)", delivered)
	}
	if r.nodes[0].Stats.DupsDropped != 1 {
		t.Fatal("dup not counted")
	}
}

func TestHopCapDropsPacket(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BeaconPeriod = 2 * sim.Second
	r := newRig(t, 9, [][2]float64{{0, 0}, {30, 0}, {60, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	d := &packet.LQIData{Origin: 9, OriginSeq: 1, HopCount: cfg.MaxHops}
	payload, _ := d.Encode()
	f := &packet.Frame{Type: packet.TypeData, Src: 2, Dst: 1, Payload: payload}
	r.nodes[1].handleData(f)
	if r.nodes[1].Stats.DropsHops != 1 {
		t.Fatalf("DropsHops = %d, want 1", r.nodes[1].Stats.DropsHops)
	}
}

func TestNoFeedbackFromAcksToRouting(t *testing.T) {
	// The defining limitation: a dead parent link does not change the
	// route until RouteTimeout, no matter how many transmissions fail.
	cfg := DefaultConfig()
	cfg.BeaconPeriod = 2 * sim.Second
	cfg.RouteTimeout = 120 * sim.Second
	r := newRig(t, 10, [][2]float64{{0, 0}, {30, 0}, {30, 20}}, cfg)
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	if r.nodes[1].Parent() != 0 {
		t.Fatal("setup: node 1 should route directly")
	}
	// Kill only the data direction 1->0; beacons 0->1 keep flowing.
	r.ch.SetModifier(1, 0, deadLink(80))
	drops0 := r.nodes[1].Stats.DropsRetry
	for i := 0; i < 10; i++ {
		r.clock.After(sim.Time(i)*sim.Second, func() { r.nodes[1].Send([]byte{1}) })
	}
	r.clock.RunUntil(40 * sim.Second)
	if r.nodes[1].Parent() != 0 {
		t.Fatalf("MultiHopLQI switched parent (%v) on ack failures — it has no such feedback",
			r.nodes[1].Parent())
	}
	if r.nodes[1].Stats.DropsRetry <= drops0 {
		t.Fatal("no retry-exhaustion drops despite dead data direction")
	}
}
