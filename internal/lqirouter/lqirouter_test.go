package lqirouter

import "testing"

func TestAdjustLQIMonotoneDecreasing(t *testing.T) {
	prev := uint16(0)
	for lqi := 110; lqi >= 40; lqi-- {
		c := AdjustLQI(uint8(lqi))
		if c < prev {
			t.Fatalf("AdjustLQI(%d) = %d < AdjustLQI(%d) = %d; cost must grow as LQI falls",
				lqi, c, lqi+1, prev)
		}
		prev = c
	}
}

func TestAdjustLQIKnownValues(t *testing.T) {
	// The TinyOS formula: v = 80-(lqi-50); cost = ((v*v)>>3)*v >> 3.
	cases := []struct {
		lqi  uint8
		want uint16
	}{
		{110, 125},  // v=20: (400>>3)*20>>3 = 50*20>>3 = 125
		{100, 1012}, // v=30: (900>>3)*30>>3 = 112*30>>3 = 420 -> recompute below
	}
	// Compute the second case precisely rather than trusting the comment:
	v := 30
	cases[1].want = uint16(((v * v) >> 3) * v >> 3)
	for _, c := range cases {
		if got := AdjustLQI(c.lqi); got != c.want {
			t.Errorf("AdjustLQI(%d) = %d, want %d", c.lqi, got, c.want)
		}
	}
}

func TestAdjustLQICubicGrowth(t *testing.T) {
	// One great hop must beat several mediocre ones: the cost of an LQI-80
	// link should exceed 4x the cost of an LQI-110 link.
	if AdjustLQI(80) < 4*AdjustLQI(110) {
		t.Fatalf("AdjustLQI(80)=%d not ≫ AdjustLQI(110)=%d", AdjustLQI(80), AdjustLQI(110))
	}
}

func TestAdjustLQIBounds(t *testing.T) {
	for lqi := 0; lqi <= 255; lqi++ {
		c := AdjustLQI(uint8(lqi))
		if c < 1 || c > 0xFFFE {
			t.Fatalf("AdjustLQI(%d) = %d out of [1, 0xFFFE]", lqi, c)
		}
	}
}
