package sim

import "testing"

// Direct coverage of eventQueue.remove: cancelling the head, a middle
// element, and the tail must each leave a valid heap, exercising both the
// sift-down and sift-up repair paths.

func queueInvariant(t *testing.T, q *eventQueue) {
	t.Helper()
	for i := range q.items {
		if q.items[i].index != i {
			t.Fatalf("item at %d carries index %d", i, q.items[i].index)
		}
		left, right := 2*i+1, 2*i+2
		if left < len(q.items) && q.less(left, i) {
			t.Fatalf("heap violated: child %d < parent %d", left, i)
		}
		if right < len(q.items) && q.less(right, i) {
			t.Fatalf("heap violated: child %d < parent %d", right, i)
		}
	}
}

func fillQueue(times ...Time) *eventQueue {
	q := &eventQueue{}
	for i, at := range times {
		q.push(&Timer{at: at, seq: uint64(i), fn: func() {}})
	}
	return q
}

func drainTimes(q *eventQueue) []Time {
	var out []Time
	for q.Len() > 0 {
		out = append(out, q.pop().at)
	}
	return out
}

func TestQueueRemoveHead(t *testing.T) {
	q := fillQueue(1, 5, 3, 9, 7)
	q.remove(0)
	queueInvariant(t, q)
	got := drainTimes(q)
	want := []Time{3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after removing head: drain = %v, want %v", got, want)
		}
	}
}

func TestQueueRemoveTail(t *testing.T) {
	q := fillQueue(1, 5, 3, 9, 7)
	q.remove(q.Len() - 1)
	queueInvariant(t, q)
	if q.Len() != 4 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestQueueRemoveMiddleSiftDown(t *testing.T) {
	// Removing a small element from the middle replaces it with the large
	// tail element, which must sift down to restore the heap.
	q := fillQueue(10, 20, 30, 40, 50, 60, 70, 25, 45)
	var pos int
	for i, it := range q.items {
		if it.at == 20 {
			pos = i
			break
		}
	}
	q.remove(pos)
	queueInvariant(t, q)
	got := drainTimes(q)
	want := []Time{10, 25, 30, 40, 45, 50, 60, 70}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain = %v, want %v", got, want)
		}
	}
}

func TestQueueRemoveMiddleSiftUp(t *testing.T) {
	// Construct a heap where the tail element is smaller than the removal
	// point's parent, forcing the up-repair path in remove.
	q := &eventQueue{}
	// Push in an order that yields: items laid out so a deep subtree holds
	// large values and the last element is small.
	for i, at := range []Time{10, 100, 20, 110, 120, 30, 40} {
		q.push(&Timer{at: at, seq: uint64(i), fn: func() {}})
	}
	// Append a tiny element as the tail of the big-value subtree.
	q.push(&Timer{at: 15, seq: 99, fn: func() {}})
	queueInvariant(t, q)
	// Remove a leaf under the 100-subtree: the 15 tail replaces it and must
	// sift UP past 100 toward the root.
	var pos int
	for i, it := range q.items {
		if it.at == 110 {
			pos = i
			break
		}
	}
	q.remove(pos)
	queueInvariant(t, q)
	got := drainTimes(q)
	want := []Time{10, 15, 20, 30, 40, 100, 120}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain = %v, want %v", got, want)
		}
	}
}

func TestQueueRemoveOnlyElement(t *testing.T) {
	q := fillQueue(42)
	q.remove(0)
	if q.Len() != 0 {
		t.Fatalf("len = %d after removing only element", q.Len())
	}
	if q.peek() != nil {
		t.Fatal("peek after emptying should be nil")
	}
}

func TestQueueRemoveEveryPosition(t *testing.T) {
	// Property-style: for each position of a 9-element heap, removal keeps
	// the invariant and drains sorted without the removed deadline.
	base := []Time{8, 3, 5, 1, 9, 2, 7, 4, 6}
	for pos := 0; pos < len(base); pos++ {
		q := fillQueue(base...)
		removed := q.items[pos].at
		q.remove(pos)
		queueInvariant(t, q)
		got := drainTimes(q)
		if len(got) != len(base)-1 {
			t.Fatalf("pos %d: drained %d items", pos, len(got))
		}
		prev := Time(-1)
		for _, at := range got {
			if at == removed {
				t.Fatalf("pos %d: removed deadline %v still present", pos, removed)
			}
			if at < prev {
				t.Fatalf("pos %d: drain out of order: %v", pos, got)
			}
			prev = at
		}
	}
}
