package sim

import (
	"hash/fnv"
	"math/rand"
)

// SeedSpace derives independent, reproducible random streams from one master
// seed. Stream identity is by name, so adding or removing streams never
// perturbs the sequences of the others — a property the experiment harness
// relies on when comparing protocol variants on "the same" channel.
//
// A SeedSpace and the streams it hands out are single-goroutine state, like
// the Simulator they feed. Concurrent simulations each build their own
// SeedSpace from their own master seed (the experiment runner's per-run
// isolation); nothing here is shared between runs.
type SeedSpace struct {
	master  uint64
	streams map[string]*Rand
	lights  map[string]*Rand // lazily built; see Light
}

// NewSeedSpace returns a seed space rooted at master.
func NewSeedSpace(master uint64) *SeedSpace {
	return &SeedSpace{master: master, streams: make(map[string]*Rand)}
}

// Stream returns the stream for name, creating it on first use.
func (ss *SeedSpace) Stream(name string) *Rand {
	if r, ok := ss.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := splitmix64(ss.master ^ h.Sum64())
	r := NewRand(seed)
	ss.streams[name] = r
	return r
}

// splitmix64 is the finalizer from Vigna's SplitMix64; it decorrelates
// related seeds (master ^ hash collisions of nearby names).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Light returns the named lightweight stream, creating it on first use.
// Seed derivation matches Stream (fnv64a of the name xor master, finalized
// by SplitMix64), but the generator is a SplitMix64 sequence instead of the
// stdlib source: 8 bytes of state versus ~5 KB. The sharded medium hands
// every node three private streams (reception, fade, noise) so that shards
// never contend on a shared generator — at 10k nodes the stdlib source
// would cost ~150 MB where SplitMix64 costs ~2 MB. Light and Stream names
// live in separate namespaces; reusing a name across them is fine.
func (ss *SeedSpace) Light(name string) *Rand {
	if ss.lights == nil {
		ss.lights = make(map[string]*Rand)
	}
	if r, ok := ss.lights[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := NewLightRand(splitmix64(ss.master ^ h.Sum64()))
	ss.lights[name] = r
	return r
}

// lightSource is a SplitMix64 generator behind the rand.Source interface.
// It deliberately does not implement rand.Source64 so that, like
// countingSource, every state transition funnels through Int63.
type lightSource struct{ state uint64 }

func (s *lightSource) Int63() int64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64((x ^ (x >> 31)) >> 1)
}

func (s *lightSource) Seed(seed int64) { s.state = uint64(seed) }

// NewLightRand returns a stream backed by an 8-byte SplitMix64 source
// instead of the stdlib's ~5 KB lagged-Fibonacci state. Statistically
// SplitMix64 passes BigCrush; the trade is a shorter period (2^64), which
// is far beyond any simulated run. Use for large per-node stream families.
func NewLightRand(seed uint64) *Rand {
	return &Rand{Rand: rand.New(&lightSource{state: seed})}
}

// Rand is a deterministic random stream with the distributions the
// simulator's models need. It wraps math/rand.Rand (stdlib) seeded through
// SplitMix64.
type Rand struct {
	*rand.Rand
	counted *countingSource // nil for ordinary (un-snapshotable) streams
}

// NewRand returns a stream seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(int64(splitmix64(seed))))}
}

// countingSource wraps the stdlib source and counts state-advancing draws,
// so a counted Rand's position in its stream is (seed, draws) — the whole
// state the estimator snapshot/restore path needs. It deliberately does NOT
// implement rand.Source64: math/rand then derives Uint64 from two Int63
// calls, so every state transition funnels through Int63 and one counter
// fully determines the stream position.
type countingSource struct {
	src   rand.Source
	seed  uint64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// NewCountedRand returns a stream that yields exactly the values of
// NewRand(seed) for every Int63-derived draw (Float64, Intn, Normal, Exp,
// Bernoulli, ... — everything the estimators use) while tracking its draw
// position, so SnapshotState can serialize it and RestoreCountedRand can
// rebuild it mid-stream. Long-running estimator instances (internal/serve)
// are built over counted streams; simulation streams stay uncounted and pay
// nothing.
func NewCountedRand(seed uint64) *Rand {
	cs := &countingSource{src: rand.NewSource(int64(splitmix64(seed))), seed: seed}
	return &Rand{Rand: rand.New(cs), counted: cs}
}

// RestoreCountedRand returns a counted stream fast-forwarded to the given
// draw position: it is bit-identical, draw for draw, to NewCountedRand(seed)
// after draws state advances. Replay cost is one source step per draw
// (~ns); estimator streams advance only on admission decisions, so
// positions stay small.
func RestoreCountedRand(seed uint64, draws uint64) *Rand {
	r := NewCountedRand(seed)
	for i := uint64(0); i < draws; i++ {
		r.counted.src.Int63()
	}
	r.counted.draws = draws
	return r
}

// SnapshotState reports the stream's seed and draw position. ok is false
// for streams not built with NewCountedRand/RestoreCountedRand — their
// position is unobservable and they cannot be snapshotted.
func (r *Rand) SnapshotState() (seed, draws uint64, ok bool) {
	if r.counted == nil {
		return 0, 0, false
	}
	return r.counted.seed, r.counted.draws, true
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Uniform returns a sample from U[lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformTime returns a Time sampled from U[lo, hi).
func (r *Rand) UniformTime(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Int63n(int64(hi-lo)))
}

// Normal returns a sample from N(mean, sigma^2).
func (r *Rand) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.NormFloat64()
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// ExpTime returns an exponentially distributed Time with the given mean.
func (r *Rand) ExpTime(mean Time) Time {
	return Time(r.ExpFloat64() * float64(mean))
}
