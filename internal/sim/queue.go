package sim

// eventQueue is an indexed binary min-heap of scheduled events, ordered by
// firing time with insertion sequence as the tie-breaker so that events
// scheduled for the same instant fire in FIFO order. The index permits O(log
// n) cancellation without tombstone scans.
type eventQueue struct {
	items []*Timer
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) push(t *Timer) {
	t.index = len(q.items)
	q.items = append(q.items, t)
	q.up(t.index)
}

// pop removes and returns the earliest event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() *Timer {
	n := len(q.items) - 1
	q.swap(0, n)
	t := q.items[n]
	q.items[n] = nil
	q.items = q.items[:n]
	if n > 0 {
		q.down(0)
	}
	t.index = -1
	return t
}

// peek returns the earliest event without removing it, or nil if empty.
func (q *eventQueue) peek() *Timer {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// fix re-establishes heap order after the item at position i changed its
// key — the in-place move behind Timer.Reschedule.
func (q *eventQueue) fix(i int) {
	if !q.down(i) {
		q.up(i)
	}
}

// remove deletes the event at heap position i.
func (q *eventQueue) remove(i int) {
	n := len(q.items) - 1
	if i != n {
		q.swap(i, n)
	}
	q.items[n].index = -1
	q.items[n] = nil
	q.items = q.items[:n]
	if i < n {
		if !q.down(i) {
			q.up(i)
		}
	}
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// down sifts item i toward the leaves; it reports whether the item moved.
func (q *eventQueue) down(i int) bool {
	start := i
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
	return i > start
}
