package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// Structural checks for the timing wheel plus the differential property
// test that certified the heap-to-wheel swap: random interleavings of
// Schedule/At/Reschedule/Cancel must dispatch in exactly the order the
// old indexed binary heap produced — (deadline, scheduling order) — with
// identical timestamps.

// wheelInvariant walks every bucket and verifies the intrusive lists, the
// occupancy bitmaps, the element count, and that each queued timer is in
// the bucket its (deadline, cursor) placement names.
func wheelInvariant(t *testing.T, q *eventQueue) {
	t.Helper()
	n := 0
	for level := 0; level < wheelLevels; level++ {
		for slot := 0; slot < wheelSlots; slot++ {
			b := &q.buckets[level][slot]
			occupied := q.occupied[level]&(1<<uint(slot)) != 0
			if (b.head != nil) != occupied {
				t.Fatalf("level %d slot %d: head=%v but occupancy bit=%v",
					level, slot, b.head != nil, occupied)
			}
			var prev *Timer
			for tm := b.head; tm != nil; tm = tm.next {
				n++
				if tm.bkt != b {
					t.Fatalf("level %d slot %d: timer bkt pointer astray", level, slot)
				}
				if tm.prev != prev {
					t.Fatalf("level %d slot %d: broken prev link", level, slot)
				}
				if l, s := q.place(tm.at); l != level || s != slot {
					t.Fatalf("timer at %v placed in (%d,%d), belongs in (%d,%d) at cursor %v",
						tm.at, level, slot, l, s, q.cursor)
				}
				if tm.at < q.cursor {
					t.Fatalf("queued deadline %v behind cursor %v", tm.at, q.cursor)
				}
				prev = tm
			}
			if b.tail != prev {
				t.Fatalf("level %d slot %d: tail astray", level, slot)
			}
		}
	}
	if n != q.count {
		t.Fatalf("count = %d, found %d queued timers", q.count, n)
	}
}

func fillWheel(times ...Time) *eventQueue {
	q := &eventQueue{}
	for _, at := range times {
		q.push(&Timer{at: at, fn: func() {}})
	}
	return q
}

func drainTimes(q *eventQueue) []Time {
	var out []Time
	for q.Len() > 0 {
		out = append(out, q.pop().at)
	}
	return out
}

func TestWheelDrainsSorted(t *testing.T) {
	times := []Time{8, 3, 5, 1, 9, 2, 7, 4, 6,
		Second, Minute, 3 * Hour, 90 * Hour, Never}
	q := fillWheel(times...)
	wheelInvariant(t, q)
	got := drainTimes(q)
	want := append([]Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain = %v, want %v", got, want)
		}
	}
}

func TestWheelRemoveEveryElement(t *testing.T) {
	// For each element of a spread of deadlines (same-window neighbours,
	// cross-level, far-future), removal keeps the invariant and drains
	// sorted without the removed deadline.
	base := []Time{1, 2, 63, 64, 65, 4096, 4097, Second, Second + 1, Minute, 80 * Hour}
	for pos := range base {
		q := &eventQueue{}
		var timers []*Timer
		for _, at := range base {
			tm := &Timer{at: at, fn: func() {}}
			timers = append(timers, tm)
			q.push(tm)
		}
		q.remove(timers[pos])
		wheelInvariant(t, q)
		got := drainTimes(q)
		if len(got) != len(base)-1 {
			t.Fatalf("pos %d: drained %d items", pos, len(got))
		}
		prev := Time(-1)
		for _, at := range got {
			if at == base[pos] {
				t.Fatalf("pos %d: removed deadline %v still present", pos, at)
			}
			if at < prev {
				t.Fatalf("pos %d: drain out of order: %v", pos, got)
			}
			prev = at
		}
	}
}

func TestWheelSameDeadlineFIFOAcrossCascade(t *testing.T) {
	// Same-deadline timers pushed in order must pop in push order even
	// when the deadline starts several levels up and cascades down.
	q := &eventQueue{}
	const at = 5*Second + 17
	var want []*Timer
	for i := 0; i < 10; i++ {
		tm := &Timer{at: at, fn: func() {}}
		want = append(want, tm)
		q.push(tm)
	}
	q.push(&Timer{at: Second, fn: func() {}})
	if got := q.pop().at; got != Second {
		t.Fatalf("first pop at %v, want 1s", got)
	}
	wheelInvariant(t, q)
	for i, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop %d: got timer at %v, not the %d-th pushed", i, got.at, i)
		}
	}
}

func TestWheelCursorRegressionAfterRunUntil(t *testing.T) {
	// RunUntil advances now past events without popping up to the target;
	// a subsequent push earlier than the earliest queued event — but after
	// now — must still dispatch first. Guards the cursor-only-advances-
	// on-pop design against a peek that moves the cursor.
	s := New(1)
	var order []Time
	note := func() { order = append(order, s.Now()) }
	s.At(10*Second, note)
	s.RunUntil(2 * Second)
	s.At(3*Second, note) // earlier than everything queued
	s.Run()
	if len(order) != 2 || order[0] != 3*Second || order[1] != 10*Second {
		t.Fatalf("dispatch order = %v, want [3s 10s]", order)
	}
}

// refEvent mirrors one scheduled event in the reference model: the old
// heap's exact order contract, (deadline, scheduling sequence).
type refEvent struct {
	at  Time
	seq int
	id  int
}

// TestWheelMatchesHeapOrderDifferential drives a Simulator and a reference
// priority model through identical random interleavings of the full
// scheduling surface — At, pooled Schedule, NewTimer Reschedule, Cancel,
// and partial drains — and demands identical dispatch sequences (ids and
// timestamps). The reference reproduces the retired binary heap's
// contract: sort by deadline, scheduling order breaking ties FIFO.
func TestWheelMatchesHeapOrderDifferential(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := New(1)

		type dispatch struct {
			id int
			at Time
		}
		var got []dispatch
		record := func(id int) func() {
			return func() { got = append(got, dispatch{id, s.Now()}) }
		}

		var ref []refEvent // pending events in the model
		seq, nextID := 0, 0
		var handles []*Timer // NewTimer/At handles eligible for Cancel/Reschedule
		handleIDs := make(map[*Timer]int)

		randomAt := func() Time {
			// Deadlines spanning bucket neighbours, cross-level jumps, and
			// far-future cascades.
			switch rng.Intn(4) {
			case 0:
				return s.Now() + Time(rng.Intn(64))
			case 1:
				return s.Now() + Time(rng.Intn(5000))
			case 2:
				return s.Now() + Time(rng.Intn(int(2*Second)))
			default:
				return s.Now() + Time(rng.Intn(int(100*Hour)))
			}
		}
		refRemove := func(id int) {
			for i := range ref {
				if ref[i].id == id {
					ref = append(ref[:i], ref[i+1:]...)
					return
				}
			}
		}

		for op := 0; op < 400; op++ {
			switch c := rng.Intn(10); {
			case c < 3: // At with a cancellable handle
				at, id := randomAt(), nextID
				nextID++
				tm := s.At(at, record(id))
				handles = append(handles, tm)
				handleIDs[tm] = id
				ref = append(ref, refEvent{at, seq, id})
				seq++
			case c < 6: // pooled fire-and-forget
				at, id := randomAt(), nextID
				nextID++
				s.Schedule(at, record(id))
				ref = append(ref, refEvent{at, seq, id})
				seq++
			case c < 7 && len(handles) > 0: // Cancel a random handle
				tm := handles[rng.Intn(len(handles))]
				if tm.Cancel() {
					refRemove(handleIDs[tm])
				}
			case c < 8 && len(handles) > 0: // Reschedule a random handle
				tm := handles[rng.Intn(len(handles))]
				if !tm.Active() {
					break // re-arming would re-dispatch an already-recorded id
				}
				at := randomAt()
				tm.Reschedule(at)
				refRemove(handleIDs[tm])
				ref = append(ref, refEvent{at, seq, handleIDs[tm]})
				seq++
			default: // drain a few events
				for i := 0; i < rng.Intn(8); i++ {
					if !s.Step() {
						break
					}
				}
			}
		}
		s.Run()

		sort.SliceStable(ref, func(i, j int) bool {
			if ref[i].at != ref[j].at {
				return ref[i].at < ref[j].at
			}
			return ref[i].seq < ref[j].seq
		})
		if len(got) != len(ref) {
			t.Fatalf("trial %d: dispatched %d events, reference has %d", trial, len(got), len(ref))
		}
		for i := range ref {
			if got[i].id != ref[i].id || got[i].at != ref[i].at {
				t.Fatalf("trial %d: dispatch %d = (id %d, %v), reference (id %d, %v)",
					trial, i, got[i].id, got[i].at, ref[i].id, ref[i].at)
			}
		}
	}
}
