package sim

import "testing"

// The pooled scheduling family (Schedule/ScheduleArg, NewTimer+Reschedule)
// must be behaviorally indistinguishable from At/After — same time order,
// same FIFO tie-breaking across both families — while recycling Timers.
// These tests pin the contract the MAC and medium fast paths rely on.

func TestScheduleFiresInTimeOrder(t *testing.T) {
	s := New(1)
	var got []Time
	for _, at := range []Time{4 * Second, 1 * Second, 3 * Second, 2 * Second} {
		s.Schedule(at, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{Second, 2 * Second, 3 * Second, 4 * Second}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScheduleAndAtShareFIFOOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 12; i++ {
		i := i
		if i%2 == 0 {
			s.Schedule(Second, func() { order = append(order, i) })
		} else {
			s.At(Second, func() { order = append(order, i) })
		}
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (both families share one tie-break sequence)", i, v, i)
		}
	}
}

func TestScheduleArgPassesArgument(t *testing.T) {
	s := New(1)
	type payload struct{ n int }
	p := &payload{n: 7}
	var got *payload
	s.ScheduleArg(Second, func(a any) { got = a.(*payload) }, p)
	s.Run()
	if got != p {
		t.Fatalf("callback got %v, want the scheduled payload", got)
	}
}

// TestPooledTimersAreRecycled schedules from inside callbacks so the free
// list is exercised: after the first event fires, every subsequent
// no-handle event must reuse its Timer rather than allocate.
func TestPooledTimersAreRecycled(t *testing.T) {
	s := New(1)
	fired := 0
	var next func()
	next = func() {
		fired++
		if fired < 100 {
			s.Schedule(s.Now()+Second, next)
		}
	}
	s.Schedule(Second, next)
	s.Run()
	if fired != 100 {
		t.Fatalf("fired %d events, want 100", fired)
	}
	if n := len(s.free); n != 1 {
		t.Fatalf("free list holds %d timers, want 1 (one timer cycling)", n)
	}
}

func TestNewTimerBornUnarmed(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.NewTimer(func() { fired = true })
	if tm.Active() {
		t.Fatal("fresh NewTimer is Active; want unarmed")
	}
	s.Run()
	if fired {
		t.Fatal("unarmed timer fired")
	}
}

func TestRescheduleArmsAndMoves(t *testing.T) {
	s := New(1)
	var fires []Time
	tm := s.NewTimer(func() { fires = append(fires, s.Now()) })

	// Arm, then move the pending deadline: only the moved time fires.
	tm.Reschedule(5 * Second)
	tm.Reschedule(2 * Second)
	// Re-arm from inside an event after the first firing.
	s.At(3*Second, func() { tm.RescheduleAfter(4 * Second) })
	s.Run()
	want := []Time{2 * Second, 7 * Second}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

func TestRescheduleAfterCancelRearms(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.NewTimer(func() { fired = true })
	tm.Reschedule(Second)
	tm.Cancel()
	tm.Reschedule(2 * Second)
	s.Run()
	if !fired {
		t.Fatal("cancelled-then-rescheduled timer did not fire")
	}
	if s.Now() != 2*Second {
		t.Fatalf("fired at %v, want 2s", s.Now())
	}
}

// TestRescheduleOrderingMatchesFreshEvent pins the dispatch-order contract:
// a rescheduled timer ties with other events at the same deadline exactly
// as if it had been scheduled at the moment of the Reschedule call.
func TestRescheduleOrderingMatchesFreshEvent(t *testing.T) {
	s := New(1)
	var order []string
	tm := s.NewTimer(func() { order = append(order, "timer") })
	tm.Reschedule(5 * Second) // pending early arm
	s.At(Second, func() {
		s.At(3*Second, func() { order = append(order, "before") })
		tm.Reschedule(3 * Second) // moved: now ties after "before"
		s.At(3*Second, func() { order = append(order, "after") })
	})
	s.Run()
	want := []string{"before", "timer", "after"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

func TestSchedulePanicsOnNilAndPast(t *testing.T) {
	s := New(1)
	mustPanic(t, "nil fn", func() { s.Schedule(Second, nil) })
	mustPanic(t, "nil arg fn", func() { s.ScheduleArg(Second, nil, 1) })
	mustPanic(t, "nil NewTimer fn", func() { s.NewTimer(nil) })
	s.At(2*Second, func() {
		mustPanic(t, "past Schedule", func() { s.Schedule(Second, func() {}) })
	})
	s.Run()
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}
