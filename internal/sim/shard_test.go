package sim

import (
	"reflect"
	"testing"
)

// TestShardGroupBarriersAndControls pins the coordinator contract: the
// exchange hook fires at every epoch barrier in order, controls run at the
// first barrier at or after their deadline in (deadline, scheduling
// order), past deadlines run at the next barrier, and a control may
// schedule further controls — including one already due, which still runs
// at the same barrier.
func TestShardGroupBarriersAndControls(t *testing.T) {
	sims := []*Simulator{New(1), New(2)}
	var barriers []Time
	g := NewShardGroup(sims, 100, func(b Time) { barriers = append(barriers, b) })
	defer g.Close()

	var fired []string
	g.ScheduleControl(250, func() { fired = append(fired, "late") })
	g.ScheduleControl(150, func() { fired = append(fired, "mid-first") })
	g.ScheduleControl(150, func() { fired = append(fired, "mid-second") })
	g.ScheduleControl(10, func() {
		fired = append(fired, "early")
		g.ScheduleControl(0, func() { fired = append(fired, "re-entrant") })
	})
	g.RunUntil(400)

	wantBarriers := []Time{100, 200, 300, 400}
	if !reflect.DeepEqual(barriers, wantBarriers) {
		t.Errorf("exchange barriers %v, want %v", barriers, wantBarriers)
	}
	wantFired := []string{"early", "re-entrant", "mid-first", "mid-second", "late"}
	if !reflect.DeepEqual(fired, wantFired) {
		t.Errorf("controls fired %v, want %v", fired, wantFired)
	}
	for i, s := range sims {
		if s.Now() != 400 {
			t.Errorf("shard %d at %v after RunUntil(400)", i, s.Now())
		}
	}
	if g.Now() != 400 {
		t.Errorf("group barrier clock at %v, want 400", g.Now())
	}
}

// TestShardGroupPartialEpoch: a run target that is not a multiple of the
// epoch still ends exactly at the target, with the final (short) barrier
// observed by the exchange hook.
func TestShardGroupPartialEpoch(t *testing.T) {
	sims := []*Simulator{New(1)}
	var barriers []Time
	g := NewShardGroup(sims, 100, func(b Time) { barriers = append(barriers, b) })
	defer g.Close()
	g.RunUntil(250)
	if !reflect.DeepEqual(barriers, []Time{100, 200, 250}) {
		t.Errorf("barriers %v, want [100 200 250]", barriers)
	}
	if sims[0].Now() != 250 {
		t.Errorf("shard at %v, want 250", sims[0].Now())
	}
}

// TestScheduleArgSilentNotCounted: silent timers dispatch like any other
// but stay out of Events() — the property that keeps a sharded run's
// event count invariant to how many handoff timers the shard count
// creates.
func TestScheduleArgSilentNotCounted(t *testing.T) {
	s := New(1)
	ran := 0
	s.ScheduleArgSilent(10, func(any) { ran++ }, nil)
	s.ScheduleArg(10, func(any) { ran++ }, nil)
	s.RunUntil(20)
	if ran != 2 {
		t.Fatalf("dispatched %d timers, want 2", ran)
	}
	if got := s.Events(); got != 1 {
		t.Errorf("Events() = %d, want 1 (silent timer must not count)", got)
	}
}
