package sim

import "math/bits"

// eventQueue is a hierarchical timing wheel over the simulator's native
// 1 ns tick. Eleven levels of 64 slots each cover the full non-negative
// Time range (6 bits per level, 11*6 = 66 >= 63 significant bits), so the
// top level plays the overflow role a bounded wheel would need a side list
// for: anything too far out for the inner wheels — up to and including the
// Never sentinel — parks there and cascades inward as the cursor advances.
//
// Placement: a timer lives at the level of the highest 6-bit group in
// which its deadline differs from the cursor (level 0 if equal), in the
// slot named by that group of the deadline. Because no queued deadline is
// ever behind the cursor, levels order strictly — every timer at level k
// fires before every timer at level k+1 — and within a level the occupied
// slots are strictly ahead of the cursor's group, so the lowest set bit of
// a level's occupancy bitmap names its earliest slot.
//
// The cursor advances only in pop, to the popped deadline — which the
// Simulator adopts as now before dispatching, so a later push can never
// need a slot behind the cursor (scheduling in the past panics). One
// advance crosses at most one group boundary per level; only the bucket
// the new cursor lands in at the highest crossed level can hold survivors
// (anything in a lower-level bucket of the old window would have been
// earlier than the popped minimum), so pop cascades exactly that one
// bucket down and the wheel is exact again.
//
// Buckets are intrusive doubly-linked Timer lists: push appends in O(1),
// cancellation and Reschedule unlink in O(1) with no tombstones. Append
// order is push order, which makes same-deadline dispatch FIFO without a
// sequence counter: equal deadlines always share a bucket at every level
// (identical bits), cascades preserve list order, and a rescheduled timer
// re-appends at the tail like a fresh push.
type eventQueue struct {
	cursor   Time
	count    int
	earliest *Timer // cached minimum; nil means unknown
	occupied [wheelLevels]uint64
	buckets  [wheelLevels][wheelSlots]bucket
}

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = (63 + wheelBits - 1) / wheelBits // covers all non-negative Time
)

// bucket is one wheel slot: an intrusive doubly-linked list of Timers in
// push order.
type bucket struct {
	head, tail *Timer
}

func (b *bucket) append(t *Timer) {
	t.bkt, t.next, t.prev = b, nil, b.tail
	if b.tail != nil {
		b.tail.next = t
	} else {
		b.head = t
	}
	b.tail = t
}

func (b *bucket) unlink(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		b.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		b.tail = t.prev
	}
	t.bkt, t.next, t.prev = nil, nil, nil
}

// place returns the wheel coordinates for deadline at: the level of the
// highest 6-bit group where at differs from the cursor, and at's group
// value there. at must not be behind the cursor.
func (q *eventQueue) place(at Time) (level, slot int) {
	d := uint64(at ^ q.cursor)
	if d != 0 {
		level = (bits.Len64(d) - 1) / wheelBits
	}
	return level, int(uint64(at)>>(uint(level)*wheelBits)) & wheelMask
}

func (q *eventQueue) Len() int { return q.count }

func (q *eventQueue) push(t *Timer) {
	level, slot := q.place(t.at)
	q.buckets[level][slot].append(t)
	q.occupied[level] |= 1 << uint(slot)
	q.count++
	if q.earliest != nil && t.at < q.earliest.at {
		q.earliest = t
	}
}

// peek returns the earliest event without removing it, or nil if empty.
func (q *eventQueue) peek() *Timer {
	if q.count == 0 {
		return nil
	}
	if q.earliest != nil {
		return q.earliest
	}
	for level := 0; level < wheelLevels; level++ {
		occ := q.occupied[level]
		if occ == 0 {
			continue
		}
		b := &q.buckets[level][bits.TrailingZeros64(occ)]
		best := b.head
		if level > 0 {
			// Mixed-deadline bucket: scan for the earliest. List order
			// is push order, so keeping the first of equals is FIFO.
			for t := best.next; t != nil; t = t.next {
				if t.at < best.at {
					best = t
				}
			}
		}
		q.earliest = best
		return best
	}
	return nil // unreachable: count > 0 implies an occupied slot
}

// pop removes and returns the earliest event, advancing the cursor to its
// deadline and cascading the one bucket the advance can strand. It must
// not be called on an empty queue.
func (q *eventQueue) pop() *Timer {
	t := q.peek()
	q.remove(t)
	prev := q.cursor
	q.cursor = t.at
	if d := uint64(prev ^ t.at); d != 0 {
		if level := (bits.Len64(d) - 1) / wheelBits; level > 0 {
			q.cascade(level, int(uint64(t.at)>>(uint(level)*wheelBits))&wheelMask)
		}
	}
	return t
}

// cascade drains the bucket the advanced cursor landed in at the highest
// crossed level: its timers now share that group with the cursor, so each
// re-places at a strictly lower level. List order is preserved, keeping
// same-deadline FIFO intact.
func (q *eventQueue) cascade(level, slot int) {
	b := &q.buckets[level][slot]
	if b.head == nil {
		return
	}
	q.occupied[level] &^= 1 << uint(slot)
	t := b.head
	b.head, b.tail = nil, nil
	for t != nil {
		next := t.next
		l, s := q.place(t.at)
		q.buckets[l][s].append(t)
		q.occupied[l] |= 1 << uint(s)
		t = next
	}
}

// remove unlinks a queued timer in O(1). The caller must ensure t is
// actually queued (t.bkt != nil).
func (q *eventQueue) remove(t *Timer) {
	b := t.bkt
	b.unlink(t)
	if b.head == nil {
		// Recover the coordinates from the deadline rather than storing
		// them: a queued timer's placement is a pure function of (at,
		// cursor), and at hasn't changed since push.
		level, slot := q.place(t.at)
		q.occupied[level] &^= 1 << uint(slot)
	}
	q.count--
	if t == q.earliest {
		q.earliest = nil
	}
}
