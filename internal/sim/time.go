package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, counted in nanoseconds from the start of
// the simulation. The zero Time is the simulation epoch.
type Time int64

// Duration units expressed as Time deltas. A Time and a duration share the
// representation, mirroring time.Duration, because the simulation epoch is
// always zero.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Never is a sentinel Time later than any schedulable event.
const Never Time = 1<<63 - 1

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hours reports t as floating-point hours.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// Duration converts t, interpreted as a span, to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t using time.Duration notation (e.g. "1m30s").
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return time.Duration(t).String()
}

// Scale returns t scaled by f, rounding toward zero. It is used for jitter
// and backoff computations.
func (t Time) Scale(f float64) Time { return Time(float64(t) * f) }

// FromSeconds converts floating-point seconds into a Time span.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromDuration converts a time.Duration into a Time span.
func FromDuration(d time.Duration) Time { return Time(d) }

func checkNonNegative(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative duration %d", int64(d)))
	}
}
