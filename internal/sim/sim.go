package sim

import "fmt"

// Simulator owns the virtual clock and the event queue. It is not safe for
// concurrent use: the whole simulation runs single-threaded, which is what
// makes runs bit-for-bit reproducible.
//
// Two scheduling families exist. At/After/Every return a *Timer handle the
// caller may Cancel at any point, so those Timers are never recycled. The
// pooled family — Schedule/ScheduleArg, which return no handle, and
// NewTimer+Reschedule, which reuse one handle for a timer's whole life —
// keeps steady-state event scheduling allocation-free: fired no-handle
// Timers return to a free list, and rescheduling re-arms in place.
type Simulator struct {
	now     Time
	queue   eventQueue
	stopped bool
	events  uint64 // total events dispatched, for reporting
	rng     *SeedSpace
	free    []*Timer // recycled no-handle Timers
	probes  any      // opaque probe-bus slot; see SetProbes
}

// New returns a Simulator whose random streams derive from seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: NewSeedSpace(seed)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Events returns the number of events dispatched so far.
func (s *Simulator) Events() uint64 { return s.events }

// Stream returns the named deterministic random stream. Streams with the
// same name on simulators built from the same seed produce identical
// sequences regardless of how many other streams exist.
func (s *Simulator) Stream(name string) *Rand { return s.rng.Stream(name) }

// SetProbes installs the run's probe bus on the simulator, where every
// layer built over this clock can find it (internal/probe.FromSim). The
// slot is deliberately untyped: sim is the bottom of the import graph, so
// it cannot name the concrete bus type internal/probe owns.
func (s *Simulator) SetProbes(v any) { s.probes = v }

// Probes returns the value installed by SetProbes (nil when the run
// carries no probe bus).
func (s *Simulator) Probes() any { return s.probes }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: it always indicates a protocol-logic bug. The
// returned Timer can cancel the event before it fires.
func (s *Simulator) At(at Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	t := &Timer{at: at, fn: fn, sim: s}
	s.queue.push(t)
	return t
}

// After schedules fn to run d from now. d must be non-negative.
func (s *Simulator) After(d Time, fn func()) *Timer {
	checkNonNegative(d)
	return s.At(s.now+d, fn)
}

// Schedule is the pooled fire-and-forget variant of At: no handle is
// returned, so the Timer cannot be cancelled — and, because nothing can
// reference it after it fires, it is recycled through the simulator's free
// list. Dispatch order is identical to At (same-deadline events fire FIFO
// in push order across both families).
func (s *Simulator) Schedule(at Time, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	t := s.pooledTimer(at)
	t.fn = fn
	s.queue.push(t)
}

// ScheduleArg is Schedule for a callback taking one argument. Passing the
// argument through the Timer instead of a closure keeps hot schedulers
// (e.g. the medium's per-transmission completion events) from allocating a
// closure per event; with a pointer argument the call is allocation-free.
func (s *Simulator) ScheduleArg(at Time, fn func(any), arg any) {
	if fn == nil {
		panic("sim: nil event function")
	}
	t := s.pooledTimer(at)
	t.fnArg, t.arg = fn, arg
	s.queue.push(t)
}

// ScheduleArgSilent is ScheduleArg for bookkeeping events that must not
// count toward Events(). The sharded medium schedules its cross-shard
// handoff applies/resolves with it: how many such events exist depends on
// the shard count, while Events() is part of the run fingerprint and must
// stay invariant for any number of shards. Dispatch ordering is identical
// to ScheduleArg (same wheel, same FIFO-at-deadline contract).
func (s *Simulator) ScheduleArgSilent(at Time, fn func(any), arg any) {
	if fn == nil {
		panic("sim: nil event function")
	}
	t := s.pooledTimer(at)
	t.fnArg, t.arg = fn, arg
	t.silent = true
	s.queue.push(t)
}

func (s *Simulator) pooledTimer(at Time) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	var t *Timer
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free = s.free[:n-1]
		*t = Timer{sim: s, pooled: true}
	} else {
		t = &Timer{sim: s, pooled: true}
	}
	t.at = at
	return t
}

func (s *Simulator) release(t *Timer) {
	t.fn, t.fnArg, t.arg = nil, nil, nil // drop references, keep the Timer
	s.free = append(s.free, t)
}

// NewTimer returns an unarmed timer bound to fn, for callers that re-arm
// one logical timeout over and over (MAC backoff chains, Trickle beacons):
// allocate once, then Reschedule each occurrence. The zero-cost
// alternative to a cancel-and-After pair per occurrence.
func (s *Simulator) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	return &Timer{sim: s, fn: fn, fired: true} // fired: born unarmed
}

// Every schedules fn to run every interval, starting at start. The returned
// Timer cancels the whole series. Each firing reuses the Timer, so holding
// the pointer is enough to stop the periodic task.
func (s *Simulator) Every(start, interval Time, fn func()) *Timer {
	checkNonNegative(interval)
	t := &Timer{sim: s, fn: fn, repeat: interval}
	t.at = start
	if start < s.now {
		panic(fmt.Sprintf("sim: periodic start %v before now %v", start, s.now))
	}
	s.queue.push(t)
	return t
}

// Step dispatches the next pending event, if any, advancing the clock to its
// deadline. It reports whether an event ran.
func (s *Simulator) Step() bool {
	t := s.queue.peek()
	if t == nil {
		return false
	}
	s.queue.pop()
	s.now = t.at
	if !t.silent {
		s.events++
	}
	fn, fnArg, arg := t.fn, t.fnArg, t.arg
	if t.repeat > 0 && !t.cancelled {
		t.at += t.repeat
		s.queue.push(t)
	} else {
		t.fired = true
		if t.pooled {
			// Recycle before dispatch so the callback itself can reuse the
			// slot for whatever it schedules next.
			s.release(t)
		}
	}
	if fnArg != nil {
		fnArg(arg)
	} else {
		fn()
	}
	return true
}

// Run dispatches events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil dispatches events with deadlines <= t, then sets the clock to t.
// Events scheduled exactly at t do run.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		next := s.queue.peek()
		if next == nil || next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by span d.
func (s *Simulator) RunFor(d Time) {
	checkNonNegative(d)
	s.RunUntil(s.now + d)
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of scheduled events (including cancelled timers
// not yet reaped — cancellation removes immediately, so this is exact).
func (s *Simulator) Pending() int { return s.queue.Len() }

// Timer is a handle to a scheduled event. While queued it is a node of an
// intrusive timing-wheel bucket list (next/prev/bkt); bkt non-nil is the
// queued state.
type Timer struct {
	at         Time
	next, prev *Timer
	bkt        *bucket
	fn         func()
	fnArg      func(any)
	arg        any
	sim        *Simulator
	repeat     Time
	fired      bool
	cancelled  bool
	pooled     bool
	silent     bool // excluded from Events(); see ScheduleArgSilent
}

// Cancel removes the event from the queue. It reports whether the event was
// still pending (i.e. the cancellation had effect). Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() bool {
	if t.cancelled || t.fired || t.bkt == nil && t.repeat == 0 {
		return false
	}
	t.cancelled = true
	if t.bkt != nil {
		t.sim.queue.remove(t)
		return true
	}
	return false
}

// Active reports whether the timer is still scheduled to fire.
func (t *Timer) Active() bool { return !t.cancelled && !t.fired }

// Deadline returns the next firing time.
func (t *Timer) Deadline() Time { return t.at }

// Reschedule (re-)arms the timer to fire its function at absolute time at,
// whether it is currently pending, already fired, cancelled, or fresh from
// NewTimer. A pending timer is moved in place — an O(1) bucket unlink and
// re-append instead of the remove-push pair of the Cancel-plus-After
// idiom, and no allocation ever. Dispatch ordering matches a freshly
// scheduled event exactly: the move re-appends like a new push, so it
// joins the FIFO tail of its deadline.
func (t *Timer) Reschedule(at Time) {
	s := t.sim
	if at < s.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", at, s.now))
	}
	if t.pooled {
		panic("sim: Reschedule on a pooled (no-handle) timer")
	}
	if t.bkt != nil {
		s.queue.remove(t) // before t.at changes: removal recovers the slot from it
	}
	t.at = at
	t.fired, t.cancelled = false, false
	s.queue.push(t)
}

// RescheduleAfter re-arms the timer d from now. d must be non-negative.
func (t *Timer) RescheduleAfter(d Time) {
	checkNonNegative(d)
	t.Reschedule(t.sim.now + d)
}
