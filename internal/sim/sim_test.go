package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New(1)
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var got []Time
	for _, at := range []Time{5 * Second, 1 * Second, 3 * Second, 2 * Second, 4 * Second} {
		at := at
		s.At(at, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{1 * Second, 2 * Second, 3 * Second, 4 * Second, 5 * Second}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameDeadlineFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (same-deadline events must be FIFO)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var fired Time = -1
	s.At(2*Second, func() {
		s.After(3*Second, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 5*Second {
		t.Fatalf("nested After fired at %v, want 5s", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.At(Second, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel reported no effect on a pending timer")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported effect")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	s := New(1)
	var fired []int
	timers := make([]*Timer, 20)
	for i := 0; i < 20; i++ {
		i := i
		timers[i] = s.At(Time(i+1)*Millisecond, func() { fired = append(fired, i) })
	}
	timers[7].Cancel()
	timers[0].Cancel()
	timers[19].Cancel()
	s.Run()
	if len(fired) != 17 {
		t.Fatalf("fired %d events, want 17", len(fired))
	}
	for _, v := range fired {
		if v == 7 || v == 0 || v == 19 {
			t.Fatalf("cancelled timer %d fired", v)
		}
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New(1)
	var fired []Time
	for i := 1; i <= 10; i++ {
		at := Time(i) * Second
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(5 * Second)
	if len(fired) != 5 {
		t.Fatalf("RunUntil(5s) fired %d events, want 5 (inclusive boundary)", len(fired))
	}
	if s.Now() != 5*Second {
		t.Fatalf("Now() = %v after RunUntil(5s)", s.Now())
	}
	s.RunFor(5 * Second)
	if len(fired) != 10 {
		t.Fatalf("after RunFor(5s) fired %d, want 10", len(fired))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := New(1)
	s.RunUntil(42 * Second)
	if s.Now() != 42*Second {
		t.Fatalf("Now() = %v, want 42s", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 100; i++ {
		s.At(Time(i)*Millisecond, func() {
			count++
			if count == 10 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 10 {
		t.Fatalf("Run dispatched %d events after Stop, want 10", count)
	}
	s.Run()
	if count != 100 {
		t.Fatalf("resumed Run dispatched %d total, want 100", count)
	}
}

func TestEveryRepeats(t *testing.T) {
	s := New(1)
	var at []Time
	tm := s.Every(Second, 2*Second, func() { at = append(at, s.Now()) })
	s.RunUntil(10 * Second)
	want := []Time{1 * Second, 3 * Second, 5 * Second, 7 * Second, 9 * Second}
	if len(at) != len(want) {
		t.Fatalf("periodic fired %d times, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, at[i], want[i])
		}
	}
	tm.Cancel()
	s.RunUntil(20 * Second)
	if len(at) != len(want) {
		t.Fatal("periodic fired after Cancel")
	}
}

func TestPeriodicCancelFromCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tm *Timer
	tm = s.Every(0, Second, func() {
		count++
		if count == 3 {
			tm.Cancel()
		}
	})
	s.RunUntil(10 * Second)
	if count != 3 {
		t.Fatalf("periodic fired %d times, want 3", count)
	}
}

func TestEventCounting(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.At(Time(i)*Millisecond, func() {})
	}
	s.Run()
	if s.Events() != 5 {
		t.Fatalf("Events() = %d, want 5", s.Events())
	}
}

// Property: for any batch of deadlines, dispatch order equals the sorted
// order of those deadlines.
func TestPropertyDispatchOrderIsSorted(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 256 {
			raw = raw[:256]
		}
		s := New(7)
		var fired []Time
		for _, r := range raw {
			at := Time(r % 1_000_000)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the indexed heap stays consistent under random interleavings of
// schedule and cancel.
func TestPropertyHeapConsistencyUnderCancel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(uint64(seed))
		var live []*Timer
		fired := 0
		expect := 0
		for i := 0; i < 300; i++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				tm := s.At(Time(rng.Intn(1_000_000)), func() { fired++ })
				expect++
				live = append(live, tm)
			} else {
				k := rng.Intn(len(live))
				if live[k].Cancel() {
					expect--
				}
				live = append(live[:k], live[k+1:]...)
			}
		}
		s.Run()
		return fired == expect && s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsAreIndependentOfCreationOrder(t *testing.T) {
	a := NewSeedSpace(99)
	_ = a.Stream("x")
	aPhy := a.Stream("phy")
	seqA := []float64{aPhy.Float64(), aPhy.Float64(), aPhy.Float64()}

	b := NewSeedSpace(99)
	bPhy := b.Stream("phy") // created first this time
	_ = b.Stream("x")
	seqB := []float64{bPhy.Float64(), bPhy.Float64(), bPhy.Float64()}

	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("stream %q differs by creation order at %d: %v vs %v", "phy", i, seqA[i], seqB[i])
		}
	}
}

func TestStreamIsMemoized(t *testing.T) {
	ss := NewSeedSpace(5)
	if ss.Stream("a") != ss.Stream("a") {
		t.Fatal("same name returned distinct streams")
	}
	if ss.Stream("a") == ss.Stream("b") {
		t.Fatal("distinct names returned the same stream")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	r1 := NewSeedSpace(1).Stream("s")
	r2 := NewSeedSpace(2).Stream("s")
	same := 0
	for i := 0; i < 16; i++ {
		if r1.Int63() == r2.Int63() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("streams from different master seeds are identical")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRand(4)
	n, hits := 100_000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bernoulli(0.3) frequency = %.4f, want ~0.30", got)
	}
}

func TestUniformTimeBounds(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		v := r.UniformTime(Second, 2*Second)
		if v < Second || v >= 2*Second {
			t.Fatalf("UniformTime out of range: %v", v)
		}
	}
	if r.UniformTime(Second, Second) != Second {
		t.Fatal("degenerate UniformTime should return lo")
	}
}

func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{90 * Second, "1m30s"},
		{Never, "never"},
		{1500 * Millisecond, "1.5s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Error("FromSeconds(1.5) wrong")
	}
	if (2 * Hour).Hours() != 2 {
		t.Error("Hours() wrong")
	}
	if (250 * Millisecond).Seconds() != 0.25 {
		t.Error("Seconds() wrong")
	}
}

func BenchmarkScheduleDispatch(b *testing.B) {
	// The steady-state scheduling hot path: the pooled no-handle family
	// every per-event layer (medium completions, CTP retries) uses. Must
	// stay 0 allocs/op — TestScheduleDispatchZeroAlloc pins it.
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(s.Now()+Time(i%1000)*Microsecond, fn)
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
}

func TestScheduleDispatchZeroAlloc(t *testing.T) {
	// Pin the scheduler hot path at zero allocations per schedule+dispatch
	// so a regression (a closure creeping into Step, a Timer escaping the
	// free list, wheel bookkeeping allocating) fails loudly. Warm the free
	// list first: the very first pooled Timer is a real allocation.
	s := New(1)
	fn := func() {}
	s.Schedule(s.Now(), fn)
	s.Run()
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(s.Now()+Time(i%1000)*Microsecond, fn)
		if i%64 == 63 {
			s.Run()
		}
		i++
	})
	s.Run()
	if allocs != 0 {
		t.Fatalf("schedule+dispatch hot path allocates %.1f allocs/op, want 0", allocs)
	}
}
