// Package sim implements the discrete-event simulation engine that every
// other subsystem in this repository runs on.
//
// The engine is deliberately small: a virtual clock, an event queue ordered
// by (time, insertion sequence), cancellable timers, and deterministic
// pseudo-random streams derived from a single master seed. TinyOS programs
// are event-driven state machines; running their Go ports on this engine
// preserves those semantics without threads or wall-clock time.
//
// All times are virtual. Library code must never consult the wall clock.
package sim
