package sim

import (
	"math"
	"testing"
)

// drawMixed exercises every distribution the estimators and models use,
// returning a digest of the values drawn so streams can be compared
// bit-for-bit.
func drawMixed(r *Rand, n int) []float64 {
	out := make([]float64, 0, n*6)
	for i := 0; i < n; i++ {
		out = append(out,
			r.Float64(),
			float64(r.Intn(97)),
			boolAsFloat(r.Bernoulli(0.3)),
			r.Normal(1, 2),
			r.Exp(5),
			float64(r.Int63n(1<<40)),
		)
	}
	return out
}

func boolAsFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func sameDraws(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: draw counts differ: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: draw %d differs: %x vs %x", name, i, a[i], b[i])
		}
	}
}

// TestCountedRandMatchesPlain pins that a counted stream yields exactly the
// plain stream's values for every Int63-derived draw — the property that
// lets serve instances swap in counted streams without changing estimator
// behavior.
func TestCountedRandMatchesPlain(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF} {
		plain := NewRand(seed)
		counted := NewCountedRand(seed)
		sameDraws(t, "counted vs plain", drawMixed(plain, 200), drawMixed(counted, 200))
	}
}

// TestCountedRandRestoreMidStream pins the snapshot/restore contract: a
// stream restored at an arbitrary position continues bit-identically to the
// original.
func TestCountedRandRestoreMidStream(t *testing.T) {
	orig := NewCountedRand(7)
	drawMixed(orig, 123) // advance to an arbitrary mid-stream position

	seed, draws, ok := orig.SnapshotState()
	if !ok {
		t.Fatal("counted rand reported not snapshotable")
	}
	if seed != 7 {
		t.Fatalf("seed = %d, want 7", seed)
	}
	if draws == 0 {
		t.Fatal("draw position did not advance")
	}

	restored := RestoreCountedRand(seed, draws)
	if _, rd, _ := restored.SnapshotState(); rd != draws {
		t.Fatalf("restored position %d, want %d", rd, draws)
	}
	sameDraws(t, "restored vs original", drawMixed(orig, 200), drawMixed(restored, 200))
}

// TestPlainRandNotSnapshotable pins that ordinary simulation streams report
// themselves unobservable instead of returning a wrong position.
func TestPlainRandNotSnapshotable(t *testing.T) {
	if _, _, ok := NewRand(1).SnapshotState(); ok {
		t.Fatal("plain rand claims to be snapshotable")
	}
}

// TestCountedRandZeroDrawRestore: restoring at position zero is the fresh
// stream.
func TestCountedRandZeroDrawRestore(t *testing.T) {
	sameDraws(t, "zero-draw restore",
		drawMixed(NewCountedRand(9), 50), drawMixed(RestoreCountedRand(9, 0), 50))
}
