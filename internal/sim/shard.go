package sim

import (
	"fmt"
	"math"
	"sync"
)

// ShardGroup advances several Simulators (one per spatial shard) in
// lockstep epochs. Within an epoch every shard dispatches its own wheel on
// its own goroutine; at each epoch boundary all shards block on a barrier
// and the coordinator runs the exchange hook (single-threaded, every shard
// idle) which migrates cross-shard effects — in this repo, the medium's
// frame handoff merge. The epoch length must be a conservative lookahead:
// no event may affect another shard sooner than one epoch after it is
// created, which is what makes the barrier cadence safe.
//
// Determinism: each shard's wheel is single-threaded and processes an
// identical event sequence regardless of how the OS schedules the worker
// goroutines, and the exchange hook runs between barriers where every
// shard has reached exactly the same virtual time. Everything the group
// does is a pure function of virtual time, so results do not depend on
// wall-clock interleaving — and, with an exchange hook that merges in a
// canonical order, not on the shard count either.
type ShardGroup struct {
	sims     []*Simulator
	epoch    Time
	exchange func(barrier Time)
	cur      Time // last barrier reached

	ctls    []groupControl
	ctlSeq  uint64
	nextCtl Time

	work   []chan Time // one per worker shard (index 1..n-1)
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// groupControl is a coordinator-side event: it runs at the first epoch
// barrier at or after its deadline, while every shard is idle. Samplers and
// scripted dynamics use these in sharded runs so that cross-shard state
// (channel modifiers, radio power, tree snapshots) is only touched
// single-threaded.
type groupControl struct {
	at   Time
	seq  uint64
	fn   func()
	done bool
}

// NewShardGroup builds a group over the given simulators. epoch is the
// conservative lookahead; exchange (may be nil) runs at every epoch
// barrier with all shards stopped at exactly the barrier time. Close must
// be called when done to stop the worker goroutines.
func NewShardGroup(sims []*Simulator, epoch Time, exchange func(barrier Time)) *ShardGroup {
	if len(sims) == 0 {
		panic("sim: ShardGroup needs at least one shard")
	}
	if epoch <= 0 {
		panic(fmt.Sprintf("sim: ShardGroup epoch %v must be positive", epoch))
	}
	g := &ShardGroup{sims: sims, epoch: epoch, exchange: exchange, nextCtl: math.MaxInt64}
	g.done = make(chan struct{}, len(sims)-1)
	for i := 1; i < len(sims); i++ {
		ch := make(chan Time)
		g.work = append(g.work, ch)
		g.wg.Add(1)
		go func(s *Simulator, ch chan Time) {
			defer g.wg.Done()
			for target := range ch {
				s.RunUntil(target)
				g.done <- struct{}{}
			}
		}(g.sims[i], ch)
	}
	return g
}

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.sims) }

// Epoch returns the barrier cadence.
func (g *ShardGroup) Epoch() Time { return g.epoch }

// Now returns the last barrier time reached.
func (g *ShardGroup) Now() Time { return g.cur }

// Events returns the total counted events dispatched across all shards.
func (g *ShardGroup) Events() uint64 {
	var n uint64
	for _, s := range g.sims {
		n += s.Events()
	}
	return n
}

// ScheduleControl schedules fn to run on the coordinator at the first
// epoch barrier at or after at (deadlines in the past run at the next
// barrier). Controls run in (deadline, scheduling order), after the
// exchange hook, with every shard idle at the barrier time — the sharded
// analogue of Simulator.At for run-level machinery that must see or mutate
// cross-shard state. A control may schedule further controls.
func (g *ShardGroup) ScheduleControl(at Time, fn func()) {
	if fn == nil {
		panic("sim: nil control function")
	}
	g.ctlSeq++
	g.ctls = append(g.ctls, groupControl{at: at, seq: g.ctlSeq, fn: fn})
	if at < g.nextCtl {
		g.nextCtl = at
	}
}

func (g *ShardGroup) runControls(barrier Time) {
	if g.nextCtl > barrier {
		return
	}
	// Pick due controls in (deadline, scheduling order); the list is tiny
	// (samplers + scripted dynamics), so a scan per pick is fine and keeps
	// re-entrant scheduling (a sampler re-arming itself) trivially correct.
	for {
		best := -1
		for i := range g.ctls {
			c := &g.ctls[i]
			if c.done || c.at > barrier {
				continue
			}
			if best < 0 || c.at < g.ctls[best].at || (c.at == g.ctls[best].at && c.seq < g.ctls[best].seq) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		g.ctls[best].done = true
		g.ctls[best].fn()
	}
	live := g.ctls[:0]
	g.nextCtl = math.MaxInt64
	for _, c := range g.ctls {
		if c.done {
			continue
		}
		live = append(live, c)
		if c.at < g.nextCtl {
			g.nextCtl = c.at
		}
	}
	g.ctls = live
}

// runShards advances every shard to target in parallel and waits for all.
func (g *ShardGroup) runShards(target Time) {
	for _, ch := range g.work {
		ch <- target
	}
	g.sims[0].RunUntil(target)
	for range g.work {
		<-g.done
	}
}

// RunUntil advances the whole group to virtual time t: repeated epochs of
// parallel intra-shard dispatch to one tick before each barrier, then the
// exchange hook and due controls at the barrier. Events scheduled exactly
// at t do run, matching Simulator.RunUntil.
func (g *ShardGroup) RunUntil(t Time) {
	if g.closed {
		panic("sim: RunUntil on a closed ShardGroup")
	}
	for g.cur < t {
		b := g.cur + g.epoch
		if b > t {
			b = t
		}
		// Stop one tick short of the barrier: events at exactly b may be
		// created by the exchange (handoff applies land at start+epoch >=
		// b), so b itself is dispatched only after the exchange has run.
		g.runShards(b - 1)
		if g.exchange != nil {
			g.exchange(b)
		}
		g.runControls(b)
		g.cur = b
	}
	g.runShards(t)
}

// Close stops the worker goroutines. The group must not be used after.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.work {
		close(ch)
	}
	g.wg.Wait()
}
