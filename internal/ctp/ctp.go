// Package ctp implements the Collection Tree Protocol (TEP 123): an
// address-free anycast collection protocol in which every node maintains a
// route (a parent and a path-ETX cost) toward the root, beacons its cost
// with a Trickle-style adaptive timer, and forwards data packets hop by hop
// with per-hop retransmissions.
//
// The routing engine supplies the network layer's two bits of the 4B
// design: it pins its current parent in the link estimator's table (pin
// bit) and implements core.Comparer to answer the estimator's compare-bit
// queries against its routing table. The forwarding engine feeds the ack
// bit for every data transmission back to the estimator.
package ctp

import (
	"math"

	"fourbit/internal/core"
	"fourbit/internal/mac"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
)

// Config parameterizes CTP. Defaults mirror the TinyOS implementation.
type Config struct {
	BeaconMin sim.Time // Trickle minimum beaconing interval
	BeaconMax sim.Time // Trickle maximum beaconing interval
	// ParentSwitchThreshold is the ETX improvement a candidate must offer
	// before the node abandons its current parent (route hysteresis).
	ParentSwitchThreshold float64
	// MaxRetries bounds transmissions per data packet at each hop.
	MaxRetries    int
	RetryDelayMin sim.Time
	RetryDelayMax sim.Time
	QueueSize     int
	DupCacheSize  int
	// AgeFactor scales the current beacon interval into the silence budget
	// passed to the estimator's aging pass.
	AgeFactor float64
	// MaxTHL drops packets that have lived too many hops (loop damping).
	MaxTHL    uint8
	CollectID uint8
}

// DefaultConfig returns TinyOS-like CTP parameters.
func DefaultConfig() Config {
	return Config{
		BeaconMin:             125 * sim.Millisecond,
		BeaconMax:             128 * sim.Second,
		ParentSwitchThreshold: 1.5,
		MaxRetries:            30,
		// Retries are paced at forwarding-timer granularity (as in the
		// TinyOS implementation): spacing retransmissions out rides
		// through short interference bursts instead of burning the whole
		// retry budget inside one.
		RetryDelayMin: 20 * sim.Millisecond,
		RetryDelayMax: 90 * sim.Millisecond,
		QueueSize:     12,
		DupCacheSize:  64,
		AgeFactor:     2.5,
		MaxTHL:        250,
		CollectID:     1,
	}
}

// Stats counts per-node CTP activity.
type Stats struct {
	Generated     uint64 // client packets accepted from the application
	DeliveredRoot uint64 // data packets delivered at the root
	Forwarded     uint64 // data packets passed on toward the root
	BeaconsSent   uint64
	ParentChanges uint64
	TrickleResets uint64
	LoopsDetected uint64
	DupsDropped   uint64
	DropsQueue    uint64 // enqueue failures (queue full / no room)
	DropsRetry    uint64 // packets abandoned after MaxRetries
	DropsTHL      uint64
}

// Deliver is the root's upward delivery callback.
type Deliver func(origin packet.Addr, originSeq uint8, thl uint8, data []byte)

// routeEntry is what we know about a neighbor's advertised route. Entries
// live in a dense array indexed by neighbor address (addresses are small
// integers); known marks occupied slots. The array layout keeps parent
// selection — which runs on every beacon and every data transmission —
// free of map hashing.
type routeEntry struct {
	known     bool
	cost      float64 // advertised path ETX
	parent    packet.Addr
	lastHeard sim.Time
}

const noCost = math.MaxFloat64

// invalidETX is the fixed-point wire value advertising "no route".
const invalidETX = 0xFFFF

// Node is one CTP instance: routing engine + forwarding engine.
type Node struct {
	clock  *sim.Simulator
	m      *mac.MAC
	est    core.LinkEstimator
	cfg    Config
	self   packet.Addr
	isRoot bool
	rng    *sim.Rand
	probes *probe.Bus

	deliver Deliver

	// Routing engine state.
	routes        []routeEntry // dense, indexed by neighbor address
	parent        packet.Addr
	cost          float64
	interval      sim.Time
	beacon        *sim.Timer
	started       bool
	lastLoopReset sim.Time
	leBuf         packet.LEFrame // scratch for beacon decoding

	// Forwarding engine state.
	queue     []*packet.CTPData
	sending   bool
	attempts  int
	dup       *dupCache
	originSeq uint8

	// Steady-state scratch: the per-send closures, buffers and envelopes
	// that used to be allocated per beacon / per data packet. The MAC
	// serializes transmissions (Busy), so one of each suffices; queued
	// packets own their bytes via the envelope free list, so nothing
	// aliases a reused buffer.
	pumpFn     func()             // pooled-timer callback for retry pacing
	beaconDone func(mac.TxResult) // beacon Send completion, built once
	dataDone   func(mac.TxResult) // data Send completion, built once
	txParent   packet.Addr        // Dst of the in-flight data frame
	txFrame    packet.Frame       // scratch frame for beacon + data sends
	cbBuf      []byte             // scratch: encoded CTPBeacon
	encBuf     []byte             // scratch: encoded LE envelope / data payload
	rxData     packet.CTPData     // scratch for data-frame decoding
	envFree    []*packet.CTPData  // recycled forwarding-queue envelopes

	Stats Stats
}

// New wires a CTP node onto its MAC and link estimator — any
// core.LinkEstimator; the router is estimator-agnostic. The node registers
// itself as the MAC's receiver and as the estimator's compare-bit provider
// (estimators without a compare bit ignore the registration). Call Start
// to boot it.
func New(clock *sim.Simulator, m *mac.MAC, est core.LinkEstimator, isRoot bool, cfg Config, rng *sim.Rand) *Node {
	n := &Node{
		clock:  clock,
		m:      m,
		est:    est,
		cfg:    cfg,
		self:   m.Addr(),
		isRoot: isRoot,
		rng:    rng,
		probes: probe.FromSim(clock),
		parent: packet.None,
		cost:   noCost,
		dup:    newDupCache(cfg.DupCacheSize),
	}
	if isRoot {
		n.cost = 0
	}
	n.beacon = clock.NewTimer(n.beaconFire)
	n.pumpFn = n.pump
	n.beaconDone = func(mac.TxResult) { n.pump() }
	n.dataDone = func(res mac.TxResult) { n.onDataTxDone(n.txParent, res) }
	m.OnReceive(n.onFrame)
	est.SetComparer(n)
	return n
}

// Addr returns the node's address.
func (n *Node) Addr() packet.Addr { return n.self }

// Parent returns the current parent (packet.None when routeless).
func (n *Node) Parent() packet.Addr { return n.parent }

// Cost returns the node's current path ETX (0 at the root); the boolean is
// false while the node has no route.
func (n *Node) Cost() (float64, bool) {
	if n.cost == noCost {
		return 0, false
	}
	return n.cost, true
}

// QueueLen returns the forwarding queue occupancy.
func (n *Node) QueueLen() int { return len(n.queue) }

// Estimator returns the node's link estimator (for metrics and tests).
func (n *Node) Estimator() core.LinkEstimator { return n.est }

// OnDeliver installs the root's delivery callback.
func (n *Node) OnDeliver(fn Deliver) { n.deliver = fn }

// Start boots the routing engine.
func (n *Node) Start() {
	if n.started {
		return
	}
	n.started = true
	n.trickleReset()
}

// Send accepts a client packet for collection. At the root it loops back
// directly to the delivery callback.
func (n *Node) Send(data []byte) bool {
	if !n.started {
		return false
	}
	n.originSeq++
	n.Stats.Generated++
	if n.isRoot {
		n.Stats.DeliveredRoot++
		if n.deliver != nil {
			n.deliver(n.self, n.originSeq, 0, data)
		}
		return true
	}
	// The packet owns a copy of data in a recycled envelope: clients (the
	// collect sources) reuse their encode buffers, so the queue must not
	// alias caller memory.
	env := n.newEnvelope()
	env.Origin, env.OriginSeq, env.CollectID = n.self, n.originSeq, n.cfg.CollectID
	env.Data = append(env.Data[:0], data...)
	if !n.enqueue(env) {
		n.releaseEnvelope(env)
		return false
	}
	n.pump()
	return true
}

// newEnvelope returns a queue-owned CTPData, recycled when possible. Its
// Data slice keeps its backing array across recycling, so steady-state
// forwarding allocates nothing.
func (n *Node) newEnvelope() *packet.CTPData {
	if k := len(n.envFree); k > 0 {
		e := n.envFree[k-1]
		n.envFree = n.envFree[:k-1]
		return e
	}
	return &packet.CTPData{}
}

// releaseEnvelope recycles an envelope once it leaves the queue.
func (n *Node) releaseEnvelope(d *packet.CTPData) {
	buf := d.Data
	*d = packet.CTPData{}
	if buf != nil {
		d.Data = buf[:0]
	}
	n.envFree = append(n.envFree, d)
}

// onFrame dispatches MAC deliveries. A node that has not booted hears
// nothing (boot staggering is real: the radio of an unbooted mote is off).
func (n *Node) onFrame(f *packet.Frame, info phy.RxInfo) {
	if !n.started {
		return
	}
	switch f.Type {
	case packet.TypeBeacon:
		n.onBeaconFrame(f, info)
	case packet.TypeData:
		n.onDataFrame(f, info)
	}
}
