package ctp

import (
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/mac"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
)

// rig builds a CTP network over a quiet, deterministic channel with
// arbitrary node positions.
type rig struct {
	clock *sim.Simulator
	med   *phy.Medium
	ch    *phy.Channel
	nodes []*Node
	macs  []*mac.MAC
	ests  []*core.Estimator
}

func newRig(t *testing.T, seed uint64, positions [][2]float64, cfg Config) *rig {
	t.Helper()
	n := len(positions)
	clock := sim.New(seed)
	p := phy.DefaultParams()
	p.ShadowSigmaDB, p.TxVarSigmaDB, p.FadeSigmaDB, p.NoiseDriftSigmaDB = 0, 0, 0, 0
	p.NoiseBurstAmpDB, p.PacketJitterSigmaDB = 0, 0
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dx := positions[i][0] - positions[j][0]
			dy := positions[i][1] - positions[j][1]
			dist[i][j] = sqrt(dx*dx + dy*dy)
		}
	}
	seeds := sim.NewSeedSpace(seed)
	ch := phy.NewChannel(dist, nil, p, seeds)
	med := phy.NewMedium(clock, ch, phy.DefaultRadioParams(), phy.DefaultLQIParams(), seeds)
	r := &rig{clock: clock, med: med, ch: ch}
	for i := 0; i < n; i++ {
		m := mac.New(clock, med.Radio(i), packet.Addr(i), mac.DefaultParams(), seeds.Stream("mac"))
		est := core.New(packet.Addr(i), core.DefaultConfig(), nil, seeds.Stream("est"))
		nd := New(clock, m, est, i == 0, cfg, seeds.Stream("ctp"))
		r.nodes = append(r.nodes, nd)
		r.macs = append(r.macs, m)
		r.ests = append(r.ests, est)
	}
	return r
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

func (r *rig) startAll() {
	for _, nd := range r.nodes {
		nd.Start()
	}
}

func TestRouteFormationOnLine(t *testing.T) {
	r := newRig(t, 1, [][2]float64{{0, 0}, {42, 0}, {84, 0}}, DefaultConfig())
	r.startAll()
	r.clock.RunUntil(30 * sim.Second)
	if r.nodes[1].Parent() != 0 {
		t.Fatalf("node 1 parent = %v, want 0", r.nodes[1].Parent())
	}
	if r.nodes[2].Parent() != 1 {
		t.Fatalf("node 2 parent = %v, want 1", r.nodes[2].Parent())
	}
	c1, ok1 := r.nodes[1].Cost()
	c2, ok2 := r.nodes[2].Cost()
	if !ok1 || !ok2 {
		t.Fatal("costs not established")
	}
	if !(c2 > c1 && c1 >= 1) {
		t.Fatalf("gradient broken: cost1=%.2f cost2=%.2f", c1, c2)
	}
}

func TestRootCostIsZeroAndStable(t *testing.T) {
	r := newRig(t, 2, [][2]float64{{0, 0}, {20, 0}}, DefaultConfig())
	r.startAll()
	r.clock.RunUntil(time30s())
	if c, ok := r.nodes[0].Cost(); !ok || c != 0 {
		t.Fatalf("root cost = (%v,%v), want (0,true)", c, ok)
	}
	if r.nodes[0].Parent() != packet.None {
		t.Fatal("root acquired a parent")
	}
}

func time30s() sim.Time { return 30 * sim.Second }

func TestDataDeliveryAndAckBitFeedback(t *testing.T) {
	r := newRig(t, 3, [][2]float64{{0, 0}, {30, 0}}, DefaultConfig())
	var got [][]byte
	r.nodes[0].OnDeliver(func(origin packet.Addr, seq uint8, thl uint8, data []byte) {
		if origin != 1 {
			t.Errorf("origin = %v", origin)
		}
		got = append(got, data)
	})
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	for i := 0; i < 20; i++ {
		r.clock.After(sim.Time(i)*sim.Second, func() { r.nodes[1].Send([]byte{byte(i)}) })
	}
	r.clock.RunUntil(40 * sim.Second)
	if len(got) != 20 {
		t.Fatalf("delivered %d/20", len(got))
	}
	// The ack bit must have produced unicast windows at node 1's estimator.
	if r.ests[1].Stats.UnicastWindows == 0 {
		t.Fatal("no unicast windows fed to the estimator")
	}
	if r.nodes[1].Stats.Forwarded != 20 {
		t.Fatalf("Forwarded = %d", r.nodes[1].Stats.Forwarded)
	}
}

func TestQueueOverflowDropsAndCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSize = 2
	r := newRig(t, 4, [][2]float64{{0, 0}, {30, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(5 * sim.Second)
	// Burst 10 sends back-to-back: queue 2 cannot hold them.
	accepted := 0
	r.clock.After(0, func() {
		for i := 0; i < 10; i++ {
			if r.nodes[1].Send([]byte{byte(i)}) {
				accepted++
			}
		}
	})
	r.clock.RunUntil(20 * sim.Second)
	if accepted == 10 {
		t.Fatal("queue of 2 accepted a burst of 10")
	}
	if r.nodes[1].Stats.DropsQueue == 0 {
		t.Fatal("no queue drops counted")
	}
}

func TestSendBeforeStartRefused(t *testing.T) {
	r := newRig(t, 5, [][2]float64{{0, 0}, {30, 0}}, DefaultConfig())
	if r.nodes[1].Send([]byte{1}) {
		t.Fatal("Send accepted before Start")
	}
}

func TestRootLoopback(t *testing.T) {
	r := newRig(t, 6, [][2]float64{{0, 0}, {30, 0}}, DefaultConfig())
	delivered := 0
	r.nodes[0].OnDeliver(func(packet.Addr, uint8, uint8, []byte) { delivered++ })
	r.startAll()
	r.clock.RunUntil(sim.Second)
	if !r.nodes[0].Send([]byte{9}) || delivered != 1 {
		t.Fatal("root self-delivery failed")
	}
}

func TestRetryExhaustionDropsPacket(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 3
	cfg.RetryDelayMin, cfg.RetryDelayMax = sim.Millisecond, 2*sim.Millisecond
	r := newRig(t, 7, [][2]float64{{0, 0}, {30, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(10 * sim.Second) // node 1 has a route now
	// Kill the link completely, then send.
	r.ch.SetModifierBoth(0, 1, constLoss(80))
	r.clock.After(0, func() { r.nodes[1].Send([]byte{1}) })
	r.clock.RunUntil(20 * sim.Second)
	if r.nodes[1].Stats.DropsRetry == 0 {
		t.Fatal("packet not dropped after retry exhaustion")
	}
	if r.nodes[1].QueueLen() != 0 {
		t.Fatal("queue not drained after drop")
	}
}

type constLoss float64

func (c constLoss) ExtraLossDB(sim.Time) float64 { return float64(c) }

func TestParentPinnedInEstimator(t *testing.T) {
	r := newRig(t, 8, [][2]float64{{0, 0}, {30, 0}, {30, 8}, {30, -8}, {22, 14}}, DefaultConfig())
	r.startAll()
	r.clock.RunUntil(time30s())
	for i := 1; i < len(r.nodes); i++ {
		parent := r.nodes[i].Parent()
		if parent == packet.None {
			t.Fatalf("node %d routeless", i)
		}
		e := r.ests[i].Table().Find(parent)
		if e == nil || !e.Pinned {
			t.Fatalf("node %d's parent %v not pinned in the link table", i, parent)
		}
	}
}

func TestLoopDetectionTriggersBeacon(t *testing.T) {
	r := newRig(t, 9, [][2]float64{{0, 0}, {30, 0}}, DefaultConfig())
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	resetsBefore := r.nodes[1].Stats.TrickleResets
	// Forge a data frame whose sender claims a cost below node 1's own:
	// a gradient inconsistency that must trigger a Trickle reset.
	d := &packet.CTPData{Origin: 9, OriginSeq: 1, ETX: 0, THL: 1}
	payload, _ := d.Encode()
	f := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 0, Dst: 1, Seq: 1, Payload: payload}
	r.clock.After(0, func() { r.nodes[1].onDataFrame(f, phy.RxInfo{}) })
	r.clock.RunUntil(11 * sim.Second)
	if r.nodes[1].Stats.LoopsDetected == 0 {
		t.Fatal("inconsistency not detected")
	}
	if r.nodes[1].Stats.TrickleResets <= resetsBefore {
		t.Fatal("no Trickle reset on inconsistency")
	}
}

func TestTHLCapDropsAncientPackets(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 10, [][2]float64{{0, 0}, {30, 0}, {60, 0}}, cfg)
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	d := &packet.CTPData{Origin: 9, OriginSeq: 1, ETX: 60000, THL: cfg.MaxTHL}
	payload, _ := d.Encode()
	f := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 2, Dst: 1, Seq: 1, Payload: payload}
	r.clock.After(0, func() { r.nodes[1].onDataFrame(f, phy.RxInfo{}) })
	r.clock.RunUntil(11 * sim.Second)
	if r.nodes[1].Stats.DropsTHL != 1 {
		t.Fatalf("DropsTHL = %d, want 1", r.nodes[1].Stats.DropsTHL)
	}
}

func TestDuplicateSuppressionEndToEnd(t *testing.T) {
	r := newRig(t, 11, [][2]float64{{0, 0}, {30, 0}}, DefaultConfig())
	delivered := 0
	r.nodes[0].OnDeliver(func(packet.Addr, uint8, uint8, []byte) { delivered++ })
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	// Deliver the same forged frame to the root twice (a link-layer dup).
	d := &packet.CTPData{Origin: 1, OriginSeq: 200, ETX: 10, THL: 1}
	payload, _ := d.Encode()
	f := &packet.Frame{Type: packet.TypeData, AckRequest: true, Src: 1, Dst: 0, Seq: 1, Payload: payload}
	r.clock.After(0, func() {
		r.nodes[0].onDataFrame(f, phy.RxInfo{})
		r.nodes[0].onDataFrame(f, phy.RxInfo{})
	})
	r.clock.RunUntil(11 * sim.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (dup suppressed)", delivered)
	}
	if r.nodes[0].Stats.DupsDropped != 1 {
		t.Fatalf("DupsDropped = %d, want 1", r.nodes[0].Stats.DupsDropped)
	}
}

func TestPullFlagSpeedsUpNeighborBeacons(t *testing.T) {
	// A late-booting node with no route sends pull beacons; its routed
	// neighbor must reset Trickle in response.
	r := newRig(t, 12, [][2]float64{{0, 0}, {30, 0}, {60, 0}}, DefaultConfig())
	r.nodes[0].Start()
	r.nodes[1].Start()
	r.clock.RunUntil(60 * sim.Second) // node 1 settled, Trickle slowed
	before := r.nodes[1].Stats.TrickleResets
	r.nodes[2].Start() // boots routeless; beacons carry the pull flag
	r.clock.RunUntil(90 * sim.Second)
	if r.nodes[1].Stats.TrickleResets <= before {
		t.Fatal("pull beacon did not reset the neighbor's Trickle")
	}
	if r.nodes[2].Parent() != 1 {
		t.Fatalf("late joiner parent = %v, want 1", r.nodes[2].Parent())
	}
}

func TestCompareBitRequiresRouteInfo(t *testing.T) {
	r := newRig(t, 13, [][2]float64{{0, 0}, {30, 0}}, DefaultConfig())
	r.startAll()
	r.clock.RunUntil(10 * sim.Second)
	// Garbage payload: not a decodable beacon -> false.
	if r.nodes[1].CompareBit(5, []byte{1}) {
		t.Fatal("compare bit set for undecodable beacon")
	}
	// Sender with no route (invalid ETX) -> false.
	noRoute, _ := (&packet.CTPBeacon{Parent: packet.None, ETX: 0xFFFF}).Encode()
	if r.nodes[1].CompareBit(5, noRoute) {
		t.Fatal("compare bit set for routeless sender")
	}
	// Sender that routes through us -> false (would loop).
	viaMe, _ := (&packet.CTPBeacon{Parent: 1, ETX: 20}).Encode()
	if r.nodes[1].CompareBit(5, viaMe) {
		t.Fatal("compare bit set for our own child")
	}
}

func TestCompareBitTrueWhenDesperate(t *testing.T) {
	r := newRig(t, 14, [][2]float64{{0, 0}, {200, 0}}, DefaultConfig())
	r.startAll()
	r.clock.RunUntil(10 * sim.Second) // node 1 hears nothing: no route
	if r.nodes[1].Parent() != packet.None {
		t.Fatal("node 1 unexpectedly routed")
	}
	good, _ := (&packet.CTPBeacon{Parent: 0, ETX: 10}).Encode()
	if !r.nodes[1].CompareBit(5, good) {
		t.Fatal("routeless node refused a routed sender")
	}
}
