package ctp

import (
	"testing"
	"testing/quick"

	"fourbit/internal/packet"
)

func TestDupCacheBasics(t *testing.T) {
	c := newDupCache(4)
	if c.seen(1, 1, 0) {
		t.Fatal("empty cache reported seen")
	}
	c.add(1, 1, 0)
	if !c.seen(1, 1, 0) {
		t.Fatal("added key not seen")
	}
	// Same origin/seq at a different THL is a different key (a looped
	// packet, not a link-layer duplicate).
	if c.seen(1, 1, 1) {
		t.Fatal("different THL matched")
	}
	c.add(1, 1, 0) // re-adding must not corrupt the FIFO
	c.add(2, 1, 0)
	c.add(3, 1, 0)
	c.add(4, 1, 0)
	if !c.seen(1, 1, 0) {
		t.Fatal("key evicted before capacity exceeded")
	}
	c.add(5, 1, 0) // evicts the oldest (1,1,0)
	if c.seen(1, 1, 0) {
		t.Fatal("oldest key not evicted at capacity")
	}
	for _, origin := range []packet.Addr{2, 3, 4, 5} {
		if !c.seen(origin, 1, 0) {
			t.Fatalf("key %d lost", origin)
		}
	}
}

func TestDupCachePropertyNeverExceedsCap(t *testing.T) {
	f := func(keys []uint32) bool {
		c := newDupCache(8)
		for _, k := range keys {
			c.add(packet.Addr(k), uint8(k>>16), uint8(k>>24))
			if len(c.set) > 8 || len(c.keys) > 8 {
				return false
			}
		}
		// Everything in the FIFO must be in the set and vice versa.
		if len(c.set) != len(c.keys) {
			return false
		}
		for _, k := range c.keys {
			if _, ok := c.set[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
