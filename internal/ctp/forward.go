package ctp

import (
	"fourbit/internal/core"
	"fourbit/internal/mac"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
)

// onDataFrame handles a unicast data frame addressed to us: duplicate
// suppression, loop detection against the sender's advertised cost, and
// either root delivery or re-enqueue for the next hop. The frame's
// physical-layer metadata feeds the estimator's overheard-frame hook
// before any protocol processing — reception quality is a property of the
// link, not of the payload (the four-bit estimator ignores the hook; the
// LQI estimator samples it).
func (n *Node) onDataFrame(f *packet.Frame, info phy.RxInfo) {
	n.est.OnOverhear(f.Src, core.RxMeta{White: info.White, LQI: info.LQI, SNRdB: info.SNRdB}, n.clock.Now())
	// Decode into node scratch: d.Data aliases the frame payload, which
	// is only valid for this callback — the forwarding path below copies
	// it into a queue-owned envelope before returning.
	d := &n.rxData
	if err := packet.DecodeCTPDataInto(d, f.Payload); err != nil {
		return
	}
	if n.dup.seen(d.Origin, d.OriginSeq, d.THL) {
		n.Stats.DupsDropped++
		return
	}
	n.dup.add(d.Origin, d.OriginSeq, d.THL)

	if n.isRoot {
		n.Stats.DeliveredRoot++
		if n.deliver != nil {
			n.deliver(d.Origin, d.OriginSeq, d.THL, d.Data)
		}
		return
	}
	// Loop detection (TEP 123): the sender believed we are closer to the
	// root, but our cost is not smaller than its advertised cost — the
	// gradient is inconsistent. Beacon soon to repair it; forward anyway
	// (THL caps true loops). Resets are rate-limited: on fluctuating links
	// stale cost stamps are routine, and one repair beacon per window is
	// enough (without the limit, inconsistency resets at every forwarded
	// packet collapse Trickle into a permanent beacon storm).
	if d.ETX != invalidETX && n.cost != noCost && float64(d.ETX)/10 <= n.cost {
		n.Stats.LoopsDetected++
		if now := n.clock.Now(); now-n.lastLoopReset >= 2*sim.Second {
			n.lastLoopReset = now
			n.trickleReset()
		}
	}
	if d.THL >= n.cfg.MaxTHL {
		n.Stats.DropsTHL++
		return
	}
	env := n.newEnvelope()
	buf := env.Data
	*env = *d
	env.Data = append(buf[:0], d.Data...)
	env.THL++
	if n.enqueue(env) {
		n.pump()
	} else {
		n.releaseEnvelope(env)
	}
}

func (n *Node) enqueue(d *packet.CTPData) bool {
	if len(n.queue) >= n.cfg.QueueSize {
		n.Stats.DropsQueue++
		return false
	}
	n.queue = append(n.queue, d)
	return true
}

// pump starts transmission of the queue head when the node has a route and
// the MAC is free. It is invoked on every event that could unblock
// forwarding: enqueue, route acquisition, MAC completion.
func (n *Node) pump() {
	if n.sending || len(n.queue) == 0 || !n.hasRoute() || n.m.Busy() {
		return
	}
	d := n.queue[0]
	d.ETX = n.costFixed() // stamp our current cost for loop detection
	var err error
	n.encBuf, err = d.AppendTo(n.encBuf[:0])
	if err != nil {
		// Oversized application payload: drop rather than wedge the queue.
		n.queue = n.queue[1:]
		n.releaseEnvelope(d)
		n.Stats.DropsQueue++
		n.pump()
		return
	}
	n.txParent = n.parent
	n.txFrame = packet.Frame{
		Type:       packet.TypeData,
		AckRequest: true,
		Src:        n.self,
		Dst:        n.txParent,
		Payload:    n.encBuf,
	}
	n.sending = true
	if n.m.Send(&n.txFrame, n.dataDone) != nil {
		n.sending = false
		n.scheduleRetry()
	}
}

// scheduleRetry paces the next pump attempt through the pooled scheduling
// family: overlapping retry timers must stay distinct events (coalescing
// them into one reusable timer would change dispatch counts), but none of
// them needs a handle, so none of them needs an allocation.
func (n *Node) scheduleRetry() {
	delay := n.rng.UniformTime(n.cfg.RetryDelayMin, n.cfg.RetryDelayMax)
	n.clock.Schedule(n.clock.Now()+delay, n.pumpFn)
}

// onDataTxDone feeds the ack bit to the estimator and applies the
// retransmit/drop policy. All queue mutations happen before updateRoute:
// a parent switch inside updateRoute re-enters pump, which must observe a
// consistent queue (this ordering fixed a double-pop).
func (n *Node) onDataTxDone(dst packet.Addr, res mac.TxResult) {
	n.sending = false
	if res.Sent {
		// The ack bit: one sample per transmission (§3.1).
		n.est.TxResult(dst, res.Acked)
	}
	retry := false
	switch {
	case res.Acked:
		n.releaseEnvelope(n.queue[0])
		n.queue = n.queue[1:]
		n.attempts = 0
		n.Stats.Forwarded++
	default:
		n.attempts++
		if n.attempts >= n.cfg.MaxRetries {
			n.releaseEnvelope(n.queue[0])
			n.queue = n.queue[1:]
			n.attempts = 0
			n.Stats.DropsRetry++
		} else {
			retry = true
		}
	}
	// The sample may have moved the estimate enough to switch parent (the
	// switch pumps immediately through the new route).
	n.updateRoute()
	if retry {
		n.scheduleRetry()
	} else {
		n.pump()
	}
}

// dupCache is a fixed-size FIFO set of recently seen (origin, seq, thl)
// triples. Including THL lets link-layer duplicates (same THL) be dropped
// while looping packets (THL advanced) survive to trigger loop detection.
type dupCache struct {
	cap  int
	keys []dupKey
	set  map[dupKey]struct{}
	next int
}

type dupKey struct {
	origin packet.Addr
	seq    uint8
	thl    uint8
}

func newDupCache(capacity int) *dupCache {
	return &dupCache{cap: capacity, set: make(map[dupKey]struct{}, capacity)}
}

func (c *dupCache) seen(origin packet.Addr, seq, thl uint8) bool {
	_, ok := c.set[dupKey{origin, seq, thl}]
	return ok
}

func (c *dupCache) add(origin packet.Addr, seq, thl uint8) {
	k := dupKey{origin, seq, thl}
	if _, ok := c.set[k]; ok {
		return
	}
	if len(c.keys) < c.cap {
		c.keys = append(c.keys, k)
	} else {
		delete(c.set, c.keys[c.next])
		c.keys[c.next] = k
		c.next = (c.next + 1) % c.cap
	}
	c.set[k] = struct{}{}
}
