package ctp

import (
	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
)

// onBeaconFrame runs a received routing beacon through the link estimator
// (layer 2.5: sequence accounting, white/compare admission) and then
// processes the inner routing frame. The LE envelope decodes into a
// node-owned scratch frame — nothing downstream retains it.
func (n *Node) onBeaconFrame(f *packet.Frame, info phy.RxInfo) {
	le := &n.leBuf
	if err := packet.DecodeLEFrameInto(le, f.Payload); err != nil {
		return
	}
	meta := core.RxMeta{White: info.White, LQI: info.LQI, SNRdB: info.SNRdB}
	netPayload, ok := n.est.OnBeacon(f.Src, le, meta, n.clock.Now())
	if !ok || netPayload == nil {
		return
	}
	cb, err := packet.DecodeCTPBeacon(netPayload)
	if err != nil {
		return
	}
	n.handleBeacon(f.Src, cb)
}

func (n *Node) handleBeacon(src packet.Addr, cb *packet.CTPBeacon) {
	cost := noCost
	if cb.ETX != invalidETX {
		cost = float64(cb.ETX) / 10
	}
	e := n.routeFor(src)
	e.cost, e.parent, e.lastHeard = cost, cb.Parent, n.clock.Now()
	// A pull-flagged beacon asks route-holding neighbors to beacon soon.
	if cb.Options&packet.CTPOptPull != 0 && n.hasRoute() {
		n.trickleReset()
	}
	n.updateRoute()
}

func (n *Node) hasRoute() bool { return n.isRoot || n.parent != packet.None }

// routeFor returns the route slot for a, growing the dense table and
// registering the address on first contact.
func (n *Node) routeFor(a packet.Addr) *routeEntry {
	if int(a) >= len(n.routes) {
		grown := make([]routeEntry, int(a)+1)
		copy(grown, n.routes)
		n.routes = grown
	}
	e := &n.routes[a]
	e.known = true
	return e
}

// route returns the route slot for a, or nil if we never heard it beacon.
func (n *Node) route(a packet.Addr) *routeEntry {
	if int(a) < len(n.routes) && n.routes[a].known {
		return &n.routes[a]
	}
	return nil
}

// totalCost returns the path ETX through neighbor a: its advertised cost
// plus our link's estimated ETX. ok is false when either half is unknown.
func (n *Node) totalCost(a packet.Addr) (float64, bool) {
	r := n.route(a)
	if r == nil || r.cost == noCost {
		return 0, false
	}
	etx, ok := n.est.Quality(a)
	if !ok {
		return 0, false
	}
	return r.cost + etx, true
}

// updateRoute runs CTP's parent selection: minimize advertised cost + link
// ETX over estimated neighbors, with hysteresis (ParentSwitchThreshold)
// protecting the incumbent, and never choosing a neighbor that routes
// through us. The chosen parent is pinned in the estimator's table.
func (n *Node) updateRoute() {
	if n.isRoot {
		return
	}
	// Candidates need both an advertised route and a link estimate, so the
	// estimator's table (≤ TableSize entries) — not the full ever-heard
	// neighbor list — bounds the scan. The winner minimizes (total, addr)
	// lexicographically, which is iteration-order independent, so walking
	// the table yields exactly the neighbor-list result.
	best := packet.None
	bestTotal := noCost
	for _, e := range n.est.Table().Entries() {
		etx, ok := e.ETX()
		if !ok {
			continue
		}
		a := e.Addr
		r := n.route(a)
		if r == nil || r.cost == noCost || r.parent == n.self {
			continue
		}
		total := r.cost + etx
		if total < bestTotal || (total == bestTotal && a < best) {
			best, bestTotal = a, total
		}
	}
	curTotal, curOK := noCost, false
	if n.parent != packet.None {
		curTotal, curOK = n.totalCost(n.parent)
	}

	switch {
	case best == packet.None:
		if n.parent != packet.None {
			old := n.parent
			n.est.Unpin(n.parent)
			n.parent = packet.None
			n.cost = noCost
			n.Stats.ParentChanges++
			n.probes.ParentChange(n.self, old, packet.None, 0)
			n.trickleReset() // lost the route: ask for help (pull)
		}
	case !curOK || bestTotal+n.cfg.ParentSwitchThreshold < curTotal:
		if best != n.parent {
			old := n.parent
			if n.parent != packet.None {
				n.est.Unpin(n.parent)
			}
			hadRoute := n.parent != packet.None
			n.parent = best
			n.est.Pin(best)
			n.Stats.ParentChanges++
			n.cost = bestTotal
			n.probes.ParentChange(n.self, old, best, bestTotal)
			if !hadRoute || curOK {
				n.trickleReset()
			}
			n.pump()
		} else {
			n.cost = bestTotal
		}
	default:
		n.cost = curTotal
	}
}

// trickleReset drops the beacon interval to the minimum and reschedules.
func (n *Node) trickleReset() {
	n.interval = n.cfg.BeaconMin
	n.Stats.TrickleResets++
	n.scheduleBeacon()
}

func (n *Node) scheduleBeacon() {
	// One persistent timer re-armed per cycle (sim.Timer.Reschedule):
	// identical semantics to the cancel-and-After idiom, no allocation.
	delay := n.rng.UniformTime(n.interval/2, n.interval)
	n.beacon.RescheduleAfter(delay)
}

func (n *Node) beaconFire() {
	n.sendBeacon()
	if n.interval < n.cfg.BeaconMax {
		n.interval *= 2
		if n.interval > n.cfg.BeaconMax {
			n.interval = n.cfg.BeaconMax
		}
	}
	n.scheduleBeacon()
}

// sendBeacon emits one routing beacon through the estimator's LE envelope.
// If the MAC is mid-transmission the beacon is skipped (the Trickle timer
// will come around again) — beacons are advisory traffic.
func (n *Node) sendBeacon() {
	if n.m.Busy() {
		return
	}
	n.est.Age(n.interval.Scale(n.cfg.AgeFactor), n.clock.Now())
	cb := packet.CTPBeacon{Parent: n.parent, ETX: n.costFixed()}
	if !n.hasRoute() {
		cb.Options |= packet.CTPOptPull
	}
	// Everything below runs in node-owned scratch: the beacon and LE
	// envelope encode into reusable buffers, the estimator's MakeBeacon
	// returns its own scratch frame, and the MAC copies what it needs
	// before Send returns.
	n.cbBuf = cb.AppendTo(n.cbBuf[:0])
	le := n.est.MakeBeacon(n.cbBuf)
	var err error
	n.encBuf, err = le.AppendTo(n.encBuf[:0])
	if err != nil {
		panic("ctp: LE encode: " + err.Error())
	}
	n.txFrame = packet.Frame{Type: packet.TypeBeacon, Src: n.self, Dst: packet.Broadcast, Payload: n.encBuf}
	if n.m.Send(&n.txFrame, n.beaconDone) == nil {
		n.Stats.BeaconsSent++
		n.probes.Beacon(n.self, cb.ETX, cb.Options&packet.CTPOptPull != 0)
	}
}

// costFixed converts the node's cost to the 1/10-ETX wire representation.
func (n *Node) costFixed() uint16 {
	if n.cost == noCost {
		return invalidETX
	}
	v := n.cost * 10
	if v >= invalidETX {
		return invalidETX
	}
	return uint16(v + 0.5)
}

// CompareBit implements core.Comparer (§3.1): it reports whether the
// routing frame in netPayload, heard from src, advertises a route better
// than the route provided by one or more entries in the link table — i.e.
// whether src is worth a table slot. A node with no route says yes to any
// routed sender.
func (n *Node) CompareBit(src packet.Addr, netPayload []byte) bool {
	cb, err := packet.DecodeCTPBeacon(netPayload)
	if err != nil {
		return false
	}
	if cb.ETX == invalidETX || cb.Parent == n.self {
		return false
	}
	senderCost := float64(cb.ETX) / 10
	if !n.hasRoute() {
		return true
	}
	// Optimistically the sender is one perfect hop away. The bit is set
	// only if that beats the path through some current table entry with a
	// computable route by at least the parent-switch margin — a weaker
	// newcomer could never change routing, so evicting for it would be
	// pure table churn.
	optimistic := senderCost + 1 + n.cfg.ParentSwitchThreshold
	for _, e := range n.est.Table().Entries() {
		a := e.Addr
		if a == n.parent {
			continue
		}
		// totalCost(a) with the table entry already in hand: identical
		// result, one table lookup fewer on the simulator's hottest scan.
		etx, ok := e.ETX()
		if !ok {
			continue
		}
		r := n.route(a)
		if r == nil || r.cost == noCost {
			continue
		}
		if optimistic < r.cost+etx {
			return true
		}
	}
	return false
}
