package topo

import (
	"fmt"

	"fourbit/internal/sim"
)

// Scenario-oriented generators beyond the two named testbeds. Each is
// deterministic in its arguments: the same call always yields the same
// placements, so scenario sweeps over density or shape replicate exactly.
// The root is always the node nearest the bottom-left corner, matching the
// paper's testbeds.

// Clustered scatters n nodes in a two-tier layout over a w×h area: clusters
// cluster centers placed uniformly, members Gaussian-spread (sigma =
// spread meters) around their center, assigned round-robin. Clustered
// deployments stress the link table hardest — within a cluster every node
// hears every other, so the 10-entry table must evict aggressively to admit
// the one root-ward link that matters (the Figure 2 failure mode).
func Clustered(n, clusters int, w, h, spread float64, seed uint64) *Topology {
	if clusters < 1 {
		clusters = 1
	}
	rng := sim.NewRand(seed ^ 0x436c7573) // "Clus"
	t := &Topology{Name: fmt.Sprintf("clustered-%d-%d", n, clusters)}
	cx := make([]float64, clusters)
	cy := make([]float64, clusters)
	for c := 0; c < clusters; c++ {
		cx[c] = rng.Uniform(0.1*w, 0.9*w)
		cy[c] = rng.Uniform(0.1*h, 0.9*h)
	}
	for i := 0; i < n; i++ {
		c := i % clusters
		t.Positions = append(t.Positions, Point{
			X: clamp(cx[c]+rng.Normal(0, spread), 0, w),
			Y: clamp(cy[c]+rng.Normal(0, spread), 0, h),
		})
	}
	t.Root = t.closestTo(0, 0)
	return t
}

// Corridor places n nodes uniformly along a length×width hallway (width ≪
// length), the shape of tunnel, pipeline and bridge deployments. The
// geometry forces near-linear multi-hop routes, so depth — and with it the
// cost of every estimation mistake — grows linearly with length.
func Corridor(n int, length, width float64, seed uint64) *Topology {
	rng := sim.NewRand(seed ^ 0x436f7272) // "Corr"
	t := &Topology{Name: fmt.Sprintf("corridor-%d", n)}
	for i := 0; i < n; i++ {
		t.Positions = append(t.Positions, Point{
			X: rng.Uniform(0, length),
			Y: rng.Uniform(0, width),
		})
	}
	t.Root = t.closestTo(0, width/2)
	return t
}

// MultiFloor scatters n nodes uniformly over floors storeys of a w×h
// footprint, generalizing the TutorNet two-floor testbed: a 14 dB slab per
// storey and 4 m vertical separation. Inter-floor links are marginal by
// construction, the regime where the paper reports 4B's larger gains.
func MultiFloor(n, floors int, w, h float64, seed uint64) *Topology {
	if floors < 1 {
		floors = 1
	}
	rng := sim.NewRand(seed ^ 0x466c6f6f) // "Floo"
	t := &Topology{
		Name:         fmt.Sprintf("multifloor-%d-%d", n, floors),
		FloorLossDB:  14,
		FloorHeightM: 4,
	}
	for i := 0; i < n; i++ {
		t.Positions = append(t.Positions, Point{
			X:     rng.Uniform(0, w),
			Y:     rng.Uniform(0, h),
			Floor: i * floors / n,
		})
	}
	t.Root = t.closestTo(0, 0)
	return t
}
