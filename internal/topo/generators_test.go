package topo

import (
	"reflect"
	"testing"
)

func TestGeneratorsDeterministic(t *testing.T) {
	pairs := [][2]*Topology{
		{Clustered(40, 5, 50, 30, 3, 7), Clustered(40, 5, 50, 30, 3, 7)},
		{Corridor(30, 120, 4, 7), Corridor(30, 120, 4, 7)},
		{MultiFloor(45, 3, 40, 25, 7), MultiFloor(45, 3, 40, 25, 7)},
	}
	for _, p := range pairs {
		if !reflect.DeepEqual(p[0], p[1]) {
			t.Errorf("%s: two builds with identical arguments differ", p[0].Name)
		}
	}
	if reflect.DeepEqual(Clustered(40, 5, 50, 30, 3, 7), Clustered(40, 5, 50, 30, 3, 8)) {
		t.Error("clustered: distinct seeds produced identical layouts")
	}
}

func TestClusteredShape(t *testing.T) {
	tp := Clustered(40, 5, 50, 30, 3, 1)
	if tp.N() != 40 {
		t.Fatalf("N = %d, want 40", tp.N())
	}
	for i, p := range tp.Positions {
		if p.X < 0 || p.X > 50 || p.Y < 0 || p.Y > 30 || p.Floor != 0 {
			t.Fatalf("node %d out of area: %+v", i, p)
		}
	}
	if tp.Root < 0 || tp.Root >= tp.N() {
		t.Fatalf("root %d out of range", tp.Root)
	}
	// Two-tier structure: the mean same-cluster distance must be far below
	// the mean cross-cluster distance (members sit spread≈3 m around one of
	// five centers scattered over a 50×30 floor).
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < tp.N(); i++ {
		for j := i + 1; j < tp.N(); j++ {
			if i%5 == j%5 {
				same += tp.Distance(i, j)
				nSame++
			} else {
				cross += tp.Distance(i, j)
				nCross++
			}
		}
	}
	if same/float64(nSame) >= cross/float64(nCross)/2 {
		t.Errorf("clusters not tight: same %.1f m vs cross %.1f m",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestCorridorShape(t *testing.T) {
	tp := Corridor(30, 120, 4, 2)
	for i, p := range tp.Positions {
		if p.X < 0 || p.X > 120 || p.Y < 0 || p.Y > 4 {
			t.Fatalf("node %d outside the corridor: %+v", i, p)
		}
	}
	// The root is the entrance end of the hallway.
	if tp.Positions[tp.Root].X > 30 {
		t.Errorf("root at X=%.1f, want near the x=0 end", tp.Positions[tp.Root].X)
	}
}

func TestMultiFloorShape(t *testing.T) {
	tp := MultiFloor(45, 3, 40, 25, 3)
	seen := map[int]int{}
	for _, p := range tp.Positions {
		seen[p.Floor]++
	}
	if len(seen) != 3 {
		t.Fatalf("floors used: %v, want 3", seen)
	}
	for f, n := range seen {
		if n != 15 {
			t.Errorf("floor %d holds %d nodes, want 15", f, n)
		}
	}
	if tp.Positions[tp.Root].Floor != 0 {
		t.Errorf("root on floor %d, want 0", tp.Positions[tp.Root].Floor)
	}
	if tp.FloorLossDB != 14 || tp.FloorHeightM != 4 {
		t.Errorf("slab parameters %v/%v, want 14 dB / 4 m", tp.FloorLossDB, tp.FloorHeightM)
	}
}
