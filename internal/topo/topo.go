// Package topo generates node placements for the simulated testbeds and
// turns them into the distance / extra-attenuation matrices the channel
// model consumes.
//
// Two named generators stand in for the paper's physical testbeds (see
// DESIGN.md §1): Mirage, an 85-node single-floor office in the style of the
// Intel Mirage MicaZ testbed, and TutorNet, a 94-node two-floor deployment
// in the style of USC's TelosB testbed. Both place the collection root in
// the bottom-left corner, as in the paper's Figure 2.
package topo

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"

	"fourbit/internal/sim"
)

// Point is a node position in meters. Floor is the building storey; the
// vertical separation and slab attenuation are applied by Build.
type Point struct {
	X, Y  float64
	Floor int
}

// Topology is a set of node positions plus per-pair static obstruction loss.
type Topology struct {
	Name      string
	Positions []Point
	Root      int // collection root (basestation) index
	// FloorLossDB is the extra attenuation per floor slab crossed.
	FloorLossDB float64
	// FloorHeightM is the vertical separation between storeys.
	FloorHeightM float64
	// ClutterDB adds U[0, ClutterDB] of obstruction loss per node pair
	// (cubicle walls, furniture, people), drawn deterministically from
	// ClutterSeed. Cluttered buildings have many marginal links — the
	// regime where the paper reports TutorNet's larger 4B gains.
	ClutterDB   float64
	ClutterSeed uint64
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Positions) }

// Distance returns the 3-D distance in meters between nodes i and j.
func (t *Topology) Distance(i, j int) float64 {
	a, b := t.Positions[i], t.Positions[j]
	dz := float64(a.Floor-b.Floor) * t.FloorHeightM
	return math.Sqrt((a.X-b.X)*(a.X-b.X) + (a.Y-b.Y)*(a.Y-b.Y) + dz*dz)
}

// Coord returns node i's position in meters, with the vertical coordinate
// derived from the floor index — the flat view the channel model's spatial
// bucketing indexes without materializing pairwise matrices.
func (t *Topology) Coord(i int) (x, y, z float64) {
	p := t.Positions[i]
	return p.X, p.Y, float64(p.Floor) * t.FloorHeightM
}

// ExtraLossDB returns the static obstruction loss between i and j — floor
// slabs plus deterministic clutter, exactly the value Matrices places in
// its extra-loss matrix. It is never negative: obstructions only ever
// attenuate, a property the channel model's audibility culling relies on.
func (t *Topology) ExtraLossDB(i, j int) float64 {
	floors := t.Positions[i].Floor - t.Positions[j].Floor
	if floors < 0 {
		floors = -floors
	}
	return float64(floors)*t.FloorLossDB + t.clutter(i, j)
}

// Matrices returns the pairwise distance matrix and the extra static loss
// matrix (floor-slab attenuation) for the channel model. Large networks
// should prefer the per-pair accessors (Distance, ExtraLossDB, Coord) —
// this materializes O(n²) floats.
func (t *Topology) Matrices() (dist, extraLossDB [][]float64) {
	n := t.N()
	dist = make([][]float64, n)
	extraLossDB = make([][]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = make([]float64, n)
		extraLossDB[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := t.Distance(i, j)
			dist[i][j], dist[j][i] = d, d
			loss := t.ExtraLossDB(i, j)
			extraLossDB[i][j], extraLossDB[j][i] = loss, loss
		}
	}
	return dist, extraLossDB
}

// clutter returns the pair's deterministic obstruction loss in [0, ClutterDB].
func (t *Topology) clutter(i, j int) float64 {
	if t.ClutterDB == 0 {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	h := fnv.New64a()
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], t.ClutterSeed)
	binary.BigEndian.PutUint64(buf[8:], uint64(i))
	binary.BigEndian.PutUint64(buf[16:], uint64(j))
	h.Write(buf[:])
	return t.ClutterDB * float64(h.Sum64()%10000) / 9999
}

// MarshalJSON / UnmarshalJSON round-trip the topology for the topogen CLI.
func (t *Topology) MarshalJSON() ([]byte, error) {
	type wire Topology
	return json.Marshal((*wire)(t))
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Topology) UnmarshalJSON(data []byte) error {
	type wire Topology
	return json.Unmarshal(data, (*wire)(t))
}

// Line places n nodes on a line with the given spacing; node 0 is the root.
func Line(n int, spacing float64) *Topology {
	t := &Topology{Name: fmt.Sprintf("line-%d", n)}
	for i := 0; i < n; i++ {
		t.Positions = append(t.Positions, Point{X: float64(i) * spacing})
	}
	return t
}

// Grid places rows×cols nodes with the given spacing; node 0 (a corner) is
// the root.
func Grid(rows, cols int, spacing float64) *Topology {
	t := &Topology{Name: fmt.Sprintf("grid-%dx%d", rows, cols)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			t.Positions = append(t.Positions, Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return t
}

// UniformRandom scatters n nodes uniformly over a w×h area. The node
// closest to the bottom-left corner becomes the root.
func UniformRandom(n int, w, h float64, seed uint64) *Topology {
	rng := sim.NewRand(seed)
	t := &Topology{Name: fmt.Sprintf("uniform-%d", n)}
	for i := 0; i < n; i++ {
		t.Positions = append(t.Positions, Point{X: rng.Uniform(0, w), Y: rng.Uniform(0, h)})
	}
	t.Root = t.closestTo(0, 0)
	return t
}

func (t *Topology) closestTo(x, y float64) int {
	best, bestD := 0, math.Inf(1)
	for i, p := range t.Positions {
		d := (p.X-x)*(p.X-x) + (p.Y-y)*(p.Y-y) + float64(p.Floor*p.Floor)*1e6
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Mirage generates the 85-node single-floor office testbed used by the
// Figure 2, 6, 7, 8 experiments. Nodes cluster in office bays over a
// 48×28 m floor; the root (node 0) sits in the bottom-left corner. At
// 0 dBm the network is 1–3 hops deep, growing to ~4+ hops at −20 dBm,
// matching the depth ranges the paper reports.
func Mirage(seed uint64) *Topology {
	const n = 85
	rng := sim.NewRand(seed ^ 0x4d697261) // "Mira"
	t := &Topology{Name: "mirage-85", ClutterDB: 4, ClutterSeed: seed}
	t.Positions = append(t.Positions, Point{X: 2, Y: 2}) // root, bottom-left
	// Office bays on an 8×4 grid spanning the floor.
	const baysX, baysY = 8, 4
	for i := 1; i < n; i++ {
		bay := (i - 1) % (baysX * baysY)
		bx := 5 + float64(bay%baysX)*5.6
		by := 4.5 + float64(bay/baysX)*6.4
		t.Positions = append(t.Positions, Point{
			X: clamp(bx+rng.Normal(0, 1.6), 0, 48),
			Y: clamp(by+rng.Normal(0, 1.6), 0, 28),
		})
	}
	return t
}

// TutorNet generates the 94-node two-floor testbed used by the Figure 3 and
// TutorNet headline experiments. 47 nodes per floor over 42×24 m with a
// 14 dB slab; the larger mean attenuation yields longer paths and more
// marginal links than Mirage, which is where the paper observed the larger
// (44%) cost advantage for 4B.
func TutorNet(seed uint64) *Topology {
	const n = 94
	rng := sim.NewRand(seed ^ 0x5475746f) // "Tuto"
	t := &Topology{
		Name:         "tutornet-94",
		FloorLossDB:  14,
		FloorHeightM: 4,
		ClutterDB:    16,
		ClutterSeed:  seed,
	}
	t.Positions = append(t.Positions, Point{X: 2, Y: 2}) // root, floor 0
	const baysX, baysY = 7, 3
	for i := 1; i < n; i++ {
		floor := 0
		if i >= n/2 {
			floor = 1
		}
		bay := (i - 1) % (baysX * baysY)
		bx := 4 + float64(bay%baysX)*5.5
		by := 4 + float64(bay/baysX)*7.5
		t.Positions = append(t.Positions, Point{
			X:     clamp(bx+rng.Normal(0, 2.0), 0, 42),
			Y:     clamp(by+rng.Normal(0, 2.0), 0, 24),
			Floor: floor,
		})
	}
	return t
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
