package topo

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestLineDistances(t *testing.T) {
	l := Line(5, 10)
	if l.N() != 5 {
		t.Fatalf("N = %d", l.N())
	}
	if d := l.Distance(0, 4); d != 40 {
		t.Fatalf("Distance(0,4) = %v, want 40", d)
	}
	if l.Root != 0 {
		t.Fatal("line root should be node 0")
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4, 5)
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	if d := g.Distance(0, 3); d != 15 {
		t.Fatalf("row distance = %v, want 15", d)
	}
	if d := g.Distance(0, 11); math.Abs(d-math.Sqrt(15*15+10*10)) > 1e-9 {
		t.Fatalf("diagonal = %v", d)
	}
}

func TestMatricesSymmetricZeroDiagonal(t *testing.T) {
	for _, tp := range []*Topology{Mirage(1), TutorNet(1), Grid(4, 4, 6), UniformRandom(30, 50, 30, 3)} {
		dist, extra := tp.Matrices()
		n := tp.N()
		if len(dist) != n || len(extra) != n {
			t.Fatalf("%s: matrix size mismatch", tp.Name)
		}
		for i := 0; i < n; i++ {
			if dist[i][i] != 0 || extra[i][i] != 0 {
				t.Fatalf("%s: nonzero diagonal at %d", tp.Name, i)
			}
			for j := 0; j < n; j++ {
				if dist[i][j] != dist[j][i] || extra[i][j] != extra[j][i] {
					t.Fatalf("%s: asymmetric at (%d,%d)", tp.Name, i, j)
				}
			}
		}
	}
}

func TestMirageShape(t *testing.T) {
	m := Mirage(7)
	if m.N() != 85 {
		t.Fatalf("Mirage has %d nodes, want 85", m.N())
	}
	if m.Root != 0 {
		t.Fatal("root must be node 0")
	}
	r := m.Positions[0]
	if r.X > 5 || r.Y > 5 {
		t.Fatalf("root not in bottom-left corner: %+v", r)
	}
	for i, p := range m.Positions {
		if p.X < 0 || p.X > 48 || p.Y < 0 || p.Y > 28 {
			t.Fatalf("node %d out of floor bounds: %+v", i, p)
		}
		if p.Floor != 0 {
			t.Fatalf("Mirage node %d on floor %d", i, p.Floor)
		}
	}
}

func TestMirageDeterministicPerSeed(t *testing.T) {
	a, b := Mirage(5), Mirage(5)
	if !reflect.DeepEqual(a.Positions, b.Positions) {
		t.Fatal("same seed produced different Mirage layouts")
	}
	c := Mirage(6)
	if reflect.DeepEqual(a.Positions, c.Positions) {
		t.Fatal("different seeds produced identical layouts")
	}
}

func TestTutorNetShape(t *testing.T) {
	tn := TutorNet(7)
	if tn.N() != 94 {
		t.Fatalf("TutorNet has %d nodes, want 94", tn.N())
	}
	floors := map[int]int{}
	for _, p := range tn.Positions {
		floors[p.Floor]++
	}
	if len(floors) != 2 {
		t.Fatalf("TutorNet floors = %v, want 2 storeys", floors)
	}
	if tn.FloorLossDB <= 0 || tn.FloorHeightM <= 0 {
		t.Fatal("TutorNet must attenuate between floors")
	}
}

func TestTutorNetFloorLossInMatrix(t *testing.T) {
	tn := TutorNet(8)
	_, extra := tn.Matrices()
	// Same-floor pairs carry only clutter (0..ClutterDB); cross-floor
	// pairs carry the slab loss on top.
	for i := 1; i < tn.N(); i++ {
		loss := extra[0][i]
		if tn.Positions[i].Floor == tn.Positions[0].Floor {
			if loss < 0 || loss > tn.ClutterDB {
				t.Fatalf("same-floor loss to %d = %v, want within [0, %v]", i, loss, tn.ClutterDB)
			}
		} else if loss < tn.FloorLossDB || loss > tn.FloorLossDB+tn.ClutterDB {
			t.Fatalf("cross-floor loss to %d = %v, want slab %v + clutter", i, loss, tn.FloorLossDB)
		}
	}
}

func TestClutterDeterministicAndBounded(t *testing.T) {
	a, b := TutorNet(9), TutorNet(9)
	_, ea := a.Matrices()
	_, eb := b.Matrices()
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if ea[i][j] != eb[i][j] {
				t.Fatalf("clutter differs across identical builds at (%d,%d)", i, j)
			}
		}
	}
	c := TutorNet(10)
	_, ec := c.Matrices()
	same := true
	for i := 0; i < a.N() && same; i++ {
		for j := 0; j < a.N(); j++ {
			if ea[i][j] != ec[i][j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical clutter")
	}
}

func TestCrossFloorDistanceIncludesHeight(t *testing.T) {
	tn := &Topology{
		FloorHeightM: 4,
		Positions:    []Point{{X: 0, Y: 0, Floor: 0}, {X: 0, Y: 0, Floor: 1}},
	}
	if d := tn.Distance(0, 1); d != 4 {
		t.Fatalf("cross-floor distance = %v, want 4", d)
	}
}

func TestUniformRandomRootNearOrigin(t *testing.T) {
	u := UniformRandom(50, 60, 40, 9)
	if u.N() != 50 {
		t.Fatal("wrong node count")
	}
	r := u.Positions[u.Root]
	for i, p := range u.Positions {
		if i == u.Root {
			continue
		}
		if p.X*p.X+p.Y*p.Y < r.X*r.X+r.Y*r.Y {
			t.Fatalf("node %d closer to origin than root", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := TutorNet(3)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got Topology
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*m, got) {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestMirageDensitySupportsMultihop(t *testing.T) {
	// Sanity-check the geometry against the radio range: at 0 dBm (~40 m
	// reliable range) the far corner must be out of direct reach of the
	// root (multi-hop needed), while every node has a neighbor well within
	// reliable range (network connected even at reduced power).
	m := Mirage(1)
	const reliableRange = 40.0
	far := 0.0
	for i := 1; i < m.N(); i++ {
		if d := m.Distance(0, i); d > far {
			far = d
		}
		nearest := math.Inf(1)
		for j := 0; j < m.N(); j++ {
			if j == i {
				continue
			}
			if d := m.Distance(i, j); d < nearest {
				nearest = d
			}
		}
		if nearest > reliableRange/3 {
			t.Fatalf("node %d isolated: nearest neighbor %.1f m", i, nearest)
		}
	}
	if far < reliableRange*1.2 {
		t.Fatalf("network diameter %.1f m too small for multihop", far)
	}
}
