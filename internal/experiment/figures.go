package experiment

import (
	"fmt"
	"io"

	"fourbit/internal/metrics"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// ---------------------------------------------------------------------------
// Figure 2: routing trees and cost on the 85-node testbed for CTP (10-entry
// table), MultiHopLQI, and CTP with an unrestricted table. Paper values:
// cost 3.14 / 2.28 / 1.86 — the orderings, not the absolute numbers, are
// the reproduction target.
// ---------------------------------------------------------------------------

// Fig2Result holds the three runs of Figure 2.
type Fig2Result struct {
	Topo *topo.Topology
	Runs []*Result // CTP, MultiHopLQI, CTP-unlimited
}

// RunFig2 executes the three Figure 2 runs on the default worker pool.
func RunFig2(seed uint64, duration sim.Time) *Fig2Result {
	return RunFig2Workers(seed, duration, DefaultWorkers())
}

// Fig2Batch builds the declarative run batch behind Figure 2: CTP,
// MultiHopLQI and CTP-unlimited on Mirage at 0 dBm.
func Fig2Batch(seed uint64, duration sim.Time) []RunConfig {
	tp := topo.Mirage(seed)
	var rcs []RunConfig
	for _, p := range []Protocol{ProtoCTP, ProtoMultiHopLQI, ProtoCTPUnlimited} {
		rc := DefaultRunConfig(p, tp, seed)
		rc.Duration = duration
		rcs = append(rcs, rc)
	}
	return rcs
}

// RunFig2Workers is RunFig2 on an explicit worker count.
func RunFig2Workers(seed uint64, duration sim.Time, workers int) *Fig2Result {
	rcs := Fig2Batch(seed, duration)
	return &Fig2Result{Topo: rcs[0].Topo, Runs: RunAllWorkers(rcs, workers)}
}

// Fprint renders the Figure 2 trees and cost table.
func (r *Fig2Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Figure 2: routing trees on %s (root bottom-left; digits are tree depth)\n\n", r.Topo.Name)
	paper := map[Protocol]float64{ProtoCTP: 3.14, ProtoMultiHopLQI: 2.28, ProtoCTPUnlimited: 1.86}
	for _, res := range r.Runs {
		fmt.Fprintf(w, "(%s)  cost = %.2f  (paper: %.2f)   depth-histogram: %s\n",
			res.Protocol, res.Cost, paper[res.Protocol],
			DepthHistogram(res.FinalDepths, r.Topo.Root))
		fmt.Fprintln(w, RenderTree(r.Topo, res.FinalParents, 64, 18))
	}
	fmt.Fprintf(w, "%-14s %8s %8s %10s %9s\n", "protocol", "cost", "depth", "delivery", "dup")
	for _, res := range r.Runs {
		fmt.Fprintf(w, "%-14s %8.2f %8.2f %9.1f%% %9d\n",
			res.Protocol.String(), res.Cost, res.MeanDepth, res.DeliveryRatio*100, res.Duplicates)
	}
}

// ---------------------------------------------------------------------------
// Figure 6: the estimation design space — cost vs average tree depth for
// CTP, CTP+unidir (ack bit), CTP+white/compare, 4B and MultiHopLQI on the
// Mirage testbed at 0 dBm.
// ---------------------------------------------------------------------------

// Fig6Result holds the five design-space runs.
type Fig6Result struct {
	Topo *topo.Topology
	Runs []*Result
}

// RunFig6 executes the five Figure 6 runs on the default worker pool.
func RunFig6(seed uint64, duration sim.Time) *Fig6Result {
	return RunFig6Workers(seed, duration, DefaultWorkers())
}

// Fig6Batch builds the declarative run batch behind Figure 6: the five
// design-space variants on Mirage at 0 dBm.
func Fig6Batch(seed uint64, duration sim.Time) []RunConfig {
	tp := topo.Mirage(seed)
	var rcs []RunConfig
	for _, p := range []Protocol{ProtoCTP, ProtoCTPUnidir, ProtoCTPWhite, Proto4B, ProtoMultiHopLQI} {
		rc := DefaultRunConfig(p, tp, seed)
		rc.Duration = duration
		rcs = append(rcs, rc)
	}
	return rcs
}

// RunFig6Workers is RunFig6 on an explicit worker count.
func RunFig6Workers(seed uint64, duration sim.Time, workers int) *Fig6Result {
	rcs := Fig6Batch(seed, duration)
	return &Fig6Result{Topo: rcs[0].Topo, Runs: RunAllWorkers(rcs, workers)}
}

// Fprint renders the Figure 6 scatter as a table (cost vs depth).
func (r *Fig6Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: link-estimation design space on %s (0 dBm)\n", r.Topo.Name)
	fmt.Fprintf(w, "%-14s %10s %12s %10s\n", "variant", "cost", "avg depth", "delivery")
	for _, res := range r.Runs {
		fmt.Fprintf(w, "%-14s %10.2f %12.2f %9.1f%%\n",
			res.Protocol.String(), res.Cost, res.MeanDepth, res.DeliveryRatio*100)
	}
	base := r.Runs[0] // plain CTP
	fb := r.byProto(Proto4B)
	lqi := r.byProto(ProtoMultiHopLQI)
	if base != nil && fb != nil && base.Cost > 0 {
		fmt.Fprintf(w, "\n4B cost vs CTP: %+.0f%%  (paper: -45%%)\n", 100*(fb.Cost-base.Cost)/base.Cost)
	}
	if lqi != nil && fb != nil && lqi.Cost > 0 {
		fmt.Fprintf(w, "4B cost vs MultiHopLQI: %+.0f%%  (paper: -29%%)\n", 100*(fb.Cost-lqi.Cost)/lqi.Cost)
	}
}

func (r *Fig6Result) byProto(p Protocol) *Result {
	for _, res := range r.Runs {
		if res.Protocol == p {
			return res
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figures 7 and 8: power sweep (0, -10, -20 dBm) of 4B vs MultiHopLQI on
// Mirage. Figure 7 reports cost and depth per power; Figure 8 the per-node
// delivery-ratio boxplots of the same runs.
// ---------------------------------------------------------------------------

// PowerSweepResult holds the 3x2 runs shared by Figures 7 and 8.
type PowerSweepResult struct {
	Topo   *topo.Topology
	Powers []float64
	FB     []*Result // 4B, by power
	LQI    []*Result // MultiHopLQI, by power
}

// RunPowerSweep executes the shared Figure 7/8 runs on the default worker
// pool.
func RunPowerSweep(seed uint64, duration sim.Time) *PowerSweepResult {
	return RunPowerSweepWorkers(seed, duration, DefaultWorkers())
}

// PowerSweepPowers is the transmit-power axis of Figures 7 and 8.
var PowerSweepPowers = []float64{0, -10, -20}

// PowerSweepBatch builds the declarative run batch shared by Figures 7 and
// 8: (4B, MultiHopLQI) at each power of PowerSweepPowers, interleaved in
// that order.
func PowerSweepBatch(seed uint64, duration sim.Time) []RunConfig {
	tp := topo.Mirage(seed)
	var rcs []RunConfig
	for _, pw := range PowerSweepPowers {
		for _, p := range []Protocol{Proto4B, ProtoMultiHopLQI} {
			rc := DefaultRunConfig(p, tp, seed)
			rc.TxPowerDBm = pw
			rc.Duration = duration
			rcs = append(rcs, rc)
		}
	}
	return rcs
}

// RunPowerSweepWorkers is RunPowerSweep on an explicit worker count.
func RunPowerSweepWorkers(seed uint64, duration sim.Time, workers int) *PowerSweepResult {
	rcs := PowerSweepBatch(seed, duration)
	return AssemblePowerSweep(rcs[0].Topo, RunAllWorkers(rcs, workers))
}

// AssemblePowerSweep regroups a PowerSweepBatch's results into the Figure
// 7/8 result structure.
func AssemblePowerSweep(tp *topo.Topology, runs []*Result) *PowerSweepResult {
	out := &PowerSweepResult{Topo: tp, Powers: PowerSweepPowers}
	for i := range out.Powers {
		out.FB = append(out.FB, runs[2*i])
		out.LQI = append(out.LQI, runs[2*i+1])
	}
	return out
}

// FprintFig7 renders cost and depth per power level.
func (r *PowerSweepResult) FprintFig7(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: cost and average depth vs transmit power on %s\n", r.Topo.Name)
	fmt.Fprintf(w, "%8s  %-12s %8s %8s %14s\n", "power", "protocol", "cost", "depth", "cost-vs-depth")
	for i, pw := range r.Powers {
		for _, res := range []*Result{r.FB[i], r.LQI[i]} {
			excess := 0.0
			if res.MeanDepth > 0 {
				excess = 100 * (res.Cost - res.MeanDepth) / res.MeanDepth
			}
			fmt.Fprintf(w, "%6.0fdBm  %-12s %8.2f %8.2f %+13.0f%%\n",
				pw, res.Protocol.String(), res.Cost, res.MeanDepth, excess)
		}
		fb, lqi := r.FB[i], r.LQI[i]
		if lqi.Cost > 0 {
			fmt.Fprintf(w, "%6.0fdBm  4B cost improvement: %.0f%%  (paper: 29%%..11%% over the sweep)\n",
				pw, 100*(lqi.Cost-fb.Cost)/lqi.Cost)
		}
	}
}

// FprintFig8 renders the per-node delivery boxplots.
func (r *PowerSweepResult) FprintFig8(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: per-node delivery ratio distributions on %s\n", r.Topo.Name)
	fmt.Fprintf(w, "%-12s %8s  %s\n", "protocol", "power", "boxplot")
	for i, pw := range r.Powers {
		b := metrics.NewBoxplot(r.LQI[i].PerNodeDelivery)
		fmt.Fprintf(w, "%-12s %6.0fdBm  %s\n", "MultiHopLQI", pw, b)
	}
	for i, pw := range r.Powers {
		b := metrics.NewBoxplot(r.FB[i].PerNodeDelivery)
		fmt.Fprintf(w, "%-12s %6.0fdBm  %s\n", "4B", pw, b)
	}
}

// ---------------------------------------------------------------------------
// Headline ("Table H"): 4B vs MultiHopLQI on Mirage and TutorNet — the
// abstract's 29%/44% cost reductions and 99.9%/99% vs ~93%/85% deliveries.
// ---------------------------------------------------------------------------

// HeadlineResult holds the two-testbed comparison.
type HeadlineResult struct {
	Testbeds []string
	FB       []*Result
	LQI      []*Result
}

// RunHeadline executes 4B and MultiHopLQI on both testbeds on the default
// worker pool.
func RunHeadline(seed uint64, duration sim.Time) *HeadlineResult {
	return RunHeadlineWorkers(seed, duration, DefaultWorkers())
}

// HeadlineBatch builds the declarative run batch behind the headline
// comparison: (4B, MultiHopLQI) on Mirage then TutorNet.
func HeadlineBatch(seed uint64, duration sim.Time) []RunConfig {
	var rcs []RunConfig
	for _, tb := range []*topo.Topology{topo.Mirage(seed), topo.TutorNet(seed)} {
		for _, p := range []Protocol{Proto4B, ProtoMultiHopLQI} {
			rc := DefaultRunConfig(p, tb, seed)
			rc.Duration = duration
			rcs = append(rcs, rc)
		}
	}
	return rcs
}

// RunHeadlineWorkers is RunHeadline on an explicit worker count.
func RunHeadlineWorkers(seed uint64, duration sim.Time, workers int) *HeadlineResult {
	rcs := HeadlineBatch(seed, duration)
	return AssembleHeadline(rcs, RunAllWorkers(rcs, workers))
}

// AssembleHeadline regroups a HeadlineBatch's results into the headline
// result structure.
func AssembleHeadline(rcs []RunConfig, runs []*Result) *HeadlineResult {
	out := &HeadlineResult{}
	for i := 0; i < len(runs); i += 2 {
		out.Testbeds = append(out.Testbeds, rcs[i].Topo.Name)
		out.FB = append(out.FB, runs[i])
		out.LQI = append(out.LQI, runs[i+1])
	}
	return out
}

// Fprint renders the headline table.
func (r *HeadlineResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Headline: 4B vs MultiHopLQI (paper: Mirage -29% cost, 99.9% vs ~93-96%;")
	fmt.Fprintln(w, "          TutorNet -44% cost, 99% vs 85%)")
	fmt.Fprintf(w, "%-14s %-12s %8s %8s %10s\n", "testbed", "protocol", "cost", "depth", "delivery")
	for i, name := range r.Testbeds {
		for _, res := range []*Result{r.FB[i], r.LQI[i]} {
			fmt.Fprintf(w, "%-14s %-12s %8.2f %8.2f %9.2f%%\n",
				name, res.Protocol.String(), res.Cost, res.MeanDepth, res.DeliveryRatio*100)
		}
		if r.LQI[i].Cost > 0 {
			fmt.Fprintf(w, "%-14s cost reduction: %.0f%%\n",
				name, 100*(r.LQI[i].Cost-r.FB[i].Cost)/r.LQI[i].Cost)
		}
	}
}
