package experiment

import (
	"fmt"
	"io"

	"fourbit/internal/core"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// ---------------------------------------------------------------------------
// Estimator comparison: the paper's central claim run as a first-class
// workload. One router (CTP), one topology, one seed — only the link
// estimator varies: the four-bit hybrid against the beacon-only WMEWMA/ETX
// baseline, the windowed-mean PDR family, and pure-LQI estimation. The
// reproduction target is the qualitative ordering of delivery cost:
// four-bit below the beacon-only and LQI estimators.
// ---------------------------------------------------------------------------

// EstCompareKinds is the estimator axis of the comparison, in display
// order.
var EstCompareKinds = []core.EstimatorKind{
	core.KindFourBit, core.KindWMEWMA, core.KindPDR, core.KindLQI,
}

// estCompare pins the comparison testbed: the default grid topology
// (8 x 8 nodes at the generator's standard 6 m spacing, root in a corner)
// at reduced transmit power, so routes are several hops long and the grey
// region — where estimator quality decides cost — covers many links.
const (
	estCompareRows     = 8
	estCompareCols     = 8
	estCompareSpacingM = 6
	estComparePowerDBm = -12.5
)

// EstCompareTopo builds the comparison grid.
func EstCompareTopo() *topo.Topology {
	return topo.Grid(estCompareRows, estCompareCols, estCompareSpacingM)
}

// EstComparePower is the transmit power the comparison runs at.
func EstComparePower() float64 { return estComparePowerDBm }

// EstCompareBatch builds the declarative run batch behind the comparison:
// one CTP run per estimator kind on the default grid.
func EstCompareBatch(seed uint64, duration sim.Time) []RunConfig {
	tp := EstCompareTopo()
	var rcs []RunConfig
	for _, k := range EstCompareKinds {
		rc := DefaultRunConfig(Proto4B, tp, seed)
		rc.Estimator = k
		rc.TxPowerDBm = estComparePowerDBm
		rc.Duration = duration
		rcs = append(rcs, rc)
	}
	return rcs
}

// EstCompareResult holds the per-estimator runs, ordered as
// EstCompareKinds.
type EstCompareResult struct {
	Topo *topo.Topology
	Runs []*Result
}

// RunEstCompare executes the comparison on the default worker pool.
func RunEstCompare(seed uint64, duration sim.Time) *EstCompareResult {
	return RunEstCompareWorkers(seed, duration, DefaultWorkers())
}

// RunEstCompareWorkers is RunEstCompare on an explicit worker count.
func RunEstCompareWorkers(seed uint64, duration sim.Time, workers int) *EstCompareResult {
	rcs := EstCompareBatch(seed, duration)
	return &EstCompareResult{Topo: rcs[0].Topo, Runs: RunAllWorkers(rcs, workers)}
}

// ByKind returns the run for an estimator kind, or nil.
func (r *EstCompareResult) ByKind(k core.EstimatorKind) *Result {
	for _, res := range r.Runs {
		if res.Estimator == k {
			return res
		}
	}
	return nil
}

// Fprint renders the comparison table plus the headline orderings,
// including the estimator-internal counters that explain them (a pure-LQI
// estimator completes no unicast windows; a beacon-only one completes no
// fewer beacon windows than four-bit but reacts at beacon cadence).
func (r *EstCompareResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Estimator comparison: CTP on %s at %.1f dBm (router fixed, estimator swapped)\n",
		r.Topo.Name, estComparePowerDBm)
	fmt.Fprintf(w, "%-8s %8s %8s %10s %12s %12s %12s\n",
		"est", "cost", "depth", "delivery", "beacon-wins", "unicast-wins", "replaced")
	for _, res := range r.Runs {
		fmt.Fprintf(w, "%-8s %8.2f %8.2f %9.1f%% %12d %12d %12d\n",
			string(res.Estimator), res.Cost, res.MeanDepth, res.DeliveryRatio*100,
			res.EstBeaconWin, res.EstUnicastWin, res.EstReplaced)
	}
	fb := r.ByKind(core.KindFourBit)
	if fb == nil {
		return
	}
	for _, k := range []core.EstimatorKind{core.KindWMEWMA, core.KindPDR, core.KindLQI} {
		if other := r.ByKind(k); other != nil && other.Cost > 0 {
			fmt.Fprintf(w, "4bit cost vs %s: %+.0f%%\n", string(k), 100*(fb.Cost-other.Cost)/other.Cost)
		}
	}
}
