package experiment

import (
	"strings"
	"testing"

	"fourbit/internal/core"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// The harness tests run compressed versions of each figure and assert the
// paper's qualitative findings — the orderings and directions, not the
// absolute values. They are the repository's regression net for the
// reproduction itself. Durations are chosen as the shortest that give
// stable orderings; `go test` stays interactive, the full-scale runs live
// in the fourbitsim CLI.

const testMinutes = 6 * sim.Minute

func TestFig2Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	r := RunFig2(1, testMinutes)
	ctp, lqi, unlimited := r.Runs[0], r.Runs[1], r.Runs[2]
	if ctp.Protocol != ProtoCTP || lqi.Protocol != ProtoMultiHopLQI || unlimited.Protocol != ProtoCTPUnlimited {
		t.Fatal("run order wrong")
	}
	// Paper Figure 2's core claim: the 10-entry link table inflates CTP's
	// cost well above both alternatives (paper: 3.14 vs 2.28 and 1.86).
	// The relative order of MultiHopLQI and CTP-unlimited varies with the
	// channel realization here (see EXPERIMENTS.md); the restricted-table
	// penalty is the robust effect.
	if !(ctp.Cost > lqi.Cost) {
		t.Errorf("cost ordering: CTP %.2f should exceed MultiHopLQI %.2f", ctp.Cost, lqi.Cost)
	}
	if !(ctp.Cost > unlimited.Cost) {
		t.Errorf("cost ordering: CTP %.2f should exceed CTP-unlimited %.2f", ctp.Cost, unlimited.Cost)
	}
	// The restricted table produces deeper trees than the unrestricted one.
	if !(ctp.MeanDepth > unlimited.MeanDepth) {
		t.Errorf("depth: CTP(10) %.2f should exceed CTP(unlimited) %.2f", ctp.MeanDepth, unlimited.MeanDepth)
	}
}

func TestFig6Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	r := RunFig6(1, testMinutes)
	get := func(p Protocol) *Result {
		res := r.byProto(p)
		if res == nil {
			t.Fatalf("missing %v run", p)
		}
		return res
	}
	ctp := get(ProtoCTP)
	fb := get(Proto4B)
	lqi := get(ProtoMultiHopLQI)
	unidir := get(ProtoCTPUnidir)
	white := get(ProtoCTPWhite)

	// Adding bits to CTP reduces cost (paper: ack bit -31%, white -15%,
	// all bits -45%).
	if !(fb.Cost < ctp.Cost) {
		t.Errorf("4B cost %.2f should be below CTP %.2f", fb.Cost, ctp.Cost)
	}
	if !(unidir.Cost < ctp.Cost) {
		t.Errorf("CTP+unidir cost %.2f should be below CTP %.2f", unidir.Cost, ctp.Cost)
	}
	// The white/compare bits alone are the weakest addition (paper: -15%);
	// at this compressed duration allow the transient some slack.
	if !(white.Cost < ctp.Cost*1.15) {
		t.Errorf("CTP+white cost %.2f should not exceed CTP %.2f by >15%%", white.Cost, ctp.Cost)
	}
	// 4B beats the MultiHopLQI baseline.
	if !(fb.Cost < lqi.Cost) {
		t.Errorf("4B cost %.2f should be below MultiHopLQI %.2f", fb.Cost, lqi.Cost)
	}
	// And everyone delivers; 4B near-perfectly (paper: 99.9%).
	if fb.DeliveryRatio < 0.98 {
		t.Errorf("4B delivery %.3f < 0.98", fb.DeliveryRatio)
	}
	if ctp.DeliveryRatio < 0.85 {
		t.Errorf("CTP delivery %.3f < 0.85", ctp.DeliveryRatio)
	}
}

func TestFig7PowerTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	r := RunPowerSweep(1, testMinutes)
	// Cost and depth increase as power decreases, for both protocols.
	for i := 1; i < len(r.Powers); i++ {
		if !(r.FB[i].Cost > r.FB[i-1].Cost) {
			t.Errorf("4B cost not increasing: %.2f -> %.2f at %v dBm",
				r.FB[i-1].Cost, r.FB[i].Cost, r.Powers[i])
		}
		if !(r.LQI[i].Cost > r.LQI[i-1].Cost) {
			t.Errorf("LQI cost not increasing at %v dBm", r.Powers[i])
		}
		if !(r.FB[i].MeanDepth > r.FB[i-1].MeanDepth) {
			t.Errorf("4B depth not increasing at %v dBm", r.Powers[i])
		}
	}
	// 4B is cheaper at every power (paper: 11..29% improvement).
	for i, pw := range r.Powers {
		if !(r.FB[i].Cost < r.LQI[i].Cost) {
			t.Errorf("at %v dBm 4B cost %.2f !< MultiHopLQI %.2f", pw, r.FB[i].Cost, r.LQI[i].Cost)
		}
	}
}

func TestFig8DeliveryDistributions(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	r := RunPowerSweep(1, testMinutes)
	last := len(r.Powers) - 1 // -20 dBm
	fbWorst := minOf(r.FB[last].PerNodeDelivery)
	lqiWorst := minOf(r.LQI[last].PerNodeDelivery)
	// Paper Figure 8: 4B maintains high, tight distributions; MultiHopLQI
	// grows a long low tail as power falls. (The compressed duration here
	// includes the route-formation transient, so the bound is looser than
	// the paper-scale >= 0.97.)
	if fbWorst < 0.75 {
		t.Errorf("4B worst node at -20 dBm = %.3f, want >= 0.75", fbWorst)
	}
	if !(lqiWorst < fbWorst) {
		t.Errorf("MultiHopLQI worst node %.3f should be below 4B's %.3f", lqiWorst, fbWorst)
	}
	if r.FB[last].DeliveryRatio < 0.97 {
		t.Errorf("4B mean delivery at -20 dBm = %.3f", r.FB[last].DeliveryRatio)
	}
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func TestFig3Phenomenon(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	cfg := DefaultFig3Config(1)
	cfg.Duration = 90 * sim.Minute
	cfg.DegradeFrom = 30 * sim.Minute
	cfg.DegradeUntil = 60 * sim.Minute
	cfg.Window = 5 * sim.Minute
	res := RunFig3(cfg)
	if res.P < 0 || res.C < 0 {
		t.Fatal("no stable link selected")
	}
	// PRR collapses...
	if !(res.PRRDuring < res.PRRBefore-0.15) {
		t.Errorf("PRR did not collapse: %.3f -> %.3f", res.PRRBefore, res.PRRDuring)
	}
	// ...while the LQI of received packets stays high...
	if res.LQIDuring < 100 {
		t.Errorf("LQI during degradation = %.1f, want saturated (>= 100)", res.LQIDuring)
	}
	// ...and unacked transmissions ramp sharply.
	if !(res.UnackedRateDuring > 5*res.UnackedRateBefore+10) {
		t.Errorf("unacked ramp %.1f/h -> %.1f/h not sharp",
			res.UnackedRateBefore, res.UnackedRateDuring)
	}
}

func TestHeadlineDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	r := RunHeadline(1, testMinutes)
	for i, name := range r.Testbeds {
		if !(r.FB[i].Cost < r.LQI[i].Cost) {
			t.Errorf("%s: 4B cost %.2f !< MultiHopLQI %.2f", name, r.FB[i].Cost, r.LQI[i].Cost)
		}
		if !(r.FB[i].DeliveryRatio > r.LQI[i].DeliveryRatio-0.001) {
			t.Errorf("%s: 4B delivery %.3f not above MultiHopLQI %.3f",
				name, r.FB[i].DeliveryRatio, r.LQI[i].DeliveryRatio)
		}
		if r.FB[i].DeliveryRatio < 0.98 {
			t.Errorf("%s: 4B delivery %.3f below 0.98", name, r.FB[i].DeliveryRatio)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() *Result {
		rc := DefaultRunConfig(Proto4B, topo.Mirage(3), 3)
		rc.Duration = 2 * sim.Minute
		return Run(rc)
	}
	a, b := run(), run()
	if a.Unique != b.Unique || a.DataTx != b.DataTx || a.Events != b.Events {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestProtocolNames(t *testing.T) {
	names := map[Protocol]string{
		Proto4B:           "4B",
		ProtoCTP:          "CTP",
		ProtoCTPUnidir:    "CTP+unidir",
		ProtoCTPWhite:     "CTP+white",
		ProtoCTPUnlimited: "CTP-unlimited",
		ProtoMultiHopLQI:  "MultiHopLQI",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if !strings.HasPrefix(Protocol(99).String(), "Protocol(") {
		t.Error("unknown protocol formatting")
	}
}

func TestRenderTreePlacesRootAndDepths(t *testing.T) {
	tp := topo.Line(3, 10)
	out := RenderTree(tp, []int{-1, 0, 1}, 30, 3)
	if !strings.Contains(out, "R") {
		t.Fatal("root not rendered")
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Fatalf("depths not rendered:\n%s", out)
	}
}

func TestRenderTreeDetached(t *testing.T) {
	tp := topo.Line(3, 10)
	out := RenderTree(tp, []int{-1, 0, -1}, 30, 3)
	if !strings.Contains(out, ".") {
		t.Fatalf("detached node not rendered:\n%s", out)
	}
}

func TestDepthHistogram(t *testing.T) {
	h := DepthHistogram([]int{0, 1, 1, 2, -1}, 0)
	if !strings.Contains(h, "1:2") || !strings.Contains(h, "2:1") || !strings.Contains(h, "detached:1") {
		t.Fatalf("histogram = %q", h)
	}
}

func TestEnvConfigForTestbeds(t *testing.T) {
	mir := EnvConfigFor(topo.Mirage(1), 1, 0)
	tut := EnvConfigFor(topo.TutorNet(1), 1, 0)
	if !(tut.Phy.FadeSigmaDB > mir.Phy.FadeSigmaDB) {
		t.Error("TutorNet should fade harder than Mirage")
	}
	if !(tut.Phy.TxVarSigmaDB > mir.Phy.TxVarSigmaDB) {
		t.Error("TutorNet should be more asymmetric than Mirage")
	}
}

func TestEstConfigVariants(t *testing.T) {
	if estConfig(Proto4B).Features != core.FourBit() {
		t.Error("4B features wrong")
	}
	if estConfig(ProtoCTP).Features != core.BroadcastOnly() {
		t.Error("CTP features wrong")
	}
	if got := estConfig(ProtoCTPUnlimited).TableSize; got <= 100 {
		t.Errorf("unlimited table size = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("estConfig(MultiHopLQI) should panic")
		}
	}()
	estConfig(ProtoMultiHopLQI)
}

// TestFig3RejectsDegenerateBadFraction pins the config-time validation:
// BadFraction at or beyond the (0,1) endpoints must fail immediately with
// the knob named, not mid-run inside the Gilbert–Elliott constructor.
func TestFig3RejectsDegenerateBadFraction(t *testing.T) {
	for _, f := range []float64{0, 1, -0.2, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BadFraction=%g: RunFig3 did not panic", f)
				}
			}()
			cfg := DefaultFig3Config(1)
			cfg.BadFraction = f
			RunFig3(cfg)
		}()
	}
}
