package experiment

import (
	"flag"
	"os"
	"strings"
	"testing"

	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// The performance kernel (PRR decision table, pooled timers, cached gain
// paths) must not change simulation trajectories by a single bit: the fast
// paths are certified-exact rewrites of the analytic model, not
// approximations of it. This test pins that property by fingerprinting
// short runs — every float down to its last mantissa bit — against goldens
// generated before the kernel existed. Any divergence, however small, is a
// correctness bug in a fast path, not noise.
//
// Regenerate (only for deliberate, documented model changes) with:
//
//	go test ./internal/experiment -run TestGoldenRunFingerprints -update-goldens

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden_runs.txt from the current model")

func goldenConfigs() []RunConfig {
	short := func(rc RunConfig) RunConfig {
		rc.Duration = 2 * sim.Minute
		rc.Warmup = 30 * sim.Second
		rc.SampleEvery = 30 * sim.Second
		return rc
	}
	return []RunConfig{
		short(DefaultRunConfig(Proto4B, topo.Mirage(1), 1)),
		short(DefaultRunConfig(ProtoCTP, topo.Mirage(2), 2)),
		short(DefaultRunConfig(ProtoMultiHopLQI, topo.Mirage(3), 3)),
		func() RunConfig {
			rc := short(DefaultRunConfig(Proto4B, topo.TutorNet(4), 4))
			rc.TxPowerDBm = -10
			return rc
		}(),
	}
}

// TestGoldenConfigsSelectDensePath pins that every golden configuration
// stays on the dense channel representation: the goldens certify the dense
// reference trajectories, so if a threshold change ever flipped one of
// them to the sparse path, the fingerprint comparison would silently start
// certifying the wrong thing. (The sparse path has its own differential
// harness against the dense one; this keeps the anchor fixed.)
func TestGoldenConfigsSelectDensePath(t *testing.T) {
	for _, rc := range goldenConfigs() {
		cfg := resolveEnv(rc)
		pre := phy.PrecomputeGeo(rc.Topo, cfg.Phy)
		if pre.Sparse() {
			t.Errorf("golden %s/%v selects the sparse representation; goldens must stay dense",
				rc.Topo.Name, rc.Protocol)
		}
	}
}

func TestGoldenRunFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated runs; skipped in -short")
	}
	var b strings.Builder
	for _, rc := range goldenConfigs() {
		b.WriteString(Fingerprint(rc, Run(rc)))
	}
	got := b.String()

	const path = "testdata/golden_runs.txt"
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-goldens to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("run fingerprints diverged from pre-kernel goldens.\nThis means an 'exact' fast path changed simulation behavior.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
