package experiment

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// The performance kernel (PRR decision table, pooled timers, cached gain
// paths) must not change simulation trajectories by a single bit: the fast
// paths are certified-exact rewrites of the analytic model, not
// approximations of it. This test pins that property by fingerprinting
// short runs — every float down to its last mantissa bit — against goldens
// generated before the kernel existed. Any divergence, however small, is a
// correctness bug in a fast path, not noise.
//
// Regenerate (only for deliberate, documented model changes) with:
//
//	go test ./internal/experiment -run TestGoldenRunFingerprints -update-goldens

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden_runs.txt from the current model")

func goldenConfigs() []RunConfig {
	short := func(rc RunConfig) RunConfig {
		rc.Duration = 2 * sim.Minute
		rc.Warmup = 30 * sim.Second
		rc.SampleEvery = 30 * sim.Second
		return rc
	}
	return []RunConfig{
		short(DefaultRunConfig(Proto4B, topo.Mirage(1), 1)),
		short(DefaultRunConfig(ProtoCTP, topo.Mirage(2), 2)),
		short(DefaultRunConfig(ProtoMultiHopLQI, topo.Mirage(3), 3)),
		func() RunConfig {
			rc := short(DefaultRunConfig(Proto4B, topo.TutorNet(4), 4))
			rc.TxPowerDBm = -10
			return rc
		}(),
	}
}

// hexf formats a float with its exact bit pattern so fingerprints cannot
// hide sub-ulp drift behind decimal rounding.
func hexf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func fingerprint(rc RunConfig, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run proto=%v topo=%s seed=%d power=%s dur=%v\n",
		rc.Protocol, rc.Topo.Name, rc.Seed, hexf(rc.TxPowerDBm), rc.Duration)
	fmt.Fprintf(&b, "  generated=%d unique=%d dups=%d datatx=%d beacontx=%d events=%d detached=%d\n",
		res.Generated, res.Unique, res.Duplicates, res.DataTx, res.BeaconTx, res.Events, res.Detached)
	fmt.Fprintf(&b, "  delivery=%s cost=%s meandepth=%s meanhops=%s\n",
		hexf(res.DeliveryRatio), hexf(res.Cost), hexf(res.MeanDepth), hexf(res.MeanHops))
	fmt.Fprintf(&b, "  est=%d/%d/%d\n", res.EstInserted, res.EstReplaced, res.EstRejected)
	fmt.Fprintf(&b, "  parents=%v\n", res.FinalParents)
	fmt.Fprintf(&b, "  depths=%v\n", res.FinalDepths)
	b.WriteString("  pernode=")
	for i, v := range res.PerNodeDelivery {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(hexf(v))
	}
	b.WriteByte('\n')
	return b.String()
}

func TestGoldenRunFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated runs; skipped in -short")
	}
	var b strings.Builder
	for _, rc := range goldenConfigs() {
		b.WriteString(fingerprint(rc, Run(rc)))
	}
	got := b.String()

	const path = "testdata/golden_runs.txt"
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-goldens to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("run fingerprints diverged from pre-kernel goldens.\nThis means an 'exact' fast path changed simulation behavior.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
