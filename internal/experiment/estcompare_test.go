package experiment

import (
	"bytes"
	"strings"
	"testing"

	"fourbit/internal/core"
)

// TestEstCompareOrderings asserts the comparison workload's reproduction
// target — the paper's central claim restated over one fixed router: the
// four-bit hybrid beats both the beacon-only (WMEWMA/ETX) estimator and
// pure-LQI estimation on delivery cost, on the default grid.
func TestEstCompareOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	r := RunEstCompare(1, testMinutes)
	if len(r.Runs) != len(EstCompareKinds) {
		t.Fatalf("runs = %d, want %d", len(r.Runs), len(EstCompareKinds))
	}
	get := func(k core.EstimatorKind) *Result {
		res := r.ByKind(k)
		if res == nil {
			t.Fatalf("missing %s run", k)
		}
		return res
	}
	fb := get(core.KindFourBit)
	wmewma := get(core.KindWMEWMA)
	lqi := get(core.KindLQI)
	pdr := get(core.KindPDR)

	if !(fb.Cost < wmewma.Cost) {
		t.Errorf("cost ordering: 4bit %.2f should beat wmewma %.2f", fb.Cost, wmewma.Cost)
	}
	if !(fb.Cost < lqi.Cost) {
		t.Errorf("cost ordering: 4bit %.2f should beat lqi %.2f", fb.Cost, lqi.Cost)
	}
	if !(fb.Cost < pdr.Cost) {
		t.Errorf("cost ordering: 4bit %.2f should beat pdr %.2f", fb.Cost, pdr.Cost)
	}
	// Delivery, the paper's other headline: the hybrid should also deliver
	// at least as reliably as the physical-layer-only estimator.
	if !(fb.DeliveryRatio > lqi.DeliveryRatio) {
		t.Errorf("delivery: 4bit %.3f should exceed lqi %.3f", fb.DeliveryRatio, lqi.DeliveryRatio)
	}
	// Counter sanity: only the hybrid consumes the ack bit; every kind
	// processes beacons.
	if fb.EstUnicastWin == 0 {
		t.Error("4bit completed no unicast windows")
	}
	for _, k := range []core.EstimatorKind{core.KindWMEWMA, core.KindPDR, core.KindLQI} {
		res := get(k)
		if res.EstUnicastWin != 0 {
			t.Errorf("%s completed %d unicast windows, want 0", k, res.EstUnicastWin)
		}
		if res.EstBeaconsIn == 0 {
			t.Errorf("%s processed no beacons", k)
		}
	}
}

// TestEstCompareRendering smoke-checks the figure output shape without
// running a simulation.
func TestEstCompareRendering(t *testing.T) {
	r := &EstCompareResult{Topo: EstCompareTopo(), Runs: []*Result{
		{Estimator: core.KindFourBit, Cost: 2, MeanDepth: 2.5, DeliveryRatio: 0.99},
		{Estimator: core.KindWMEWMA, Cost: 4, MeanDepth: 2.6, DeliveryRatio: 0.93},
		{Estimator: core.KindLQI, Cost: 6, MeanDepth: 2.7, DeliveryRatio: 0.88},
	}}
	var b bytes.Buffer
	r.Fprint(&b)
	out := b.String()
	for _, want := range []string{"grid-8x8", "4bit", "wmewma", "lqi", "4bit cost vs wmewma: -50%", "4bit cost vs lqi: -67%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
