package experiment

import (
	"fmt"
	"strconv"
	"strings"
)

// hexf formats a float with its exact bit pattern so fingerprints cannot
// hide sub-ulp drift behind decimal rounding.
func hexf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// Fingerprint renders a run's configuration and full result — every float
// down to its last mantissa bit — as a stable text block. The golden tests
// diff it against committed references, and the spatial-culling
// differential harness diffs it across channel representations: two runs
// fingerprint identically iff their trajectories were bit-for-bit the
// same.
func Fingerprint(rc RunConfig, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run proto=%v topo=%s seed=%d power=%s dur=%v\n",
		rc.Protocol, rc.Topo.Name, rc.Seed, hexf(rc.TxPowerDBm), rc.Duration)
	fmt.Fprintf(&b, "  generated=%d unique=%d dups=%d datatx=%d beacontx=%d events=%d detached=%d\n",
		res.Generated, res.Unique, res.Duplicates, res.DataTx, res.BeaconTx, res.Events, res.Detached)
	fmt.Fprintf(&b, "  delivery=%s cost=%s meandepth=%s meanhops=%s\n",
		hexf(res.DeliveryRatio), hexf(res.Cost), hexf(res.MeanDepth), hexf(res.MeanHops))
	fmt.Fprintf(&b, "  est=%d/%d/%d\n", res.EstInserted, res.EstReplaced, res.EstRejected)
	fmt.Fprintf(&b, "  parents=%v\n", res.FinalParents)
	fmt.Fprintf(&b, "  depths=%v\n", res.FinalDepths)
	b.WriteString("  pernode=")
	for i, v := range res.PerNodeDelivery {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(hexf(v))
	}
	b.WriteByte('\n')
	return b.String()
}
