package experiment

import (
	"flag"
	"fmt"
	"testing"

	"fourbit/internal/node"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// The region-sharded event loop promises bit-identical results for ANY
// shard count. The differential matrices below certify it end to end on
// the city presets' conditions. Run economics: a sharded 2000-node run
// costs ~0.7 s of wall clock per simulated second on one core, so the
// exhaustive matrix (shards ∈ {1,2,4,8} × powers × dynamics × both city
// topologies, long runs) is an on-demand certification:
//
//	go test ./internal/experiment -run TestShardCountInvariance -shard-cert
//
// The default suite runs a trimmed but still end-to-end sub-matrix (full
// count axis at full power on the 2k corridor; count-axis endpoints for
// the other variants), and everything here skips under -race — the race
// detector's shard coverage is TestShardDispatchRace (`make shard-race`),
// sized for it.
var shardCert = flag.Bool("shard-cert", false, "run the exhaustive shard-count certification matrix")

// TestGoldenConfigsSelectSerialPath pins that every golden configuration
// resolves to the serial event loop: the goldens certify the serial
// reference trajectories byte-for-byte, so if the auto-sharding threshold
// ever captured one of them, the fingerprint comparison would silently
// start certifying the sharded trajectory instead. The companion of
// TestGoldenConfigsSelectDensePath, for the execution axis rather than
// the channel-representation axis.
func TestGoldenConfigsSelectSerialPath(t *testing.T) {
	for _, rc := range goldenConfigs() {
		if got := resolveShards(rc); got != 0 {
			t.Errorf("golden %s/%v resolves to %d shards; goldens must stay serial",
				rc.Topo.Name, rc.Protocol, got)
		}
	}
}

// cityShardRC builds the city-preset run conditions (urban path-loss
// exponent 4.0, compressed boot window — mirroring scenario.cityPreset)
// over tp with a forced shard count. pre shares the immutable channel
// precompute across the shard counts under comparison, which is both the
// production batch configuration and what keeps the differentials
// affordable.
func cityShardRC(tp *topo.Topology, pre *phy.ChannelPre, power float64, shards int, dur, warm sim.Time) RunConfig {
	rc := DefaultRunConfig(Proto4B, tp, 1)
	rc.TxPowerDBm = power
	rc.Duration = dur
	rc.Warmup = warm
	rc.SampleEvery = 10 * sim.Second
	rc.Workload.BootWindow = 10 * sim.Second
	env := EnvConfigFor(tp, rc.Seed, power)
	env.Phy.PathLossExponent = 4.0
	env.ChanPre = pre
	rc.Env = &env
	rc.Shards = shards
	return rc
}

// cityPre builds the shared channel precompute for cityShardRC configs.
func cityPre(tp *topo.Topology) *phy.ChannelPre {
	env := EnvConfigFor(tp, 1, 0)
	env.Phy.PathLossExponent = 4.0
	return phy.PrecomputeGeo(tp, env.Phy)
}

// fullCounts is the issue's certification set; trimmedCounts are its
// endpoints (1 exercises the single-shard sharded machinery, 8 the widest
// merge). Only Shards = -1 or a small-run auto selects the serial path —
// shards=1 is still the sharded world.
var (
	fullCounts    = []int{1, 2, 4, 8}
	trimmedCounts = []int{1, 8}
)

// assertShardInvariant runs build(shards) for every count and fails if
// any fingerprint differs from the first.
func assertShardInvariant(t *testing.T, counts []int, build func(shards int) RunConfig) {
	t.Helper()
	var want string
	for _, shards := range counts {
		rc := build(shards)
		fp := Fingerprint(rc, Run(rc))
		if want == "" {
			want = fp
			continue
		}
		if fp != want {
			t.Errorf("shards=%d fingerprint diverged from shards=%d", shards, counts[0])
		}
	}
}

func skipUnlessDifferential(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("city-scale differential; skipped in -short")
	}
	if raceEnabled {
		t.Skip("city-scale differential; skipped under -race (see TestShardDispatchRace)")
	}
}

// TestShardCountInvarianceCity2k certifies the tentpole determinism
// contract end to end on the 2000-node urban corridor: full protocol
// stack, sparse channel, region sharding — the complete run fingerprint
// (every float to its last mantissa bit, the counted event total
// included) must be identical across shard counts, at full and marginal
// power and under scripted mid-run dynamics.
func TestShardCountInvarianceCity2k(t *testing.T) {
	skipUnlessDifferential(t)
	tp := topo.Corridor(2000, 1500, 40, 1)
	pre := cityPre(tp)
	if !pre.Sparse() {
		t.Fatal("2k corridor no longer selects the sparse channel; differential preconditions changed")
	}
	dur, warm := 20*sim.Second, 8*sim.Second
	if *shardCert {
		dur, warm = 40*sim.Second, 15*sim.Second
	}
	variants := []struct {
		name   string
		power  float64
		dyn    bool
		counts []int
	}{
		{"p0", 0, false, fullCounts},
		{"p-6", -6, false, trimmedCounts},
		{"dynamics", 0, true, trimmedCounts},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			counts := v.counts
			if *shardCert {
				counts = fullCounts
			}
			assertShardInvariant(t, counts, func(shards int) RunConfig {
				rc := cityShardRC(tp, pre, v.power, shards, dur, warm)
				if v.dyn {
					rc.EnvMutate = shardTestDynamics
				}
				return rc
			})
		})
	}
}

// TestShardCountInvarianceCity10k repeats the certification on the
// 10000-node multifloor block — the deployment whose scale motivates the
// sharded loop — with one short run per shard count over a shared channel
// precompute.
func TestShardCountInvarianceCity10k(t *testing.T) {
	skipUnlessDifferential(t)
	tp := topo.MultiFloor(10000, 8, 600, 300, 1)
	pre := cityPre(tp)
	counts, dur, warm := trimmedCounts, 10*sim.Second, 4*sim.Second
	if *shardCert {
		counts, dur, warm = fullCounts, 18*sim.Second, 6*sim.Second
	}
	assertShardInvariant(t, counts, func(shards int) RunConfig {
		return cityShardRC(tp, pre, 0, shards, dur, warm)
	})
}

// TestShardDispatchRace is a deliberately small sharded run for the race
// detector (the `make shard-race` CI step): enough shards for real
// cross-goroutine handoff and barrier-control dynamics, short enough that
// -race stays cheap.
func TestShardDispatchRace(t *testing.T) {
	tp := topo.Corridor(2000, 1500, 40, 1)
	rc := cityShardRC(tp, cityPre(tp), 0, 4, 8*sim.Second, 3*sim.Second)
	rc.EnvMutate = shardTestDynamics
	res := Run(rc)
	if res.Generated == 0 {
		t.Fatal("sharded race smoke generated no traffic")
	}
}

// shardTestDynamics is a scripted mid-run disturbance using only
// shard-safe machinery: radio mutations through barrier controls and
// per-receiver noise bursts (each Gilbert-Elliott process is sampled only
// by its receiver's shard). It mirrors what scenario dynamics compile to
// in sharded mode. Times sit inside even the shortest run above so every
// variant actually exercises them.
func shardTestDynamics(env *node.Env) {
	n := env.Topo.N()
	for i := 50; i < n; i += 97 {
		ge := phy.NewGilbertElliott(25, 3*sim.Second, 500*sim.Millisecond,
			env.Seeds.Stream(fmt.Sprintf("shardtest/noise/%d", i))).
			Window(3*sim.Second, 18*sim.Second)
		env.Chan.AddNoiseModifier(i, ge)
	}
	env.ScheduleControl(4*sim.Second, func() {
		for i := 7; i < n; i += 131 {
			if !env.IsRoot(i) {
				env.Medium.Radio(i).SetTxPower(-8)
			}
		}
	})
	env.ScheduleControl(5*sim.Second, func() {
		for i := 11; i < n; i += 211 {
			if !env.IsRoot(i) {
				env.Medium.Radio(i).SetDown(true)
			}
		}
	})
	env.ScheduleControl(7*sim.Second, func() {
		for i := 11; i < n; i += 211 {
			env.Medium.Radio(i).SetDown(false)
		}
	})
}
