//go:build race

package experiment

// raceEnabled reports that this test binary was built with the race
// detector. The shard-count differential matrices skip under it: -race
// multiplies their minutes-long city runs past any CI budget, and the
// sharded dispatch surface has its own race coverage sized for the
// detector (TestShardDispatchRace, the `make shard-race` step).
const raceEnabled = true
