package experiment

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"fourbit/internal/core"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// The run scheduler. Every figure of the evaluation is a batch of
// *independent* collection simulations — each Run builds its own clock,
// channel and seed space, and shares only the immutable Topology — so the
// batch parallelizes perfectly. RunAll executes a batch on a bounded worker
// pool and returns results in submission order; because the outcome of a
// run depends only on its RunConfig (seeds are derived per run, never from
// shared streams), a batch's results are byte-identical whether it executes
// serially, on two workers, or on sixteen.

// DefaultWorkers returns the worker-pool width used by RunAll: one worker
// per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunAll executes the runs on DefaultWorkers() workers. results[i] is the
// outcome of rcs[i].
func RunAll(rcs []RunConfig) []*Result { return RunAllWorkers(rcs, DefaultWorkers()) }

// shareChannelPre returns a copy of the batch in which every run whose
// environment does not already carry a channel precompute gets one shared
// per (topology, phy-params) cell: the O(n²·log10) channel geometry is
// built once per cell on the submitting goroutine and then read — never
// written — by every worker instantiating its per-seed channel from it.
// Transmit power is deliberately absent from the cell key: it never enters
// channel construction (radios apply it per frame), so a power sweep's
// cells all share one precompute.
func shareChannelPre(rcs []RunConfig) []RunConfig {
	type cellKey struct {
		tp  *topo.Topology
		phy phy.Params
	}
	out := make([]RunConfig, len(rcs))
	copy(out, rcs)
	pres := make(map[cellKey]*phy.ChannelPre)
	for i := range out {
		cfg := resolveEnv(out[i])
		if cfg.ChanPre != nil {
			continue
		}
		k := cellKey{out[i].Topo, cfg.Phy}
		pre, ok := pres[k]
		if !ok {
			pre = phy.PrecomputeGeo(out[i].Topo, cfg.Phy)
			pres[k] = pre
		}
		cfg.ChanPre = pre
		cfgCopy := cfg
		out[i].Env = &cfgCopy
	}
	return out
}

// RunAllWorkers executes the runs on a pool of at most workers goroutines
// (values < 2 mean serial execution in the calling goroutine). Results are
// returned in submission order and are independent of the worker count.
func RunAllWorkers(rcs []RunConfig, workers int) []*Result {
	rcs = shareChannelPre(rcs)
	results := make([]*Result, len(rcs))
	if workers > len(rcs) {
		workers = len(rcs)
	}
	if workers <= 1 {
		for i := range rcs {
			results[i] = Run(rcs[i])
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = Run(rcs[i])
			}
		}()
	}
	for i := range rcs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// Stat is a mean with its sample standard deviation (0 for a single run).
type Stat struct {
	Mean   float64
	Stddev float64
}

func (s Stat) String() string { return fmt.Sprintf("%.3f ±%.3f", s.Mean, s.Stddev) }

func newStat(vs []float64) Stat {
	if len(vs) == 0 {
		return Stat{}
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	mean := sum / float64(len(vs))
	if len(vs) < 2 {
		return Stat{Mean: mean}
	}
	var ss float64
	for _, v := range vs {
		d := v - mean
		ss += d * d
	}
	return Stat{Mean: mean, Stddev: math.Sqrt(ss / float64(len(vs)-1))}
}

// Replicated is the outcome of one RunConfig replicated across independent
// seeds: the per-seed results plus mean/stddev aggregates of the headline
// metrics. This is how figure numbers gain confidence intervals — the
// paper's single-testbed-run values correspond to one seed.
type Replicated struct {
	Protocol Protocol
	// Estimator is the link-estimator kind the runs used (empty for the
	// default four-bit path and for MultiHopLQI), taken from the runs
	// themselves so replicated output is attributable to its estimator.
	Estimator  core.EstimatorKind
	TxPowerDBm float64
	Seeds      []uint64
	Runs       []*Result

	Cost      Stat
	Delivery  Stat
	MeanDepth Stat
	MeanHops  Stat
	DataTx    Stat
	BeaconTx  Stat

	// Estimator-internal counters (zero for MultiHopLQI, which has no link
	// table): table dynamics and window/lottery activity, aggregated like
	// the headline metrics so sweeps can compare estimator behavior.
	EstBeacons  Stat
	EstInserted Stat
	EstReplaced Stat
	EstRejected Stat
	EstLottery  Stat
}

// ReplicaSeeds derives n independent run seeds from master through the
// deterministic seed space: replica i of a given master is always the same
// seed, and distinct replicas are decorrelated by the stream hash.
func ReplicaSeeds(master uint64, n int) []uint64 {
	ss := sim.NewSeedSpace(master)
	out := make([]uint64, n)
	for i := range out {
		out[i] = ss.Stream(fmt.Sprintf("replica/%d", i)).Uint64()
	}
	return out
}

// Replicate runs rc under nSeeds seeds derived from rc.Seed on the default
// worker pool and aggregates the results.
func Replicate(rc RunConfig, nSeeds int) *Replicated {
	return ReplicateWorkers(rc, nSeeds, DefaultWorkers())
}

// ReplicateWorkers is Replicate on an explicit worker count.
func ReplicateWorkers(rc RunConfig, nSeeds int, workers int) *Replicated {
	seeds := ReplicaSeeds(rc.Seed, nSeeds)
	rcs := make([]RunConfig, nSeeds)
	for i := range rcs {
		rcs[i] = rc
		rcs[i].Seed = seeds[i]
	}
	return Aggregate(rc.Protocol, rc.TxPowerDBm, seeds, RunAllWorkers(rcs, workers))
}

// Aggregate assembles a Replicated from runs executed elsewhere (the sweep
// engine batches every cell's replicas into one flat RunAll and regroups
// through this). seeds[i] must be the seed runs[i] executed under.
func Aggregate(p Protocol, txPowerDBm float64, seeds []uint64, runs []*Result) *Replicated {
	rep := &Replicated{
		Protocol:   p,
		TxPowerDBm: txPowerDBm,
		Seeds:      seeds,
		Runs:       runs,
	}
	if len(runs) > 0 {
		rep.Estimator = runs[0].Estimator
	}
	collect := func(f func(*Result) float64) Stat {
		vs := make([]float64, len(runs))
		for i, r := range runs {
			vs[i] = f(r)
		}
		return newStat(vs)
	}
	rep.Cost = collect(func(r *Result) float64 { return r.Cost })
	rep.Delivery = collect(func(r *Result) float64 { return r.DeliveryRatio })
	rep.MeanDepth = collect(func(r *Result) float64 { return r.MeanDepth })
	rep.MeanHops = collect(func(r *Result) float64 { return r.MeanHops })
	rep.DataTx = collect(func(r *Result) float64 { return float64(r.DataTx) })
	rep.BeaconTx = collect(func(r *Result) float64 { return float64(r.BeaconTx) })
	rep.EstBeacons = collect(func(r *Result) float64 { return float64(r.EstBeaconsIn) })
	rep.EstInserted = collect(func(r *Result) float64 { return float64(r.EstInserted) })
	rep.EstReplaced = collect(func(r *Result) float64 { return float64(r.EstReplaced) })
	rep.EstRejected = collect(func(r *Result) float64 { return float64(r.EstRejected) })
	rep.EstLottery = collect(func(r *Result) float64 { return float64(r.EstLotteryWins) })
	return rep
}

// Fprint renders the replication summary. A non-default estimator kind is
// named in the header (the default path prints exactly as it always has).
func (r *Replicated) Fprint(w io.Writer) {
	label := r.Protocol.String()
	if r.Estimator != "" {
		label += " (estimator " + string(r.Estimator) + ")"
	}
	fmt.Fprintf(w, "%s at %.0f dBm over %d seeds:\n", label, r.TxPowerDBm, len(r.Runs))
	fmt.Fprintf(w, "  cost      %s\n", r.Cost)
	fmt.Fprintf(w, "  delivery  %.3f ±%.3f\n", r.Delivery.Mean, r.Delivery.Stddev)
	fmt.Fprintf(w, "  depth     %s\n", r.MeanDepth)
	fmt.Fprintf(w, "  data tx   %.0f ±%.0f\n", r.DataTx.Mean, r.DataTx.Stddev)
	fmt.Fprintf(w, "  beacons   %.0f ±%.0f\n", r.BeaconTx.Mean, r.BeaconTx.Stddev)
}

// ParseProtocol maps the CLI names (as printed by Protocol.String) back to
// protocol identifiers.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range []Protocol{Proto4B, ProtoCTP, ProtoCTPUnidir, ProtoCTPWhite, ProtoCTPUnlimited, ProtoMultiHopLQI} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown protocol %q", s)
}
