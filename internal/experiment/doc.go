// Package experiment contains the harness that regenerates every measured
// figure of the paper's evaluation (Figures 2, 3, 6, 7, 8 and the headline
// cost/delivery comparisons). Each figure has a Run function returning a
// structured result and an Fprint function that renders the same rows or
// series the paper reports. DESIGN.md §4 is the experiment index.
package experiment
