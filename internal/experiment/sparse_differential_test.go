package experiment

import (
	"testing"

	"fourbit/internal/node"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// TestSparseDenseRunFingerprintsIdentical is the run-level differential
// harness for the spatial audible-set index: full protocol-stack runs over
// random topologies at different transmit powers, with and without
// scripted dynamics, executed once on the culled (sparse) channel and once
// on the exhaustive (dense) one. The bit-exact fingerprints — every metric
// down to the last mantissa bit, per-node — must be byte-identical: the
// sparse representation is a certified-exact rewrite, not an
// approximation, the same contract the PR 6 wheel-vs-heap differential
// pinned for the scheduler.
func TestSparseDenseRunFingerprintsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes of simulated time over >100-node topologies; skipped in -short")
	}

	type tcase struct {
		name     string
		tp       *topo.Topology
		powerDBm float64
		dynamics bool
	}
	cases := []tcase{
		{"uniform-140", topo.UniformRandom(140, 260, 260, 21), 0, false},
		{"clustered-120", topo.Clustered(120, 6, 300, 200, 25, 22), -7, true},
		{"corridor-130", topo.Corridor(130, 400, 30, 23), -4, true},
	}

	for _, tc := range cases {
		run := func(sparseAbove int) string {
			envCfg := node.DefaultEnvConfig(uint64(9000), tc.powerDBm)
			envCfg.Phy.SparseAboveN = sparseAbove
			rc := DefaultRunConfig(Proto4B, tc.tp, 9000)
			rc.TxPowerDBm = tc.powerDBm
			rc.Duration = 60 * sim.Second
			rc.Warmup = 15 * sim.Second
			rc.SampleEvery = 15 * sim.Second
			rc.Env = &envCfg
			if tc.dynamics {
				rc.EnvMutate = func(env *node.Env) {
					// Interference onset at one receiver, a bursty loss on
					// one link, and a mid-run node death — scripted
					// identically under both representations.
					env.Chan.AddNoiseModifier(5, phy.NewGilbertElliott(25,
						3*sim.Millisecond, 12*sim.Millisecond,
						sim.NewRand(71)).Window(20*sim.Second, sim.Hour))
					env.Chan.SetModifierBoth(3, 7, phy.NewGilbertElliott(35,
						4*sim.Millisecond, 15*sim.Millisecond,
						sim.NewRand(72)).Window(25*sim.Second, sim.Hour))
					env.Clock.At(35*sim.Second, func() {
						env.Medium.Radio(11).SetDown(true)
					})
				}
			}
			res := Run(rc)
			return Fingerprint(rc, res)
		}
		sparse := run(1)
		dense := run(-1)
		if sparse != dense {
			t.Errorf("%s: culled and exhaustive runs diverged\nsparse:\n%s\ndense:\n%s",
				tc.name, sparse, dense)
		}
	}
}
