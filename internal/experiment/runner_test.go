package experiment

import (
	"reflect"
	"sync"
	"testing"

	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// The runner's contract: a batch's results depend only on the RunConfigs,
// never on scheduling. These tests pin that down by comparing full Result
// structs (including every per-node slice) across worker counts, and by
// racing concurrent Runs for the race detector.

func testBatch(seed uint64) []RunConfig {
	tp := topo.Mirage(seed)
	var rcs []RunConfig
	for _, p := range []Protocol{ProtoCTP, Proto4B, ProtoMultiHopLQI} {
		rc := DefaultRunConfig(p, tp, seed)
		rc.Duration = 2 * sim.Minute
		rc.Warmup = 30 * sim.Second
		rcs = append(rcs, rc)
	}
	return rcs
}

func TestRunAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	serial := RunAllWorkers(testBatch(7), 1)
	pooled := RunAllWorkers(testBatch(7), 4)
	if len(serial) != len(pooled) {
		t.Fatalf("result count: %d vs %d", len(serial), len(pooled))
	}
	for i := range serial {
		if serial[i].Protocol != pooled[i].Protocol {
			t.Fatalf("run %d: submission order not preserved: %v vs %v",
				i, serial[i].Protocol, pooled[i].Protocol)
		}
		if !reflect.DeepEqual(serial[i], pooled[i]) {
			t.Errorf("run %d (%v): serial and pooled results differ:\nserial: %+v\npooled: %+v",
				i, serial[i].Protocol, serial[i], pooled[i])
		}
	}
}

func TestRunAllWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	two := RunAllWorkers(testBatch(11), 2)
	many := RunAllWorkers(testBatch(11), 16) // more workers than runs
	for i := range two {
		if !reflect.DeepEqual(two[i], many[i]) {
			t.Errorf("run %d: results differ between 2 and 16 workers", i)
		}
	}
}

// TestConcurrentRunsAreIndependent drives two simultaneous Runs of the same
// config from separate goroutines; under -race this shreds any hidden
// shared state between environments (seed streams, channel tables, pools).
func TestConcurrentRunsAreIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	tp := topo.Mirage(5)
	rc := DefaultRunConfig(Proto4B, tp, 5)
	rc.Duration = 90 * sim.Second
	rc.Warmup = 30 * sim.Second

	results := make([]*Result, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = Run(rc)
		}(i)
	}
	wg.Wait()
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("same config diverged across concurrent runs:\n%+v\n%+v", results[0], results[1])
	}
}

func TestReplicaSeedsDeterministic(t *testing.T) {
	a := ReplicaSeeds(42, 4)
	b := ReplicaSeeds(42, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeds not reproducible: %v vs %v", a, b)
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate replica seed %d in %v", s, a)
		}
		seen[s] = true
	}
	// Prefix stability: asking for more replicas never changes earlier ones.
	c := ReplicaSeeds(42, 6)
	if !reflect.DeepEqual(a, c[:4]) {
		t.Errorf("replica seeds not prefix-stable: %v vs %v", a, c[:4])
	}
}

func TestReplicateAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	rc := DefaultRunConfig(Proto4B, topo.Mirage(9), 9)
	rc.Duration = 2 * sim.Minute
	rc.Warmup = 30 * sim.Second
	rep := Replicate(rc, 3)
	if len(rep.Runs) != 3 || len(rep.Seeds) != 3 {
		t.Fatalf("want 3 runs/seeds, got %d/%d", len(rep.Runs), len(rep.Seeds))
	}
	var sum float64
	for _, r := range rep.Runs {
		sum += r.Cost
	}
	if mean := sum / 3; !almost(rep.Cost.Mean, mean) {
		t.Errorf("cost mean = %v, want %v", rep.Cost.Mean, mean)
	}
	if rep.Delivery.Mean <= 0 || rep.Delivery.Mean > 1 {
		t.Errorf("delivery mean out of range: %v", rep.Delivery.Mean)
	}
}

func TestStatMoments(t *testing.T) {
	s := newStat([]float64{1, 2, 3, 4})
	if !almost(s.Mean, 2.5) {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample variance of 1..4 is 5/3.
	if !almost(s.Stddev*s.Stddev, 5.0/3) {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if one := newStat([]float64{7}); one.Mean != 7 || one.Stddev != 0 {
		t.Errorf("single-sample stat = %+v", one)
	}
	if zero := newStat(nil); zero.Mean != 0 || zero.Stddev != 0 {
		t.Errorf("empty stat = %+v", zero)
	}
}

func TestParseProtocol(t *testing.T) {
	for _, p := range []Protocol{Proto4B, ProtoCTP, ProtoCTPUnidir, ProtoCTPWhite, ProtoCTPUnlimited, ProtoMultiHopLQI} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtocol("nonsense"); err == nil {
		t.Error("ParseProtocol accepted garbage")
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
