package experiment

import (
	"fmt"
	"runtime"
	"strings"

	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/ctp"
	"fourbit/internal/lqirouter"
	"fourbit/internal/metrics"
	"fourbit/internal/node"
	"fourbit/internal/packet"
	"fourbit/internal/probe"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// Protocol identifies a protocol/estimator variant under test. The CTP
// variants differ only in the estimator features they enable — the design
// space of the paper's Figure 6.
type Protocol int

// Protocols.
const (
	Proto4B           Protocol = iota // CTP + full four-bit estimator
	ProtoCTP                          // CTP with the original broadcast estimator, 10-entry table
	ProtoCTPUnidir                    // CTP + ack bit (unidirectional estimates)
	ProtoCTPWhite                     // CTP + white/compare bits only
	ProtoCTPUnlimited                 // CTP broadcast estimator, unrestricted table
	ProtoMultiHopLQI                  // the MultiHopLQI baseline
)

// String names the variant as the paper does.
func (p Protocol) String() string {
	switch p {
	case Proto4B:
		return "4B"
	case ProtoCTP:
		return "CTP"
	case ProtoCTPUnidir:
		return "CTP+unidir"
	case ProtoCTPWhite:
		return "CTP+white"
	case ProtoCTPUnlimited:
		return "CTP-unlimited"
	case ProtoMultiHopLQI:
		return "MultiHopLQI"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// EstimatorConfig returns the estimator configuration a CTP-family protocol
// runs with by default — the per-variant feature sets of Figure 6. Scenario
// specs derive from it to apply knobs (table size, footer entries) on top of
// a variant's feature set. The error reports a non-CTP-family protocol
// (MultiHopLQI has no link estimator).
func EstimatorConfig(p Protocol) (core.Config, error) {
	if p == ProtoMultiHopLQI {
		return core.Config{}, fmt.Errorf("experiment: %v has no link estimator", p)
	}
	return estConfig(p), nil
}

// estConfig returns the estimator configuration for a CTP-family protocol.
func estConfig(p Protocol) core.Config {
	cfg := core.DefaultConfig()
	switch p {
	case Proto4B:
		cfg.Features = core.FourBit()
	case ProtoCTP:
		cfg.Features = core.BroadcastOnly()
	case ProtoCTPUnidir:
		cfg.Features = core.Features{AckBit: true}
	case ProtoCTPWhite:
		cfg.Features = core.Features{WhiteCompare: true}
	case ProtoCTPUnlimited:
		cfg.Features = core.BroadcastOnly()
		cfg.TableSize = 4096 // effectively unrestricted
		cfg.FooterEntries = packet.MaxLinkEntries
	default:
		panic("experiment: not a CTP-family protocol: " + p.String())
	}
	return cfg
}

// RunConfig describes one collection run.
//
// The four optional config pointers override the per-protocol defaults;
// nil (the zero value) keeps the behavior every figure harness has always
// had. Scenario specs use them to sweep table size, beacon rate and
// channel parameters without forking the harness.
type RunConfig struct {
	Protocol Protocol
	// Estimator selects the link-estimator implementation for CTP-family
	// protocols (core.EstimatorKinds lists them). Empty keeps the
	// protocol's default — the four-bit family with the protocol's feature
	// set — byte-for-byte, including its rng streams. MultiHopLQI carries
	// its estimation inline and ignores the selector (scenario validation
	// rejects the combination before a run is built).
	Estimator   core.EstimatorKind
	Topo        *topo.Topology
	Seed        uint64
	TxPowerDBm  float64
	Duration    sim.Time
	Warmup      sim.Time // tree-depth sampling starts here
	SampleEvery sim.Time
	Workload    collect.Workload
	// Env replaces the derived environment configuration (EnvConfigFor).
	// Seed and TxPowerDBm inside it are overwritten from this RunConfig so
	// replication and power sweeps stay consistent.
	Env *node.EnvConfig
	// CTP replaces ctp.DefaultConfig() for CTP-family protocols.
	CTP *ctp.Config
	// Est replaces the protocol's estimator config (EstimatorConfig).
	Est *core.Config
	// LQI replaces lqirouter.DefaultConfig() for MultiHopLQI.
	LQI *lqirouter.Config
	// EnvMutate, if set, runs after the environment is built and before
	// the network boots (scenario hooks install link modifiers and
	// schedule dynamics events here). The env's probe bus is live at this
	// point, so the hook may also attach custom probe sinks.
	EnvMutate func(*node.Env)
	// TimelineWindow, when positive, attaches a probe.Collector to the
	// run's bus and fills Result.Timeline with windowed metrics at that
	// window width. Zero (the default) keeps the run unprobed — collectors
	// are pure observers either way, so the trajectory is identical.
	TimelineWindow sim.Time
	// WrapEstimator decorates each node's link estimator before the router
	// sees it (see node.EnvConfig.WrapEstimator) — the scenario runner's
	// estimator-feed recording rides here. Applied on top of Env when both
	// are set; pass-through decorators keep the run bit-identical.
	WrapEstimator func(addr packet.Addr, est core.LinkEstimator) core.LinkEstimator
	// Shards selects the region-sharded parallel event loop. 0 (the
	// default) auto-selects: city-scale populations (>= DefaultShardAboveN
	// nodes) run sharded with min(8, NumCPU) shards unless the run needs a
	// serial-only feature (TimelineWindow, WrapEstimator); everything else
	// — including every golden config — stays on the serial path
	// byte-for-byte. >= 1 forces that shard count (1 included: the sharded
	// machinery with a single shard, which is NOT the serial path — sharded
	// results are invariant to the shard count but differ from serial).
	// -1 forces serial regardless of size. Like Env.Seed, the value wins
	// over any Shards set inside an Env override.
	Shards int
	// ExtraSinks lists additional collection roots beyond Topo.Root (the
	// multi-sink workload). Every sink runs a root-mode router and counts
	// deliveries into one shared ledger; per-origin delivery dedupes across
	// sinks. Empty keeps the classic single-sink run bit-for-bit.
	ExtraSinks []int
}

// DefaultShardAboveN is the population at which Shards == 0 auto-selects
// the sharded event loop. The threshold is a node count, not a machine
// property, so *whether* a config shards never depends on the host; only
// the shard count does, and results are invariant to it.
const DefaultShardAboveN = 1024

// resolveShards returns the effective shard count for a run: 0 for the
// serial path, >= 1 for the sharded loop. Forcing shards alongside
// TimelineWindow is a programming error — the probe collector is a
// serial-path observer (scenario validation rejects the combination with
// a friendlier message upstream).
func resolveShards(rc RunConfig) int {
	switch {
	case rc.Shards < 0:
		return 0
	case rc.Shards > 0:
		if rc.TimelineWindow > 0 {
			panic("experiment: TimelineWindow requires the serial path; unset Shards")
		}
		return rc.Shards
	}
	if rc.TimelineWindow > 0 || rc.WrapEstimator != nil {
		return 0
	}
	if rc.Topo.N() < DefaultShardAboveN {
		return 0
	}
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

// DefaultRunConfig returns the standard 25-minute Mirage-style run.
func DefaultRunConfig(p Protocol, tp *topo.Topology, seed uint64) RunConfig {
	return RunConfig{
		Protocol:    p,
		Topo:        tp,
		Seed:        seed,
		TxPowerDBm:  0,
		Duration:    25 * sim.Minute,
		Warmup:      5 * sim.Minute,
		SampleEvery: time1Min,
		Workload:    collect.DefaultWorkload(),
	}
}

const time1Min = 1 * sim.Minute

// Result is the measured outcome of one run.
type Result struct {
	Protocol   Protocol
	Estimator  core.EstimatorKind // empty for MultiHopLQI and the default four-bit path
	TxPowerDBm float64
	Duration   sim.Time

	Generated     uint64
	Unique        uint64
	Duplicates    uint64
	DeliveryRatio float64
	// PerNodeDelivery holds per-origin delivery ratios (all nodes except
	// the root), in address order — the Figure 8 distributions.
	PerNodeDelivery []float64

	DataTx   uint64
	BeaconTx uint64
	// Cost is the paper's primary metric: data transmissions in the whole
	// network per unique packet delivered.
	Cost float64

	// MeanDepth is the tree depth averaged over nodes and over samples
	// taken every SampleEvery after Warmup.
	MeanDepth    float64
	FinalDepths  []int
	FinalParents []int
	Detached     int
	MeanHops     float64
	Events       uint64

	// Estimator-internal counters summed across nodes (CTP family only):
	// table dynamics plus the per-stream window/lottery activity, so
	// estimator behavior is comparable across sweeps, not just end-to-end
	// delivery.
	EstInserted    uint64
	EstReplaced    uint64
	EstRejected    uint64
	EstBeaconsIn   uint64
	EstLotteryWins uint64
	EstBeaconWin   uint64 // completed beacon/estimation windows
	EstUnicastWin  uint64 // completed unicast (ack-bit) windows
	EstAgedMisses  uint64

	// Timeline holds the run's windowed metrics when RunConfig asked for
	// them (TimelineWindow > 0); nil otherwise.
	Timeline *probe.Timeline
}

// EnvConfigFor derives the channel parameterization for a testbed. The
// TutorNet environment is harsher than Mirage's in exactly the dimensions
// the paper attributes its larger gains to: stronger time-varying fading
// (bursty marginal links) and wider per-node hardware variation
// (persistent link asymmetries) — the conditions physical-layer-only
// estimation cannot see (§2.1).
func EnvConfigFor(tp *topo.Topology, seed uint64, txPowerDBm float64) node.EnvConfig {
	cfg := node.DefaultEnvConfig(seed, txPowerDBm)
	if strings.HasPrefix(tp.Name, "tutornet") {
		cfg.Phy.FadeSigmaDB = 3.0
		cfg.Phy.FadeTau = 18 * sim.Second
		cfg.Phy.TxVarSigmaDB = 2.2
		cfg.Phy.NoiseDriftSigmaDB = 1.4
	}
	return cfg
}

// resolveEnv materializes the environment configuration a run will execute
// under: the per-testbed derivation unless rc.Env overrides it, with Seed
// and TxPowerDBm always reasserted from the RunConfig so replication and
// power sweeps stay consistent. Run and the batch runners share this so the
// batch-level channel precompute sees exactly the config Run will use.
func resolveEnv(rc RunConfig) node.EnvConfig {
	envCfg := EnvConfigFor(rc.Topo, rc.Seed, rc.TxPowerDBm)
	if rc.Env != nil {
		envCfg = *rc.Env
		envCfg.Seed = rc.Seed
		envCfg.TxPowerDBm = rc.TxPowerDBm
	}
	if rc.WrapEstimator != nil {
		envCfg.WrapEstimator = rc.WrapEstimator
	}
	envCfg.Shards = resolveShards(rc)
	if rc.ExtraSinks != nil {
		envCfg.ExtraRoots = rc.ExtraSinks
	}
	return envCfg
}

// Run executes one collection run and gathers its metrics.
func Run(rc RunConfig) *Result {
	env := node.NewEnv(rc.Topo, resolveEnv(rc))
	var timeline *probe.Collector
	if rc.TimelineWindow > 0 {
		timeline = probe.NewCollector(rc.TimelineWindow)
		env.Probes.Attach(timeline)
	}
	if rc.EnvMutate != nil {
		rc.EnvMutate(env)
	}

	var parents func() []int
	var dataTx, beaconTx func() uint64
	var estStats func() core.Stats
	var finalize func() *collect.Ledger

	if rc.Protocol == ProtoMultiHopLQI {
		lqiCfg := lqirouter.DefaultConfig()
		if rc.LQI != nil {
			lqiCfg = *rc.LQI
		}
		net := node.BuildLQI(env, lqiCfg, rc.Workload)
		parents, finalize = net.Parents, net.FinalizeLedger
		dataTx, beaconTx = net.DataTransmissions, net.BeaconTransmissions
	} else {
		ctpCfg := ctp.DefaultConfig()
		if rc.CTP != nil {
			ctpCfg = *rc.CTP
		}
		estCfg := estConfig(rc.Protocol)
		if rc.Est != nil {
			estCfg = *rc.Est
		}
		net := node.BuildCTPKind(env, ctpCfg, estCfg, rc.Estimator, rc.Workload)
		parents, finalize = net.Parents, net.FinalizeLedger
		dataTx, beaconTx = net.DataTransmissions, net.BeaconTransmissions
		estStats = func() core.Stats { return core.SumStats(net.Ests) }
	}

	// Depth accounting generalizes to multi-sink runs; single-sink runs
	// keep calling the original single-root helpers byte-for-byte.
	roots := env.Roots()
	depthsOf := func(p []int) []int {
		if len(roots) > 1 {
			return metrics.TreeDepthsMulti(p, roots)
		}
		return metrics.TreeDepths(p, rc.Topo.Root)
	}
	meanOf := func(depths []int) (float64, int, int) {
		if len(roots) > 1 {
			return metrics.MeanDepthMulti(depths, roots)
		}
		return metrics.MeanDepth(depths, rc.Topo.Root)
	}

	var depthSum float64
	var depthSamples int
	sampler := func() {
		depths := depthsOf(parents())
		mean, connected, _ := meanOf(depths)
		if connected > 0 {
			depthSum += mean
			depthSamples++
		}
	}
	if env.Sharded() {
		// Samplers are coordinator work: they read every shard's router
		// state, so they may only run at epoch barriers. ScheduleControl
		// snaps each firing to the next barrier — barrier positions depend
		// only on the epoch length, never on the shard count, so sampling
		// instants are shard-count invariant. The control re-arms itself.
		var arm func(at sim.Time)
		arm = func(at sim.Time) {
			if at > rc.Duration {
				return
			}
			env.ScheduleControl(at, func() {
				sampler()
				arm(at + rc.SampleEvery)
			})
		}
		arm(rc.Warmup)
		env.Group.RunUntil(rc.Duration)
		env.Close()
	} else {
		env.Clock.Every(rc.Warmup, rc.SampleEvery, sampler)
		env.Clock.RunUntil(rc.Duration)
	}
	ledger := finalize()

	estKind := rc.Estimator
	if rc.Protocol == ProtoMultiHopLQI {
		// MultiHopLQI carries its estimation inline; a selector set on a
		// directly-built RunConfig was not used and must not label the
		// result (scenario validation rejects the combination upstream).
		estKind = ""
	}
	res := &Result{
		Protocol:   rc.Protocol,
		Estimator:  estKind,
		TxPowerDBm: rc.TxPowerDBm,
		Duration:   rc.Duration,
		Generated:  ledger.Generated(),
		Unique:     ledger.Unique(),
		Duplicates: ledger.Duplicates(),
		DataTx:     dataTx(),
		BeaconTx:   beaconTx(),
		MeanHops:   ledger.MeanHops(),
		Events:     env.Clock.Events(),
	}
	if env.Sharded() {
		res.Events = env.Group.Events()
	}
	res.DeliveryRatio = ledger.TotalDeliveryRatio()
	for i := 0; i < rc.Topo.N(); i++ {
		if env.IsRoot(i) {
			continue
		}
		res.PerNodeDelivery = append(res.PerNodeDelivery, ledger.DeliveryRatio(packet.Addr(i)))
	}
	if res.Unique > 0 {
		res.Cost = float64(res.DataTx) / float64(res.Unique)
	}
	res.FinalParents = parents()
	res.FinalDepths = depthsOf(res.FinalParents)
	if depthSamples > 0 {
		res.MeanDepth = depthSum / float64(depthSamples)
	} else {
		res.MeanDepth, _, _ = meanOf(res.FinalDepths)
	}
	_, _, res.Detached = meanOf(res.FinalDepths)
	if estStats != nil {
		s := estStats()
		res.EstInserted, res.EstReplaced, res.EstRejected = s.Inserted, s.Replaced, s.RejectedFull
		res.EstBeaconsIn, res.EstLotteryWins = s.BeaconsIn, s.LotteryWins
		res.EstBeaconWin, res.EstUnicastWin = s.BeaconWindows, s.UnicastWindows
		res.EstAgedMisses = s.AgedMisses
	}
	if timeline != nil {
		res.Timeline = timeline.Finalize(env.Clock.Now())
	}
	return res
}
