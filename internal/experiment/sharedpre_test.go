package experiment

import (
	"reflect"
	"testing"

	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

// The shared-precompute contract: a replica batch pays the O(n²) channel
// geometry once per (topology, phy-params) cell, every worker reads the
// same immutable precompute, and nothing about the results changes — not
// one byte — relative to each run rebuilding the channel from scratch.

func shortReplicaConfig(seed uint64) RunConfig {
	rc := DefaultRunConfig(Proto4B, topo.Mirage(seed), seed)
	rc.Duration = 90 * sim.Second
	rc.Warmup = 30 * sim.Second
	return rc
}

// TestReplicatePrecomputeOnce pins the setup-cost contract: replicating one
// config across 8 seeds builds the channel precompute exactly once, not
// once per seed.
func TestReplicatePrecomputeOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	before := phy.PrecomputeCount()
	rep := Replicate(shortReplicaConfig(21), 8)
	if got := phy.PrecomputeCount() - before; got != 1 {
		t.Errorf("Replicate(8 seeds) paid %d channel precomputes, want 1", got)
	}
	if len(rep.Runs) != 8 {
		t.Fatalf("want 8 runs, got %d", len(rep.Runs))
	}
}

// TestSweepBatchPrecomputePerCell checks the grouping key: a mixed batch
// over two topologies precomputes once per topology, and transmit power —
// which never enters channel construction — does not split a cell.
func TestSweepBatchPrecomputePerCell(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	tpA, tpB := topo.Mirage(31), topo.Mirage(32)
	var rcs []RunConfig
	for _, tp := range []*topo.Topology{tpA, tpB} {
		for _, pw := range []float64{0, -7} {
			rc := DefaultRunConfig(Proto4B, tp, 31)
			rc.TxPowerDBm = pw
			rc.Duration = 45 * sim.Second
			rc.Warmup = 15 * sim.Second
			rcs = append(rcs, rc)
		}
	}
	before := phy.PrecomputeCount()
	RunAllWorkers(rcs, 2)
	if got := phy.PrecomputeCount() - before; got != 2 {
		t.Errorf("2-topology × 2-power batch paid %d precomputes, want 2 (one per topology)", got)
	}
}

// TestReplicateWorkersSharedPreInvariance runs the same replica batch over
// an explicitly shared precompute at several worker counts and demands
// byte-identical Replicated aggregates against the serial, unshared
// baseline. Under -race this doubles as the proof that the precompute is
// genuinely read-only across the pool.
func TestReplicateWorkersSharedPreInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	rc := shortReplicaConfig(23)
	serial := ReplicateWorkers(rc, 6, 1)

	// Pre-build the immutable part once, hand it to every run explicitly.
	envCfg := resolveEnv(rc)
	dist, extra := rc.Topo.Matrices()
	envCfg.ChanPre = phy.Precompute(dist, extra, envCfg.Phy)
	shared := rc
	shared.Env = &envCfg

	for _, workers := range []int{1, 2, 4, 8} {
		rep := ReplicateWorkers(shared, 6, workers)
		if !reflect.DeepEqual(serial, rep) {
			t.Errorf("aggregates differ from serial baseline at %d workers over shared precompute", workers)
		}
	}
}
