package experiment

import (
	"fmt"
	"strings"

	"fourbit/internal/metrics"
	"fourbit/internal/topo"
)

// RenderTree draws the routing tree over the floor plan as ASCII, in the
// style of the paper's Figure 2: each node is printed at its position as
// its tree depth ('R' for the root, '.' for detached nodes); darker (higher
// digits) means longer paths to the root.
func RenderTree(tp *topo.Topology, parents []int, cols, rows int) string {
	depths := metrics.TreeDepths(parents, tp.Root)
	var maxX, maxY float64
	for _, p := range tp.Positions {
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxX == 0 {
		maxX = 1
	}
	if maxY == 0 {
		maxY = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	place := func(i int, c byte) {
		p := tp.Positions[i]
		x := int(p.X / maxX * float64(cols-1))
		// Screen rows grow downward; put Y=0 at the bottom as in the paper.
		y := rows - 1 - int(p.Y/maxY*float64(rows-1))
		grid[y][x] = c
	}
	for i := range tp.Positions {
		var c byte
		switch d := depths[i]; {
		case i == tp.Root:
			continue // placed last so it is never overdrawn
		case d < 0:
			c = '.'
		case d > 9:
			c = '+'
		default:
			c = byte('0' + d)
		}
		place(i, c)
	}
	place(tp.Root, 'R')
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// DepthHistogram summarizes a depth slice as "depth:count" pairs.
func DepthHistogram(depths []int, root int) string {
	counts := map[int]int{}
	maxD := 0
	for i, d := range depths {
		if i == root {
			continue
		}
		counts[d]++
		if d > maxD {
			maxD = d
		}
	}
	var b strings.Builder
	for d := 1; d <= maxD; d++ {
		if counts[d] > 0 {
			fmt.Fprintf(&b, "%d:%d ", d, counts[d])
		}
	}
	if counts[-1] > 0 {
		fmt.Fprintf(&b, "detached:%d", counts[-1])
	}
	return strings.TrimSpace(b.String())
}
