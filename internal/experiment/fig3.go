package experiment

import (
	"fmt"
	"io"

	"fourbit/internal/collect"
	"fourbit/internal/lqirouter"
	"fourbit/internal/metrics"
	"fourbit/internal/node"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
	"fourbit/internal/trace"
)

// Fig3Config configures the Figure 3 scenario: a long MultiHopLQI
// collection run on TutorNet in which one in-use link turns bursty for two
// hours. Bursty means a Gilbert-Elliott process whose Bad state attenuates
// the link into silence — so the PRR collapses while every packet that is
// received still carries saturated LQI, exactly the physical-layer blind
// spot of §2.1.
type Fig3Config struct {
	Seed         uint64
	Duration     sim.Time // paper: 12 h
	DegradeFrom  sim.Time // paper: degradation observed hours 4-6
	DegradeUntil sim.Time
	// SelectAt is when the in-use link (P -> its parent C) is chosen; it
	// defaults to one beacon period before DegradeFrom.
	SelectAt sim.Time
	Window   sim.Time // series sampling window
	// BadFraction is the Bad-state duty cycle (PRR drops to
	// ~1-BadFraction). Must be strictly inside (0,1): the Gilbert–Elliott
	// sojourn means are derived from it and degenerate at the endpoints.
	BadFraction float64
	MeanBad     sim.Time
}

// DefaultFig3Config returns the paper-scale scenario.
func DefaultFig3Config(seed uint64) Fig3Config {
	return Fig3Config{
		Seed:         seed,
		Duration:     12 * sim.Hour,
		DegradeFrom:  4 * sim.Hour,
		DegradeUntil: 6 * sim.Hour,
		Window:       10 * sim.Minute,
		BadFraction:  0.35,
		MeanBad:      2 * sim.Second,
	}
}

// Fig3Result carries the three series of the paper's Figure 3 plus summary
// statistics over the before/during windows.
type Fig3Result struct {
	P, C int // data flows P -> C; C is P's parent at selection time

	PRR     metrics.Series // beacon PRR of link P->C, time in hours
	LQI     metrics.Series // mean LQI of P's packets received at C
	Unacked metrics.Series // cumulative unacked transmissions at P

	PRRBefore, PRRDuring        float64
	LQIBefore, LQIDuring        float64
	UnackedRateBefore           float64 // unacked tx per hour before
	UnackedRateDuring           float64
	DeliveryRatio               float64
	DegradeFromH, DegradeUntilH float64
}

// RunFig3 executes the scenario.
func RunFig3(cfg Fig3Config) *Fig3Result {
	if cfg.BadFraction <= 0 || cfg.BadFraction >= 1 {
		// Fail at config time with the offending knob named, not mid-run
		// when the degradation window opens and the derived Gilbert–Elliott
		// sojourn mean comes out non-positive.
		panic(fmt.Sprintf("experiment: Fig3Config.BadFraction must be in (0,1), got %g", cfg.BadFraction))
	}
	if cfg.SelectAt == 0 {
		cfg.SelectAt = cfg.DegradeFrom - 30*sim.Second
	}
	tp := topo.TutorNet(cfg.Seed)
	env := node.NewEnv(tp, node.DefaultEnvConfig(cfg.Seed, 0))
	net := node.BuildLQI(env, lqirouter.DefaultConfig(), collect.DefaultWorkload())
	rec := trace.NewRecorder(env.Clock, env.Medium, cfg.Window, "fig3")

	// Sample every node's cumulative unacked transmissions each window (P
	// is unknown until selection time).
	nodes := tp.N()
	type unackSample struct {
		at     sim.Time
		counts []uint64
	}
	var unacked []unackSample
	env.Clock.Every(cfg.Window, cfg.Window, func() {
		counts := make([]uint64, nodes)
		for i, m := range net.MACs {
			counts[i] = m.Stats.AckTimeouts
		}
		unacked = append(unacked, unackSample{env.Clock.Now(), counts})
	})

	// Parent stability snapshot ahead of selection.
	early := make([]packet.Addr, nodes)
	env.Clock.At(cfg.SelectAt-10*sim.Minute, func() {
		for i, nd := range net.Nodes {
			early[i] = nd.Parent()
		}
	})

	res := &Fig3Result{P: -1, C: -1}
	env.Clock.At(cfg.SelectAt, func() {
		for i, nd := range net.Nodes {
			if i == tp.Root {
				continue
			}
			p := nd.Parent()
			if p == packet.None || p != early[i] {
				continue
			}
			res.P, res.C = i, int(p)
			break
		}
		if res.P < 0 {
			// No stable pair (tiny test runs): fall back to any routed node.
			for i, nd := range net.Nodes {
				if i != tp.Root && nd.Parent() != packet.None {
					res.P, res.C = i, int(nd.Parent())
					break
				}
			}
		}
		if res.P < 0 {
			return
		}
		f := cfg.BadFraction
		meanGood := cfg.MeanBad.Scale((1 - f) / f)
		ge := phy.NewGilbertElliott(50, meanGood, cfg.MeanBad,
			env.Seeds.Stream("fig3/ge")).Window(cfg.DegradeFrom, cfg.DegradeUntil)
		env.Chan.SetModifierBoth(res.P, res.C, ge)
	})

	env.Clock.RunUntil(cfg.Duration)

	res.DeliveryRatio = net.Ledger.TotalDeliveryRatio()
	res.DegradeFromH = cfg.DegradeFrom.Hours()
	res.DegradeUntilH = cfg.DegradeUntil.Hours()
	if res.P < 0 {
		return res
	}

	// Assemble the three series.
	tr := rec.Finalize()
	if lt := tr.Link(res.P, res.C); lt != nil {
		for _, s := range lt.Samples {
			if s.Sent == 0 {
				continue
			}
			h := s.At.Hours()
			res.PRR.Add(h, s.PRR())
			if s.Rcvd > 0 {
				res.LQI.Add(h, s.MeanLQI)
			}
		}
	}
	for _, s := range unacked {
		res.Unacked.Add(s.at.Hours(), float64(s.counts[res.P]))
	}

	// Before/during summaries.
	from, until := res.DegradeFromH, res.DegradeUntilH
	preFrom := from - (until - from)
	if preFrom < 0 {
		preFrom = 0
	}
	res.PRRBefore = res.PRR.WindowMean(preFrom, from)
	res.PRRDuring = res.PRR.WindowMean(from, until)
	res.LQIBefore = res.LQI.WindowMean(preFrom, from)
	res.LQIDuring = res.LQI.WindowMean(from, until)
	res.UnackedRateBefore = rampRate(&res.Unacked, preFrom, from)
	res.UnackedRateDuring = rampRate(&res.Unacked, from, until)
	return res
}

// rampRate estimates the per-hour growth of a cumulative series over [t0, t1].
func rampRate(s *metrics.Series, t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	var first, last float64
	var seen bool
	for i, t := range s.T {
		if t < t0 || t > t1 {
			continue
		}
		if !seen {
			first, seen = s.V[i], true
		}
		last = s.V[i]
	}
	if !seen {
		return 0
	}
	return (last - first) / (t1 - t0)
}

// Fprint renders the three Figure 3 series and the summary rows.
func (r *Fig3Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: MultiHopLQI blind spot — link %d->%d degraded %.0fh..%.0fh\n",
		r.P, r.C, r.DegradeFromH, r.DegradeUntilH)
	fmt.Fprintf(w, "%6s %8s %8s %10s\n", "t(h)", "PRR", "LQI", "unacked")
	li := 0
	for i := range r.PRR.T {
		lqi := 0.0
		for li < r.LQI.Len() && r.LQI.T[li] <= r.PRR.T[i] {
			lqi = r.LQI.V[li]
			li++
		}
		un := 0.0
		for j := range r.Unacked.T {
			if r.Unacked.T[j] <= r.PRR.T[i] {
				un = r.Unacked.V[j]
			}
		}
		fmt.Fprintf(w, "%6.2f %8.3f %8.1f %10.0f\n", r.PRR.T[i], r.PRR.V[i], lqi, un)
	}
	fmt.Fprintf(w, "\nPRR  before %.3f -> during %.3f   (paper: 0.9 -> ~0.6)\n", r.PRRBefore, r.PRRDuring)
	fmt.Fprintf(w, "LQI  before %.1f -> during %.1f   (paper: stays high, ~100+)\n", r.LQIBefore, r.LQIDuring)
	fmt.Fprintf(w, "unacked ramp: %.0f/h before -> %.0f/h during (paper: sharp ramp hours 4-6)\n",
		r.UnackedRateBefore, r.UnackedRateDuring)
	fmt.Fprintf(w, "overall delivery ratio: %.1f%%\n", r.DeliveryRatio*100)
}
