package experiment

import (
	"testing"

	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

func timelineTestConfig(seed uint64) RunConfig {
	rc := DefaultRunConfig(Proto4B, topo.Grid(4, 4, 6), seed)
	rc.Duration = 3 * sim.Minute
	rc.Warmup = 30 * sim.Second
	rc.SampleEvery = 30 * sim.Second
	return rc
}

// A run with a timeline attached must replay the identical trajectory —
// the collector is a pure observer — and the timeline's window totals must
// reconcile exactly with the end-of-run aggregates computed from the
// per-node counters.
func TestTimelineMatchesAggregates(t *testing.T) {
	plain := Run(timelineTestConfig(3))
	rc := timelineTestConfig(3)
	rc.TimelineWindow = 20 * sim.Second
	probed := Run(rc)

	if probed.Timeline == nil {
		t.Fatal("no timeline recorded")
	}
	if plain.Timeline != nil {
		t.Fatal("unrequested timeline recorded")
	}
	// Identical trajectory: the full fingerprint (every float to the last
	// bit) must match the unprobed run.
	fpPlain, fpProbed := Fingerprint(timelineTestConfig(3), plain), Fingerprint(rc, probed)
	if fpPlain != fpProbed {
		t.Errorf("timeline collection changed the run:\nplain:\n%s\nprobed:\n%s", fpPlain, fpProbed)
	}

	tl := probed.Timeline
	if tl.Window != 20*sim.Second {
		t.Errorf("window = %v", tl.Window)
	}
	var dataTx, beaconTx, delivered, generated uint64
	for i := range tl.Windows {
		w := &tl.Windows[i]
		dataTx += w.DataTx
		beaconTx += w.BeaconTx
		delivered += w.Delivered
		generated += w.Generated
	}
	if dataTx != probed.DataTx {
		t.Errorf("timeline DataTx = %d, result = %d", dataTx, probed.DataTx)
	}
	if beaconTx != probed.BeaconTx {
		t.Errorf("timeline BeaconTx = %d, result = %d", beaconTx, probed.BeaconTx)
	}
	if delivered != probed.Unique+probed.Duplicates {
		t.Errorf("timeline Delivered = %d, result = %d unique + %d dups", delivered, probed.Unique, probed.Duplicates)
	}
	if generated != probed.Generated {
		t.Errorf("timeline Generated = %d, result = %d", generated, probed.Generated)
	}
	// Windows tile the run exactly.
	last := tl.Windows[len(tl.Windows)-1]
	if tl.Windows[0].Start != 0 || last.End != rc.Duration {
		t.Errorf("timeline spans [%v, %v), want [0, %v)", tl.Windows[0].Start, last.End, rc.Duration)
	}
	for i := 1; i < len(tl.Windows); i++ {
		if tl.Windows[i].Start != tl.Windows[i-1].End {
			t.Fatalf("window %d does not abut its predecessor", i)
		}
	}
}

// Replication carries each run's timeline through to the replicated result.
func TestReplicateCarriesTimelines(t *testing.T) {
	rc := timelineTestConfig(5)
	rc.TimelineWindow = 30 * sim.Second
	rep := ReplicateWorkers(rc, 2, 2)
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	for i, run := range rep.Runs {
		if run.Timeline == nil {
			t.Errorf("run %d lost its timeline", i)
		}
	}
}
