//go:build !race

package experiment

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
