// Package fourbit is a from-scratch Go implementation of "Four-Bit Wireless
// Link Estimation" (Fonseca, Gnawali, Jamieson, Levis — HotNets 2007),
// together with the full simulation substrate its evaluation requires.
//
// The package has two faces:
//
//   - The link-estimation library: NewEstimator builds the paper's 4B
//     estimator (or any of its Figure 6 ablations, via Features). It is
//     protocol independent: feed it received routing beacons (OnBeacon,
//     carrying the physical layer's white bit), transmission outcomes
//     (TxResult, the link layer's ack bit), and wire the network layer in
//     through the pin bit (Pin/Unpin) and the compare bit (Comparer).
//
//   - The testbed simulator: Run executes a full collection experiment —
//     CC2420-class radios, CSMA/CA link layer, CTP or MultiHopLQI routing,
//     constant-rate workload — over synthetic versions of the paper's
//     Mirage and TutorNet testbeds, reporting the paper's metrics (cost,
//     tree depth, per-node delivery).
//
// All heavy machinery lives under internal/; this package is the supported
// surface. See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured record.
package fourbit

import (
	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/experiment"
	"fourbit/internal/node"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/probe"
	"fourbit/internal/scenario"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
	"fourbit/internal/trace"
)

// Link-estimation library surface.
type (
	// Addr is a link-layer node address.
	Addr = packet.Addr
	// Estimator is the 4B link estimator (§3.3 of the paper).
	Estimator = core.Estimator
	// LinkEstimator is the estimator-agnostic router contract; the 4B
	// estimator and its competitors (EstimatorKind) all implement it.
	LinkEstimator = core.LinkEstimator
	// EstimatorKind names a pluggable estimator implementation: "4bit",
	// "wmewma" (beacon-only windowed ETX), "pdr" (windowed-mean delivery
	// ratio), "lqi" (pure physical-layer moving average).
	EstimatorKind = core.EstimatorKind
	// EstimatorConfig parameterizes the estimator (table size, windows,
	// EWMA weights, enabled bits).
	EstimatorConfig = core.Config
	// Features selects which of the four bits the estimator uses.
	Features = core.Features
	// Comparer is the network layer's compare-bit provider.
	Comparer = core.Comparer
	// ComparerFunc adapts a function to Comparer.
	ComparerFunc = core.ComparerFunc
	// RxMeta carries per-packet physical-layer metadata (white bit, LQI).
	RxMeta = core.RxMeta
	// LEFrame is the link-estimation (layer 2.5) beacon envelope.
	LEFrame = packet.LEFrame
	// LinkEntry is one reverse-quality record in a beacon footer.
	LinkEntry = packet.LinkEntry
)

// Broadcast is the all-nodes address.
const Broadcast = packet.Broadcast

// NewEstimator builds a link estimator for node self, seeding its eviction
// randomness deterministically. cmp supplies the compare bit and may be nil
// (or installed later with SetComparer).
func NewEstimator(self Addr, cfg EstimatorConfig, cmp Comparer, seed uint64) *Estimator {
	return core.New(self, cfg, cmp, sim.NewRand(seed))
}

// Estimator kinds accepted by NewLinkEstimator (and the simulator's
// estimator-selection axis).
const (
	KindFourBit = core.KindFourBit
	KindWMEWMA  = core.KindWMEWMA
	KindPDR     = core.KindPDR
	KindLQI     = core.KindLQI
)

// NewLinkEstimator builds an estimator of any registered kind behind the
// estimator-agnostic contract; the empty kind selects the four-bit hybrid.
func NewLinkEstimator(kind EstimatorKind, self Addr, cfg EstimatorConfig, cmp Comparer, seed uint64) (LinkEstimator, error) {
	return core.NewKind(kind, self, cfg, cmp, sim.NewRand(seed))
}

// DefaultEstimatorConfig returns the paper's parameterization (10-entry
// table, ku=5, kb=2, EWMA 0.9) with all four bits enabled.
func DefaultEstimatorConfig() EstimatorConfig { return core.DefaultConfig() }

// FourBitFeatures enables all four bits (the paper's 4B estimator).
func FourBitFeatures() Features { return core.FourBit() }

// BroadcastOnlyFeatures selects the original CTP/MintRoute broadcast
// estimator (no ack, white or compare bits).
func BroadcastOnlyFeatures() Features { return core.BroadcastOnly() }

// Simulation surface.
type (
	// Topology is a set of node positions (a testbed floor plan).
	Topology = topo.Topology
	// Point is one node position in meters.
	Point = topo.Point
	// Env is a built simulation environment (clock, channel, medium).
	Env = node.Env
	// RunConfig describes one collection experiment.
	RunConfig = experiment.RunConfig
	// Result is the measured outcome of a run.
	Result = experiment.Result
	// Protocol selects the protocol/estimator variant under test.
	Protocol = experiment.Protocol
	// Workload is the offered traffic description.
	Workload = collect.Workload
	// GilbertElliott is a two-state bursty-link modifier for scenarios.
	GilbertElliott = phy.GilbertElliott
	// Time is a point or span of virtual time (nanoseconds).
	Time = sim.Time
)

// Protocol variants.
const (
	Proto4B           = experiment.Proto4B
	ProtoCTP          = experiment.ProtoCTP
	ProtoCTPUnidir    = experiment.ProtoCTPUnidir
	ProtoCTPWhite     = experiment.ProtoCTPWhite
	ProtoCTPUnlimited = experiment.ProtoCTPUnlimited
	ProtoMultiHopLQI  = experiment.ProtoMultiHopLQI
)

// Common virtual-time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Mirage generates the 85-node office testbed (root bottom-left).
func Mirage(seed uint64) *Topology { return topo.Mirage(seed) }

// TutorNet generates the 94-node two-floor testbed.
func TutorNet(seed uint64) *Topology { return topo.TutorNet(seed) }

// Grid places rows x cols nodes at the given spacing (meters).
func Grid(rows, cols int, spacing float64) *Topology { return topo.Grid(rows, cols, spacing) }

// Line places n nodes on a line at the given spacing (meters).
func Line(n int, spacing float64) *Topology { return topo.Line(n, spacing) }

// DefaultRunConfig returns the standard 25-minute run of protocol p over tp.
func DefaultRunConfig(p Protocol, tp *Topology, seed uint64) RunConfig {
	return experiment.DefaultRunConfig(p, tp, seed)
}

// DefaultWorkload returns the paper's workload: one packet per node every
// 10 seconds, jittered, boot staggered over 30 s.
func DefaultWorkload() Workload { return collect.DefaultWorkload() }

// Run executes a collection experiment and returns its metrics.
func Run(rc RunConfig) *Result { return experiment.Run(rc) }

// NewGilbertElliott builds a bursty-link modifier for scenario hooks: in
// the Bad state the link is badLossDB quieter (effectively silent), while
// packets received during Good sojourns still carry full quality — the
// paper's Figure 3 failure mode for physical-layer-only estimation.
func NewGilbertElliott(badLossDB float64, meanGood, meanBad Time, seed uint64) *GilbertElliott {
	return phy.NewGilbertElliott(badLossDB, meanGood, meanBad, sim.NewRand(seed))
}

// Declarative scenario surface. A Scenario describes one run (topology
// generator + channel + traffic + scripted dynamics) as data; a Sweep
// expands a parameter grid over a base scenario into replicated runs with
// aggregated results and CSV/JSONL export. docs/SCENARIOS.md is the
// cookbook; examples/sweep is the API walkthrough.
type (
	// Scenario declares one collection scenario.
	Scenario = scenario.Spec
	// ScenarioTopo names a topology generator and its parameters.
	ScenarioTopo = scenario.TopoSpec
	// ScenarioEvent is one scripted dynamics entry (node death/reboot,
	// power step, interference onset, link burst).
	ScenarioEvent = scenario.Event
	// Sweep is a parameter grid over a base scenario.
	Sweep = scenario.Sweep
	// SweepAxis is one swept parameter and its values.
	SweepAxis = scenario.Axis
	// SweepResult is a sweep's aggregated outcome (WriteCSV, WriteJSONL).
	SweepResult = scenario.SweepResult
	// Replicated is a scenario's aggregate over its replicate seeds.
	Replicated = experiment.Replicated
)

// Clustered scatters n nodes in a two-tier cluster layout over w×h meters.
func Clustered(n, clusters int, w, h, spread float64, seed uint64) *Topology {
	return topo.Clustered(n, clusters, w, h, spread, seed)
}

// Corridor places n nodes along a length×width hallway.
func Corridor(n int, length, width float64, seed uint64) *Topology {
	return topo.Corridor(n, length, width, seed)
}

// MultiFloor scatters n nodes over floors storeys of a w×h footprint.
func MultiFloor(n, floors int, w, h float64, seed uint64) *Topology {
	return topo.MultiFloor(n, floors, w, h, seed)
}

// Observability surface. Every run carries a probe bus (Env.Probes) into
// which the protocol layers emit typed events; sinks are pure observers,
// so attaching one never changes a run's trajectory. Timelines are the
// bundled windowed sink: set RunConfig.TimelineWindow (or a Scenario's
// TimelineS) and read Result.Timeline.
type (
	// ProbeBus fans typed run events out to attached sinks.
	ProbeBus = probe.Bus
	// ProbeSink receives the bus's typed events (embed probe.BaseSink).
	ProbeSink = probe.Sink
	// Timeline is a run's windowed metrics (cost, delivery, churn).
	Timeline = probe.Timeline
	// TimelineWindow is one window of a Timeline.
	TimelineWindow = probe.Window
	// Recovery is the recovery-time metric after a scripted event.
	Recovery = probe.Recovery
)

// NewTimelineCollector builds a windowed timeline sink; attach it with
// env.Probes.Attach and call Finalize(env.Clock.Now()) after the run.
// (Runs configured through RunConfig.TimelineWindow do this wiring
// themselves.)
func NewTimelineCollector(window Time) *probe.Collector { return probe.NewCollector(window) }

// Trace-driven simulation surface.
type (
	// Trace is a set of recorded per-link PRR/LQI time series.
	Trace = trace.Trace
	// LinkTrace is the series of one directed link.
	LinkTrace = trace.LinkTrace
	// TraceRecorder taps a medium and windows link statistics.
	TraceRecorder = trace.Recorder
	// TraceReplayer replays a recorded link series as a channel modifier.
	TraceReplayer = trace.Replayer
)

// NewTraceRecorder attaches a recorder to env's medium, sampling every
// window. Call Finalize after the run to obtain the trace.
func NewTraceRecorder(env *Env, window Time, name string) *TraceRecorder {
	return trace.NewRecorder(env.Clock, env.Medium, window, name)
}

// NewTraceReplayer builds a channel modifier that replays lt (recorded with
// the given window). Install it with env.Chan.SetModifier.
func NewTraceReplayer(lt *LinkTrace, window Time, seed uint64) (*TraceReplayer, error) {
	return trace.NewReplayer(lt, window, sim.NewRand(seed))
}
