#!/bin/sh
# bench.sh — the perf gate: go vet, tier-1 tests, then a -benchtime=1x
# bench smoke over the whole module, snapshotted to BENCH_<date>.json so
# future PRs have a perf trajectory to diff against.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_$(date +%Y-%m-%d).json}"

echo "== go vet ./..."
go vet ./...

echo "== tier-1: go build && go test ./..."
go build ./...
go test ./...

echo "== bench smoke (-benchtime=1x)"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench . -benchtime 1x -benchmem ./... | tee "$tmp"

# Emit a small JSON document: metadata + one string per benchmark line.
# Tabs (go test's column separator) become spaces — control characters are
# invalid inside JSON strings — and backslash/quote are escaped.
{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/[\\"]/\\&/g')"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "benchmarks": [\n'
	grep '^Benchmark' "$tmp" | tr '\t' ' ' | sed 's/[\\"]/\\&/g; s/^/    "/; s/$/",/' | sed '$ s/,$//'
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "== wrote $out"
