#!/bin/sh
# bench.sh — the perf gate: go vet, tier-1 tests, then a -benchtime=1x
# bench smoke over the whole module, snapshotted to BENCH_<date>.json so
# future PRs have a perf trajectory to diff against. After writing the
# snapshot it diffs against the most recent previous BENCH_*.json and
# prints a per-benchmark delta table (ns/op speedup, allocs/op change).
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
if [ $# -ge 1 ]; then
	out="$1"
else
	# Never clobber an existing snapshot (it is the comparison baseline):
	# append a run counter when the dated name is taken.
	out="BENCH_$(date +%Y-%m-%d).json"
	n=2
	while [ -e "$out" ]; do
		out="BENCH_$(date +%Y-%m-%d).$n.json"
		n=$((n + 1))
	done
fi

# The newest snapshot other than $out, ordered by the (date, run counter)
# encoded in the name — a plain lexical sort would mis-order same-day
# counter suffixes (".2.json" < ".json"), and mtime is meaningless after
# a fresh clone. A bare BENCH_<date>.json is run 1 of its day.
prev="$(ls -1 BENCH_*.json 2>/dev/null | grep -Fxv "$out" | awk '{
	name = $0
	stem = name; sub(/^BENCH_/, "", stem); sub(/\.json$/, "", stem)
	run = 1
	if (match(stem, /\.[0-9]+$/)) {
		run = substr(stem, RSTART + 1) + 0
		stem = substr(stem, 1, RSTART - 1)
	}
	print stem, run, name
}' | sort -k1,1 -k2,2n | tail -n 1 | cut -d' ' -f3 || true)"

echo "== go vet ./..."
go vet ./...

echo "== tier-1: go build && go test ./..."
go build ./...
go test ./...

echo "== bench smoke (-benchtime=1x)"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench . -benchtime 1x -benchmem ./... | tee "$tmp"

# Emit a small JSON document: metadata + one string per benchmark line.
# Tabs (go test's column separator) become spaces — control characters are
# invalid inside JSON strings — and backslash/quote are escaped.
{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/[\\"]/\\&/g')"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "benchmarks": [\n'
	grep '^Benchmark' "$tmp" | tr '\t' ' ' | sed 's/[\\"]/\\&/g; s/^/    "/; s/$/",/' | sed '$ s/,$//'
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "== wrote $out"

# Per-benchmark delta table vs the previous snapshot. Benchmark lines in
# the snapshots look like:
#   "BenchmarkFoo  1  12345 ns/op  ...  678 allocs/op",
# so the value preceding each unit token is the metric.
if [ -n "$prev" ]; then
	echo "== delta vs $prev"
	awk -F'"' -v prev="$prev" '
		/^[ \t]*"Benchmark/ {
			n = split($2, f, /[ \t]+/)
			name = f[1]; ns = ""; al = ""
			for (i = 2; i < n; i++) {
				if (f[i + 1] == "ns/op") ns = f[i]
				if (f[i + 1] == "allocs/op") al = f[i]
			}
			if (FILENAME == prev) { pns[name] = ns; pal[name] = al }
			else { order[++k] = name; nns[name] = ns; nal[name] = al }
		}
		END {
			printf "%-36s %14s %14s %8s %12s %12s %8s\n",
				"benchmark", "old ns/op", "new ns/op", "speedup",
				"old allocs", "new allocs", "allocs"
			for (j = 1; j <= k; j++) {
				name = order[j]
				if (!(name in pns)) { printf "%-36s %s\n", name, "(new benchmark)"; continue }
				spd = (nns[name] > 0) ? pns[name] / nns[name] : 0
				dal = (pal[name] > 0) ? 100 * (nal[name] - pal[name]) / pal[name] : 0
				printf "%-36s %14.0f %14.0f %7.2fx %12.0f %12.0f %+7.1f%%\n",
					name, pns[name], nns[name], spd, pal[name], nal[name], dal
			}
			for (name in pns) if (!(name in nns))
				printf "%-36s %s\n", name, "(removed)"
		}
	' "$prev" "$out"
fi
