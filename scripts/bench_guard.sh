#!/bin/sh
# bench_guard.sh — the allocation-budget gate: runs every benchmark named
# in scripts/alloc_budget.txt (one iteration; allocs/op is deterministic
# per op, unlike ns/op, so a single-iteration check is stable in CI) and
# fails if any exceeds its budgeted allocs/op. A benchmark that is listed
# but does not run also fails — a silently renamed benchmark must not
# retire its budget.
#
# Usage: scripts/bench_guard.sh [budget-file]
set -eu

cd "$(dirname "$0")/.."
budget="${1:-scripts/alloc_budget.txt}"

pat="$(awk '!/^[ \t]*(#|$)/ { printf "%s^%s$", sep, $1; sep = "|" }' "$budget")"
if [ -z "$pat" ]; then
	echo "bench-guard: no budgets in $budget" >&2
	exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench "$pat" -benchtime 1x -benchmem ./... | tee "$tmp"

awk '
	NR == FNR {
		if ($0 ~ /^[ \t]*(#|$)/) next
		max[$1] = $2
		next
	}
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		for (i = 2; i < NF; i++)
			if ($(i + 1) == "allocs/op") al[name] = $i
	}
	END {
		fail = 0
		for (name in max) {
			if (!(name in al)) {
				printf "bench-guard: FAIL %s did not run (renamed? removed?)\n", name
				fail = 1
			} else if (al[name] + 0 > max[name] + 0) {
				printf "bench-guard: FAIL %s: %d allocs/op exceeds budget %d\n", name, al[name], max[name]
				fail = 1
			} else {
				printf "bench-guard: ok   %s: %d allocs/op within budget %d\n", name, al[name], max[name]
			}
		}
		exit fail
	}
' "$budget" "$tmp"
